(** spnc_serve — the multi-tenant SPN model server (docs/PERFORMANCE.md
    §"Serving").

    Subcommands:
    - [serve]: host a fleet of models over the line-JSON TCP protocol
      ({!Spnc_serve.Protocol}), with dynamic batching, bounded admission
      and EDF dispatch;
    - [check]: client-side smoke/verification driver — fire concurrent
      requests at a running server, bit-compare every ok response
      against local sequential {!Spnc.Compiler.execute}, and print the
      same ["mean log-likelihood: %.6f"] statistic [spnc_cli run] prints
      over the identical synthesized dataset (the CI serve-smoke job
      diffs the two). *)

open Cmdliner
module Serve = Spnc_serve.Server
module Proto = Spnc_serve.Protocol
module T = Spnc_serve.Types

let exit_failure_setup = 65 (* EX_DATAERR: bad models / bad flags *)

(* -- shared: model loading ----------------------------------------------------- *)

let model_name_of_path path = Filename.remove_extension (Filename.basename path)

let parse_model_spec spec =
  match String.index_opt spec '=' with
  | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
  | None -> (model_name_of_path spec, spec)

let dir_models dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.filter_map (fun f ->
         if Filename.check_suffix f ".spn" || Filename.check_suffix f ".txt"
         then Some (model_name_of_path f, Filename.concat dir f)
         else None)

let read_model path : Spnc_spn.Model.t =
  if Filename.check_suffix path ".spn" then
    match Spnc_spn.Serialize.read_file path with
    | Ok m -> m
    | Error e -> failwith (Printf.sprintf "%s: %s" path e)
  else
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Spnc_spn.Text.of_string content

(* the same synthetic input stream [spnc_cli run] evaluates: a fresh
   seeded RNG per model, rows x features uniform in [-3, 3) — so the
   mean log-likelihood printed here and by the CLI must agree *)
let synthesize_rows ~seed ~rows ~features =
  let rng = Spnc_data.Rng.create ~seed in
  Array.init rows (fun _ ->
      Array.init features (fun _ -> Spnc_data.Rng.range rng (-3.0) 3.0))

(* -- serve --------------------------------------------------------------------- *)

let handle_connection server fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let write_lock = Mutex.create () in
  let respond ~id resp =
    try
      Mutex.lock write_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock write_lock)
        (fun () ->
          output_string oc (Proto.encode_response ~id resp);
          output_char oc '\n';
          flush oc)
    with Sys_error _ | Unix.Unix_error _ -> () (* peer went away *)
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | line when String.trim line = "" -> loop ()
    | line ->
        (match Proto.decode_request line with
        | Error e ->
            respond ~id:0 (Error { T.reason = T.Bad_request; detail = e })
        | Ok wr ->
            let deadline =
              Option.map
                (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0))
                wr.Proto.wr_deadline_ms
            in
            let ticket =
              Serve.submit_async server ~model:wr.Proto.wr_model ?deadline
                wr.Proto.wr_rows
            in
            (* pipelining: settle out of band so slow batches never block
               the read loop; responses carry the caller's id *)
            ignore
              (Thread.create
                 (fun () -> respond ~id:wr.Proto.wr_id (Serve.await ticket))
                 ()));
        loop ()
  in
  loop ()

let serve models_specs models_dir host port threads max_batch max_delay_ms
    queue_cap global_queue_cap engines_cap dispatchers starvation_ms
    cache_dir cache_mb =
  let specs =
    List.map parse_model_spec models_specs
    @ (match models_dir with None -> [] | Some d -> dir_models d)
  in
  if specs = [] then begin
    Fmt.epr "spnc_serve: no models (use --model NAME=PATH or --models-dir)@.";
    exit exit_failure_setup
  end;
  let options =
    {
      Spnc.Options.default with
      threads;
      serve_max_batch = max_batch;
      serve_max_delay_ms = max_delay_ms;
      serve_queue_cap = queue_cap;
      serve_global_queue_cap = global_queue_cap;
      serve_engines_cap = engines_cap;
      serve_dispatchers = dispatchers;
      serve_starvation_ms = starvation_ms;
      kernel_cache_dir = cache_dir;
      kernel_cache_mb = cache_mb;
    }
  in
  let server = Serve.create ~options () in
  List.iter (fun (name, path) -> Serve.register_path server ~name path) specs;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with Unix.Unix_error (e, _, _) ->
     Fmt.epr "spnc_serve: cannot bind %s:%d: %s@." host port
       (Unix.error_message e);
     exit exit_failure_setup);
  Unix.listen sock 64;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (* announce AFTER bind+listen so a launcher can poll for this line *)
  Fmt.pr "spnc_serve: listening on %s:%d (%d models)@." host actual_port
    (List.length specs);
  let stopping = ref false in
  let stop _ =
    if not !stopping then begin
      stopping := true;
      Serve.shutdown server;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      exit 0
    end
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec accept_loop () =
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | exception Unix.Unix_error _ when !stopping -> ()
    | fd, _ ->
        ignore (Thread.create (fun () -> handle_connection server fd) ());
        accept_loop ()
  in
  accept_loop ();
  0

(* -- check --------------------------------------------------------------------- *)

type check_outcome = {
  mutable ok : int;
  mutable shed : int;
  mutable expired : int;
  mutable failed : int;
  mutable mismatches : int;
}

let bits_equal a b =
  Array.length a = Array.length b
  && (let eq = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then eq := false)
        a;
      !eq)

let connect addr =
  match String.split_on_char ':' addr with
  | [ host; port ] ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string host, int_of_string port));
      fd
  | _ -> failwith (Printf.sprintf "bad --addr %S (want HOST:PORT)" addr)

let check model_specs addr rows per_request seed concurrency deadline_ms
    no_reference =
  let specs = List.map parse_model_spec model_specs in
  if specs = [] then begin
    Fmt.epr "spnc_serve check: need at least one MODEL=PATH argument@.";
    exit exit_failure_setup
  end;
  let models =
    List.map
      (fun (name, path) ->
        let m = read_model path in
        (name, m, synthesize_rows ~seed ~rows ~features:m.Spnc_spn.Model.num_features))
      specs
  in
  (* one request = [per_request] consecutive rows of one model's stream;
     requests interleave across models round-robin so concurrent load
     mixes tenants *)
  let requests = ref [] in
  List.iter
    (fun (name, _, data) ->
      let n = Array.length data in
      let off = ref 0 in
      while !off < n do
        let take = min per_request (n - !off) in
        requests := (name, !off, Array.sub data !off take) :: !requests;
        off := !off + take
      done)
    models;
  let requests = Array.of_list (List.rev !requests) in
  let n_req = Array.length requests in
  let responses : T.response option array = Array.make n_req None in
  let next = Atomic.make 0 in
  let worker () =
    let fd = connect addr in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rec pull () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n_req then begin
        let model, _, rows_slice = requests.(i) in
        let wr =
          {
            Proto.wr_id = i;
            wr_model = model;
            wr_rows = rows_slice;
            wr_deadline_ms = deadline_ms;
          }
        in
        output_string oc (Proto.encode_request wr);
        output_char oc '\n';
        flush oc;
        (match Proto.decode_response (input_line ic) with
        | Ok (id, resp) when id = i -> responses.(i) <- Some resp
        | Ok (_, resp) -> responses.(i) <- Some resp (* tolerate id drift *)
        | Error e ->
            responses.(i) <-
              Some (Error { T.reason = T.Engine_failure; detail = e }));
        pull ()
      end
    in
    (try pull () with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let threads =
    List.init (max 1 concurrency) (fun _ -> Thread.create worker ())
  in
  List.iter Thread.join threads;
  (* local sequential per-request reference, same default options *)
  let references =
    if no_reference then []
    else
      List.map
        (fun (name, m, _) -> (name, Spnc.Compiler.compile m))
        models
  in
  let outcome = { ok = 0; shed = 0; expired = 0; failed = 0; mismatches = 0 } in
  Array.iteri
    (fun i (model, _, rows_slice) ->
      match responses.(i) with
      | None | Some (Error { T.reason = T.Engine_failure; _ }) ->
          outcome.failed <- outcome.failed + 1
      | Some (Error e) when T.is_overloaded e -> outcome.shed <- outcome.shed + 1
      | Some (Error { T.reason = T.Expired; _ }) ->
          outcome.expired <- outcome.expired + 1
      | Some (Error _) -> outcome.failed <- outcome.failed + 1
      | Some (Ok values) ->
          outcome.ok <- outcome.ok + 1;
          if not no_reference then begin
            let compiled = List.assoc model references in
            let expected = Spnc.Compiler.execute compiled rows_slice in
            if not (bits_equal values expected) then
              outcome.mismatches <- outcome.mismatches + 1
          end)
    requests;
  Fmt.pr "requests: %d ok: %d shed: %d expired: %d failed: %d mismatches: %d@."
    n_req outcome.ok outcome.shed outcome.expired outcome.failed
    outcome.mismatches;
  Fmt.pr "bit-identical: %b@." (outcome.mismatches = 0);
  (* per-model mean LL over the full stream, printed in the CLI's exact
     format when every slice of the model's stream came back ok *)
  List.iter
    (fun (name, _, data) ->
      let total = Array.length data in
      let vals = ref [] and got = ref 0 in
      Array.iteri
        (fun i (m, off, _) ->
          if m = name then
            match responses.(i) with
            | Some (Ok values) ->
                vals := (off, values) :: !vals;
                got := !got + Array.length values
            | _ -> ())
        requests;
      if !got = total && total > 0 then begin
        let sum =
          List.fold_left
            (fun acc (_, values) -> Array.fold_left ( +. ) acc values)
            0.0 !vals
        in
        Fmt.pr "model %s: mean log-likelihood: %.6f@." name
          (sum /. float_of_int total)
      end
      else Fmt.pr "model %s: mean log-likelihood: n/a (incomplete)@." name)
    models;
  if outcome.mismatches > 0 then 1 else 0

(* -- cmdliner ------------------------------------------------------------------ *)

let serve_cmd =
  let models =
    Arg.(
      value & opt_all string []
      & info [ "model" ] ~docv:"NAME=PATH" ~doc:"Register one model.")
  in
  let models_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "models-dir" ]
          ~doc:"Register every .spn/.txt model in a directory.")
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ]) in
  let port =
    Arg.(value & opt int 7411 & info [ "port" ] ~doc:"TCP port (0 = ephemeral).")
  in
  let threads =
    Arg.(
      value & opt int 1
      & info [ "threads" ] ~doc:"Worker domains per engine (<= 0 auto).")
  in
  let max_batch =
    Arg.(
      value
      & opt int Spnc.Options.default.Spnc.Options.serve_max_batch
      & info [ "max-batch" ] ~doc:"Batcher flush threshold, rows.")
  in
  let max_delay =
    Arg.(
      value
      & opt float Spnc.Options.default.Spnc.Options.serve_max_delay_ms
      & info [ "max-delay-ms" ] ~doc:"Batcher flush timer, milliseconds.")
  in
  let queue_cap =
    Arg.(
      value
      & opt int Spnc.Options.default.Spnc.Options.serve_queue_cap
      & info [ "queue-cap" ] ~doc:"Per-model admission bound, requests.")
  in
  let global_cap =
    Arg.(
      value
      & opt int Spnc.Options.default.Spnc.Options.serve_global_queue_cap
      & info [ "global-queue-cap" ] ~doc:"Process-wide admission bound.")
  in
  let engines_cap =
    Arg.(
      value
      & opt int Spnc.Options.default.Spnc.Options.serve_engines_cap
      & info [ "engines-cap" ] ~doc:"Resident hot-engine LRU size.")
  in
  let dispatchers =
    Arg.(
      value
      & opt int Spnc.Options.default.Spnc.Options.serve_dispatchers
      & info [ "dispatchers" ] ~doc:"Dispatcher domains.")
  in
  let starvation =
    Arg.(
      value
      & opt float Spnc.Options.default.Spnc.Options.serve_starvation_ms
      & info [ "starvation-ms" ] ~doc:"EDF starvation guard, milliseconds.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel-cache-dir" ] ~doc:"Persistent kernel cache directory.")
  in
  let cache_mb =
    Arg.(
      value
      & opt int Spnc.Options.default.Spnc.Options.kernel_cache_mb
      & info [ "kernel-cache-mb" ])
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Host SPN models with dynamic batching.")
    Term.(
      const serve $ models $ models_dir $ host $ port $ threads $ max_batch
      $ max_delay $ queue_cap $ global_cap $ engines_cap $ dispatchers
      $ starvation $ cache_dir $ cache_mb)

let check_cmd =
  let models =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"NAME=PATH" ~doc:"Models to exercise.")
  in
  let addr = Arg.(value & opt string "127.0.0.1:7411" & info [ "addr" ]) in
  let rows =
    Arg.(
      value & opt int 64
      & info [ "rows" ] ~doc:"Rows per model (matches spnc_cli run --rows).")
  in
  let per_request =
    Arg.(
      value & opt int 1
      & info [ "per-request" ] ~doc:"Rows per request (1 = single-row).")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ]) in
  let concurrency = Arg.(value & opt int 8 & info [ "concurrency" ]) in
  let deadline_ms =
    Arg.(value & opt (some float) None & info [ "deadline-ms" ])
  in
  let no_reference =
    Arg.(
      value & flag
      & info [ "no-reference" ]
          ~doc:"Skip the local bit-identity reference (server options differ).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Fire concurrent requests and verify against local execution.")
    Term.(
      const check $ models $ addr $ rows $ per_request $ seed $ concurrency
      $ deadline_ms $ no_reference)

let main_cmd =
  Cmd.group
    (Cmd.info "spnc_serve" ~version:"dev"
       ~doc:"Dynamic-batching multi-tenant SPN model server.")
    [ serve_cmd; check_cmd ]

let () =
  Spnc_resilience.Fault.arm_from_env ();
  exit (Cmd.eval' main_cmd)
