(** bench_check — the CI perf-regression gate (docs/OBSERVABILITY.md).

    Compares freshly produced bench artifacts (BENCH_cpu.json,
    BENCH_gpu.json, and the Obs metrics snapshots) against baselines
    committed under [ci/baselines/].  Shared CI runners are far too
    noisy for tight wall-clock gates, so the policy is deliberately
    asymmetric:

    {b hard failures} (exit 1) — things that are never noise:
    - an unreadable / unparseable fresh artifact (it was produced by the
      same CI run, so a broken one means the bench itself broke);
    - a bit-identity break ([bit_identical] /
      [outputs_bit_identical] false in the fresh run) — engines or
      schedules diverging is a correctness bug, not a perf wobble;
    - a wall-clock latency blowup of more than [!blowup] (default 3x)
      over the baseline that is also more than [!abs_guard_ms] in
      absolute terms (tiny numbers triple on a cache hiccup);
    - a {e modelled} (deterministic) GPU time that moved more than the
      blowup factor — those numbers have no noise excuse.

    {b report-only} (WARN lines, exit 0) — everything else: moderate
    latency drift, speedup erosion, metric-snapshot differences, all
    ratio checks when the fresh and baseline runs were produced at
    different workload scales ([scale] field mismatch), and a missing
    or unparsable {e baseline} under [ci/baselines/] — a branch that
    has not committed baselines yet (or whose baseline format predates
    a schema change) gets its comparisons skipped with a WARN, not a
    red build.

    {v
    bench_check --cpu BENCH_cpu.json --cpu-baseline ci/baselines/BENCH_cpu.json \
                --gpu BENCH_gpu.json --gpu-baseline ci/baselines/BENCH_gpu.json \
                --metrics METRICS_cpu.json --metrics-baseline ci/baselines/METRICS_cpu.json
    v} *)

module Json = Spnc_obs.Json
module Snapshot = Spnc_obs.Snapshot

let cpu_path = ref ""
let cpu_baseline = ref ""
let gpu_path = ref ""
let gpu_baseline = ref ""
let serve_path = ref ""
let serve_baseline = ref ""
let metrics_path = ref ""
let metrics_baseline = ref ""
let passorder_path = ref ""
let passorder_baseline = ref ""
let blowup = ref 3.0
let abs_guard_ms = ref 10.0

let spec =
  [
    ("--cpu", Arg.Set_string cpu_path, "FILE Fresh BENCH_cpu.json");
    ("--cpu-baseline", Arg.Set_string cpu_baseline, "FILE Committed CPU baseline");
    ("--gpu", Arg.Set_string gpu_path, "FILE Fresh BENCH_gpu.json");
    ("--gpu-baseline", Arg.Set_string gpu_baseline, "FILE Committed GPU baseline");
    ("--serve", Arg.Set_string serve_path, "FILE Fresh BENCH_serve.json");
    ( "--serve-baseline",
      Arg.Set_string serve_baseline,
      "FILE Committed serving baseline" );
    ("--metrics", Arg.Set_string metrics_path, "FILE Fresh metrics snapshot");
    ( "--metrics-baseline",
      Arg.Set_string metrics_baseline,
      "FILE Committed metrics-snapshot baseline" );
    ( "--passorder",
      Arg.Set_string passorder_path,
      "FILE Fresh PASSORDER_cpu.json pass-ordering leaderboard" );
    ( "--passorder-baseline",
      Arg.Set_string passorder_baseline,
      "FILE Committed pass-ordering leaderboard baseline" );
    ( "--blowup",
      Arg.Set_float blowup,
      "X Hard-fail latency ratio threshold (default 3.0)" );
    ( "--abs-guard-ms",
      Arg.Set_float abs_guard_ms,
      "MS Absolute regression floor below which ratios never hard-fail \
       (default 10)" );
  ]

let usage = "bench_check --cpu FILE --cpu-baseline FILE [options]"

let failures = ref 0
let fail fmt = Printf.ksprintf (fun s -> incr failures; Printf.printf "FAIL: %s\n" s) fmt
let warn fmt = Printf.ksprintf (fun s -> Printf.printf "WARN: %s\n" s) fmt
let info fmt = Printf.ksprintf (fun s -> Printf.printf "  ok: %s\n" s) fmt

(* A broken FRESH artifact is a hard failure (the same CI run produced
   it); a broken BASELINE is report-only — branches without committed
   baselines, or baselines predating a schema change, skip the
   comparison with a WARN instead of going red. *)
let load ?(baseline = false) name path : Json.t option =
  if path = "" then None
  else
    match Json.parse_file path with
    | Ok j -> Some j
    | Error e ->
        if baseline then
          warn "%s: cannot read %s: %s — comparisons skipped" name path e
        else fail "%s: cannot read %s: %s" name path e;
        None

let get_num j path = Option.bind (Json.find j path) Json.num
let get_bool j path = Option.bind (Json.find j path) Json.bool
let get_str j path = Option.bind (Json.find j path) Json.str

(* Compare one lower-is-better number.  [hard] selects whether a blowup
   may fail the gate (wall-clock at matching scale, or modelled numbers);
   [unit_ms] converts the value to ms for the absolute guard. *)
let check_lower ~name ~key ~hard ~unit_ms fresh baseline =
  match (get_num fresh key, get_num baseline key) with
  | Some f, Some b when b > 0.0 ->
      let ratio = f /. b in
      let delta_ms = (f -. b) *. unit_ms in
      if ratio > !blowup && delta_ms > !abs_guard_ms && hard then
        fail "%s %s: %.4g vs baseline %.4g (%.2fx > %.1fx blowup)" name key f b
          ratio !blowup
      else if ratio > 1.25 then
        warn "%s %s: %.4g vs baseline %.4g (%.2fx)" name key f b ratio
      else info "%s %s: %.4g vs baseline %.4g (%.2fx)" name key f b ratio
  | Some _, Some _ -> () (* zero baseline: nothing meaningful to compare *)
  | None, _ -> fail "%s: missing %s in fresh artifact" name key
  | _, None -> warn "%s: baseline has no %s (new metric?)" name key

(* Higher-is-better numbers (speedups, throughput) are always
   report-only: CI hosts routinely halve throughput under contention. *)
let check_higher ~name ~key fresh baseline =
  match (get_num fresh key, get_num baseline key) with
  | Some f, Some b when b > 0.0 && f > 0.0 ->
      let ratio = b /. f in
      if ratio > 1.25 then
        warn "%s %s: %.4g vs baseline %.4g (%.2fx worse)" name key f b ratio
      else info "%s %s: %.4g vs baseline %.4g" name key f b
  | _ -> ()

let check_bit ~name ~key fresh =
  match get_bool fresh key with
  | Some true -> info "%s %s: true" name key
  | Some false -> fail "%s: %s is FALSE — outputs diverged" name key
  | None -> fail "%s: missing %s in fresh artifact" name key

let scales_match ~name fresh baseline =
  match (get_str fresh "scale", get_str baseline "scale") with
  | Some a, Some b when a = b -> true
  | Some a, Some b ->
      warn
        "%s: scale %S vs baseline %S — latency ratios are report-only for \
         this artifact"
        name a b;
      false
  | _ ->
      warn "%s: missing scale field; latency ratios are report-only" name;
      false

let check_cpu fresh baseline =
  let name = "cpu" in
  (* correctness gate first: fresh-run bit identity is scale-independent *)
  check_bit ~name ~key:"bit_identical" fresh;
  let hard = scales_match ~name fresh baseline in
  (* wall-clock: hard only at matching scale, and only past the blowup
     factor + absolute guard *)
  check_lower ~name ~key:"best_cpu.jit_seconds" ~hard ~unit_ms:1e3 fresh baseline;
  check_lower ~name ~key:"scalar.jit_seconds" ~hard ~unit_ms:1e3 fresh baseline;
  check_lower ~name ~key:"sustained.pool.p50_ms" ~hard ~unit_ms:1.0 fresh baseline;
  check_lower ~name ~key:"sustained.pool.p99_ms" ~hard ~unit_ms:1.0 fresh baseline;
  check_higher ~name ~key:"jit_speedup" fresh baseline;
  check_higher ~name ~key:"sustained.pool_speedup" fresh baseline;
  check_higher ~name ~key:"sustained.pool.calls_per_sec" fresh baseline;
  (* cold start (persistent kernel cache vs full pipeline): report-only —
     compile times on shared runners swing with I/O contention, and a
     baseline predating the cache just WARNs "new metric" *)
  check_lower ~name ~key:"cold_start.full_compile_seconds" ~hard:false
    ~unit_ms:1e3 fresh baseline;
  check_lower ~name ~key:"cold_start.disk_hit_seconds" ~hard:false ~unit_ms:1e3
    fresh baseline;
  check_higher ~name ~key:"cold_start.speedup" fresh baseline;
  (* Fig. 6 DSE + auto-tuner section.  Hard gates are reserved for bit
     identity (a measured candidate or fig6 point diverging from the
     scalar reference is a miscompile, never noise); everything else —
     the paper-shape ordering, the tuner finding a config at least as
     good as the fixed default, the cost-model/wall rank correlation —
     is WARN-only, because small-scale modelled gaps and shared-runner
     wall clocks both wobble *)
  check_bit ~name ~key:"fig6_cpu_dse.bit_identical" fresh;
  check_bit ~name ~key:"fig6_cpu_dse.autotune.all_measured_bit_identical" fresh;
  let warn_bool key =
    match get_bool fresh key with
    | Some true -> info "%s %s: true" name key
    | Some false -> warn "%s: %s is false" name key
    | None -> warn "%s: missing %s (bench predates the DSE section?)" name key
  in
  warn_bool "fig6_cpu_dse.order_ok";
  warn_bool "fig6_cpu_dse.autotune.best_no_slower_than_default";
  (match get_num fresh "fig6_cpu_dse.autotune.spearman" with
  | Some rho when rho < 0.0 -> (
      (* name the dimension the cost model prices backwards instead of
         leaving a bare coefficient in the log (EXPERIMENTS.md §DSE) *)
      match get_str fresh "fig6_cpu_dse.autotune.inverted_dimensions" with
      | Some dims when dims <> "" ->
          warn
            "%s: autotune spearman(est, wall) = %.2f — cost model ranks the \
             %s dimension(s) opposite to the wall clock over the measured \
             candidates"
            name rho dims
      | _ ->
          warn
            "%s: autotune spearman(est, wall) = %.2f (anti-correlated, but \
             no single dimension is inverted: the measured set is too \
             homogeneous for rank stability)"
            name rho)
  | Some rho -> info "%s fig6_cpu_dse.autotune.spearman: %.2f" name rho
  | None -> info "%s fig6_cpu_dse.autotune.spearman: n/a (< 3 measurements)" name);
  check_lower ~name ~key:"fig6_cpu_dse.autotune.best_est_seconds" ~hard:false
    ~unit_ms:1e3 fresh baseline;
  check_higher ~name ~key:"fig6_cpu_dse.autotune.space_size" fresh baseline

let check_gpu fresh baseline =
  let name = "gpu" in
  check_bit ~name ~key:"outputs_bit_identical" fresh;
  let same_scale = scales_match ~name fresh baseline in
  (* GPU times are modelled, hence deterministic: gate them whenever the
     scale matches, with no absolute guard excuse — use a tiny floor so
     float formatting jitter cannot trip it *)
  let check_modelled key =
    match (get_num fresh key, get_num baseline key) with
    | Some f, Some b when b > 0.0 ->
        let ratio = f /. b in
        if same_scale && ratio > !blowup then
          fail "%s %s (modelled): %.6g vs baseline %.6g (%.2fx)" name key f b
            ratio
        else if ratio > 1.05 || ratio < 0.95 then
          warn "%s %s (modelled): %.6g vs baseline %.6g (%.2fx)" name key f b
            ratio
        else info "%s %s: %.6g vs baseline %.6g" name key f b
    | Some _, Some _ -> ()
    | None, _ -> fail "%s: missing %s in fresh artifact" name key
    | _, None -> warn "%s: baseline has no %s" name key
  in
  check_modelled "monolithic.total_seconds";
  check_modelled "streams_4.total_seconds";
  check_modelled "transfer_fraction";
  check_higher ~name ~key:"speedup_streams_4" fresh baseline

(* Serving bench (BENCH_serve.json).  Hard gates: bit identity only — a
   batched response diverging from sequential per-request execution is a
   scatter/coalescing bug, never noise.  Throughput, speedups and tail
   latencies are WARN past the blowup factor: the serving numbers are
   client-side-bound on small CI hosts, so wall gates would flap. *)
let check_serve fresh baseline =
  let name = "serve" in
  check_bit ~name ~key:"bit_identical" fresh;
  (match get_num fresh "shed_below_knee_rate" with
  | Some r when r > 0.0 ->
      warn
        "%s: shed_below_knee_rate = %.4f — requests were shed below the \
         capacity knee (admission caps too tight for this host?)"
        name r
  | Some _ -> info "%s shed_below_knee_rate: 0" name
  | None -> fail "%s: missing shed_below_knee_rate in fresh artifact" name);
  let drift key =
    match (get_num fresh key, get_num baseline key) with
    | Some f, Some b when b > 0.0 && f > 0.0 ->
        let worse = b /. f in
        if worse > !blowup then
          warn "%s %s: %.4g vs baseline %.4g (%.2fx worse than the %.1fx drift \
                guard)" name key f b worse !blowup
        else if worse > 1.25 then
          warn "%s %s: %.4g vs baseline %.4g (%.2fx worse)" name key f b worse
        else info "%s %s: %.4g vs baseline %.4g" name key f b
    | Some _, Some _ -> ()
    | None, _ -> fail "%s: missing %s in fresh artifact" name key
    | _, None -> warn "%s: baseline has no %s (new metric?)" name key
  in
  drift "batched_capacity_rps";
  drift "batched_vs_unbatched_speedup";
  drift "speedup_at_peak";
  check_lower ~name ~key:"unbatched_at_peak.p99_ms" ~hard:false ~unit_ms:1.0
    fresh baseline

(* Pass-ordering leaderboard (PASSORDER_cpu.json, written by spnc_fuzz
   --smith-explore).  Hard gates: a wrong schema (the explorer and the
   gate disagree about the format) and any entry with
   [bit_identical=false] — a leaderboard is a promotion shortlist, and a
   miscompiling ordering on it must go red before anyone promotes it
   with --passorder-file.  Baseline comparison is WARN-only drift: the
   winning ordering changing, or its profiled cycle estimate moving, is
   information for a human, not a regression. *)
let check_passorder fresh baseline =
  let name = "passorder" in
  (match get_str fresh "schema" with
  | Some "spnc-passorder-v1" -> info "%s schema: spnc-passorder-v1" name
  | Some s -> fail "%s: unknown schema %S (expected spnc-passorder-v1)" name s
  | None -> fail "%s: missing schema field" name);
  let entries j =
    match Option.bind (Json.find j "entries") Json.list with
    | Some l -> l
    | None -> []
  in
  let fresh_entries = entries fresh in
  if fresh_entries = [] then fail "%s: leaderboard has no entries" name
  else begin
    List.iter
      (fun e ->
        let order =
          Option.value ~default:"?"
            (Option.bind (Json.member "order" e) Json.str)
        in
        match Option.bind (Json.member "bit_identical" e) Json.bool with
        | Some true -> ()
        | Some false ->
            fail
              "%s: ordering %S is NOT bit-identical to the default — a \
               miscompiling ordering must never sit on the promotion \
               shortlist"
              name order
        | None -> fail "%s: entry %S missing bit_identical" name order)
      fresh_entries;
    let best j =
      match entries j with
      | e :: _ ->
          ( Option.bind (Json.member "order" e) Json.str,
            Option.bind (Json.member "est_cycles" e) Json.num )
      | [] -> (None, None)
    in
    let f_order, f_cycles = best fresh in
    (match f_order with
    | Some o -> info "%s best ordering: %s" name o
    | None -> ());
    match baseline with
    | None -> ()
    | Some b ->
        let b_order, b_cycles = best b in
        (match (f_order, b_order) with
        | Some f, Some bo when f <> bo ->
            warn "%s: best ordering changed: %S -> %S" name bo f
        | _ -> ());
        (match (f_cycles, b_cycles) with
        | Some f, Some bc when bc > 0.0 && f /. bc > 1.25 ->
            warn "%s: best est_cycles %.4g vs baseline %.4g (%.2fx)" name f bc
              (f /. bc)
        | _ -> ())
  end

(* Metrics snapshots are report-only: they carry workload-dependent
   counters (rows, chunks, steals) that legitimately move.  What the
   diff surfaces is disappearing instrumentation and wild counter
   swings, both of which deserve a human look but not a red build. *)
let check_metrics fresh_j baseline_j =
  let parse which j =
    match Snapshot.of_json j with
    | Ok s -> Some s
    | Error e ->
        if which = "baseline" then
          warn "metrics %s: not a valid snapshot: %s — comparisons skipped"
            which e
        else fail "metrics %s: not a valid snapshot: %s" which e;
        None
  in
  match (parse "fresh" fresh_j, parse "baseline" baseline_j) with
  | Some fresh, Some baseline ->
      let fresh_names = List.map fst fresh.Snapshot.metrics in
      List.iter
        (fun (bname, bm) ->
          match List.assoc_opt bname fresh.Snapshot.metrics with
          | None ->
              warn "metrics: %s present in baseline but missing from fresh run"
                bname
          | Some fm -> (
              match (bm, fm) with
              | Snapshot.Counter b, Snapshot.Counter f
                when b > 0 && (f = 0 || f > 20 * b) ->
                  warn "metrics: counter %s moved %d -> %d" bname b f
              | _ -> ()))
        baseline.Snapshot.metrics;
      List.iter
        (fun fname ->
          if not (List.mem_assoc fname baseline.Snapshot.metrics) then
            info "metrics: new instrument %s (not in baseline)" fname)
        fresh_names
  | _ -> ()

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let pair what fresh baseline k =
    match (fresh, baseline) with
    | "", "" -> ()
    | "", _ -> fail "%s: baseline given but no fresh artifact" what
    | _, "" ->
        warn "%s: no baseline configured — comparisons skipped" what
    | f, b -> (
        match (load what f, load ~baseline:true (what ^ " baseline") b) with
        | Some fj, Some bj -> k fj bj
        | Some _, None | None, _ -> ()
        (* load already recorded the failure or warning *))
  in
  pair "cpu" !cpu_path !cpu_baseline check_cpu;
  pair "gpu" !gpu_path !gpu_baseline check_gpu;
  pair "serve" !serve_path !serve_baseline check_serve;
  pair "metrics" !metrics_path !metrics_baseline check_metrics;
  (* passorder runs its fresh-only gates even without a baseline *)
  (match !passorder_path with
  | "" ->
      if !passorder_baseline <> "" then
        fail "passorder: baseline given but no fresh artifact"
  | p -> (
      match load "passorder" p with
      | None -> ()
      | Some fresh ->
          let baseline =
            if !passorder_baseline = "" then None
            else load ~baseline:true "passorder baseline" !passorder_baseline
          in
          check_passorder fresh baseline));
  if
    !cpu_path = "" && !gpu_path = "" && !serve_path = "" && !metrics_path = ""
    && !passorder_path = ""
  then begin
    prerr_endline "bench_check: nothing to check (see --help)";
    exit 2
  end;
  if !failures > 0 then begin
    Printf.printf "bench_check: %d hard failure(s)\n" !failures;
    exit 1
  end
  else print_endline "bench_check: OK (hard gates passed; WARNs are report-only)"
