(** spnc — command-line driver for the SPN compiler.

    Subcommands:
    - [generate]: synthesize a random SPN (generic or RAT-SPN) and write
      it to a binary or text file;
    - [inspect]: print model statistics and optionally the HiSPN / LoSPN
      IR of its query;
    - [compile]: run the full pipeline, printing per-stage timings,
      instruction counts and (for GPU) the pseudo-PTX;
    - [run]: compile and execute over synthetic inputs, printing result
      statistics and a comparison against the reference evaluator. *)

open Cmdliner
module Model = Spnc_spn.Model

(* sysexits-style exit codes (documented in README.md): scripts driving
   spnc can tell a bad input from a runtime failure from a timeout
   without parsing stderr. *)
let exit_compile_failure = 65 (* EX_DATAERR: bad model / failed pipeline *)
let exit_execution_failure = 70 (* EX_SOFTWARE: kernel failed at runtime *)
let exit_timeout = 75 (* EX_TEMPFAIL: deadline exceeded; retry may work *)

(* Every subcommand runs under this barrier: compiler and runtime
   failures land on stderr as one diagnostic with a class-specific
   nonzero exit code, never as an uncaught-exception backtrace. *)
let guarded (f : unit -> int) : int =
  try f () with
  | Failure msg | Sys_error msg | Invalid_argument msg ->
      Fmt.epr "spnc: error: %s@." msg;
      1
  | Spnc_mlir.Pass.Pipeline_error (p, msg) ->
      Fmt.epr "spnc: error: pass %s failed: %s@." p msg;
      exit_compile_failure
  | Spnc_resilience.Diag.Diag_error d ->
      Fmt.epr "spnc: error: %a@." Spnc_resilience.Diag.pp d;
      exit_compile_failure
  | Spnc_resilience.Guard.Guard_failure d ->
      Fmt.epr "spnc: error: %a@." Spnc_resilience.Diag.pp d;
      exit_execution_failure
  | Spnc_resilience.Fault.Transient msg ->
      Fmt.epr "spnc: error: transient execution failure: %s@." msg;
      exit_execution_failure
  | Spnc_runtime.Exec.Chunk_error e ->
      Fmt.epr "spnc: error: kernel failed on samples [%d,%d): %s@."
        e.Spnc_runtime.Exec.chunk_lo e.Spnc_runtime.Exec.chunk_hi
        e.Spnc_runtime.Exec.message;
      exit_execution_failure
  | Spnc_runtime.Exec.Deadline_exceeded d ->
      Fmt.epr "spnc: error: deadline exceeded (over budget by %.3fs)@."
        (d.Spnc_runtime.Exec.now -. d.Spnc_runtime.Exec.deadline);
      exit_timeout
  | Spnc_spn.Validate.Invalid issues ->
      Fmt.epr "spnc: error: invalid model:@.%s@."
        (Spnc_spn.Validate.issues_to_string issues);
      exit_compile_failure

let read_model path : Spnc_spn.Model.t =
  if Filename.check_suffix path ".spn" then
    match Spnc_spn.Serialize.read_file path with
    | Ok m -> m
    | Error e -> failwith (Printf.sprintf "%s: %s" path e)
  else
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Spnc_spn.Text.of_string content

let write_model path m =
  if Filename.check_suffix path ".spn" then Spnc_spn.Serialize.write_file path m
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Spnc_spn.Text.to_string m))
  end

(* -- generate ----------------------------------------------------------------- *)

let generate seed kind features min_ops out =
  guarded @@ fun () ->
  let rng = Spnc_data.Rng.create ~seed in
  let model =
    match kind with
    | `Generic ->
        Spnc_spn.Random_spn.generate_sized rng
          { Spnc_spn.Random_spn.speaker_id_config with num_features = features }
          ~min_ops
    | `Rat ->
        let models =
          Spnc_spn.Rat_spn.generate rng
            { Spnc_spn.Rat_spn.bench_config with num_features = features }
        in
        models.(0)
  in
  write_model out model;
  Fmt.pr "wrote %s: %a@." out Spnc_spn.Stats.pp (Spnc_spn.Stats.compute model);
  0

let generate_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let kind =
    Arg.(
      value
      & opt (enum [ ("generic", `Generic); ("rat-spn", `Rat) ]) `Generic
      & info [ "kind" ] ~doc:"Model family: generic or rat-spn.")
  in
  let features =
    Arg.(value & opt int 26 & info [ "features" ] ~doc:"Number of input features.")
  in
  let min_ops =
    Arg.(value & opt int 2000 & info [ "min-ops" ] ~doc:"Minimum operation count.")
  in
  let out =
    Arg.(
      value & opt string "model.spn"
      & info [ "o"; "output" ] ~doc:"Output path (.spn binary or .txt DSL).")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Synthesize a random SPN model.")
    Term.(const generate $ seed $ kind $ features $ min_ops $ out)

(* -- train ---------------------------------------------------------------------- *)

let train data_path em_iters min_rows out seed =
  guarded @@ fun () ->
  let rng = Spnc_data.Rng.create ~seed in
  let dataset =
    match data_path with
    | Some path -> (
        match Spnc_data.Csv.read_file path with
        | Ok d -> d
        | Error e -> failwith (Printf.sprintf "%s: %s" path e))
    | None ->
        (* no data given: synthesize a Gaussian-mixture training set *)
        let gmms =
          [| Spnc_data.Synth.random_gmm rng ~num_features:8 ~components:3 ~spread:3.0 |]
        in
        Spnc_data.Synth.dataset_of_gmms rng gmms ~rows_per_class:600
  in
  Fmt.pr "training data: %d rows x %d features@."
    (Spnc_data.Synth.num_rows dataset)
    dataset.Spnc_data.Synth.num_features;
  let model =
    Spnc_spn.Learnspn.learn rng
      ~config:{ Spnc_spn.Learnspn.default_config with min_rows }
      dataset.Spnc_data.Synth.samples
      ~num_features:dataset.Spnc_data.Synth.num_features ~name:"learned"
  in
  Fmt.pr "LearnSPN structure: %a@." Spnc_spn.Stats.pp (Spnc_spn.Stats.compute model);
  let model, report =
    Spnc_spn.Em.fit
      ~config:{ Spnc_spn.Em.default_config with iterations = em_iters }
      model dataset.Spnc_data.Synth.samples
  in
  (match (report.Spnc_spn.Em.log_likelihoods, List.rev report.Spnc_spn.Em.log_likelihoods) with
  | first :: _, last :: _ -> Fmt.pr "EM (%d iters): train LL %.2f -> %.2f@." em_iters first last
  | _ -> ());
  write_model out model;
  Fmt.pr "wrote %s@." out;
  0

let train_cmd =
  let data =
    Arg.(
      value & opt (some string) None
      & info [ "data" ] ~doc:"Training CSV (float features; NaN/empty = missing).")
  in
  let em = Arg.(value & opt int 5 & info [ "em-iterations" ] ~doc:"EM iterations.") in
  let min_rows =
    Arg.(value & opt int 16 & info [ "min-rows" ] ~doc:"LearnSPN row threshold.")
  in
  let out =
    Arg.(value & opt string "learned.spn" & info [ "o"; "output" ] ~doc:"Output model path.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "train" ~doc:"Learn an SPN from data (LearnSPN structure + EM weights).")
    Term.(const train $ data $ em $ min_rows $ out $ seed)

(* -- inspect ------------------------------------------------------------------- *)

let inspect path dump_hispn dump_lospn =
  guarded @@ fun () ->
  let model = read_model path in
  Fmt.pr "%s: %a@." path Spnc_spn.Stats.pp (Spnc_spn.Stats.compute model);
  (match Spnc_spn.Validate.check model with
  | [] -> Fmt.pr "structure: valid (smooth, decomposable, normalized)@."
  | issues ->
      Fmt.pr "structure: INVALID@.%s@." (Spnc_spn.Validate.issues_to_string issues));
  if dump_hispn then begin
    let hi = Spnc_hispn.From_model.translate model in
    Fmt.pr "--- HiSPN ---@.%s@." (Spnc_mlir.Printer.modul_to_string hi)
  end;
  if dump_lospn then begin
    let hi = Spnc_hispn.From_model.translate model in
    let lo = Spnc_lospn.Lower_hispn.run hi in
    Fmt.pr "--- LoSPN ---@.%s@." (Spnc_mlir.Printer.modul_to_string lo)
  end;
  0

let inspect_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL") in
  let hispn = Arg.(value & flag & info [ "hispn" ] ~doc:"Dump the HiSPN IR.") in
  let lospn = Arg.(value & flag & info [ "lospn" ] ~doc:"Dump the LoSPN IR.") in
  Cmd.v (Cmd.info "inspect" ~doc:"Show statistics and IR of a model.")
    Term.(const inspect $ path $ hispn $ lospn)

(* -- shared compile options ------------------------------------------------------ *)

let options_term =
  let target =
    Arg.(
      value
      & opt (enum [ ("cpu", Spnc.Options.Cpu); ("gpu", Spnc.Options.Gpu) ]) Spnc.Options.Cpu
      & info [ "target" ] ~doc:"Compilation target: cpu or gpu.")
  in
  let vectorize = Arg.(value & flag & info [ "vectorize" ] ~doc:"Enable SIMD vectorization.") in
  let no_veclib =
    Arg.(value & flag & info [ "no-veclib" ] ~doc:"Disable the vector math library.")
  in
  let no_shuffle =
    Arg.(value & flag & info [ "no-shuffle" ] ~doc:"Use gathers instead of shuffled loads.")
  in
  let opt_level =
    Arg.(value & opt int 1 & info [ "O"; "opt-level" ] ~doc:"Optimization level 0-3.")
  in
  let partition =
    Arg.(
      value & opt (some int) None
      & info [ "max-partition-size" ] ~doc:"Enable graph partitioning with this max task size.")
  in
  let batch = Arg.(value & opt int 4096 & info [ "batch-size" ] ~doc:"Batch size hint.") in
  let block = Arg.(value & opt int 64 & info [ "block-size" ] ~doc:"GPU block size.") in
  let marginal =
    Arg.(value & flag & info [ "support-marginal" ] ~doc:"Compile marginal inference support.")
  in
  let threads =
    Arg.(
      value & opt int 1
      & info [ "threads" ]
          ~doc:
            "Runtime worker threads; 0 (or negative) auto-detects from the \
             available cores.")
  in
  let sched =
    Arg.(
      value
      & opt
          (enum
             [ ("static", Spnc.Options.Static); ("stealing", Spnc.Options.Stealing) ])
          Spnc.Options.Stealing
      & info [ "sched" ]
          ~doc:
            "Parallel chunk scheduler: stealing (work-stealing deques, \
             default) or static (fixed contiguous blocks).")
  in
  let streams =
    Arg.(
      value & opt int 1
      & info [ "streams" ]
          ~doc:
            "GPU stream chunks for double-buffered transfer/compute overlap \
             (1 = monolithic schedule).")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("vm", Spnc_cpu.Jit.Vm); ("jit", Spnc_cpu.Jit.Jit) ])
          Spnc_cpu.Jit.Jit
      & info [ "engine" ]
          ~doc:
            "CPU execution engine: jit (closure compiler, default) or vm \
             (reference interpreter).")
  in
  let no_kernel_cache =
    Arg.(
      value & flag
      & info [ "no-kernel-cache" ]
          ~doc:"Always run the full pass pipeline; skip the kernel cache.")
  in
  let kernel_cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel-cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist compiled kernels to $(docv) across processes \
             (crash-safe: checksummed entries, atomic publish, LRU-bounded; \
             corrupt entries are quarantined and recompiled — \
             docs/RESILIENCE.md).")
  in
  let kernel_cache_mb =
    Arg.(
      value & opt int 256
      & info [ "kernel-cache-mb" ]
          ~doc:"On-disk kernel cache size budget in megabytes.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ]
          ~doc:
            "Wall-clock budget per execution call, in milliseconds; \
             exceeding it cancels in-flight work and exits with code 75.")
  in
  let exec_retries =
    Arg.(
      value & opt int 2
      & info [ "exec-retries" ]
          ~doc:
            "Retries for transient execution failures (capped exponential \
             backoff, never past the deadline).")
  in
  let machine =
    Arg.(
      value
      & opt (enum [ ("ryzen", `Ryzen); ("xeon", `Xeon) ]) `Ryzen
      & info [ "machine" ] ~doc:"CPU model: ryzen (AVX2) or xeon (AVX-512).")
  in
  let veclib =
    Arg.(
      value
      & opt (some (enum (List.map (fun v -> (Spnc_machine.Machine.veclib_to_string v, v))
                           [ Spnc_machine.Machine.No_veclib; Spnc_machine.Machine.SVML;
                             Spnc_machine.Machine.Libmvec ])))
          None
      & info [ "veclib" ]
          ~doc:
            "Vector math library the machine links: libmvec, svml or none \
             (default: the machine's own — libmvec on ryzen, svml on xeon).  \
             Distinct from $(b,--no-veclib), which keeps the library \
             available but stops the compiler from calling it.")
  in
  let output_guard =
    Arg.(
      value
      & opt
          (enum
             [
               ("fail", Spnc_resilience.Guard.Fail);
               ("warn", Spnc_resilience.Guard.Warn);
               ("clamp", Spnc_resilience.Guard.Clamp);
             ])
          Spnc_resilience.Guard.Warn
      & info [ "output-guard" ]
          ~doc:"Policy for NaN/inf/log-underflow kernel outputs.")
  in
  let no_gpu_fallback =
    Arg.(
      value & flag
      & info [ "no-gpu-fallback" ]
          ~doc:"Fail instead of falling back to CPU on a GPU backend error.")
  in
  let passorder =
    let passorder_c =
      let parse s =
        let order = Spnc_smith.Passorder.order_of_string s in
        match Spnc.Pipelines.lospn_opt_passes order with
        | Ok _ -> Ok order
        | Error e -> Error (`Msg e)
      in
      let pp ppf o = Fmt.string ppf (Spnc_smith.Passorder.order_to_string o) in
      Arg.conv (parse, pp)
    in
    Arg.(
      value
      & opt (some passorder_c) None
      & info [ "passorder" ] ~docv:"P1,P2,.."
          ~doc:
            "Override the LoSPN opt-stage pass ordering (pool: constfold, \
             cse, dce, canonicalize).  Validated against the pass pool; \
             participates in the artifact fingerprint, so cached kernels are \
             keyed per ordering.  Orderings are discovered by $(b,spnc_fuzz \
             --smith-explore) (docs/FUZZING.md).")
  in
  let passorder_file =
    let passorder_file_c =
      let parse path =
        match Spnc_smith.Passorder.read_leaderboard ~path with
        | Error e -> Error (`Msg (Printf.sprintf "%s: %s" path e))
        | Ok scores -> (
            match Spnc_smith.Passorder.best scores with
            | Some s -> Ok s.Spnc_smith.Passorder.order
            | None ->
                Error (`Msg (path ^ ": no bit-identical ordering to promote")))
      in
      let pp ppf o = Fmt.string ppf (Spnc_smith.Passorder.order_to_string o) in
      Arg.conv (parse, pp)
    in
    Arg.(
      value
      & opt (some passorder_file_c) None
      & info [ "passorder-file" ] ~docv:"FILE"
          ~doc:
            "Promote the best bit-identical pass ordering from a \
             $(b,PASSORDER_cpu.json) leaderboard written by $(b,spnc_fuzz \
             --smith-explore); $(b,--passorder) wins when both are given.")
  in
  let build target vectorize no_veclib no_shuffle opt_level partition batch block
      marginal threads sched streams engine no_kernel_cache kernel_cache_dir
      kernel_cache_mb deadline_ms exec_retries machine veclib output_guard
      no_gpu_fallback passorder passorder_file =
    {
      Spnc.Options.default with
      target;
      machine =
        (let m =
           match machine with
           | `Ryzen -> Spnc_machine.Machine.ryzen_3900xt
           | `Xeon -> Spnc_machine.Machine.xeon_9242
         in
         match veclib with
         | None -> m
         | Some v -> { m with Spnc_machine.Machine.veclib = v });
      vectorize;
      use_veclib = not no_veclib;
      use_shuffle = not no_shuffle;
      opt_level = Spnc_cpu.Optimizer.level_of_int opt_level;
      max_partition_size = partition;
      batch_size = batch;
      block_size = block;
      support_marginal = marginal;
      threads = Spnc.Options.normalize_threads threads;
      sched;
      streams = max 1 streams;
      engine;
      use_kernel_cache = not no_kernel_cache;
      kernel_cache_dir;
      kernel_cache_mb = max 1 kernel_cache_mb;
      deadline_ms;
      exec_retries = max 0 exec_retries;
      output_guard;
      gpu_fallback = not no_gpu_fallback;
      lospn_opt_order =
        (match passorder with Some o -> Some o | None -> passorder_file);
    }
  in
  Term.(
    const build $ target $ vectorize $ no_veclib $ no_shuffle $ opt_level
    $ partition $ batch $ block $ marginal $ threads $ sched $ streams $ engine
    $ no_kernel_cache $ kernel_cache_dir $ kernel_cache_mb $ deadline_ms
    $ exec_retries $ machine $ veclib $ output_guard $ no_gpu_fallback
    $ passorder $ passorder_file)

(* -- observability flags ----------------------------------------------------------- *)

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of this invocation to $(docv); \
             load it in chrome://tracing or Perfetto (docs/OBSERVABILITY.md).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics-registry snapshot before exiting.")
  in
  let remarks =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "remarks" ] ~docv:"FILE"
          ~doc:
            "Collect optimization remarks (the -Rpass analogue: which \
             rewrite fired, at which spn.node location).  Without a value \
             the remark stream is printed to stderr; with $(docv) it is \
             written as JSON (docs/OBSERVABILITY.md).")
  in
  Term.(
    const (fun trace metrics remarks -> (trace, metrics, remarks))
    $ trace $ metrics $ remarks)

(* Runs [f] with tracing/remarks enabled iff requested, then emits the
   artifacts even when [f] fails — a crashed compile is exactly when the
   trace is most wanted. *)
let with_obs (trace, metrics, remarks) (f : unit -> int) : int =
  if trace <> None then Spnc_obs.Trace.set_enabled true;
  if remarks <> None then Spnc_obs.Remark.set_enabled true;
  let finish () =
    (match trace with
    | Some path ->
        let n = List.length (Spnc_obs.Trace.events ()) in
        Spnc_obs.Trace.set_enabled false;
        Spnc_obs.Trace.write_file path;
        Fmt.pr "trace: %d event(s) written to %s@." n path
    | None -> ());
    (match remarks with
    | Some "-" -> Fmt.epr "%a" Spnc_obs.Remark.pp ()
    | Some path ->
        Spnc_obs.Remark.write_file path;
        Fmt.pr "remarks: %d remark(s) written to %s@."
          (List.length (Spnc_obs.Remark.all ()))
          path
    | None -> ());
    if metrics then Fmt.pr "%a" Spnc_obs.Snapshot.pp (Spnc_obs.Snapshot.take ())
  in
  match f () with
  | code ->
      finish ();
      code
  | exception e ->
      finish ();
      raise e

(* -- tuned configurations --------------------------------------------------------- *)

(* A tuned config replaces the compile-relevant knobs only; runtime-only
   knobs (threads, scheduler, engine, caches, guards, deadlines) keep
   their command-line values. *)
let merge_tuned ~tuned (o : Spnc.Options.t) : Spnc.Options.t =
  let open Spnc.Options in
  {
    o with
    target = tuned.target;
    machine = tuned.machine;
    vectorize = tuned.vectorize;
    use_veclib = tuned.use_veclib;
    use_shuffle = tuned.use_shuffle;
    use_gather_tables = tuned.use_gather_tables;
    opt_level = tuned.opt_level;
    max_partition_size = tuned.max_partition_size;
    batch_size = tuned.batch_size;
    block_size = tuned.block_size;
    support_marginal = tuned.support_marginal;
  }

let load_tuned_config path (o : Spnc.Options.t) : Spnc.Options.t =
  match Spnc_obs.Json.parse_file path with
  | Error e -> failwith (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
      (* accept a bare config object, a tuned-cache entry ("config") or a
         full DSE report ("best_config") *)
      let cj =
        match
          ( Spnc_obs.Json.member "config" j,
            Spnc_obs.Json.member "best_config" j )
        with
        | Some c, _ -> c
        | None, Some c -> c
        | None, None -> j
      in
      match Spnc_tune.Tune.config_of_json cj with
      | Ok tuned -> merge_tuned ~tuned o
      | Error e -> failwith (Printf.sprintf "%s: %s" path e))

(* Tuned configs live next to the kernel cache (their own subdirectory so
   the kcache LRU scan never sees them): a tuned model served from this
   cache recompiles free through the kernel cache as well. *)
let tuned_cache_dir (o : Spnc.Options.t) =
  Option.map
    (fun d -> Filename.concat d "tuned")
    o.Spnc.Options.kernel_cache_dir

(* -- compile ---------------------------------------------------------------------- *)

let pp_cache_counters () =
  let k = Spnc.Compiler.cache_counters () in
  Fmt.pr
    "kernel cache: %d hit(s), %d miss(es), %d disk hit(s), %d full compile(s)@."
    k.Spnc.Compiler.hits k.Spnc.Compiler.misses k.Spnc.Compiler.disk_hits
    k.Spnc.Compiler.full_compiles;
  let d = Spnc.Kcache.counters () in
  if d.Spnc.Kcache.stores + d.Spnc.Kcache.hits + d.Spnc.Kcache.misses > 0 then
    Fmt.pr
      "disk cache: %d hit(s), %d miss(es), %d store(s), %d eviction(s), %d \
       corrupt@."
      d.Spnc.Kcache.hits d.Spnc.Kcache.misses d.Spnc.Kcache.stores
      d.Spnc.Kcache.evictions d.Spnc.Kcache.corrupt

let compile path options dump_ptx verbose obs =
  guarded @@ fun () ->
  with_obs obs @@ fun () ->
  let model = read_model path in
  let c = Spnc.Compiler.compile ~options model in
  Fmt.pr "model: %a@." Spnc_spn.Stats.pp c.Spnc.Compiler.model_stats;
  Fmt.pr "options: %a@." Spnc.Options.pp options;
  Fmt.pr "datatype: %s (worst log2 magnitude %.1f)@."
    (if c.Spnc.Compiler.datatype.Spnc_lospn.Lower_hispn.use_log_space then
       "log-space f32"
     else "linear f32")
    c.Spnc.Compiler.datatype.Spnc_lospn.Lower_hispn.worst_log2_magnitude;
  Fmt.pr "tasks: %d@." c.Spnc.Compiler.num_tasks;
  List.iter
    (fun d -> Fmt.pr "diagnostic: %a@." Spnc_resilience.Diag.pp d)
    c.Spnc.Compiler.diags;
  Fmt.pr "--- compile time breakdown ---@.%a" Spnc.Compiler.pp_timings c;
  (match c.Spnc.Compiler.artifact with
  | Spnc.Compiler.Cpu_kernel { lir; regalloc; _ } ->
      Fmt.pr "kernel instructions: %d@." (Spnc_cpu.Lir.module_size lir);
      let spills =
        Array.fold_left (fun acc s -> acc + Spnc_cpu.Regalloc.total_spills s) 0 regalloc
      in
      Fmt.pr "register spills: %d@." spills
  | Spnc.Compiler.Gpu_kernel { ptx; cubin; _ } ->
      Fmt.pr "SASS instructions: %d, registers: %d, cubin bytes: %d@."
        cubin.Spnc_gpu.Ptx.instructions cubin.Spnc_gpu.Ptx.regs_allocated
        (Bytes.length cubin.Spnc_gpu.Ptx.bytes);
      if dump_ptx then Fmt.pr "--- PTX ---@.%s@." ptx);
  if verbose then pp_cache_counters ();
  0

let compile_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL") in
  let ptx = Arg.(value & flag & info [ "dump-ptx" ] ~doc:"Print the pseudo-PTX.") in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Also print kernel-cache counters.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a model and report the pipeline.")
    Term.(const compile $ path $ options_term $ ptx $ verbose $ obs_term)

(* -- run ---------------------------------------------------------------------------- *)

let run path options rows seed verify verbose profile tuned_config autotune obs =
  guarded @@ fun () ->
  with_obs obs @@ fun () ->
  let options = { options with Spnc.Options.profile = profile <> None } in
  let options =
    match tuned_config with
    | None -> options
    | Some p -> load_tuned_config p options
  in
  let model = read_model path in
  let rng = Spnc_data.Rng.create ~seed in
  let data =
    Array.init rows (fun _ ->
        Array.init model.Model.num_features (fun _ ->
            Spnc_data.Rng.range rng (-3.0) 3.0))
  in
  let options =
    match autotune with
    | None -> options
    | Some measure ->
        let module T = Spnc_tune.Tune in
        let r =
          T.tune
            ~budget:{ T.measure; reps = 3 }
            ?cache_dir:(tuned_cache_dir options) ~options ~data model
        in
        Fmt.pr "--- autotune ---@.%a" T.pp_result r;
        Fmt.pr "autotuned config: %s@." r.T.best.T.label;
        merge_tuned ~tuned:r.T.best.T.options options
  in
  let c = Spnc.Compiler.compile ~options model in
  let t0 = Unix.gettimeofday () in
  let out, prof =
    match profile with
    | None -> (Spnc.Compiler.execute c data, None)
    | Some _ ->
        let out, p = Spnc.Compiler.execute_profiled c data in
        (out, Some p)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let sum = Array.fold_left ( +. ) 0.0 out in
  Fmt.pr "evaluated %d samples in %.4fs (host wall-clock)@." rows wall;
  Fmt.pr "modelled execution time on %s: %.6fs@."
    (match options.Spnc.Options.target with
    | Spnc.Options.Cpu -> options.Spnc.Options.machine.Spnc_machine.Machine.cpu_name
    | Spnc.Options.Gpu -> options.Spnc.Options.gpu.Spnc_machine.Machine.gpu_name)
    (Spnc.Compiler.estimate_seconds c ~rows);
  Fmt.pr "mean log-likelihood: %.6f@." (sum /. float_of_int rows);
  if verify then begin
    let worst = ref 0.0 in
    Array.iteri
      (fun i row ->
        let expected = Spnc_spn.Infer.log_likelihood model row in
        let d = Float.abs (out.(i) -. expected) in
        if d > !worst then worst := d)
      data;
    Fmt.pr "verification vs reference evaluator: max |delta| = %.3g %s@." !worst
      (if !worst < 1e-6 then "(OK)" else "(MISMATCH)")
  end;
  (match prof with
  | None -> ()
  | Some p ->
      Fmt.pr "--- per-SPN-node profile ---@.%a"
        (Spnc_cpu.Profile.pp_report ?k:None)
        p;
      (* line the hot nodes up with the execution spans in the trace *)
      if Spnc_obs.Trace.enabled () then Spnc_cpu.Profile.to_trace p;
      (match profile with
      | Some path when path <> "-" ->
          Spnc_cpu.Profile.write_file p path;
          Fmt.pr "profile: written to %s@." path
      | _ -> ()));
  if verbose then pp_cache_counters ();
  0

let run_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL") in
  let rows = Arg.(value & opt int 1000 & info [ "rows" ] ~doc:"Sample count.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Data RNG seed.") in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Check against the reference evaluator.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Also print kernel-cache counters.")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Profile the execution per SPN node (sampling-free: every \
             executed instruction is counted and attributed through \
             provenance; CPU targets only).  Prints the hottest-node \
             table; with $(docv) the full profile is also written as \
             JSON (docs/OBSERVABILITY.md).")
  in
  let tuned_config =
    Arg.(
      value
      & opt (some string) None
      & info [ "tuned-config" ] ~docv:"FILE"
          ~doc:
            "Load a tuned configuration JSON (from $(b,spnc tune --out) or \
             the DSE report) and compile with it; runtime knobs given on \
             this command line still apply.")
  in
  let autotune =
    Arg.(
      value
      & opt ~vopt:(Some 5) (some int) None
      & info [ "autotune" ] ~docv:"BUDGET"
          ~doc:
            "Auto-tune the vectorization configuration before running: \
             explore the design space, wall-clock-validate the top $(docv) \
             candidates (default 5) and run with the winner.  With \
             $(b,--kernel-cache-dir) the tuned config is cached by model \
             digest, so tuned models recompile free.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and execute a model on synthetic data.")
    Term.(
      const run $ path $ options_term $ rows $ seed $ verify $ verbose
      $ profile $ tuned_config $ autotune $ obs_term)

(* -- tune --------------------------------------------------------------------------- *)

let tune path options rows seed budget reps no_profile out report obs =
  guarded @@ fun () ->
  with_obs obs @@ fun () ->
  let module T = Spnc_tune.Tune in
  let model = read_model path in
  let rng = Spnc_data.Rng.create ~seed in
  let data =
    Array.init rows (fun _ ->
        Array.init model.Model.num_features (fun _ ->
            Spnc_data.Rng.range rng (-3.0) 3.0))
  in
  let r =
    T.tune
      ~budget:{ T.measure = budget; reps = max 1 reps }
      ~use_profile:(not no_profile)
      ?cache_dir:(tuned_cache_dir options) ~options ~data model
  in
  Fmt.pr "%a" T.pp_result r;
  let write_json path doc =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Spnc_obs.Json.to_string_pretty doc))
  in
  let config_json = T.config_to_json r.T.best.T.options in
  (match out with
  | None -> Fmt.pr "%s" (Spnc_obs.Json.to_string_pretty config_json)
  | Some p ->
      write_json p config_json;
      Fmt.pr "tuned config: written to %s@." p);
  (match report with
  | None -> ()
  | Some p ->
      write_json p (T.result_to_json r);
      Fmt.pr "dse report: written to %s@." p);
  0

let tune_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL") in
  let rows =
    Arg.(
      value & opt int 500
      & info [ "rows" ] ~doc:"Sample count for measurement and profiling.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Data RNG seed.") in
  let budget =
    Arg.(
      value & opt int 5
      & info [ "budget" ]
          ~doc:
            "Wall-clock validation budget: how many top-ranked candidates \
             (by modelled time) get measured and bit-checked.")
  in
  let reps =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~doc:"Best-of repetitions per measured candidate.")
  in
  let no_profile =
    Arg.(
      value & flag
      & info [ "no-profile" ]
          ~doc:
            "Skip the profile-feedback stage (no search-space pruning, no \
             per-task refinement).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the tuned configuration JSON to $(docv) (otherwise it is \
             printed); feed it back via $(b,spnc run --tuned-config).")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the full DSE report JSON (ranking, measurements, \
                profile feedback) to $(docv).")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Explore the vectorization design space (the paper's Fig. 6) and \
          auto-tune a model's compile configuration.")
    Term.(
      const tune $ path $ options_term $ rows $ seed $ budget $ reps
      $ no_profile $ out $ report $ obs_term)

let main_cmd =
  Cmd.group
    (Cmd.info "spnc" ~version:"1.0.0"
       ~doc:"MLIR-style compiler for fast Sum-Product Network inference.")
    [ generate_cmd; train_cmd; inspect_cmd; compile_cmd; run_cmd; tune_cmd ]

let () =
  (* CI chaos canaries arm fault injection in this unmodified binary via
     the SPNC_CHAOS environment variable (docs/RESILIENCE.md) *)
  Spnc_resilience.Fault.arm_from_env ();
  exit (Cmd.eval' main_cmd)
