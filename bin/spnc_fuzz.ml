(** spnc_fuzz — differential fuzzing driver (docs/RESILIENCE.md).

    Generates seeded random SPNs ([Spnc_resilience.Fuzz]) and
    cross-checks, for every case, the reference evaluator against:

    - the bufferized LoSPN interpreter (the target-independent pipeline),
    - the CPU backend at every [-O] level on BOTH execution engines (the
      reference VM interpreter and the closure-compiled JIT),
    - the GPU backend in the functional simulator,

    and additionally cross-checks the two CPU engines for {e bit-exact}
    agreement across [-O0..-O3] and worker-thread counts 1/2/4 (disable
    with [--no-cross-engine]).

    A mismatch or crash is shrunk by structural reduction and written as
    a reproducer bundle (model text, evidence data, diagnostic, replay
    instructions).  Exit code is nonzero iff any case failed, so the run
    gates CI.

    {v
    spnc_fuzz --seed 7 --cases 200
    spnc_fuzz --seed 7 --cases 50 --inject-bad-peephole   # must fail
    v} *)

open Cmdliner
module Fuzz = Spnc_resilience.Fuzz
module Diag = Spnc_resilience.Diag
module Smith = Spnc_smith.Smith
module Harness = Spnc_smith.Harness
module Shrink = Spnc_smith.Shrink
module Passorder = Spnc_smith.Passorder

(* sysexits, matching the spnc CLI convention (README exit table):
   65 EX_DATAERR for failures the harness FOUND (miscompiles, divergence,
   illegal orderings), 70 EX_SOFTWARE for the harness itself crashing. *)
let exit_ok = 0
let exit_data = 65
let exit_internal = 70

(* -- Oracles ------------------------------------------------------------------ *)

let base_options ~marginal threads =
  {
    Spnc.Options.default with
    Spnc.Options.threads;
    batch_size = 8;
    (* NaN evidence means marginalization: the kernels must be compiled
       with marginal support or they diverge from the reference by design *)
    support_marginal = marginal;
  }

(* Run the bufferized LoSPN module of a compile through the reference
   interpreter; converts linear-space kernels to log on the way out. *)
let lospn_interp_eval ~marginal threads (model : Spnc_spn.Model.t)
    (data : float array array) : float array =
  let c = Spnc.Compiler.compile ~options:(base_options ~marginal threads) model in
  let rows = Array.length data in
  let flat = Array.concat (Array.to_list data) in
  let out = Spnc_lospn.Interp.run_kernel c.Spnc.Compiler.lospn ~inputs:[ flat ] ~rows in
  let slot0 = Array.sub out 0 rows in
  if c.Spnc.Compiler.datatype.Spnc_lospn.Lower_hispn.use_log_space then slot0
  else Array.map log slot0

let cpu_eval ~marginal ~engine threads level (model : Spnc_spn.Model.t)
    (data : float array array) : float array =
  let options =
    {
      (base_options ~marginal threads) with
      Spnc.Options.opt_level = level;
      engine;
    }
  in
  Spnc.Compiler.execute (Spnc.Compiler.compile ~options model) data

let gpu_eval ~marginal (model : Spnc_spn.Model.t) (data : float array array) :
    float array =
  let options =
    {
      (base_options ~marginal 1) with
      Spnc.Options.target = Spnc.Options.Gpu;
      batch_size = 16;
      block_size = 8;
      gpu_fallback = false;
    }
  in
  Spnc.Compiler.execute (Spnc.Compiler.compile ~options model) data

let oracles ~marginal ~threads ~with_gpu : Fuzz.oracle list =
  let vm l = cpu_eval ~marginal ~engine:Spnc_cpu.Jit.Vm threads l in
  let jit l = cpu_eval ~marginal ~engine:Spnc_cpu.Jit.Jit threads l in
  [
    { Fuzz.oracle_name = "lospn-interp"; eval = lospn_interp_eval ~marginal threads };
    { Fuzz.oracle_name = "vm-O0"; eval = vm Spnc_cpu.Optimizer.O0 };
    { Fuzz.oracle_name = "vm-O1"; eval = vm Spnc_cpu.Optimizer.O1 };
    { Fuzz.oracle_name = "vm-O2"; eval = vm Spnc_cpu.Optimizer.O2 };
    { Fuzz.oracle_name = "vm-O3"; eval = vm Spnc_cpu.Optimizer.O3 };
    { Fuzz.oracle_name = "jit-O0"; eval = jit Spnc_cpu.Optimizer.O0 };
    { Fuzz.oracle_name = "jit-O1"; eval = jit Spnc_cpu.Optimizer.O1 };
    { Fuzz.oracle_name = "jit-O2"; eval = jit Spnc_cpu.Optimizer.O2 };
    { Fuzz.oracle_name = "jit-O3"; eval = jit Spnc_cpu.Optimizer.O3 };
  ]
  @
  if with_gpu then [ { Fuzz.oracle_name = "gpu-sim"; eval = gpu_eval ~marginal } ]
  else []

(* -- Cross-engine bit-identity ------------------------------------------------- *)

let exact_eq (a : float array) (b : float array) =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* The tolerance-based oracles above catch algorithmic divergence; this
   check is stricter: at every -O level, the JIT engine and the VM must
   produce EXACTLY the same bits as single-threaded VM execution,
   regardless of the worker-domain count.  Returns a diagnostic on the
   first divergence, [None] when everything agrees.  A case where both
   sides trap identically counts as agreement (the engines must also
   agree on {e rejecting} malformed kernels). *)
let bit_identity_check ~marginal (model : Spnc_spn.Model.t)
    (data : float array array) : string option =
  let eval engine threads level =
    match cpu_eval ~marginal ~engine threads level model data with
    | v -> Ok v
    | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
    | exception e -> Error (Printexc.to_string e)
  in
  let levels =
    Spnc_cpu.Optimizer.[ O0; O1; O2; O3 ]
  and variants =
    Spnc_cpu.Jit.[ (Vm, 2); (Vm, 4); (Jit, 1); (Jit, 2); (Jit, 4) ]
  in
  let describe engine threads level =
    Printf.sprintf "%s-%s/threads=%d"
      (Spnc_cpu.Jit.engine_to_string engine)
      (Spnc_cpu.Optimizer.level_to_string level)
      threads
  in
  List.fold_left
    (fun acc level ->
      match acc with
      | Some _ -> acc
      | None -> (
          let base = eval Spnc_cpu.Jit.Vm 1 level in
          List.fold_left
            (fun acc (engine, threads) ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match (base, eval engine threads level) with
                  | Ok b, Ok v when exact_eq b v -> None
                  | Ok _, Ok _ ->
                      Some
                        (Printf.sprintf
                           "bit-identity violation: %s differs from %s"
                           (describe engine threads level)
                           (describe Spnc_cpu.Jit.Vm 1 level))
                  | Error _, Error _ -> None
                  | Ok _, Error e ->
                      Some
                        (Printf.sprintf "%s trapped (%s) but %s succeeded"
                           (describe engine threads level)
                           e
                           (describe Spnc_cpu.Jit.Vm 1 level))
                  | Error e, Ok _ ->
                      Some
                        (Printf.sprintf "%s trapped (%s) but %s succeeded"
                           (describe Spnc_cpu.Jit.Vm 1 level)
                           e
                           (describe engine threads level))))
            None variants))
    None levels

(* -- Scheduler stress ---------------------------------------------------------- *)

(* Streaming-layer stress (docs/PERFORMANCE.md §5/§6): random batch sizes
   × pool sizes × static-vs-stealing schedulers must be bit-identical to
   the single-threaded reference, and the GPU stream-pipelined schedule
   at 2/4 streams must be bit-identical to the monolithic one.  [salt]
   keeps the drawn configurations deterministic per (seed, case) yet
   different across cases; the check is self-contained so the shrinker
   can replay it. *)
let sched_stress_check ~marginal ~with_gpu ~salt (model : Spnc_spn.Model.t)
    (data : float array array) : string option =
  let rng = Spnc_data.Rng.create ~seed:salt in
  let eval options =
    match Spnc.Compiler.execute (Spnc.Compiler.compile ~options model) data with
    | v -> Ok v
    | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
    | exception e -> Error (Printexc.to_string e)
  in
  let compare_to ~what reference candidate =
    match (reference, candidate) with
    | Ok r, Ok c when exact_eq r c -> None
    | Ok _, Ok _ ->
        Some
          (Printf.sprintf
             "scheduler stress: %s differs from the single-threaded reference"
             what)
    | Error _, Error _ -> None
    | Ok _, Error e ->
        Some (Printf.sprintf "scheduler stress: %s trapped (%s)" what e)
    | Error e, Ok _ ->
        Some
          (Printf.sprintf
             "scheduler stress: reference trapped (%s) but %s succeeded" e what)
  in
  let cpu_reference = eval (base_options ~marginal 1) in
  let cpu_variant acc _ =
    match acc with
    | Some _ -> acc
    | None ->
        let batch = Spnc_data.Rng.choose rng [ 1; 3; 5; 8; 16; 32 ] in
        let threads = Spnc_data.Rng.choose rng [ 2; 3; 4; 8 ] in
        let sched =
          Spnc_data.Rng.choose rng Spnc.Options.[ Static; Stealing ]
        in
        let options =
          { (base_options ~marginal threads) with
            Spnc.Options.batch_size = batch; sched }
        in
        compare_to
          ~what:
            (Printf.sprintf "batch=%d/threads=%d/sched=%s" batch threads
               (Spnc.Options.sched_to_string sched))
          cpu_reference (eval options)
  in
  let cpu_failure = List.fold_left cpu_variant None [ 1; 2; 3; 4 ] in
  match cpu_failure with
  | Some _ -> cpu_failure
  | None when not with_gpu -> None
  | None ->
      let gpu_options streams =
        {
          (base_options ~marginal 1) with
          Spnc.Options.target = Spnc.Options.Gpu;
          batch_size = 16;
          block_size = 8;
          gpu_fallback = false;
          streams;
        }
      in
      let gpu_reference = eval (gpu_options 1) in
      List.fold_left
        (fun acc streams ->
          match acc with
          | Some _ -> acc
          | None ->
              compare_to
                ~what:(Printf.sprintf "gpu streams=%d" streams)
                gpu_reference
                (eval (gpu_options streams)))
        None [ 2; 4 ]

(* -- Reporting ---------------------------------------------------------------- *)

let data_to_csv (data : float array array) : string =
  let buf = Buffer.create 256 in
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.17g") row)));
      Buffer.add_char buf '\n')
    data;
  Buffer.contents buf

let write_bundle ~out_dir ~(case : Fuzz.case) ~(diag_text : string)
    ~(shrunk : Spnc_spn.Model.t) ~(shrunk_data : float array array) =
  let options_text =
    Printf.sprintf "seed=%d case=%d tol-policy=differential" case.Fuzz.seed
      case.Fuzz.id
  in
  Spnc_resilience.Reproducer.write ?dir:out_dir
    ~extra:
      [
        ("model.txt", Spnc_spn.Text.to_string shrunk);
        ("model-original.txt", Spnc_spn.Text.to_string case.Fuzz.model);
        ("data.csv", data_to_csv shrunk_data);
      ]
    ~ir:"// differential fuzz failure: see model.txt / data.csv\n"
    ~pipeline:
      "(differential: reference vs lospn-interp vs vm/jit-O0..O3 vs gpu-sim)"
    ~options:options_text ~diag:diag_text ()

(* -- Chaos mode ---------------------------------------------------------------- *)

module Fault = Spnc_resilience.Fault

(* Everything the resilience layer is allowed to surface under injected
   faults.  Anything else escaping a run is a crash — the chaos harness
   exists to prove this set is closed. *)
let is_clean_diagnostic = function
  | Spnc_resilience.Diag.Diag_error _ | Spnc_resilience.Guard.Guard_failure _
  | Fault.Transient _
  | Spnc_runtime.Exec.Chunk_error _ | Spnc_runtime.Exec.Deadline_exceeded _
  | Spnc_mlir.Pass.Pipeline_error _ | Spnc_spn.Validate.Invalid _ ->
      true
  | _ -> false

(* The fault families a chaos schedule may arm (prefix-matched). *)
let chaos_families =
  [
    "kcache.";
    "pool.chunk_fail";
    "pool.chunk_stall";
    "pool.round_stall";
    "jit.build_fail";
    "gpu.build_fail";
    "gpu.launch_fail";
    "repro.write_fail";
  ]

type chaos_outcome = (float array * bool (* gpu->cpu fallback fired *), exn) result

let chaos_eval options model data : chaos_outcome =
  match Spnc.Compiler.compile ~options model with
  | c -> (
      match Spnc.Compiler.execute c data with
      | v -> Ok (v, c.Spnc.Compiler.diags <> [])
      | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
      | exception e -> Error e)
  | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
  | exception e -> Error e

(* One chaos case: run a workload clean, then replay it bit-for-bit under
   a deterministic fault schedule.  The run must either agree with the
   clean output EXACTLY or surface one clean structured diagnostic —
   wrong bits are "silent corruption", an unlisted exception is a crash. *)
let run_chaos seed cases rows no_gpu out_dir verbose =
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spnc-chaos-kcache-%d-%d" seed (Unix.getpid ()))
  in
  let failures = ref 0 in
  let fault_total = ref 0 in
  let t0 = Unix.gettimeofday () in
  let fail ~id ~schedule ~model msg =
    incr failures;
    Fmt.epr "CHAOS FAIL case %d (seed %d): %s@." id seed msg;
    (match
       Spnc_resilience.Reproducer.write ?dir:out_dir
         ~extra:[ ("model.txt", Spnc_spn.Text.to_string model) ]
         ~ir:"// chaos-mode failure: see model.txt and options.txt\n"
         ~pipeline:"(chaos: clean run vs fault-injected replay)"
         ~options:schedule ~diag:msg ()
     with
    | Ok b -> Fmt.epr "reproducer written to %s@." b.Spnc_resilience.Reproducer.dir
    | Error e -> Fmt.epr "(reproducer dump failed: %s)@." e)
  in
  for id = 0 to cases - 1 do
    let rng = Spnc_data.Rng.create ~seed:((seed * 7_368_787) + id) in
    (* workload: alternate the paper's speaker-ID shape and the fuzzer's
       adversarial random SPNs *)
    let model, data =
      if id mod 2 = 0 then begin
        let m =
          Spnc_spn.Random_spn.generate_sized rng
            Spnc_spn.Random_spn.speaker_id_config ~min_ops:200
        in
        let d =
          Array.init rows (fun _ ->
              Array.init m.Spnc_spn.Model.num_features (fun _ ->
                  Spnc_data.Rng.range rng (-3.0) 3.0))
        in
        (m, d)
      end
      else
        let case =
          Fuzz.gen_case
            ~config:{ Fuzz.default_config with Fuzz.rows }
            ~seed:(seed + 1) ~id ()
        in
        (case.Fuzz.model, case.Fuzz.data)
    in
    (* the randomized dimensions: engine x threads x target x schedule *)
    let threads = Spnc_data.Rng.choose rng [ 1; 2; 4 ] in
    let engine = Spnc_data.Rng.choose rng Spnc_cpu.Jit.[ Vm; Jit ] in
    let use_gpu = (not no_gpu) && Spnc_data.Rng.range rng 0.0 1.0 < 0.25 in
    let gpu_fallback = Spnc_data.Rng.range rng 0.0 1.0 < 0.5 in
    let deadline_ms =
      (* mostly none; sometimes generous (must not fire by itself);
         occasionally absurdly tight (must fire as a clean timeout) *)
      let p = Spnc_data.Rng.range rng 0.0 1.0 in
      if p < 0.70 then None else if p < 0.95 then Some 30_000.0 else Some 0.001
    in
    let options =
      {
        Spnc.Options.default with
        Spnc.Options.threads;
        engine;
        batch_size = 8;
        target = (if use_gpu then Spnc.Options.Gpu else Spnc.Options.Cpu);
        gpu_fallback;
        kernel_cache_dir = Some cache_dir;
        kernel_cache_mb = 1;
        deadline_ms;
        exec_retries = Spnc_data.Rng.choose rng [ 0; 2; 4 ];
      }
    in
    let rate = Spnc_data.Rng.range rng 0.02 0.35 in
    let chaos_seed = (seed * 1_000_003) + id in
    let points =
      (* half the cases arm everything; the rest arm a random subset *)
      if Spnc_data.Rng.range rng 0.0 1.0 < 0.5 then None
      else
        Some
          (List.filter
             (fun _ -> Spnc_data.Rng.range rng 0.0 1.0 < 0.5)
             chaos_families)
    in
    let schedule =
      Printf.sprintf
        "chaos-seed=%d rate=%.3f points=%s threads=%d engine=%s target=%s \
         fallback=%b deadline=%s retries=%d"
        chaos_seed rate
        (match points with
        | None -> "all"
        | Some ps -> String.concat ";" ps)
        threads
        (Spnc_cpu.Jit.engine_to_string engine)
        (if use_gpu then "gpu" else "cpu")
        gpu_fallback
        (match deadline_ms with None -> "none" | Some ms -> Fmt.str "%gms" ms)
        options.Spnc.Options.exec_retries
    in
    if verbose then Fmt.epr "case %d: %s@." id schedule;
    (* clean references, faults disarmed.  For GPU cases also compute the
       CPU reference: an injected GPU failure with fallback on yields a
       CPU artifact, whose outputs must match the CPU reference bit-ford
       bit — NOT the GPU one. *)
    Fault.disarm ();
    let clean = chaos_eval options model data in
    let clean_cpu_fallback =
      if use_gpu && gpu_fallback then
        Some (chaos_eval { options with Spnc.Options.target = Spnc.Options.Cpu } model data)
      else None
    in
    (* deterministic chaos replay: reset occurrence counters so the case
       is self-contained (same schedule + workload => same faults).  The
       memory cache is dropped so the replay recompiles through the disk
       tier — read-side corruption faults then exercise quarantine and
       the transparent recompile fallback. *)
    Spnc.Compiler.reset_kernel_cache ();
    Fault.reset_for_tests ();
    Fault.arm ?points ~seed:chaos_seed ~rate ();
    let chaotic =
      match chaos_eval options model data with
      | r -> r
      | exception e -> Error e
      (* chaos_eval already catches; this belt-and-braces keeps the
         harness alive even if the barrier itself is buggy *)
    in
    Fault.disarm ();
    List.iter
      (fun p -> fault_total := !fault_total + Fault.fired_count p)
      (Fault.points ());
    (match (clean, chaotic) with
    | Ok (c, _), Ok (v, fb) ->
        let matches_clean = exact_eq c v in
        let matches_cpu_fallback =
          fb
          &&
          match clean_cpu_fallback with
          | Some (Ok (cc, _)) -> exact_eq cc v
          | _ -> false
        in
        if not (matches_clean || matches_cpu_fallback) then
          fail ~id ~schedule ~model
            "silent corruption: fault-injected run produced different bits \
             with no diagnostic"
    | _, Error e when is_clean_diagnostic e ->
        if verbose then
          Fmt.epr "case %d: clean diagnostic (%s)@." id (Printexc.to_string e)
    | _, Error e ->
        fail ~id ~schedule ~model
          (Printf.sprintf "crash: unstructured exception escaped: %s"
             (Printexc.to_string e))
    | Error e, Ok _ ->
        (* only plausible when the clean run timed out on a tight
           deadline that the chaotic run (different scheduling) met;
           anything else means the clean run itself is broken *)
        if not (is_clean_diagnostic e) then
          fail ~id ~schedule ~model
            (Printf.sprintf "clean run crashed without faults armed: %s"
               (Printexc.to_string e)))
  done;
  (* recovery invariant: after every schedule ran, the cache directory
     must still be usable — a fresh process-equivalent (memory cache
     dropped) must load-or-recompile cleanly and agree with a cache-free
     compile bit-for-bit *)
  Fault.disarm ();
  let recovery_failed = ref false in
  (let rng = Spnc_data.Rng.create ~seed in
   let model =
     Spnc_spn.Random_spn.generate_sized rng
       Spnc_spn.Random_spn.speaker_id_config ~min_ops:200
   in
   let data =
     Array.init rows (fun _ ->
         Array.init model.Spnc_spn.Model.num_features (fun _ ->
             Spnc_data.Rng.range rng (-3.0) 3.0))
   in
   let with_cache =
     {
       Spnc.Options.default with
       Spnc.Options.kernel_cache_dir = Some cache_dir;
       kernel_cache_mb = 1;
     }
   in
   let no_cache =
     { Spnc.Options.default with Spnc.Options.use_kernel_cache = false }
   in
   Spnc.Compiler.reset_kernel_cache ();
   let first = chaos_eval with_cache model data in
   (* a fresh "process" (memory cache dropped) must now be served by the
      surviving disk tier *)
   Spnc.Compiler.reset_kernel_cache ();
   let second = chaos_eval with_cache model data in
   let disk_hits = (Spnc.Compiler.cache_counters ()).Spnc.Compiler.disk_hits in
   match (first, second, chaos_eval no_cache model data) with
   | Ok (a0, _), Ok (a, _), Ok (b, _)
     when exact_eq a0 a && exact_eq a b && disk_hits >= 1 ->
       Fmt.pr "cache recovery: OK (%d entr(ies) live, %d quarantined)@."
         (match Spnc.Kcache.open_ ~dir:cache_dir ~max_mb:1 with
         | Ok t -> List.length (Spnc.Kcache.entry_keys t)
         | Error _ -> -1)
         (match Spnc.Kcache.open_ ~dir:cache_dir ~max_mb:1 with
         | Ok t -> Spnc.Kcache.quarantined_count t
         | Error _ -> -1)
   | Ok _, Ok _, Ok _ ->
       recovery_failed := true;
       Fmt.epr
         "CHAOS FAIL: post-chaos cached compile diverged from a cache-free \
          compile (or the disk tier served no hit)@."
   | _ ->
       recovery_failed := true;
       Fmt.epr "CHAOS FAIL: post-chaos compile through the surviving cache \
                directory failed@.");
  if !recovery_failed then incr failures;
  let dt = Unix.gettimeofday () -. t0 in
  let d = Spnc.Kcache.counters () in
  Fmt.pr
    "spnc_fuzz --chaos: %d schedule(s), %d failure(s), %d injected fault(s), \
     %.1fs (disk cache: %d hit(s), %d miss(es), %d store(s), %d eviction(s), \
     %d corrupt, %d store failure(s))@."
    cases !failures !fault_total dt d.Spnc.Kcache.hits d.Spnc.Kcache.misses
    d.Spnc.Kcache.stores d.Spnc.Kcache.evictions d.Spnc.Kcache.corrupt
    d.Spnc.Kcache.store_failures;
  if !failures > 0 then exit_data else exit_ok

(* -- Smith mode: grammar-based pipeline fuzzing (docs/FUZZING.md) -------------- *)

let smith_repro_command ~seed ~id ~cases ~rows ~target_ops ~max_depth
    ~orderings =
  Printf.sprintf
    "spnc_fuzz --smith --seed %d --case %d --cases %d --rows %d --target-ops \
     %d --max-depth %d --smith-orderings %d"
    seed id cases rows target_ops max_depth orderings

let write_smith_bundle ~out_dir ~(p : Smith.program) ~(f : Harness.failure)
    ~(shrunk : Spnc_mlir.Ir.modul) ~(shrunk_data : float array array) ~repro =
  Spnc_resilience.Reproducer.write ?dir:out_dir
    ~extra:
      [
        ( "program-original.mlir",
          Spnc_mlir.Printer.modul_to_string p.Smith.modul );
        ("data.csv", Smith.data_to_csv shrunk_data);
        ("repro-command.txt", repro ^ "\n");
      ]
    ~ir:(Spnc_mlir.Printer.modul_to_string shrunk)
    ~pipeline:f.Harness.pipeline
    ~options:repro
    ~diag:(Fmt.str "%a" Harness.pp_failure f)
    ()

let run_smith ~seed ~cases ~rows ~target_ops ~max_depth ~tol ~orderings
    ~forced_order ~explore ~passorder_out ~budget_s ~case_only ~corpus_dir
    ~no_shrink ~out_dir ~inject ~verbose =
  if inject then Spnc_cpu.Optimizer.inject_bad_peephole := true;
  (* a forced ordering is legality-gated up front: the CI canary feeds an
     intentionally mis-ordered pass pair here and asserts a loud failure *)
  let forced_ok =
    match forced_order with
    | None -> true
    | Some spec -> (
        match Spnc.Pipelines.validate_pipeline spec with
        | Ok () -> true
        | Error e ->
            Fmt.epr "ILLEGAL PIPELINE %S: %s@." spec e;
            false)
  in
  if not forced_ok then exit_data
  else begin
    let config =
      { Smith.default_config with Smith.rows; target_ops; max_depth }
    in
    let hconfig = { Harness.default_config with Harness.orderings; tol } in
    let failures = ref 0 in
    let programs = ref [] in
    let ran = ref 0 in
    let t0 = Unix.gettimeofday () in
    (match corpus_dir with
    | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
    | _ -> ());
    let first, last =
      match case_only with Some c -> (c, c) | None -> (0, cases - 1)
    in
    (try
       for id = first to last do
         if budget_s > 0.0 && Unix.gettimeofday () -. t0 > budget_s then
           raise Exit;
         let p = Smith.generate ~config ~seed ~id () in
         incr ran;
         if List.length !programs < 32 then programs := p :: !programs;
         (match corpus_dir with
         | Some d when id - first < 1000 ->
             let oc =
               open_out
                 (Filename.concat d (Printf.sprintf "case_s%d_c%d.mlir" seed id))
             in
             output_string oc (Spnc_mlir.Printer.modul_to_string p.Smith.modul);
             close_out oc
         | _ -> ());
         if verbose then
           Fmt.epr "case %d: %d features, %d rows, space=%s, batch=%d@." id
             p.Smith.num_features p.Smith.rows
             (match p.Smith.space with
             | Spnc_lospn.Lower_hispn.Auto -> "auto"
             | Spnc_lospn.Lower_hispn.Force_linear -> "linear"
             | Spnc_lospn.Lower_hispn.Force_log -> "log")
             p.Smith.batch_size;
         let failure =
           match forced_order with
           | Some spec -> (
               (* forced mode: run the given full pipeline and compare its
                  interp result against the baseline pipeline's *)
               match
                 ( Harness.run_pipeline ~pipeline:Harness.baseline_pipeline
                     p.Smith.modul,
                   Harness.run_pipeline ~pipeline:spec p.Smith.modul )
               with
               | Ok base, Ok forced -> (
                   match
                     ( Harness.eval_interp base p,
                       Harness.eval_interp forced p )
                   with
                   | Ok a, Ok b when Harness.tol_eq ~tol a b -> None
                   | Ok _, Ok _ ->
                       Some
                         {
                           Harness.case_id = id;
                           check = "ordering-divergence";
                           pipeline = spec;
                           detail = "forced ordering diverges from baseline";
                         }
                   | Error _, Error _ -> None
                   | _, Error e | Error e, _ ->
                       Some
                         {
                           Harness.case_id = id;
                           check = "pipeline";
                           pipeline = spec;
                           detail = e;
                         })
               | _, Error e ->
                   Some
                     {
                       Harness.case_id = id;
                       check = "pipeline";
                       pipeline = spec;
                       detail = e;
                     }
               | Error e, _ ->
                   Some
                     {
                       Harness.case_id = id;
                       check = "pipeline";
                       pipeline = Harness.baseline_pipeline;
                       detail = e;
                     })
           | None -> Harness.check_program ~config:hconfig p
         in
         match failure with
         | None -> ()
         | Some f ->
             incr failures;
             let repro =
               smith_repro_command ~seed ~id ~cases ~rows ~target_ops
                 ~max_depth ~orderings
             in
             Fmt.epr "SMITH FAIL %a@.repro: %s@." Harness.pp_failure f repro;
             let still_fails m d =
               Harness.check_program ~config:hconfig
                 { p with Smith.modul = m; data = d; rows = Array.length d }
               <> None
             in
             let shrunk, shrunk_data =
               if no_shrink || forced_order <> None then
                 (p.Smith.modul, p.Smith.data)
               else Shrink.shrink ~still_fails p.Smith.modul p.Smith.data
             in
             if not (no_shrink || forced_order <> None) then
               Fmt.epr "shrunk: %d -> %d ops, %d -> %d rows@."
                 (Shrink.count_ops p.Smith.modul)
                 (Shrink.count_ops shrunk)
                 (Array.length p.Smith.data)
                 (Array.length shrunk_data);
             (match
                write_smith_bundle ~out_dir ~p ~f ~shrunk ~shrunk_data ~repro
              with
             | Ok b ->
                 Fmt.epr "reproducer written to %s@."
                   b.Spnc_resilience.Reproducer.dir
             | Error e -> Fmt.epr "(reproducer dump failed: %s)@." e)
       done
     with Exit -> ());
    (* pass-ordering exploration over a corpus sample *)
    if explore then begin
      let rng = Spnc_data.Rng.create ~seed:(seed + 997) in
      let orders = Passorder.candidate_orders ~rng ~extra:4 in
      let sample = List.rev !programs in
      let scores = Harness.explore ~programs:sample ~orders in
      Passorder.write_leaderboard ~path:passorder_out ~seed scores;
      Fmt.pr "pass-ordering leaderboard (%d orderings over %d programs) -> %s@."
        (List.length orders) (List.length sample) passorder_out;
      match Passorder.best scores with
      | Some s ->
          Fmt.pr "best promotable ordering: %s (%d ops, %.4fs, %.0f cycles)@."
            (Passorder.order_to_string s.Passorder.order)
            s.Passorder.final_ops s.Passorder.compile_s s.Passorder.est_cycles
      | None -> Fmt.pr "no bit-identical ordering found (nothing promotable)@."
    end;
    let dt = Unix.gettimeofday () -. t0 in
    Fmt.pr
      "spnc_fuzz --smith: %d program(s), %d failure(s), %d random legal \
       ordering(s)/case, levels O0..O3, engines vm+jit, threads 1/%d, %.1fs@."
      !ran !failures
      (match forced_order with Some _ -> 0 | None -> orderings)
      hconfig.Harness.threads dt;
    if !failures > 0 then exit_data else exit_ok
  end

(* -- Driver ------------------------------------------------------------------- *)

let run seed cases rows target_ops max_depth tol threads no_gpu no_shrink
    no_cross_engine sched_stress chaos marginal_fraction out_dir inject verbose
    smith smith_orderings smith_order smith_explore passorder_out budget_s
    case_only corpus_dir =
  try
  if smith then
    run_smith ~seed ~cases ~rows ~target_ops ~max_depth ~tol
      ~orderings:smith_orderings ~forced_order:smith_order
      ~explore:smith_explore ~passorder_out ~budget_s ~case_only ~corpus_dir
      ~no_shrink ~out_dir ~inject ~verbose
  else if chaos then run_chaos seed cases (max rows 8) no_gpu out_dir verbose
  else begin
  if inject then Spnc_cpu.Optimizer.inject_bad_peephole := true;
  let config =
    {
      Fuzz.default_config with
      Fuzz.rows;
      target_ops;
      max_depth;
      marginal_fraction;
    }
  in
  let marginal = marginal_fraction > 0.0 in
  let oracles = oracles ~marginal ~threads ~with_gpu:(not no_gpu) in
  let failures = ref 0 in
  let t0 = Unix.gettimeofday () in
  let report ~id ~(case : Fuzz.case) ~diag_text ~still_fails =
    incr failures;
    Fmt.epr "FAIL case %d (seed %d): %s@." id seed diag_text;
    let shrunk, shrunk_data =
      if no_shrink then (case.Fuzz.model, case.Fuzz.data)
      else Fuzz.shrink ~still_fails case.Fuzz.model case.Fuzz.data
    in
    if not no_shrink then
      Fmt.epr "shrunk: %d -> %d nodes, %d -> %d rows@."
        (Spnc_spn.Model.node_count case.Fuzz.model)
        (Spnc_spn.Model.node_count shrunk)
        (Array.length case.Fuzz.data)
        (Array.length shrunk_data);
    match write_bundle ~out_dir ~case ~diag_text ~shrunk ~shrunk_data with
    | Ok b -> Fmt.epr "reproducer written to %s@." b.Spnc_resilience.Reproducer.dir
    | Error e -> Fmt.epr "(reproducer dump failed: %s)@." e
  in
  for id = 0 to cases - 1 do
    let case = Fuzz.gen_case ~config ~seed ~id () in
    if verbose then
      Fmt.epr "case %d: %d nodes, %d rows@." id
        (Spnc_spn.Model.node_count case.Fuzz.model)
        (Array.length case.Fuzz.data);
    (match Fuzz.check_case ~tol ~oracles case with
    | None -> ()
    | Some failure ->
        report ~id ~case
          ~diag_text:(Fmt.str "%a" Fuzz.pp_failure_kind failure.Fuzz.kind)
          ~still_fails:(fun m d -> Fuzz.check ~tol ~oracles m d <> None));
    (* strict engine cross-check: VM and JIT must agree bit-for-bit at
       every -O level and thread count (threads 1/2/4) *)
    (if not no_cross_engine then
       match bit_identity_check ~marginal case.Fuzz.model case.Fuzz.data with
       | None -> ()
       | Some diag_text ->
           report ~id ~case ~diag_text ~still_fails:(fun m d ->
               bit_identity_check ~marginal m d <> None));
    (* streaming-layer stress: random batch × pool size × scheduler and
       GPU streams 1/2/4, all bit-identical to single-threaded *)
    if sched_stress then begin
      let salt = (seed * 1_000_003) + id in
      match
        sched_stress_check ~marginal ~with_gpu:(not no_gpu) ~salt
          case.Fuzz.model case.Fuzz.data
      with
      | None -> ()
      | Some diag_text ->
          report ~id ~case ~diag_text ~still_fails:(fun m d ->
              sched_stress_check ~marginal ~with_gpu:(not no_gpu) ~salt m d
              <> None)
    end
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let k = Spnc.Compiler.cache_counters () in
  Fmt.pr
    "spnc_fuzz: %d cases, %d failure(s), %d oracle(s)%s, %.1fs (kernel \
     cache: %d hit(s), %d miss(es), %d full compile(s))@."
    cases !failures (List.length oracles)
    ((if no_cross_engine then "" else " + engine bit-identity")
    ^ if sched_stress then " + scheduler stress" else "")
    dt k.Spnc.Compiler.hits k.Spnc.Compiler.misses k.Spnc.Compiler.full_compiles;
  if !failures > 0 then exit_data else exit_ok
  end
  with
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | e ->
      (* EX_SOFTWARE: the harness itself crashed — distinct from finding
         failures in the system under test (EX_DATAERR) *)
      Fmt.epr "spnc_fuzz: internal error: %s@.%s@." (Printexc.to_string e)
        (Printexc.get_backtrace ());
      exit_internal

let cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base RNG seed.") in
  let cases =
    Arg.(value & opt int 100 & info [ "cases"; "n" ] ~doc:"Number of random cases.")
  in
  let rows =
    Arg.(value & opt int 24 & info [ "rows" ] ~doc:"Evidence rows per case.")
  in
  let target_ops =
    Arg.(
      value & opt int 60
      & info [ "target-ops" ] ~doc:"Soft node budget of generated SPNs.")
  in
  let max_depth =
    Arg.(value & opt int 6 & info [ "max-depth" ] ~doc:"Maximum SPN depth.")
  in
  let tol =
    Arg.(
      value & opt float Fuzz.default_tol
      & info [ "tol" ] ~doc:"Comparison tolerance (relative to the reference).")
  in
  let threads =
    Arg.(value & opt int 1 & info [ "threads" ] ~doc:"Runtime worker threads.")
  in
  let no_gpu =
    Arg.(value & flag & info [ "no-gpu" ] ~doc:"Skip the GPU-simulator oracle.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report failures unshrunk.")
  in
  let no_cross_engine =
    Arg.(
      value & flag
      & info [ "no-cross-engine" ]
          ~doc:
            "Skip the VM-vs-JIT bit-identity cross-check over -O levels and \
             thread counts.")
  in
  let sched_stress =
    Arg.(
      value & flag
      & info [ "sched-stress" ]
          ~doc:
            "Scheduler stress mode: per case, draw random batch sizes × pool \
             sizes × static-vs-stealing schedulers (and GPU streams 1/2/4) \
             and require bit-identity with the single-threaded reference.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Chaos mode: run speaker-ID and random-SPN workloads under \
             deterministic randomized fault-injection schedules (cache I/O, \
             pool workers, JIT/GPU builds) across threads and engines; every \
             run must be bit-identical to its clean reference or fail with \
             one clean structured diagnostic, and the persistent kernel \
             cache must stay usable afterwards.")
  in
  let marginal =
    Arg.(
      value & opt float 0.0
      & info [ "marginal-fraction" ]
          ~doc:"Fraction of NaN (marginalized) evidence entries.")
  in
  let out_dir =
    Arg.(
      value & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:
            "Parent directory for reproducer bundles (default: \
             \\$SPNC_DUMP_DIR or ./spnc-reproducers).")
  in
  let inject =
    Arg.(
      value & flag
      & info [ "inject-bad-peephole" ]
          ~doc:
            "Fault injection: enable a deliberately unsound -O1+ peephole; \
             the run must then report mismatches.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-case log.") in
  let smith =
    Arg.(
      value & flag
      & info [ "smith" ]
          ~doc:
            "Smith mode: grammar-based IR-level generation (spnc_smith) with \
             the differential pipeline harness — every program is checked \
             across -O0..-O3 × VM/JIT × threads and randomized legal pass \
             orderings against the LoSPN interpreter reference.")
  in
  let smith_orderings =
    Arg.(
      value & opt int 5
      & info [ "smith-orderings" ]
          ~doc:"Random legal pass orderings checked per program (smith mode).")
  in
  let smith_order =
    Arg.(
      value & opt (some string) None
      & info [ "smith-order" ] ~docv:"PIPELINE"
          ~doc:
            "Run every generated program through this exact textual pipeline \
             instead of random orderings; the pipeline is legality-checked \
             first and an illegal ordering fails loudly (exit 65).")
  in
  let smith_explore =
    Arg.(
      value & flag
      & info [ "smith-explore" ]
          ~doc:
            "Score candidate LoSPN opt-stage pass orderings over the \
             generated corpus and write a leaderboard (see --passorder-out).")
  in
  let passorder_out =
    Arg.(
      value & opt string "PASSORDER_cpu.json"
      & info [ "passorder-out" ] ~docv:"FILE"
          ~doc:"Leaderboard output path for --smith-explore.")
  in
  let budget_s =
    Arg.(
      value & opt float 0.0
      & info [ "budget-s" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget; stop generating new cases once exceeded (0 = \
             unlimited). Used by the nightly long-fuzz CI tier.")
  in
  let case_only =
    Arg.(
      value & opt (some int) None
      & info [ "case" ] ~docv:"ID"
          ~doc:"Replay exactly one case id (reproducer bundles print this).")
  in
  let corpus_dir =
    Arg.(
      value & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:"Dump generated programs (first 1000) as .mlir files here.")
  in
  Cmd.v
    (Cmd.info "spnc_fuzz" ~version:"1.0.0"
       ~doc:
         "Differential fuzzing of the SPNC pipeline: reference evaluator vs \
          LoSPN interpreter vs CPU -O0..-O3 vs GPU simulator. Exit codes: 0 \
          clean, 65 failures found (EX_DATAERR), 70 internal harness error \
          (EX_SOFTWARE).")
    Term.(
      const run $ seed $ cases $ rows $ target_ops $ max_depth $ tol $ threads
      $ no_gpu $ no_shrink $ no_cross_engine $ sched_stress $ chaos $ marginal
      $ out_dir $ inject $ verbose $ smith $ smith_orderings $ smith_order
      $ smith_explore $ passorder_out $ budget_s $ case_only $ corpus_dir)

let () =
  Printexc.record_backtrace true;
  exit (Cmd.eval' cmd)
