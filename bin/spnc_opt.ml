(** spnc_opt — the [mlir-opt]-style pass driver.

    Reads a module in the generic textual IR form (from a file or stdin),
    runs a comma-separated pass pipeline, and prints the resulting module,
    e.g.:

    {v
    spnc_opt --pipeline 'canonicalize,lospn-partition=500,lospn-bufferize,verify' in.mlir
    spnc_cli inspect model.spn --hispn | spnc_opt --pipeline lower-to-lospn -
    v}

    Failures are never uncaught exceptions: a failing pass is reported to
    stderr as a structured diagnostic (pass of origin, message,
    backtrace for escaped exceptions), a reproducer bundle is written
    (disable with [--no-reproducer]), and the exit code is nonzero. *)

open Cmdliner
module Pass = Spnc_mlir.Pass

let read_input = function
  | "-" ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf stdin 4096
         done
       with End_of_file -> ());
      Buffer.contents buf
  | path ->
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))

(* Trace/metrics/remark artifacts are emitted even on a failing pipeline:
   a crashing pass is exactly when they are most wanted.  Pass spans come
   from the pass manager itself (lib/mlir/pass.ml). *)
let finish_obs ~trace ~metrics ~remarks code =
  (match trace with
  | Some path ->
      let n = List.length (Spnc_obs.Trace.events ()) in
      Spnc_obs.Trace.set_enabled false;
      Spnc_obs.Trace.write_file path;
      Fmt.epr "trace: %d event(s) written to %s@." n path
  | None -> ());
  (match remarks with
  | Some "-" -> Fmt.epr "%a" Spnc_obs.Remark.pp ()
  | Some path ->
      Spnc_obs.Remark.write_file path;
      Fmt.epr "remarks: %d remark(s) written to %s@."
        (List.length (Spnc_obs.Remark.all ()))
        path
  | None -> ());
  if metrics then
    Fmt.epr "%a" Spnc_obs.Snapshot.pp (Spnc_obs.Snapshot.take ());
  code

let run pipeline input verify_each timings list_passes print_ir no_reproducer
    reproducer_dir =
  let dump_policy =
    if no_reproducer then Pass.No_dump
    else
      match reproducer_dir with
      | Some d -> Pass.Dump_to d
      | None -> Pass.Dump_default
  in
  if list_passes then begin
    List.iter print_endline (Spnc.Pipelines.available ());
    0
  end
  else begin
    let src = read_input input in
    (* IR dumping is the pass manager's instrument (mlir-opt's
       --print-ir-after-all / --print-ir-after-change): dumps and diffs
       go to stderr, the final module to stdout *)
    let instr = Pass.instrument print_ir in
    match
      Spnc.Pipelines.run_on_source_checked ~verify_each ~dump_policy ~instr
        ~pipeline src
    with
    | Error e ->
        Fmt.epr "spnc_opt: %s@." (Spnc.Pipelines.run_error_to_string e);
        1
    | Ok result ->
        if timings then Fmt.epr "%a" Spnc_mlir.Pass.pp_timings result;
        print_string (Spnc_mlir.Printer.modul_to_string result.Spnc_mlir.Pass.modul);
        0
  end

(* Belt and braces: nothing below main should throw, but a stray
   exception must still come out as a diagnostic, not a backtrace. *)
let run pipeline input verify_each timings list_passes print_after_all
    print_after_change no_reproducer reproducer_dir trace metrics remarks =
  if trace <> None then Spnc_obs.Trace.set_enabled true;
  if remarks <> None then Spnc_obs.Remark.set_enabled true;
  let print_ir =
    if print_after_change then Pass.Print_after_change
    else if print_after_all then Pass.Print_after_all
    else Pass.Print_never
  in
  let code =
    try
      run pipeline input verify_each timings list_passes print_ir
        no_reproducer reproducer_dir
    with
    | Sys_error e ->
        Fmt.epr "spnc_opt: %s@." e;
        1
    | Pass.Pipeline_error (p, msg) ->
        Fmt.epr "spnc_opt: pass %s failed: %s@." p msg;
        1
    | Spnc_resilience.Diag.Diag_error d ->
        Fmt.epr "spnc_opt: %a@." Spnc_resilience.Diag.pp d;
        1
  in
  finish_obs ~trace ~metrics ~remarks code

let cmd =
  let pipeline =
    Arg.(
      value & opt string "verify"
      & info [ "pipeline"; "p" ] ~doc:"Comma-separated pass pipeline.")
  in
  let input =
    Arg.(value & pos 0 string "-" & info [] ~docv:"INPUT" ~doc:"Input file or '-' for stdin.")
  in
  let verify_each =
    Arg.(value & flag & info [ "verify-each" ] ~doc:"Run the verifier after every pass.")
  in
  let timings =
    Arg.(
      value & flag
      & info [ "timings"; "timing" ]
          ~doc:
            "Print the per-pass wall-time table (seconds, share, op-count \
             delta, change marker) to stderr.")
  in
  let list_passes =
    Arg.(value & flag & info [ "list-passes" ] ~doc:"List available passes and exit.")
  in
  let print_after_all =
    Arg.(
      value & flag
      & info
          [ "print-ir-after-all"; "print-after-all" ]
          ~doc:"Print the IR to stderr after every pass (mlir-opt style).")
  in
  let print_after_change =
    Arg.(
      value & flag
      & info
          [ "print-ir-after-change"; "print-after-change" ]
          ~doc:
            "Print a textual IR diff to stderr after each pass that \
             actually changed the module; passes that left the IR alone \
             print nothing.")
  in
  let no_reproducer =
    Arg.(
      value & flag
      & info [ "no-reproducer" ]
          ~doc:"Do not write reproducer bundles on pass failure.")
  in
  let reproducer_dir =
    Arg.(
      value & opt (some string) None
      & info [ "reproducer-dir" ] ~docv:"DIR"
          ~doc:
            "Parent directory for reproducer bundles (default: \
             \\$SPNC_DUMP_DIR or ./spnc-reproducers).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON with one span per pass to \
             $(docv) (docs/OBSERVABILITY.md).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the metrics-registry snapshot to stderr before exiting.")
  in
  let remarks =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "remarks" ] ~docv:"FILE"
          ~doc:
            "Collect optimization remarks (the -Rpass analogue: which \
             rewrite fired, at which spn.node location).  Without a value \
             the remark stream is printed to stderr; with $(docv) it is \
             written as JSON (docs/OBSERVABILITY.md).")
  in
  Cmd.v
    (Cmd.info "spnc_opt" ~version:"1.0.0"
       ~doc:"Run pass pipelines over textual SPNC IR modules.")
    Term.(
      const run $ pipeline $ input $ verify_each $ timings $ list_passes
      $ print_after_all $ print_after_change $ no_reproducer $ reproducer_dir
      $ trace $ metrics $ remarks)

let () = exit (Cmd.eval' cmd)
