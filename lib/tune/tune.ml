(* Vectorization design-space explorer + profile-guided auto-tuner.
   See tune.mli and docs/PERFORMANCE.md §7 for the design. *)

module Options = Spnc.Options
module Compiler = Spnc.Compiler
module M = Spnc_machine.Machine
module Json = Spnc_obs.Json
module Lir = Spnc_cpu.Lir
module Optimizer = Spnc_cpu.Optimizer
module Profile = Spnc_cpu.Profile
module Exec = Spnc_runtime.Exec

type knob = Opt_level | Vectorize | Veclib | Shuffle | Gather_tables | Partition

let knob_to_string = function
  | Opt_level -> "opt_level"
  | Vectorize -> "vectorize"
  | Veclib -> "veclib"
  | Shuffle -> "shuffle"
  | Gather_tables -> "gather_tables"
  | Partition -> "partition"

type candidate = {
  label : string;
  options : Options.t;
  est_seconds : float;
  wall_seconds : float option;
  identical : bool option;
}

type feedback = {
  fb_total_cycles : float;
  fb_call_share : float;
  fb_mem_share : float;
  fb_table_share : float;
  fb_dropped : knob list;
}

type task_stat = {
  ts_fn : string;
  ts_cycles : float;
  ts_share : float;
  ts_level : Optimizer.level;
}

type per_task = {
  pt_stats : task_stat list;
  pt_refined : bool;
  pt_wall_seconds : float option;
  pt_identical : bool option;
}

type budget = { measure : int; reps : int }

let default_budget = { measure = 5; reps = 3 }

type result = {
  model_digest : string;
  space_size : int;
  searched : int;
  budget : budget;
  feedback : feedback option;
  candidates : candidate list;
  reference : candidate;
  best : candidate;
  per_task : per_task option;
  from_cache : bool;
}

(* -- Labels and digests ----------------------------------------------------- *)

let label_of (o : Options.t) =
  let vec =
    if not o.vectorize then "novec"
    else
      "vec"
      ^ (if o.use_veclib then "+veclib" else "")
      ^ (if o.use_shuffle then "+shuffle" else "")
      ^ if o.use_gather_tables then "+gt" else ""
  in
  let part =
    match o.max_partition_size with
    | None -> "none"
    | Some n -> string_of_int n
  in
  Printf.sprintf "%s %s part=%s"
    (Optimizer.level_to_string o.opt_level)
    vec part

let digest_of (model : Spnc_spn.Model.t) =
  Digest.to_hex (Digest.string (Spnc_spn.Serialize.to_string model))

(* -- Lattice enumeration ---------------------------------------------------- *)

(* Scalar points canonicalize the vectorization-only knobs to the
   [Options.default] values: those knobs do not change a scalar artifact,
   but they do change the fingerprint, so without canonicalization every
   scalar point would appear 2^3 times under distinct cache keys. *)
let scalar_canonical (o : Options.t) =
  if o.vectorize then o
  else
    {
      o with
      use_veclib = true;
      use_shuffle = true;
      use_gather_tables = false;
    }

let enumerate ?(dropped = []) ~(stats : Spnc_spn.Stats.t) (base : Options.t) =
  let has k = List.mem k dropped in
  let dedup_cons xs x = if List.mem x xs then xs else xs @ [ x ] in
  let levels =
    if has Opt_level then [ base.opt_level ]
    else dedup_cons [ Optimizer.O0; O1; O2; O3 ] base.opt_level
  in
  let vecs =
    (* a scalar ISA has no lanes: force the scalar point even when the
       base config asked for vectorization *)
    if base.machine.isa = M.Scalar then [ false ]
    else if has Vectorize then [ base.vectorize ]
    else [ false; true ]
  in
  let gatherable =
    match base.machine.isa with M.AVX2 | M.AVX512 -> true | _ -> false
  in
  let partitions =
    if has Partition then [ base.max_partition_size ]
    else
      let buckets =
        None
        :: List.filter_map
             (fun n -> if stats.total > 2 * n then Some (Some n) else None)
             [ 128; 512 ]
      in
      dedup_cons buckets base.max_partition_size
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun opt_level ->
      List.iter
        (fun vectorize ->
          let veclibs =
            if not vectorize then [ true ]
            else if has Veclib || base.machine.veclib = M.No_veclib then
              [ base.use_veclib ]
            else [ false; true ]
          in
          let shuffles =
            if not vectorize then [ true ]
            else if has Shuffle then [ base.use_shuffle ]
            else [ false; true ]
          in
          let gts =
            if not (vectorize && gatherable) then [ false ]
            else if has Gather_tables then [ base.use_gather_tables ]
            else [ false; true ]
          in
          List.iter
            (fun use_veclib ->
              List.iter
                (fun use_shuffle ->
                  List.iter
                    (fun use_gather_tables ->
                      List.iter
                        (fun max_partition_size ->
                          let o =
                            scalar_canonical
                              {
                                base with
                                opt_level;
                                vectorize;
                                use_veclib;
                                use_shuffle;
                                use_gather_tables;
                                max_partition_size;
                              }
                          in
                          let fp = Options.fingerprint o in
                          if not (Hashtbl.mem seen fp) then begin
                            Hashtbl.add seen fp ();
                            out := o :: !out
                          end)
                        partitions)
                    gts)
                shuffles)
            veclibs)
        vecs)
    levels;
  List.rev !out

(* -- Measurement ------------------------------------------------------------ *)

let bits_equal (a : float array) (b : float array) =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
    a;
  !ok

(* One untimed warm-up run forces the JIT so the timed repetitions see the
   steady state the paper's figures report; best-of-[reps] rejects noise. *)
let measure ~reps (c : Compiler.compiled) data =
  let out = Compiler.execute c data in
  let best = ref infinity in
  for _ = 1 to max 1 reps do
    let t0 = Unix.gettimeofday () in
    ignore (Compiler.execute c data : float array);
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (out, !best)

(* -- Stage 2: profile feedback ---------------------------------------------- *)

type opclass = Call | Mem | Table | Other

let classify op =
  if String.starts_with ~prefix:"call." op
     || String.starts_with ~prefix:"vcall." op
  then Call
  else
    match op with
    | "load" | "vload" | "vgather" | "vshufload" -> Mem
    | "table" | "vgatheridx" | "vfloor" -> Table
    | _ -> Other

(* Cold-class → droppable-dimension thresholds.  A knob only pays off when
   the opcode class it steers carries dynamic cycles: the veclib swaps
   libm calls, shuffle/gather swaps input loads, gather-tables swaps
   discrete-leaf lookups. *)
let call_threshold = 0.05
let mem_threshold = 0.03
let table_threshold = 0.02

let feedback_of (p : Profile.t) =
  let call = ref 0. and mem = ref 0. and table = ref 0. and total = ref 0. in
  List.iter
    (fun (c : Profile.cell) ->
      let cyc = c.cycles *. float_of_int (Atomic.get c.count) in
      total := !total +. cyc;
      match classify c.opcode with
      | Call -> call := !call +. cyc
      | Mem -> mem := !mem +. cyc
      | Table -> table := !table +. cyc
      | Other -> ())
    (Profile.cells p);
  let share x = if !total > 0. then x /. !total else 0. in
  let call_share = share !call
  and mem_share = share !mem
  and table_share = share !table in
  let dropped =
    if !total <= 0. then []
    else
      (if call_share < call_threshold then [ Veclib ] else [])
      @ (if mem_share < mem_threshold then [ Shuffle ] else [])
      @ if table_share < table_threshold then [ Gather_tables ] else []
  in
  {
    fb_total_cycles = !total;
    fb_call_share = call_share;
    fb_mem_share = mem_share;
    fb_table_share = table_share;
    fb_dropped = dropped;
  }

(* -- Per-task refinement ---------------------------------------------------- *)

let rec iter_instrs f (body : Lir.instr array) =
  Array.iter
    (fun i ->
      f i;
      match i with Lir.Loop l -> iter_instrs f l.body | _ -> ())
    body

(* SPN nodes implemented by a task function, via register provenance. *)
let func_nodes (fn : Lir.func) =
  let s = Hashtbl.create 32 in
  iter_instrs
    (fun i ->
      let n = Profile.node_of fn i in
      if n >= 0 then Hashtbl.replace s n ())
    fn.body;
  s

let hot_task_share = 0.10

(* Raw single-threaded execution of a Lir module (kernel outputs, before
   the log-space conversion and output guard — those are per-artifact
   deterministic, so raw bit-equality implies finished bit-equality). *)
let run_raw (lir : Lir.modul) ~out_cols data =
  let t = Exec.load ~threads:1 ~out_cols lir in
  let t0 = Unix.gettimeofday () in
  let out = Exec.execute_rows t data in
  let dt = Unix.gettimeofday () -. t0 in
  Exec.shutdown t;
  (out, dt)

let refine_per_task ~(base_level : Optimizer.level) ~(profile : Profile.t)
    (bestc : Compiler.compiled) data : per_task option =
  match bestc.artifact with
  | Compiler.Gpu_kernel _ -> None
  | Compiler.Cpu_kernel art ->
      let lir = art.lir in
      if Array.length lir.funcs < 2 then None
      else begin
        let node_cycles = Hashtbl.create 64 in
        List.iter
          (fun (ns : Profile.node_stat) ->
            Hashtbl.replace node_cycles ns.ns_node ns.ns_cycles)
          (Profile.by_node profile);
        let tasks = ref [] in
        Array.iteri
          (fun i (f : Lir.func) ->
            if i <> lir.entry then begin
              let cyc = ref 0. in
              Hashtbl.iter
                (fun n () ->
                  match Hashtbl.find_opt node_cycles n with
                  | Some c -> cyc := !cyc +. c
                  | None -> ())
                (func_nodes f);
              tasks := (i, f.fname, !cyc) :: !tasks
            end)
          lir.funcs;
        let tasks = List.rev !tasks in
        let total = List.fold_left (fun acc (_, _, c) -> acc +. c) 0. tasks in
        let level_of share =
          if total > 0. && share >= hot_task_share && base_level < Optimizer.O3
          then Optimizer.O3
          else base_level
        in
        let stats =
          List.map
            (fun (i, fname, cyc) ->
              let share = if total > 0. then cyc /. total else 0. in
              ( i,
                {
                  ts_fn = fname;
                  ts_cycles = cyc;
                  ts_share = share;
                  ts_level = level_of share;
                } ))
            tasks
        in
        let refined_idx =
          List.filter_map
            (fun (i, s) -> if s.ts_level > base_level then Some i else None)
            stats
        in
        let pt_stats =
          List.stable_sort
            (fun a b -> compare b.ts_cycles a.ts_cycles)
            (List.map snd stats)
        in
        if refined_idx = [] then
          Some
            {
              pt_stats;
              pt_refined = false;
              pt_wall_seconds = None;
              pt_identical = None;
            }
        else begin
          let refined =
            {
              lir with
              Lir.funcs =
                Array.mapi
                  (fun i f ->
                    if List.mem i refined_idx then
                      Optimizer.run_func Optimizer.O3 f
                    else f)
                  lir.funcs;
            }
          in
          let base_raw, _ = run_raw lir ~out_cols:bestc.out_cols data in
          let ref_raw, wall = run_raw refined ~out_cols:bestc.out_cols data in
          Some
            {
              pt_stats;
              pt_refined = true;
              pt_wall_seconds = Some wall;
              pt_identical = Some (bits_equal base_raw ref_raw);
            }
        end
      end

(* -- Tuned-config serialization --------------------------------------------- *)

let machine_key (m : M.cpu) =
  if m.cpu_name = M.ryzen_3900xt.cpu_name then "ryzen_3900xt"
  else if m.cpu_name = M.xeon_9242.cpu_name then "xeon_9242"
  else if m.cpu_name = M.neoverse_n1.cpu_name then "neoverse_n1"
  else m.cpu_name

let machine_of_key = function
  | "ryzen_3900xt" -> Some M.ryzen_3900xt
  | "xeon_9242" -> Some M.xeon_9242
  | "neoverse_n1" -> Some M.neoverse_n1
  | _ -> None

let config_to_json (o : Options.t) =
  Json.Obj
    [
      ("spnc_tuned_config", Json.Num 1.);
      ("target", Json.Str (Options.target_to_string o.target));
      ("machine", Json.Str (machine_key o.machine));
      ("veclib", Json.Str (M.veclib_to_string o.machine.veclib));
      ("vectorize", Json.Bool o.vectorize);
      ("use_veclib", Json.Bool o.use_veclib);
      ("use_shuffle", Json.Bool o.use_shuffle);
      ("use_gather_tables", Json.Bool o.use_gather_tables);
      ("opt_level", Json.Str (Optimizer.level_to_string o.opt_level));
      ( "max_partition_size",
        match o.max_partition_size with
        | None -> Json.Null
        | Some n -> Json.Num (float_of_int n) );
      ("batch_size", Json.Num (float_of_int o.batch_size));
      ("block_size", Json.Num (float_of_int o.block_size));
      ("support_marginal", Json.Bool o.support_marginal);
    ]

let config_of_json (j : Json.t) : (Options.t, string) Stdlib.result =
  let ( let* ) = Result.bind in
  let field name conv =
    match Json.member name j with
    | None -> Error (Printf.sprintf "tuned config: missing field %S" name)
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "tuned config: bad field %S" name))
  in
  let* version = field "spnc_tuned_config" Json.num in
  if version <> 1. then
    Error
      (Printf.sprintf "tuned config: unsupported version %g (want 1)" version)
  else
    let* target = field "target" Json.str in
    if target <> "cpu" then
      Error (Printf.sprintf "tuned config: unsupported target %S" target)
    else
      let* machine =
        field "machine" (fun v -> Option.bind (Json.str v) machine_of_key)
      in
      let* veclib =
        field "veclib" (fun v -> Option.bind (Json.str v) M.veclib_of_string)
      in
      let* vectorize = field "vectorize" Json.bool in
      let* use_veclib = field "use_veclib" Json.bool in
      let* use_shuffle = field "use_shuffle" Json.bool in
      let* use_gather_tables = field "use_gather_tables" Json.bool in
      let* opt_level =
        field "opt_level" (fun v ->
            Option.bind (Json.str v) Optimizer.level_of_string)
      in
      let* max_partition_size =
        field "max_partition_size" (function
          | Json.Null -> Some None
          | Json.Num n -> Some (Some (int_of_float n))
          | _ -> None)
      in
      let* batch_size =
        field "batch_size" (fun v -> Option.map int_of_float (Json.num v))
      in
      let* block_size =
        field "block_size" (fun v -> Option.map int_of_float (Json.num v))
      in
      let* support_marginal = field "support_marginal" Json.bool in
      Ok
        {
          Options.default with
          target = Options.Cpu;
          machine = { machine with veclib };
          vectorize;
          use_veclib;
          use_shuffle;
          use_gather_tables;
          opt_level;
          max_partition_size;
          batch_size;
          block_size;
          support_marginal;
        }

(* -- Spearman rank correlation ---------------------------------------------- *)

let spearman_of_candidates (cands : candidate list) =
  let measured = List.filter (fun c -> c.wall_seconds <> None) cands in
  let n = List.length measured in
  if n < 3 then None
  else begin
    let rank key =
      let arr = List.mapi (fun i c -> (i, key c)) measured in
      let sorted = List.stable_sort (fun (_, a) (_, b) -> compare a b) arr in
      let ranks = Array.make n 0. in
      List.iteri (fun rk (i, _) -> ranks.(i) <- float_of_int rk) sorted;
      ranks
    in
    let re = rank (fun c -> c.est_seconds) in
    let rw = rank (fun c -> Option.value ~default:0. c.wall_seconds) in
    let d2 = ref 0. in
    for i = 0 to n - 1 do
      let d = re.(i) -. rw.(i) in
      d2 := !d2 +. (d *. d)
    done;
    let nf = float_of_int n in
    Some (1. -. (6. *. !d2 /. (nf *. ((nf *. nf) -. 1.))))
  end

let spearman r = spearman_of_candidates r.candidates

(* -- Per-dimension rank correlation ----------------------------------------- *)

type dimension_corr = {
  dc_knob : knob;
  dc_rho_est : float option;
  dc_rho_wall : float option;
  dc_inverted : bool;
}

(* tie-averaged (fractional) ranks: knob ordinals are massively tied
   (booleans!), so the plain distinct-rank scheme used for the global
   est-vs-wall coefficient would manufacture spurious order *)
let fractional_ranks (xs : float array) : float array =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let ranks = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2. in
    for k = !i to !j do
      ranks.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  ranks

(* Spearman with ties = Pearson over fractional ranks; [None] when
   either vector is constant (correlation undefined) *)
let spearman_ranks (xs : float array) (ys : float array) : float option =
  let n = Array.length xs in
  if n < 3 then None
  else begin
    let rx = fractional_ranks xs and ry = fractional_ranks ys in
    let mean a = Array.fold_left ( +. ) 0. a /. float_of_int n in
    let mx = mean rx and my = mean ry in
    let cov = ref 0. and vx = ref 0. and vy = ref 0. in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mx and dy = ry.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy)
    done;
    if !vx = 0. || !vy = 0. then None
    else Some (!cov /. sqrt (!vx *. !vy))
  end

let knob_ordinal (k : knob) (o : Options.t) : float =
  match k with
  | Opt_level -> (
      match o.Options.opt_level with
      | Optimizer.O0 -> 0.
      | Optimizer.O1 -> 1.
      | Optimizer.O2 -> 2.
      | Optimizer.O3 -> 3.)
  | Vectorize -> if o.Options.vectorize then 1. else 0.
  | Veclib -> if o.Options.use_veclib then 1. else 0.
  | Shuffle -> if o.Options.use_shuffle then 1. else 0.
  | Gather_tables -> if o.Options.use_gather_tables then 1. else 0.
  | Partition -> (
      (* unpartitioned sorts above every finite bucket *)
      match o.Options.max_partition_size with
      | None -> infinity
      | Some n -> float_of_int n)

let all_knobs =
  [ Opt_level; Vectorize; Veclib; Shuffle; Gather_tables; Partition ]

(* a dimension is "inverted" when the cost model and the wall clock rank
   it in clearly opposite directions — both correlations past a noise
   floor, with opposite signs *)
let inversion_floor = 0.25

let spearman_by_dimension (r : result) : dimension_corr list =
  let measured =
    List.filter (fun c -> c.wall_seconds <> None) r.candidates
  in
  let est = Array.of_list (List.map (fun c -> c.est_seconds) measured) in
  let wall =
    Array.of_list
      (List.map (fun c -> Option.value ~default:0. c.wall_seconds) measured)
  in
  List.map
    (fun k ->
      let dim =
        Array.of_list (List.map (fun c -> knob_ordinal k c.options) measured)
      in
      let rho_est = spearman_ranks dim est in
      let rho_wall = spearman_ranks dim wall in
      let inverted =
        match (rho_est, rho_wall) with
        | Some e, Some w ->
            e *. w < 0.
            && Float.abs e >= inversion_floor
            && Float.abs w >= inversion_floor
        | _ -> false
      in
      { dc_knob = k; dc_rho_est = rho_est; dc_rho_wall = rho_wall; dc_inverted = inverted })
    all_knobs

let inverted_dimensions r =
  List.filter_map
    (fun dc -> if dc.dc_inverted then Some (knob_to_string dc.dc_knob) else None)
    (spearman_by_dimension r)

(* -- Result JSON ------------------------------------------------------------ *)

let opt_num = function None -> Json.Null | Some x -> Json.Num x
let opt_bool = function None -> Json.Null | Some b -> Json.Bool b

let candidate_to_json (c : candidate) =
  Json.Obj
    [
      ("label", Json.Str c.label);
      ("est_seconds", Json.Num c.est_seconds);
      ("wall_seconds", opt_num c.wall_seconds);
      ("bit_identical", opt_bool c.identical);
    ]

let feedback_to_json (f : feedback) =
  Json.Obj
    [
      ("total_cycles", Json.Num f.fb_total_cycles);
      ("call_share", Json.Num f.fb_call_share);
      ("mem_share", Json.Num f.fb_mem_share);
      ("table_share", Json.Num f.fb_table_share);
      ( "dropped_knobs",
        Json.List (List.map (fun k -> Json.Str (knob_to_string k)) f.fb_dropped)
      );
    ]

let per_task_to_json (pt : per_task) =
  Json.Obj
    [
      ( "tasks",
        Json.List
          (List.map
             (fun t ->
               Json.Obj
                 [
                   ("fn", Json.Str t.ts_fn);
                   ("cycles", Json.Num t.ts_cycles);
                   ("share", Json.Num t.ts_share);
                   ("level", Json.Str (Optimizer.level_to_string t.ts_level));
                 ])
             pt.pt_stats) );
      ("refined", Json.Bool pt.pt_refined);
      ("wall_seconds", opt_num pt.pt_wall_seconds);
      ("bit_identical", opt_bool pt.pt_identical);
    ]

let result_to_json (r : result) =
  Json.Obj
    [
      ("schema", Json.Str "spnc-dse-v1");
      ("model_digest", Json.Str r.model_digest);
      ("space_size", Json.Num (float_of_int r.space_size));
      ("searched", Json.Num (float_of_int r.searched));
      ( "budget",
        Json.Obj
          [
            ("measure", Json.Num (float_of_int r.budget.measure));
            ("reps", Json.Num (float_of_int r.budget.reps));
          ] );
      ( "feedback",
        match r.feedback with None -> Json.Null | Some f -> feedback_to_json f
      );
      ("reference", candidate_to_json r.reference);
      ("candidates", Json.List (List.map candidate_to_json r.candidates));
      ("best", candidate_to_json r.best);
      ("best_config", config_to_json r.best.options);
      ( "per_task",
        match r.per_task with
        | None -> Json.Null
        | Some pt -> per_task_to_json pt );
      ("spearman", opt_num (spearman r));
      ( "spearman_by_dimension",
        Json.List
          (List.map
             (fun dc ->
               Json.Obj
                 [
                   ("knob", Json.Str (knob_to_string dc.dc_knob));
                   ("rho_est", opt_num dc.dc_rho_est);
                   ("rho_wall", opt_num dc.dc_rho_wall);
                   ("inverted", Json.Bool dc.dc_inverted);
                 ])
             (spearman_by_dimension r)) );
      ("from_cache", Json.Bool r.from_cache);
    ]

(* -- Tuned-config cache ----------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let cache_path ~cache_dir digest = Filename.concat cache_dir (digest ^ ".tuned.json")

let load_cached ~cache_dir model =
  let path = cache_path ~cache_dir (digest_of model) in
  if not (Sys.file_exists path) then None
  else
    match Json.parse_file path with
    | Error _ -> None
    | Ok j -> (
        match Option.map config_of_json (Json.member "config" j) with
        | Some (Ok opts) ->
            let label =
              match Option.bind (Json.member "label" j) Json.str with
              | Some l -> l
              | None -> label_of opts
            in
            Some (opts, label)
        | Some (Error _) | None -> None)

let store_cached ~cache_dir ~digest (best : candidate) =
  mkdir_p cache_dir;
  let path = cache_path ~cache_dir digest in
  let doc =
    Json.Obj
      [
        ("model_digest", Json.Str digest);
        ("label", Json.Str best.label);
        ("est_seconds", Json.Num best.est_seconds);
        ("config", config_to_json best.options);
      ]
  in
  (* tmp + rename so a crash mid-write never leaves a torn cache entry *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  Sys.rename tmp path

(* -- The explorer ----------------------------------------------------------- *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let tune ?(budget = default_budget) ?(use_profile = true) ?(profile_rows = 64)
    ?(est_rows = 8192) ?cache_dir ~(options : Options.t) ~data model =
  if options.target <> Options.Cpu then
    invalid_arg "Tune.tune: the design-space explorer targets the CPU backend";
  if Array.length data = 0 then invalid_arg "Tune.tune: empty sample set";
  let digest = digest_of model in
  let cached =
    Option.bind cache_dir (fun dir -> load_cached ~cache_dir:dir model)
  in
  match cached with
  | Some (best_opts, best_label) ->
      (* Cache hit: no search.  Estimates still come from a (kcache-served)
         compile so the report stays meaningful. *)
      let ref_c = Compiler.compile ~options model in
      let best_c = Compiler.compile ~options:best_opts model in
      let mk label opts c =
        {
          label;
          options = opts;
          est_seconds = Compiler.estimate_seconds c ~rows:est_rows;
          wall_seconds = None;
          identical = None;
        }
      in
      let reference = mk (label_of options) options ref_c in
      let best = mk best_label best_opts best_c in
      {
        model_digest = digest;
        space_size = 0;
        searched = 0;
        budget;
        feedback = None;
        candidates = [ best ];
        reference;
        best;
        per_task = None;
        from_cache = true;
      }
  | None ->
      let ref_c = Compiler.compile ~options model in
      (* Stage 2 input: one profiled run of the reference configuration. *)
      let profile =
        if not use_profile then None
        else begin
          let rows =
            Array.sub data 0 (min (max 1 profile_rows) (Array.length data))
          in
          let _, p = Compiler.execute_profiled ref_c rows in
          Some p
        end
      in
      let feedback = Option.map feedback_of profile in
      let dropped =
        match feedback with None -> [] | Some f -> f.fb_dropped
      in
      let stats = ref_c.model_stats in
      let space_size = List.length (enumerate ~stats options) in
      let lattice = enumerate ~dropped ~stats options in
      (* Stage 1: compile + cost-model score every surviving point. *)
      let scored =
        List.map
          (fun o ->
            let c = Compiler.compile ~options:o model in
            (o, c, Compiler.estimate_seconds c ~rows:est_rows))
          lattice
      in
      let ranked =
        List.stable_sort
          (fun (oa, _, ea) (ob, _, eb) ->
            compare (ea, label_of oa) (eb, label_of ob))
          scored
      in
      (* Reference wall-clock + outputs: the bit-identity oracle. *)
      let ref_out, ref_wall = measure ~reps:budget.reps ref_c data in
      let reference =
        {
          label = label_of options;
          options;
          est_seconds = Compiler.estimate_seconds ref_c ~rows:est_rows;
          wall_seconds = Some ref_wall;
          identical = Some true;
        }
      in
      (* Wall-clock validation of the top-[measure] by modelled time. *)
      let to_measure = take (max 0 budget.measure) ranked in
      let measured_fps =
        List.map (fun (o, _, _) -> Options.fingerprint o) to_measure
      in
      let candidates =
        List.map
          (fun (o, c, est) ->
            let fp = Options.fingerprint o in
            if List.mem fp measured_fps then begin
              let out, wall = measure ~reps:budget.reps c data in
              {
                label = label_of o;
                options = o;
                est_seconds = est;
                wall_seconds = Some wall;
                identical = Some (bits_equal out ref_out);
              }
            end
            else
              {
                label = label_of o;
                options = o;
                est_seconds = est;
                wall_seconds = None;
                identical = None;
              })
          ranked
      in
      (* Winner: best-ranked measured candidate that validated
         bit-identical; selection never consults wall-clock, so tuning is
         deterministic for a fixed (model, options, budget). *)
      let best =
        match List.find_opt (fun c -> c.identical = Some true) candidates with
        | Some c -> c
        | None -> reference
      in
      let per_task =
        match profile with
        | None -> None
        | Some p ->
            let best_c =
              match
                List.find_opt
                  (fun (o, _, _) ->
                    Options.fingerprint o = Options.fingerprint best.options)
                  ranked
              with
              | Some (_, c, _) -> c
              | None -> ref_c
            in
            refine_per_task ~base_level:best.options.opt_level ~profile:p
              best_c data
      in
      let r =
        {
          model_digest = digest;
          space_size;
          searched = List.length lattice;
          budget;
          feedback;
          candidates;
          reference;
          best;
          per_task;
          from_cache = false;
        }
      in
      Option.iter (fun dir -> store_cached ~cache_dir:dir ~digest best) cache_dir;
      r

(* -- Report ----------------------------------------------------------------- *)

let pp_seconds ppf = function
  | None -> Fmt.string ppf "-"
  | Some s -> Fmt.pf ppf "%.4fs" s

let pp_result ppf (r : result) =
  Fmt.pf ppf "model %s: %d/%d configs searched (budget %d measured x%d)%s@."
    (String.sub r.model_digest 0 (min 12 (String.length r.model_digest)))
    r.searched r.space_size r.budget.measure r.budget.reps
    (if r.from_cache then " [cached]" else "");
  Option.iter
    (fun f ->
      Fmt.pf ppf
        "profile feedback: calls %.1f%%, loads %.1f%%, tables %.1f%%; dropped: %s@."
        (100. *. f.fb_call_share) (100. *. f.fb_mem_share)
        (100. *. f.fb_table_share)
        (if f.fb_dropped = [] then "none"
         else String.concat ", " (List.map knob_to_string f.fb_dropped)))
    r.feedback;
  Fmt.pf ppf "  %-32s %12s %10s %s@." "config" "est" "wall" "bits";
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-32s %10.6fs %a %s@." c.label c.est_seconds pp_seconds
        c.wall_seconds
        (match c.identical with
        | None -> "-"
        | Some true -> "ok"
        | Some false -> "DIFF"))
    r.candidates;
  Fmt.pf ppf "reference: %s (est %.6fs, wall %a)@." r.reference.label
    r.reference.est_seconds pp_seconds r.reference.wall_seconds;
  Fmt.pf ppf "best:      %s (est %.6fs, wall %a)@." r.best.label
    r.best.est_seconds pp_seconds r.best.wall_seconds;
  Option.iter
    (fun pt ->
      Fmt.pf ppf "per-task (%d tasks, refined=%b):@." (List.length pt.pt_stats)
        pt.pt_refined;
      List.iter
        (fun t ->
          Fmt.pf ppf "  %-24s %10.0f cyc %5.1f%% %s@." t.ts_fn t.ts_cycles
            (100. *. t.ts_share)
            (Optimizer.level_to_string t.ts_level))
        pt.pt_stats;
      match pt.pt_identical with
      | Some id ->
          Fmt.pf ppf "  refined artifact: wall %a, bit-identical=%b@."
            pp_seconds pt.pt_wall_seconds id
      | None -> ())
    r.per_task;
  Option.iter
    (fun rho -> Fmt.pf ppf "spearman(est, wall) = %.2f@." rho)
    (spearman r)
