(** Vectorization design-space explorer and profile-guided auto-tuner —
    the closed loop behind the paper's Fig. 6 (docs/PERFORMANCE.md §7).

    The paper's central CPU result is that the vectorization knobs —
    vectorize on/off, vector library, shuffle-vs-gather loads — swing
    inference latency by large factors, and that the best point is found
    by exploring the configuration space per model.  This module runs
    that exploration automatically, in two stages:

    {b Stage 1 (static DSE).}  {!enumerate} builds the configuration
    lattice (optimization level × vectorize × veclib × shuffle/gather ×
    gather-tables × partition-size buckets), every point is compiled
    (sharing the kernel cache, so repeated tunes are cheap) and scored
    with the calibrated {!Spnc_machine.Machine} cost model applied to the
    actually-generated instruction stream.  The top-[budget] candidates
    by modelled time are then {e wall-clock validated} through the
    ordinary JIT + pool execution path, asserting bit-identical outputs
    against the reference configuration for every measured candidate.

    {b Stage 2 (profile-guided).}  One profiled execution of the
    reference configuration ({!Spnc_cpu.Profile}, exact per-SPN-node
    cycles) attributes dynamic cycles to opcode classes — libm calls
    (Gaussian leaves), strided input loads, discrete-leaf table lookups —
    and (a) dimensions whose opcode class is cold are dropped from the
    lattice before any candidate is compiled, and (b) when the winning
    configuration partitions the graph into multiple tasks, per-task
    cycle shares pick a {e per-task} optimization level: hot tasks are
    re-optimized at -O3, cold tasks keep the base level, and the refined
    artifact is validated bit-identical against the reference.

    Selection is deterministic for a fixed (model, options, budget):
    candidates are ranked by the (deterministic) cost model, wall-clock
    only {e validates} — it never picks the winner — so two tunes of the
    same model agree exactly.  Tuned configurations are cached by model
    digest ({!load_cached}/tune's [cache_dir]); together with the
    persistent kernel cache a previously-tuned model recompiles for
    free. *)

module Options = Spnc.Options

(** One dimension of the search lattice. *)
type knob = Opt_level | Vectorize | Veclib | Shuffle | Gather_tables | Partition

val knob_to_string : knob -> string

(** One point of the lattice: its option set, the cost-model score, and —
    when it made the measured top-[budget] — wall-clock and the
    bit-identity verdict against the reference configuration. *)
type candidate = {
  label : string;  (** human-readable knob summary, e.g. "-O2 vec+veclib" *)
  options : Options.t;
  est_seconds : float;  (** cost-model estimate at [est_rows] samples *)
  wall_seconds : float option;  (** best-of-[reps] measured; [None] = unmeasured *)
  identical : bool option;  (** outputs bit-identical to the reference *)
}

(** Opcode-class cycle shares from the stage-2 profile, and the lattice
    dimensions they pruned. *)
type feedback = {
  fb_total_cycles : float;
  fb_call_share : float;  (** scalar/vector libm calls (Gaussian leaves) *)
  fb_mem_share : float;  (** strided input loads / gathers / shuffles *)
  fb_table_share : float;  (** discrete-leaf table lookups *)
  fb_dropped : knob list;  (** dimensions pruned before compilation *)
}

(** Per-task dynamic-cycle attribution and the optimization level picked
    for each task function. *)
type task_stat = {
  ts_fn : string;  (** Lir task function name *)
  ts_cycles : float;
  ts_share : float;
  ts_level : Spnc_cpu.Optimizer.level;
}

type per_task = {
  pt_stats : task_stat list;  (** hottest first *)
  pt_refined : bool;  (** some hot task got a level above the base *)
  pt_wall_seconds : float option;
      (** single-threaded wall of the refined artifact (report-only) *)
  pt_identical : bool option;  (** refined outputs vs the reference *)
}

(** Search budget: [measure] is the number of top-ranked candidates that
    get wall-clock validation (the reference is always measured on top of
    these); [reps] is best-of repetitions per measurement. *)
type budget = { measure : int; reps : int }

val default_budget : budget
(** [{ measure = 5; reps = 3 }]. *)

type result = {
  model_digest : string;  (** MD5 of the model's canonical serialization *)
  space_size : int;  (** full lattice size before profile pruning *)
  searched : int;  (** candidates compiled + cost-model scored *)
  budget : budget;
  feedback : feedback option;  (** [None] when profiling was disabled *)
  candidates : candidate list;  (** ranked by cost model, best first *)
  reference : candidate;
      (** the caller's configuration — measured whenever a search runs *)
  best : candidate;  (** best-ranked candidate that validated bit-identical *)
  per_task : per_task option;
  from_cache : bool;  (** served from the tuned-config cache, no search ran *)
}

val enumerate :
  ?dropped:knob list ->
  stats:Spnc_spn.Stats.t ->
  Options.t ->
  Options.t list
(** The configuration lattice around a base option set, deduplicated by
    compile fingerprint (scalar points canonicalize the
    vectorization-only knobs so they do not multiply).  [dropped]
    dimensions collapse to the base value.  Partition buckets are derived
    from the model's operation count; vector points exist only when the
    machine has SIMD lanes. *)

val tune :
  ?budget:budget ->
  ?use_profile:bool ->
  ?profile_rows:int ->
  ?est_rows:int ->
  ?cache_dir:string ->
  options:Options.t ->
  data:float array array ->
  Spnc_spn.Model.t ->
  result
(** Run the explorer.  [data] is the sample set used for wall-clock
    validation (and, first [profile_rows] of it, the stage-2 profile);
    [est_rows] (default 8192) is the sample count the cost model prices —
    the steady-state regime, so fixed overheads amortize as in the
    paper's figures.  [cache_dir] enables the tuned-config cache: a hit
    returns immediately with [from_cache = true].
    @raise Invalid_argument on a GPU-target option set (the DSE is the
    paper's CPU experiment) or empty [data]. *)

val refine_per_task :
  base_level:Spnc_cpu.Optimizer.level ->
  profile:Spnc_cpu.Profile.t ->
  Spnc.Compiler.compiled ->
  float array array ->
  per_task option
(** Stage-2 per-task refinement, exposed for tests: attribute the
    profile's dynamic cycles to the artifact's task functions (via
    register provenance), re-optimize the hot ones (≥ 10% cycle share)
    at [-O3] when [base_level] is lower, and validate the refined
    module's raw outputs bit-identical against the unrefined artifact at
    a single thread.  [None] for GPU or unpartitioned (single-function)
    artifacts. *)

val spearman : result -> float option
(** Spearman rank correlation between the cost-model ranking and the
    measured wall-clock ordering over the validated candidates; [None]
    with fewer than three measurements.  The CI sanity bound asserts this
    stays non-negative — the model must not be anti-correlated with
    reality. *)

(** Per-dimension diagnosis of a bad global {!spearman}: for each lattice
    knob, the tie-aware rank correlation of the knob's ordinal against
    the cost-model estimate ([dc_rho_est]) and against the measured wall
    clock ([dc_rho_wall]) over the validated candidates.  A dimension is
    {e inverted} when the two correlations are clearly opposite in sign
    (both past a 0.25 noise floor): the cost model prices that knob in
    the wrong direction, which is actionable — unlike the bare global
    coefficient. *)
type dimension_corr = {
  dc_knob : knob;
  dc_rho_est : float option;  (** [None]: knob constant among measured *)
  dc_rho_wall : float option;
  dc_inverted : bool;
}

val spearman_by_dimension : result -> dimension_corr list
(** One entry per lattice dimension, in {!knob} order.  Uses fractional
    (tie-averaged) ranks, since knob ordinals are massively tied. *)

val inverted_dimensions : result -> string list
(** Names of the inverted dimensions, for report strings. *)

(** {2 Tuned-config serialization}

    A tuned configuration round-trips through JSON so CI jobs, the
    [spnc_cli tune --out] artifact and the digest-keyed cache all share
    one schema (version-tagged [spnc_tuned_config]). *)

val config_to_json : Options.t -> Spnc_obs.Json.t
val config_of_json : Spnc_obs.Json.t -> (Options.t, string) Stdlib.result

val result_to_json : result -> Spnc_obs.Json.t
(** The full DSE report (the [DSE_cpu.json] bench artifact): lattice,
    ranking, measurements, profile feedback, per-task refinement and the
    winning config object. *)

val load_cached :
  cache_dir:string -> Spnc_spn.Model.t -> (Options.t * string) option
(** Look up a tuned config for this model (and its label) in the
    digest-keyed cache without running a search. *)

val pp_result : Format.formatter -> result -> unit
(** Human-readable report: ranked table, profile feedback, per-task
    shares, winner vs reference. *)
