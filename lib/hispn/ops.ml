(** The HiSPN dialect (paper §III-A, Table I).

    HiSPN captures query and SPN-DAG structure at SPFlow's level of
    abstraction.  The DAG lives inside the single region of a
    [hi_spn.graph] op, whose block arguments are the feature values; the
    graph sits inside the single region of a query op
    ([hi_spn.joint_query]) that carries batch size, feature count, input
    type and marginalization support as attributes.  All node results use
    the abstract [!hi_spn.probability] type — the concrete computation
    type is chosen only during lowering to LoSPN. *)

open Spnc_mlir

let dialect = "hi_spn"

(* Operation names *)
let joint_query_name = "hi_spn.joint_query"
let graph_name = "hi_spn.graph"
let root_name = "hi_spn.root"
let sum_name = "hi_spn.sum"
let product_name = "hi_spn.product"
let gaussian_name = "hi_spn.gaussian"
let categorical_name = "hi_spn.categorical"
let histogram_name = "hi_spn.histogram"

(* -- Builders -------------------------------------------------------------- *)

let sum b ?loc ~operands ~weights () =
  Builder.op b sum_name ~operands ~results:[ Types.Prob ]
    ~attrs:[ ("weights", Attr.DenseF weights) ]
    ?loc ()

let product b ?loc ~operands () =
  Builder.op b product_name ~operands ~results:[ Types.Prob ] ?loc ()

let gaussian b ?loc ~evidence ~mean ~stddev () =
  Builder.op b gaussian_name ~operands:[ evidence ] ~results:[ Types.Prob ]
    ~attrs:[ ("mean", Attr.Float mean); ("stddev", Attr.Float stddev) ]
    ?loc ()

let categorical b ?loc ~index ~probabilities () =
  Builder.op b categorical_name ~operands:[ index ] ~results:[ Types.Prob ]
    ~attrs:[ ("probabilities", Attr.DenseF probabilities) ]
    ?loc ()

let histogram b ?loc ~index ~breaks ~densities () =
  Builder.op b histogram_name ~operands:[ index ] ~results:[ Types.Prob ]
    ~attrs:
      [
        ("buckets", Attr.Array (Array.to_list (Array.map (fun i -> Attr.Int i) breaks)));
        ("bucketCount", Attr.Int (Array.length densities));
        ("densities", Attr.DenseF densities);
      ]
    ?loc ()

let root b ~value = Builder.op b root_name ~operands:[ value ] ()

let graph b ~num_features ~body =
  Builder.op b graph_name
    ~attrs:[ ("numFeatures", Attr.Int num_features) ]
    ~regions:[ Builder.region1 body ]
    ()

let joint_query b ~num_features ~batch_size ~input_type ~support_marginal
    ~graph_op =
  Builder.op b joint_query_name
    ~attrs:
      [
        ("numFeatures", Attr.Int num_features);
        ("batchSize", Attr.Int batch_size);
        ("inputType", Attr.Type input_type);
        ("supportMarginal", Attr.Bool support_marginal);
      ]
    ~regions:[ Builder.region1 { Ir.bargs = []; bops = [ graph_op ] } ]
    ()

(* -- Verifiers ------------------------------------------------------------- *)

open Dialect

let verify_sum (op : Ir.op) =
  let* () = expect_min_operands op 1 in
  let* () = expect_results op 1 in
  let* weights = expect_dense_attr op "weights" in
  let* () =
    checkf
      (Array.length weights = List.length op.Ir.operands)
      "weights count %d does not match operand count %d" (Array.length weights)
      (List.length op.Ir.operands)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let* () =
    checkf (Float.abs (total -. 1.0) <= 1e-5) "weights sum to %.9f, not 1.0" total
  in
  check
    (List.for_all (fun (v : Ir.value) -> Types.equal v.Ir.vty Types.Prob) op.Ir.operands)
    "sum operands must have probability type"

let verify_product (op : Ir.op) =
  let* () = expect_min_operands op 1 in
  let* () = expect_results op 1 in
  check
    (List.for_all (fun (v : Ir.value) -> Types.equal v.Ir.vty Types.Prob) op.Ir.operands)
    "product operands must have probability type"

let verify_gaussian (op : Ir.op) =
  let* () = expect_operands op 1 in
  let* () = expect_results op 1 in
  let* _ = expect_attr op "mean" in
  let* a = expect_attr op "stddev" in
  match Attr.as_float a with
  | Some s when s > 0.0 -> Ok ()
  | Some s -> Error (Printf.sprintf "gaussian stddev %g must be positive" s)
  | None -> Error "gaussian stddev must be a float"

let verify_categorical (op : Ir.op) =
  let* () = expect_operands op 1 in
  let* () = expect_results op 1 in
  let* probs = expect_dense_attr op "probabilities" in
  checkf
    (Float.abs (Array.fold_left ( +. ) 0.0 probs -. 1.0) <= 1e-5)
    "categorical probabilities must sum to 1"

let verify_histogram (op : Ir.op) =
  let* () = expect_operands op 1 in
  let* () = expect_results op 1 in
  let* n = expect_int_attr op "bucketCount" in
  let* densities = expect_dense_attr op "densities" in
  let* () =
    checkf (Array.length densities = n) "bucketCount %d but %d densities" n
      (Array.length densities)
  in
  let* bks = expect_attr op "buckets" in
  match Attr.as_array bks with
  | Some l ->
      checkf (List.length l = n + 1) "buckets must have bucketCount+1 entries"
  | None -> Error "buckets must be an array attribute"

let verify_root (op : Ir.op) =
  let* () = expect_operands op 1 in
  expect_results op 0

let verify_graph (op : Ir.op) =
  let* () = expect_regions op 1 in
  let* nf = expect_int_attr op "numFeatures" in
  match Ir.entry_block op with
  | Some blk ->
      let* () =
        checkf
          (List.length blk.Ir.bargs = nf)
          "graph block must have %d feature arguments, has %d" nf
          (List.length blk.Ir.bargs)
      in
      let roots =
        List.filter (fun (o : Ir.op) -> o.Ir.name = root_name) blk.Ir.bops
      in
      checkf (List.length roots = 1) "graph must contain exactly one hi_spn.root"
  | None -> Error "graph region must have an entry block"

let verify_joint_query (op : Ir.op) =
  let* () = expect_regions op 1 in
  let* _ = expect_int_attr op "numFeatures" in
  let* _ = expect_int_attr op "batchSize" in
  let* _ = expect_attr op "inputType" in
  let graphs =
    List.filter (fun (o : Ir.op) -> o.Ir.name = graph_name) (Ir.single_region_ops op)
  in
  checkf (List.length graphs = 1) "query must contain exactly one hi_spn.graph"

(* -- Canonicalization patterns (paper §IV-A2) ------------------------------ *)

(* A sum or product with a single operand computes the identity (for sums,
   once weights are normalized the single weight is 1), so forward the
   operand. *)
let canon_single_operand _b (op : Ir.op) =
  match op.Ir.operands with
  | [ single ] ->
      if op.Ir.name = product_name then Some ([], [ single ])
      else (
        match Ir.dense_attr op "weights" with
        | Some [| w |] when Float.abs (w -. 1.0) <= 1e-9 -> Some ([], [ single ])
        | _ -> None)
  | _ -> None

(** [register ()] installs the dialect into the global registry;
    idempotent. *)
let register () =
  register_simple ~pure:true ~canon:canon_single_operand sum_name verify_sum;
  register_simple ~pure:true ~canon:canon_single_operand product_name
    verify_product;
  register_simple ~pure:true gaussian_name verify_gaussian;
  register_simple ~pure:true categorical_name verify_categorical;
  register_simple ~pure:true histogram_name verify_histogram;
  register_simple root_name verify_root;
  register_simple graph_name verify_graph;
  register_simple joint_query_name verify_joint_query

let () = register ()
