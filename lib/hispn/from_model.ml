(** Translation from the SPN model (SPFlow representation) into the HiSPN
    dialect — the paper's §IV-A2, the entry point into the MLIR framework.

    DAG sharing is preserved: each model node id maps to one HiSPN op;
    parents re-use the SSA result of an already-translated child. *)

open Spnc_mlir
open Spnc_spn

(** Probabilistic query descriptor, mirroring the information the paper
    attaches to the query operation. *)
type query = {
  batch_size : int;
  input_type : Types.t;  (** element type of the feature inputs *)
  support_marginal : bool;  (** marginal inference via NaN evidence *)
}

let default_query =
  { batch_size = 4096; input_type = Types.F32; support_marginal = false }

(** [translate ?query model] produces a module containing a single
    [hi_spn.joint_query] with the translated graph. *)
let translate ?(query = default_query) (model : Model.t) : Ir.modul =
  Ops.register ();
  let b = Builder.create () in
  let num_features = model.Model.num_features in
  let body =
    Builder.block b
      ~arg_tys:(List.init num_features (fun _ -> query.input_type))
      (fun features ->
        let feature = Array.of_list features in
        let translated : (int, Ir.value) Hashtbl.t = Hashtbl.create 256 in
        let ops_rev = ref [] in
        let emit op =
          ops_rev := op :: !ops_rev;
          Ir.result op
        in
        let rec go (n : Model.node) : Ir.value =
          match Hashtbl.find_opt translated n.Model.id with
          | Some v -> v
          | None ->
              (* provenance: every op knows which model node it came from,
                 and the location survives all later lowerings *)
              let loc = Loc.node n.Model.id in
              let v =
                match n.Model.desc with
                | Model.Sum cs ->
                    let operands = List.map (fun (_, c) -> go c) cs in
                    let weights =
                      Array.of_list (List.map (fun (w, _) -> w) cs)
                    in
                    emit (Ops.sum b ~loc ~operands ~weights ())
                | Model.Product cs ->
                    emit (Ops.product b ~loc ~operands:(List.map go cs) ())
                | Model.Gaussian { var; mean; stddev } ->
                    emit (Ops.gaussian b ~loc ~evidence:feature.(var) ~mean ~stddev ())
                | Model.Categorical { var; probs } ->
                    emit
                      (Ops.categorical b ~loc ~index:feature.(var)
                         ~probabilities:probs ())
                | Model.Histogram { var; breaks; densities } ->
                    emit (Ops.histogram b ~loc ~index:feature.(var) ~breaks ~densities ())
              in
              Hashtbl.replace translated n.Model.id v;
              v
        in
        let root_value = go model.Model.root in
        let root_op = Ops.root b ~value:root_value in
        List.rev (root_op :: !ops_rev))
  in
  let graph_op = Ops.graph b ~num_features ~body in
  let query_op =
    Ops.joint_query b ~num_features ~batch_size:query.batch_size
      ~input_type:query.input_type ~support_marginal:query.support_marginal
      ~graph_op
  in
  Builder.modul ~name:model.Model.name [ query_op ]
