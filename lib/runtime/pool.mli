(** Persistent worker pool with a work-stealing deque scheduler.

    Created once (per compiled kernel, or per process via {!global}),
    the pool keeps its domains parked between execution rounds instead
    of re-spawning them per call.  See docs/PERFORMANCE.md §5. *)

type sched =
  | Static  (** contiguous block per worker, no rebalancing *)
  | Stealing
      (** same initial blocks; idle workers steal from the top of other
          workers' deques *)

val sched_to_string : sched -> string
val sched_of_string : string -> sched option

type t

val create : size:int -> t
(** [create ~size] spawns [size - 1] worker domains; the calling domain
    fills worker slot 0 during {!run}.  Raises [Invalid_argument] if
    [size <= 0]. *)

val run :
  t ->
  ?sched:sched ->
  ?workers:int ->
  ?stop:(unit -> bool) ->
  num_tasks:int ->
  (worker:int -> int -> unit) ->
  unit
(** [run t ~num_tasks f] executes [f ~worker i] for every
    [i in 0..num_tasks-1] across the pool and returns when all tasks
    have completed.  [worker] is the executing worker slot in
    [0..size-1] (stable per task, usable as an index into per-worker
    state).  [?workers] restricts the round to the first [workers]
    slots (clamped to [1..size]): [f] is only ever called with
    [worker < workers], even when a worker descheduled during an
    earlier round with more participants wakes up mid-round (task
    claims are round-stamped, so such a straggler claims nothing).  [?stop] is polled before each task
    body; once it returns [true], remaining tasks are skipped (they
    still count as completed).  [f] should not raise — an escaping
    exception is swallowed, not propagated.  Rounds are serialized, so
    one pool may be shared by many kernels and calling domains;
    [sched] defaults to [Stealing]. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Subsequent {!run} calls
    raise [Invalid_argument].  Idempotent. *)

val size : t -> int
(** Worker slots, including the caller's slot 0. *)

val steal_count : t -> int
(** Total successful steals over the pool's lifetime. *)

val total_domains_spawned : unit -> int
(** Process-wide count of domains ever spawned by pool creation — lets
    tests assert that repeated executes do not re-spawn. *)

val global : threads:int -> t
(** Process-wide shared pool of at least [threads] slots.  Reuses the
    existing pool when large enough, otherwise shuts it down and
    creates a bigger one.  Never shut this pool down from user code. *)
