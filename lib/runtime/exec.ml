(** Runtime component (paper §IV-B): loads a compiled kernel and executes
    it over input data, multi-threaded.

    The generated kernel itself is single-threaded; the runtime splits
    the input into chunks and processes the chunks on a persistent
    {!Pool} of OCaml 5 domains — "the runtime component ... will split
    the input data into multiple chunks and use multiple threads to
    process these chunks in parallel."  The user-provided batch size is
    an optimization hint and an upper bound on the chunk size; when
    running parallel, {!chunk_plan} shrinks chunks toward ~4 per worker
    (oversubscription so work stealing has slack to rebalance) with a
    floor at the SIMD width so JIT lane loops stay full.

    Streaming execution (docs/PERFORMANCE.md §5): the pool is created
    {e once} — at [load] time, or passed in by the caller (the compiler
    shares one process-wide pool) — and reused across every [execute]
    call, as are the per-worker contexts (JIT register frames + scratch).
    Nothing is spawned per call.

    Zero-copy parallelism (docs/PERFORMANCE.md §2): chunks are handed to
    the kernel as buffer {e views} — base offset + length into the
    shared flat input — instead of [Array.sub] copies, and single-slot
    results are written by the kernel directly into the shared output
    array.

    Fault tolerance (docs/RESILIENCE.md): a kernel trap inside one chunk
    must not hang the batch or lose domains.  Workers run every chunk
    under an exception barrier; the first captured failure wins, the
    remaining chunks are cancelled, the round is drained, and exactly
    one {!Chunk_error} — carrying the chunk bounds, the exception text
    and its backtrace — surfaces to the caller. *)

module Jit = Spnc_cpu.Jit
module Vm = Spnc_cpu.Vm
module Obs_trace = Spnc_obs.Trace
module Obs_metrics = Spnc_obs.Metrics
module Fault = Spnc_resilience.Fault

(* Registered once at module init; the hot paths below only touch the
   atomics inside these handles. *)
let m_calls = Obs_metrics.counter "runtime.exec.calls"
let m_rows = Obs_metrics.counter "runtime.exec.rows"
let m_chunks = Obs_metrics.counter "runtime.exec.chunks"
let m_ctx_created = Obs_metrics.counter "runtime.exec.ctx_created"
let m_call_seconds = Obs_metrics.histogram "runtime.exec.call_seconds"
let m_retries = Obs_metrics.counter "runtime.exec.retries"
let m_deadline_exceeded = Obs_metrics.counter "runtime.exec.deadline_exceeded"

(* how close successful deadline-bearing calls come to their budget:
   p01 of this histogram trending toward 0 means deadlines are set too
   tight for the workload *)
let m_deadline_margin =
  Obs_metrics.histogram "runtime.exec.deadline_margin_seconds"

(* Shared serving vocabulary (docs/OBSERVABILITY.md): plain CLI runs and
   the spnc_serve batcher report into the SAME two instruments, so one
   dashboard covers both.  [rows_in_flight] counts rows admitted to the
   runtime (or queued in serve) but not yet returned; [queue_wait]
   records time spent waiting to execute — here the exec-lock wait, in
   serve the time a request sits in its model queue. *)
let m_rows_in_flight = Obs_metrics.gauge "runtime.exec.rows_in_flight"
let m_queue_wait = Obs_metrics.histogram "runtime.exec.queue_wait_seconds"

(* Per-worker execution context, allocated once per worker slot and
   reused across every chunk of every [execute] call. *)
type ctx = {
  state : Jit.state option;  (** JIT register frames (engine = Jit) *)
  mutable scratch : float array;
      (** pooled output backing for multi-slot kernels; grown on demand *)
}

type t = {
  kernel : Spnc_cpu.Lir.modul;
  jit : Jit.kernel option;  (** compiled closures iff [engine = Jit] *)
  engine : Jit.engine;
  profile : Spnc_cpu.Profile.t option;
      (** per-node instruction profile; [Some] switches the VM engine to
          {!Vm.run_profiled} (the JIT bakes profiling in at compile time) *)
  out_cols : int;  (** slots per sample in the kernel output buffer *)
  batch_size : int;  (** chunk size hint / upper bound *)
  threads : int;
  sched : Pool.sched;
  min_chunk : int;  (** adaptive-chunk floor (SIMD width) *)
  pool : Pool.t option;  (** worker pool iff [threads > 1] *)
  owns_pool : bool;  (** [shutdown] tears the pool down iff set *)
  ctxs : ctx option array;  (** per-worker-slot contexts, lazily filled *)
  exec_lock : Mutex.t;
      (** contexts are reused across calls, so concurrent [execute] on
          one [t] must serialize *)
}

let auto_threads () = max 1 (min 64 (Domain.recommended_domain_count ()))

let chunk_plan ~rows ~threads ~batch_size ~min_chunk =
  if rows <= 0 then batch_size
  else if threads <= 1 then batch_size
  else
    (* ~4x oversubscription: aim for four chunks per worker so stealing
       has slack to rebalance skewed chunk costs, but never exceed the
       user's batch-size hint and never drop below the SIMD width *)
    let target = (rows + (threads * 4) - 1) / (threads * 4) in
    max 1 (max min_chunk (min batch_size target))

let load ?(batch_size = 4096) ?(threads = 1) ?(engine = Jit.Jit) ?jit ?profile
    ?(sched = Pool.Stealing) ?(min_chunk = 1) ?pool ~out_cols kernel =
  if batch_size <= 0 then invalid_arg "Exec.load: batch_size must be positive";
  let threads = if threads <= 0 then auto_threads () else min threads 256 in
  (* compile eagerly (and on the caller's domain): Jit.kernel is immutable
     and shared by all workers, only the per-worker state is mutable *)
  let jit =
    match engine with
    | Jit.Vm -> None
    | Jit.Jit ->
        Some
          (match jit with
          | Some k -> k
          | None -> Jit.compile ?profile kernel)
  in
  let pool, owns_pool =
    if threads <= 1 then (None, false)
    else
      match pool with
      | Some p -> (Some p, false)
      | None -> (Some (Pool.create ~size:threads), true)
  in
  {
    kernel;
    jit;
    engine;
    profile;
    out_cols;
    batch_size;
    threads;
    sched;
    min_chunk = max 1 min_chunk;
    pool;
    owns_pool;
    ctxs = Array.make (max 1 threads) None;
    exec_lock = Mutex.create ();
  }

let threads t = t.threads

let shutdown t = if t.owns_pool then Option.iter Pool.shutdown t.pool

type chunk_error = {
  chunk_lo : int;  (** first sample index of the failing chunk *)
  chunk_hi : int;  (** one past the last sample index *)
  message : string;  (** text of the captured exception *)
  backtrace : string;  (** backtrace captured inside the worker *)
  transient : bool;  (** retryable ({!Spnc_resilience.Fault.Transient}) *)
}

exception Chunk_error of chunk_error

type deadline_info = {
  deadline : float;  (** the absolute deadline, epoch seconds *)
  now : float;  (** when the overrun was detected *)
}

exception Deadline_exceeded of deadline_info

(* Capped exponential backoff before retrying a transient failure:
   1 ms, 2 ms, 4 ms, ... capped at 50 ms.  The cap keeps worst-case
   added latency bounded even with a generous retry budget. *)
let backoff_seconds attempt =
  Float.min 0.05 (0.001 *. Float.pow 2.0 (float_of_int (max 0 (attempt - 1))))

let () =
  Printexc.register_printer (function
    | Chunk_error e ->
        Some
          (Printf.sprintf "Exec.Chunk_error(samples [%d,%d)%s: %s)" e.chunk_lo
             e.chunk_hi
             (if e.transient then ", transient" else "")
             e.message)
    | Deadline_exceeded d ->
        Some
          (Printf.sprintf "Exec.Deadline_exceeded(over by %.3fs)"
             (d.now -. d.deadline))
    | _ -> None)

let make_ctx (t : t) : ctx =
  Obs_metrics.counter_incr m_ctx_created;
  { state = Option.map Jit.make_state t.jit; scratch = [||] }

(* Worker slot -> context, created on first use and kept for the life of
   [t].  Slots are owned by exactly one worker within a round, so the
   per-index writes never race. *)
let get_ctx (t : t) w =
  match t.ctxs.(w) with
  | Some c -> c
  | None ->
      let c = make_ctx t in
      t.ctxs.(w) <- Some c;
      c

let run_engine (t : t) (ctx : ctx) ~buffers : unit =
  match (t.engine, t.jit, ctx.state) with
  | Jit.Jit, Some k, Some st -> Jit.run k st ~buffers
  | Jit.Vm, _, _ | _, None, _ | _, _, None -> (
      (* the JIT path above needs no dispatch here — profiling is baked
         into the closures at compile time; the VM interprets, so the
         profiled walker is a separate entry point *)
      match t.profile with
      | Some p -> Vm.run_profiled t.kernel p ~buffers
      | None -> Vm.run t.kernel ~buffers)

(* A caller-owned slice of a batch: [seg_rows] row-major samples in
   [seg_flat], results written into [seg_out] starting at [seg_out_pos].
   Segments let the serving batcher coalesce many small requests into
   one runtime call while each caller's results land directly in that
   caller's buffer — the scatter is the kernel write itself, no
   gather-then-blit. *)
type segment = {
  seg_flat : float array;
  seg_rows : int;
  seg_out : float array;
  seg_out_pos : int;
}

(* Execute one chunk [lo, hi) (row indices local to [seg]), writing the
   per-sample results into [seg.seg_out.(seg_out_pos + lo ..)]. *)
let run_chunk (t : t) (ctx : ctx) ~(seg : segment) ~num_features ~lo ~hi :
    unit =
  let rows = hi - lo in
  (* zero-copy: a window into the shared flat input, no Array.sub *)
  let input =
    Vm.view seg.seg_flat ~off:(lo * num_features) ~rows ~cols:num_features
  in
  if t.out_cols = 1 then begin
    (* result slot 0 is transposed (the first [rows] entries), and with a
       single slot the output buffer IS slot 0 — so the kernel writes
       straight into the caller-visible output array *)
    let ob = Vm.view seg.seg_out ~off:(seg.seg_out_pos + lo) ~rows ~cols:1 in
    run_engine t ctx ~buffers:[ input; ob ]
  end
  else begin
    (* multi-slot kernels need [rows * out_cols] of scratch; pool it per
       worker and re-zero the used prefix so every chunk still sees the
       fresh-buffer semantics kernels were written against *)
    let need = rows * t.out_cols in
    if Array.length ctx.scratch < need then ctx.scratch <- Array.make need 0.0
    else Array.fill ctx.scratch 0 need 0.0;
    let ob = Vm.view ctx.scratch ~off:0 ~rows ~cols:t.out_cols in
    run_engine t ctx ~buffers:[ input; ob ];
    (* result slot 0 is transposed: the first [rows] entries *)
    Array.blit ctx.scratch 0 seg.seg_out (seg.seg_out_pos + lo) rows
  end

(* The shared execution core: chunk every segment, run the chunks on the
   pool (chunks never straddle a segment boundary, so each kernel write
   stays inside one caller's output view), retry transient failures,
   enforce the deadline.  Chunk-error bounds are reported as global row
   indices across the whole batch. *)
let run_segments ?deadline ?(retries = 0) (t : t) ~num_features
    (segs : segment array) : unit =
  let rows = Array.fold_left (fun acc s -> acc + s.seg_rows) 0 segs in
  if rows = 0 then ()
  else begin
    Obs_metrics.gauge_add m_rows_in_flight (float_of_int rows);
    Fun.protect
      ~finally:(fun () ->
        Obs_metrics.gauge_add m_rows_in_flight (-.float_of_int rows))
    @@ fun () ->
    let t_enter = Unix.gettimeofday () in
    Mutex.lock t.exec_lock;
    Obs_metrics.histogram_observe m_queue_wait
      (Unix.gettimeofday () -. t_enter);
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.exec_lock)
      (fun () ->
        let chunk =
          chunk_plan ~rows ~threads:t.threads ~batch_size:t.batch_size
            ~min_chunk:t.min_chunk
        in
        (* (segment index, local lo, local hi, global row base) *)
        let chunks =
          let acc = ref [] and base = ref 0 in
          Array.iteri
            (fun si s ->
              let lo = ref 0 in
              while !lo < s.seg_rows do
                let hi = min s.seg_rows (!lo + chunk) in
                acc := (si, !lo, hi, !base) :: !acc;
                lo := hi
              done;
              base := !base + s.seg_rows)
            segs;
          Array.of_list (List.rev !acc)
        in
        let n_chunks = Array.length chunks in
        (* first captured failure wins; set exactly once per round *)
        let failure : chunk_error option Atomic.t = Atomic.make None in
        let over () =
          match deadline with
          | None -> false
          | Some d -> Unix.gettimeofday () > d
        in
        let record lo hi e bt =
          let err =
            {
              chunk_lo = lo;
              chunk_hi = hi;
              message = Printexc.to_string e;
              backtrace = Printexc.raw_backtrace_to_string bt;
              transient = Fault.is_transient e;
            }
          in
          ignore (Atomic.compare_and_set failure None (Some err))
        in
        let process_plain ctx (si, lo, hi, base) =
          match
            (* chaos: a stalled chunk exercises deadline cancellation, a
               failed chunk exercises the capture/retry path — both through
               the exact barrier real kernel traps take *)
            Fault.maybe_stall "pool.chunk_stall" ~seconds:0.002;
            Fault.maybe_transient "pool.chunk_fail";
            run_chunk t ctx ~seg:segs.(si) ~num_features ~lo ~hi
          with
          | () -> ()
          | exception ((Stack_overflow | Out_of_memory) as e) ->
              (* even fatal resource exhaustion must not escape a worker
                 domain (a raise would be lost inside the pool); record
                 it like any chunk failure *)
              record (base + lo) (base + hi) e (Printexc.get_raw_backtrace ())
          | exception e ->
              record (base + lo) (base + hi) e (Printexc.get_raw_backtrace ())
        in
        (* the enabled check is hoisted out of the span helper so the
           disabled path allocates nothing per chunk (<2% overhead
           budget on the sustained-serving bench) *)
        let process ctx ((_, lo, hi, base) as c) =
          if Obs_trace.enabled () then
            Obs_trace.with_span ~cat:"exec" "chunk"
              ~args:(fun () ->
                Obs_trace.[ ("lo", I (base + lo)); ("hi", I (base + hi)) ])
              (fun () -> process_plain ctx c)
          else process_plain ctx c
        in
        let run_round () =
          match t.pool with
          | None ->
              let ctx = get_ctx t 0 in
              Array.iter
                (fun c ->
                  if Atomic.get failure = None && not (over ()) then
                    process ctx c)
                chunks
          | Some _ when n_chunks <= 1 ->
              (* one chunk: skip the round protocol entirely *)
              process (get_ctx t 0) chunks.(0)
          | Some pool ->
              (* the stop poll is how in-flight rounds observe both a
                 captured failure and an expired deadline: workers check
                 it before every chunk, so cancellation latency is one
                 chunk, not one round *)
              Pool.run pool ~sched:t.sched ~workers:t.threads
                ~stop:(fun () -> Atomic.get failure <> None || over ())
                ~num_tasks:n_chunks
                (fun ~worker i -> process (get_ctx t worker) chunks.(i))
        in
        (* the per-call span doubles as the latency-histogram clock *)
        let timed_round () =
          let (), call_seconds =
            Obs_trace.timed ~cat:"exec" "execute"
              ~args:(fun () ->
                Obs_trace.
                  [
                    ("rows", I rows);
                    ("segments", I (Array.length segs));
                    ("chunk", I chunk);
                    ("chunks", I n_chunks);
                    ("threads", I t.threads);
                  ])
              run_round
          in
          call_seconds
        in
        let total_seconds = ref 0.0 in
        let attempt = ref 0 in
        (* transient chunk failures retry the whole round (the output
           array is rewritten from scratch) under capped exponential
           backoff; anything else — and any deadline overrun — surfaces
           immediately.  Partial outputs never escape: the only [out]
           that returns is from a round that completed cleanly. *)
        let rec go () =
          Atomic.set failure None;
          total_seconds := !total_seconds +. timed_round ();
          if over () then begin
            Obs_metrics.counter_incr m_deadline_exceeded;
            let d = Option.get deadline in
            raise (Deadline_exceeded { deadline = d; now = Unix.gettimeofday () })
          end;
          match Atomic.get failure with
          | Some err when err.transient && !attempt < max 0 retries ->
              incr attempt;
              Obs_metrics.counter_incr m_retries;
              Unix.sleepf (backoff_seconds !attempt);
              go ()
          | Some err -> raise (Chunk_error err)
          | None -> ()
        in
        Fun.protect
          ~finally:(fun () ->
            (* call accounting happens whether the call succeeded or
               raised — failed calls are still load *)
            Obs_metrics.counter_incr m_calls;
            Obs_metrics.counter_incr ~by:rows m_rows;
            Obs_metrics.counter_incr ~by:n_chunks m_chunks;
            Obs_metrics.histogram_observe m_call_seconds !total_seconds)
          go;
        (match deadline with
        | Some d ->
            Obs_metrics.histogram_observe m_deadline_margin
              (d -. Unix.gettimeofday ())
        | None -> ()))
  end

let check_dims ~what ~rows ~num_features ~flat_len =
  if rows < 0 then
    invalid_arg (Printf.sprintf "Exec.%s: negative rows (%d)" what rows);
  if num_features <= 0 then
    invalid_arg
      (Printf.sprintf "Exec.%s: num_features must be positive (got %d)" what
         num_features);
  if flat_len <> rows * num_features then
    invalid_arg
      (Printf.sprintf
         "Exec.%s: input size mismatch (%d floats for %d rows x %d features)"
         what flat_len rows num_features)

let execute ?deadline ?retries (t : t) ~(flat : float array) ~rows
    ~num_features : float array =
  check_dims ~what:"execute" ~rows ~num_features ~flat_len:(Array.length flat);
  if rows = 0 then [||]
  else begin
    let out = Array.make rows 0.0 in
    run_segments ?deadline ?retries t ~num_features
      [| { seg_flat = flat; seg_rows = rows; seg_out = out; seg_out_pos = 0 } |];
    out
  end

let execute_segments ?deadline ?retries (t : t) ~num_features
    (segs : segment array) : unit =
  Array.iteri
    (fun i s ->
      check_dims
        ~what:(Printf.sprintf "execute_segments (segment %d)" i)
        ~rows:s.seg_rows ~num_features ~flat_len:(Array.length s.seg_flat);
      if
        s.seg_out_pos < 0
        || s.seg_out_pos + s.seg_rows > Array.length s.seg_out
      then
        invalid_arg
          (Printf.sprintf
             "Exec.execute_segments: segment %d output window [%d,%d) exceeds \
              buffer of %d"
             i s.seg_out_pos
             (s.seg_out_pos + s.seg_rows)
             (Array.length s.seg_out)))
    segs;
  let segs = Array.of_seq (Seq.filter (fun s -> s.seg_rows > 0)
                             (Array.to_seq segs)) in
  if Array.length segs > 0 then
    run_segments ?deadline ?retries t ~num_features segs

(** [execute_rows t rows_2d] — convenience over row-major samples.
    @raise Invalid_argument when the rows are ragged (unequal widths). *)
let execute_rows ?deadline ?retries (t : t) (rows_2d : float array array) :
    float array =
  let rows = Array.length rows_2d in
  if rows = 0 then [||]
  else begin
    let num_features = Array.length rows_2d.(0) in
    (* a ragged matrix would silently garble the flat buffer (or trap
       deep inside the VM); reject it here with the offending row *)
    Array.iteri
      (fun i row ->
        if Array.length row <> num_features then
          invalid_arg
            (Printf.sprintf
               "Exec.execute_rows: ragged input (row %d has %d features, \
                expected %d)"
               i (Array.length row) num_features))
      rows_2d;
    let flat = Array.concat (Array.to_list rows_2d) in
    execute ?deadline ?retries t ~flat ~rows ~num_features
  end
