(** Runtime component (paper §IV-B): loads a compiled kernel and executes
    it over input data, multi-threaded.

    The generated kernel itself is single-threaded; the runtime splits
    the input into chunks of the user-provided batch size and processes
    the chunks on a pool of OCaml 5 domains — "the runtime component ...
    will split the input data into multiple chunks and use multiple
    threads to process these chunks in parallel.  In this case, the
    user-provided batch size is used as size for the chunks.  Note that
    the batch size is a mere optimization hint, the generated kernel can
    still process an arbitrary number of inputs."

    Zero-copy parallelism (docs/PERFORMANCE.md): chunks are handed to the
    kernel as buffer {e views} — base offset + length into the shared
    flat input — instead of [Array.sub] copies, and single-slot results
    are written by the kernel directly into the shared output array.
    Each worker domain owns a {!ctx} (JIT register frames + a scratch
    output pool for multi-slot kernels) allocated once and reused across
    all the chunks it processes.

    Fault tolerance (docs/RESILIENCE.md): a kernel trap inside one chunk
    must not hang the batch or lose domains.  Workers run every chunk
    under an exception barrier; the first captured failure wins, the
    remaining chunks are cancelled, every domain is joined, and exactly
    one {!Chunk_error} — carrying the chunk bounds, the exception text
    and its backtrace — surfaces to the caller. *)

module Jit = Spnc_cpu.Jit
module Vm = Spnc_cpu.Vm

type t = {
  kernel : Spnc_cpu.Lir.modul;
  jit : Jit.kernel option;  (** compiled closures iff [engine = Jit] *)
  engine : Jit.engine;
  out_cols : int;  (** slots per sample in the kernel output buffer *)
  batch_size : int;  (** chunk size hint *)
  threads : int;
}

let load ?(batch_size = 4096) ?(threads = 1) ?(engine = Jit.Jit) ?jit ~out_cols
    kernel =
  if batch_size <= 0 then invalid_arg "Exec.load: batch_size must be positive";
  if threads <= 0 then invalid_arg "Exec.load: threads must be positive";
  (* compile eagerly (and on the caller's domain): Jit.kernel is immutable
     and shared by all workers, only the per-worker state is mutable *)
  let jit =
    match engine with
    | Jit.Vm -> None
    | Jit.Jit -> Some (match jit with Some k -> k | None -> Jit.compile kernel)
  in
  { kernel; jit; engine; out_cols; batch_size; threads }

type chunk_error = {
  chunk_lo : int;  (** first sample index of the failing chunk *)
  chunk_hi : int;  (** one past the last sample index *)
  message : string;  (** text of the captured exception *)
  backtrace : string;  (** backtrace captured inside the worker *)
}

exception Chunk_error of chunk_error

let () =
  Printexc.register_printer (function
    | Chunk_error e ->
        Some
          (Printf.sprintf "Exec.Chunk_error(samples [%d,%d): %s)" e.chunk_lo
             e.chunk_hi e.message)
    | _ -> None)

(* Per-worker execution context, allocated once per domain and reused
   across every chunk the domain processes. *)
type ctx = {
  state : Jit.state option;  (** JIT register frames (engine = Jit) *)
  mutable scratch : float array;
      (** pooled output backing for multi-slot kernels; grown on demand *)
}

let make_ctx (t : t) : ctx =
  { state = Option.map Jit.make_state t.jit; scratch = [||] }

let run_engine (t : t) (ctx : ctx) ~buffers : unit =
  match (t.engine, t.jit, ctx.state) with
  | Jit.Vm, _, _ | _, None, _ | _, _, None -> Vm.run t.kernel ~buffers
  | Jit.Jit, Some k, Some st -> Jit.run k st ~buffers

(* Execute one chunk [lo, hi) of the flat input, writing the per-sample
   results into [out.(lo..hi-1)]. *)
let run_chunk (t : t) (ctx : ctx) ~(flat : float array) ~(out : float array)
    ~num_features ~lo ~hi : unit =
  let rows = hi - lo in
  (* zero-copy: a window into the shared flat input, no Array.sub *)
  let input = Vm.view flat ~off:(lo * num_features) ~rows ~cols:num_features in
  if t.out_cols = 1 then begin
    (* result slot 0 is transposed (the first [rows] entries), and with a
       single slot the output buffer IS slot 0 — so the kernel writes
       straight into the caller-visible output array *)
    let ob = Vm.view out ~off:lo ~rows ~cols:1 in
    run_engine t ctx ~buffers:[ input; ob ]
  end
  else begin
    (* multi-slot kernels need [rows * out_cols] of scratch; pool it per
       worker and re-zero the used prefix so every chunk still sees the
       fresh-buffer semantics kernels were written against *)
    let need = rows * t.out_cols in
    if Array.length ctx.scratch < need then ctx.scratch <- Array.make need 0.0
    else Array.fill ctx.scratch 0 need 0.0;
    let ob = Vm.view ctx.scratch ~off:0 ~rows ~cols:t.out_cols in
    run_engine t ctx ~buffers:[ input; ob ];
    (* result slot 0 is transposed: the first [rows] entries *)
    Array.blit ctx.scratch 0 out lo rows
  end

(** [execute t ~flat ~rows ~num_features] — evaluate all samples,
    chunked, possibly across domains; returns one value per sample.
    @raise Invalid_argument on malformed dimensions or a size mismatch.
    @raise Chunk_error when the kernel fails inside a chunk; all worker
    domains are joined first and exactly one error is surfaced. *)
let execute (t : t) ~(flat : float array) ~rows ~num_features : float array =
  if rows < 0 then
    invalid_arg (Printf.sprintf "Exec.execute: negative rows (%d)" rows);
  if num_features <= 0 then
    invalid_arg
      (Printf.sprintf "Exec.execute: num_features must be positive (got %d)"
         num_features);
  if Array.length flat <> rows * num_features then
    invalid_arg
      (Printf.sprintf
         "Exec.execute: input size mismatch (%d floats for %d rows x %d \
          features)"
         (Array.length flat) rows num_features);
  if rows = 0 then [||]
  else begin
    let out = Array.make rows 0.0 in
    let chunks = ref [] in
    let lo = ref 0 in
    while !lo < rows do
      let hi = min rows (!lo + t.batch_size) in
      chunks := (!lo, hi) :: !chunks;
      lo := hi
    done;
    let chunks = Array.of_list (List.rev !chunks) in
    (* first captured failure wins; set exactly once *)
    let failure : chunk_error option Atomic.t = Atomic.make None in
    let record lo hi e bt =
      let err =
        {
          chunk_lo = lo;
          chunk_hi = hi;
          message = Printexc.to_string e;
          backtrace = Printexc.raw_backtrace_to_string bt;
        }
      in
      ignore (Atomic.compare_and_set failure None (Some err))
    in
    let process ctx (lo, hi) =
      match run_chunk t ctx ~flat ~out ~num_features ~lo ~hi with
      | () -> ()
      | exception ((Stack_overflow | Out_of_memory) as e) ->
          (* even fatal resource exhaustion must not escape a worker
             domain (a raise would be lost at Domain.join time); record
             it like any chunk failure *)
          record lo hi e (Printexc.get_raw_backtrace ())
      | exception e -> record lo hi e (Printexc.get_raw_backtrace ())
    in
    if t.threads <= 1 || Array.length chunks <= 1 then begin
      let ctx = make_ctx t in
      Array.iter
        (fun c -> if Atomic.get failure = None then process ctx c)
        chunks
    end
    else begin
      (* domain pool over an atomic work index; a recorded failure
         cancels the remaining chunks but never a running one.  Each
         worker allocates its context once, then reuses its frames and
         scratch across all the chunks it claims. *)
      let next = Atomic.make 0 in
      let worker () =
        let ctx = make_ctx t in
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= Array.length chunks || Atomic.get failure <> None then
            continue := false
          else process ctx chunks.(i)
        done
      in
      let n_workers = min t.threads (Array.length chunks) in
      let domains = List.init (n_workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains
    end;
    match Atomic.get failure with
    | Some err -> raise (Chunk_error err)
    | None -> out
  end

(** [execute_rows t rows_2d] — convenience over row-major samples.
    @raise Invalid_argument when the rows are ragged (unequal widths). *)
let execute_rows (t : t) (rows_2d : float array array) : float array =
  let rows = Array.length rows_2d in
  if rows = 0 then [||]
  else begin
    let num_features = Array.length rows_2d.(0) in
    (* a ragged matrix would silently garble the flat buffer (or trap
       deep inside the VM); reject it here with the offending row *)
    Array.iteri
      (fun i row ->
        if Array.length row <> num_features then
          invalid_arg
            (Printf.sprintf
               "Exec.execute_rows: ragged input (row %d has %d features, \
                expected %d)"
               i (Array.length row) num_features))
      rows_2d;
    let flat = Array.concat (Array.to_list rows_2d) in
    execute t ~flat ~rows ~num_features
  end
