(** Runtime component (paper §IV-B): loads a compiled kernel and executes
    it over input data, multi-threaded.

    The generated kernel is single-threaded; the runtime splits the input
    into chunks and processes them on a persistent {!Pool} of OCaml 5
    domains.  The batch size is an optimization hint and an upper bound
    on the chunk size; in parallel runs {!chunk_plan} targets ~4 chunks
    per worker with a floor at the SIMD width.

    Streaming execution (docs/PERFORMANCE.md §5): the worker pool and the
    per-worker contexts (JIT register frames + scratch) are created once
    per loaded kernel — or shared, via [?pool] — and reused across every
    [execute] call; nothing is spawned per call.  Chunks are zero-copy:
    kernels receive {!Spnc_cpu.Vm.view}s into the shared flat input (and,
    for single-slot kernels, into the shared output).

    Fault tolerance: a kernel trap inside one chunk cancels the remaining
    chunks, the round is drained, and exactly one {!Chunk_error} surfaces
    (docs/RESILIENCE.md). *)

type t

(** [load ?batch_size ?threads ?engine ?jit ?sched ?min_chunk ?pool
    ~out_cols kernel] prepares a kernel whose output buffer has
    [out_cols] slots per sample (slot 0 is the query result).

    [threads <= 0] means auto: [Domain.recommended_domain_count],
    clamped to [1..64]; positive values are clamped to 256.  [engine]
    picks the execution engine (default {!Spnc_cpu.Jit.Jit}, the closure
    compiler); pass [?jit] to reuse an already-compiled
    {!Spnc_cpu.Jit.kernel} (e.g. from the compiler's kernel cache).
    [sched] picks the parallel scheduler (default {!Pool.Stealing});
    [min_chunk] is the adaptive-chunk floor (pass the SIMD width so JIT
    lane loops stay full).  When [threads > 1] the kernel either uses
    the caller-provided [?pool] (shared; never shut down by {!shutdown})
    or creates its own (torn down by {!shutdown}).

    [?profile] enables per-SPN-node instruction profiling
    (docs/OBSERVABILITY.md): the VM engine switches to
    {!Spnc_cpu.Vm.run_profiled}, and a self-compiled JIT bakes the
    counters into its closures.  When passing a pre-compiled [?jit]
    alongside [?profile], compile it with the same profile —
    [Jit.compile ~profile] — or the JIT path will not count.
    @raise Invalid_argument on non-positive [batch_size]. *)
val load :
  ?batch_size:int ->
  ?threads:int ->
  ?engine:Spnc_cpu.Jit.engine ->
  ?jit:Spnc_cpu.Jit.kernel ->
  ?profile:Spnc_cpu.Profile.t ->
  ?sched:Pool.sched ->
  ?min_chunk:int ->
  ?pool:Pool.t ->
  out_cols:int ->
  Spnc_cpu.Lir.modul ->
  t

val threads : t -> int
(** Effective worker count after auto-resolution and clamping. *)

val shutdown : t -> unit
(** Tear down the worker pool iff this [t] created it ([?pool] was not
    passed).  Safe to call on single-threaded or pool-sharing kernels
    (no-op). *)

val chunk_plan :
  rows:int -> threads:int -> batch_size:int -> min_chunk:int -> int
(** The adaptive chunk size used by [execute]: [batch_size] when
    single-threaded, otherwise
    [max min_chunk (min batch_size (ceil (rows / (threads * 4))))]
    (clamped to at least 1) — ~4 chunks per worker so work stealing has
    slack, floored at the SIMD width so lane loops stay full.  Pure;
    exposed for tests. *)

val auto_threads : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1..64] — the
    meaning of [threads <= 0]. *)

type chunk_error = {
  chunk_lo : int;  (** first sample index of the failing chunk *)
  chunk_hi : int;  (** one past the last sample index *)
  message : string;  (** text of the captured exception *)
  backtrace : string;  (** backtrace captured inside the worker *)
  transient : bool;
      (** the failure was a {!Spnc_resilience.Fault.Transient} — a retry
          may succeed; [execute ~retries] retries exactly these *)
}

(** The single failure surfaced when a kernel fails inside a chunk. *)
exception Chunk_error of chunk_error

type deadline_info = {
  deadline : float;  (** the absolute deadline, epoch seconds *)
  now : float;  (** when the overrun was detected *)
}

(** Structured timeout: the call's wall-clock budget expired.  In-flight
    parallel rounds observe the deadline through the pool's stop poll
    (cancellation latency is one chunk); partial outputs are discarded. *)
exception Deadline_exceeded of deadline_info

val backoff_seconds : int -> float
(** Backoff before retry [attempt] (1-based): capped exponential,
    [min 50ms (1ms * 2^(attempt-1))].  Pure; exposed for tests. *)

(** [execute ?deadline ?retries t ~flat ~rows ~num_features] evaluates
    all samples (row-major flat input); one result per sample.  Calls on
    one [t] are serialized (per-worker contexts are reused across calls).

    [deadline] is an {e absolute} wall-clock instant (epoch seconds, as
    from [Unix.gettimeofday]); when it expires the round is cancelled
    and {!Deadline_exceeded} raised — the successful-call margin to the
    deadline is recorded in the [runtime.exec.deadline_margin_seconds]
    histogram.  [retries] (default 0) re-runs the round under capped
    exponential backoff ({!backoff_seconds}) when the captured failure
    is {e transient}; retries never extend past the deadline.
    @raise Invalid_argument on malformed dimensions or a size mismatch.
    @raise Chunk_error when the kernel fails inside a chunk; the round is
    drained first.
    @raise Deadline_exceeded when the budget expires. *)
val execute :
  ?deadline:float ->
  ?retries:int ->
  t ->
  flat:float array ->
  rows:int ->
  num_features:int ->
  float array

(** [execute_rows t rows] — convenience over row-major samples.
    @raise Invalid_argument when the rows are ragged (unequal widths). *)
val execute_rows :
  ?deadline:float -> ?retries:int -> t -> float array array -> float array

(** One caller's slice of a coalesced batch: [seg_rows] row-major samples
    in [seg_flat]; results are written into
    [seg_out.(seg_out_pos .. seg_out_pos + seg_rows - 1)]. *)
type segment = {
  seg_flat : float array;
  seg_rows : int;
  seg_out : float array;  (** caller-owned output buffer *)
  seg_out_pos : int;  (** write offset within [seg_out] *)
}

(** [execute_segments t ~num_features segs] — the batch-of-segments entry
    point behind the {!Spnc_serve} dynamic batcher: evaluates every
    segment's rows in one runtime call (one chunk plan, one parallel
    round over the shared pool) while each segment's results are written
    {e directly} into that segment's own output window — the scatter back
    to callers is the kernel write itself, zero-copy, no gather-then-blit.
    Chunks never straddle a segment boundary.  Per-row results are
    bit-identical to [execute]-ing each segment separately (rows are
    independent), which the serve tests and bench assert.

    Deadline/retry semantics are those of {!execute}, applied to the
    whole batch; {!chunk_error} bounds are global row indices across the
    batch (segment order, in array order).  Zero-row segments are
    skipped; segments may alias one output array as long as their
    windows are disjoint.
    @raise Invalid_argument on a dimension mismatch in any segment or an
    output window exceeding its buffer. *)
val execute_segments :
  ?deadline:float ->
  ?retries:int ->
  t ->
  num_features:int ->
  segment array ->
  unit
