(** Runtime component (paper §IV-B): loads a compiled kernel and executes
    it over input data, multi-threaded.

    The generated kernel is single-threaded; the runtime splits the input
    into chunks of the user-provided batch size and processes them on a
    pool of OCaml 5 domains.  The batch size is an optimization hint:
    any row count works.

    Chunks are zero-copy: kernels receive {!Spnc_cpu.Vm.view}s into the
    shared flat input (and, for single-slot kernels, into the shared
    output), and each worker reuses one set of register frames and
    scratch across all its chunks (docs/PERFORMANCE.md).

    Fault tolerance: a kernel trap inside one chunk cancels the remaining
    chunks, every domain is joined, and exactly one {!Chunk_error}
    surfaces (docs/RESILIENCE.md). *)

type t

(** [load ?batch_size ?threads ?engine ?jit ~out_cols kernel] prepares a
    kernel whose output buffer has [out_cols] slots per sample (slot 0 is
    the query result).  [engine] picks the execution engine (default
    {!Spnc_cpu.Jit.Jit}, the closure compiler); pass [?jit] to reuse an
    already-compiled {!Spnc_cpu.Jit.kernel} (e.g. from the compiler's
    kernel cache) instead of recompiling here.
    @raise Invalid_argument on non-positive [batch_size] or [threads]. *)
val load :
  ?batch_size:int ->
  ?threads:int ->
  ?engine:Spnc_cpu.Jit.engine ->
  ?jit:Spnc_cpu.Jit.kernel ->
  out_cols:int ->
  Spnc_cpu.Lir.modul ->
  t

type chunk_error = {
  chunk_lo : int;  (** first sample index of the failing chunk *)
  chunk_hi : int;  (** one past the last sample index *)
  message : string;  (** text of the captured exception *)
  backtrace : string;  (** backtrace captured inside the worker *)
}

(** The single failure surfaced when a kernel fails inside a chunk. *)
exception Chunk_error of chunk_error

(** [execute t ~flat ~rows ~num_features] evaluates all samples (row-major
    flat input); one result per sample.
    @raise Invalid_argument on malformed dimensions or a size mismatch.
    @raise Chunk_error when the kernel fails inside a chunk; all worker
    domains are joined first. *)
val execute : t -> flat:float array -> rows:int -> num_features:int -> float array

(** [execute_rows t rows] — convenience over row-major samples.
    @raise Invalid_argument when the rows are ragged (unequal widths). *)
val execute_rows : t -> float array array -> float array
