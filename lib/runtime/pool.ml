(** Persistent worker pool with a work-stealing deque scheduler
    (docs/PERFORMANCE.md §5).

    The pre-streaming runtime re-spawned its worker domains on every
    [Exec.execute] call; at serving rates ("heavy traffic from millions
    of users", ROADMAP.md) the spawn/join cost dominates short batches.
    A pool is created {e once} — per compiled kernel, or shared
    per-process via {!global} — and its domains park on a condition
    variable between execution rounds.

    Scheduling: every round distributes its task indices into contiguous
    blocks, one per participating worker, each block in the worker's own
    deque.  Under {!Static} a worker only drains its own deque (the
    classic static partition).  Under {!Stealing} a worker that runs dry
    sweeps the other deques and steals from their top — the owner pops
    from the bottom, so thief and owner only collide on the last item,
    and a pathologically expensive chunk no longer stalls the whole
    batch behind one domain.

    Round protocol: the caller takes [run_lock] (rounds are serialized —
    the pool may be shared by several kernels and several calling
    domains), installs the job, fills the deques, bumps the round
    counter under [lock] and broadcasts.  It then participates as
    worker 0 and finally blocks until the completion count reaches the
    task count — a worker that is still {e executing} a task when every
    deque is empty is waited for, never abandoned.  Tasks are integers;
    all task state lives in the caller's closure.

    Straggler isolation: deques are stamped with the round they were
    filled for and task claims check the stamp, so a worker that was
    signalled for round R but descheduled until after R completed (and
    R+1 was installed) claims nothing from R+1's deques under its stale
    worker id — it re-reads the round under the lock and joins R+1
    properly (or sits it out if R+1 uses fewer workers).  Without the
    stamp such a straggler could steal an R+1 task whose job closure
    rejects the stale worker id, and the swallowed raise would count
    the task complete without computing it.

    The job callback must not raise: {!Exec} runs every chunk under its
    own exception barrier and records failures on the side.  A raise
    that slips through is swallowed (the task still counts as complete)
    so a buggy kernel can never wedge or kill a pool domain. *)

module Fault = Spnc_resilience.Fault

type sched = Static | Stealing

let sched_to_string = function Static -> "static" | Stealing -> "stealing"

let sched_of_string = function
  | "static" -> Some Static
  | "stealing" -> Some Stealing
  | _ -> None

(* A per-worker deque over task indices.  The buffer is (re)filled by the
   caller before each round; [top] is the steal end, [bot] the owner end.
   A plain mutex per deque: contention is at chunk granularity (hundreds
   of microseconds of kernel work per item), so a lock-free Chase-Lev
   structure would buy nothing here. *)
type deque = {
  dq_lock : Mutex.t;
  mutable dq_round : int;  (** round this buffer was filled for *)
  mutable buf : int array;
  mutable top : int;  (** next index a thief would take *)
  mutable bot : int;  (** one past the last index the owner would take *)
}

type t = {
  size : int;  (** worker slots, including the calling domain (slot 0) *)
  lock : Mutex.t;  (** guards [round], [closing] and both conditions *)
  work_ready : Condition.t;
  round_done : Condition.t;
  run_lock : Mutex.t;  (** serializes rounds across calling domains *)
  mutable round : int;
  mutable closing : bool;
  mutable workers_in_round : int;
  mutable stealing : bool;
  mutable job : worker:int -> int -> unit;
  mutable stop : unit -> bool;
  deques : deque array;
  remaining : int Atomic.t;  (** tasks of the current round not yet done *)
  steals : int Atomic.t;
  mutable domains : unit Domain.t list;
}

(* Process-wide observability: how many domains pool creation has ever
   spawned.  The pool-reuse tests assert this does not move between
   executes.  The local atomics stay authoritative (they are per-process
   / per-pool and resettable independently of the metrics registry); the
   Obs counters mirror them so `--metrics` snapshots carry the same
   numbers. *)
let spawn_counter = Atomic.make 0
let total_domains_spawned () = Atomic.get spawn_counter
let obs_spawns = Spnc_obs.Metrics.counter "runtime.pool.spawns"
let obs_steals = Spnc_obs.Metrics.counter "runtime.pool.steals"
let obs_rounds = Spnc_obs.Metrics.counter "runtime.pool.rounds"

(* Per-worker-slot busy time (seconds inside [do_round]), memoized so the
   per-round cost is one array read, not a registry lookup.  A racing
   first-fill writes the same interned gauge twice — benign. *)
let max_busy_slots = 257

let busy_gauges : Spnc_obs.Metrics.gauge option array =
  Array.make max_busy_slots None

let busy_gauge w =
  let i = min w (max_busy_slots - 1) in
  match busy_gauges.(i) with
  | Some g -> g
  | None ->
      let g =
        Spnc_obs.Metrics.gauge
          (Printf.sprintf "runtime.pool.worker%d.busy_seconds" i)
      in
      busy_gauges.(i) <- Some g;
      g

let size t = t.size
let steal_count t = Atomic.get t.steals

(* Task claims are round-guarded: a worker that was signalled for round
   [r] but got descheduled before claiming anything can resume after its
   round already completed and a NEWER round (possibly with a different
   job, task set and worker count) has been installed in the same
   deques.  Without the [dq_round] check such a straggler would claim
   the new round's tasks under its stale worker id — and since the job
   callback's raises are deliberately swallowed by {!exec_task}, an
   out-of-range worker id silently counts a task as complete without
   running it.  With the check the straggler's claims all return [None]
   and it falls back to [worker_main]'s loop, which re-reads the round
   under the lock before re-entering. *)
let take_own (d : deque) ~round : int option =
  Mutex.lock d.dq_lock;
  let r =
    if d.dq_round = round && d.bot > d.top then begin
      d.bot <- d.bot - 1;
      Some d.buf.(d.bot)
    end
    else None
  in
  Mutex.unlock d.dq_lock;
  r

let steal_top (d : deque) ~round : int option =
  Mutex.lock d.dq_lock;
  let r =
    if d.dq_round = round && d.top < d.bot then begin
      let i = d.buf.(d.top) in
      d.top <- d.top + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.dq_lock;
  r

(* Execute one claimed task: skip the body if the round was cancelled,
   then count it as complete either way.  The completion count — not
   deque emptiness — is what the caller blocks on, so an in-flight task
   is always waited for. *)
let exec_task t w i =
  (try if not (t.stop ()) then t.job ~worker:w i with _ -> ());
  if Atomic.fetch_and_add t.remaining (-1) = 1 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.round_done;
    Mutex.unlock t.lock
  end

(* Drain work for one round: own deque first, then (stealing only) a
   sweep over the other participants.  Deques are never refilled during
   a round, so a sweep that finds everything empty is a sound exit. *)
let do_round t w ~round =
  (* chaos: a stall here models a worker descheduled between being
     signalled for a round and actually claiming work — the straggler
     scenario the round-stamped deques exist for *)
  Fault.maybe_stall "pool.round_stall" ~seconds:0.002;
  let t_start = Unix.gettimeofday () in
  let n = t.workers_in_round in
  let own = t.deques.(w) in
  let continue_ = ref true in
  while !continue_ do
    match take_own own ~round with
    | Some i -> exec_task t w i
    | None ->
        if not t.stealing then continue_ := false
        else begin
          let found = ref false in
          let v = ref ((w + 1) mod n) in
          let tries = ref 0 in
          while (not !found) && !tries < n - 1 do
            (if !v <> w then
               match steal_top t.deques.(!v) ~round with
               | Some i ->
                   found := true;
                   Atomic.incr t.steals;
                   Spnc_obs.Metrics.counter_incr obs_steals;
                   exec_task t w i
               | None -> ());
            v := (!v + 1) mod n;
            incr tries
          done;
          if not !found then continue_ := false
        end
  done;
  (* busy = time from round entry to running dry; at chunk granularity the
     mutex waits inside are negligible, so this is effectively kernel time *)
  Spnc_obs.Metrics.gauge_add (busy_gauge w) (Unix.gettimeofday () -. t_start)

let worker_main t w =
  let seen = ref 0 in
  let alive = ref true in
  while !alive do
    Mutex.lock t.lock;
    while (not t.closing) && t.round = !seen do
      Condition.wait t.work_ready t.lock
    done;
    if t.closing then begin
      alive := false;
      Mutex.unlock t.lock
    end
    else begin
      seen := t.round;
      Mutex.unlock t.lock;
      if w < t.workers_in_round then do_round t w ~round:!seen
    end
  done

let create ~size =
  if size <= 0 then invalid_arg "Pool.create: size must be positive";
  let t =
    {
      size;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      round_done = Condition.create ();
      run_lock = Mutex.create ();
      round = 0;
      closing = false;
      workers_in_round = 0;
      stealing = false;
      job = (fun ~worker:_ _ -> ());
      stop = (fun () -> false);
      deques =
        Array.init size (fun _ ->
            {
              dq_lock = Mutex.create ();
              dq_round = 0;
              buf = [||];
              top = 0;
              bot = 0;
            });
      remaining = Atomic.make 0;
      steals = Atomic.make 0;
      domains = [];
    }
  in
  t.domains <-
    List.init (size - 1) (fun k ->
        Atomic.incr spawn_counter;
        Spnc_obs.Metrics.counter_incr obs_spawns;
        Domain.spawn (fun () -> worker_main t (k + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.closing <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let run t ?(sched = Stealing) ?workers ?(stop = fun () -> false) ~num_tasks
    (f : worker:int -> int -> unit) : unit =
  if num_tasks < 0 then invalid_arg "Pool.run: negative num_tasks";
  if num_tasks = 0 then ()
  else begin
    Mutex.lock t.run_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.run_lock)
      (fun () ->
        if t.closing then invalid_arg "Pool.run: pool is shut down";
        let n =
          match workers with
          | None -> t.size
          | Some w -> max 1 (min w t.size)
        in
        t.job <- f;
        t.stop <- stop;
        t.stealing <- sched = Stealing;
        t.workers_in_round <- n;
        Atomic.set t.remaining num_tasks;
        (* only [run] (serialized by [run_lock]) ever writes [t.round],
           so reading it outside [t.lock] here is race-free *)
        let round = t.round + 1 in
        (* contiguous block distribution: worker w owns tasks
           [w*num_tasks/n, (w+1)*num_tasks/n) in its own deque; under
           Stealing the blocks are merely the initial assignment *)
        for w = 0 to t.size - 1 do
          let d = t.deques.(w) in
          Mutex.lock d.dq_lock;
          d.dq_round <- round;
          if w < n then begin
            let lo = w * num_tasks / n and hi = (w + 1) * num_tasks / n in
            let len = hi - lo in
            if Array.length d.buf < len then d.buf <- Array.make len 0;
            for i = 0 to len - 1 do
              d.buf.(i) <- lo + i
            done;
            d.top <- 0;
            d.bot <- len
          end
          else begin
            d.top <- 0;
            d.bot <- 0
          end;
          Mutex.unlock d.dq_lock
        done;
        Spnc_obs.Metrics.counter_incr obs_rounds;
        Mutex.lock t.lock;
        t.round <- round;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.lock;
        (* the calling domain is worker 0 *)
        do_round t 0 ~round;
        Mutex.lock t.lock;
        while Atomic.get t.remaining > 0 do
          Condition.wait t.round_done t.lock
        done;
        Mutex.unlock t.lock)
  end

(* -- Shared per-process pool --------------------------------------------------- *)

let global_lock = Mutex.create ()
let global_pool : t option ref = ref None

let global ~threads =
  let threads = max 1 threads in
  Mutex.lock global_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock global_lock)
    (fun () ->
      match !global_pool with
      | Some p when p.size >= threads && not p.closing -> p
      | prev ->
          Option.iter shutdown prev;
          let p = create ~size:threads in
          global_pool := Some p;
          p)
