(** The LoSPN dialect (paper §III-B, Table II).

    LoSPN represents the actual computation of a query:

    - a [lo_spn.kernel] is the query entry point (function-like, one
      region; its entry-block arguments are the kernel parameters);
    - a [lo_spn.task] applies its region to every sample of a batch; the
      entry block has a leading [index] argument (the batch index) followed
      by one argument per task input;
    - a [lo_spn.body] holds the per-sample arithmetic (sum/product leaves
      decomposed to binary [lo_spn.add]/[lo_spn.mul]);
    - [lo_spn.batch_extract]/[lo_spn.batch_read] access one feature of one
      sample from a tensor/memref; [lo_spn.batch_collect]/
      [lo_spn.batch_write] store per-sample results;
    - computation happens in a concrete type CT — float, or the log-space
      type [!lo_spn.log<f32>] that instructs later lowerings to emit
      log-space arithmetic (§III-B).

    Before bufferization, batches are [tensor]s and tasks return tensors;
    after bufferization they are [memref]s passed as output arguments. *)

open Spnc_mlir

let dialect = "lo_spn"

let kernel_name = "lo_spn.kernel"
let task_name = "lo_spn.task"
let body_name = "lo_spn.body"
let batch_extract_name = "lo_spn.batch_extract"
let batch_read_name = "lo_spn.batch_read"
let batch_collect_name = "lo_spn.batch_collect"
let batch_write_name = "lo_spn.batch_write"
let mul_name = "lo_spn.mul"
let add_name = "lo_spn.add"
let gaussian_name = "lo_spn.gaussian"
let categorical_name = "lo_spn.categorical"
let histogram_name = "lo_spn.histogram"
let constant_name = "lo_spn.constant"
let yield_name = "lo_spn.yield"
let return_name = "lo_spn.return"
let alloc_name = "lo_spn.alloc"
let dealloc_name = "lo_spn.dealloc"
let copy_name = "lo_spn.copy"

(* -- Builders -------------------------------------------------------------- *)

let kernel b ~sym_name ~result_tys ~body_block =
  Builder.op b kernel_name
    ~attrs:
      [
        ("sym_name", Attr.String sym_name);
        ( "function_type",
          Attr.Type
            (Types.Func
               ( List.map (fun (v : Ir.value) -> v.Ir.vty) body_block.Ir.bargs,
                 result_tys )) );
      ]
    ~regions:[ Builder.region1 body_block ]
    ()

let task b ~inputs ~batch_size ~result_tys ~body_block =
  Builder.op b task_name ~operands:inputs ~results:result_tys
    ~attrs:[ ("batchSize", Attr.Int batch_size) ]
    ~regions:[ Builder.region1 body_block ]
    ()

let body b ~inputs ~result_tys ~body_block =
  Builder.op b body_name ~operands:inputs ~results:result_tys
    ~regions:[ Builder.region1 body_block ]
    ()

let batch_extract b ~tensor ~dynamic_index ~static_index ~transposed ~result_ty
    =
  Builder.op b batch_extract_name ~operands:[ tensor; dynamic_index ]
    ~results:[ result_ty ]
    ~attrs:
      [
        ("staticIndex", Attr.Int static_index);
        ("transposed", Attr.Bool transposed);
      ]
    ()

let batch_read b ~memref ~dynamic_index ~static_index ~transposed ~result_ty =
  Builder.op b batch_read_name ~operands:[ memref; dynamic_index ]
    ~results:[ result_ty ]
    ~attrs:
      [
        ("staticIndex", Attr.Int static_index);
        ("transposed", Attr.Bool transposed);
      ]
    ()

let batch_collect b ~batch_index ~values ~transposed ~result_ty =
  Builder.op b batch_collect_name
    ~operands:(batch_index :: values)
    ~results:[ result_ty ]
    ~attrs:[ ("transposed", Attr.Bool transposed) ]
    ()

let batch_write b ~memref ~batch_index ~values ~transposed =
  Builder.op b batch_write_name
    ~operands:(memref :: batch_index :: values)
    ~attrs:[ ("transposed", Attr.Bool transposed) ]
    ()

let mul b ?loc ~lhs ~rhs ~ty () =
  Builder.op b mul_name ~operands:[ lhs; rhs ] ~results:[ ty ] ?loc ()

let add b ?loc ~lhs ~rhs ~ty () =
  Builder.op b add_name ~operands:[ lhs; rhs ] ~results:[ ty ] ?loc ()

let constant b ?loc ~value ~ty () =
  Builder.op b constant_name ~results:[ ty ]
    ~attrs:[ ("value", Attr.Float value) ]
    ?loc ()

let gaussian b ?loc ~evidence ~mean ~stddev ~support_marginal ~ty () =
  Builder.op b gaussian_name ~operands:[ evidence ] ~results:[ ty ]
    ~attrs:
      [
        ("mean", Attr.Float mean);
        ("stddev", Attr.Float stddev);
        ("supportMarginal", Attr.Bool support_marginal);
      ]
    ?loc ()

let categorical b ?loc ~index ~probabilities ~support_marginal ~ty () =
  Builder.op b categorical_name ~operands:[ index ] ~results:[ ty ]
    ~attrs:
      [
        ("probabilities", Attr.DenseF probabilities);
        ("supportMarginal", Attr.Bool support_marginal);
      ]
    ?loc ()

let histogram b ?loc ~index ~breaks ~densities ~support_marginal ~ty () =
  Builder.op b histogram_name ~operands:[ index ] ~results:[ ty ]
    ~attrs:
      [
        ( "buckets",
          Attr.Array (Array.to_list (Array.map (fun i -> Attr.Int i) breaks)) );
        ("bucketCount", Attr.Int (Array.length densities));
        ("densities", Attr.DenseF densities);
        ("supportMarginal", Attr.Bool support_marginal);
      ]
    ?loc ()

let yield b ~values = Builder.op b yield_name ~operands:values ()
let return_ b ~values = Builder.op b return_name ~operands:values ()

let alloc b ~ty = Builder.op b alloc_name ~results:[ ty ] ()
let dealloc b ~memref = Builder.op b dealloc_name ~operands:[ memref ] ()
let copy b ~src ~dst = Builder.op b copy_name ~operands:[ src; dst ] ()

(* -- Helpers --------------------------------------------------------------- *)

(** [is_leaf_op op] — one of the three univariate distribution ops. *)
let is_leaf_op (op : Ir.op) =
  op.Ir.name = gaussian_name
  || op.Ir.name = categorical_name
  || op.Ir.name = histogram_name

(** [is_arith_op op] — ops that may appear inside a body. *)
let is_arith_op (op : Ir.op) =
  is_leaf_op op
  || op.Ir.name = mul_name
  || op.Ir.name = add_name
  || op.Ir.name = constant_name

(* -- Verifiers ------------------------------------------------------------- *)

open Dialect

let computation_type (v : Ir.value) = Types.is_computation v.Ir.vty

let verify_binary (op : Ir.op) =
  let* () = expect_operands op 2 in
  let* () = expect_results op 1 in
  let l = Ir.operand_n op 0 and r = Ir.operand_n op 1 in
  let* () =
    checkf
      (Types.equal l.Ir.vty r.Ir.vty)
      "operand types differ: %s vs %s" (Types.to_string l.Ir.vty)
      (Types.to_string r.Ir.vty)
  in
  check (computation_type l) "operands must have computation type"

let verify_leaf (op : Ir.op) =
  let* () = expect_operands op 1 in
  expect_results op 1

let verify_constant (op : Ir.op) =
  let* () = expect_operands op 0 in
  let* () = expect_results op 1 in
  let* _ = expect_attr op "value" in
  Ok ()

let verify_kernel (op : Ir.op) =
  let* () = expect_regions op 1 in
  let* _ = expect_attr op "sym_name" in
  let* _ = expect_attr op "function_type" in
  Ok ()

let verify_task (op : Ir.op) =
  let* () = expect_regions op 1 in
  let* _ = expect_int_attr op "batchSize" in
  match Ir.entry_block op with
  | Some blk ->
      let* () =
        checkf
          (List.length blk.Ir.bargs = List.length op.Ir.operands + 1)
          "task block must have batch-index arg plus one arg per input"
      in
      (match blk.Ir.bargs with
      | idx :: _ ->
          checkf (Types.equal idx.Ir.vty Types.Index)
            "first task block arg must be the index-typed batch index"
      | [] -> Error "task block has no arguments")
  | None -> Error "task must have an entry block"

let verify_body (op : Ir.op) =
  let* () = expect_regions op 1 in
  match Ir.entry_block op with
  | Some blk ->
      let* () =
        checkf
          (List.length blk.Ir.bargs = List.length op.Ir.operands)
          "body block arguments must match operands"
      in
      let yields =
        List.filter (fun (o : Ir.op) -> o.Ir.name = yield_name) blk.Ir.bops
      in
      let* () = checkf (List.length yields = 1) "body must contain exactly one yield" in
      let y = List.hd yields in
      checkf
        (List.length y.Ir.operands = List.length op.Ir.results)
        "yield arity must match body results"
  | None -> Error "body must have an entry block"

let verify_batch_access (op : Ir.op) =
  let* () = expect_min_operands op 2 in
  let container = Ir.operand_n op 0 in
  let* _ = expect_int_attr op "staticIndex" in
  check (Types.is_shaped container.Ir.vty)
    "first operand must be a tensor or memref"

let verify_batch_collect (op : Ir.op) =
  let* () = expect_min_operands op 2 in
  expect_results op 1

let verify_batch_write (op : Ir.op) =
  let* () = expect_min_operands op 3 in
  let* () = expect_results op 0 in
  let m = Ir.operand_n op 0 in
  check
    (match m.Ir.vty with Types.MemRef _ -> true | _ -> false)
    "first operand of batch_write must be a memref"

let verify_yield (op : Ir.op) = expect_results op 0
let verify_return (op : Ir.op) = expect_results op 0

let verify_alloc (op : Ir.op) =
  let* () = expect_results op 1 in
  check
    (match (Ir.result op).Ir.vty with Types.MemRef _ -> true | _ -> false)
    "alloc result must be a memref"

let verify_dealloc (op : Ir.op) = expect_operands op 1
let verify_copy (op : Ir.op) = expect_operands op 2

(* -- Constant folding ------------------------------------------------------ *)

(* Fold mul/add of two known constants.  In log space, [lo_spn.mul] is an
   addition of log-values and [lo_spn.add] is log-sum-exp; the folder must
   respect that semantics (paper §III-B). *)
let fold_binary (op : Ir.op) (consts : (int, Attr.t) Hashtbl.t) =
  let get (v : Ir.value) =
    Option.bind (Hashtbl.find_opt consts v.Ir.vid) Attr.as_float
  in
  match (op.Ir.operands, op.Ir.results) with
  | [ l; r ], [ res ] -> (
      match (get l, get r) with
      | Some a, Some b ->
          let is_log = match res.Ir.vty with Types.Log _ -> true | _ -> false in
          let value =
            if op.Ir.name = mul_name then if is_log then a +. b else a *. b
            else if is_log then
              (* log-sum-exp *)
              if a = Float.neg_infinity then b
              else if b = Float.neg_infinity then a
              else
                let m = Float.max a b in
                m +. log (exp (a -. m) +. exp (b -. m))
            else a +. b
          in
          Some (Attr.Float value)
      | _ -> None)
  | _ -> None

(** [register ()] installs the dialect; idempotent. *)
let register () =
  register_simple ~pure:true ~fold:fold_binary mul_name verify_binary;
  register_simple ~pure:true ~fold:fold_binary add_name verify_binary;
  register_simple ~pure:true gaussian_name verify_leaf;
  register_simple ~pure:true categorical_name verify_leaf;
  register_simple ~pure:true histogram_name verify_leaf;
  register_simple ~pure:true constant_name verify_constant;
  register_simple kernel_name verify_kernel;
  register_simple task_name verify_task;
  register_simple ~pure:true body_name verify_body;
  register_simple ~pure:true batch_extract_name verify_batch_access;
  register_simple batch_read_name verify_batch_access;
  register_simple ~pure:true batch_collect_name verify_batch_collect;
  register_simple batch_write_name verify_batch_write;
  register_simple yield_name verify_yield;
  register_simple return_name verify_return;
  register_simple alloc_name verify_alloc;
  register_simple dealloc_name verify_dealloc;
  register_simple copy_name verify_copy

let () = register ()
