(** LoSPN task partitioning (paper §IV-A4).

    Splits a large [lo_spn.task] into several smaller, topologically
    ordered tasks using the heuristic acyclic partitioner
    ({!Spnc_partition.Partitioner}).  Cross-partition SSA values become
    slots in the producing task's result tensor: the producer stores them
    once via [batch_collect]; every consuming task loads them once via
    [batch_extract] — this store-once/load-once behaviour is exactly the
    partitioner's cost model.

    [lo_spn.constant]s are not partitioned: they are rematerialized in
    every partition that uses them (cheaper than a buffer round-trip). *)

open Spnc_mlir
module P = Spnc_partition.Partitioner
module Dag = Spnc_partition.Dag

type options = { max_partition_size : int; slack : float; refinement_passes : int }

let default_options =
  { max_partition_size = 10_000; slack = 0.01; refinement_passes = 4 }

(* Description of one original task, destructured. *)
type task_parts = {
  batch_size : int;
  input_tensor : Ir.value;  (** kernel-level input tensor *)
  input_type : Types.t;
  ct : Types.t;  (** computation type of the body *)
  feature_of_body_arg : (int, int) Hashtbl.t;  (** body arg vid -> feature *)
  body_ops : Ir.op list;
  root_value : Ir.value;
}

let destructure_task (task : Ir.op) : task_parts =
  let batch_size = Option.get (Ir.int_attr task "batchSize") in
  let input_tensor = Ir.operand_n task 0 in
  let task_block = Option.get (Ir.entry_block task) in
  let extracts =
    List.filter (fun (o : Ir.op) -> o.Ir.name = Ops.batch_extract_name)
      task_block.Ir.bops
  in
  let body_op =
    match
      List.find_opt (fun (o : Ir.op) -> o.Ir.name = Ops.body_name) task_block.Ir.bops
    with
    | Some o -> o
    | None -> invalid_arg "partition_pass: task has no lo_spn.body"
  in
  let body_block = Option.get (Ir.entry_block body_op) in
  (* map body block args to feature indices via the extracts feeding the
     body operands *)
  let feature_of_extract = Hashtbl.create 32 in
  List.iter
    (fun (e : Ir.op) ->
      Hashtbl.replace feature_of_extract (Ir.result e).Ir.vid
        (Option.get (Ir.int_attr e "staticIndex")))
    extracts;
  let feature_of_body_arg = Hashtbl.create 32 in
  List.iteri
    (fun i (operand : Ir.value) ->
      match Hashtbl.find_opt feature_of_extract operand.Ir.vid with
      | Some f ->
          let arg = List.nth body_block.Ir.bargs i in
          Hashtbl.replace feature_of_body_arg arg.Ir.vid f
      | None -> ())
    body_op.Ir.operands;
  let yield =
    match
      List.find_opt (fun (o : Ir.op) -> o.Ir.name = Ops.yield_name) body_block.Ir.bops
    with
    | Some y -> y
    | None -> invalid_arg "partition_pass: body has no yield"
  in
  let input_type =
    match input_tensor.Ir.vty with
    | Types.Tensor (_, t) -> t
    | _ -> Types.F32
  in
  let ct =
    match (Ir.operand_n yield 0).Ir.vty with t -> t
  in
  {
    batch_size;
    input_tensor;
    input_type;
    ct;
    feature_of_body_arg;
    body_ops =
      List.filter (fun (o : Ir.op) -> o.Ir.name <> Ops.yield_name) body_block.Ir.bops;
    root_value = Ir.operand_n yield 0;
  }

(* Where an externally produced value consumed inside a partition comes
   from ([None] from classify = locally produced or a constant). *)
type source =
  | Feature of int  (** a feature of the input batch *)
  | Remote of int * int  (** producing partition, slot in its result tensor *)

(** [run ?options m] partitions every oversized task of every kernel. *)
let run ?(options = default_options) (m : Ir.modul) : Ir.modul =
  let b = Builder.seed_from m in
  let rewrite_kernel (kernel : Ir.op) : Ir.op =
    let kernel_block = Option.get (Ir.entry_block kernel) in
    let task =
      match
        List.find_opt (fun (o : Ir.op) -> o.Ir.name = Ops.task_name)
          kernel_block.Ir.bops
      with
      | Some t -> t
      | None -> invalid_arg "partition_pass: kernel has no task"
    in
    let tp = destructure_task task in
    (* DAG over non-constant body ops *)
    let countable =
      List.filter (fun (o : Ir.op) -> o.Ir.name <> Ops.constant_name) tp.body_ops
    in
    let n = List.length countable in
    if n <= options.max_partition_size then kernel
    else begin
      let node_ops = Array.of_list countable in
      let index_of_result = Hashtbl.create n in
      Array.iteri
        (fun i (o : Ir.op) ->
          List.iter
            (fun (r : Ir.value) -> Hashtbl.replace index_of_result r.Ir.vid i)
            o.Ir.results)
        node_ops;
      (* constants: producer op by result vid, for rematerialization *)
      let constant_of = Hashtbl.create 16 in
      List.iter
        (fun (o : Ir.op) ->
          if o.Ir.name = Ops.constant_name then
            Hashtbl.replace constant_of (Ir.result o).Ir.vid o)
        tp.body_ops;
      let edges = ref [] in
      Array.iteri
        (fun i (o : Ir.op) ->
          List.iter
            (fun (v : Ir.value) ->
              match Hashtbl.find_opt index_of_result v.Ir.vid with
              | Some src when src <> i -> edges := (src, i) :: !edges
              | _ -> ())
            o.Ir.operands)
        node_ops;
      let dag = Dag.create ~num_nodes:n ~edges:!edges in
      let part =
        P.run
          ~config:
            {
              P.default_config with
              P.max_partition_size = options.max_partition_size;
              slack = options.slack;
              refinement_passes = options.refinement_passes;
            }
          dag
      in
      let groups = P.groups part in
      let num_parts = part.P.num_partitions in
      (* escaping values per partition: used by a later partition, or the
         root value *)
      let escapes = Array.make num_parts [] in
      let escape_slot : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
      let add_escape pj (v : Ir.value) =
        if not (Hashtbl.mem escape_slot v.Ir.vid) then begin
          let slot = List.length escapes.(pj) in
          escapes.(pj) <- escapes.(pj) @ [ v ];
          Hashtbl.replace escape_slot v.Ir.vid (pj, slot)
        end
      in
      (* the root escapes first, so the final result sits at slot 0 *)
      (match Hashtbl.find_opt index_of_result tp.root_value.Ir.vid with
      | Some root_node -> add_escape part.P.assignment.(root_node) tp.root_value
      | None -> invalid_arg "partition_pass: root value not produced by a body op");
      Array.iteri
        (fun i (o : Ir.op) ->
          let home = part.P.assignment.(i) in
          List.iter
            (fun (v : Ir.value) ->
              match Hashtbl.find_opt index_of_result v.Ir.vid with
              | Some src when part.P.assignment.(src) <> home ->
                  add_escape part.P.assignment.(src) v
              | _ -> ())
            o.Ir.operands)
        node_ops;
      (* build one new task per partition, in partition order *)
      let kernel_ops = ref [] in
      (* result tensor value of each already-built partition task *)
      let part_result : Ir.value option array = Array.make num_parts None in
      let root_partition =
        match Hashtbl.find_opt escape_slot tp.root_value.Ir.vid with
        | Some (pj, _) -> pj
        | None -> num_parts - 1
      in
      let new_input_tensor = ref tp.input_tensor in
      (* original program order, for stable intra-partition ordering *)
      let order_of = Hashtbl.create (List.length tp.body_ops) in
      List.iteri
        (fun pos (o : Ir.op) ->
          List.iter
            (fun (r : Ir.value) -> Hashtbl.replace order_of r.Ir.vid pos)
            o.Ir.results)
        tp.body_ops;
      for pj = 0 to num_parts - 1 do
        let nodes = groups.(pj) in
        if nodes <> [] then begin
          let part_ops = List.map (fun i -> node_ops.(i)) nodes in
          let part_ops =
            List.sort
              (fun (a : Ir.op) (b : Ir.op) ->
                compare
                  (Hashtbl.find_opt order_of (Ir.result a).Ir.vid)
                  (Hashtbl.find_opt order_of (Ir.result b).Ir.vid))
              part_ops
          in
          (* classify every external operand *)
          let classify (v : Ir.value) : source option =
            match Hashtbl.find_opt tp.feature_of_body_arg v.Ir.vid with
            | Some f -> Some (Feature f)
            | None -> (
                match Hashtbl.find_opt index_of_result v.Ir.vid with
                | Some src ->
                    if part.P.assignment.(src) = pj then None
                    else
                      let spj, slot = Hashtbl.find escape_slot v.Ir.vid in
                      Some (Remote (spj, slot))
                | None -> None (* constant; rematerialized below *))
          in
          let features = ref [] and remotes = ref [] in
          List.iter
            (fun (o : Ir.op) ->
              List.iter
                (fun v ->
                  match classify v with
                  | Some (Feature f) ->
                      if not (List.mem f !features) then features := f :: !features
                  | Some (Remote (spj, _)) ->
                      if not (List.mem spj !remotes) then remotes := spj :: !remotes
                  | _ -> ())
                o.Ir.operands)
            part_ops;
          let features = List.sort compare !features in
          let remotes = List.sort compare !remotes in
          let needs_input = features <> [] in
          let remote_tensors =
            List.map (fun spj -> (spj, Option.get part_result.(spj))) remotes
          in
          let task_inputs =
            (if needs_input then [ !new_input_tensor ] else [])
            @ List.map snd remote_tensors
          in
          let my_escapes = escapes.(pj) in
          let result_ty =
            Types.Tensor ([ None; Some (List.length my_escapes) ], tp.ct)
          in
          let task_block =
            Builder.block b
              ~arg_tys:
                (Types.Index
                 :: List.map (fun (v : Ir.value) -> v.Ir.vty) task_inputs)
              (fun args ->
                let batch_index = List.hd args in
                let tensors = List.tl args in
                let input_arg, remote_args =
                  if needs_input then (Some (List.hd tensors), List.tl tensors)
                  else (None, tensors)
                in
                let remote_arg_of =
                  List.map2 (fun (spj, _) arg -> (spj, arg)) remote_tensors
                    remote_args
                in
                (* extracts for features and remote values *)
                let pre_ops = ref [] in
                let feature_value = Hashtbl.create 8 in
                List.iter
                  (fun f ->
                    let ex =
                      Ops.batch_extract b ~tensor:(Option.get input_arg)
                        ~dynamic_index:batch_index ~static_index:f
                        ~transposed:false ~result_ty:tp.input_type
                    in
                    pre_ops := ex :: !pre_ops;
                    Hashtbl.replace feature_value f (Ir.result ex))
                  features;
                let remote_value = Hashtbl.create 8 in
                List.iter
                  (fun (o : Ir.op) ->
                    List.iter
                      (fun (v : Ir.value) ->
                        match classify v with
                        | Some (Remote (spj, slot))
                          when not (Hashtbl.mem remote_value v.Ir.vid) ->
                            let ex =
                              Ops.batch_extract b
                                ~tensor:(List.assoc spj remote_arg_of)
                                ~dynamic_index:batch_index ~static_index:slot
                                ~transposed:true ~result_ty:tp.ct
                            in
                            pre_ops := ex :: !pre_ops;
                            Hashtbl.replace remote_value v.Ir.vid (Ir.result ex)
                        | _ -> ())
                      o.Ir.operands)
                  part_ops;
                let pre_ops = List.rev !pre_ops in
                (* the body op: inputs are all extracted values, in order *)
                let body_inputs = List.map Ir.result pre_ops in
                let body_block =
                  Builder.block b
                    ~arg_tys:(List.map (fun (v : Ir.value) -> v.Ir.vty) body_inputs)
                    (fun body_args ->
                      (* env: original value id -> new body-local value;
                         seeded from the feature/remote extract tables —
                         body arg i corresponds to body_inputs.(i), the
                         result of pre_ops.(i) *)
                      let env = Hashtbl.create 64 in
                      List.iteri
                        (fun i (pre : Ir.op) ->
                          let barg = List.nth body_args i in
                          let orig_ids =
                            (* which original value ids does this extract
                               satisfy? *)
                            Hashtbl.fold
                              (fun vid v acc ->
                                if Ir.value_equal v (Ir.result pre) then vid :: acc
                                else acc)
                              remote_value []
                            @ Hashtbl.fold
                                (fun f v acc ->
                                  if Ir.value_equal v (Ir.result pre) then
                                    (* feature f: all body args of the
                                       original task with that feature *)
                                    Hashtbl.fold
                                      (fun vid f' acc ->
                                        if f' = f then vid :: acc else acc)
                                      tp.feature_of_body_arg acc
                                  else acc)
                                feature_value []
                          in
                          List.iter
                            (fun vid -> Hashtbl.replace env vid barg)
                            orig_ids)
                        pre_ops;
                      let new_ops = ref [] in
                      let subst (v : Ir.value) =
                        match Hashtbl.find_opt env v.Ir.vid with
                        | Some v' -> v'
                        | None -> (
                            (* constant: rematerialize *)
                            match Hashtbl.find_opt constant_of v.Ir.vid with
                            | Some cop ->
                                let c =
                                  Builder.op b Ops.constant_name
                                    ~results:
                                      (List.map (fun (r : Ir.value) -> r.Ir.vty)
                                         cop.Ir.results)
                                    ~attrs:cop.Ir.attrs ~loc:cop.Ir.loc ()
                                in
                                new_ops := c :: !new_ops;
                                Hashtbl.replace env v.Ir.vid (Ir.result c);
                                Ir.result c
                            | None -> v)
                      in
                      List.iter
                        (fun (o : Ir.op) ->
                          let operands = List.map subst o.Ir.operands in
                          let results =
                            List.map (fun (r : Ir.value) -> Builder.fresh b r.Ir.vty)
                              o.Ir.results
                          in
                          List.iter2
                            (fun (old_r : Ir.value) new_r ->
                              Hashtbl.replace env old_r.Ir.vid new_r)
                            o.Ir.results results;
                          new_ops :=
                            { o with Ir.operands; results } :: !new_ops)
                        part_ops;
                      let yield_values =
                        List.map
                          (fun (v : Ir.value) -> Hashtbl.find env v.Ir.vid)
                          my_escapes
                      in
                      List.rev
                        (Ops.yield b ~values:yield_values :: !new_ops))
                in
                let body_op =
                  Ops.body b ~inputs:body_inputs
                    ~result_tys:(List.map (fun _ -> tp.ct) my_escapes)
                    ~body_block
                in
                let collect =
                  Ops.batch_collect b ~batch_index
                    ~values:body_op.Ir.results ~transposed:true
                    ~result_ty:result_ty
                in
                pre_ops
                @ [ body_op; collect; Ops.yield b ~values:[ Ir.result collect ] ])
          in
          let new_task =
            Ops.task b ~inputs:task_inputs ~batch_size:tp.batch_size
              ~result_tys:[ result_ty ] ~body_block:task_block
          in
          part_result.(pj) <- Some (Ir.result new_task);
          kernel_ops := new_task :: !kernel_ops
        end
      done;
      let final_tensor = Option.get part_result.(root_partition) in
      let kernel_ops = List.rev (Ops.return_ b ~values:[ final_tensor ] :: !kernel_ops) in
      (* fresh kernel block argument for the input tensor *)
      let new_kernel_block =
        {
          Ir.bargs = kernel_block.Ir.bargs;
          bops = kernel_ops;
        }
      in
      (* the tasks reference !new_input_tensor, which is the original kernel
         block arg — unchanged, so reuse the block args directly *)
      Ops.kernel b
        ~sym_name:
          (Option.value ~default:"spn_kernel" (Ir.string_attr kernel "sym_name"))
        ~result_tys:[ final_tensor.Ir.vty ]
        ~body_block:new_kernel_block
    end
  in
  {
    m with
    Ir.mops =
      List.map
        (fun (op : Ir.op) ->
          if op.Ir.name = Ops.kernel_name then rewrite_kernel op else op)
        m.Ir.mops;
  }
