(** Lowering from HiSPN to LoSPN (paper §IV-A3).

    The HiSPN query becomes a [lo_spn.kernel] holding a single
    [lo_spn.task]; the SPN DAG becomes the task's [lo_spn.body].  Two
    SPN-specific decisions happen here:

    - {b datatype selection}: the abstract [!hi_spn.probability] type is
      resolved to a concrete computation type.  The analysis estimates the
      worst-case log-magnitude of the result from the graph depth and the
      smallest leaf probabilities; if an f32 linear computation could
      underflow, log-space computation ([!lo_spn.log<f32>]) is selected
      (§III-A, §III-B);
    - {b binary decomposition}: variadic HiSPN sums/products become trees
      of two-operand [lo_spn.add]/[lo_spn.mul]; weighted sums are
      decomposed into a constant multiplication per child followed by the
      additions (§III-B). *)

open Spnc_mlir

type datatype_choice = {
  use_log_space : bool;
  base : Types.t;  (** F32 or F64 *)
  worst_log2_magnitude : float;
      (** estimated log2 of the smallest intermediate value *)
}

(** Space to force, overriding the analysis. *)
type space_option = Auto | Force_linear | Force_log

type options = {
  space : space_option;
  base_type : Types.t;
  kernel_name : string;
}

let default_options = { space = Auto; base_type = Types.F32; kernel_name = "spn_kernel" }

(* -- Datatype analysis ------------------------------------------------------ *)

(* Walk the HiSPN graph bottom-up, propagating a conservative lower bound
   of the log2-magnitude each node can produce.  Gaussians are bounded by
   the density at ~6 sigma; categorical/histogram by their smallest
   non-zero entry. *)
let analyze_magnitude (graph_ops : Ir.op list) : float =
  let log2 x = log x /. log 2.0 in
  let bounds : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let bound_of (v : Ir.value) =
    Option.value ~default:0.0 (Hashtbl.find_opt bounds v.Ir.vid)
  in
  let min_positive a =
    Array.fold_left
      (fun acc p -> if p > 0.0 then Float.min acc p else acc)
      1.0 a
  in
  List.iter
    (fun (op : Ir.op) ->
      let set b = match op.Ir.results with
        | [ r ] -> Hashtbl.replace bounds r.Ir.vid b
        | _ -> ()
      in
      match op.Ir.name with
      | "hi_spn.gaussian" ->
          let stddev = Option.value ~default:1.0 (Ir.float_attr op "stddev") in
          (* density at 6 sigma *)
          let v = exp (-18.0) /. (stddev *. sqrt (2.0 *. Float.pi)) in
          set (log2 v)
      | "hi_spn.categorical" ->
          let probs = Option.value ~default:[| 1.0 |] (Ir.dense_attr op "probabilities") in
          set (log2 (min_positive probs))
      | "hi_spn.histogram" ->
          let densities = Option.value ~default:[| 1.0 |] (Ir.dense_attr op "densities") in
          set (log2 (min_positive densities))
      | "hi_spn.product" ->
          set (List.fold_left (fun acc v -> acc +. bound_of v) 0.0 op.Ir.operands)
      | "hi_spn.sum" ->
          (* a mixture is at least its smallest weighted term *)
          let weights = Option.value ~default:[||] (Ir.dense_attr op "weights") in
          let w_min = min_positive weights in
          let child_min =
            List.fold_left (fun acc v -> Float.min acc (bound_of v)) 0.0 op.Ir.operands
          in
          set (log2 w_min +. child_min)
      | _ -> ())
    graph_ops;
  (* worst over all produced bounds (the root dominates, but partial
     products can dip lower) *)
  Hashtbl.fold (fun _ b acc -> Float.min b acc) bounds 0.0

(** [choose_datatype ~options graph_ops] implements the deferred-datatype
    decision.  f32 denormals die below 2^-149; we keep a safety margin. *)
let choose_datatype ~(options : options) (graph_ops : Ir.op list) :
    datatype_choice =
  let worst = analyze_magnitude graph_ops in
  let use_log =
    match options.space with
    | Force_log -> true
    | Force_linear -> false
    | Auto -> (
        match options.base_type with
        | Types.F64 -> worst < -1000.0
        | _ -> worst < -120.0)
  in
  { use_log_space = use_log; base = options.base_type; worst_log2_magnitude = worst }

(* -- Lowering ---------------------------------------------------------------- *)

let log_of_weight w = if w <= 0.0 then Float.neg_infinity else log w

(** Translation of the HiSPN graph body into LoSPN arithmetic, given a
    value environment mapping HiSPN feature block-args / node results to
    LoSPN values.  Returns the op list and the value of the root. *)
let lower_graph_ops b ~(ct : Types.t) ~support_marginal
    ~(env : Ir.value Ir.VMap.t) (graph_ops : Ir.op list) :
    Ir.op list * Ir.value =
  let is_log = match ct with Types.Log _ -> true | _ -> false in
  let ops_rev = ref [] in
  let emit op =
    ops_rev := op :: !ops_rev;
    Ir.result op
  in
  let env = ref env in
  let subst (v : Ir.value) =
    match Ir.VMap.find_opt v !env with
    | Some v' -> v'
    | None -> v
  in
  let root_value = ref None in
  (* balanced binary reduction keeps the op-tree depth logarithmic *)
  let rec reduce mk = function
    | [] -> invalid_arg "lower_graph_ops: empty reduction"
    | [ x ] -> x
    | xs ->
        let rec pairs = function
          | a :: b :: rest -> mk a b :: pairs rest
          | tail -> tail
        in
        reduce mk (pairs xs)
  in
  List.iter
    (fun (op : Ir.op) ->
      let map_result value =
        match op.Ir.results with
        | [ r ] -> env := Ir.VMap.add r value !env
        | _ -> ()
      in
      (* every LoSPN op derived from this HiSPN op — including the whole
         constant/mul/add expansion of a weighted sum — inherits its
         provenance, so the SPN node id survives the lowering *)
      let loc = op.Ir.loc in
      match op.Ir.name with
      | "hi_spn.gaussian" ->
          let mean = Option.get (Ir.float_attr op "mean") in
          let stddev = Option.get (Ir.float_attr op "stddev") in
          map_result
            (emit
               (Ops.gaussian b ~loc ~evidence:(subst (Ir.operand_n op 0)) ~mean
                  ~stddev ~support_marginal ~ty:ct ()))
      | "hi_spn.categorical" ->
          let probabilities = Option.get (Ir.dense_attr op "probabilities") in
          let probabilities =
            if is_log then Array.map log_of_weight probabilities
            else probabilities
          in
          map_result
            (emit
               (Ops.categorical b ~loc ~index:(subst (Ir.operand_n op 0))
                  ~probabilities ~support_marginal ~ty:ct ()))
      | "hi_spn.histogram" ->
          let densities = Option.get (Ir.dense_attr op "densities") in
          let densities =
            if is_log then Array.map log_of_weight densities else densities
          in
          let breaks =
            match Ir.attr op "buckets" with
            | Some (Attr.Array l) ->
                Array.of_list
                  (List.map (fun a -> Option.get (Attr.as_int a)) l)
            | _ -> [||]
          in
          map_result
            (emit
               (Ops.histogram b ~loc ~index:(subst (Ir.operand_n op 0)) ~breaks
                  ~densities ~support_marginal ~ty:ct ()))
      | "hi_spn.product" ->
          let children = List.map subst op.Ir.operands in
          map_result
            (reduce (fun l r -> emit (Ops.mul b ~loc ~lhs:l ~rhs:r ~ty:ct ())) children)
      | "hi_spn.sum" ->
          let weights = Option.get (Ir.dense_attr op "weights") in
          let children = List.map subst op.Ir.operands in
          let terms =
            List.mapi
              (fun i child ->
                let w = weights.(i) in
                let w = if is_log then log_of_weight w else w in
                let c = emit (Ops.constant b ~loc ~value:w ~ty:ct ()) in
                emit (Ops.mul b ~loc ~lhs:c ~rhs:child ~ty:ct ()))
              children
          in
          map_result
            (reduce (fun l r -> emit (Ops.add b ~loc ~lhs:l ~rhs:r ~ty:ct ())) terms)
      | "hi_spn.root" -> root_value := Some (subst (Ir.operand_n op 0))
      | other -> invalid_arg ("lower_graph_ops: unexpected op " ^ other))
    graph_ops;
  match !root_value with
  | Some r -> (List.rev !ops_rev, r)
  | None -> invalid_arg "lower_graph_ops: graph has no hi_spn.root"

(** [run ?options m] lowers a HiSPN module to LoSPN (tensor stage). *)
let run ?(options = default_options) (m : Ir.modul) : Ir.modul =
  Ops.register ();
  let b = Builder.seed_from m in
  let query =
    match
      List.find_opt (fun (o : Ir.op) -> o.Ir.name = "hi_spn.joint_query") m.Ir.mops
    with
    | Some q -> q
    | None -> invalid_arg "lower_hispn: module has no hi_spn.joint_query"
  in
  let graph =
    match
      List.find_opt
        (fun (o : Ir.op) -> o.Ir.name = "hi_spn.graph")
        (Ir.single_region_ops query)
    with
    | Some g -> g
    | None -> invalid_arg "lower_hispn: query has no hi_spn.graph"
  in
  let num_features = Option.get (Ir.int_attr query "numFeatures") in
  let batch_size = Option.get (Ir.int_attr query "batchSize") in
  let support_marginal =
    Option.value ~default:false (Ir.bool_attr query "supportMarginal")
  in
  let input_type =
    Option.value ~default:Types.F32 (Ir.type_attr query "inputType")
  in
  let graph_block = Option.get (Ir.entry_block graph) in
  let choice = choose_datatype ~options graph_block.Ir.bops in
  let ct = if choice.use_log_space then Types.Log choice.base else choice.base in
  let input_tensor_ty = Types.Tensor ([ None; Some num_features ], input_type) in
  let result_tensor_ty = Types.Tensor ([ None; Some 1 ], ct) in
  (* task region: ^bb(%index: index, %input: tensor<?,F,ity>) *)
  let task_block =
    Builder.block b ~arg_tys:[ Types.Index; input_tensor_ty ] (fun args ->
        let batch_index = List.nth args 0 in
        let input = List.nth args 1 in
        (* extract each feature used by the graph *)
        let feature_args = graph_block.Ir.bargs in
        let extracts =
          List.mapi
            (fun f arg ->
              let ex =
                Ops.batch_extract b ~tensor:input ~dynamic_index:batch_index
                  ~static_index:f ~transposed:false ~result_ty:input_type
              in
              (arg, ex))
            feature_args
        in
        (* body op: operands are the extracted features *)
        let body_block =
          Builder.block b
            ~arg_tys:(List.map (fun _ -> input_type) feature_args)
            (fun body_args ->
              let env =
                List.fold_left2
                  (fun acc (feat_arg, _) barg -> Ir.VMap.add feat_arg barg acc)
                  Ir.VMap.empty extracts body_args
              in
              let ops, root =
                lower_graph_ops b ~ct ~support_marginal ~env
                  graph_block.Ir.bops
              in
              ops @ [ Ops.yield b ~values:[ root ] ])
        in
        let body_op =
          Ops.body b
            ~inputs:(List.map (fun (_, ex) -> Ir.result ex) extracts)
            ~result_tys:[ ct ] ~body_block
        in
        let collect =
          Ops.batch_collect b ~batch_index ~values:[ Ir.result body_op ]
            ~transposed:true ~result_ty:result_tensor_ty
        in
        List.map snd extracts @ [ body_op; collect; Ops.yield b ~values:[ Ir.result collect ] ])
  in
  let kernel_block =
    Builder.block b ~arg_tys:[ input_tensor_ty ] (fun args ->
        let input = List.hd args in
        let task =
          Ops.task b ~inputs:[ input ] ~batch_size
            ~result_tys:[ result_tensor_ty ] ~body_block:task_block
        in
        [ task; Ops.return_ b ~values:[ Ir.result task ] ])
  in
  let kernel =
    Ops.kernel b ~sym_name:options.kernel_name
      ~result_tys:[ result_tensor_ty ] ~body_block:kernel_block
  in
  Builder.modul ~name:m.Ir.mname [ kernel ]
