(** Bufferization (paper §IV-A5): replace value-semantics [tensor]s by
    [memref] buffers.

    The kernel signature changes from [(tensor in) -> tensor out] to
    [(memref in, memref out) -> ()]: results become writes into buffers
    supplied as output arguments.  Each task gets its output buffer
    appended as its last operand (recorded in the ["numInputs"] attribute);
    [batch_extract]/[batch_collect] become [batch_read]/[batch_write].

    This pass is deliberately naive about the final result: it allocates
    an intermediate buffer for the last task and copies it into the kernel
    output argument.  {!Buffer_opt} removes that copy by writing directly
    to the output — the paper's "write directly to the final output buffer
    of the Kernel instead of copying an intermediate result buffer".
    Buffer deallocation (the MLIR [BufferDeallocation] equivalent) inserts
    [lo_spn.dealloc] after each intermediate buffer's last use. *)

open Spnc_mlir

let memref_of_tensor (t : Types.t) =
  match t with Types.Tensor (d, e) -> Types.MemRef (d, e) | t -> t

(** [run m] bufferizes every kernel of [m]. *)
let run (m : Ir.modul) : Ir.modul =
  let b = Builder.seed_from m in
  let rewrite_kernel (kernel : Ir.op) : Ir.op =
    let kb = Option.get (Ir.entry_block kernel) in
    let tasks = List.filter (fun (o : Ir.op) -> o.Ir.name = Ops.task_name) kb.Ir.bops in
    let ret =
      match
        List.find_opt (fun (o : Ir.op) -> o.Ir.name = Ops.return_name) kb.Ir.bops
      with
      | Some r -> r
      | None -> invalid_arg "bufferize: kernel has no return"
    in
    let result_value =
      match ret.Ir.operands with
      | [ v ] -> v
      | _ -> invalid_arg "bufferize: kernel must return exactly one tensor"
    in
    (* new kernel block arguments: bufferized originals + output memref *)
    let new_args =
      List.map
        (fun (v : Ir.value) -> Builder.fresh b (memref_of_tensor v.Ir.vty))
        kb.Ir.bargs
    in
    let out_arg = Builder.fresh b (memref_of_tensor result_value.Ir.vty) in
    (* tensor value -> memref value *)
    let buffer_of : (int, Ir.value) Hashtbl.t = Hashtbl.create 16 in
    List.iter2
      (fun (old_arg : Ir.value) new_arg ->
        Hashtbl.replace buffer_of old_arg.Ir.vid new_arg)
      kb.Ir.bargs new_args;
    let new_ops = ref [] in
    let emit op = new_ops := op :: !new_ops in
    let allocated = ref [] in
    List.iter
      (fun (task : Ir.op) ->
        (* allocate the buffer this task writes *)
        let task_result = Ir.result task in
        let buf_ty = memref_of_tensor task_result.Ir.vty in
        let alloc = Ops.alloc b ~ty:buf_ty in
        emit alloc;
        allocated := Ir.result alloc :: !allocated;
        Hashtbl.replace buffer_of task_result.Ir.vid (Ir.result alloc);
        (* rewrite the task *)
        let in_bufs =
          List.map
            (fun (v : Ir.value) ->
              match Hashtbl.find_opt buffer_of v.Ir.vid with
              | Some m -> m
              | None -> invalid_arg "bufferize: task input has no buffer")
            task.Ir.operands
        in
        let operands = in_bufs @ [ Ir.result alloc ] in
        let tb = Option.get (Ir.entry_block task) in
        (* new block args: index, memref per input, output memref *)
        let idx_arg = Builder.fresh b Types.Index in
        let in_args =
          List.map
            (fun (v : Ir.value) -> Builder.fresh b (memref_of_tensor v.Ir.vty))
            task.Ir.operands
        in
        let out_barg = Builder.fresh b buf_ty in
        (* value substitution inside the task region *)
        let subst_tbl : (int, Ir.value) Hashtbl.t = Hashtbl.create 32 in
        (match tb.Ir.bargs with
        | old_idx :: old_ins ->
            Hashtbl.replace subst_tbl old_idx.Ir.vid idx_arg;
            List.iter2
              (fun (o : Ir.value) n -> Hashtbl.replace subst_tbl o.Ir.vid n)
              old_ins in_args
        | [] -> invalid_arg "bufferize: task block has no args");
        let subst (v : Ir.value) =
          match Hashtbl.find_opt subst_tbl v.Ir.vid with
          | Some v' -> v'
          | None -> v
        in
        let body_ops =
          List.concat_map
            (fun (o : Ir.op) ->
              if o.Ir.name = Ops.batch_extract_name then begin
                let read =
                  Builder.op b Ops.batch_read_name
                    ~operands:(List.map subst o.Ir.operands)
                    ~results:(List.map (fun (r : Ir.value) -> r.Ir.vty) o.Ir.results)
                    ~attrs:o.Ir.attrs ~loc:o.Ir.loc ()
                in
                Hashtbl.replace subst_tbl (Ir.result o).Ir.vid (Ir.result read);
                [ read ]
              end
              else if o.Ir.name = Ops.batch_collect_name then
                match o.Ir.operands with
                | batch_index :: values ->
                    [
                      Ops.batch_write b ~memref:out_barg
                        ~batch_index:(subst batch_index)
                        ~values:(List.map subst values)
                        ~transposed:
                          (Option.value ~default:false (Ir.bool_attr o "transposed"));
                    ]
                | [] -> []
              else if o.Ir.name = Ops.yield_name then []
              else
                (* ops with regions (lo_spn.body) only capture per-sample
                   scalars, never tensors: substitute operands, keep
                   regions as-is *)
                [ { o with Ir.operands = List.map subst o.Ir.operands } ])
            tb.Ir.bops
        in
        let new_task =
          Builder.op b Ops.task_name ~operands
            ~attrs:
              [
                ( "batchSize",
                  Attr.Int (Option.value ~default:0 (Ir.int_attr task "batchSize")) );
                ("numInputs", Attr.Int (List.length in_bufs));
              ]
            ~regions:
              [
                Builder.region1
                  { Ir.bargs = (idx_arg :: in_args) @ [ out_barg ]; bops = body_ops };
              ]
            ()
        in
        emit new_task)
      tasks;
    (* copy the last task's buffer to the kernel output, then deallocate
       all intermediates (naive; Buffer_opt cleans this up) *)
    let final_buf = Hashtbl.find buffer_of result_value.Ir.vid in
    emit (Ops.copy b ~src:final_buf ~dst:out_arg);
    List.iter (fun buf -> emit (Ops.dealloc b ~memref:buf)) !allocated;
    emit (Ops.return_ b ~values:[]);
    Ops.kernel b
      ~sym_name:(Option.value ~default:"spn_kernel" (Ir.string_attr kernel "sym_name"))
      ~result_tys:[]
      ~body_block:{ Ir.bargs = new_args @ [ out_arg ]; bops = List.rev !new_ops }
  in
  {
    m with
    Ir.mops =
      List.map
        (fun (op : Ir.op) ->
          if op.Ir.name = Ops.kernel_name then rewrite_kernel op else op)
        m.Ir.mops;
  }
