(** Random legal pass orderings and the pass-ordering leaderboard
    (docs/FUZZING.md, [PASSORDER_cpu.json]). *)

module Rng = Spnc_data.Rng
module Json = Spnc_obs.Json

(** Leaderboard schema identifier ([spnc-passorder-v1]). *)
val schema : string

(** [random_pipeline rng] — a randomized legal pipeline from HiSPN down
    to bufferized LoSPN (opt passes at random slots, optional
    partitioning at a legal slot only).  Legal by construction; callers
    still double-check via {!Spnc.Pipelines.validate_pipeline}. *)
val random_pipeline : Rng.t -> string list

val pipeline_to_string : string list -> string

(** [random_opt_order rng] — a nonempty random ordering over
    {!Spnc.Pipelines.lospn_opt_pool} (repeats allowed). *)
val random_opt_order : Rng.t -> string list

(** [candidate_orders ~rng ~extra] — default ordering, its permutations,
    a canonicalize-augmented variant, plus [extra] random draws;
    deduplicated, default first. *)
val candidate_orders : rng:Rng.t -> extra:int -> string list list

(** One leaderboard row: an opt-stage ordering with its aggregate
    score over the program corpus. *)
type score = {
  order : string list;
  programs : int;
  final_ops : int;  (** total op count after the opt stage *)
  compile_s : float;  (** total opt-stage seconds *)
  est_cycles : float;  (** total exact-profiled estimated cycles *)
  bit_identical : bool;  (** promotion prerequisite *)
}

val order_to_string : string list -> string
val order_of_string : string -> string list

(** Promotion ranking: cycles, then surviving ops, then compile time. *)
val compare_scores : score -> score -> int

val leaderboard_to_json : seed:int -> score list -> Json.t
val leaderboard_of_json : Json.t -> (score list, string) result
val write_leaderboard : path:string -> seed:int -> score list -> unit
val read_leaderboard : path:string -> (score list, string) result

(** [best scores] — top bit-identical ordering, if any. *)
val best : score list -> score option
