(** Differential pipeline harness over generated programs
    (docs/FUZZING.md).

    For each {!Smith.program} the harness asserts, with the verifier
    running after {e every} pass:

    - the module verifies and round-trips the printer/parser exactly;
    - the baseline pipeline lowers it to bufferized LoSPN, whose
      {!Spnc_lospn.Interp} evaluation is the semantic reference;
    - across -O0..-O3 × VM/JIT × 1/2 threads the CPU backend is
      bit-identical to the level's VM single-thread run and within
      tolerance of the reference (trap classes must match: if one
      engine fails, all must fail);
    - across randomized legal pass orderings ({!Passorder}) the interp
      result stays within tolerance of the reference and one
      seed-chosen (level, VM-vs-JIT) pair stays bit-identical.

    Any violation is a structured {!failure} carrying the pipeline
    string and detail text; [bin/spnc_fuzz --smith] shrinks the program
    ({!Shrink}) and writes a reproducer bundle. *)

open Spnc_mlir
module Rng = Spnc_data.Rng
module Pipelines = Spnc.Pipelines
module Interp = Spnc_lospn.Interp
module Optimizer = Spnc_cpu.Optimizer
module Exec = Spnc_runtime.Exec
module Pool = Spnc_runtime.Pool

type failure = {
  case_id : int;
  check : string;  (** which invariant broke (see docs/FUZZING.md) *)
  pipeline : string;  (** pipeline / configuration under test *)
  detail : string;
}

let pp_failure ppf (f : failure) =
  Fmt.pf ppf "case %d [%s] pipeline=%s: %s" f.case_id f.check f.pipeline
    f.detail

type config = {
  orderings : int;  (** random legal pipelines checked per program *)
  tol : float;  (** relative tolerance against the interp reference *)
  threads : int;  (** parallel thread count exercised (beside 1) *)
}

let default_config = { orderings = 5; tol = 1e-6; threads = 2 }

(* -- Output comparison ------------------------------------------------------- *)

let exact_eq (a : float array) (b : float array) =
  Array.length a = Array.length b
  && (let eq = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
            eq := false)
        a;
      !eq)

(* Tolerant compare for cross-pipeline checks: NaN matches NaN, ±inf
   matches the same infinity, finite values within relative [tol].
   Log-space outputs reach magnitudes like -5e11 (a far-off-data
   near-singular Gaussian), so the comparison must be relative. *)
let tol_eq ~tol (a : float array) (b : float array) =
  Array.length a = Array.length b
  && (let eq = ref true in
      Array.iteri
        (fun i x ->
          let y = b.(i) in
          let ok =
            if Float.is_nan x then Float.is_nan y
            else if Float.is_nan y then false
            else if x = y then true (* covers equal infinities *)
            else if not (Float.is_finite x) || not (Float.is_finite y) then
              false (* opposite infinities: |x - y| = inf <= tol * inf holds *)
            else
              Float.abs (x -. y)
              <= tol *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
          in
          if not ok then eq := false)
        a;
      !eq)

let pp_outcome ppf = function
  | Ok out ->
      Fmt.pf ppf "ok [%s]"
        (String.concat "; "
           (Array.to_list (Array.map (Printf.sprintf "%h") out)))
  | Error e -> Fmt.pf ppf "error: %s" e

(* -- Pipeline execution ------------------------------------------------------ *)

(** [run_pipeline ~pipeline m] — parse, legality-check and run a textual
    pipeline over [m] with the verifier after every pass. *)
let run_pipeline ~(pipeline : string) (m : Ir.modul) :
    (Ir.modul, string) result =
  match Pipelines.parse_pipeline pipeline with
  | Error e -> Error ("invalid pipeline: " ^ e)
  | Ok passes -> (
      match Pass.validate_ordering ~start:"hispn" passes with
      | Error e -> Error e
      | Ok () -> (
          match
            Pass.run_pipeline_checked ~verify_each:true ~dump_policy:No_dump
              passes m
          with
          | Ok r -> Ok r.Pass.modul
          | Error f ->
              Error
                (Fmt.str "pass %s: %s" f.Pass.failed_pass
                   f.Pass.diag.Pass.Diag.message)))

(* Output slot count of a bufferized LoSPN kernel: columns of the last
   (output) memref parameter. *)
let out_cols_of_lospn (m : Ir.modul) =
  match
    List.find_opt
      (fun (o : Ir.op) -> o.Ir.name = Spnc_lospn.Ops.kernel_name)
      m.Ir.mops
  with
  | Some kernel -> (
      match List.rev (Option.get (Ir.entry_block kernel)).Ir.bargs with
      | last :: _ -> (
          match last.Ir.vty with
          | Types.MemRef ([ _; Some c ], _) -> c
          | _ -> 1)
      | [] -> 1)
  | None -> 1

(** Slot-0 reference evaluation of a bufferized LoSPN module. *)
let eval_interp (lb : Ir.modul) (p : Smith.program) :
    (float array, string) result =
  match
    Interp.run_kernel lb ~inputs:[ Smith.flat_data p ] ~rows:p.Smith.rows
  with
  | out -> Ok (Array.sub out 0 p.Smith.rows)
  | exception Interp.Runtime_error e -> Error ("interp: " ^ e)
  | exception Invalid_argument e -> Error ("interp invalid_argument: " ^ e)

(* Lower a bufferized LoSPN module to Lir at one -O level. *)
let lower_lir ?(cpu_options = Spnc_cpu.Lower_cpu.scalar_options) ~level lb :
    (Spnc_cpu.Lir.modul, string) result =
  try
    let cir = Spnc_cpu.Lower_cpu.run ~options:cpu_options lb in
    let lir = Spnc_cpu.Isel.run cir ~entry:"spn_kernel" in
    Ok (Optimizer.run level lir)
  with
  | Spnc_cpu.Isel.Unsupported e -> Error ("isel unsupported: " ^ e)
  | Invalid_argument e -> Error ("lowering invalid_argument: " ^ e)
  | Failure e -> Error ("lowering failure: " ^ e)

(** One engine execution: slot-0 results, or a trap class. *)
let eval_cpu ?pool ~engine ~threads ~out_cols (lir : Spnc_cpu.Lir.modul)
    (p : Smith.program) : (float array, string) result =
  try
    let ex =
      Exec.load ~batch_size:p.Smith.batch_size ~threads ~engine ?pool
        ~out_cols lir
    in
    let out =
      Fun.protect
        ~finally:(fun () -> Exec.shutdown ex)
        (fun () -> Exec.execute_rows ex p.Smith.data)
    in
    Ok out
  with
  | Spnc_cpu.Vm.Trap e -> Error ("trap: " ^ e)
  | Exec.Chunk_error ce -> Error ("chunk: " ^ ce.Exec.message)
  | Invalid_argument e -> Error ("exec invalid_argument: " ^ e)

(* -- The differential check -------------------------------------------------- *)

let baseline_pipeline =
  "lower-to-lospn,"
  ^ String.concat "," Pipelines.default_lospn_opt_order
  ^ ",lospn-bufferize,lospn-buffer-opt"

let levels = Optimizer.[ O0; O1; O2; O3 ]

let space_flag (p : Smith.program) =
  match p.Smith.space with
  | Spnc_lospn.Lower_hispn.Auto -> "auto"
  | Spnc_lospn.Lower_hispn.Force_linear -> "linear"
  | Spnc_lospn.Lower_hispn.Force_log -> "log"

(* The HiSPN→LoSPN lowering options come from the program (space draw);
   the textual "lower-to-lospn" pass uses defaults, so the harness runs
   the lowering itself for the space-varying paths and uses the textual
   pipeline for everything after.  To keep both worlds in one code path
   we re-lower with explicit options, then run the post-lowering
   pipeline suffix textually. *)
let lower_with_space (p : Smith.program) (m : Ir.modul) :
    (Ir.modul, string) result =
  try
    Ok
      (Spnc_lospn.Lower_hispn.run
         ~options:
           {
             Spnc_lospn.Lower_hispn.space = p.Smith.space;
             base_type = Types.F32;
             kernel_name = "spn_kernel";
           }
         m)
  with
  | Invalid_argument e -> Error ("lower-to-lospn invalid_argument: " ^ e)
  | Failure e -> Error ("lower-to-lospn failure: " ^ e)

(* Run a pipeline suffix (post-lowering, i.e. starting at the "lospn"
   stage) textually with verify-each. *)
let run_suffix ~(pipeline : string) (m : Ir.modul) : (Ir.modul, string) result
    =
  match Pipelines.parse_pipeline pipeline with
  | Error e -> Error ("invalid pipeline: " ^ e)
  | Ok passes -> (
      match Pass.validate_ordering ~start:"lospn" passes with
      | Error e -> Error e
      | Ok () -> (
          match
            Pass.run_pipeline_checked ~verify_each:true ~dump_policy:No_dump
              passes m
          with
          | Ok r -> Ok r.Pass.modul
          | Error f ->
              Error
                (Fmt.str "pass %s: %s" f.Pass.failed_pass
                   f.Pass.diag.Pass.Diag.message)))

let opt_suffix =
  String.concat "," Pipelines.default_lospn_opt_order
  ^ ",lospn-bufferize,lospn-buffer-opt"

(** [check_program ?config p] — the full differential check; [None] when
    every invariant holds.  Deterministic: the ordering draws derive
    from the program's own (seed, id). *)
let check_program ?(config = default_config) (p : Smith.program) :
    failure option =
  let fail check pipeline detail = Some { case_id = p.Smith.id; check; pipeline; detail } in
  let rng =
    (* independent stream from the generator's: offset the case id *)
    Rng.create ~seed:((p.Smith.seed * 7_368_787) + p.Smith.id + 1)
  in
  (* 1. verifier *)
  match Verifier.verify p.Smith.modul with
  | _ :: _ as errs ->
      fail "verify" "-" (Verifier.errors_to_string errs)
  | [] -> (
      (* 2. printer/parser round-trip: print, parse, print again — the
         two texts must be byte-identical *)
      let printed = Printer.modul_to_string p.Smith.modul in
      let reparse =
        match Parser.modul_of_string printed with
        | m -> Ok m
        | exception Parser.Error e -> Error ("parse: " ^ e)
        | exception Lexer.Error e -> Error ("lex: " ^ e)
      in
      match reparse with
      | Error e -> fail "roundtrip" "-" e
      | Ok reparsed
        when not (String.equal printed (Printer.modul_to_string reparsed)) ->
          fail "roundtrip" "-" "reprinted IR differs from first print"
      | Ok _ -> (
          (* 3. baseline lowering (honouring the program's space draw)
             and reference evaluation *)
          match lower_with_space p p.Smith.modul with
          | Error e -> fail "pipeline" ("lower-to-lospn space=" ^ space_flag p) e
          | Ok lo -> (
              match run_suffix ~pipeline:opt_suffix lo with
              | Error e -> fail "pipeline" opt_suffix e
              | Ok lb0 -> (
                  let reference = eval_interp lb0 p in
                  let out_cols = out_cols_of_lospn lb0 in
                  let pool =
                    if config.threads > 1 then
                      Some (Pool.global ~threads:config.threads)
                    else None
                  in
                  (* 4. -O0..-O3 × VM/JIT × threads on the baseline *)
                  let rec sweep_levels = function
                    | [] -> None
                    | level :: rest -> (
                        let lstr = Optimizer.level_to_string level in
                        match lower_lir ~level lb0 with
                        | Error e ->
                            fail "pipeline"
                              (Printf.sprintf "%s,%s" baseline_pipeline lstr)
                              e
                        | Ok lir -> (
                            let base =
                              eval_cpu ~engine:Spnc_cpu.Jit.Vm ~threads:1
                                ~out_cols lir p
                            in
                            let variants =
                              [
                                ("jit-t1", Spnc_cpu.Jit.Jit, 1);
                                ("vm-t2", Spnc_cpu.Jit.Vm, config.threads);
                                ("jit-t2", Spnc_cpu.Jit.Jit, config.threads);
                              ]
                            in
                            let mismatch =
                              List.find_map
                                (fun (vname, engine, threads) ->
                                  let out =
                                    eval_cpu ?pool ~engine ~threads ~out_cols
                                      lir p
                                  in
                                  match (base, out) with
                                  | Ok a, Ok b when exact_eq a b -> None
                                  | Error _, Error _ -> None
                                  | _ ->
                                      fail "bit-identity"
                                        (Printf.sprintf "%s %s vm-t1-vs-%s"
                                           baseline_pipeline lstr vname)
                                        (Fmt.str "vm-t1 %a but %s %a"
                                           pp_outcome base vname pp_outcome
                                           out))
                                variants
                            in
                            match mismatch with
                            | Some _ as f -> f
                            | None -> (
                                (* trap-class + tolerance vs. reference *)
                                match (reference, base) with
                                | Ok r, Ok o when tol_eq ~tol:config.tol r o ->
                                    sweep_levels rest
                                | Error _, Error _ -> sweep_levels rest
                                | _ ->
                                    fail "reference"
                                      (Printf.sprintf "%s %s vm-t1"
                                         baseline_pipeline lstr)
                                      (Fmt.str "interp %a but vm %a" pp_outcome
                                         reference pp_outcome base))))
                  in
                  match sweep_levels levels with
                  | Some _ as f -> f
                  | None -> (
                      (* 5. randomized legal pass orderings *)
                      let rec orderings k =
                        if k = 0 then None
                        else
                          let pl = Passorder.random_pipeline rng in
                          (* the first element is lower-to-lospn; run the
                             suffix on the space-honouring lowering so
                             the ordering varies while the datatype
                             decision stays the program's own *)
                          let suffix =
                            String.concat "," (List.tl pl)
                          in
                          let pstr = Passorder.pipeline_to_string pl in
                          match run_suffix ~pipeline:suffix lo with
                          | Error e -> fail "pipeline" pstr e
                          | Ok lbk -> (
                              let outk = eval_interp lbk p in
                              match (reference, outk) with
                              | Ok r, Ok o when not (tol_eq ~tol:config.tol r o)
                                ->
                                  fail "ordering-divergence" pstr
                                    (Fmt.str "baseline interp %a but %a"
                                       pp_outcome reference pp_outcome outk)
                              | Ok _, Error e | Error e, Ok _ ->
                                  fail "ordering-divergence" pstr
                                    ("trap class differs from baseline: " ^ e)
                              | _ -> (
                                  (* one seed-chosen level, both engines *)
                                  let level = Rng.choose rng levels in
                                  let lstr = Optimizer.level_to_string level in
                                  let ck = out_cols_of_lospn lbk in
                                  match lower_lir ~level lbk with
                                  | Error e ->
                                      fail "pipeline"
                                        (Printf.sprintf "%s,%s" pstr lstr) e
                                  | Ok lir -> (
                                      let vm =
                                        eval_cpu ~engine:Spnc_cpu.Jit.Vm
                                          ~threads:1 ~out_cols:ck lir p
                                      in
                                      let jit =
                                        eval_cpu ~engine:Spnc_cpu.Jit.Jit
                                          ~threads:1 ~out_cols:ck lir p
                                      in
                                      match (vm, jit) with
                                      | Ok a, Ok b when exact_eq a b ->
                                          orderings (k - 1)
                                      | Error _, Error _ -> orderings (k - 1)
                                      | _ ->
                                          fail "bit-identity"
                                            (Printf.sprintf "%s %s vm-vs-jit"
                                               pstr lstr)
                                            (Fmt.str "vm %a but jit %a"
                                               pp_outcome vm pp_outcome jit))))
                      in
                      orderings config.orderings)))))

(* -- Pass-ordering explorer -------------------------------------------------- *)

let est_cycles (profile : Spnc_cpu.Profile.t) : float =
  List.fold_left
    (fun acc (c : Spnc_cpu.Profile.cell) ->
      acc +. (float_of_int (Atomic.get c.Spnc_cpu.Profile.count) *. c.Spnc_cpu.Profile.cycles))
    0.0
    (Spnc_cpu.Profile.cells profile)

(* Score one opt-stage ordering over one program: opt-stage seconds and
   surviving ops, then exact profiled cycles of an -O3 VM run; outputs
   are compared (bit-exactly) against the supplied baseline outputs. *)
let score_one ~(order : string list) ~(baseline_out : float array option)
    (p : Smith.program) :
    (float * int * float * float array option * bool, string) result =
  let ( let* ) = Result.bind in
  let* lo = lower_with_space p p.Smith.modul in
  let t0 = Unix.gettimeofday () in
  let* lo =
    run_suffix ~pipeline:(Passorder.order_to_string order) lo
  in
  let dt = Unix.gettimeofday () -. t0 in
  let ops = Ir.count_ops (fun _ -> true) lo in
  let* lb = run_suffix ~pipeline:"lospn-bufferize,lospn-buffer-opt" lo in
  let out_cols = out_cols_of_lospn lb in
  let* lir = lower_lir ~level:Optimizer.O3 lb in
  let profile = Spnc_cpu.Profile.create () in
  let n = p.Smith.rows in
  let input =
    Spnc_cpu.Vm.of_flat (Smith.flat_data p) ~rows:n ~cols:p.Smith.num_features
  in
  let out = Spnc_cpu.Vm.buffer ~rows:n ~cols:out_cols in
  match Spnc_cpu.Vm.run_profiled lir profile ~buffers:[ input; out ] with
  | exception Spnc_cpu.Vm.Trap e -> Error ("trap: " ^ e)
  | () ->
      let slot0 = Array.sub out.Spnc_cpu.Vm.data 0 n in
      let bit_ok =
        match baseline_out with
        | None -> true
        | Some b -> exact_eq slot0 b
      in
      Ok (dt, ops, est_cycles profile, Some slot0, bit_ok)

(** [explore ~programs ~orders] — score each ordering over the corpus
    (skipping programs whose baseline run itself fails); the first
    ordering in [orders] is the bit-identity baseline. *)
let explore ~(programs : Smith.program list)
    ~(orders : string list list) : Passorder.score list =
  match orders with
  | [] -> []
  | base_order :: _ ->
      (* per-program baseline outputs, under the first (default) order *)
      let baselines =
        List.map
          (fun p ->
            match score_one ~order:base_order ~baseline_out:None p with
            | Ok (_, _, _, out, _) -> (p, out)
            | Error _ -> (p, None))
          programs
      in
      List.map
        (fun order ->
          let programs_scored = ref 0 in
          let total_s = ref 0.0 in
          let total_ops = ref 0 in
          let total_cycles = ref 0.0 in
          let bit_identical = ref true in
          List.iter
            (fun (p, baseline_out) ->
              match baseline_out with
              | None -> () (* baseline itself failed; skip this program *)
              | Some _ -> (
                  match score_one ~order ~baseline_out p with
                  | Ok (dt, ops, cycles, _, bit_ok) ->
                      incr programs_scored;
                      total_s := !total_s +. dt;
                      total_ops := !total_ops + ops;
                      total_cycles := !total_cycles +. cycles;
                      if not bit_ok then bit_identical := false
                  | Error _ -> bit_identical := false))
            baselines;
          {
            Passorder.order;
            programs = !programs_scored;
            final_ops = !total_ops;
            compile_s = !total_s;
            est_cycles = !total_cycles;
            bit_identical = !bit_identical;
          })
        orders
