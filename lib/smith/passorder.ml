(** Random legal pass orderings and the pass-ordering leaderboard
    (docs/FUZZING.md).

    Two jobs share this module.  The differential harness draws {e full}
    randomized pipelines — opt passes interleaved at random slots around
    the fixed dialect-conversion skeleton, with partitioning optionally
    present — that are legal by construction and double-checked against
    the per-pass legality metadata in {!Spnc_mlir.Pass}.  The explorer
    scores orderings of the compiler's lospn-optimization stage
    (final op count, compile seconds, exact profiled cycles) into a
    [PASSORDER_cpu.json] leaderboard; a winner can be promoted through
    [Options.lospn_opt_order] after bit-identical validation against the
    fixed ordering. *)

module Rng = Spnc_data.Rng
module Json = Spnc_obs.Json
module Pipelines = Spnc.Pipelines

let schema = "spnc-passorder-v1"

(* -- Random legal pipelines -------------------------------------------------- *)

let random_opt_burst rng ~max_len =
  List.init (Rng.int rng (max_len + 1)) (fun _ ->
      Rng.choose rng Pipelines.lospn_opt_pool)

(** [random_pipeline rng] — a randomized legal pipeline from HiSPN down
    to bufferized LoSPN: stage-preserving opt passes are interleaved at
    random slots, partitioning is optionally present (at a legal slot
    only — after [lower-to-lospn], before [lospn-bufferize]). *)
let random_pipeline rng : string list =
  let pre = random_opt_burst rng ~max_len:2 in
  let part =
    if Rng.float rng < 0.5 then
      [ Printf.sprintf "lospn-partition=%d" (Rng.choose rng [ 2; 4; 8; 10_000 ]) ]
    else []
  in
  let mid = random_opt_burst rng ~max_len:2 in
  let post =
    if Rng.float rng < 0.5 then [ "lospn-buffer-opt" ] else []
  in
  (("lower-to-lospn" :: pre) @ part @ mid @ [ "lospn-bufferize" ]) @ post

let pipeline_to_string = String.concat ","

(* -- Opt-stage ordering candidates ------------------------------------------- *)

(** [random_opt_order rng] — a nonempty ordering over the opt pool
    (repeats allowed: running cse twice is legal, just wasteful — the
    explorer should be able to measure that). *)
let random_opt_order rng : string list =
  List.init
    (1 + Rng.int rng 4)
    (fun _ -> Rng.choose rng Pipelines.lospn_opt_pool)

(** [candidate_orders ~rng ~extra] — the fixed default, every permutation
    of it, a canonicalize-augmented variant, plus [extra] random draws;
    deduplicated, default first. *)
let candidate_orders ~rng ~extra : string list list =
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map
              (fun rest -> x :: rest)
              (permutations (List.filter (fun y -> y <> x) l)))
          l
  in
  let fixed =
    (Pipelines.default_lospn_opt_order
    :: permutations Pipelines.default_lospn_opt_order)
    @ [ "canonicalize" :: Pipelines.default_lospn_opt_order ]
  in
  let random = List.init extra (fun _ -> random_opt_order rng) in
  List.fold_left
    (fun acc o -> if List.mem o acc then acc else acc @ [ o ])
    [] (fixed @ random)

(* -- Leaderboard ------------------------------------------------------------- *)

type score = {
  order : string list;  (** opt-stage ordering *)
  programs : int;  (** programs this ordering was scored on *)
  final_ops : int;  (** total op count after the opt stage *)
  compile_s : float;  (** total opt-stage seconds *)
  est_cycles : float;  (** total exact-profiled estimated cycles *)
  bit_identical : bool;
      (** outputs bit-identical to the fixed default ordering on every
          scored program — a prerequisite for promotion *)
}

let order_to_string (o : string list) = String.concat "," o

let order_of_string s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let score_to_json (s : score) : Json.t =
  Json.Obj
    [
      ("order", Json.Str (order_to_string s.order));
      ("programs", Json.Num (float_of_int s.programs));
      ("final_ops", Json.Num (float_of_int s.final_ops));
      ("compile_s", Json.Num s.compile_s);
      ("est_cycles", Json.Num s.est_cycles);
      ("bit_identical", Json.Bool s.bit_identical);
    ]

let score_of_json (j : Json.t) : (score, string) result =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "passorder entry: bad field %S" name)
  in
  let* order = field "order" Json.str in
  let* programs = field "programs" Json.num in
  let* final_ops = field "final_ops" Json.num in
  let* compile_s = field "compile_s" Json.num in
  let* est_cycles = field "est_cycles" Json.num in
  let* bit_identical = field "bit_identical" Json.bool in
  Ok
    {
      order = order_of_string order;
      programs = int_of_float programs;
      final_ops = int_of_float final_ops;
      compile_s;
      est_cycles;
      bit_identical;
    }

(* Promotion ranking: only bit-identical orderings are eligible; fewer
   profiled cycles wins, then fewer surviving ops, then cheaper compile. *)
let compare_scores (a : score) (b : score) =
  match compare a.est_cycles b.est_cycles with
  | 0 -> (
      match compare a.final_ops b.final_ops with
      | 0 -> compare a.compile_s b.compile_s
      | c -> c)
  | c -> c

let leaderboard_to_json ~seed (scores : score list) : Json.t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("target", Json.Str "cpu");
      ("seed", Json.Num (float_of_int seed));
      ( "baseline",
        Json.Str (order_to_string Pipelines.default_lospn_opt_order) );
      ( "entries",
        Json.List
          (List.map score_to_json (List.sort compare_scores scores)) );
    ]

let leaderboard_of_json (j : Json.t) : (score list, string) result =
  match Option.bind (Json.member "schema" j) Json.str with
  | Some s when s = schema -> (
      match Option.bind (Json.member "entries" j) Json.list with
      | None -> Error "passorder leaderboard: missing entries"
      | Some entries ->
          List.fold_left
            (fun acc e ->
              Result.bind acc (fun acc ->
                  Result.map (fun s -> s :: acc) (score_of_json e)))
            (Ok []) entries
          |> Result.map List.rev)
  | Some s -> Error (Printf.sprintf "passorder leaderboard: schema %S" s)
  | None -> Error "passorder leaderboard: missing schema"

let write_leaderboard ~path ~seed (scores : score list) : unit =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (leaderboard_to_json ~seed scores));
  close_out oc

let read_leaderboard ~path : (score list, string) result =
  Result.bind (Json.parse_file path) leaderboard_of_json

(** [best scores] — the top promotable (bit-identical) ordering. *)
let best (scores : score list) : score option =
  scores
  |> List.filter (fun s -> s.bit_identical)
  |> List.sort compare_scores
  |> function
  | [] -> None
  | s :: _ -> Some s
