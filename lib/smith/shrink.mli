(** IR-level delta debugger for failing generated programs: op removal
    (forward / narrow) with DCE and re-verify, plus evidence-row
    reduction (docs/FUZZING.md). *)

open Spnc_mlir

(** Total op count of a module (shrink progress metric). *)
val count_ops : Ir.modul -> int

(** All valid one-step op-level reductions of a HiSPN module (already
    DCE'd; callers filter with the verifier / failure predicate). *)
val op_candidates : Ir.modul -> Ir.modul list

(** One-step row-level reductions of the evidence. *)
val row_candidates : float array array -> float array array list

(** [shrink ?max_steps ~still_fails m data] — greedy delta-debug:
    repeatedly take the first verifying one-step reduction on which
    [still_fails] holds; returns a locally-minimal failing
    (module, data) pair. *)
val shrink :
  ?max_steps:int ->
  still_fails:(Ir.modul -> float array array -> bool) ->
  Ir.modul ->
  float array array ->
  Ir.modul * float array array
