(** Grammar-based generator of random well-typed HiSPN programs
    (docs/FUZZING.md) — the SPNC analogue of MLIR-Smith.

    [spnc_fuzz]'s model mutator can only reach IR shapes that some
    [Model.t] produces; this generator emits HiSPN {e directly} through
    {!Spnc_mlir.Builder}, so it can exercise attribute and type corners
    models never hit: degenerate single-operand sums/products, zero
    weights whose log-space constants are [-inf], near-singular and
    far-off-data Gaussians, single-bucket categoricals and histograms,
    shared subgraphs that are not smooth/decomposable SPNs, and batch
    sizes from 1 to 4096.  Every generated program passes the verifier,
    round-trips the printer/parser, and carries [loc(...)] provenance.

    Generation is seed-deterministic: the same (seed, id) pair always
    yields the same printed IR and the same input data, so a failure
    replays from the two integers alone. *)

open Spnc_mlir
module Rng = Spnc_data.Rng
module Hi = Spnc_hispn.Ops

(** Evidence kind of one feature column. *)
type var_kind =
  | Continuous  (** Gaussian leaves *)
  | Categorical of int  (** arity; 1 is a legal degenerate corner *)
  | Histogram of int  (** bucket count; breaks are [0..n] *)

type config = {
  min_features : int;
  max_features : int;
  max_depth : int;  (** region-nesting depth of the generated DAG *)
  target_ops : int;  (** soft budget on generated graph ops *)
  rows : int;  (** input rows generated per program *)
  extreme : bool;
      (** draw extreme corners: zero weights, [1e-7]-skewed mixtures,
          near-singular Gaussians, zero-density histogram buckets,
          far-out-of-distribution evidence *)
}

let default_config =
  {
    min_features = 2;
    max_features = 6;
    max_depth = 5;
    target_ops = 24;
    rows = 6;
    extreme = true;
  }

type program = {
  seed : int;
  id : int;
  modul : Ir.modul;  (** a single [hi_spn.joint_query]; verified *)
  num_features : int;
  kinds : var_kind array;
  rows : int;
  data : float array array;  (** [rows] × [num_features] evidence *)
  support_marginal : bool;
  space : Spnc_lospn.Lower_hispn.space_option;
  batch_size : int;
}

(* Same per-case derivation as Spnc_resilience.Fuzz: cases are
   independent streams, so [--case N] replays one program exactly. *)
let case_rng ~seed ~id = Rng.create ~seed:((seed * 1_000_003) + id)

(* -- Attribute corners ------------------------------------------------------- *)

let normalize w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total > 0.0 then Array.map (fun x -> x /. total) w else w

(* Mixture weights: Dirichlet by default; extreme draws produce a
   1e-7-skewed mixture or an exactly-zero weight (whose log-space
   constant lowers to -inf).  Always renormalized: the verifier requires
   the sum within 1e-5 of 1. *)
let gen_weights cfg rng n =
  if n = 1 then [| 1.0 |]
  else
    let w =
      if cfg.extreme && Rng.float rng < 0.2 then begin
        let w = Array.make n 1e-7 in
        w.(Rng.int rng n) <- 1.0;
        w
      end
      else Rng.dirichlet rng ~alpha:1.0 n
    in
    if cfg.extreme && n >= 2 && Rng.float rng < 0.2 then
      w.(Rng.int rng n) <- 0.0;
    normalize w

let gen_gaussian cfg rng =
  let mean =
    if cfg.extreme && Rng.float rng < 0.15 then
      Rng.choose rng [ 1e3; -1e3; 50.0; -50.0 ]
    else Rng.range rng (-2.0) 2.0
  in
  let stddev =
    if cfg.extreme && Rng.float rng < 0.2 then
      Rng.choose rng [ 1e-3; 1e3; 0.05 ]
    else Rng.range rng 0.3 2.0
  in
  (mean, stddev)

let gen_categorical cfg rng k =
  if k = 1 then [| 1.0 |]
  else begin
    let p = Rng.dirichlet rng ~alpha:0.8 k in
    if cfg.extreme && Rng.float rng < 0.25 then p.(Rng.int rng k) <- 0.0;
    normalize p
  end

let gen_densities cfg rng n =
  Array.init n (fun _ ->
      if cfg.extreme && Rng.float rng < 0.15 then
        Rng.choose rng [ 0.0; 1e6; 1e-9 ]
      else Rng.range rng 0.01 2.0)

(* -- Structure --------------------------------------------------------------- *)

let generate ?(config = default_config) ~seed ~id () : program =
  let cfg = config in
  let rng = case_rng ~seed ~id in
  let nf =
    cfg.min_features + Rng.int rng (cfg.max_features - cfg.min_features + 1)
  in
  let kinds =
    Array.init nf (fun _ ->
        match Rng.int rng 4 with
        | 0 | 1 -> Continuous
        | 2 -> Categorical (1 + Rng.int rng 5)
        | _ -> Histogram (1 + Rng.int rng 4))
  in
  let support_marginal = Rng.float rng < 0.3 in
  let space =
    Rng.choose rng
      Spnc_lospn.Lower_hispn.[ Auto; Auto; Force_log; Force_linear ]
  in
  let batch_size = Rng.choose rng [ 1; 3; 8; 4096 ] in
  let b = Builder.create () in
  let node_id = ref 0 in
  let next_loc () =
    incr node_id;
    Loc.node !node_id
  in
  let body =
    Builder.block b
      ~arg_tys:(List.init nf (fun _ -> Types.F32))
      (fun args ->
        let args = Array.of_list args in
        let ops = ref [] in
        let emit op =
          ops := op :: !ops;
          Ir.result op
        in
        (* already-built subtrees, reusable to form shared (DAG, not
           tree) structure — including sharings no valid SPN has *)
        let pool = ref [] in
        let budget = ref cfg.target_ops in
        let gen_leaf () =
          decr budget;
          let f = Rng.int rng nf in
          let loc = next_loc () in
          let v = args.(f) in
          match kinds.(f) with
          | Continuous ->
              let mean, stddev = gen_gaussian cfg rng in
              emit (Hi.gaussian b ~loc ~evidence:v ~mean ~stddev ())
          | Categorical k ->
              emit
                (Hi.categorical b ~loc ~index:v
                   ~probabilities:(gen_categorical cfg rng k)
                   ())
          | Histogram n ->
              emit
                (Hi.histogram b ~loc ~index:v
                   ~breaks:(Array.init (n + 1) (fun i -> i))
                   ~densities:(gen_densities cfg rng n)
                   ())
        in
        let rec gen_node depth =
          if !pool <> [] && Rng.float rng < 0.2 then Rng.choose rng !pool
          else if depth = 0 || !budget <= 1 then begin
            let v = gen_leaf () in
            pool := v :: !pool;
            v
          end
          else begin
            let arity = Rng.choose rng [ 1; 2; 2; 2; 3; 3; 4; 5 ] in
            let children = List.init arity (fun _ -> gen_node (depth - 1)) in
            decr budget;
            let loc = next_loc () in
            let v =
              if Rng.int rng 2 = 0 then
                emit
                  (Hi.sum b ~loc ~operands:children
                     ~weights:(gen_weights cfg rng arity)
                     ())
              else emit (Hi.product b ~loc ~operands:children ())
            in
            pool := v :: !pool;
            v
          end
        in
        let root_v = gen_node cfg.max_depth in
        let root_op = Hi.root b ~value:root_v in
        List.rev (root_op :: !ops))
  in
  let graph_op = Hi.graph b ~num_features:nf ~body in
  let query =
    Hi.joint_query b ~num_features:nf ~batch_size ~input_type:Types.F32
      ~support_marginal ~graph_op
  in
  let modul =
    Builder.modul ~name:(Printf.sprintf "smith_s%d_c%d" seed id) [ query ]
  in
  let data =
    Array.init cfg.rows (fun _ ->
        Array.init nf (fun f ->
            let base =
              match kinds.(f) with
              | Continuous ->
                  if cfg.extreme && Rng.float rng < 0.1 then
                    Rng.choose rng [ 1e3; -1e3; 0.0 ]
                  else Rng.range rng (-3.0) 3.0
              | Categorical k -> float_of_int (Rng.int rng k)
              | Histogram n -> float_of_int (Rng.int rng n) +. Rng.float rng
            in
            if support_marginal && Rng.float rng < 0.15 then Float.nan
            else base))
  in
  {
    seed;
    id;
    modul;
    num_features = nf;
    kinds;
    rows = cfg.rows;
    data;
    support_marginal;
    space;
    batch_size;
  }

let flat_data (p : program) = Array.concat (Array.to_list p.data)

let data_to_csv (data : float array array) : string =
  let buf = Buffer.create 256 in
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%h") row)));
      Buffer.add_char buf '\n')
    data;
  Buffer.contents buf
