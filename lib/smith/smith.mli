(** Grammar-based generator of random well-typed HiSPN programs — the
    SPNC analogue of MLIR-Smith (docs/FUZZING.md).

    Programs are emitted directly through {!Spnc_mlir.Builder}, so the
    generator reaches attribute/type corners the model-level fuzzer
    cannot: degenerate single-operand sums/products, exactly-zero
    mixture weights (log-space [-inf] constants), near-singular and
    far-off-data Gaussians, single-bucket categoricals/histograms,
    zero-density buckets, shared non-SPN subgraph structure, and batch
    sizes from 1 to 4096.  Every program verifies, round-trips the
    printer/parser, and carries provenance locations.

    Generation is deterministic: the same (seed, id) always yields the
    same printed IR and input data. *)

open Spnc_mlir

(** Evidence kind of one feature column. *)
type var_kind =
  | Continuous  (** Gaussian leaves *)
  | Categorical of int  (** arity; 1 is a legal degenerate corner *)
  | Histogram of int  (** bucket count; breaks are [0..n] *)

type config = {
  min_features : int;
  max_features : int;
  max_depth : int;  (** nesting depth of the generated DAG *)
  target_ops : int;  (** soft budget on generated graph ops *)
  rows : int;  (** input rows generated per program *)
  extreme : bool;  (** draw extreme attribute/data corners *)
}

val default_config : config

type program = {
  seed : int;
  id : int;
  modul : Ir.modul;  (** a single [hi_spn.joint_query]; verified *)
  num_features : int;
  kinds : var_kind array;
  rows : int;
  data : float array array;  (** [rows] × [num_features] evidence *)
  support_marginal : bool;
  space : Spnc_lospn.Lower_hispn.space_option;
  batch_size : int;
}

(** The per-case generator stream: [--case id] replays one program. *)
val case_rng : seed:int -> id:int -> Spnc_data.Rng.t

(** [generate ?config ~seed ~id ()] — the program for case [id] of seed
    [seed]; deterministic. *)
val generate : ?config:config -> seed:int -> id:int -> unit -> program

(** Row-major flattened evidence. *)
val flat_data : program -> float array

(** Hex-float CSV rendering of evidence rows (bit-exact round-trip) for
    reproducer bundles. *)
val data_to_csv : float array array -> string
