(** Differential pipeline harness over generated programs: -O0..-O3 ×
    VM/JIT × threads plus randomized legal pass orderings, against the
    bufferized-LoSPN interpreter as semantic reference, with the
    verifier after every pass (docs/FUZZING.md). *)

open Spnc_mlir

type failure = {
  case_id : int;
  check : string;
      (** which invariant broke: [verify], [roundtrip], [pipeline],
          [bit-identity], [reference], [ordering-divergence] *)
  pipeline : string;  (** pipeline / configuration under test *)
  detail : string;
}

val pp_failure : Format.formatter -> failure -> unit

type config = {
  orderings : int;  (** random legal pipelines checked per program *)
  tol : float;  (** relative tolerance against the interp reference *)
  threads : int;  (** parallel thread count exercised (beside 1) *)
}

val default_config : config

(** Bit-exact float-array comparison ([Int64.bits_of_float]). *)
val exact_eq : float array -> float array -> bool

(** Tolerant comparison: NaN matches NaN, same-signed infinities match,
    finite values within relative [tol]. *)
val tol_eq : tol:float -> float array -> float array -> bool

(** The fixed baseline pipeline (HiSPN → bufferized LoSPN). *)
val baseline_pipeline : string

(** [run_pipeline ~pipeline m] — parse, legality-check (from the
    ["hispn"] stage) and run a textual pipeline with verify-each. *)
val run_pipeline : pipeline:string -> Ir.modul -> (Ir.modul, string) result

(** Output slot count of a bufferized LoSPN kernel. *)
val out_cols_of_lospn : Ir.modul -> int

(** Slot-0 reference evaluation of a bufferized LoSPN module. *)
val eval_interp : Ir.modul -> Smith.program -> (float array, string) result

(** [check_program ?config p] — the full differential check; [None] when
    every invariant holds.  Deterministic given the program. *)
val check_program : ?config:config -> Smith.program -> failure option

(** [explore ~programs ~orders] — score opt-stage orderings over the
    corpus (opt seconds, surviving ops, exact profiled -O3 cycles,
    bit-identity against the first ordering, which must be the
    default). *)
val explore :
  programs:Smith.program list ->
  orders:string list list ->
  Passorder.score list
