(** IR-level delta debugger for failing generated programs
    (docs/FUZZING.md).

    Works on the HiSPN graph directly — op removal with re-verify, the
    IR analogue of [Spnc_resilience.Fuzz.shrink]'s model reduction.
    Two op-level reductions are tried, each followed by DCE (dropping
    the leaves the removal orphaned) and a verifier run (candidates
    that stop verifying are discarded):

    - {e forward}: delete an inner sum/product and route one of its
      operands to its uses;
    - {e narrow}: drop one operand of a sum/product with two or more
      operands (sum weights are renormalized so the op still verifies).

    Plus a data-level reduction removing evidence rows.  The greedy
    loop keeps any candidate on which [still_fails] holds, so the
    result is a locally-minimal program exhibiting the failure. *)

open Spnc_mlir
module Hi = Spnc_hispn.Ops

let count_ops (m : Ir.modul) = Ir.count_ops (fun _ -> true) m

(* Locate the graph block inside the single joint_query and rebuild the
   module around a transformed op list. *)
let map_graph_ops (m : Ir.modul) (f : Ir.op list -> Ir.op list option) :
    Ir.modul option =
  match m.Ir.mops with
  | [ query ] when query.Ir.name = Hi.joint_query_name -> (
      match query.Ir.regions with
      | [ { Ir.blocks = [ qblk ] } ] -> (
          match qblk.Ir.bops with
          | [ graph ] when graph.Ir.name = Hi.graph_name -> (
              match graph.Ir.regions with
              | [ { Ir.blocks = [ gblk ] } ] -> (
                  match f gblk.Ir.bops with
                  | None -> None
                  | Some bops' ->
                      let gblk' = { gblk with Ir.bops = bops' } in
                      let graph' =
                        {
                          graph with
                          Ir.regions = [ { Ir.blocks = [ gblk' ] } ];
                        }
                      in
                      let qblk' = { qblk with Ir.bops = [ graph' ] } in
                      let query' =
                        {
                          query with
                          Ir.regions = [ { Ir.blocks = [ qblk' ] } ];
                        }
                      in
                      Some { m with Ir.mops = [ query' ] })
              | _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Substitute values through a vid map in the operand lists of [ops]. *)
let subst (map : Ir.value Ir.VMap.t) (ops : Ir.op list) : Ir.op list =
  let sub v = match Ir.VMap.find_opt v map with Some w -> w | None -> v in
  List.map
    (fun (o : Ir.op) -> { o with Ir.operands = List.map sub o.Ir.operands })
    ops

let is_inner (o : Ir.op) =
  o.Ir.name = Hi.sum_name || o.Ir.name = Hi.product_name

(* All one-step op-level reductions of [m], DCE'd; invalid candidates
   are filtered by the caller. *)
let op_candidates (m : Ir.modul) : Ir.modul list =
  let reductions ops =
    List.concat_map
      (fun (o : Ir.op) ->
        if not (is_inner o) then []
        else
          let r = Ir.result o in
          let without = List.filter (fun x -> x != o) ops in
          (* forward: replace the op by one of its operands *)
          let forwards =
            List.map
              (fun operand ->
                subst (Ir.VMap.singleton r operand) without)
              o.Ir.operands
          in
          (* narrow: drop one operand (renormalizing sum weights) *)
          let narrows =
            if List.length o.Ir.operands < 2 then []
            else
              List.concat
                (List.mapi
                   (fun j _ ->
                     let operands' =
                       List.filteri (fun i _ -> i <> j) o.Ir.operands
                     in
                     let attrs' =
                       if o.Ir.name = Hi.sum_name then
                         match Ir.dense_attr o "weights" with
                         | Some w ->
                             let w' =
                               Array.of_list
                                 (List.filteri
                                    (fun i _ -> i <> j)
                                    (Array.to_list w))
                             in
                             let total = Array.fold_left ( +. ) 0.0 w' in
                             if total <= 1e-9 then None
                             else
                               Some
                                 (Attr.Dict.set o.Ir.attrs "weights"
                                    (Attr.DenseF
                                       (Array.map
                                          (fun x -> x /. total)
                                          w')))
                         | None -> None
                       else Some o.Ir.attrs
                     in
                     match attrs' with
                     | None -> []
                     | Some attrs' ->
                         [
                           List.map
                             (fun x ->
                               if x == o then
                                 {
                                   o with
                                   Ir.operands = operands';
                                   attrs = attrs';
                                 }
                               else x)
                             ops;
                         ])
                   o.Ir.operands)
          in
          forwards @ narrows)
      ops
  in
  let current = ref None in
  ignore
    (map_graph_ops m (fun ops ->
         current := Some ops;
         None));
  match !current with
  | None -> []
  | Some ops ->
      List.filter_map
        (fun ops' -> Option.map Rewrite.dce (map_graph_ops m (fun _ -> Some ops')))
        (reductions ops)

let row_candidates (data : float array array) : float array array list =
  let n = Array.length data in
  if n <= 1 then []
  else
    List.init n (fun i ->
        Array.of_list
          (List.filteri (fun j _ -> j <> i) (Array.to_list data)))

(** [shrink ?max_steps ~still_fails m data] — greedy delta-debug:
    repeatedly take the first valid one-step reduction (op-level, then
    row-level) on which [still_fails] holds. *)
let shrink ?(max_steps = 400) ~still_fails (m : Ir.modul)
    (data : float array array) : Ir.modul * float array array =
  let steps = ref 0 in
  let rec go m data =
    if !steps >= max_steps then (m, data)
    else
      let next_m =
        List.find_opt
          (fun m' ->
            incr steps;
            !steps <= max_steps
            && count_ops m' < count_ops m
            && Verifier.is_valid m'
            && still_fails m' data)
          (op_candidates m)
      in
      match next_m with
      | Some m' -> go m' data
      | None -> (
          let next_d =
            List.find_opt
              (fun data' ->
                incr steps;
                !steps <= max_steps && still_fails m data')
              (row_candidates data)
          in
          match next_d with Some data' -> go m data' | None -> (m, data))
  in
  go m data
