(** Crash-safe persistent kernel cache (docs/RESILIENCE.md).

    A directory of content-addressed entries: the key is the compiler's
    (model digest × options fingerprint) cache key, the payload is an
    opaque byte string (the marshalled compiled artifact).  The store is
    built so that no sequence of crashes, torn writes, or on-disk
    corruption can ever make a reader crash or return wrong bytes:

    - every entry carries a versioned header with the payload length and
      an MD5 checksum; a reader verifies both before returning anything;
    - publishing is atomic: payload bytes go to a temp file which is
      [rename]d into place, so a reader sees either the whole entry or
      no entry — never a half-written one;
    - a checksum/length mismatch {e quarantines} the entry (moved aside
      for post-mortem, never deleted in place) and reports a miss, so
      the caller transparently recompiles;
    - a caller-supplied format tag is embedded in the header; entries
      written by a different format (or OCaml version — payloads are
      [Marshal]led) are treated as stale misses and removed;
    - total size is bounded: after each publish, least-recently-used
      entries (by mtime; hits touch the file) are evicted until the
      configured budget holds;
    - cross-process writers serialize on a lock file ([.lock], advisory
      [lockf]), so concurrent publishes and evictions do not race.

    Every operation is total: I/O failures surface as [None]/unit plus a
    metrics bump ([kcache.{hit,miss,evict,corrupt,store,store_fail}]),
    never as an exception.  Chaos injection points (short read, bit
    flip, torn write, ENOSPC, lock contention) are wired through
    {!Spnc_resilience.Fault}. *)

type t

val open_ : dir:string -> max_mb:int -> (t, string) result
(** Create/open the cache rooted at [dir] (created if missing) with a
    total-size budget of [max_mb] megabytes ([<= 0] means 1 MB). *)

val dir : t -> string

val find : t -> fmt:string -> key:string -> string option
(** Checksum-verified lookup.  [Some payload] is bit-exact what was
    stored; [None] is a miss (absent, stale format, corrupt —
    quarantined — or unreadable).  A hit refreshes the entry's mtime so
    eviction stays LRU. *)

val store : t -> fmt:string -> key:string -> string -> unit
(** Atomically publish [payload] under [key], then evict
    least-recently-used entries until the size budget holds.  Failures
    (including injected ENOSPC) are absorbed: the cache simply does not
    gain the entry. *)

val quarantine : t -> key:string -> unit
(** Move [key]'s entry into the [quarantine/] subdirectory (callers use
    this when a checksum-valid payload still fails to decode). *)

val entry_keys : t -> string list
(** Keys with a live entry on disk, sorted (diagnostics and tests). *)

val size_bytes : t -> int
(** Total bytes of live entries. *)

val quarantined_count : t -> int

(** {2 Metrics handles} (process-wide; also in the Obs registry) *)

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  corrupt : int;
  stores : int;
  store_failures : int;
}

val counters : unit -> counters
val reset_counters_for_tests : unit -> unit
