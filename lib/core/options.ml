(** User-facing compiler options — the knobs the paper's Python interface
    exposes (§IV, §V): target, vectorization configuration, optimization
    level, maximum partition size, batch size, GPU block size, and the
    computation-space override. *)

module M = Spnc_machine.Machine

type target = Cpu | Gpu

let target_to_string = function Cpu -> "cpu" | Gpu -> "gpu"

type sched = Spnc_runtime.Pool.sched = Static | Stealing

let sched_to_string = Spnc_runtime.Pool.sched_to_string
let sched_of_string = Spnc_runtime.Pool.sched_of_string

type t = {
  target : target;
  machine : M.cpu;  (** CPU descriptor: ISA, veclib, frequency, cores *)
  gpu : M.gpu;
  vectorize : bool;
  use_veclib : bool;
  use_shuffle : bool;
  use_gather_tables : bool;
      (** vectorize discrete-leaf lookups with hardware indexed gathers
          (extension; requires AVX2/AVX-512) *)
  opt_level : Spnc_cpu.Optimizer.level;
  lospn_opt_order : string list option;
      (** pass order for the lospn-optimization stage; [None] runs the
          fixed default ([Pipelines.default_lospn_opt_order]).  Promoted
          winners come from the PASSORDER leaderboard (docs/FUZZING.md).
          Compile-relevant: participates in [fingerprint] *)
  max_partition_size : int option;
      (** [None] disables graph partitioning (whole graph in one Task) *)
  batch_size : int;  (** chunk-size hint for the runtime *)
  block_size : int;  (** GPU threads per block *)
  space : Spnc_lospn.Lower_hispn.space_option;
  base_type : Spnc_mlir.Types.t;  (** computation base type: F32 or F64 *)
  support_marginal : bool;
  threads : int;  (** runtime worker domains; [<= 0] means auto *)
  sched : sched;  (** parallel chunk scheduler (docs/PERFORMANCE.md §5) *)
  streams : int;
      (** GPU stream chunks for transfer/compute overlap; 1 = monolithic
          schedule (docs/PERFORMANCE.md §6) *)
  engine : Spnc_cpu.Jit.engine;
      (** CPU execution engine: closure compiler (default) or reference
          interpreter VM (docs/PERFORMANCE.md) *)
  use_kernel_cache : bool;
      (** reuse compiled artifacts for identical (model, options) pairs
          via the content-addressed kernel cache in {!Compiler} *)
  kernel_cache_dir : string option;
      (** persistent on-disk kernel cache directory ({!Kcache});
          [None] keeps the cache memory-only.  Runtime-only knob — the
          same artifact is produced either way *)
  kernel_cache_mb : int;
      (** on-disk cache size budget in megabytes (LRU-evicted) *)
  profile : bool;
      (** per-SPN-node execution profiling: count every executed Lir
          instruction into (node, opcode) cells via register provenance
          (docs/OBSERVABILITY.md).  Runtime-only; the default execution
          path is untouched when off *)
  (* resilience knobs (docs/RESILIENCE.md) *)
  output_guard : Spnc_resilience.Guard.policy;
      (** NaN/±inf/log-underflow policy on kernel outputs *)
  gpu_fallback : bool;
      (** on a GPU lowering/PTX failure, fall back to a CPU artifact
          instead of failing the compile *)
  debug_fail_stage : string option;
      (** fault injection: raise at the named pipeline stage (testing
          the fallback and reporting paths only) *)
  deadline_ms : float option;
      (** wall-clock budget for one [execute] call; exceeding it raises
          a structured [Deadline_exceeded] (docs/RESILIENCE.md).
          Runtime-only *)
  exec_retries : int;
      (** max retries (capped exponential backoff) for transient
          execution failures before surfacing them.  Runtime-only *)
  (* serving knobs (docs/PERFORMANCE.md §"Serving") — all runtime-only:
     they configure the spnc_serve batcher/admission layer and never
     change the compiled artifact, so none participates in
     [fingerprint]. *)
  serve_max_batch : int;
      (** dynamic-batcher flush threshold, in rows: a model queue is
          dispatched as soon as it holds this many rows *)
  serve_max_delay_ms : float;
      (** dynamic-batcher flush timer: the oldest queued request waits
          at most this long before its queue is dispatched anyway *)
  serve_queue_cap : int;
      (** per-model admission bound, in queued requests; requests over
          it are shed with a structured [overloaded] rejection *)
  serve_global_queue_cap : int;
      (** process-wide admission bound across all model queues *)
  serve_engines_cap : int;
      (** bounded LRU of hot engines: at most this many models keep a
          loaded [Exec] handle resident at once *)
  serve_dispatchers : int;
      (** dispatcher domains draining model queues (EDF order) *)
  serve_starvation_ms : float;
      (** starvation guard: a queued request's effective deadline is at
          most [enqueued_at + serve_starvation_ms], so deadline-less
          traffic cannot be starved forever by tight-SLO tenants *)
}

let default =
  {
    target = Cpu;
    machine = M.ryzen_3900xt;
    gpu = M.rtx_2070_super;
    vectorize = false;
    use_veclib = true;
    use_shuffle = true;
    use_gather_tables = false;
    opt_level = Spnc_cpu.Optimizer.O1;
    lospn_opt_order = None;
    max_partition_size = None;
    batch_size = 4096;
    block_size = 64;
    space = Spnc_lospn.Lower_hispn.Auto;
    base_type = Spnc_mlir.Types.F32;
    support_marginal = false;
    threads = 1;
    sched = Stealing;
    streams = 1;
    engine = Spnc_cpu.Jit.Jit;
    use_kernel_cache = true;
    kernel_cache_dir = None;
    kernel_cache_mb = 256;
    profile = false;
    output_guard = Spnc_resilience.Guard.Warn;
    gpu_fallback = true;
    debug_fail_stage = None;
    deadline_ms = None;
    exec_retries = 2;
    serve_max_batch = 256;
    serve_max_delay_ms = 2.0;
    serve_queue_cap = 256;
    serve_global_queue_cap = 4096;
    serve_engines_cap = 64;
    serve_dispatchers = 2;
    serve_starvation_ms = 50.0;
  }

(** The best CPU configuration found by the paper's DSE (Fig. 6):
    vectorization + vector library + shuffled loads. *)
let best_cpu ?(machine = M.ryzen_3900xt) () =
  { default with target = Cpu; machine; vectorize = true; use_veclib = true;
    use_shuffle = true }

(** The best GPU configuration (§V-A.1): batch/block size 64. *)
let best_gpu ?(gpu = M.rtx_2070_super) () =
  { default with target = Gpu; gpu; block_size = 64; batch_size = 64 }

let cpu_lower_options (t : t) : Spnc_cpu.Lower_cpu.options =
  {
    Spnc_cpu.Lower_cpu.vectorize = t.vectorize;
    width =
      (if t.vectorize then M.simd_width t.machine.M.isa ~bits:32 else 1);
    use_veclib = t.use_veclib && t.machine.M.veclib <> M.No_veclib;
    use_shuffle = t.use_shuffle;
    gather_tables =
      t.use_gather_tables && t.vectorize
      && (match t.machine.M.isa with
         | M.AVX2 | M.AVX512 -> true
         | _ -> false);
  }

(* [threads <= 0] means auto-detect; clamp explicit requests to something
   a shared host survives.  The runtime layer applies the same rule, but
   normalizing here keeps CLI output and pool sizing consistent. *)
let normalize_threads n =
  if n <= 0 then max 1 (min 64 (Domain.recommended_domain_count ()))
  else min n 256

let effective_threads (t : t) = normalize_threads t.threads

(* The compile-relevant subset of the options, serialized deterministically.
   Runtime-only knobs — threads, sched, streams, engine, output_guard,
   use_kernel_cache, kernel_cache_dir/mb, profile, deadline_ms,
   exec_retries — are deliberately EXCLUDED: they do not change the
   compiled artifact, so two compiles differing only in them must share
   a cache entry (including an on-disk one across processes). *)
let fingerprint (t : t) : string =
  Marshal.to_string
    ( target_to_string t.target,
      t.machine,
      t.gpu,
      (t.vectorize, t.use_veclib, t.use_shuffle, t.use_gather_tables),
      Spnc_cpu.Optimizer.level_to_string t.opt_level,
      t.lospn_opt_order,
      t.max_partition_size,
      (t.batch_size, t.block_size),
      (t.space, t.base_type, t.support_marginal, t.gpu_fallback,
       t.debug_fail_stage) )
    []

let pp ppf (t : t) =
  Fmt.pf ppf
    "%s %s vec=%b veclib=%b shuffle=%b %s part=%s batch=%d block=%d \
     threads=%d sched=%s streams=%d engine=%s cache=%b profile=%b guard=%s"
    (target_to_string t.target) t.machine.M.cpu_name t.vectorize t.use_veclib
    t.use_shuffle
    (Spnc_cpu.Optimizer.level_to_string t.opt_level)
    (match t.max_partition_size with None -> "off" | Some s -> string_of_int s)
    t.batch_size t.block_size (effective_threads t) (sched_to_string t.sched)
    t.streams
    (Spnc_cpu.Jit.engine_to_string t.engine)
    t.use_kernel_cache t.profile
    (Spnc_resilience.Guard.policy_to_string t.output_guard)
