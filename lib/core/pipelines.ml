(** Named pass registry and textual pipeline parsing — the machinery
    behind the [spnc_opt] tool (the equivalent of MLIR's [mlir-opt]
    driver): passes are addressed by name, composed into pipelines, and
    run over modules parsed from the textual IR format. *)

open Spnc_mlir

let ( let* ) = Result.bind

(* Ensure all dialects are registered before running any pass. *)
let register_dialects () =
  Spnc_hispn.Ops.register ();
  Spnc_lospn.Ops.register ();
  Spnc_cir.Ops.register ();
  Spnc_gpu.Lower_gpu.register ()

(** [pass_of_name name] resolves a pass by its textual name.  Parameterized
    passes use [name=value], e.g. ["lospn-partition=5000"]. *)
let pass_of_name (spec : string) : (Pass.pass, string) result =
  register_dialects ();
  let name, arg =
    match String.index_opt spec '=' with
    | Some i ->
        ( String.sub spec 0 i,
          Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    | None -> (spec, None)
  in
  let int_arg ~default =
    match arg with
    | None -> Ok default
    | Some a -> (
        match int_of_string_opt a with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "pass %s: bad integer argument %S" name a))
  in
  match name with
  | "verify" -> Ok Pass.verify_pass
  | "canonicalize" -> Ok Pass.canonicalize_pass
  (* The scalar-opt trio only ever runs in the LoSPN opt slot (between
     lowering and bufferization), so legality pins them there;
     [canonicalize] stays stage-agnostic — it also runs on HiSPN. *)
  | "cse" -> Ok { Pass.cse_pass with legality = Pass.preserves "lospn" }
  | "dce" -> Ok { Pass.dce_pass with legality = Pass.preserves "lospn" }
  | "constfold" ->
      Ok
        (Pass.make
           ~legality:(Pass.preserves "lospn")
           "constfold"
           (fun m -> Constfold.run (Builder.seed_from m) m))
  | "lower-to-lospn" ->
      Ok
        (Pass.make
           ~legality:(Pass.lowers ~from_:"hispn" ~to_:"lospn")
           "lower-to-lospn"
           (fun m -> Spnc_lospn.Lower_hispn.run m))
  | "lospn-partition" ->
      let* size = int_arg ~default:10_000 in
      Ok
        (Pass.make
           ~legality:(Pass.preserves "lospn")
           "lospn-partition"
           (fun m ->
             Spnc_lospn.Partition_pass.run
               ~options:
                 {
                   Spnc_lospn.Partition_pass.default_options with
                   max_partition_size = size;
                 }
               m))
  | "lospn-bufferize" ->
      Ok
        (Pass.make
           ~legality:(Pass.lowers ~from_:"lospn" ~to_:"lospn-buf")
           "lospn-bufferize" Spnc_lospn.Bufferize.run)
  | "lospn-buffer-opt" ->
      Ok
        (Pass.make
           ~legality:(Pass.preserves "lospn-buf")
           "lospn-buffer-opt" Spnc_lospn.Buffer_opt.run)
  | "cpu-lower" ->
      Ok
        (Pass.make
           ~legality:(Pass.lowers ~from_:"lospn-buf" ~to_:"cir")
           "cpu-lower"
           (fun m -> Spnc_cpu.Lower_cpu.run m))
  | "cpu-lower-vectorized" ->
      let* width = int_arg ~default:8 in
      Ok
        (Pass.make
           ~legality:(Pass.lowers ~from_:"lospn-buf" ~to_:"cir")
           "cpu-lower-vectorized"
           (fun m ->
             Spnc_cpu.Lower_cpu.run
               ~options:
                 {
                   Spnc_cpu.Lower_cpu.scalar_options with
                   Spnc_cpu.Lower_cpu.vectorize = true;
                   width;
                   use_veclib = true;
                   use_shuffle = true;
                 }
               m))
  | "gpu-lower" ->
      let* block_size = int_arg ~default:64 in
      Ok
        (Pass.make
           ~legality:(Pass.lowers ~from_:"lospn-buf" ~to_:"gpu")
           "gpu-lower"
           (fun m ->
             Spnc_gpu.Lower_gpu.run ~options:{ Spnc_gpu.Lower_gpu.block_size } m))
  | "gpu-copy-opt" ->
      Ok
        (Pass.make
           ~legality:(Pass.preserves "gpu")
           "gpu-copy-opt" Spnc_gpu.Copy_opt.run)
  | other -> Error (Printf.sprintf "unknown pass %S" other)

(** [parse_pipeline spec] parses a comma-separated pipeline such as
    ["canonicalize,lospn-partition=500,lospn-bufferize,verify"]. *)
let parse_pipeline (spec : string) : (Pass.pass list, string) result =
  let names =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc name ->
      let* acc = acc in
      let* p = pass_of_name name in
      Ok (p :: acc))
    (Ok []) names
  |> Result.map List.rev

(** [validate_pipeline ?start spec] resolves the pipeline and checks its
    pass-ordering legality, threading the IR stage from [start] (default
    ["hispn"], the stage every frontend emits). *)
let validate_pipeline ?(start = "hispn") (spec : string) :
    (unit, string) result =
  let* passes = parse_pipeline spec in
  Pass.validate_ordering ~start passes

(* -- LoSPN optimization stage ordering --------------------------------------- *)

(* The compiler's "lospn-optimization" stage is the one pipeline region
   where pass *order* is an open tuning question (the dialect-conversion
   skeleton around it is fixed by legality).  The stage runs a sequence
   drawn from this pool; [Spnc_smith] explores random orders and the
   leaderboard can promote a winner via [Options.lospn_opt_order]. *)

let lospn_opt_pool = [ "constfold"; "cse"; "dce"; "canonicalize" ]
let default_lospn_opt_order = [ "constfold"; "cse"; "dce" ]

(** [lospn_opt_passes order] resolves each name in [order] against the
    stage-preserving optimization pool.  Names outside {!lospn_opt_pool}
    are rejected: dialect conversions must not sneak into the stage. *)
let lospn_opt_passes (order : string list) :
    ((string * (Ir.modul -> Ir.modul)) list, string) result =
  register_dialects ();
  let resolve name =
    if not (List.mem name lospn_opt_pool) then
      Error
        (Printf.sprintf
           "pass %S is not a legal lospn-optimization stage pass (pool: %s)"
           name
           (String.concat ", " lospn_opt_pool))
    else
      match name with
      | "constfold" ->
          Ok (name, fun m -> Constfold.run (Builder.seed_from m) m)
      | "cse" -> Ok (name, Cse.run)
      | "dce" -> Ok (name, Rewrite.dce)
      | "canonicalize" -> Ok (name, fun m -> Canonicalize.run m)
      | _ -> assert false
  in
  if order = [] then Error "lospn-optimization order must not be empty"
  else
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* p = resolve name in
        Ok (p :: acc))
      (Ok []) order
    |> Result.map List.rev

(** [available ()] lists the registered pass names. *)
let available () =
  [
    "verify"; "canonicalize"; "cse"; "dce"; "constfold"; "lower-to-lospn";
    "lospn-partition[=N]"; "lospn-bufferize"; "lospn-buffer-opt"; "cpu-lower";
    "cpu-lower-vectorized[=W]"; "gpu-lower[=BLOCK]"; "gpu-copy-opt";
  ]

(** What can go wrong when driving a pipeline from text. *)
type run_error =
  | Invalid_pipeline of string  (** unknown pass / bad argument *)
  | Parse_error of string  (** the input module does not parse *)
  | Pass_failure of Pass.failure
      (** a pass failed; carries the typed diagnostic and the reproducer
          bundle, when dumping was enabled *)

let run_error_to_string = function
  | Invalid_pipeline e -> e
  | Parse_error e -> "parse error: " ^ e
  | Pass_failure f -> Fmt.str "%a" Pass.pp_failure f

(** [run_on_source_checked ?verify_each ?dump_policy ~pipeline src]
    parses a textual module and runs the pipeline under the crash-isolated
    pass manager: a failing pass comes back as {!Pass_failure} with a
    typed diagnostic and (per [dump_policy], default
    [Pass.Dump_default]) an on-disk reproducer bundle. *)
let run_on_source_checked ?(verify_each = false)
    ?(dump_policy = Pass.Dump_default) ?(instr = Pass.no_instrument)
    ~(pipeline : string) (src : string) : (Pass.result, run_error) result =
  register_dialects ();
  match parse_pipeline pipeline with
  | Error e -> Error (Invalid_pipeline e)
  | Ok passes -> (
      match Parser.modul_of_string src with
      | exception Parser.Error e -> Error (Parse_error e)
      | exception Lexer.Error e -> Error (Parse_error ("lex error: " ^ e))
      | m -> (
          match
            Pass.run_pipeline_checked ~verify_each ~dump_policy ~instr
              ~options:("pipeline: " ^ pipeline) passes m
          with
          | Ok r -> Ok r
          | Error f -> Error (Pass_failure f)))

(** [run_on_source ?verify_each ~pipeline src] — legacy string-error
    interface over {!run_on_source_checked}; never dumps reproducers. *)
let run_on_source ?(verify_each = false) ~(pipeline : string) (src : string) :
    (Pass.result, string) result =
  match
    run_on_source_checked ~verify_each ~dump_policy:Pass.No_dump ~pipeline src
  with
  | Ok r -> Ok r
  | Error (Pass_failure f) ->
      Error
        (Printf.sprintf "pass %s failed: %s" f.Pass.failed_pass
           f.Pass.diag.Pass.Diag.message)
  | Error e -> Error (run_error_to_string e)
