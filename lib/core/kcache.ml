(** Crash-safe persistent kernel cache — see kcache.mli for the contract.

    On-disk entry layout ([<key>.kc], documented in docs/RESILIENCE.md):

    {v
    SPNCKC1 <fmt>\n            magic + caller format tag
    <len> <md5hex> <key>\n     payload length, checksum, bound key
    <payload bytes>
    v}

    The header is line-oriented ASCII so a human (or the CI canary) can
    inspect an entry with [head -2]; the payload is opaque bytes. *)

module Fault = Spnc_resilience.Fault
module Metrics = Spnc_obs.Metrics

let magic = "SPNCKC1"

type t = {
  dir : string;
  quarantine_dir : string;
  lock_path : string;
  max_bytes : int;
}

let dir t = t.dir

(* -- Metrics ------------------------------------------------------------------- *)

let c_hit = Metrics.counter "kcache.hit"
let c_miss = Metrics.counter "kcache.miss"
let c_evict = Metrics.counter "kcache.evict"
let c_corrupt = Metrics.counter "kcache.corrupt"
let c_store = Metrics.counter "kcache.store"
let c_store_fail = Metrics.counter "kcache.store_fail"

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  corrupt : int;
  stores : int;
  store_failures : int;
}

let counters () =
  {
    hits = Metrics.counter_value c_hit;
    misses = Metrics.counter_value c_miss;
    evictions = Metrics.counter_value c_evict;
    corrupt = Metrics.counter_value c_corrupt;
    stores = Metrics.counter_value c_store;
    store_failures = Metrics.counter_value c_store_fail;
  }

let reset_counters_for_tests () =
  List.iter Metrics.reset
    [
      "kcache.hit";
      "kcache.miss";
      "kcache.evict";
      "kcache.corrupt";
      "kcache.store";
      "kcache.store_fail";
    ]

(* -- Paths --------------------------------------------------------------------- *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let entry_suffix = ".kc"

let safe_key key =
  key <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       key

(* Compiler keys are hex digests, which pass [safe_key] untouched; an
   arbitrary key degrades to its own digest so it can never escape the
   cache directory or smuggle whitespace into the header. *)
let file_of_key key =
  (if safe_key key then key else Digest.to_hex (Digest.string key))
  ^ entry_suffix

let entry_path t key = Filename.concat t.dir (file_of_key key)

let open_ ~dir ~max_mb =
  let max_mb = if max_mb <= 0 then 1 else max_mb in
  try
    mkdir_p dir;
    let quarantine_dir = Filename.concat dir "quarantine" in
    mkdir_p quarantine_dir;
    Ok
      {
        dir;
        quarantine_dir;
        lock_path = Filename.concat dir ".lock";
        max_bytes = max_mb * 1024 * 1024;
      }
  with
  | Sys_error e -> Error e
  | Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))

(* -- Cross-process lock -------------------------------------------------------- *)

let with_lock t f =
  let fd = Unix.openfile t.lock_path [ Unix.O_CREAT; Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Fault.maybe_stall "kcache.lock_stall" ~seconds:0.02;
      Unix.lockf fd Unix.F_LOCK 0;
      Fun.protect
        ~finally:(fun () -> try Unix.lockf fd Unix.F_ULOCK 0 with _ -> ())
        f)

(* -- Directory scans ----------------------------------------------------------- *)

type entry_stat = { path : string; base : string; mtime : float; size : int }

let scan_entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun base ->
             if Filename.check_suffix base entry_suffix then
               let path = Filename.concat t.dir base in
               match Unix.stat path with
               | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
                   Some { path; base; mtime = st_mtime; size = st_size }
               | _ | (exception Unix.Unix_error _) -> None
             else None)

let entry_keys t =
  scan_entries t
  |> List.map (fun e -> Filename.chop_suffix e.base entry_suffix)
  |> List.sort String.compare

let size_bytes t = List.fold_left (fun acc e -> acc + e.size) 0 (scan_entries t)

let quarantined_count t =
  match Sys.readdir t.quarantine_dir with
  | exception Sys_error _ -> 0
  | names -> Array.length names

(* -- Quarantine ---------------------------------------------------------------- *)

let quarantine_seq = Atomic.make 0

let quarantine_path t path =
  (* move aside, never delete: a corrupt entry is evidence.  Unique
     target name so repeated corruption of the same key keeps every
     specimen. *)
  let target =
    Filename.concat t.quarantine_dir
      (Printf.sprintf "%s.%d.%d" (Filename.basename path) (Unix.getpid ())
         (Atomic.fetch_and_add quarantine_seq 1))
  in
  (try Sys.rename path target with Sys_error _ | Unix.Unix_error _ -> ());
  Metrics.counter_incr c_corrupt

let quarantine t ~key =
  let path = entry_path t key in
  if Sys.file_exists path then quarantine_path t path

(* -- Read path ----------------------------------------------------------------- *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse "<magic> <fmt>\n<len> <md5> <key>\n<payload>"; returns the
   header fields plus the byte offset where the payload starts. *)
let parse_header content =
  match String.index_opt content '\n' with
  | None -> None
  | Some nl1 -> (
      let line1 = String.sub content 0 nl1 in
      match String.index_opt line1 ' ' with
      | None -> None
      | Some sp when String.sub line1 0 sp = magic -> (
          let fmt = String.sub line1 (sp + 1) (String.length line1 - sp - 1) in
          match String.index_from_opt content (nl1 + 1) '\n' with
          | None -> None
          | Some nl2 -> (
              let line2 = String.sub content (nl1 + 1) (nl2 - nl1 - 1) in
              match String.split_on_char ' ' line2 with
              | [ len; md5; key ] -> (
                  match int_of_string_opt len with
                  | Some len when len >= 0 -> Some (fmt, len, md5, key, nl2 + 1)
                  | _ -> None)
              | _ -> None))
      | Some _ -> None)

let find t ~fmt ~key =
  let path = entry_path t key in
  match read_all path with
  | exception (Sys_error _ | Unix.Unix_error _ | End_of_file) ->
      Metrics.counter_incr c_miss;
      None
  | content -> (
      (* chaos: a short read models a crash that truncated the file (or
         a filesystem that lost the tail); a bit flip models silent media
         corruption.  Both must land in the quarantine path below. *)
      let content =
        if Fault.fire "kcache.read_short" then
          String.sub content 0 (String.length content / 2)
        else content
      in
      let content =
        if Fault.fire "kcache.read_bitflip" && String.length content > 0 then begin
          let b = Bytes.of_string content in
          let i = String.length content - 1 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
          Bytes.to_string b
        end
        else content
      in
      match parse_header content with
      | None ->
          (* not even a parseable header: quarantine, don't trust it *)
          quarantine_path t path;
          None
      | Some (entry_fmt, len, md5, entry_key, payload_off) ->
          if entry_fmt <> fmt then begin
            (* stale format (compiler or OCaml version changed): the
               entry is well-formed, just useless — drop it quietly *)
            (try Sys.remove path with Sys_error _ -> ());
            Metrics.counter_incr c_miss;
            None
          end
          else if
            String.length content - payload_off <> len
            || entry_key ^ entry_suffix <> file_of_key key
          then begin
            quarantine_path t path;
            None
          end
          else
            let payload = String.sub content payload_off len in
            if Digest.to_hex (Digest.string payload) <> md5 then begin
              quarantine_path t path;
              None
            end
            else begin
              (* LRU touch: both times to "now" *)
              (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
              Metrics.counter_incr c_hit;
              Some payload
            end)

(* -- Write path ---------------------------------------------------------------- *)

let tmp_seq = Atomic.make 0

(* A tmp file left behind by a crashed writer is garbage after it is
   clearly not being written anymore; ten minutes is generous. *)
let tmp_max_age = 600.0

let sweep_stale_tmp t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | names ->
      let now = Unix.gettimeofday () in
      Array.iter
        (fun base ->
          if String.starts_with ~prefix:".tmp-" base then
            let path = Filename.concat t.dir base in
            match Unix.stat path with
            | { Unix.st_mtime; _ } when now -. st_mtime > tmp_max_age -> (
                try Sys.remove path with Sys_error _ -> ())
            | _ | (exception Unix.Unix_error _) -> ())
        names

let evict t ~keep =
  let entries =
    List.sort (fun a b -> compare a.mtime b.mtime) (scan_entries t)
  in
  let total = List.fold_left (fun acc e -> acc + e.size) 0 entries in
  let excess = ref (total - t.max_bytes) in
  List.iter
    (fun e ->
      if !excess > 0 && e.base <> keep then begin
        (try
           Sys.remove e.path;
           excess := !excess - e.size;
           Metrics.counter_incr c_evict
         with Sys_error _ -> ())
      end)
    entries

let header ~fmt ~entry_key payload =
  Printf.sprintf "%s %s\n%d %s %s\n" magic fmt (String.length payload)
    (Digest.to_hex (Digest.string payload))
    entry_key

let store t ~fmt ~key payload =
  let base = file_of_key key in
  let path = Filename.concat t.dir base in
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_seq 1))
  in
  try
    with_lock t (fun () ->
        if Fault.fire "kcache.write_enospc" then
          raise (Unix.Unix_error (Unix.ENOSPC, "write", path));
        let content =
          header ~fmt
            ~entry_key:(Filename.chop_suffix base entry_suffix)
            payload
          ^ payload
        in
        (* chaos: a torn write publishes an entry whose bytes never fully
           hit disk — rename is atomic but carries garbage.  The read
           path's checksum must catch it. *)
        let content =
          if Fault.fire "kcache.write_torn" then
            String.sub content 0 (String.length content * 3 / 4)
          else content
        in
        let oc = open_out_bin tmp in
        (try
           Fun.protect
             ~finally:(fun () -> close_out_noerr oc)
             (fun () -> output_string oc content)
         with e ->
           (try Sys.remove tmp with Sys_error _ -> ());
           raise e);
        Sys.rename tmp path;
        Metrics.counter_incr c_store;
        evict t ~keep:base;
        sweep_stale_tmp t)
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Metrics.counter_incr c_store_fail
