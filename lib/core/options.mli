(** User-facing compiler options — the knobs the paper's Python interface
    exposes (§IV, §V): target, vectorization configuration, optimization
    level, maximum partition size, batch size, GPU block size, and the
    computation-space/base-type overrides. *)

module M = Spnc_machine.Machine

type target = Cpu | Gpu

val target_to_string : target -> string

(** Parallel chunk scheduler — re-export of {!Spnc_runtime.Pool.sched}. *)
type sched = Spnc_runtime.Pool.sched = Static | Stealing

val sched_to_string : sched -> string
val sched_of_string : string -> sched option

type t = {
  target : target;
  machine : M.cpu;  (** CPU descriptor: ISA, veclib, frequency, cores *)
  gpu : M.gpu;
  vectorize : bool;
  use_veclib : bool;
  use_shuffle : bool;
  use_gather_tables : bool;
      (** vectorize discrete-leaf lookups with hardware indexed gathers
          (extension; requires AVX2/AVX-512) *)
  opt_level : Spnc_cpu.Optimizer.level;
  lospn_opt_order : string list option;
      (** pass order for the lospn-optimization stage ([None] = the fixed
          default, [Pipelines.default_lospn_opt_order]).  Names must come
          from [Pipelines.lospn_opt_pool]; promoted winners come from the
          PASSORDER leaderboard (docs/FUZZING.md).  Compile-relevant:
          participates in {!fingerprint} *)
  max_partition_size : int option;
      (** [None] disables graph partitioning (whole graph in one Task) *)
  batch_size : int;  (** chunk-size hint for the runtime *)
  block_size : int;  (** GPU threads per block *)
  space : Spnc_lospn.Lower_hispn.space_option;
  base_type : Spnc_mlir.Types.t;  (** computation base type: F32 or F64 *)
  support_marginal : bool;
  threads : int;  (** runtime worker domains; [<= 0] means auto *)
  sched : sched;  (** parallel chunk scheduler (docs/PERFORMANCE.md §5) *)
  streams : int;
      (** GPU stream chunks for transfer/compute overlap; 1 = monolithic
          schedule (docs/PERFORMANCE.md §6) *)
  engine : Spnc_cpu.Jit.engine;
      (** CPU execution engine: closure compiler (default) or reference
          interpreter VM (docs/PERFORMANCE.md) *)
  use_kernel_cache : bool;
      (** reuse compiled artifacts for identical (model, options) pairs
          via the content-addressed kernel cache in {!Compiler} *)
  kernel_cache_dir : string option;
      (** persistent on-disk kernel cache directory ({!Kcache});
          [None] keeps the cache memory-only.  Runtime-only knob — the
          same artifact is produced either way *)
  kernel_cache_mb : int;
      (** on-disk cache size budget in megabytes (LRU-evicted) *)
  profile : bool;
      (** per-SPN-node execution profiling: count every executed Lir
          instruction into (node, opcode) cells via register provenance
          (docs/OBSERVABILITY.md).  Runtime-only; the default execution
          path is untouched when off *)
  (* resilience knobs (docs/RESILIENCE.md) *)
  output_guard : Spnc_resilience.Guard.policy;
      (** NaN/±inf/log-underflow policy on kernel outputs *)
  gpu_fallback : bool;
      (** on a GPU lowering/PTX failure, fall back to a CPU artifact
          instead of failing the compile *)
  debug_fail_stage : string option;
      (** fault injection: raise at the named pipeline stage (testing
          the fallback and reporting paths only) *)
  deadline_ms : float option;
      (** wall-clock budget for one [execute] call; exceeding it raises
          a structured [Deadline_exceeded] (docs/RESILIENCE.md).
          Runtime-only *)
  exec_retries : int;
      (** max retries (capped exponential backoff) for transient
          execution failures before surfacing them.  Runtime-only *)
  (* serving knobs (docs/PERFORMANCE.md §"Serving") — all runtime-only:
     they configure the spnc_serve batcher/admission layer and never
     change the compiled artifact, so none participates in
     [fingerprint]. *)
  serve_max_batch : int;
      (** dynamic-batcher flush threshold, in rows *)
  serve_max_delay_ms : float;
      (** dynamic-batcher flush timer (oldest queued request) *)
  serve_queue_cap : int;
      (** per-model admission bound, in queued requests *)
  serve_global_queue_cap : int;
      (** process-wide admission bound across all model queues *)
  serve_engines_cap : int;
      (** bounded LRU of resident [Exec] engine handles *)
  serve_dispatchers : int;
      (** dispatcher domains draining model queues (EDF order) *)
  serve_starvation_ms : float;
      (** starvation guard: cap on how long a deadline-less request can
          be out-prioritized by tight-SLO traffic *)
}

val default : t

(** The best CPU configuration found by the paper's DSE (Fig. 6):
    vectorization + vector library + shuffled loads. *)
val best_cpu : ?machine:M.cpu -> unit -> t

(** The best GPU configuration (§V-A.1): batch/block size 64. *)
val best_gpu : ?gpu:M.gpu -> unit -> t

(** Derives the CPU-lowering options (vector width from the machine's
    ISA, veclib availability, gather-table eligibility). *)
val cpu_lower_options : t -> Spnc_cpu.Lower_cpu.options

(** [normalize_threads n] — resolve a thread-count request: [n <= 0]
    means auto ([Domain.recommended_domain_count], clamped to [1..64]);
    positive values are clamped to 256. *)
val normalize_threads : int -> int

(** [effective_threads t] = [normalize_threads t.threads]. *)
val effective_threads : t -> int

(** [fingerprint t] — deterministic serialization of the compile-relevant
    options, used to key the kernel compilation cache (in-memory and
    on-disk).  Runtime-only knobs (threads, sched, streams, engine,
    output_guard, use_kernel_cache, kernel_cache_dir/mb, profile,
    deadline_ms, exec_retries) are excluded: they do not change the
    compiled artifact. *)
val fingerprint : t -> string

val pp : Format.formatter -> t -> unit
