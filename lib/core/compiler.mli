(** The SPNC driver: end-to-end compilation of a probabilistic query on an
    SPN model, with per-stage wall-clock timing — the OCaml equivalent of
    the paper's single-API-call Python interface.

    {v
    model → HiSPN → canonicalize → LoSPN → optimize → partition →
    bufferize → buffer-opt → (CPU: cir → Lir → -O pipeline → regalloc)
                             (GPU: kernels + host → copy-opt → PTX → CUBIN)
    v} *)

open Spnc_mlir

type timing = { stage : string; seconds : float }

type jit_cell
(** Deferred closure compilation with retryable failure: unlike
    [Lazy.t] — which poisons permanently when its thunk raises — a
    failed build leaves the cell pending, so the next {!force_jit}
    tries again (failures are counted in
    [compiler.jit.build_failures]). *)

val make_jit_cell : Spnc_cpu.Lir.modul -> jit_cell
(** A fresh pending cell that will closure-compile [lir] when forced. *)

val force_jit : jit_cell -> Spnc_cpu.Jit.kernel
(** Build (or return the already-built) JIT kernel.  Serialized
    process-wide: cells live in shared cached artifacts.
    @raise whatever the underlying build raises; the cell stays
    retryable. *)

type cpu_artifact = {
  lir : Spnc_cpu.Lir.modul;  (** the executable kernel (Lir) *)
  regalloc : Spnc_cpu.Regalloc.stats array;  (** per-function allocation *)
  cir : Ir.modul;  (** mid-level IR, for inspection *)
  jit : jit_cell;
      (** closure-compiled form of [lir]; built on first JIT execution
          and shared by every later run of this artifact *)
}

type gpu_artifact = {
  gpu_module : Ir.modul;  (** host function + gpu.func kernels *)
  ptx : string;  (** pseudo-PTX text *)
  cubin : Spnc_gpu.Ptx.cubin;  (** assembled device image *)
}

type artifact = Cpu_kernel of cpu_artifact | Gpu_kernel of gpu_artifact

type compiled = {
  model_stats : Spnc_spn.Stats.t;
  options : Options.t;
  timings : timing list;  (** per-stage wall-clock, in pipeline order *)
  lospn : Ir.modul;  (** final bufferized LoSPN (diagnostics) *)
  out_cols : int;  (** slots per sample in the kernel output buffer *)
  num_tasks : int;
  artifact : artifact;
  datatype : Spnc_lospn.Lower_hispn.datatype_choice;
      (** the deferred-datatype decision (log space or linear, f32/f64) *)
  diags : Spnc_resilience.Diag.t list;
      (** non-fatal diagnostics accumulated during compilation (e.g. a
          GPU→CPU fallback notice); empty on a clean compile *)
}

(** [compile_seconds c] — total measured compile time. *)
val compile_seconds : compiled -> float

(** [stage_seconds c stage] — time spent in the named stage. *)
val stage_seconds : compiled -> string -> float

val pp_timings : Format.formatter -> compiled -> unit

(** [compile ?options model] runs the full pipeline — or, when
    [options.use_kernel_cache] is on (the default), returns a cached
    artifact for an identical (model, compile-relevant options) pair.
    Lookup order: in-memory cache, then — when
    [options.kernel_cache_dir] is set — the crash-safe persistent
    on-disk tier ({!Kcache}; checksummed, LRU-bounded, corruption falls
    back to a recompile), then a full compile published to both tiers.
    A hit reuses the compiled artifact and original timings but carries
    the caller's [options], so runtime-only knobs (threads, engine,
    output guard, deadline) still apply.
    @raise Spnc_spn.Validate.Invalid if the model is structurally invalid. *)
val compile : ?options:Options.t -> Spnc_spn.Model.t -> compiled

(** Kernel-cache observability: [hits]/[misses] count memory-tier
    lookups with the cache enabled; [disk_hits] counts compiles served
    by the persistent tier; [full_compiles] counts actual pass-pipeline
    runs (misses not served by disk, plus cache-disabled compiles). *)
type cache_counters = {
  hits : int;
  misses : int;
  full_compiles : int;
  disk_hits : int;
}

val cache_counters : unit -> cache_counters

(** [reset_kernel_cache ()] empties the cache and zeroes the counters
    (tests, or long-lived processes that mutate global compiler state). *)
val reset_kernel_cache : unit -> unit

(** [load_exec ?pool c] — the engine-handle reuse point: build a runtime
    {!Spnc_runtime.Exec.t} for a CPU artifact once (JIT closures forced
    through the shared retryable cell, process-wide pool wired up,
    chunking knobs from [c.options]) and execute on it many times via
    {!Spnc_runtime.Exec.execute} / [execute_segments].  {!execute} pays
    this load on every call; servers (the {!Spnc_serve} registry) hold
    the handle hot instead.
    @raise Invalid_argument on a GPU artifact (those run in the
    simulator, not the CPU runtime). *)
val load_exec : ?pool:Spnc_runtime.Pool.t -> compiled -> Spnc_runtime.Exec.t

(** [execute c rows] runs the compiled kernel on row-major samples and
    returns one {e log}-likelihood per sample (linear-space kernels have
    their probabilities converted on the way out).  CPU kernels run on
    the register VM through the multi-threaded runtime; GPU kernels run
    in the functional GPU simulator.  Outputs pass through the
    configured NaN/±inf/log-underflow guard ([options.output_guard]).

    When [options.deadline_ms] is set the call gets that wall-clock
    budget (JIT forcing + execution); transient chunk failures retry up
    to [options.exec_retries] times under capped exponential backoff
    (docs/RESILIENCE.md).
    @raise Spnc_resilience.Guard.Guard_failure under the [Fail] policy.
    @raise Spnc_runtime.Exec.Deadline_exceeded when the budget expires
    (partial outputs are discarded). *)
val execute : compiled -> float array array -> float array

(** [execute_profiled c rows] — like {!execute}, but every Lir
    instruction the CPU kernel executes is counted into a fresh
    per-SPN-node profile (docs/OBSERVABILITY.md): render it with
    {!Spnc_cpu.Profile.pp_report} or export with
    {!Spnc_cpu.Profile.write_file}.  The artifact's cached unprofiled
    JIT closures are left alone, so the default {!execute} path pays
    nothing.  GPU artifacts execute normally; their profile is empty. *)
val execute_profiled :
  compiled -> float array array -> float array * Spnc_cpu.Profile.t

(** [finalize_output c raw] — the post-processing {!execute} applies to
    raw kernel outputs (log-space conversion for linear-space kernels,
    then the configured output guard).  For callers that drive the
    runtime directly via {!load_exec}; applying it to raw segment
    outputs keeps them bit-identical to {!execute}.
    @raise Spnc_resilience.Guard.Guard_failure under the [Fail] policy. *)
val finalize_output : compiled -> float array -> float array

(** [gpu_init_seconds c] — modelled one-time CUDA context + module-load
    overhead of a GPU run (grows with CUBIN size); [0] for CPU. *)
val gpu_init_seconds : compiled -> float

(** [estimate_seconds c ~rows] — modelled single-run execution time on
    the configured machine: the quantity plotted in Figs. 6–8 and 10–13
    (see DESIGN.md §1 for the substitution rationale). *)
val estimate_seconds : compiled -> rows:int -> float

(** [gpu_ledger c ~rows] — the GPU time breakdown of Fig. 9 (transfers /
    kernel / launch / alloc); [None] for CPU artifacts. *)
val gpu_ledger : compiled -> rows:int -> Spnc_gpu.Sim.ledger option

(** [compile_and_execute ?options model rows] — the one-call interface. *)
val compile_and_execute :
  ?options:Options.t ->
  Spnc_spn.Model.t ->
  float array array ->
  compiled * float array
