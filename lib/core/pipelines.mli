(** Named pass registry and textual pipeline parsing — the machinery
    behind the [spnc_opt] tool (the analogue of MLIR's [mlir-opt]).

    Pipelines are comma-separated pass names; parameterized passes use
    [name=value], e.g.
    ["canonicalize,lospn-partition=5000,lospn-bufferize,verify"]. *)

open Spnc_mlir

(** Registers every dialect (HiSPN, LoSPN, cir, gpu) in the global
    registry; idempotent. *)
val register_dialects : unit -> unit

(** [pass_of_name spec] resolves a single pass by name. *)
val pass_of_name : string -> (Pass.pass, string) result

(** [parse_pipeline spec] resolves a comma-separated pipeline. *)
val parse_pipeline : string -> (Pass.pass list, string) result

(** [validate_pipeline ?start spec] resolves the pipeline and checks its
    pass-ordering legality via {!Pass.validate_ordering}, threading the
    IR stage from [start] (default ["hispn"]).  An illegal ordering —
    e.g. ["lospn-bufferize,lospn-partition"] — is a loud [Error]. *)
val validate_pipeline : ?start:string -> string -> (unit, string) result

(** Stage-preserving passes eligible for the compiler's
    lospn-optimization stage. *)
val lospn_opt_pool : string list

(** The fixed ordering the compiler runs when no override is promoted:
    [constfold; cse; dce]. *)
val default_lospn_opt_order : string list

(** [lospn_opt_passes order] resolves an ordering of
    lospn-optimization-stage passes to named module transforms; rejects
    names outside {!lospn_opt_pool} and empty orders. *)
val lospn_opt_passes :
  string list -> ((string * (Ir.modul -> Ir.modul)) list, string) result

(** [available ()] lists the registered pass names (with argument
    placeholders). *)
val available : unit -> string list

(** What can go wrong when driving a pipeline from text. *)
type run_error =
  | Invalid_pipeline of string  (** unknown pass / bad argument *)
  | Parse_error of string  (** the input module does not parse *)
  | Pass_failure of Pass.failure
      (** a pass failed; carries the typed diagnostic and the reproducer
          bundle, when dumping was enabled *)

val run_error_to_string : run_error -> string

(** [run_on_source_checked ?verify_each ?dump_policy ?instr ~pipeline src]
    parses a textual module and runs the pipeline under the
    crash-isolated pass manager; a failing pass yields {!Pass_failure}
    with a typed diagnostic and (per [dump_policy], default
    [Pass.Dump_default]) a reproducer bundle on disk.  [instr] controls
    between-pass IR dumping ({!Pass.Print_after_all} /
    {!Pass.Print_after_change}). *)
val run_on_source_checked :
  ?verify_each:bool ->
  ?dump_policy:Pass.dump_policy ->
  ?instr:Pass.instrument ->
  pipeline:string ->
  string ->
  (Pass.result, run_error) result

(** [run_on_source ?verify_each ~pipeline src] — legacy string-error
    interface over {!run_on_source_checked}; never dumps reproducers.
    With [verify_each], the verifier runs after every pass. *)
val run_on_source :
  ?verify_each:bool -> pipeline:string -> string -> (Pass.result, string) result
