(** The SPNC driver: end-to-end compilation of a probabilistic query on an
    SPN model, with per-stage wall-clock timing.

    This is the OCaml equivalent of the paper's "single API call" Python
    interface: {!compile} runs the full pipeline

    {v
    model → HiSPN → canonicalize → LoSPN → partition → bufferize →
    buffer-opt → (CPU: cir → Lir → -O pipeline → regalloc → kernel)
                 (GPU: kernels + host → copy-opt → PTX → CUBIN)
    v}

    and {!execute} runs the compiled artifact over data.  The timing
    ledger drives the compile-time experiments (Figs. 10–13, §V-B.1). *)

open Spnc_mlir
module Diag = Spnc_resilience.Diag
module Guard = Spnc_resilience.Guard
module Fault = Spnc_resilience.Fault

type timing = { stage : string; seconds : float }

(* A lazy-like cell for the deferred closure compilation that is safe to
   share across domains AND retryable after a failed build: [Lazy.t]
   poisons permanently when the thunk raises (every later force re-raises
   [Lazy.Undefined]), which turned one transient JIT failure into a
   permanently dead cached artifact.  Failure here leaves the cell
   [Jit_pending], so the next force simply tries again. *)
type jit_state =
  | Jit_pending of (unit -> Spnc_cpu.Jit.kernel)
  | Jit_ready of Spnc_cpu.Jit.kernel

type jit_cell = { mutable jit_state : jit_state }

type cpu_artifact = {
  lir : Spnc_cpu.Lir.modul;
  regalloc : Spnc_cpu.Regalloc.stats array;
  cir : Ir.modul;
  jit : jit_cell;
      (** closure-compiled form of [lir]; built on first JIT execution
          (on the calling domain, before workers spawn) and shared by
          every later run of this artifact *)
}

type gpu_artifact = {
  gpu_module : Ir.modul;  (** host function + gpu.func kernels *)
  ptx : string;
  cubin : Spnc_gpu.Ptx.cubin;
}

type artifact = Cpu_kernel of cpu_artifact | Gpu_kernel of gpu_artifact

type compiled = {
  model_stats : Spnc_spn.Stats.t;
  options : Options.t;
  timings : timing list;
  lospn : Ir.modul;  (** final bufferized LoSPN (diagnostics) *)
  out_cols : int;  (** slots per sample in the kernel output buffer *)
  num_tasks : int;
  artifact : artifact;
  datatype : Spnc_lospn.Lower_hispn.datatype_choice;
  diags : Diag.t list;
      (** non-fatal diagnostics accumulated during compilation (e.g. a
          GPU→CPU fallback notice); empty on a clean compile *)
}

let compile_seconds (c : compiled) =
  List.fold_left (fun acc t -> acc +. t.seconds) 0.0 c.timings

let stage_seconds (c : compiled) stage =
  List.fold_left
    (fun acc t -> if t.stage = stage then acc +. t.seconds else acc)
    0.0 c.timings

let pp_timings ppf (c : compiled) =
  let total = compile_seconds c in
  List.iter
    (fun t ->
      Fmt.pf ppf "%-22s %8.4fs (%5.1f%%)@." t.stage t.seconds
        (if total > 0.0 then 100.0 *. t.seconds /. total else 0.0))
    c.timings;
  Fmt.pf ppf "%-22s %8.4fs@." "TOTAL" total

(* Determine the output-slot count from the bufferized kernel signature. *)
let out_cols_of_lospn (m : Ir.modul) =
  match
    List.find_opt (fun (o : Ir.op) -> o.Ir.name = Spnc_lospn.Ops.kernel_name) m.Ir.mops
  with
  | Some kernel -> (
      match List.rev (Option.get (Ir.entry_block kernel)).Ir.bargs with
      | last :: _ -> (
          match last.Ir.vty with
          | Types.MemRef ([ _; Some c ], _) -> c
          | _ -> 1)
      | [] -> 1)
  | None -> 1

(* The closure compilation is deferred, so it cannot ride on the [timed]
   stage ledger — it gets its own span at force time ([force_jit]).  The
   chaos point sits inside the thunk: an injected build failure must leave
   the cell retryable, exactly like a real one. *)
let make_jit_cell (lir : Spnc_cpu.Lir.modul) : jit_cell =
  {
    jit_state =
      Jit_pending
        (fun () ->
          Fault.maybe_transient "jit.build_fail";
          Spnc_obs.Trace.with_span ~cat:"compile" "jit-build" (fun () ->
              Spnc_cpu.Jit.compile lir));
  }

(* The full pipeline, unconditionally (the cache wrapper is below). *)
let compile_full ~(options : Options.t) (model : Spnc_spn.Model.t) : compiled =
  Spnc_spn.Validate.validate_exn model;
  let timings = ref [] in
  let timed stage f =
    (* fault injection for the resilience tests: fail exactly at the
       named stage, through the same code path a real bug would take *)
    (if options.Options.debug_fail_stage = Some stage then
       Diag.fail ~pass:stage "injected failure at stage %s (debug_fail_stage)"
         stage);
    (* one clock pair feeds both the stage ledger and the trace span *)
    let r, seconds = Spnc_obs.Trace.timed ~cat:"compile" stage f in
    timings := { stage; seconds } :: !timings;
    r
  in
  let query =
    {
      Spnc_hispn.From_model.batch_size = options.Options.batch_size;
      input_type = Types.F32;
      support_marginal = options.Options.support_marginal;
    }
  in
  let hi =
    timed "hispn-translation" (fun () ->
        Spnc_hispn.From_model.translate ~query model)
  in
  let hi = timed "canonicalize" (fun () -> Canonicalize.run hi) in
  (* datatype decision, recorded for reporting *)
  let datatype =
    let graph_ops =
      match Ir.find_ops (fun o -> o.Ir.name = "hi_spn.graph") hi with
      | g :: _ -> Ir.single_region_ops g
      | [] -> []
    in
    Spnc_lospn.Lower_hispn.choose_datatype
      ~options:
        {
          Spnc_lospn.Lower_hispn.default_options with
          space = options.Options.space;
          base_type = options.Options.base_type;
        }
      graph_ops
  in
  let lo =
    timed "lower-to-lospn" (fun () ->
        Spnc_lospn.Lower_hispn.run
          ~options:
            {
              space = options.Options.space;
              base_type = options.Options.base_type;
              kernel_name = "spn_kernel";
            }
          hi)
  in
  (* LoSPN-level optimization (§IV-A5): constant folding through the
     canonicalization framework plus dialect-agnostic CSE/DCE.  Running it
     before partitioning lets the partitioner see the deduplicated DAG. *)
  (* the driver runs these rewrites directly rather than through the Pass
     manager, so give each one its own pass-category span here — traces
     from [spnc_cli compile] should show the same per-pass breakdown as
     [spnc_opt] pipelines *)
  let lo =
    timed "lospn-optimization" (fun () ->
        let span name f = Spnc_obs.Trace.with_span ~cat:"pass" name f in
        let order =
          match options.Options.lospn_opt_order with
          | None -> Pipelines.default_lospn_opt_order
          | Some o -> o
        in
        match Pipelines.lospn_opt_passes order with
        | Error e -> invalid_arg ("lospn_opt_order: " ^ e)
        | Ok passes ->
            List.fold_left
              (fun lo (name, run) -> span name (fun () -> run lo))
              lo passes)
  in
  let lo =
    match options.Options.max_partition_size with
    | Some size ->
        timed "graph-partitioning" (fun () ->
            Spnc_lospn.Partition_pass.run
              ~options:
                {
                  Spnc_lospn.Partition_pass.default_options with
                  max_partition_size = size;
                }
              lo)
    | None -> lo
  in
  let lo = timed "bufferization" (fun () -> Spnc_lospn.Bufferize.run lo) in
  let lo = timed "buffer-optimization" (fun () -> Spnc_lospn.Buffer_opt.run lo) in
  let out_cols = out_cols_of_lospn lo in
  let num_tasks = Ir.count_ops (fun o -> o.Ir.name = Spnc_lospn.Ops.task_name) lo in
  let build_cpu () =
    let cir =
      timed "cpu-lowering" (fun () ->
          Spnc_cpu.Lower_cpu.run ~options:(Options.cpu_lower_options options) lo)
    in
    let lir =
      timed "instruction-selection" (fun () ->
          Spnc_cpu.Isel.run cir ~entry:"spn_kernel")
    in
    let lir =
      timed "llvm-optimization" (fun () ->
          Spnc_cpu.Optimizer.run options.Options.opt_level lir)
    in
    let regalloc =
      timed "register-allocation" (fun () ->
          Spnc_cpu.Regalloc.allocate_module lir)
    in
    Cpu_kernel { lir; regalloc; cir; jit = make_jit_cell lir }
  in
  let build_gpu () =
    (* chaos: an injected GPU build failure takes the same graceful-
       degradation path as a real lowering/PTX bug — warning + CPU
       artifact when [gpu_fallback] is on *)
    Fault.maybe_transient "gpu.build_fail";
    let g =
      timed "gpu-lowering" (fun () ->
          Spnc_gpu.Lower_gpu.run
            ~options:{ Spnc_gpu.Lower_gpu.block_size = options.Options.block_size }
            lo)
    in
    let g = timed "gpu-copy-optimization" (fun () -> Spnc_gpu.Copy_opt.run g) in
    (* kernel-level optimization (CSE/DCE on the device code) at -O1+;
       -O0 keeps the naive kernels, which execute more instructions *)
    let g =
      if options.Options.opt_level = Spnc_cpu.Optimizer.O0 then g
      else
        timed "gpu-kernel-optimization" (fun () ->
            Rewrite.dce (Cse.run g))
    in
    let ptx = timed "ptx-generation" (fun () -> Spnc_gpu.Ptx.emit g) in
    let cubin =
      (* CUBIN assembly effort scales with -O level, like ptxas *)
      timed "cubin-assembly" (fun () ->
          let passes =
            match options.Options.opt_level with
            | Spnc_cpu.Optimizer.O0 -> 1
            | Spnc_cpu.Optimizer.O1 -> 2
            | Spnc_cpu.Optimizer.O2 -> 3
            | Spnc_cpu.Optimizer.O3 -> 4
          in
          let c = ref (Spnc_gpu.Ptx.assemble ptx) in
          for _ = 2 to passes do
            c := Spnc_gpu.Ptx.assemble ptx
          done;
          !c)
    in
    Gpu_kernel { gpu_module = g; ptx; cubin }
  in
  let artifact, diags =
    match options.Options.target with
    | Options.Cpu -> (build_cpu (), [])
    | Options.Gpu -> (
        (* graceful degradation: a GPU lowering / PTX / assembly failure
           becomes a warning and a CPU artifact for the same query, so
           callers still get a runnable kernel that matches the reference *)
        match build_gpu () with
        | g -> (g, [])
        | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
        | exception e when options.Options.gpu_fallback ->
            let bt = Printexc.get_raw_backtrace () in
            let cause = Diag.of_exn ~pass:"gpu-backend" e bt in
            let warn =
              Diag.warning ?pass:cause.Diag.pass
                ("GPU backend failed, falling back to the CPU target: "
               ^ cause.Diag.message)
            in
            Fmt.epr "spnc: warning: %a@." Diag.pp warn;
            (build_cpu (), [ warn ]))
  in
  {
    model_stats = Spnc_spn.Stats.compute model;
    options;
    timings = List.rev !timings;
    lospn = lo;
    out_cols;
    num_tasks;
    artifact;
    datatype;
    diags;
  }

(* -- Kernel compilation cache -------------------------------------------------- *)

(* Content-addressed cache over (model, compile-relevant options): bench
   sweeps and the fuzzer compile the same speaker/RAT-SPN models over and
   over; a hit returns the previously compiled artifact and skips the
   whole pass pipeline (docs/PERFORMANCE.md).  Keyed by an MD5 digest of
   the deterministic model serialization plus the options fingerprint
   (runtime-only knobs excluded), so any change to either — including the
   fuzzer's [inject_bad_peephole] fault switch, which silently alters
   what the -O1+ pipeline produces — yields a different key. *)

type cache_counters = {
  hits : int;
  misses : int;
  full_compiles : int;
  disk_hits : int;
}

let cache : (string, compiled) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let cache_capacity = 128

(* Counters live in the process-wide Obs registry as atomics: the old
   plain [int ref]s were also bumped outside [with_lock] from concurrent
   compiles, which was a data race under multiple domains.  Atomic
   counters make every bump safe regardless of the lock, and the same
   numbers now show up in `--metrics` snapshots for free. *)
let n_hits = Spnc_obs.Metrics.counter "compiler.cache.hits"
let n_misses = Spnc_obs.Metrics.counter "compiler.cache.misses"
let n_full = Spnc_obs.Metrics.counter "compiler.cache.full_compiles"
let n_disk_hits = Spnc_obs.Metrics.counter "compiler.cache.disk_hits"

let with_lock f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let cache_counters () =
  let open Spnc_obs.Metrics in
  {
    hits = counter_value n_hits;
    misses = counter_value n_misses;
    full_compiles = counter_value n_full;
    disk_hits = counter_value n_disk_hits;
  }

let reset_kernel_cache () =
  with_lock (fun () -> Hashtbl.reset cache);
  let open Spnc_obs.Metrics in
  reset (counter_name n_hits);
  reset (counter_name n_misses);
  reset (counter_name n_full);
  reset (counter_name n_disk_hits)

let cache_key ~(options : Options.t) (model : Spnc_spn.Model.t) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Options.fingerprint options;
            Spnc_spn.Serialize.to_string model;
            (if !Spnc_cpu.Optimizer.inject_bad_peephole then "fault" else "");
          ]))

(* -- Persistent (on-disk) tier ------------------------------------------------- *)

(* What survives a process: the compiled record minus its process-bound
   parts — [options] and [diags] belong to the calling context, and the
   JIT closure cell is rebuilt from [lir] on load.  Everything below is
   pure immutable data, safe to [Marshal]. *)
type stored_artifact =
  | Stored_cpu of {
      s_lir : Spnc_cpu.Lir.modul;
      s_regalloc : Spnc_cpu.Regalloc.stats array;
      s_cir : Ir.modul;
    }
  | Stored_gpu of gpu_artifact

type stored = {
  s_model_stats : Spnc_spn.Stats.t;
  s_timings : timing list;
  s_lospn : Ir.modul;
  s_out_cols : int;
  s_num_tasks : int;
  s_artifact : stored_artifact;
  s_datatype : Spnc_lospn.Lower_hispn.datatype_choice;
}

(* Bump the "v" whenever [stored] (or anything it transitively contains)
   changes shape: the format tag keeps old entries from being
   unmarshalled into the wrong layout.  The OCaml version rides along
   because Marshal output is not stable across compiler versions. *)
let disk_fmt = "spnc-compiled-v1/" ^ Sys.ocaml_version

let stored_of_compiled (c : compiled) : stored =
  {
    s_model_stats = c.model_stats;
    s_timings = c.timings;
    s_lospn = c.lospn;
    s_out_cols = c.out_cols;
    s_num_tasks = c.num_tasks;
    s_artifact =
      (match c.artifact with
      | Cpu_kernel { lir; regalloc; cir; _ } ->
          Stored_cpu { s_lir = lir; s_regalloc = regalloc; s_cir = cir }
      | Gpu_kernel g -> Stored_gpu g);
    s_datatype = c.datatype;
  }

let compiled_of_stored ~(options : Options.t) (s : stored) : compiled =
  {
    model_stats = s.s_model_stats;
    options;
    timings = s.s_timings;
    lospn = s.s_lospn;
    out_cols = s.s_out_cols;
    num_tasks = s.s_num_tasks;
    artifact =
      (match s.s_artifact with
      | Stored_cpu { s_lir; s_regalloc; s_cir } ->
          Cpu_kernel
            {
              lir = s_lir;
              regalloc = s_regalloc;
              cir = s_cir;
              jit = make_jit_cell s_lir;
            }
      | Stored_gpu g -> Gpu_kernel g);
    datatype = s.s_datatype;
    diags = [];
  }

(* one warning per process for an unusable cache dir, not one per compile *)
let disk_warned = Atomic.make false

let disk_cache (options : Options.t) : Kcache.t option =
  match options.Options.kernel_cache_dir with
  | None -> None
  | Some dir -> (
      match Kcache.open_ ~dir ~max_mb:options.Options.kernel_cache_mb with
      | Ok t -> Some t
      | Error e ->
          if not (Atomic.exchange disk_warned true) then
            Fmt.epr
              "spnc: warning: kernel cache dir %s unusable (%s), running \
               without the persistent cache@."
              dir e;
          None)

let disk_find (kc : Kcache.t) ~options key : compiled option =
  match Kcache.find kc ~fmt:disk_fmt ~key with
  | None -> None
  | Some payload -> (
      match (Marshal.from_string payload 0 : stored) with
      | s -> Some (compiled_of_stored ~options s)
      | exception _ ->
          (* checksum-valid bytes that still fail to decode (a stale
             layout that kept the tag): quarantine like corruption and
             fall through to a recompile *)
          Kcache.quarantine kc ~key;
          None)

let disk_store (kc : Kcache.t) ~key (c : compiled) : unit =
  match Marshal.to_string (stored_of_compiled c) [] with
  | payload -> Kcache.store kc ~fmt:disk_fmt ~key payload
  | exception _ -> ()

(** [compile ?options model] — the full pipeline, or a cache hit for an
    identical (model, options) pair: memory first, then — when
    [options.kernel_cache_dir] is set — the persistent on-disk tier
    ({!Kcache}), then a full compile (published to both tiers).  A hit
    reuses the compiled artifact and original timings but carries the
    caller's [options], so runtime-only knobs (threads, engine, output
    guard, deadline) still apply.
    @raise Spnc_spn.Validate.Invalid if the model is structurally invalid. *)
let compile ?(options = Options.default) (model : Spnc_spn.Model.t) : compiled =
  if not options.Options.use_kernel_cache then begin
    Spnc_obs.Metrics.counter_incr n_full;
    compile_full ~options model
  end
  else begin
    (* validate before serializing for the key: the digest must only ever
       address well-formed models *)
    Spnc_spn.Validate.validate_exn model;
    let key = cache_key ~options model in
    match with_lock (fun () -> Hashtbl.find_opt cache key) with
    | Some c ->
        Spnc_obs.Metrics.counter_incr n_hits;
        { c with options }
    | None -> (
        let publish_memory c =
          with_lock (fun () ->
              if Hashtbl.length cache >= cache_capacity then Hashtbl.reset cache;
              Hashtbl.replace cache key c)
        in
        let kc = disk_cache options in
        match Option.bind kc (fun kc -> disk_find kc ~options key) with
        | Some c ->
            (* a memory miss either way; the disk tier saved the compile *)
            Spnc_obs.Metrics.counter_incr n_misses;
            Spnc_obs.Metrics.counter_incr n_disk_hits;
            publish_memory c;
            c
        | None ->
            let c = compile_full ~options model in
            (* counted after the compile so a raising pipeline (injected
               faults, invalid stages) doesn't inflate the miss count —
               same semantics as the old ref-based counters *)
            Spnc_obs.Metrics.counter_incr n_misses;
            Spnc_obs.Metrics.counter_incr n_full;
            publish_memory c;
            Option.iter (fun kc -> disk_store kc ~key c) kc;
            c)
  end

(* -- Execution ---------------------------------------------------------------- *)

let jit_lock = Mutex.create ()
let jit_build_failures = Spnc_obs.Metrics.counter "compiler.jit.build_failures"

(* Building the closures is serialized process-wide: cached artifacts
   (and their [jit] cell) are shared by every caller of [compile], and a
   mutable cell is not safe under concurrent mutation in OCaml 5.  A
   build that raises leaves the cell [Jit_pending] — the next force
   retries — where the previous [Lazy.t] representation poisoned the
   cell permanently (every later force re-raised), turning one transient
   JIT failure into a permanently dead cached artifact. *)
let force_jit (cell : jit_cell) =
  Mutex.lock jit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock jit_lock)
    (fun () ->
      match cell.jit_state with
      | Jit_ready k -> k
      | Jit_pending build -> (
          match build () with
          | k ->
              cell.jit_state <- Jit_ready k;
              k
          | exception e ->
              Spnc_obs.Metrics.counter_incr jit_build_failures;
              raise e))

(** [load_exec ?pool c] — build the reusable runtime engine handle for a
    CPU artifact: JIT closures forced (once, through the retryable cell
    shared by every caller of this cached artifact), worker pool wired up
    (the process-wide {!Spnc_runtime.Pool.global} unless [?pool] is
    given), chunking/scheduling knobs taken from [c.options].  Loading is
    the per-call cost {!execute} used to pay on every invocation; a
    server holds the returned handle hot and amortizes it across the
    artifact's lifetime (the {!Spnc_serve} registry LRU does exactly
    this).  Calls on one handle are serialized by the runtime. *)
let load_exec ?pool (c : compiled) : Spnc_runtime.Exec.t =
  match c.artifact with
  | Gpu_kernel _ ->
      invalid_arg
        "Compiler.load_exec: GPU artifacts run in the simulator, not the CPU \
         runtime"
  | Cpu_kernel { lir; jit; _ } ->
      let engine = c.options.Options.engine in
      (* force the closure compilation here, on the calling domain, so the
         worker domains only ever see the completed kernel *)
      let jk =
        match engine with
        | Spnc_cpu.Jit.Jit -> Some (force_jit jit)
        | Spnc_cpu.Jit.Vm -> None
      in
      let threads = Options.effective_threads c.options in
      (* engine handles share the process-wide pool: domains are spawned
         once, not per loaded model (docs/PERFORMANCE.md §5) *)
      let pool =
        match pool with
        | Some p -> Some p
        | None ->
            if threads > 1 then Some (Spnc_runtime.Pool.global ~threads)
            else None
      in
      let min_chunk =
        (Options.cpu_lower_options c.options).Spnc_cpu.Lower_cpu.width
      in
      Spnc_runtime.Exec.load ~batch_size:c.options.Options.batch_size ~threads
        ~engine ?jit:jk ~sched:c.options.Options.sched ~min_chunk ?pool
        ~out_cols:c.out_cols lir

(** [execute c rows] — run the compiled kernel on row-major samples and
    return one {e log}-likelihood per sample (kernels compiled for linear
    space have their probabilities converted on the way out, so the API is
    uniform).  CPU kernels run on the VM through the multi-threaded
    runtime; GPU kernels run in the functional GPU simulator.  Outputs
    pass through the configured NaN/±inf/log-underflow guard
    ([options.output_guard]; docs/RESILIENCE.md).
    @raise Spnc_resilience.Guard.Guard_failure under the [Fail] policy. *)
let rec execute (c : compiled) (rows : float array array) : float array =
  finish c (execute_raw c rows)

(** [execute_profiled c rows] — like {!execute}, but every Lir instruction
    the CPU kernel executes is counted into a fresh per-SPN-node profile
    (docs/OBSERVABILITY.md).  The JIT is re-compiled with the counters
    baked in (the cached unprofiled closures are left alone), so the
    default {!execute} path pays nothing.  GPU artifacts execute normally
    and the returned profile is empty. *)
and execute_profiled (c : compiled) (rows : float array array) :
    float array * Spnc_cpu.Profile.t =
  let profile = Spnc_cpu.Profile.create ~cpu:c.options.Options.machine () in
  (finish c (execute_raw ~profile c rows), profile)

and finish (c : compiled) (raw : float array) : float array =
  let out =
    if c.datatype.Spnc_lospn.Lower_hispn.use_log_space then raw
    else Array.map log raw
  in
  Guard.apply ~policy:c.options.Options.output_guard ~what:"kernel output" out

and execute_raw ?profile (c : compiled) (rows : float array array) :
    float array =
  (* the deadline clock starts when the call enters the runtime — it
     covers JIT forcing, chunked execution, and the GPU simulation, but
     not the compile (which happened in [compile]) *)
  let deadline =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0))
      c.options.Options.deadline_ms
  in
  match c.artifact with
  | Cpu_kernel { lir; _ } ->
      let exec =
        match profile with
        | None -> load_exec c
        | Some p ->
            (* profiled closures are per-run (they capture the profile's
               cells), so they bypass the artifact's shared cell and the
               plain [load_exec] path *)
            let engine = c.options.Options.engine in
            let jk =
              match engine with
              | Spnc_cpu.Jit.Jit ->
                  Some
                    (Spnc_obs.Trace.with_span ~cat:"compile"
                       "jit-build-profiled" (fun () ->
                         Spnc_cpu.Jit.compile ~profile:p lir))
              | Spnc_cpu.Jit.Vm -> None
            in
            let threads = Options.effective_threads c.options in
            let pool =
              if threads > 1 then Some (Spnc_runtime.Pool.global ~threads)
              else None
            in
            let min_chunk =
              (Options.cpu_lower_options c.options).Spnc_cpu.Lower_cpu.width
            in
            Spnc_runtime.Exec.load ~batch_size:c.options.Options.batch_size
              ~threads ~engine ?jit:jk ~profile:p
              ~sched:c.options.Options.sched ~min_chunk ?pool
              ~out_cols:c.out_cols lir
      in
      Spnc_runtime.Exec.execute_rows ?deadline
        ~retries:(max 0 c.options.Options.exec_retries)
        exec rows
  | Gpu_kernel { gpu_module; _ } ->
      let n = Array.length rows in
      if n = 0 then [||]
      else begin
        (* chaos: a device failure at launch takes the transient path so
           chaos runs exercise retry-or-diagnose on the GPU engine too *)
        Fault.maybe_transient "gpu.launch_fail";
        let flat = Array.concat (Array.to_list rows) in
        let res =
          Spnc_gpu.Sim.run_streamed gpu_module ~gpu:c.options.Options.gpu
            ~entry:"spn_kernel" ~inputs:[ flat ] ~rows:n ~out_cols:c.out_cols
            ~streams:c.options.Options.streams ()
        in
        (* the simulator is a pure function and cannot be cancelled
           mid-run; the deadline is enforced at the boundary, with the
           same structured error and discarded-output semantics *)
        (match deadline with
        | Some d ->
            let now = Unix.gettimeofday () in
            if now > d then
              raise
                (Spnc_runtime.Exec.Deadline_exceeded { deadline = d; now })
        | None -> ());
        Array.sub res.Spnc_gpu.Sim.output 0 n
      end

(** [finalize_output c raw] — the post-processing step {!execute} applies
    to raw kernel outputs: log-space conversion for linear-space kernels
    and the configured output guard.  Exposed for callers that drive the
    runtime through {!load_exec} +
    {!Spnc_runtime.Exec.execute_segments} (the serving batcher) and must
    stay bit-identical to {!execute}. *)
let finalize_output (c : compiled) (raw : float array) : float array =
  finish c raw

(** [estimate_seconds c ~rows] — modelled single-run execution time on the
    configured machine (the quantity plotted in Figs. 6–8 and 10–13). *)
let rec estimate_seconds (c : compiled) ~rows : float =
  match c.artifact with
  | Cpu_kernel { lir; regalloc; _ } ->
      let est =
        Spnc_cpu.Cost.kernel_estimate c.options.Options.machine lir ~regalloc
          ~rows ()
      in
      Spnc_cpu.Cost.threaded_seconds est
        ~threads:(Options.effective_threads c.options)
  | Gpu_kernel { gpu_module; _ } ->
      (* GPU execution is chunked by the user batch size: each chunk is a
         full upload / launch / download schedule (§V-A.1: the batch size
         becomes the block size of the launches).  A one-time CUDA
         context / module-load overhead is paid per run; it amortizes
         with the sample count, which is why the GPU overtakes scalar CPU
         only on the larger noisy workload (Figs. 7/8), and it grows with
         the CUBIN size, which is part of why the huge RAT-SPN kernels
         are slower on GPU than CPU (§V-B.2). *)
      gpu_init_seconds c
      +. Spnc_gpu.Sim.total_seconds
           (Spnc_gpu.Sim.estimate_streamed gpu_module ~gpu:c.options.Options.gpu
              ~entry:"spn_kernel" ~rows ~chunk:c.options.Options.batch_size
              ~streams:c.options.Options.streams)

(** One-time CUDA context + module-load overhead of a run: a fixed
    context cost plus a per-megabyte CUBIN upload/JIT cost. *)
and gpu_init_seconds (c : compiled) : float =
  match c.artifact with
  | Gpu_kernel { cubin; _ } ->
      (c.options.Options.gpu.Spnc_machine.Machine.module_load_ms *. 1e-3)
      +. (float_of_int (Bytes.length cubin.Spnc_gpu.Ptx.bytes) /. 1e6 *. 0.030)
  | Cpu_kernel _ -> 0.0

(** [gpu_ledger c ~rows] — the GPU time breakdown (Fig. 9). *)
let gpu_ledger (c : compiled) ~rows : Spnc_gpu.Sim.ledger option =
  match c.artifact with
  | Gpu_kernel { gpu_module; _ } ->
      Some
        (Spnc_gpu.Sim.estimate_streamed gpu_module ~gpu:c.options.Options.gpu
           ~entry:"spn_kernel" ~rows ~chunk:c.options.Options.batch_size
           ~streams:c.options.Options.streams)
  | Cpu_kernel _ -> None

(** [compile_and_execute ?options model rows] — the paper's one-call
    Python-style interface. *)
let compile_and_execute ?options model rows =
  let c = compile ?options model in
  (c, execute c rows)
