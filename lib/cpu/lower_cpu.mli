(** CPU target lowering (paper §IV-B): bufferized LoSPN → cir.

    Each [lo_spn.task] becomes a function with a loop over the batch; the
    kernel becomes a function that allocates intermediates and calls the
    tasks in order.  With [vectorize], the batch loop is vectorized
    data-parallel over [width] samples plus a scalar epilogue; access
    patterns exploit the LoSPN semantics (contiguous vector loads from
    transposed intermediate buffers; gathers or shuffled loads for
    strided input features); without [use_veclib], vector elementary
    functions are scalarized into extract/call/insert cascades — the
    Fig. 6 penalty. *)

open Spnc_mlir

type options = {
  vectorize : bool;
  width : int;
  use_veclib : bool;
  use_shuffle : bool;
  gather_tables : bool;
      (** vectorize discrete-leaf table lookups with hardware indexed
          gathers instead of scalarizing (extension; AVX2/AVX-512) *)
}

val scalar_options : options

(** Options matching a machine description's best configuration. *)
val of_machine : Spnc_machine.Machine.cpu -> options

(** Vectorization mode of an emission site. *)
type mode = Scalar | Vec of int

(** The emitter: accumulates ops in order (exposed so the GPU lowering
    can reuse the scalar emission helpers). *)
type emitter = {
  b : Builder.t;
  opts : options;
  mutable acc : Ir.op list;  (** reversed *)
  mutable cur_loc : Loc.t;
      (** provenance of the op currently being expanded; [emit] stamps it
          onto emitted ops that carry no location of their own *)
}

val emit : emitter -> Ir.op -> Ir.value
val emit_ : emitter -> Ir.op -> unit
val bool_ty : mode -> Types.t
val const_f : emitter -> mode -> float -> base:Types.t -> Ir.value
val const_i : emitter -> int -> Ir.value
val bin : emitter -> mode -> string -> Ir.value -> Ir.value -> base:Types.t -> Ir.value
val cmp : emitter -> mode -> string -> Ir.value -> Ir.value -> Ir.value

val select :
  emitter -> mode -> Ir.value -> Ir.value -> Ir.value -> base:Types.t -> Ir.value

(** -inf-safe two-operand log-sum-exp emission. *)
val log_sum_exp :
  emitter -> mode -> Ir.value -> Ir.value -> base:Types.t -> Ir.value

(** Gaussian (log-)PDF emission with optional NaN marginalization. *)
val gaussian :
  emitter ->
  mode ->
  x:Ir.value ->
  mean:float ->
  stddev:float ->
  is_log:bool ->
  marginal:bool ->
  base:Types.t ->
  Ir.value

(** Linear index of (sample, slot) under the row-major or transposed
    (slot-major) layout. *)
val linear_index :
  emitter ->
  transposed:bool ->
  iv:Ir.value ->
  slot:int ->
  cols:int ->
  rows_v:Ir.value ->
  Ir.value

val buffer_cols : Ir.value -> int

(** [run ?options m] lowers every bufferized LoSPN kernel to a cir module
    with one function per task plus the kernel entry function. *)
val run : ?options:options -> Ir.modul -> Ir.modul
