(** Sampling-free per-SPN-node execution profiler.

    Executed Lir instructions are attributed through the per-register
    provenance recorded by {!Isel} to the SPN node they implement, and
    counted in pre-resolved cells keyed (node, opcode): the hot-path
    cost is one [Atomic.incr] per instruction, and the sum of all cell
    counts equals the number of instructions executed exactly.

    Opt-in per run via {!Jit.compile}[ ?profile] and {!Vm.run_profiled};
    the default execution paths are untouched.  See
    docs/OBSERVABILITY.md. *)

type cell = {
  node : int;  (** SPN node id; [-1] when unattributed *)
  opcode : string;  (** Lir mnemonic *)
  count : int Atomic.t;  (** executions *)
  cycles : float;  (** estimated cycles per execution *)
}

type t

val create : ?cpu:Spnc_machine.Machine.cpu -> unit -> t
(** A fresh profile; [cpu] prices the per-opcode cost estimates. *)

val opcode : Lir.instr -> string
(** Mnemonic used as the cell key. *)

val node_of : Lir.func -> Lir.instr -> int
(** SPN node of an instruction via register provenance; [-1] when
    unattributed. *)

val cell_for : t -> Lir.func -> Lir.instr -> cell
(** Get-or-create the cell an instruction bumps.  Thread-safe; resolve
    ahead of the hot path. *)

val bump : cell -> unit
(** One executed instruction: a single [Atomic.incr]. *)

val cells : t -> cell list

val total : t -> int
(** Total instructions executed under this profile — exact, since every
    execution bumps exactly one cell. *)

type node_stat = {
  ns_node : int;
  ns_hits : int;
  ns_cycles : float;
  ns_opcodes : (string * int) list;
}

val by_node : t -> node_stat list
(** Per-node aggregation, hottest (by estimated cycles) first. *)

val node_label : int -> string

val pp_report : ?k:int -> Format.formatter -> t -> unit
(** Top-[k] hottest SPN nodes as a table (default 10). *)

val to_json : t -> Spnc_obs.Json.t
val write_file : t -> string -> unit

val to_trace : t -> unit
(** Emit per-node instant events (category "profile") into the Chrome
    trace ring. *)
