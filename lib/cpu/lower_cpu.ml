(** CPU target lowering (paper §IV-B): bufferized LoSPN → cir
    (Standard/Math/SCF/MemRef/Vector mix).

    Each [lo_spn.task] becomes a function containing a loop over the batch;
    the [lo_spn.kernel] becomes a function that allocates intermediate
    buffers and calls the task functions in order.  SPN arithmetic lowers
    to float ops (log-space typed values produce log-space instruction
    sequences: [mul]→[addf], [add]→log-sum-exp); discrete leaves lower to
    table lookups; Gaussian leaves to the (log-)PDF computation.

    With [vectorize] enabled, the batch loop is vectorized data-parallel
    over [width] samples, with a scalar epilogue loop for the remainder.
    Memory access patterns exploit the LoSPN access semantics:

    - intermediate task buffers are transposed, so vector loads of one
      slot across consecutive samples are contiguous [vector.load]s;
    - input features are strided; they lower to [vector.gather], or, with
      [use_shuffle], to [vector.shuffled_load] (the loads+shuffles
      replacement of §IV-B);
    - without [use_veclib], vector [log]/[exp]/[log1p] are scalarized:
      each lane is extracted, the scalar function applied, and the result
      re-inserted — the exact penalty Fig. 6 shows. *)

open Spnc_mlir
module C = Spnc_cir.Ops

type options = {
  vectorize : bool;
  width : int;
  use_veclib : bool;
  use_shuffle : bool;
  gather_tables : bool;
      (** vectorize discrete-leaf table lookups with hardware indexed
          gathers instead of scalarizing them (extension beyond the
          paper; requires an ISA with gather, i.e. AVX2/AVX-512) *)
}

let scalar_options =
  { vectorize = false; width = 1; use_veclib = false; use_shuffle = false;
    gather_tables = false }

(** Options matching a machine description's best configuration. *)
let of_machine (cpu : Spnc_machine.Machine.cpu) =
  let bits = 32 in
  {
    vectorize = cpu.Spnc_machine.Machine.isa <> Spnc_machine.Machine.Scalar;
    width = Spnc_machine.Machine.simd_width cpu.Spnc_machine.Machine.isa ~bits;
    use_veclib = cpu.Spnc_machine.Machine.veclib <> Spnc_machine.Machine.No_veclib;
    use_shuffle = true;
    (* hardware gathers exist on AVX2/AVX-512 but not Neon *)
    gather_tables =
      (match cpu.Spnc_machine.Machine.isa with
      | Spnc_machine.Machine.AVX2 | Spnc_machine.Machine.AVX512 -> true
      | _ -> false);
  }

type mode = Scalar | Vec of int

(* The emitter: accumulates ops in order, offering typed helpers. *)
type emitter = {
  b : Builder.t;
  opts : options;
  mutable acc : Ir.op list;  (** reversed *)
  mutable cur_loc : Loc.t;
      (** provenance of the LoSPN op currently being expanded; stamped
          onto every emitted cir op that has no location of its own, so
          the SPN node id survives down to cir *)
}

let stamp e (op : Ir.op) =
  if Loc.is_known op.Ir.loc || not (Loc.is_known e.cur_loc) then op
  else { op with Ir.loc = e.cur_loc }

let emit e op =
  let op = stamp e op in
  e.acc <- op :: e.acc;
  Ir.result op

let emit_ e op = e.acc <- stamp e op :: e.acc

let scalar_of (t : Types.t) = Types.strip_log (Types.element_type t)

let val_ty mode (base : Types.t) =
  match mode with Scalar -> base | Vec w -> Types.Vector (w, base)

let bool_ty mode = match mode with Scalar -> Types.Bool | Vec w -> Types.Vector (w, Types.Bool)

let const_f e mode v ~base = emit e (C.const_f e.b v ~ty:(val_ty mode base))
let const_i e v = emit e (C.const_i e.b v)

let bin e mode name l r ~base = emit e (C.binary e.b name l r ~ty:(val_ty mode base))

let cmp e mode pred l r = emit e (C.cmp e.b pred l r ~ty:(bool_ty mode))

let select e mode c t f ~base = emit e (C.select_op e.b c t f ~ty:(val_ty mode base))

(* Elementary function application: scalar op, veclib vector op, or the
   scalarized extract/apply/insert cascade. *)
let elementary e mode fname x ~base =
  match mode with
  | Scalar -> emit e (C.unary e.b fname x ~ty:base)
  | Vec w ->
      if e.opts.use_veclib then
        emit e
          (Builder.op e.b fname ~operands:[ x ]
             ~results:[ Types.Vector (w, base) ]
             ~attrs:[ ("veclib", Attr.Bool true) ]
             ())
      else begin
        (* scalarize: extract each lane, scalar call, insert back *)
        let acc = ref (const_f e mode 0.0 ~base) in
        for lane = 0 to w - 1 do
          let s =
            emit e
              (Builder.op e.b C.vextract ~operands:[ x ] ~results:[ base ]
                 ~attrs:[ ("lane", Attr.Int lane) ]
                 ())
          in
          let r = emit e (C.unary e.b fname s ~ty:base) in
          acc :=
            emit e
              (Builder.op e.b C.vinsert ~operands:[ r; !acc ]
                 ~results:[ Types.Vector (w, base) ]
                 ~attrs:[ ("lane", Attr.Int lane) ]
                 ())
        done;
        !acc
      end

(* log-sum-exp of two (log-space) values, -inf-safe *)
let log_sum_exp e mode a bv ~base =
  let m = bin e mode C.maxf a bv ~base in
  let mn = bin e mode C.minf a bv ~base in
  let d = bin e mode C.subf mn m ~base in
  let ex = elementary e mode C.exp_ d ~base in
  let l1p = elementary e mode C.log1p ex ~base in
  let s = bin e mode C.addf m l1p ~base in
  let neginf = const_f e mode Float.neg_infinity ~base in
  let isninf = cmp e mode "oeq" m neginf in
  select e mode isninf m s ~base

(* Gaussian leaf: (log-)pdf of evidence [x]. *)
let gaussian e mode ~x ~mean ~stddev ~is_log ~marginal ~base =
  let mean_c = const_f e mode mean ~base in
  let inv_c = const_f e mode (1.0 /. stddev) ~base in
  let z0 = bin e mode C.subf x mean_c ~base in
  let z = bin e mode C.mulf z0 inv_c ~base in
  let z2 = bin e mode C.mulf z z ~base in
  let mhalf = const_f e mode (-0.5) ~base in
  let h = bin e mode C.mulf z2 mhalf ~base in
  let raw =
    if is_log then
      let k =
        const_f e mode (-.log stddev -. (0.5 *. log (2.0 *. Float.pi))) ~base
      in
      bin e mode C.addf h k ~base
    else
      let ex = elementary e mode C.exp_ h ~base in
      let coef = const_f e mode (1.0 /. (stddev *. sqrt (2.0 *. Float.pi))) ~base in
      bin e mode C.mulf ex coef ~base
  in
  if marginal then begin
    let isnan = cmp e mode "uno" x x in
    let one = const_f e mode (if is_log then 0.0 else 1.0) ~base in
    select e mode isnan one raw ~base
  end
  else raw

(* Discrete leaf lookup on a global table, scalar mode.
   [lookup_of x] takes the evidence and computes (offset, limit):
   - categorical: offset = x + 0.5 (round), limit = bucket count
   - histogram:   offset = x - first_break, limit = expanded size *)
let discrete_scalar e ~table ~x ~shift ~limit ~is_log ~marginal ~base =
  let mode = Scalar in
  let shift_c = const_f e mode shift ~base in
  let xo = bin e mode C.addf x shift_c ~base in
  let zero_f = const_f e mode 0.0 ~base in
  let limit_c = const_f e mode (float_of_int limit) ~base in
  let ge0 = cmp e mode "oge" xo zero_f in
  let ltn = cmp e mode "olt" xo limit_c in
  let inb = emit e (C.binary e.b C.andi ge0 ltn ~ty:Types.Bool) in
  let idx = emit e (C.unary e.b C.fptosi xo ~ty:Types.Index) in
  let zero_i = const_i e 0 in
  let safe = emit e (C.select_op e.b inb idx zero_i ~ty:Types.Index) in
  let p = emit e (C.load_op e.b table safe ~ty:base) in
  let zero_prob = const_f e mode (if is_log then Float.neg_infinity else 0.0) ~base in
  let r0 = select e mode inb p zero_prob ~base in
  if marginal then begin
    let isnan = cmp e mode "uno" x x in
    let one = const_f e mode (if is_log then 0.0 else 1.0) ~base in
    select e mode isnan one r0 ~base
  end
  else r0

(* Discrete leaf in vector mode: scalarize the table lookups per lane. *)
let discrete_vector e ~w ~table ~x ~shift ~limit ~is_log ~marginal ~base =
  let acc = ref (const_f e (Vec w) 0.0 ~base) in
  for lane = 0 to w - 1 do
    let s =
      emit e
        (Builder.op e.b C.vextract ~operands:[ x ] ~results:[ base ]
           ~attrs:[ ("lane", Attr.Int lane) ]
           ())
    in
    let r = discrete_scalar e ~table ~x:s ~shift ~limit ~is_log ~marginal ~base in
    acc :=
      emit e
        (Builder.op e.b C.vinsert ~operands:[ r; !acc ]
           ~results:[ Types.Vector (w, base) ]
           ~attrs:[ ("lane", Attr.Int lane) ]
           ())
  done;
  !acc

(* Discrete leaf in vector mode using a hardware indexed gather: the
   whole lane bundle is looked up with one [vector.gather_indexed], with
   masked selects handling out-of-range and marginalized lanes.  An
   extension beyond the paper's scalarized lookups; enabled by
   [gather_tables]. *)
let discrete_vector_gather e ~w ~table ~x ~shift ~limit ~is_log ~marginal ~base =
  let mode = Vec w in
  let shift_c = const_f e mode shift ~base in
  let xo = bin e mode C.addf x shift_c ~base in
  let zero_f = const_f e mode 0.0 ~base in
  let limit_c = const_f e mode (float_of_int limit) ~base in
  let ge0 = cmp e mode "oge" xo zero_f in
  let ltn = cmp e mode "olt" xo limit_c in
  let inb = emit e (C.binary e.b C.andi ge0 ltn ~ty:(bool_ty mode)) in
  (* floored float indices, clamped to 0 for out-of-range lanes *)
  let idx =
    emit e
      (Builder.op e.b C.fptosi ~operands:[ xo ]
         ~results:[ Types.Vector (w, base) ]
         ())
  in
  let safe = select e mode inb idx zero_f ~base in
  let p =
    emit e
      (Builder.op e.b C.vgather_indexed ~operands:[ table; safe ]
         ~results:[ Types.Vector (w, base) ]
         ())
  in
  let zero_prob = const_f e mode (if is_log then Float.neg_infinity else 0.0) ~base in
  let r0 = select e mode inb p zero_prob ~base in
  if marginal then begin
    let isnan = cmp e mode "uno" x x in
    let one = const_f e mode (if is_log then 0.0 else 1.0) ~base in
    select e mode isnan one r0 ~base
  end
  else r0

(* Expand a histogram's sparse (breaks, densities) into a dense per-integer
   table covering [breaks.(0), breaks.(n)). *)
let expand_histogram ~breaks ~densities =
  let first = breaks.(0) and last = breaks.(Array.length breaks - 1) in
  let table = Array.make (last - first) 0.0 in
  Array.iteri
    (fun k d ->
      for v = breaks.(k) to breaks.(k + 1) - 1 do
        table.(v - first) <- d
      done)
    densities;
  (first, table)

(* -- Access-path emission --------------------------------------------------- *)

(* Linear index for element (sample=iv, slot) of a buffer whose dynamic
   row count is [rows_v]:
   transposed: slot * rows + iv        (slot-major)
   otherwise:  iv * cols + slot        (sample-major) *)
let linear_index e ~transposed ~iv ~slot ~cols ~rows_v =
  if transposed then
    let slot_c = const_i e slot in
    let off = emit e (C.binary e.b C.muli slot_c rows_v ~ty:Types.Index) in
    emit e (C.binary e.b C.addi off iv ~ty:Types.Index)
  else begin
    let cols_c = const_i e cols in
    let off = emit e (C.binary e.b C.muli iv cols_c ~ty:Types.Index) in
    let slot_c = const_i e slot in
    emit e (C.binary e.b C.addi off slot_c ~ty:Types.Index)
  end

let buffer_cols (v : Ir.value) =
  match v.Ir.vty with
  | Types.MemRef ([ _; Some c ], _) -> c
  | Types.MemRef ([ Some c; _ ], _) -> c
  | _ -> 1

(* Emit the read of (iv, slot) from [buf] in the given mode. *)
let emit_read e mode ~buf ~iv ~slot ~transposed ~rows_v ~base =
  let cols = buffer_cols buf in
  match mode with
  | Scalar ->
      let idx = linear_index e ~transposed ~iv ~slot ~cols ~rows_v in
      emit e (C.load_op e.b buf idx ~ty:base)
  | Vec w ->
      if transposed then begin
        (* consecutive samples of one slot are contiguous *)
        let idx = linear_index e ~transposed ~iv ~slot ~cols ~rows_v in
        emit e
          (Builder.op e.b C.vload ~operands:[ buf; idx ]
             ~results:[ Types.Vector (w, base) ]
             ())
      end
      else begin
        (* strided access across samples: gather, or loads+shuffles *)
        let idx = linear_index e ~transposed ~iv ~slot ~cols ~rows_v in
        if e.opts.use_shuffle then
          (* transposing a w-sample block in registers costs w contiguous
             loads plus w*log2(w) shuffles and yields w feature vectors:
             amortized per feature read, 1 load + log2(w) shuffles *)
          let loads_amortized = 1.0 in
          let shuffles = log (float_of_int (max 2 w)) /. log 2.0 in
          emit e
            (Builder.op e.b C.vshuffled_load ~operands:[ buf; idx ]
               ~results:[ Types.Vector (w, base) ]
               ~attrs:
                 [
                   ("stride", Attr.Int cols);
                   ("loads", Attr.Float loads_amortized);
                   ("shuffles", Attr.Float shuffles);
                 ]
               ())
        else
          emit e
            (Builder.op e.b C.vgather ~operands:[ buf; idx ]
               ~results:[ Types.Vector (w, base) ]
               ~attrs:[ ("stride", Attr.Int cols) ]
               ())
      end

let emit_write e mode ~buf ~iv ~slot ~transposed ~rows_v ~value =
  let cols = buffer_cols buf in
  let idx = linear_index e ~transposed ~iv ~slot ~cols ~rows_v in
  match mode with
  | Scalar -> emit_ e (C.store_op e.b buf idx value)
  | Vec _ ->
      if transposed then
        emit_ e (Builder.op e.b C.vstore ~operands:[ buf; idx; value ] ())
      else
        (* scatter: store lanes individually (no vector scatter modelled) *)
        invalid_arg "emit_write: vector store requires transposed layout"

(* -- Task body lowering ------------------------------------------------------ *)

(* Tables needed by the discrete leaves of a task are hoisted to the top
   of the task function; keyed per leaf op result id. *)
type tables = { mutable by_op : (int * Ir.value) list }

let hoist_tables e (task : Ir.op) ~is_log : tables =
  let tables = { by_op = [] } in
  let counter = ref 0 in
  Ir.walk_ops
    (fun (op : Ir.op) ->
      let add values =
        incr counter;
        let name = Printf.sprintf "table_%d_%d" (Ir.result op).Ir.vid !counter in
        let t = emit e (C.global_table_op e.b ~values ~name) in
        tables.by_op <- ((Ir.result op).Ir.vid, t) :: tables.by_op
      in
      if op.Ir.name = Spnc_lospn.Ops.categorical_name then begin
        let probs = Option.get (Ir.dense_attr op "probabilities") in
        (* probabilities were already log-transformed during LoSPN lowering
           when computing in log space *)
        ignore is_log;
        add probs
      end
      else if op.Ir.name = Spnc_lospn.Ops.histogram_name then begin
        let densities = Option.get (Ir.dense_attr op "densities") in
        let breaks =
          match Ir.attr op "buckets" with
          | Some (Attr.Array l) ->
              Array.of_list (List.map (fun a -> Option.get (Attr.as_int a)) l)
          | _ -> [||]
        in
        let _, table = expand_histogram ~breaks ~densities in
        add table
      end)
    task;
  tables

(* Lower the arithmetic ops of a lo_spn.body given an environment mapping
   LoSPN values to cir values. *)
let lower_body_ops e mode ~(env : (int, Ir.value) Hashtbl.t) ~tables ~base
    (ops : Ir.op list) : unit =
  let get (v : Ir.value) =
    match Hashtbl.find_opt env v.Ir.vid with
    | Some v' -> v'
    | None -> invalid_arg (Printf.sprintf "lower_cpu: unmapped value %%%d" v.Ir.vid)
  in
  let setr (op : Ir.op) value = Hashtbl.replace env (Ir.result op).Ir.vid value in
  List.iter
    (fun (op : Ir.op) ->
      e.cur_loc <- op.Ir.loc;
      let is_log =
        match op.Ir.results with
        | r :: _ -> (match r.Ir.vty with Types.Log _ -> true | _ -> false)
        | [] -> false
      in
      let marginal =
        Option.value ~default:false (Ir.bool_attr op "supportMarginal")
      in
      if op.Ir.name = Spnc_lospn.Ops.constant_name then
        setr op (const_f e mode (Option.get (Ir.float_attr op "value")) ~base)
      else if op.Ir.name = Spnc_lospn.Ops.mul_name then
        let l = get (Ir.operand_n op 0) and r = get (Ir.operand_n op 1) in
        setr op (bin e mode (if is_log then C.addf else C.mulf) l r ~base)
      else if op.Ir.name = Spnc_lospn.Ops.add_name then
        let l = get (Ir.operand_n op 0) and r = get (Ir.operand_n op 1) in
        setr op
          (if is_log then log_sum_exp e mode l r ~base
           else bin e mode C.addf l r ~base)
      else if op.Ir.name = Spnc_lospn.Ops.gaussian_name then
        let x = get (Ir.operand_n op 0) in
        setr op
          (gaussian e mode ~x
             ~mean:(Option.get (Ir.float_attr op "mean"))
             ~stddev:(Option.get (Ir.float_attr op "stddev"))
             ~is_log ~marginal ~base)
      else if op.Ir.name = Spnc_lospn.Ops.categorical_name then begin
        let x = get (Ir.operand_n op 0) in
        let table = List.assoc (Ir.result op).Ir.vid tables.by_op in
        let limit =
          Array.length (Option.get (Ir.dense_attr op "probabilities"))
        in
        let emit_lookup () =
          match mode with
          | Scalar ->
              discrete_scalar e ~table ~x ~shift:0.5 ~limit ~is_log ~marginal ~base
          | Vec w ->
              if e.opts.gather_tables then
                discrete_vector_gather e ~w ~table ~x ~shift:0.5 ~limit ~is_log
                  ~marginal ~base
              else
                discrete_vector e ~w ~table ~x ~shift:0.5 ~limit ~is_log
                  ~marginal ~base
        in
        setr op (emit_lookup ())
      end
      else if op.Ir.name = Spnc_lospn.Ops.histogram_name then begin
        let x = get (Ir.operand_n op 0) in
        let table = List.assoc (Ir.result op).Ir.vid tables.by_op in
        let breaks =
          match Ir.attr op "buckets" with
          | Some (Attr.Array l) ->
              Array.of_list (List.map (fun a -> Option.get (Attr.as_int a)) l)
          | _ -> [||]
        in
        let first = breaks.(0) in
        let limit = breaks.(Array.length breaks - 1) - first in
        let emit_lookup () =
          match mode with
          | Scalar ->
              discrete_scalar e ~table ~x ~shift:(-.float_of_int first) ~limit
                ~is_log ~marginal ~base
          | Vec w ->
              if e.opts.gather_tables then
                discrete_vector_gather e ~w ~table ~x
                  ~shift:(-.float_of_int first) ~limit ~is_log ~marginal ~base
              else
                discrete_vector e ~w ~table ~x ~shift:(-.float_of_int first)
                  ~limit ~is_log ~marginal ~base
        in
        setr op (emit_lookup ())
      end
      else if op.Ir.name = Spnc_lospn.Ops.yield_name then ()
      else
        invalid_arg ("lower_cpu: unexpected op in body: " ^ op.Ir.name))
    ops

(* Emit the per-iteration work of a task: reads, body arithmetic, writes. *)
let lower_iteration e mode ~iv ~(arg_env : (int, Ir.value) Hashtbl.t)
    ~(rows_of : (int, Ir.value) Hashtbl.t) ~tables ~base (task_ops : Ir.op list)
    : unit =
  let env : (int, Ir.value) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (op : Ir.op) ->
      e.cur_loc <- op.Ir.loc;
      if op.Ir.name = Spnc_lospn.Ops.batch_read_name then begin
        let buf_lospn = Ir.operand_n op 0 in
        let buf = Hashtbl.find arg_env buf_lospn.Ir.vid in
        let transposed = Option.value ~default:false (Ir.bool_attr op "transposed") in
        let slot = Option.get (Ir.int_attr op "staticIndex") in
        let rows_v = Hashtbl.find rows_of buf.Ir.vid in
        let elem_base = scalar_of (Ir.result op).Ir.vty in
        let v = emit_read e mode ~buf ~iv ~slot ~transposed ~rows_v ~base:elem_base in
        Hashtbl.replace env (Ir.result op).Ir.vid v
      end
      else if op.Ir.name = Spnc_lospn.Ops.body_name then begin
        let blk = Option.get (Ir.entry_block op) in
        (* body args bind to the cir values of the body operands *)
        List.iter2
          (fun (barg : Ir.value) (operand : Ir.value) ->
            Hashtbl.replace env barg.Ir.vid (Hashtbl.find env operand.Ir.vid))
          blk.Ir.bargs op.Ir.operands;
        lower_body_ops e mode ~env ~tables ~base blk.Ir.bops;
        (* map body results from its yield *)
        let y =
          List.find (fun (o : Ir.op) -> o.Ir.name = Spnc_lospn.Ops.yield_name)
            blk.Ir.bops
        in
        List.iter2
          (fun (res : Ir.value) (yv : Ir.value) ->
            Hashtbl.replace env res.Ir.vid (Hashtbl.find env yv.Ir.vid))
          op.Ir.results y.Ir.operands
      end
      else if op.Ir.name = Spnc_lospn.Ops.batch_write_name then begin
        match op.Ir.operands with
        | buf_lospn :: _bi :: values ->
            let buf = Hashtbl.find arg_env buf_lospn.Ir.vid in
            let transposed =
              Option.value ~default:false (Ir.bool_attr op "transposed")
            in
            let rows_v = Hashtbl.find rows_of buf.Ir.vid in
            List.iteri
              (fun slot (v : Ir.value) ->
                emit_write e mode ~buf ~iv ~slot ~transposed ~rows_v
                  ~value:(Hashtbl.find env v.Ir.vid))
              values
        | _ -> invalid_arg "lower_cpu: malformed batch_write"
      end)
    task_ops

(* -- Task and kernel functions ------------------------------------------------ *)

let lower_task b opts (task : Ir.op) ~name : Ir.op =
  let tb = Option.get (Ir.entry_block task) in
  let arg_tys =
    List.map (fun (v : Ir.value) -> v.Ir.vty) (List.tl tb.Ir.bargs)
  in
  let ct =
    (* computation type: element of the output buffer (last arg) *)
    match List.rev arg_tys with
    | Types.MemRef (_, t) :: _ -> t
    | _ -> Types.F32
  in
  let base = Types.strip_log ct in
  let is_log = match ct with Types.Log _ -> true | _ -> false in
  let block =
    Builder.block b ~arg_tys (fun args ->
        let e = { b; opts; acc = []; cur_loc = Loc.Unknown } in
        (* bind LoSPN block args (minus the index) to function params *)
        let arg_env = Hashtbl.create 8 in
        List.iter2
          (fun (old_arg : Ir.value) (newv : Ir.value) ->
            Hashtbl.replace arg_env old_arg.Ir.vid newv)
          (List.tl tb.Ir.bargs) args;
        (* rows per buffer (dynamic dimension) *)
        let rows_of = Hashtbl.create 8 in
        List.iter
          (fun (arg : Ir.value) ->
            let d = emit e (C.dim_op b arg ~index:0) in
            Hashtbl.replace rows_of arg.Ir.vid d)
          args;
        let rows_v = Hashtbl.find rows_of (List.hd args).Ir.vid in
        let tables = hoist_tables e task ~is_log in
        let zero = const_i e 0 in
        let one = const_i e 1 in
        if opts.vectorize && opts.width > 1 then begin
          let w = opts.width in
          let w_c = const_i e w in
          (* vec_end = (rows / w) * w, computed as rows - rows mod w via
             integer ops: q = rows * 1 / w is unavailable (no divi); use
             muli on (rows / w) — emit a dedicated op for clarity *)
          let q =
            emit e
              (Builder.op b "arith.divi" ~operands:[ rows_v; w_c ]
                 ~results:[ Types.Index ] ())
          in
          let vec_end = emit e (C.binary b C.muli q w_c ~ty:Types.Index) in
          (* vector loop *)
          let vec_block =
            Builder.block b ~arg_tys:[ Types.Index ] (fun ivs ->
                let iv = List.hd ivs in
                let e' = { b; opts; acc = []; cur_loc = Loc.Unknown } in
                lower_iteration e' (Vec w) ~iv ~arg_env ~rows_of ~tables ~base
                  tb.Ir.bops;
                List.rev (Builder.op b C.yield () :: e'.acc))
          in
          emit_ e (C.for_op b ~lb:zero ~ub:vec_end ~step:w_c ~body_block:vec_block);
          (* scalar epilogue *)
          let epi_block =
            Builder.block b ~arg_tys:[ Types.Index ] (fun ivs ->
                let iv = List.hd ivs in
                let e' = { b; opts; acc = []; cur_loc = Loc.Unknown } in
                lower_iteration e' Scalar ~iv ~arg_env ~rows_of ~tables ~base
                  tb.Ir.bops;
                List.rev (Builder.op b C.yield () :: e'.acc))
          in
          emit_ e (C.for_op b ~lb:vec_end ~ub:rows_v ~step:one ~body_block:epi_block)
        end
        else begin
          let body_block =
            Builder.block b ~arg_tys:[ Types.Index ] (fun ivs ->
                let iv = List.hd ivs in
                let e' = { b; opts; acc = []; cur_loc = Loc.Unknown } in
                lower_iteration e' Scalar ~iv ~arg_env ~rows_of ~tables ~base
                  tb.Ir.bops;
                List.rev (Builder.op b C.yield () :: e'.acc))
          in
          emit_ e (C.for_op b ~lb:zero ~ub:rows_v ~step:one ~body_block)
        end;
        List.rev (Builder.op b C.return_ () :: e.acc))
  in
  C.func_op b ~sym_name:name ~block

(** [run ?options m] lowers every bufferized LoSPN kernel of [m] to a cir
    module with one function per task plus the kernel entry function. *)
let run ?(options = scalar_options) (m : Ir.modul) : Ir.modul =
  Spnc_cir.Ops.register ();
  let b = Builder.seed_from m in
  let out_ops = ref [] in
  List.iter
    (fun (kernel : Ir.op) ->
      if kernel.Ir.name = Spnc_lospn.Ops.kernel_name then begin
        let sym =
          Option.value ~default:"spn_kernel" (Ir.string_attr kernel "sym_name")
        in
        let kb = Option.get (Ir.entry_block kernel) in
        (* lower each task to a function *)
        let task_funcs = Hashtbl.create 8 in
        let counter = ref 0 in
        List.iter
          (fun (op : Ir.op) ->
            if op.Ir.name = Spnc_lospn.Ops.task_name then begin
              let name = Printf.sprintf "%s_task_%d" sym !counter in
              incr counter;
              let f = lower_task b options op ~name in
              out_ops := f :: !out_ops;
              Hashtbl.replace task_funcs op name
            end)
          kb.Ir.bops;
        (* kernel entry function *)
        let arg_tys = List.map (fun (v : Ir.value) -> v.Ir.vty) kb.Ir.bargs in
        let block =
          Builder.block b ~arg_tys (fun args ->
              let e = { b; opts = options; acc = []; cur_loc = Loc.Unknown } in
              let env = Hashtbl.create 16 in
              List.iter2
                (fun (old_arg : Ir.value) newv ->
                  Hashtbl.replace env old_arg.Ir.vid newv)
                kb.Ir.bargs args;
              let rows = emit e (C.dim_op b (List.hd args) ~index:0) in
              List.iter
                (fun (op : Ir.op) ->
                  if op.Ir.name = Spnc_lospn.Ops.alloc_name then begin
                    let res = Ir.result op in
                    let a =
                      emit e
                        (Builder.op b C.alloc ~operands:[ rows ]
                           ~results:[ res.Ir.vty ] ())
                    in
                    Hashtbl.replace env res.Ir.vid a
                  end
                  else if op.Ir.name = Spnc_lospn.Ops.dealloc_name then
                    emit_ e
                      (Builder.op b C.dealloc
                         ~operands:
                           [ Hashtbl.find env (Ir.operand_n op 0).Ir.vid ]
                         ())
                  else if op.Ir.name = Spnc_lospn.Ops.copy_name then
                    emit_ e
                      (Builder.op b C.copy
                         ~operands:
                           [
                             Hashtbl.find env (Ir.operand_n op 0).Ir.vid;
                             Hashtbl.find env (Ir.operand_n op 1).Ir.vid;
                           ]
                         ())
                  else if op.Ir.name = Spnc_lospn.Ops.task_name then
                    emit_ e
                      (C.call_op b
                         ~callee:(Hashtbl.find task_funcs op)
                         ~operands:
                           (List.map
                              (fun (v : Ir.value) -> Hashtbl.find env v.Ir.vid)
                              op.Ir.operands))
                  else if op.Ir.name = Spnc_lospn.Ops.return_name then ()
                  else
                    invalid_arg ("lower_cpu: unexpected kernel op " ^ op.Ir.name))
                kb.Ir.bops;
              List.rev (Builder.op b C.return_ () :: e.acc))
        in
        out_ops := C.func_op b ~sym_name:sym ~block :: !out_ops
      end
      else out_ops := kernel :: !out_ops)
    m.Ir.mops;
  Builder.modul ~name:m.Ir.mname (List.rev !out_ops)
