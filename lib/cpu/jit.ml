(** Jit — the closure-compiled execution engine over Lir (threaded code).

    The paper's central claim is that compiling SPNs to native kernels
    beats per-node dispatch (§V); {!Vm} is still a per-instruction
    [match] interpreter.  This module closes that gap within OCaml: a
    [Lir.modul] is compiled {e once} into a tree of closures — one
    closure per instruction, specialized on opcode and vector width, with
    every register index resolved at compile time — so the hot path is
    plain [fun fr -> ...] calls with zero tag matching, no per-lane
    opcode dispatch, and no array bounds checks on register files
    (indices are validated once at compile time).

    Compiled kernels are immutable and shareable across domains; all
    mutable execution state lives in a per-domain {!state} (a pool of
    register frames, one per function), so the multi-threaded runtime
    allocates frames once per worker instead of once per chunk.

    Semantics are differentially checked against {!Vm} (bit-identical
    output) by the test suite and [bin/spnc_fuzz]. *)

open Lir

(** Which CPU execution engine the runtime should use for a compiled
    kernel: the reference interpreter {!Vm} or this closure compiler. *)
type engine = Vm | Jit

let engine_to_string = function Vm -> "vm" | Jit -> "jit"

let engine_of_string = function
  | "vm" -> Some Vm
  | "jit" -> Some Jit
  | _ -> None

let trap fmt = Fmt.kstr (fun s -> raise (Vm.Trap s)) fmt

(** Per-domain execution frame.  [frames] points back at the owning
    state's pool so [CallFn] can fetch the callee's frame without
    threading the state through every closure. *)
type frame = {
  f : float array;
  i : int array;
  v : float array array;
  b : Vm.buffer array;
  frames : frame array;
}

type code = frame -> unit

type cfunc = {
  src : func;
  cparams : int array;  (** parameter buffer registers, by position *)
  code : code;  (** the whole body, fused into one closure tree *)
  init : code;
      (** promoted constants: run once per frame at state creation *)
  (* frame sizes: declared register counts widened to cover every index
     actually referenced, so closure bodies can use unchecked accesses *)
  fr_nf : int;
  fr_ni : int;
  fr_nv : int;
  fr_nb : int;
  fr_width : int;
}

type kernel = { cfuncs : cfunc array; centry : int }

type state = frame array

(* -- Register bounds ---------------------------------------------------------- *)

(* Widen the declared per-class register counts to cover every register
   index the body (and the parameter list) actually touches.  Frames
   sized from these bounds make the unchecked register accesses inside
   the compiled closures safe even for hand-assembled Lir whose declared
   counts are wrong. *)
let reg_bounds (fn : func) : int * int * int * int =
  let nf = ref fn.nf and ni = ref fn.ni and nv = ref fn.nv and nb = ref fn.nb in
  let bump (rc, r) =
    let cell =
      match rc with
      | Optimizer.F -> nf
      | Optimizer.I -> ni
      | Optimizer.V -> nv
      | Optimizer.B -> nb
    in
    if r >= !cell then cell := r + 1
  in
  let rec go body =
    Array.iter
      (fun ins ->
        List.iter bump (Optimizer.defs ins);
        List.iter bump (Optimizer.uses ins);
        match ins with Loop l -> go l.body | _ -> ())
      body
  in
  go fn.body;
  List.iter (fun p -> bump (Optimizer.B, p)) fn.params;
  (max 1 !nf, max 1 !ni, max 1 !nv, max 1 !nb)

(* -- Constant promotion ------------------------------------------------------- *)

(* A [ConstF]/[ConstI]/[VConst] whose destination register has exactly
   one definition in the whole function holds the same value from its
   first execution onward.  Such constants are promoted out of the body:
   they run once per frame when the execution state is created
   ([make_state]) instead of being re-materialized on every row-loop
   iteration — at -O1 (the default) nothing hoists loop-invariant code,
   so on real kernels constants are a large share of in-loop work.

   Promotion must not let a read observe the constant's value earlier
   than the interpreted semantics would (fresh registers read as zero
   until first written).  A candidate is rejected when any read of its
   register occurs before the defining instruction in program order, or
   outside the loop nest containing the definition — a zero-trip loop
   would leave the register unwritten for such a read. *)

module RSet = Set.Make (struct
  type t = Optimizer.rc * reg

  let compare = compare
end)

let promoted_regs (fn : func) : RSet.t =
  (* pass 1: definition counts, and which registers a const defines *)
  let ndefs = Hashtbl.create 64 in
  let const_def = Hashtbl.create 64 in
  let rec count body =
    Array.iter
      (fun ins ->
        List.iter
          (fun key ->
            Hashtbl.replace ndefs key
              (1 + Option.value ~default:0 (Hashtbl.find_opt ndefs key)))
          (Optimizer.defs ins);
        (match ins with
        | ConstF (d, _) -> Hashtbl.replace const_def (Optimizer.F, d) ()
        | ConstI (d, _) -> Hashtbl.replace const_def (Optimizer.I, d) ()
        | VConst (d, _) -> Hashtbl.replace const_def (Optimizer.V, d) ()
        | _ -> ());
        match ins with Loop l -> count l.body | _ -> ())
      body
  in
  count fn.body;
  let candidates =
    Hashtbl.fold
      (fun key () acc ->
        if Hashtbl.find_opt ndefs key = Some 1 then RSet.add key acc else acc)
      const_def RSet.empty
  in
  if RSet.is_empty candidates then candidates
  else begin
    (* pass 2: reject candidates whose value could be read before the
       defining instruction has executed.  [def_path] records the loop
       nest (path of loop ids) holding the single definition; a read is
       safe only after the def and within that same nest. *)
    let unsafe = ref RSet.empty in
    let def_path = Hashtbl.create 16 in
    let rec is_prefix p q =
      match (p, q) with
      | [], _ -> true
      | x :: p', y :: q' -> x = y && is_prefix p' q'
      | _ :: _, [] -> false
    in
    let next_loop = ref 0 in
    let rec scan path body =
      Array.iter
        (fun ins ->
          List.iter
            (fun key ->
              if RSet.mem key candidates then
                match Hashtbl.find_opt def_path key with
                | Some p when is_prefix p path -> ()
                | _ -> unsafe := RSet.add key !unsafe)
            (Optimizer.uses ins);
          List.iter
            (fun key ->
              if RSet.mem key candidates && not (Hashtbl.mem def_path key)
              then Hashtbl.replace def_path key path)
            (Optimizer.defs ins);
          match ins with
          | Loop l ->
              incr next_loop;
              scan (path @ [ !next_loop ]) l.body
          | _ -> ())
        body
    in
    scan [] fn.body;
    RSet.diff candidates !unsafe
  end

(* [promoted] as a predicate over instructions: true exactly for the
   single defining const of each promoted register. *)
let promotes (promoted : RSet.t) (ins : instr) : bool =
  match ins with
  | ConstF (d, _) -> RSet.mem (Optimizer.F, d) promoted
  | ConstI (d, _) -> RSet.mem (Optimizer.I, d) promoted
  | VConst (d, _) -> RSet.mem (Optimizer.V, d) promoted
  | _ -> false

(* Collect the promoted const instructions of a body, in program order. *)
let rec collect_promoted (promoted : RSet.t) acc (body : instr array) =
  Array.fold_left
    (fun acc ins ->
      let acc = if promotes promoted ins then ins :: acc else acc in
      match ins with Loop l -> collect_promoted promoted acc l.body | _ -> acc)
    acc body

(* -- Compilation --------------------------------------------------------------- *)

(* Fuse a straight-line sequence of closures into one closure: a balanced
   tree of [fun fr -> a fr; b fr] nodes with 4-wide leaves, so executing
   a body is direct calls only — no per-instruction array indexing and no
   dispatch loop. *)
let fuse (codes : code array) : code =
  let n = Array.length codes in
  fun fr ->
    for k = 0 to n - 1 do
      (Array.unsafe_get codes k) fr
    done

(* Unchecked register-file accessors: indices were bounds-validated at
   compile time against the frame sizes in [reg_bounds]. *)
let[@inline] gf fr r = Array.unsafe_get fr.f r
let[@inline] sf fr r x = Array.unsafe_set fr.f r x
let[@inline] gi fr r = Array.unsafe_get fr.i r
let[@inline] si fr r x = Array.unsafe_set fr.i r x
let[@inline] gv fr r = Array.unsafe_get fr.v r
let[@inline] gb fr r = Array.unsafe_get fr.b r

let rec compile_instr (k : kernel) ~skip ~w ~prof (ins : instr) : code =
  ignore (prof : instr -> Profile.cell option);
  match ins with
  | ConstF (d, x) -> fun fr -> sf fr d x
  | ConstI (d, x) -> fun fr -> si fr d x
  (* scalar float binops, specialized per opcode *)
  | FBin (FAdd, d, a, b) -> fun fr -> sf fr d (gf fr a +. gf fr b)
  | FBin (FSub, d, a, b) -> fun fr -> sf fr d (gf fr a -. gf fr b)
  | FBin (FMul, d, a, b) -> fun fr -> sf fr d (gf fr a *. gf fr b)
  | FBin (FDiv, d, a, b) -> fun fr -> sf fr d (gf fr a /. gf fr b)
  | FBin (FMax, d, a, b) -> fun fr -> sf fr d (Float.max (gf fr a) (gf fr b))
  | FBin (FMin, d, a, b) -> fun fr -> sf fr d (Float.min (gf fr a) (gf fr b))
  | FBin (FMA, _, _, _) ->
      fun _ -> trap "binary FMA (addend dropped by a malformed instruction)"
  | FBin3 (_, d, a, b, c) ->
      fun fr -> sf fr d ((gf fr a *. gf fr b) +. gf fr c)
  | IBin (IAdd, d, a, b) -> fun fr -> si fr d (gi fr a + gi fr b)
  | IBin (IMul, d, a, b) -> fun fr -> si fr d (gi fr a * gi fr b)
  | IBin (IDiv, d, a, b) ->
      fun fr ->
        let y = gi fr b in
        si fr d (if y = 0 then 0 else gi fr a / y)
  | IBin (IAnd, d, a, b) ->
      fun fr -> si fr d (if gi fr a <> 0 && gi fr b <> 0 then 1 else 0)
  | IBin (IOr, d, a, b) ->
      fun fr -> si fr d (if gi fr a <> 0 || gi fr b <> 0 then 1 else 0)
  | FCmp (p, d, a, b) -> compile_fcmp p d a b
  | SelF (d, c, t, e) ->
      fun fr -> sf fr d (if gi fr c <> 0 then gf fr t else gf fr e)
  | SelI (d, c, t, e) ->
      fun fr -> si fr d (if gi fr c <> 0 then gi fr t else gi fr e)
  | FtoI (d, a) -> fun fr -> si fr d (int_of_float (Float.floor (gf fr a)))
  | ItoF (d, a) -> fun fr -> sf fr d (float_of_int (gi fr a))
  | Call1 (MLog, d, a) -> fun fr -> sf fr d (log (gf fr a))
  | Call1 (MExp, d, a) -> fun fr -> sf fr d (exp (gf fr a))
  | Call1 (MLog1p, d, a) -> fun fr -> sf fr d (Float.log1p (gf fr a))
  | Load (d, bb, idx) ->
      fun fr ->
        let buf = gb fr bb in
        let ix = gi fr idx in
        if ix < 0 || ix >= buf.Vm.len then
          trap "load out of bounds: %d/%d" ix buf.Vm.len;
        sf fr d (Array.unsafe_get buf.Vm.data (buf.Vm.off + ix))
  | Store (bb, idx, s) ->
      fun fr ->
        let buf = gb fr bb in
        let ix = gi fr idx in
        if ix < 0 || ix >= buf.Vm.len then
          trap "store out of bounds: %d/%d" ix buf.Vm.len;
        Array.unsafe_set buf.Vm.data (buf.Vm.off + ix) (gf fr s)
  | VConst (d, x) ->
      fun fr ->
        let vd = gv fr d in
        Array.fill vd 0 (Array.length vd) x
  | VBin (op, d, a, b) -> compile_vbin ~w op d a b
  | VBin3 (_, d, a, b, c) ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vc = gv fr c and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l
            ((Array.unsafe_get va l *. Array.unsafe_get vb l)
            +. Array.unsafe_get vc l)
        done
  | VCmp (p, d, a, b) -> compile_vcmp p d a b
  | VSel (d, c, t, e) ->
      fun fr ->
        let vc = gv fr c and vt = gv fr t and ve = gv fr e and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l
            (if Array.unsafe_get vc l <> 0.0 then Array.unsafe_get vt l
             else Array.unsafe_get ve l)
        done
  | VCall1 (MLog, d, a) ->
      fun fr ->
        let va = gv fr a and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l (log (Array.unsafe_get va l))
        done
  | VCall1 (MExp, d, a) ->
      fun fr ->
        let va = gv fr a and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l (exp (Array.unsafe_get va l))
        done
  | VCall1 (MLog1p, d, a) ->
      fun fr ->
        let va = gv fr a and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l (Float.log1p (Array.unsafe_get va l))
        done
  | VLoad (d, bb, idx) ->
      fun fr ->
        let buf = gb fr bb in
        let base = gi fr idx in
        let vd = gv fr d in
        let w = Array.length vd in
        if base < 0 || base + w > buf.Vm.len then trap "vload out of bounds";
        Array.blit buf.Vm.data (buf.Vm.off + base) vd 0 w
  | VStore (bb, idx, s) ->
      fun fr ->
        let buf = gb fr bb in
        let base = gi fr idx in
        let vs = gv fr s in
        let w = Array.length vs in
        if base < 0 || base + w > buf.Vm.len then trap "vstore out of bounds";
        Array.blit vs 0 buf.Vm.data (buf.Vm.off + base) w
  | VGather (d, bb, idx, stride) | VShufLoad (d, bb, idx, stride, _, _) ->
      fun fr ->
        let buf = gb fr bb in
        let base = gi fr idx in
        let vd = gv fr d in
        let w = Array.length vd in
        (* one range check for the whole strided access pattern *)
        let last = base + ((w - 1) * stride) in
        if base < 0 || last < 0 || base >= buf.Vm.len || last >= buf.Vm.len
        then trap "gather out of bounds";
        let data = buf.Vm.data and off = buf.Vm.off in
        for l = 0 to w - 1 do
          Array.unsafe_set vd l (Array.unsafe_get data (off + base + (l * stride)))
        done
  | VFloor (d, a) ->
      fun fr ->
        let va = gv fr a and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l
            (Float.of_int (int_of_float (Float.floor (Array.unsafe_get va l))))
        done
  | VGatherIdx (d, bb, idx) ->
      fun fr ->
        let buf = gb fr bb in
        let vi = gv fr idx in
        let vd = gv fr d in
        let data = buf.Vm.data and off = buf.Vm.off and len = buf.Vm.len in
        for l = 0 to Array.length vd - 1 do
          let ix = int_of_float (Array.unsafe_get vi l) in
          if ix < 0 || ix >= len then trap "gather_indexed out of bounds: %d" ix;
          Array.unsafe_set vd l (Array.unsafe_get data (off + ix))
        done
  | VExtract (d, a, lane) -> fun fr -> sf fr d (gv fr a).(lane)
  | VInsert (d, s, a, lane) ->
      fun fr ->
        let vd = gv fr d and va = gv fr a in
        if vd != va then Array.blit va 0 vd 0 (Array.length vd);
        vd.(lane) <- gf fr s
  | VBroadcast (d, s) ->
      fun fr ->
        let vd = gv fr d in
        Array.fill vd 0 (Array.length vd) (gf fr s)
  | Dim (d, bb) -> fun fr -> si fr d (gb fr bb).Vm.rows
  | AllocBuf (d, rows, cols) ->
      fun fr -> fr.b.(d) <- Vm.buffer ~rows:(gi fr rows) ~cols
  | DeallocBuf _ -> fun _ -> ()
  | CopyBuf (src, dst) ->
      fun fr ->
        let s = gb fr src and d = gb fr dst in
        Array.blit s.Vm.data s.Vm.off d.Vm.data d.Vm.off s.Vm.len
  | TableConst (d, values) ->
      let table =
        {
          Vm.data = values;
          off = 0;
          len = Array.length values;
          rows = Array.length values;
          cols = 1;
        }
      in
      fun fr -> fr.b.(d) <- table
  | CallFn (idx, args) ->
      let args = Array.of_list args in
      let nargs = Array.length args in
      fun fr ->
        (* [k.cfuncs] is filled after all functions compile, so the
           lookup happens at call time — one array load *)
        let callee = Array.unsafe_get k.cfuncs idx in
        let cfr = fr.frames.(idx) in
        let cparams = callee.cparams in
        if nargs > Array.length cparams then
          trap "call to %s: %d arguments for %d parameters" callee.src.fname
            nargs (Array.length cparams);
        for pi = 0 to nargs - 1 do
          cfr.b.(Array.unsafe_get cparams pi) <- fr.b.(Array.unsafe_get args pi)
        done;
        callee.code cfr
  | Loop l ->
      let body = compile_body k ~skip ~w ~prof l.body in
      let iv = l.iv and lb = l.lb and ub = l.ub and step = l.step in
      if step = 1 then
        fun fr ->
          for j = gi fr lb to gi fr ub - 1 do
            si fr iv j;
            body fr
          done
      else
        fun fr ->
          let hi = gi fr ub in
          let j = ref (gi fr lb) in
          while !j < hi do
            si fr iv !j;
            body fr;
            j := !j + step
          done
  | Ret -> fun _ -> ()

and compile_vbin ~w (op : fbin) d a b : code =
  (* [w = 8] (the AVX2 width, the paper's best CPU configuration) gets
     fully unrolled lane bodies: on add/mul-dominated SPN kernels the
     lane-loop increment/compare/branch overhead is a third of the cost
     of the op itself.  Other widths keep the generic lane loop. *)
  match (op, w) with
  | FAdd, 8 ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        Array.unsafe_set vd 0 (Array.unsafe_get va 0 +. Array.unsafe_get vb 0);
        Array.unsafe_set vd 1 (Array.unsafe_get va 1 +. Array.unsafe_get vb 1);
        Array.unsafe_set vd 2 (Array.unsafe_get va 2 +. Array.unsafe_get vb 2);
        Array.unsafe_set vd 3 (Array.unsafe_get va 3 +. Array.unsafe_get vb 3);
        Array.unsafe_set vd 4 (Array.unsafe_get va 4 +. Array.unsafe_get vb 4);
        Array.unsafe_set vd 5 (Array.unsafe_get va 5 +. Array.unsafe_get vb 5);
        Array.unsafe_set vd 6 (Array.unsafe_get va 6 +. Array.unsafe_get vb 6);
        Array.unsafe_set vd 7 (Array.unsafe_get va 7 +. Array.unsafe_get vb 7)
  | FSub, 8 ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        Array.unsafe_set vd 0 (Array.unsafe_get va 0 -. Array.unsafe_get vb 0);
        Array.unsafe_set vd 1 (Array.unsafe_get va 1 -. Array.unsafe_get vb 1);
        Array.unsafe_set vd 2 (Array.unsafe_get va 2 -. Array.unsafe_get vb 2);
        Array.unsafe_set vd 3 (Array.unsafe_get va 3 -. Array.unsafe_get vb 3);
        Array.unsafe_set vd 4 (Array.unsafe_get va 4 -. Array.unsafe_get vb 4);
        Array.unsafe_set vd 5 (Array.unsafe_get va 5 -. Array.unsafe_get vb 5);
        Array.unsafe_set vd 6 (Array.unsafe_get va 6 -. Array.unsafe_get vb 6);
        Array.unsafe_set vd 7 (Array.unsafe_get va 7 -. Array.unsafe_get vb 7)
  | FMul, 8 ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        Array.unsafe_set vd 0 (Array.unsafe_get va 0 *. Array.unsafe_get vb 0);
        Array.unsafe_set vd 1 (Array.unsafe_get va 1 *. Array.unsafe_get vb 1);
        Array.unsafe_set vd 2 (Array.unsafe_get va 2 *. Array.unsafe_get vb 2);
        Array.unsafe_set vd 3 (Array.unsafe_get va 3 *. Array.unsafe_get vb 3);
        Array.unsafe_set vd 4 (Array.unsafe_get va 4 *. Array.unsafe_get vb 4);
        Array.unsafe_set vd 5 (Array.unsafe_get va 5 *. Array.unsafe_get vb 5);
        Array.unsafe_set vd 6 (Array.unsafe_get va 6 *. Array.unsafe_get vb 6);
        Array.unsafe_set vd 7 (Array.unsafe_get va 7 *. Array.unsafe_get vb 7)
  | FMax, 8 ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        Array.unsafe_set vd 0
          (Float.max (Array.unsafe_get va 0) (Array.unsafe_get vb 0));
        Array.unsafe_set vd 1
          (Float.max (Array.unsafe_get va 1) (Array.unsafe_get vb 1));
        Array.unsafe_set vd 2
          (Float.max (Array.unsafe_get va 2) (Array.unsafe_get vb 2));
        Array.unsafe_set vd 3
          (Float.max (Array.unsafe_get va 3) (Array.unsafe_get vb 3));
        Array.unsafe_set vd 4
          (Float.max (Array.unsafe_get va 4) (Array.unsafe_get vb 4));
        Array.unsafe_set vd 5
          (Float.max (Array.unsafe_get va 5) (Array.unsafe_get vb 5));
        Array.unsafe_set vd 6
          (Float.max (Array.unsafe_get va 6) (Array.unsafe_get vb 6));
        Array.unsafe_set vd 7
          (Float.max (Array.unsafe_get va 7) (Array.unsafe_get vb 7))
  | FAdd, _ ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l (Array.unsafe_get va l +. Array.unsafe_get vb l)
        done
  | FSub, _ ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l (Array.unsafe_get va l -. Array.unsafe_get vb l)
        done
  | FMul, _ ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l (Array.unsafe_get va l *. Array.unsafe_get vb l)
        done
  | FDiv, _ ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l (Array.unsafe_get va l /. Array.unsafe_get vb l)
        done
  | FMax, _ ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l
            (Float.max (Array.unsafe_get va l) (Array.unsafe_get vb l))
        done
  | FMin, _ ->
      fun fr ->
        let va = gv fr a and vb = gv fr b and vd = gv fr d in
        for l = 0 to Array.length vd - 1 do
          Array.unsafe_set vd l
            (Float.min (Array.unsafe_get va l) (Array.unsafe_get vb l))
        done
  | FMA, _ ->
      fun _ -> trap "binary FMA (addend dropped by a malformed instruction)"

and compile_fcmp (p : pred) d a b : code =
  let cmp test fr = si fr d (if test (gf fr a) (gf fr b) then 1 else 0) in
  (* monomorphic comparators: the polymorphic ones would box *)
  match p with
  | Olt -> cmp (fun (x : float) y -> x < y)
  | Ole -> cmp (fun (x : float) y -> x <= y)
  | Ogt -> cmp (fun (x : float) y -> x > y)
  | Oge -> cmp (fun (x : float) y -> x >= y)
  | Oeq -> cmp (fun (x : float) y -> x = y)
  | One ->
      cmp (fun (x : float) y ->
          x <> y && not (Float.is_nan x || Float.is_nan y))
  | Uno -> cmp (fun (x : float) y -> Float.is_nan x || Float.is_nan y)

and compile_vcmp (p : pred) d a b : code =
  let mask test fr =
    let va = gv fr a and vb = gv fr b and vd = gv fr d in
    for l = 0 to Array.length vd - 1 do
      Array.unsafe_set vd l
        (if test (Array.unsafe_get va l) (Array.unsafe_get vb l) then 1.0
         else 0.0)
    done
  in
  (* monomorphic comparators: the polymorphic ones would box *)
  match p with
  | Olt -> mask (fun (x : float) y -> x < y)
  | Ole -> mask (fun (x : float) y -> x <= y)
  | Ogt -> mask (fun (x : float) y -> x > y)
  | Oge -> mask (fun (x : float) y -> x >= y)
  | Oeq -> mask (fun (x : float) y -> x = y)
  | One ->
      mask (fun (x : float) y ->
          x <> y && not (Float.is_nan x || Float.is_nan y))
  | Uno -> mask (fun (x : float) y -> Float.is_nan x || Float.is_nan y)

and compile_body (k : kernel) ~skip ~w ~prof (body : instr array) : code =
  let kept =
    Array.of_seq (Seq.filter (fun i -> not (skip i)) (Array.to_seq body))
  in
  fuse
    (Array.map
       (fun ins ->
         let c = compile_instr k ~skip ~w ~prof ins in
         (* profiled compile: each closure first bumps its pre-resolved
            (node, opcode) cell — one Atomic.incr, no lookup at run time *)
         match prof ins with
         | None -> c
         | Some cell ->
             fun fr ->
               Profile.bump cell;
               c fr)
       kept)

let no_skip (_ : instr) = false
let no_prof (_ : instr) = None

let compile_func ?profile (k : kernel) (fn : func) : cfunc =
  let fr_nf, fr_ni, fr_nv, fr_nb = reg_bounds fn in
  (* [w] is the exact lane count of every vector register in this
     function's frame ([make_state] sizes them from [fr_width]), which is
     what makes the width-specialized unchecked lane accesses safe *)
  let w = max 1 fn.vec_width in
  let promoted = promoted_regs fn in
  let skip = if RSet.is_empty promoted then no_skip else promotes promoted in
  let prof =
    match profile with
    | None -> no_prof
    | Some p -> fun ins -> Some (Profile.cell_for p fn ins)
  in
  let init_instrs =
    Array.of_list (List.rev (collect_promoted promoted [] fn.body))
  in
  {
    src = fn;
    cparams = Array.of_list fn.params;
    code = compile_body k ~skip ~w ~prof fn.body;
    (* init runs once per state, outside any profiled execution *)
    init =
      fuse (Array.map (compile_instr k ~skip:no_skip ~w ~prof:no_prof) init_instrs);
    fr_nf;
    fr_ni;
    fr_nv;
    fr_nb;
    fr_width = w;
  }

(** [compile ?profile m] — compile the module once into closures.  The
    result is immutable and safe to share across domains; pair it with
    one {!make_state} per domain to execute.  With [profile], every
    compiled instruction closure first bumps its pre-resolved
    per-SPN-node cell ({!Profile}); without it, the generated code is
    byte-identical to before — the default path pays nothing. *)
let compile ?profile (m : modul) : kernel =
  (* tie the knot: CallFn closures capture [k] and index [cfuncs] at call
     time, so the placeholders can be replaced after each function
     compiles — by run time every slot holds its real cfunc *)
  let placeholder fn =
    { src = fn; cparams = [||]; code = (fun _ -> ()); init = (fun _ -> ());
      fr_nf = 1; fr_ni = 1; fr_nv = 1; fr_nb = 1; fr_width = 1 }
  in
  let k = { cfuncs = Array.map placeholder m.funcs; centry = m.entry } in
  Array.iteri (fun i fn -> k.cfuncs.(i) <- compile_func ?profile k fn) m.funcs;
  k

(* -- Execution state ----------------------------------------------------------- *)

(* registered once; [run] is per-chunk so it must not hit the registry *)
let frame_reuse_counter = Spnc_obs.Metrics.counter "cpu.jit.frame_runs"

(** [make_state k] — a per-domain pool of register frames, one per
    function.  Frames are reused across runs (and across the runtime's
    chunks): compiled kernels define every register before reading it, so
    no per-run zeroing is needed. *)
let make_state (k : kernel) : state =
  Spnc_obs.Metrics.(counter_incr (counter "cpu.jit.states_created"));
  let n = Array.length k.cfuncs in
  let empty_buf = { Vm.data = [||]; off = 0; len = 0; rows = 0; cols = 0 } in
  let dummy = { f = [||]; i = [||]; v = [||]; b = [||]; frames = [||] } in
  let frames = Array.make n dummy in
  Array.iteri
    (fun ix cf ->
      frames.(ix) <-
        {
          f = Array.make cf.fr_nf 0.0;
          i = Array.make cf.fr_ni 0;
          v = Array.init cf.fr_nv (fun _ -> Array.make cf.fr_width 0.0);
          b = Array.make cf.fr_nb empty_buf;
          frames;
        })
    k.cfuncs;
  (* run the promoted constants once — the body never re-materializes them *)
  Array.iteri (fun ix cf -> cf.init frames.(ix)) k.cfuncs;
  frames

(** [run k st ~buffers] executes the compiled entry function, binding
    [buffers] to its parameters in order.  [st] must not be shared
    between concurrently running domains.
    @raise Vm.Trap on runtime errors. *)
let run (k : kernel) (st : state) ~(buffers : Vm.buffer list) : unit =
  (* runs / states_created is the frame-pool reuse ratio: with the
     streaming runtime it should grow with call count while
     states_created stays at one per worker slot *)
  Spnc_obs.Metrics.counter_incr frame_reuse_counter;
  let entry = k.cfuncs.(k.centry) in
  let fr = st.(k.centry) in
  if List.length buffers <> Array.length entry.cparams then
    trap "entry %s expects %d buffers, got %d" entry.src.fname
      (Array.length entry.cparams)
      (List.length buffers);
  List.iteri (fun pi buf -> fr.b.(entry.cparams.(pi)) <- buf) buffers;
  entry.code fr

(** [run_once m ~buffers] — compile + run in one shot (tests, one-off
    executions).  Production callers should {!compile} once and reuse. *)
let run_once (m : modul) ~(buffers : Vm.buffer list) : unit =
  let k = compile m in
  run k (make_state k) ~buffers
