(** Execution-time estimation for compiled CPU kernels: prices the actual
    Lir instruction stream under a machine description — the source of
    the ISA-specific execution times in Figs. 6–8 and 10–13 (DESIGN.md
    §1 explains why this substitution preserves the paper's shapes). *)

module M = Spnc_machine.Machine

(** Amortized throughput-flavoured cost in cycles of one instruction
    (used by the per-node profiler to weight hit counts). *)
val instr_cycles : M.cpu -> Lir.instr -> float

type estimate = {
  cycles : float;
  seconds : float;  (** single-threaded *)
  spill_cycles : float;  (** contribution of register-spill traffic *)
}

(** [kernel_estimate cpu m ?regalloc ~rows ()] — one execution of the
    entry function over [rows] samples; [regalloc] stats add spill
    traffic. *)
val kernel_estimate :
  M.cpu -> Lir.modul -> ?regalloc:Regalloc.stats array -> rows:int -> unit -> estimate

(** [threaded_seconds est ~threads] applies the runtime's chunked
    multi-threading at 90% parallel efficiency. *)
val threaded_seconds : estimate -> threads:int -> float
