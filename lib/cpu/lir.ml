(** Lir — the LLVM-like low-level IR of the CPU backend.

    Linear instruction sequences over typed virtual registers, with
    structured loops retained (a simplification over LLVM's flat CFG,
    recorded in DESIGN.md §4; SPN kernels have no other control flow).

    Register classes: [F] scalar floats, [I] integers/indices/predicates
    (predicates hold 0/1), [V] SIMD vectors (predicate masks are 0/1 float
    lanes), [B] buffers.  Each class has its own register space; register
    allocation runs per class. *)

type reg = int

type fbin = FAdd | FSub | FMul | FDiv | FMax | FMin | FMA
(** [FMA dst a b] in our encoding is fused multiply-add created by the -O3
    peephole; see {!Optimizer}. *)

type ibin = IAdd | IMul | IDiv | IAnd | IOr

type pred = Olt | Ole | Ogt | Oge | Oeq | One | Uno

type mathfn = MLog | MExp | MLog1p

type instr =
  | ConstF of reg * float
  | ConstI of reg * int
  | FBin of fbin * reg * reg * reg  (** dst, a, b *)
  | FBin3 of fbin * reg * reg * reg * reg  (** FMA: dst, a, b, c = a*b+c *)
  | IBin of ibin * reg * reg * reg
  | FCmp of pred * reg * reg * reg  (** int dst (0/1), a, b *)
  | SelF of reg * reg * reg * reg  (** float dst, int cond, t, f *)
  | SelI of reg * reg * reg * reg  (** int dst, int cond, t, f *)
  | FtoI of reg * reg
  | ItoF of reg * reg
  | Call1 of mathfn * reg * reg  (** scalar libm call: dst, src *)
  | Load of reg * reg * reg  (** float dst, buf, int idx *)
  | Store of reg * reg * reg  (** buf, int idx, float src *)
  (* vector instructions; vector registers are the V class *)
  | VConst of reg * float
  | VBin of fbin * reg * reg * reg
  | VBin3 of fbin * reg * reg * reg * reg
  | VCmp of pred * reg * reg * reg  (** vec mask dst *)
  | VSel of reg * reg * reg * reg  (** vec dst, vec mask, t, f *)
  | VCall1 of mathfn * reg * reg  (** veclib vectorized call *)
  | VLoad of reg * reg * reg  (** vec dst, buf, int base *)
  | VStore of reg * reg * reg
  | VGather of reg * reg * reg * int  (** vec dst, buf, base, stride *)
  | VShufLoad of reg * reg * reg * int * float * float
      (** vec dst, buf, base, stride, amortized loads, amortized shuffles *)
  | VFloor of reg * reg
      (** vec dst = lane-wise floor of vec src (vector fptosi producing
          float-encoded indices) *)
  | VGatherIdx of reg * reg * reg
      (** vec dst, table buf, index vector (floored floats): per-lane
          indexed gather for vectorized discrete-leaf lookups *)
  | VExtract of reg * reg * int  (** float dst, vec, lane *)
  | VInsert of reg * reg * reg * int  (** vec dst, float src, vec in, lane *)
  | VBroadcast of reg * reg  (** vec dst, float src *)
  (* memory/runtime *)
  | Dim of reg * reg  (** int dst = rows of buffer *)
  | AllocBuf of reg * reg * int  (** buf dst, int rows, static cols *)
  | DeallocBuf of reg
  | CopyBuf of reg * reg  (** src, dst *)
  | TableConst of reg * float array  (** buf dst = constant table *)
  | CallFn of int * reg list  (** function index, buffer arguments *)
  | Loop of loop
  | Ret

and loop = {
  iv : reg;  (** int induction variable *)
  lb : reg;
  ub : reg;
  step : int;
  body : instr array;
  vector_width : int;  (** 1 for scalar loops; >1 for the vectorized loop *)
}

(** Per-register provenance: the SPN-node location of the op that minted
    each virtual register, one array per register class (indexed by
    register number).  Registers are SSA-like — minted once by {!Isel} and
    preserved by the optimizer (which only rewrites instruction bodies via
    [{f with body}]) — so a (class, reg) pair identifies its defining
    instruction's provenance for the whole pipeline, including inside the
    JIT/VM where the MLIR op is long gone. *)
type prov = {
  pf : Spnc_mlir.Loc.t array;
  pi : Spnc_mlir.Loc.t array;
  pv : Spnc_mlir.Loc.t array;
  pb : Spnc_mlir.Loc.t array;
}

(** Empty provenance, for hand-built funcs (tests, fixtures). *)
let no_prov = { pf = [||]; pi = [||]; pv = [||]; pb = [||] }

(** [prov_reg a r] — location of register [r], Unknown when out of bounds
    (hand-built funcs carry empty arrays). *)
let prov_reg (a : Spnc_mlir.Loc.t array) (r : reg) : Spnc_mlir.Loc.t =
  if r >= 0 && r < Array.length a then a.(r) else Spnc_mlir.Loc.Unknown

type func = {
  fname : string;
  params : reg list;  (** buffer registers, in order *)
  body : instr array;
  nf : int;  (** register counts per class *)
  ni : int;
  nv : int;
  nb : int;
  vec_width : int;  (** SIMD width used by vector instrs of this function *)
  prov : prov;  (** per-register SPN-node provenance *)
}

type modul = { funcs : func array; entry : int }

let find_func (m : modul) name =
  let found = ref None in
  Array.iteri (fun i f -> if f.fname = name then found := Some i) m.funcs;
  !found

(* -- Statistics (used by tests and reports) -------------------------------- *)

let rec count_instrs ?(filter = fun _ -> true) (body : instr array) =
  Array.fold_left
    (fun acc i ->
      let self = if filter i then 1 else 0 in
      match i with
      | Loop l -> acc + self + count_instrs ~filter l.body
      | _ -> acc + self)
    0 body

let func_size f = count_instrs f.body

let module_size (m : modul) =
  Array.fold_left (fun acc f -> acc + func_size f) 0 m.funcs

let pp_fbin ppf (op : fbin) =
  Fmt.string ppf
    (match op with
    | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"
    | FMax -> "fmax" | FMin -> "fmin" | FMA -> "fma")

let pp_mathfn ppf (f : mathfn) =
  Fmt.string ppf (match f with MLog -> "log" | MExp -> "exp" | MLog1p -> "log1p")
