(** Instruction selection: cir functions → Lir (paper §IV-B's "translated
    to LLVM IR").

    The translation is deliberately naive — redundant constants, address
    arithmetic and table materializations inside loop bodies are emitted
    as-is.  This is the [-O0] code; {!Optimizer} cleans it up at higher
    levels, reproducing the compile-time/execution-time trade-off of
    Figs. 11/13. *)

open Spnc_mlir

exception Unsupported of string

let fail fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

type cls = CF | CI | CV | CB

let class_of_type (t : Types.t) : cls =
  match t with
  | Types.F32 | Types.F64 | Types.Log _ -> CF
  | Types.Index | Types.Bool | Types.Int _ -> CI
  | Types.Vector (_, Types.Bool) -> CV  (* predicate masks live in V *)
  | Types.Vector _ -> CV
  | Types.MemRef _ | Types.Tensor _ -> CB
  | t -> fail "isel: no register class for type %s" (Types.to_string t)

type st = {
  mutable nf : int;
  mutable ni : int;
  mutable nv : int;
  mutable nb : int;
  regs : (int, cls * Lir.reg) Hashtbl.t;  (** cir value id -> register *)
  const_ints : (int, int) Hashtbl.t;  (** int registers with known value *)
  func_index : (string, int) Hashtbl.t;
  mutable max_vec_width : int;
  reg_locs : (cls * Lir.reg, Loc.t) Hashtbl.t;
      (** provenance of each minted register (from the defining cir op) *)
  mutable cur_loc : Loc.t;  (** location of the op being selected *)
}

let fresh st (c : cls) : Lir.reg =
  match c with
  | CF ->
      let r = st.nf in
      st.nf <- st.nf + 1;
      r
  | CI ->
      let r = st.ni in
      st.ni <- st.ni + 1;
      r
  | CV ->
      let r = st.nv in
      st.nv <- st.nv + 1;
      r
  | CB ->
      let r = st.nb in
      st.nb <- st.nb + 1;
      r

let reg_of st (v : Ir.value) : Lir.reg =
  match Hashtbl.find_opt st.regs v.Ir.vid with
  | Some (_, r) -> r
  | None -> fail "isel: value %%%d has no register" v.Ir.vid

let def st (v : Ir.value) : Lir.reg =
  let c = class_of_type v.Ir.vty in
  let r = fresh st c in
  Hashtbl.replace st.regs v.Ir.vid (c, r);
  if Loc.is_known st.cur_loc then Hashtbl.replace st.reg_locs (c, r) st.cur_loc;
  r

let is_vec (v : Ir.value) = match v.Ir.vty with Types.Vector _ -> true | _ -> false

let fbin_of = function
  | "arith.addf" -> Lir.FAdd
  | "arith.subf" -> Lir.FSub
  | "arith.mulf" -> Lir.FMul
  | "arith.divf" -> Lir.FDiv
  | "arith.maxf" -> Lir.FMax
  | "arith.minf" -> Lir.FMin
  | n -> fail "isel: not a float binop: %s" n

let pred_of = function
  | "olt" -> Lir.Olt
  | "ole" -> Lir.Ole
  | "ogt" -> Lir.Ogt
  | "oge" -> Lir.Oge
  | "oeq" -> Lir.Oeq
  | "one" -> Lir.One
  | "uno" -> Lir.Uno
  | p -> fail "isel: unknown predicate %s" p

let mathfn_of = function
  | "math.log" -> Lir.MLog
  | "math.exp" -> Lir.MExp
  | "math.log1p" -> Lir.MLog1p
  | n -> fail "isel: unknown math fn %s" n

let rec sel_ops st (ops : Ir.op list) : Lir.instr list =
  List.concat_map (sel_op st) ops

and sel_op st (op : Ir.op) : Lir.instr list =
  st.cur_loc <- op.Ir.loc;
  let o n = Ir.operand_n op n in
  let r0 () = Ir.result op in
  match op.Ir.name with
  | "arith.constant" -> (
      let res = r0 () in
      match (Ir.attr op "value", res.Ir.vty) with
      | Some (Attr.Float f), Types.Vector _ -> [ Lir.VConst (def st res, f) ]
      | Some (Attr.Float f), _ -> [ Lir.ConstF (def st res, f) ]
      | Some (Attr.Int i), Types.Vector _ ->
          [ Lir.VConst (def st res, float_of_int i) ]
      | Some (Attr.Int i), (Types.Index | Types.Int _ | Types.Bool) ->
          let r = def st res in
          Hashtbl.replace st.const_ints r i;
          [ Lir.ConstI (r, i) ]
      | Some (Attr.Int i), _ -> [ Lir.ConstF (def st res, float_of_int i) ]
      | _ -> fail "isel: bad constant")
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maxf"
  | "arith.minf" ->
      let fb = fbin_of op.Ir.name in
      let a = reg_of st (o 0) and b = reg_of st (o 1) in
      if is_vec (r0 ()) then [ Lir.VBin (fb, def st (r0 ()), a, b) ]
      else [ Lir.FBin (fb, def st (r0 ()), a, b) ]
  | "arith.addi" ->
      [ Lir.IBin (Lir.IAdd, def st (r0 ()), reg_of st (o 0), reg_of st (o 1)) ]
  | "arith.muli" ->
      [ Lir.IBin (Lir.IMul, def st (r0 ()), reg_of st (o 0), reg_of st (o 1)) ]
  | "arith.divi" ->
      [ Lir.IBin (Lir.IDiv, def st (r0 ()), reg_of st (o 0), reg_of st (o 1)) ]
  | "arith.andi" ->
      let a = reg_of st (o 0) and b = reg_of st (o 1) in
      if is_vec (r0 ()) || is_vec (o 0) then
        (* 0/1 masks: conjunction is lane-wise multiplication *)
        [ Lir.VBin (Lir.FMul, def st (r0 ()), a, b) ]
      else [ Lir.IBin (Lir.IAnd, def st (r0 ()), a, b) ]
  | "arith.ori" ->
      let a = reg_of st (o 0) and b = reg_of st (o 1) in
      if is_vec (r0 ()) || is_vec (o 0) then
        [ Lir.VBin (Lir.FMax, def st (r0 ()), a, b) ]
      else [ Lir.IBin (Lir.IOr, def st (r0 ()), a, b) ]
  | "arith.cmpf" ->
      let pred = pred_of (Option.value ~default:"olt" (Ir.string_attr op "predicate")) in
      let a = reg_of st (o 0) and b = reg_of st (o 1) in
      if is_vec (o 0) || is_vec (o 1) then
        [ Lir.VCmp (pred, def st (r0 ()), a, b) ]
      else [ Lir.FCmp (pred, def st (r0 ()), a, b) ]
  | "arith.select" -> (
      let c = reg_of st (o 0) and t = reg_of st (o 1) and f = reg_of st (o 2) in
      let res = r0 () in
      match class_of_type res.Ir.vty with
      | CV -> [ Lir.VSel (def st res, c, t, f) ]
      | CF -> [ Lir.SelF (def st res, c, t, f) ]
      | CI -> [ Lir.SelI (def st res, c, t, f) ]
      | CB -> fail "isel: select on buffers")
  | "arith.fptosi" ->
      if is_vec (r0 ()) then [ Lir.VFloor (def st (r0 ()), reg_of st (o 0)) ]
      else [ Lir.FtoI (def st (r0 ()), reg_of st (o 0)) ]
  | "arith.sitofp" -> [ Lir.ItoF (def st (r0 ()), reg_of st (o 0)) ]
  | "math.log" | "math.exp" | "math.log1p" ->
      let fn = mathfn_of op.Ir.name in
      let src = reg_of st (o 0) in
      if is_vec (r0 ()) then begin
        if Ir.bool_attr op "veclib" <> Some true then
          fail "isel: vector math without veclib must be scalarized earlier";
        [ Lir.VCall1 (fn, def st (r0 ()), src) ]
      end
      else [ Lir.Call1 (fn, def st (r0 ()), src) ]
  | "memref.load" ->
      [ Lir.Load (def st (r0 ()), reg_of st (o 0), reg_of st (o 1)) ]
  | "memref.store" ->
      [ Lir.Store (reg_of st (o 0), reg_of st (o 1), reg_of st (o 2)) ]
  | "memref.dim" -> [ Lir.Dim (def st (r0 ()), reg_of st (o 0)) ]
  | "memref.alloc" -> (
      let res = r0 () in
      let cols =
        match res.Ir.vty with
        | Types.MemRef (dims, _) ->
            List.fold_left
              (fun acc d -> match d with Some n -> acc * n | None -> acc)
              1 dims
        | _ -> 1
      in
      [ Lir.AllocBuf (def st res, reg_of st (o 0), cols) ])
  | "memref.dealloc" -> [ Lir.DeallocBuf (reg_of st (o 0)) ]
  | "memref.copy" -> [ Lir.CopyBuf (reg_of st (o 0), reg_of st (o 1)) ]
  | "memref.global_table" -> (
      match Ir.dense_attr op "values" with
      | Some values -> [ Lir.TableConst (def st (r0 ()), values) ]
      | None -> fail "isel: global_table without values")
  | "vector.load" ->
      [ Lir.VLoad (def st (r0 ()), reg_of st (o 0), reg_of st (o 1)) ]
  | "vector.store" ->
      [ Lir.VStore (reg_of st (o 0), reg_of st (o 1), reg_of st (o 2)) ]
  | "vector.gather" ->
      let stride = Option.value ~default:1 (Ir.int_attr op "stride") in
      [ Lir.VGather (def st (r0 ()), reg_of st (o 0), reg_of st (o 1), stride) ]
  | "vector.shuffled_load" ->
      let stride = Option.value ~default:1 (Ir.int_attr op "stride") in
      let loads = Option.value ~default:1.0 (Ir.float_attr op "loads") in
      let shuffles = Option.value ~default:1.0 (Ir.float_attr op "shuffles") in
      [
        Lir.VShufLoad
          (def st (r0 ()), reg_of st (o 0), reg_of st (o 1), stride, loads, shuffles);
      ]
  | "vector.gather_indexed" ->
      [ Lir.VGatherIdx (def st (r0 ()), reg_of st (o 0), reg_of st (o 1)) ]
  | "vector.extract" ->
      let lane = Option.value ~default:0 (Ir.int_attr op "lane") in
      [ Lir.VExtract (def st (r0 ()), reg_of st (o 0), lane) ]
  | "vector.insert" ->
      let lane = Option.value ~default:0 (Ir.int_attr op "lane") in
      [ Lir.VInsert (def st (r0 ()), reg_of st (o 0), reg_of st (o 1), lane) ]
  | "vector.broadcast" -> [ Lir.VBroadcast (def st (r0 ()), reg_of st (o 0)) ]
  | "scf.for" ->
      let lb = reg_of st (o 0) and ub = reg_of st (o 1) in
      let step =
        match Hashtbl.find_opt st.const_ints (reg_of st (o 2)) with
        | Some s -> s
        | None -> fail "isel: scf.for step must be a constant"
      in
      let blk = Option.get (Ir.entry_block op) in
      let iv = def st (List.hd blk.Ir.bargs) in
      (* detect the vector width used inside *)
      let width = ref 1 in
      List.iter
        (fun (o : Ir.op) ->
          Ir.walk_ops
            (fun inner ->
              List.iter
                (fun (r : Ir.value) ->
                  match r.Ir.vty with
                  | Types.Vector (w, _) -> if w > !width then width := w
                  | _ -> ())
                inner.Ir.results)
            o)
        blk.Ir.bops;
      if !width > st.max_vec_width then st.max_vec_width <- !width;
      let body = sel_ops st blk.Ir.bops in
      [ Lir.Loop { iv; lb; ub; step; body = Array.of_list body; vector_width = !width } ]
  | "scf.yield" -> []
  | "func.call" -> (
      let callee = Option.get (Ir.string_attr op "callee") in
      match Hashtbl.find_opt st.func_index callee with
      | Some idx ->
          [ Lir.CallFn (idx, List.map (fun v -> reg_of st v) op.Ir.operands) ]
      | None -> fail "isel: unknown callee %s" callee)
  | "func.return" -> [ Lir.Ret ]
  | other -> fail "isel: unsupported cir op %s" other

(* DAG-scheduling hazard scan: for each instruction, a window of earlier
   instructions is checked for def/use conflicts, like SelectionDAG's
   chain analysis.  The window widens with function size, making
   instruction selection superlinear on very large task bodies — the
   paper attributes 27% of CPU compile time to DAG instruction selection
   on the RAT-SPN workload (§V-B.1). *)
let schedule_scan (body : Lir.instr array) : int =
  let rec flatten acc (body : Lir.instr array) =
    Array.fold_left
      (fun acc i ->
        match i with Lir.Loop l -> flatten (i :: acc) l.Lir.body | i -> i :: acc)
      acc body
  in
  let instrs = Array.of_list (List.rev (flatten [] body)) in
  let n = Array.length instrs in
  let window = min 192 (8 + (n / 1500)) in
  let defs = Array.map Optimizer.defs instrs in
  let hazards = ref 0 in
  for i = 0 to n - 1 do
    let u = Optimizer.uses instrs.(i) in
    for j = max 0 (i - window) to i - 1 do
      List.iter (fun x -> if List.mem x defs.(j) then incr hazards) u
    done
  done;
  !hazards

let sel_func st (f : Ir.op) : Lir.func =
  st.nf <- 0;
  st.ni <- 0;
  st.nv <- 0;
  st.nb <- 0;
  Hashtbl.reset st.regs;
  Hashtbl.reset st.const_ints;
  Hashtbl.reset st.reg_locs;
  st.cur_loc <- Loc.Unknown;
  st.max_vec_width <- 1;
  let blk = Option.get (Ir.entry_block f) in
  let params = List.map (def st) blk.Ir.bargs in
  let body = Array.of_list (sel_ops st blk.Ir.bops) in
  ignore (schedule_scan body : int);
  let locs_of c n =
    Array.init n (fun r ->
        Option.value ~default:Loc.Unknown (Hashtbl.find_opt st.reg_locs (c, r)))
  in
  {
    Lir.fname = Option.value ~default:"?" (Ir.string_attr f "sym_name");
    params;
    body;
    nf = st.nf;
    ni = st.ni;
    nv = st.nv;
    nb = st.nb;
    vec_width = st.max_vec_width;
    prov =
      {
        Lir.pf = locs_of CF st.nf;
        pi = locs_of CI st.ni;
        pv = locs_of CV st.nv;
        pb = locs_of CB st.nb;
      };
  }

(** [run m ~entry] selects instructions for every [func.func] of a cir
    module; [entry] names the kernel entry function. *)
let run (m : Ir.modul) ~entry : Lir.modul =
  let funcs =
    List.filter (fun (o : Ir.op) -> o.Ir.name = "func.func") m.Ir.mops
  in
  let func_index = Hashtbl.create 8 in
  List.iteri
    (fun i (f : Ir.op) ->
      match Ir.string_attr f "sym_name" with
      | Some n -> Hashtbl.replace func_index n i
      | None -> ())
    funcs;
  let st =
    {
      nf = 0;
      ni = 0;
      nv = 0;
      nb = 0;
      regs = Hashtbl.create 1024;
      const_ints = Hashtbl.create 64;
      func_index;
      max_vec_width = 1;
      reg_locs = Hashtbl.create 1024;
      cur_loc = Loc.Unknown;
    }
  in
  let lfuncs = Array.of_list (List.map (sel_func st) funcs) in
  let entry_idx =
    match Hashtbl.find_opt func_index entry with
    | Some i -> i
    | None -> fail "isel: entry %s not found" entry
  in
  { Lir.funcs = lfuncs; entry = entry_idx }
