(** The execution engine for compiled kernels: a register VM over Lir —
    the closest OCaml equivalent of the JIT-ed native code the real SPNC
    loads (§IV-B).  Execution is a tight dispatch over flat instruction
    arrays with class-separated register files, so measured wall-clock
    scales with the instruction count the backend actually emitted.

    {!Jit} is the dispatch-free engine over the same Lir; this module
    remains the semantic reference the JIT is differentially checked
    against. *)

exception Trap of string  (** out-of-bounds access, arity mismatch, ... *)

(** A buffer {e view}: a window of [len = rows * cols] floats starting at
    [off] inside a (possibly shared) backing array.  All kernel indices
    are relative to [off] and bounds-checked against [len], so views over
    the runtime's shared input/output arrays are safe and zero-copy
    (docs/PERFORMANCE.md). *)
type buffer = {
  data : float array;  (** backing store, possibly shared with other views *)
  off : int;  (** base offset of this view into [data] *)
  len : int;  (** logical length ([rows * cols]); bounds-check limit *)
  rows : int;
  cols : int;
}

(** [buffer ~rows ~cols] — a fresh zeroed buffer (a whole-array view). *)
val buffer : rows:int -> cols:int -> buffer

(** [of_flat data ~rows ~cols] wraps an existing row-major array.
    @raise Trap if the size does not match. *)
val of_flat : float array -> rows:int -> cols:int -> buffer

(** [view data ~off ~rows ~cols] — a zero-copy window of [rows * cols]
    entries of [data] starting at [off].  Kernel loads and stores through
    the view read and write [data] directly.
    @raise Trap if the window exceeds the backing array. *)
val view : float array -> off:int -> rows:int -> cols:int -> buffer

(** [run m ~buffers] executes the module's entry function with the given
    buffer arguments (bound to its parameters in order).  Outputs are
    visible through the shared buffers.
    @raise Trap on runtime errors. *)
val run : Lir.modul -> buffers:buffer list -> unit

val run_profiled : Lir.modul -> Profile.t -> buffers:buffer list -> unit
(** Like {!run}, but every executed instruction bumps its (SPN node,
    opcode) cell in the given {!Profile}.  Semantics are identical to
    {!run}; only for profiling runs — the default path is untouched. *)
