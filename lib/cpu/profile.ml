(** Sampling-free per-SPN-node execution profiler (docs/OBSERVABILITY.md).

    Every executed Lir instruction is attributed — through the
    per-register provenance recorded by {!Isel} and preserved by
    {!Optimizer} — to the SPN node it implements, and counted in a
    pre-resolved cell keyed (node, opcode).  Cells are resolved before
    the hot path runs (at closure-compile time in {!Jit}, at body entry
    in {!Vm}), so the per-instruction cost of profiling is one
    [Atomic.incr] and the sum of all cell counts equals the number of
    instructions executed exactly — no sampling, no skid.

    Profiling is opt-in per run ({!Jit.compile}[ ?profile],
    {!Vm.run_profiled}); the default execution paths are untouched. *)

open Lir

type cell = {
  node : int;  (** SPN node id; [-1] when unattributed *)
  opcode : string;  (** Lir mnemonic *)
  count : int Atomic.t;  (** executions *)
  cycles : float;  (** estimated cycles per execution *)
}

type t = {
  tbl : ((int * string), cell) Hashtbl.t;
  lock : Mutex.t;  (** guards [tbl]; [count] bumps are lock-free *)
  cpu : Spnc_machine.Machine.cpu;
}

let create ?(cpu = Spnc_machine.Machine.ryzen_3900xt) () =
  { tbl = Hashtbl.create 256; lock = Mutex.create (); cpu }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* -- Attribution ------------------------------------------------------------ *)

let opcode (i : instr) : string =
  match i with
  | ConstF _ -> "constf"
  | ConstI _ -> "consti"
  | FBin (op, _, _, _) -> Fmt.str "%a" pp_fbin op
  | FBin3 _ -> "fma"
  | IBin (IAdd, _, _, _) -> "iadd"
  | IBin (IMul, _, _, _) -> "imul"
  | IBin (IDiv, _, _, _) -> "idiv"
  | IBin (IAnd, _, _, _) -> "iand"
  | IBin (IOr, _, _, _) -> "ior"
  | FCmp _ -> "fcmp"
  | SelF _ -> "fsel"
  | SelI _ -> "isel"
  | FtoI _ -> "ftoi"
  | ItoF _ -> "itof"
  | Call1 (fn, _, _) -> Fmt.str "call.%a" pp_mathfn fn
  | Load _ -> "load"
  | Store _ -> "store"
  | VConst _ -> "vconst"
  | VBin (op, _, _, _) -> Fmt.str "v%a" pp_fbin op
  | VBin3 _ -> "vfma"
  | VCmp _ -> "vcmp"
  | VSel _ -> "vsel"
  | VCall1 (fn, _, _) -> Fmt.str "vcall.%a" pp_mathfn fn
  | VLoad _ -> "vload"
  | VStore _ -> "vstore"
  | VGather _ -> "vgather"
  | VShufLoad _ -> "vshufload"
  | VFloor _ -> "vfloor"
  | VGatherIdx _ -> "vgatheridx"
  | VExtract _ -> "vextract"
  | VInsert _ -> "vinsert"
  | VBroadcast _ -> "vbroadcast"
  | Dim _ -> "dim"
  | AllocBuf _ -> "alloc"
  | DeallocBuf _ -> "dealloc"
  | CopyBuf _ -> "copy"
  | TableConst _ -> "table"
  | CallFn _ -> "callfn"
  | Loop _ -> "loop"
  | Ret -> "ret"

(** [node_of f i] — the SPN node an instruction belongs to: the
    provenance of its first located destination register, falling back
    to the first located source (stores have no destination), else -1. *)
let node_of (f : func) (i : instr) : int =
  let arr = function
    | Optimizer.F -> f.prov.pf
    | Optimizer.I -> f.prov.pi
    | Optimizer.V -> f.prov.pv
    | Optimizer.B -> f.prov.pb
  in
  let first regs =
    List.fold_left
      (fun acc (rc, r) ->
        match acc with
        | Some _ -> acc
        | None -> Spnc_mlir.Loc.node_id (prov_reg (arr rc) r))
      None regs
  in
  match first (Optimizer.defs i) with
  | Some n -> n
  | None -> (
      match first (Optimizer.uses i) with Some n -> n | None -> -1)

(** [cell_for t f i] — the (get-or-create) cell the instruction bumps.
    Safe to call from multiple domains; intended for resolution ahead of
    the hot path, not inside it. *)
let cell_for (t : t) (f : func) (i : instr) : cell =
  let key = (node_of f i, opcode i) in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some c -> c
      | None ->
          let c =
            {
              node = fst key;
              opcode = snd key;
              count = Atomic.make 0;
              cycles = Cost.instr_cycles t.cpu i;
            }
          in
          Hashtbl.replace t.tbl key c;
          c)

let[@inline] bump (c : cell) = Atomic.incr c.count

(* -- Reporting --------------------------------------------------------------- *)

let cells (t : t) : cell list =
  with_lock t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.tbl [])

(** Total instructions executed under profiling — each execution bumps
    exactly one cell, so this is exact. *)
let total (t : t) : int =
  List.fold_left (fun acc c -> acc + Atomic.get c.count) 0 (cells t)

type node_stat = {
  ns_node : int;
  ns_hits : int;  (** instructions executed for this node *)
  ns_cycles : float;  (** estimated cycles (hits weighted by opcode cost) *)
  ns_opcodes : (string * int) list;  (** per-opcode hits, descending *)
}

(** Per-node aggregation, hottest (by estimated cycles) first. *)
let by_node (t : t) : node_stat list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let hits = Atomic.get c.count in
      if hits > 0 then begin
        let hits0, cyc0, ops0 =
          Option.value ~default:(0, 0.0, []) (Hashtbl.find_opt tbl c.node)
        in
        Hashtbl.replace tbl c.node
          ( hits0 + hits,
            cyc0 +. (float_of_int hits *. c.cycles),
            (c.opcode, hits) :: ops0 )
      end)
    (cells t);
  Hashtbl.fold
    (fun node (hits, cycles, ops) acc ->
      {
        ns_node = node;
        ns_hits = hits;
        ns_cycles = cycles;
        ns_opcodes = List.sort (fun (_, a) (_, b) -> compare b a) ops;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.ns_cycles a.ns_cycles)

let node_label n = if n < 0 then "(unattributed)" else Fmt.str "spn.node %d" n

(** [pp_report ~k ppf t] — the top-[k] hottest SPN nodes as a table. *)
let pp_report ?(k = 10) ppf (t : t) =
  let stats = by_node t in
  let tot = total t in
  let tot_cycles =
    List.fold_left (fun acc s -> acc +. s.ns_cycles) 0.0 stats
  in
  Fmt.pf ppf "top %d of %d SPN nodes, %d instructions executed@."
    (min k (List.length stats))
    (List.length stats) tot;
  Fmt.pf ppf "%-16s %10s %12s %7s  %s@." "node" "hits" "est.cycles" "share"
    "opcodes";
  List.iteri
    (fun i s ->
      if i < k then
        let share =
          if tot_cycles > 0.0 then 100.0 *. s.ns_cycles /. tot_cycles else 0.0
        in
        let ops =
          String.concat " "
            (List.filteri (fun i _ -> i < 4)
               (List.map
                  (fun (op, n) -> Fmt.str "%s:%d" op n)
                  s.ns_opcodes))
        in
        Fmt.pf ppf "%-16s %10d %12.0f %6.1f%%  %s@." (node_label s.ns_node)
          s.ns_hits s.ns_cycles share ops)
    stats

(* -- Export ------------------------------------------------------------------- *)

let to_json (t : t) : Spnc_obs.Json.t =
  let stats = by_node t in
  Spnc_obs.Json.Obj
    [
      ("total_instructions", Spnc_obs.Json.Num (float_of_int (total t)));
      ( "nodes",
        Spnc_obs.Json.List
          (List.map
             (fun s ->
               Spnc_obs.Json.Obj
                 [
                   ("node", Spnc_obs.Json.Num (float_of_int s.ns_node));
                   ("hits", Spnc_obs.Json.Num (float_of_int s.ns_hits));
                   ("est_cycles", Spnc_obs.Json.Num s.ns_cycles);
                   ( "opcodes",
                     Spnc_obs.Json.Obj
                       (List.map
                          (fun (op, n) ->
                            (op, Spnc_obs.Json.Num (float_of_int n)))
                          s.ns_opcodes) );
                 ])
             stats) );
    ]

let write_file (t : t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Spnc_obs.Json.to_string_pretty (to_json t)))

(** Merge the per-node totals into the Chrome trace as instant events
    (category "profile"), so hot nodes line up with the execution spans
    in chrome://tracing. *)
let to_trace (t : t) =
  List.iter
    (fun s ->
      Spnc_obs.Trace.instant ~cat:"profile" (node_label s.ns_node)
        ~args:
          [
            ("hits", Spnc_obs.Trace.I s.ns_hits);
            ("est_cycles", Spnc_obs.Trace.F s.ns_cycles);
          ])
    (by_node t)
