(** Lir optimization pipeline — the "LLVM IR optimized further" stage of
    §IV-B, with the compiler optimization levels investigated in the
    paper's Figs. 11/13:

    - [-O0]: the naive isel output;
    - [-O1]: constant folding, local CSE, dead-code elimination;
    - [-O2]: -O1 plus loop-invariant code motion;
    - [-O3]: -O2 plus FMA fusion and a second clean-up round.

    All passes preserve semantics; the test suite runs the VM on every
    level against the reference evaluator. *)

type level = O0 | O1 | O2 | O3

val level_of_int : int -> level
val level_to_string : level -> string

(** Inverse of {!level_to_string}; accepts "-O2" and "O2" forms. *)
val level_of_string : string -> level option

(** Register class of an operand/result (used by regalloc and isel's
    hazard scan): float / int / vector / buffer. *)
type rc = F | I | V | B

(** [defs i] — the registers instruction [i] defines, with classes.  A
    [Loop] defines its induction variable. *)
val defs : Lir.instr -> (rc * Lir.reg) list

(** [uses i] — the registers instruction [i] reads, with classes. *)
val uses : Lir.instr -> (rc * Lir.reg) list

(** [pure i] — no side effects; eligible for CSE/DCE/hoisting.  Loads are
    deliberately not pure (a preceding store may alias). *)
val pure : Lir.instr -> bool

(* Individual passes (exposed for testing). *)

val constfold : Lir.func -> Lir.func
val cse : Lir.func -> Lir.func
val dce : Lir.func -> Lir.func
val licm : Lir.func -> Lir.func
val fma : Lir.func -> Lir.func

(** Fault injection for the differential fuzzing harness: when set, every
    [-O1]+ optimization run applies a deliberately unsound peephole (the
    first floating add of each function becomes a subtract), so the
    harness can prove it detects and shrinks a real miscompile.  Never
    enabled by default. *)
val inject_bad_peephole : bool ref

(** [run level m] optimizes every function of the module at [level]. *)
val run : level -> Lir.modul -> Lir.modul

(** [run_func level f] — the same pipeline on a single function.  Used by
    the auto-tuner's profile-guided per-task refinement: task functions
    that dominate dynamic cycles get extra [-O3] effort, cold ones keep
    the module's base level (docs/PERFORMANCE.md §7). *)
val run_func : level -> Lir.func -> Lir.func
