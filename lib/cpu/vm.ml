(** The execution engine for compiled kernels: a register VM over Lir.

    This is the "object code the runtime component can load" of §IV-B —
    the closest OCaml equivalent of JIT-ed native code.  Execution is a
    tight match over a flat instruction array with class-separated
    register files (float / int / vector / buffer), so measured wall-clock
    scales with the instruction count the backend actually emitted:
    optimization levels and vectorization genuinely change VM time.

    The interpreter is the reference engine; {!Jit} compiles the same Lir
    into closures for dispatch-free execution.  Both operate on the same
    {!buffer} values, which since the zero-copy runtime rework are
    {e views}: a base offset + logical length into a (possibly shared)
    flat array, so the runtime can hand a kernel a window of the batch
    input and the batch output without copying. *)

open Lir

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

type buffer = {
  data : float array;  (** backing store, possibly shared with other views *)
  off : int;  (** base offset of this view into [data] *)
  len : int;  (** logical length ([rows * cols]); bounds-check limit *)
  rows : int;
  cols : int;
}

let buffer ~rows ~cols =
  { data = Array.make (rows * cols) 0.0; off = 0; len = rows * cols; rows; cols }

let of_flat data ~rows ~cols =
  if Array.length data <> rows * cols then
    trap "buffer size %d does not match %dx%d" (Array.length data) rows cols;
  { data; off = 0; len = rows * cols; rows; cols }

let view data ~off ~rows ~cols =
  let len = rows * cols in
  if off < 0 || len < 0 || off + len > Array.length data then
    trap "view [%d, %d+%d) out of bounds of backing array (%d)" off off len
      (Array.length data);
  { data; off; len; rows; cols }

type frame = {
  fregs : float array;
  iregs : int array;
  vregs : float array array;
  bregs : buffer array;
}

let dummy_buf = { data = [||]; off = 0; len = 0; rows = 0; cols = 0 }

let frame_of (f : func) ~width =
  {
    fregs = Array.make (max 1 f.nf) 0.0;
    iregs = Array.make (max 1 f.ni) 0;
    vregs = Array.init (max 1 f.nv) (fun _ -> Array.make width 0.0);
    bregs = Array.make (max 1 f.nb) dummy_buf;
  }

let fbin_eval (op : fbin) a b =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FMul -> a *. b
  | FDiv -> a /. b
  | FMax -> Float.max a b
  | FMin -> Float.min a b
  | FMA ->
      (* FMA is ternary (FBin3); a binary encoding has lost its addend
         somewhere in the pipeline.  Trap so the miscompile surfaces
         instead of silently evaluating a*b. *)
      trap "binary FMA (addend dropped by a malformed instruction)"

let pred_eval (p : pred) a b =
  match p with
  | Olt -> a < b
  | Ole -> a <= b
  | Ogt -> a > b
  | Oge -> a >= b
  | Oeq -> a = b
  | One -> a <> b && not (Float.is_nan a || Float.is_nan b)
  | Uno -> Float.is_nan a || Float.is_nan b

let math_eval (fn : mathfn) x =
  match fn with MLog -> log x | MExp -> exp x | MLog1p -> Float.log1p x

let rec exec (m : modul) (fr : frame) (body : instr array) : unit =
  let n = Array.length body in
  let f = fr.fregs and i = fr.iregs and v = fr.vregs and b = fr.bregs in
  for k = 0 to n - 1 do
    match Array.unsafe_get body k with
    | ConstF (d, x) -> f.(d) <- x
    | ConstI (d, x) -> i.(d) <- x
    | FBin (op, d, a, bb) -> f.(d) <- fbin_eval op f.(a) f.(bb)
    | FBin3 (_, d, a, bb, c) -> f.(d) <- (f.(a) *. f.(bb)) +. f.(c)
    | IBin (op, d, a, bb) ->
        i.(d) <-
          (match op with
          | IAdd -> i.(a) + i.(bb)
          | IMul -> i.(a) * i.(bb)
          | IDiv -> if i.(bb) = 0 then 0 else i.(a) / i.(bb)
          | IAnd -> if i.(a) <> 0 && i.(bb) <> 0 then 1 else 0
          | IOr -> if i.(a) <> 0 || i.(bb) <> 0 then 1 else 0)
    | FCmp (p, d, a, bb) -> i.(d) <- (if pred_eval p f.(a) f.(bb) then 1 else 0)
    | SelF (d, c, t, e) -> f.(d) <- (if i.(c) <> 0 then f.(t) else f.(e))
    | SelI (d, c, t, e) -> i.(d) <- (if i.(c) <> 0 then i.(t) else i.(e))
    | FtoI (d, a) -> i.(d) <- int_of_float (Float.floor f.(a))
    | ItoF (d, a) -> f.(d) <- float_of_int i.(a)
    | Call1 (fn, d, a) -> f.(d) <- math_eval fn f.(a)
    | Load (d, bb, idx) ->
        let buf = b.(bb) in
        let ix = i.(idx) in
        if ix < 0 || ix >= buf.len then
          trap "load out of bounds: %d/%d" ix buf.len;
        f.(d) <- Array.unsafe_get buf.data (buf.off + ix)
    | Store (bb, idx, s) ->
        let buf = b.(bb) in
        let ix = i.(idx) in
        if ix < 0 || ix >= buf.len then
          trap "store out of bounds: %d/%d" ix buf.len;
        Array.unsafe_set buf.data (buf.off + ix) f.(s)
    | VConst (d, x) -> Array.fill v.(d) 0 (Array.length v.(d)) x
    | VBin (op, d, a, bb) ->
        let va = v.(a) and vb = v.(bb) and vd = v.(d) in
        for l = 0 to Array.length vd - 1 do
          vd.(l) <- fbin_eval op va.(l) vb.(l)
        done
    | VBin3 (_, d, a, bb, c) ->
        let va = v.(a) and vb = v.(bb) and vc = v.(c) and vd = v.(d) in
        for l = 0 to Array.length vd - 1 do
          vd.(l) <- (va.(l) *. vb.(l)) +. vc.(l)
        done
    | VCmp (p, d, a, bb) ->
        let va = v.(a) and vb = v.(bb) and vd = v.(d) in
        for l = 0 to Array.length vd - 1 do
          vd.(l) <- (if pred_eval p va.(l) vb.(l) then 1.0 else 0.0)
        done
    | VSel (d, c, t, e) ->
        let vc = v.(c) and vt = v.(t) and ve = v.(e) and vd = v.(d) in
        for l = 0 to Array.length vd - 1 do
          vd.(l) <- (if vc.(l) <> 0.0 then vt.(l) else ve.(l))
        done
    | VCall1 (fn, d, a) ->
        let va = v.(a) and vd = v.(d) in
        for l = 0 to Array.length vd - 1 do
          vd.(l) <- math_eval fn va.(l)
        done
    | VLoad (d, bb, idx) ->
        let buf = b.(bb) in
        let base = i.(idx) in
        let vd = v.(d) in
        let w = Array.length vd in
        if base < 0 || base + w > buf.len then trap "vload out of bounds";
        Array.blit buf.data (buf.off + base) vd 0 w
    | VStore (bb, idx, s) ->
        let buf = b.(bb) in
        let base = i.(idx) in
        let vs = v.(s) in
        let w = Array.length vs in
        if base < 0 || base + w > buf.len then trap "vstore out of bounds";
        Array.blit vs 0 buf.data (buf.off + base) w
    | VGather (d, bb, idx, stride) | VShufLoad (d, bb, idx, stride, _, _) ->
        let buf = b.(bb) in
        let base = i.(idx) in
        let vd = v.(d) in
        for l = 0 to Array.length vd - 1 do
          let ix = base + (l * stride) in
          if ix < 0 || ix >= buf.len then trap "gather out of bounds";
          vd.(l) <- Array.unsafe_get buf.data (buf.off + ix)
        done
    | VFloor (d, a) ->
        let va = v.(a) and vd = v.(d) in
        for l = 0 to Array.length vd - 1 do
          vd.(l) <- Float.of_int (int_of_float (Float.floor va.(l)))
        done
    | VGatherIdx (d, bb, idx) ->
        let buf = b.(bb) in
        let vi = v.(idx) in
        let vd = v.(d) in
        for l = 0 to Array.length vd - 1 do
          let k = int_of_float vi.(l) in
          if k < 0 || k >= buf.len then
            trap "gather_indexed out of bounds: %d" k;
          vd.(l) <- Array.unsafe_get buf.data (buf.off + k)
        done
    | VExtract (d, a, lane) -> f.(d) <- v.(a).(lane)
    | VInsert (d, s, a, lane) ->
        let vd = v.(d) and va = v.(a) in
        if vd != va then Array.blit va 0 vd 0 (Array.length vd);
        vd.(lane) <- f.(s)
    | VBroadcast (d, s) -> Array.fill v.(d) 0 (Array.length v.(d)) f.(s)
    | Dim (d, bb) -> i.(d) <- b.(bb).rows
    | AllocBuf (d, rows, cols) -> b.(d) <- buffer ~rows:i.(rows) ~cols
    | DeallocBuf _ -> ()
    | CopyBuf (src, dst) ->
        let s = b.(src) and d = b.(dst) in
        Array.blit s.data s.off d.data d.off s.len
    | TableConst (d, values) ->
        b.(d) <-
          {
            data = values;
            off = 0;
            len = Array.length values;
            rows = Array.length values;
            cols = 1;
          }
    | CallFn (idx, args) ->
        let callee = m.funcs.(idx) in
        let cfr = frame_of callee ~width:(max 1 callee.vec_width) in
        (* bind arguments to parameter registers via arrays: the former
           List.nth-per-parameter binding was O(n²) in the task count *)
        let params = Array.of_list callee.params in
        List.iteri (fun pi a -> cfr.bregs.(params.(pi)) <- b.(a)) args;
        exec m cfr callee.body
    | Loop l ->
        let lb = i.(l.lb) and ub = i.(l.ub) in
        let iv = l.iv and step = l.step and lbody = l.body in
        let j = ref lb in
        while !j < ub do
          i.(iv) <- !j;
          exec m fr lbody;
          j := !j + step
        done
    | Ret -> ()
  done

(* -- Profiled execution -------------------------------------------------------- *)

(* A separate walker so the default [exec] above stays untouched: each
   instruction bumps its pre-resolved (SPN node, opcode) cell, then runs
   through the reference semantics.  Cells (and singleton bodies, to
   avoid re-allocating per instruction inside loops) are resolved once
   per body entry, so loop iterations pay one Atomic.incr plus one
   [exec] call per instruction. *)
let run_profiled (m : modul) (p : Profile.t) ~(buffers : buffer list) : unit =
  let resolve (f : func) (body : instr array) =
    (Array.map (Profile.cell_for p f) body, Array.map (fun i -> [| i |]) body)
  in
  let rec go (f : func) (fr : frame) (body : instr array) : unit =
    let cells, singles = resolve f body in
    step f fr body cells singles
  and step f fr body cells singles =
    for k = 0 to Array.length body - 1 do
      Profile.bump cells.(k);
      match Array.unsafe_get body k with
      | Loop l ->
          let lcells, lsingles = resolve f l.body in
          let lb = fr.iregs.(l.lb) and ub = fr.iregs.(l.ub) in
          let iv = l.iv and stp = l.step in
          let j = ref lb in
          while !j < ub do
            fr.iregs.(iv) <- !j;
            step f fr l.body lcells lsingles;
            j := !j + stp
          done
      | CallFn (idx, args) ->
          let callee = m.funcs.(idx) in
          let cfr = frame_of callee ~width:(max 1 callee.vec_width) in
          let params = Array.of_list callee.params in
          List.iteri (fun pi a -> cfr.bregs.(params.(pi)) <- fr.bregs.(a)) args;
          go callee cfr callee.body
      | _ -> exec m fr singles.(k)
    done
  in
  let entry = m.funcs.(m.entry) in
  let fr = frame_of entry ~width:(max 1 entry.vec_width) in
  if List.length buffers <> List.length entry.params then
    trap "entry %s expects %d buffers, got %d" entry.fname
      (List.length entry.params) (List.length buffers);
  let params = Array.of_list entry.params in
  List.iteri (fun pi buf -> fr.bregs.(params.(pi)) <- buf) buffers;
  go entry fr entry.body

(** [run m ~buffers] executes the entry function with the given buffer
    arguments (bound to the entry's parameters in order). *)
let run (m : modul) ~(buffers : buffer list) : unit =
  let entry = m.funcs.(m.entry) in
  let fr = frame_of entry ~width:(max 1 entry.vec_width) in
  if List.length buffers <> List.length entry.params then
    trap "entry %s expects %d buffers, got %d" entry.fname
      (List.length entry.params) (List.length buffers);
  let params = Array.of_list entry.params in
  List.iteri (fun pi buf -> fr.bregs.(params.(pi)) <- buf) buffers;
  exec m fr entry.body
