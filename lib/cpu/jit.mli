(** The closure-compiled execution engine: threaded code over Lir.

    Where {!Vm} dispatches a [match] per executed instruction, this
    engine compiles a [Lir.modul] {e once} into a tree of closures — one
    closure per instruction, specialized on opcode and vector width, with
    register indices resolved at compile time — so execution is plain
    closure calls with zero tag matching (docs/PERFORMANCE.md).

    A compiled {!kernel} is immutable and shareable across domains; all
    mutable register state lives in a per-domain {!state}, allocated once
    per worker and reused across batch chunks.  The engine is
    differentially checked against {!Vm} for bit-identical output by the
    test suite and [bin/spnc_fuzz]. *)

(** Which CPU execution engine the runtime should use: the reference
    interpreter {!module:Vm} or this closure compiler. *)
type engine = Vm | Jit

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

type kernel
(** A [Lir.modul] compiled into closures.  Immutable; safe to share
    across domains. *)

type state
(** Per-domain register frames (one per function), reused across runs.
    Never share a [state] between concurrently executing domains. *)

(** [compile ?profile m] compiles the module once.  With [profile],
    every compiled instruction closure first bumps its pre-resolved
    per-SPN-node {!Profile} cell; without it the generated code is
    identical to an unprofiled compile.  Raises {!Vm.Trap} only at run
    time, never during compilation. *)
val compile : ?profile:Profile.t -> Lir.modul -> kernel

val make_state : kernel -> state

(** [run k st ~buffers] executes the compiled entry function, binding
    [buffers] to its parameters in order.  Outputs are visible through
    the shared buffers, exactly as with {!Vm.run}.
    @raise Vm.Trap on runtime errors (bounds, arity, malformed FMA). *)
val run : kernel -> state -> buffers:Vm.buffer list -> unit

(** [run_once m ~buffers] — compile + run in one shot (tests, one-off
    executions).  Production callers should {!compile} once and reuse. *)
val run_once : Lir.modul -> buffers:Vm.buffer list -> unit
