(** Lir optimization pipeline — the "LLVM IR optimized further by the LLVM
    framework" stage (paper §IV-B), with the compiler optimization levels
    investigated in §V-B (Figs. 11/13):

    - [-O0]: no optimization (naive isel output);
    - [-O1]: constant folding, local CSE, dead-code elimination;
    - [-O2]: -O1 plus loop-invariant code motion (constants, tables and
      invariant address arithmetic move out of the batch loop);
    - [-O3]: -O2 plus FMA fusion and a second clean-up round.

    All passes are semantics-preserving; the test suite runs the VM on
    every level against the reference evaluator. *)

type level = O0 | O1 | O2 | O3

let level_of_int = function
  | 0 -> O0
  | 1 -> O1
  | 2 -> O2
  | _ -> O3

let level_to_string = function O0 -> "-O0" | O1 -> "-O1" | O2 -> "-O2" | O3 -> "-O3"

let level_of_string = function
  | "-O0" | "O0" -> Some O0
  | "-O1" | "O1" -> Some O1
  | "-O2" | "O2" -> Some O2
  | "-O3" | "O3" -> Some O3
  | _ -> None

open Lir

(* Register-class tagging of instruction operands, needed to reason about
   def/use without type information: each instruction knows which class
   its dst/srcs belong to. *)

type rc = F | I | V | B

let defs (i : instr) : (rc * reg) list =
  match i with
  | ConstF (d, _) | FBin (_, d, _, _) | FBin3 (_, d, _, _, _) | SelF (d, _, _, _)
  | ItoF (d, _) | Call1 (_, d, _) | Load (d, _, _) | VExtract (d, _, _) ->
      [ (F, d) ]
  | ConstI (d, _) | IBin (_, d, _, _) | FCmp (_, d, _, _) | SelI (d, _, _, _)
  | FtoI (d, _) | Dim (d, _) ->
      [ (I, d) ]
  | VConst (d, _) | VBin (_, d, _, _) | VBin3 (_, d, _, _, _) | VCmp (_, d, _, _)
  | VSel (d, _, _, _) | VCall1 (_, d, _) | VLoad (d, _, _)
  | VGather (d, _, _, _) | VShufLoad (d, _, _, _, _, _)
  | VGatherIdx (d, _, _) | VFloor (d, _)
  | VInsert (d, _, _, _) | VBroadcast (d, _) ->
      [ (V, d) ]
  | AllocBuf (d, _, _) | TableConst (d, _) -> [ (B, d) ]
  | Store _ | VStore _ | DeallocBuf _ | CopyBuf _ | CallFn _ | Ret -> []
  | Loop l -> [ (I, l.iv) ]

let uses (i : instr) : (rc * reg) list =
  match i with
  | ConstF _ | ConstI _ | VConst _ | TableConst _ | Ret -> []
  | FBin (_, _, a, b) -> [ (F, a); (F, b) ]
  | FBin3 (_, _, a, b, c) -> [ (F, a); (F, b); (F, c) ]
  | IBin (_, _, a, b) -> [ (I, a); (I, b) ]
  | FCmp (_, _, a, b) -> [ (F, a); (F, b) ]
  | SelF (_, c, t, f) -> [ (I, c); (F, t); (F, f) ]
  | SelI (_, c, t, f) -> [ (I, c); (I, t); (I, f) ]
  | FtoI (_, a) -> [ (F, a) ]
  | ItoF (_, a) -> [ (I, a) ]
  | Call1 (_, _, a) -> [ (F, a) ]
  | Load (_, b, idx) -> [ (B, b); (I, idx) ]
  | Store (b, idx, s) -> [ (B, b); (I, idx); (F, s) ]
  | VBin (_, _, a, b) -> [ (V, a); (V, b) ]
  | VBin3 (_, _, a, b, c) -> [ (V, a); (V, b); (V, c) ]
  | VCmp (_, _, a, b) -> [ (V, a); (V, b) ]
  | VSel (_, c, t, f) -> [ (V, c); (V, t); (V, f) ]
  | VCall1 (_, _, a) -> [ (V, a) ]
  | VLoad (_, b, idx) -> [ (B, b); (I, idx) ]
  | VStore (b, idx, s) -> [ (B, b); (I, idx); (V, s) ]
  | VGather (_, b, idx, _) | VShufLoad (_, b, idx, _, _, _) -> [ (B, b); (I, idx) ]
  | VGatherIdx (_, b, idx) -> [ (B, b); (V, idx) ]
  | VFloor (_, a) -> [ (V, a) ]
  | VExtract (_, v, _) -> [ (V, v) ]
  | VInsert (_, s, v, _) -> [ (F, s); (V, v) ]
  | VBroadcast (_, s) -> [ (F, s) ]
  | Dim (_, b) -> [ (B, b) ]
  | AllocBuf (_, rows, _) -> [ (I, rows) ]
  | DeallocBuf b -> [ (B, b) ]
  | CopyBuf (a, b) -> [ (B, a); (B, b) ]
  | CallFn (_, args) -> List.map (fun a -> (B, a)) args
  | Loop l -> [ (I, l.lb); (I, l.ub) ]

(* pure = no side effects, safe to CSE / sink / hoist / remove-if-dead *)
let pure (i : instr) =
  match i with
  | Store _ | VStore _ | DeallocBuf _ | CopyBuf _ | CallFn _ | Ret | Loop _
  | AllocBuf _ ->
      false
  | Load _ | VLoad _ | VGather _ | VShufLoad _ | VGatherIdx _ ->
      (* loads are not CSE'd/hoisted: a preceding store may alias *)
      false
  | _ -> true

(* -- Constant folding --------------------------------------------------------- *)

let fbin_eval op a b =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FMul -> a *. b
  | FDiv -> a /. b
  | FMax -> Float.max a b
  | FMin -> Float.min a b
  | FMA -> assert false (* guarded at the call site: binary FMA never folds *)

let ibin_eval op a b =
  match op with
  | IAdd -> a + b
  | IMul -> a * b
  | IDiv -> if b = 0 then 0 else a / b
  | IAnd -> if a <> 0 && b <> 0 then 1 else 0
  | IOr -> if a <> 0 || b <> 0 then 1 else 0

let rec constfold_body (fenv : (reg, float) Hashtbl.t)
    (ienv : (reg, int) Hashtbl.t) (body : instr array) : instr array =
  Array.map
    (fun i ->
      match i with
      | ConstF (d, v) ->
          Hashtbl.replace fenv d v;
          i
      | ConstI (d, v) ->
          Hashtbl.replace ienv d v;
          i
      | FBin (FMA, d, _, _) ->
          (* binary FMA is malformed (the addend was dropped); never fold
             it — let it reach the engines, which trap on it *)
          Hashtbl.remove fenv d;
          i
      | FBin (op, d, a, b) -> (
          match (Hashtbl.find_opt fenv a, Hashtbl.find_opt fenv b) with
          | Some x, Some y ->
              let v = fbin_eval op x y in
              Hashtbl.replace fenv d v;
              ConstF (d, v)
          | _ ->
              Hashtbl.remove fenv d;
              i)
      | IBin (op, d, a, b) -> (
          match (Hashtbl.find_opt ienv a, Hashtbl.find_opt ienv b) with
          | Some x, Some y ->
              let v = ibin_eval op x y in
              Hashtbl.replace ienv d v;
              ConstI (d, v)
          | _ ->
              Hashtbl.remove ienv d;
              i)
      | Loop l ->
          (* constants from outside remain valid inside; definitions inside
             the loop are cleared after (they are iteration-dependent) *)
          let f' = Hashtbl.copy fenv and i' = Hashtbl.copy ienv in
          Hashtbl.remove i' l.iv;
          let body' = constfold_body f' i' l.body in
          Loop { l with body = body' }
      | other ->
          List.iter
            (fun (c, r) ->
              match c with
              | F -> Hashtbl.remove fenv r
              | I -> Hashtbl.remove ienv r
              | _ -> ())
            (defs other);
          other)
    body

let constfold (f : func) : func =
  { f with body = constfold_body (Hashtbl.create 64) (Hashtbl.create 64) f.body }

(* -- Local CSE ------------------------------------------------------------------ *)

(* Key: instruction with dst erased.  We reuse the instr representation
   with dst=-1 for hashing. *)
let cse_key (i : instr) : instr option =
  if not (pure i) then None
  else
    Some
      (match i with
      | ConstF (_, v) -> ConstF (-1, v)
      | ConstI (_, v) -> ConstI (-1, v)
      | VConst (_, v) -> VConst (-1, v)
      | FBin (op, _, a, b) -> FBin (op, -1, a, b)
      | FBin3 (op, _, a, b, c) -> FBin3 (op, -1, a, b, c)
      | IBin (op, _, a, b) -> IBin (op, -1, a, b)
      | FCmp (p, _, a, b) -> FCmp (p, -1, a, b)
      | SelF (_, c, t, f) -> SelF (-1, c, t, f)
      | SelI (_, c, t, f) -> SelI (-1, c, t, f)
      | FtoI (_, a) -> FtoI (-1, a)
      | ItoF (_, a) -> ItoF (-1, a)
      | Call1 (fn, _, a) -> Call1 (fn, -1, a)
      | VBin (op, _, a, b) -> VBin (op, -1, a, b)
      | VBin3 (op, _, a, b, c) -> VBin3 (op, -1, a, b, c)
      | VCmp (p, _, a, b) -> VCmp (p, -1, a, b)
      | VSel (_, c, t, f) -> VSel (-1, c, t, f)
      | VCall1 (fn, _, a) -> VCall1 (fn, -1, a)
      | VExtract (_, v, l) -> VExtract (-1, v, l)
      | VInsert (_, s, v, l) -> VInsert (-1, s, v, l)
      | VBroadcast (_, s) -> VBroadcast (-1, s)
      | VFloor (_, a) -> VFloor (-1, a)
      | Dim (_, b) -> Dim (-1, b)
      | i -> i)

(* Replace a register use according to a per-class substitution. *)
let substitute (subf : (reg, reg) Hashtbl.t) (subi : (reg, reg) Hashtbl.t)
    (subv : (reg, reg) Hashtbl.t) (i : instr) : instr =
  let sf r = Option.value ~default:r (Hashtbl.find_opt subf r) in
  let si r = Option.value ~default:r (Hashtbl.find_opt subi r) in
  let sv r = Option.value ~default:r (Hashtbl.find_opt subv r) in
  match i with
  | ConstF _ | ConstI _ | VConst _ | TableConst _ | Ret -> i
  | FBin (op, d, a, b) -> FBin (op, d, sf a, sf b)
  | FBin3 (op, d, a, b, c) -> FBin3 (op, d, sf a, sf b, sf c)
  | IBin (op, d, a, b) -> IBin (op, d, si a, si b)
  | FCmp (p, d, a, b) -> FCmp (p, d, sf a, sf b)
  | SelF (d, c, t, f) -> SelF (d, si c, sf t, sf f)
  | SelI (d, c, t, f) -> SelI (d, si c, si t, si f)
  | FtoI (d, a) -> FtoI (d, sf a)
  | ItoF (d, a) -> ItoF (d, si a)
  | Call1 (fn, d, a) -> Call1 (fn, d, sf a)
  | Load (d, b, idx) -> Load (d, b, si idx)
  | Store (b, idx, s) -> Store (b, si idx, sf s)
  | VBin (op, d, a, b) -> VBin (op, d, sv a, sv b)
  | VBin3 (op, d, a, b, c) -> VBin3 (op, d, sv a, sv b, sv c)
  | VCmp (p, d, a, b) -> VCmp (p, d, sv a, sv b)
  | VSel (d, c, t, f) -> VSel (d, sv c, sv t, sv f)
  | VCall1 (fn, d, a) -> VCall1 (fn, d, sv a)
  | VLoad (d, b, idx) -> VLoad (d, b, si idx)
  | VStore (b, idx, s) -> VStore (b, si idx, sv s)
  | VGather (d, b, idx, s) -> VGather (d, b, si idx, s)
  | VGatherIdx (d, b, idx) -> VGatherIdx (d, b, sv idx)
  | VFloor (d, a) -> VFloor (d, sv a)
  | VShufLoad (d, b, idx, s, l, sh) -> VShufLoad (d, b, si idx, s, l, sh)
  | VExtract (d, v, l) -> VExtract (d, sv v, l)
  | VInsert (d, s, v, l) -> VInsert (d, sf s, sv v, l)
  | VBroadcast (d, s) -> VBroadcast (d, sf s)
  | Dim (d, b) -> Dim (d, b)
  | AllocBuf (d, rows, c) -> AllocBuf (d, si rows, c)
  | DeallocBuf _ | CopyBuf _ | CallFn _ -> i
  | Loop l -> Loop { l with lb = si l.lb; ub = si l.ub }

(* Registers are in SSA form within a function (isel mints fresh regs), so
   the substitution maps can be shared with nested loop bodies: an outer
   dedup must rewrite uses inside loops too. *)
let rec cse_body ?(subf = Hashtbl.create 16) ?(subi = Hashtbl.create 16)
    ?(subv = Hashtbl.create 16) (body : instr array) : instr array =
  let seen : (instr, reg) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun i ->
      let i = substitute subf subi subv i in
      match i with
      | Loop l ->
          (* expression table is per-region (conservative), but the
             substitutions flow through *)
          out := Loop { l with body = cse_body ~subf ~subi ~subv l.body } :: !out
      | _ -> (
          match cse_key i with
          | Some key -> (
              match Hashtbl.find_opt seen key with
              | Some prior -> (
                  match defs i with
                  | [ (F, d) ] -> Hashtbl.replace subf d prior
                  | [ (I, d) ] -> Hashtbl.replace subi d prior
                  | [ (V, d) ] -> Hashtbl.replace subv d prior
                  | _ -> out := i :: !out)
              | None ->
                  (match defs i with
                  | [ (_, d) ] -> Hashtbl.replace seen key d
                  | _ -> ());
                  out := i :: !out)
          | None -> out := i :: !out))
    body;
  Array.of_list (List.rev !out)

let cse (f : func) : func = { f with body = cse_body f.body }

(* -- Dead code elimination -------------------------------------------------------- *)

let rec collect_uses (used_f : (reg, unit) Hashtbl.t) used_i used_v
    (body : instr array) =
  Array.iter
    (fun i ->
      List.iter
        (fun (c, r) ->
          match c with
          | F -> Hashtbl.replace used_f r ()
          | I -> Hashtbl.replace used_i r ()
          | V -> Hashtbl.replace used_v r ()
          | B -> ())
        (uses i);
      match i with Loop l -> collect_uses used_f used_i used_v l.body | _ -> ())
    body

let rec dce_body used_f used_i used_v (body : instr array) : instr array =
  Array.of_list
    (List.filter_map
       (fun i ->
         match i with
         | Loop l -> Some (Loop { l with body = dce_body used_f used_i used_v l.body })
         | _ ->
             if pure i then
               let dead =
                 List.for_all
                   (fun (c, r) ->
                     match c with
                     | F -> not (Hashtbl.mem used_f r)
                     | I -> not (Hashtbl.mem used_i r)
                     | V -> not (Hashtbl.mem used_v r)
                     | B -> false)
                   (defs i)
               in
               if dead && defs i <> [] then None else Some i
             else Some i)
       (Array.to_list body))

let dce (f : func) : func =
  let rec go f n =
    if n = 0 then f
    else begin
      let used_f = Hashtbl.create 256
      and used_i = Hashtbl.create 256
      and used_v = Hashtbl.create 256 in
      collect_uses used_f used_i used_v f.body;
      let body' = dce_body used_f used_i used_v f.body in
      if Lir.count_instrs body' = Lir.count_instrs f.body then { f with body = body' }
      else go { f with body = body' } (n - 1)
    end
  in
  go f 8

(* -- Loop-invariant code motion ------------------------------------------------------ *)

let rec licm_body (defined_outside : (rc * reg, unit) Hashtbl.t)
    (body : instr array) : instr array =
  let out = ref [] in
  Array.iter
    (fun i ->
      (match i with
      | Loop l ->
          (* values defined so far are invariant w.r.t. this loop *)
          let outer = Hashtbl.copy defined_outside in
          (* hoist: repeatedly move loop-body instrs whose uses are all
             invariant *)
          let body_list = ref (Array.to_list l.body) in
          let hoisted = ref [] in
          let changed = ref true in
          while !changed do
            changed := false;
            let invariant (ins : instr) =
              pure ins
              && List.for_all
                   (fun (c, r) -> c = B || Hashtbl.mem outer (c, r))
                   (uses ins)
            in
            body_list :=
              List.filter
                (fun ins ->
                  if invariant ins then begin
                    hoisted := ins :: !hoisted;
                    List.iter
                      (fun (c, r) -> Hashtbl.replace outer (c, r) ())
                      (defs ins);
                    changed := true;
                    false
                  end
                  else true)
                !body_list
          done;
          (* recurse into nested loops with the enlarged outer set *)
          Hashtbl.replace outer (I, l.iv) ();
          let inner = licm_body outer (Array.of_list !body_list) in
          List.iter (fun h -> out := h :: !out) (List.rev !hoisted);
          out := Loop { l with body = inner } :: !out
      | _ -> out := i :: !out);
      List.iter (fun (c, r) -> Hashtbl.replace defined_outside (c, r) ()) (defs i))
    body;
  Array.of_list (List.rev !out)

let licm (f : func) : func =
  let outside = Hashtbl.create 64 in
  (* parameters are defined outside everything *)
  List.iter (fun p -> Hashtbl.replace outside (B, p) ()) f.params;
  { f with body = licm_body outside f.body }

(* -- FMA fusion (-O3) ------------------------------------------------------------------- *)

let remark_fused ~vec loc =
  if Spnc_obs.Remark.enabled () then
    Spnc_obs.Remark.emit ~pass:"lir-fma"
      ~loc:
        (if Spnc_mlir.Loc.is_known loc then Spnc_mlir.Loc.to_string loc else "")
      (if vec then "fused vector multiply-add into one FMA"
       else "fused multiply-add into one FMA")

let rec fma_body ?(prov = Lir.no_prov) (body : instr array) : instr array =
  let n = Array.length body in
  let consumed = Array.make n false in
  let use_count_f = Hashtbl.create 64 and use_count_v = Hashtbl.create 64 in
  let bump tbl r =
    Hashtbl.replace tbl r (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r))
  in
  let rec count (body : instr array) =
    Array.iter
      (fun i ->
        List.iter
          (fun (c, r) ->
            match c with
            | F -> bump use_count_f r
            | V -> bump use_count_v r
            | _ -> ())
          (uses i);
        match i with Loop l -> count l.body | _ -> ())
      body
  in
  count body;
  let out = ref [] in
  for k = 0 to n - 1 do
    if not consumed.(k) then begin
      match body.(k) with
      | Loop l -> out := Lir.Loop { l with body = fma_body ~prov l.body } :: !out
      | FBin (FMul, t, a, b)
        when Hashtbl.find_opt use_count_f t = Some 1 && k + 1 < n -> (
          (* look ahead a short window for FAdd(d, t, c) or FAdd(d, c, t).
             The fused FMA is emitted at the multiply's position, so the
             addend [c] is read early: fusing is only sound if nothing in
             the window (k, j) defines [c]. *)
          let fused = ref false in
          let window_defs = Hashtbl.create 8 in
          (try
             for j = k + 1 to min (n - 1) (k + 4) do
               match body.(j) with
               | FBin (FAdd, d, x, y) when (x = t || y = t) && not consumed.(j) ->
                   let c = if x = t then y else x in
                   if Hashtbl.mem window_defs c then raise Exit;
                   out := FBin3 (FMA, d, a, b, c) :: !out;
                   remark_fused ~vec:false (prov_reg prov.pf d);
                   consumed.(j) <- true;
                   fused := true;
                   raise Exit
               | instr
                 when List.exists (fun (cl, r) -> cl = F && r = t) (defs instr) ->
                   raise Exit
               | instr ->
                   List.iter
                     (fun (cl, r) -> if cl = F then Hashtbl.replace window_defs r ())
                     (defs instr)
             done
           with Exit -> ());
          if not !fused then out := body.(k) :: !out)
      | VBin (FMul, t, a, b)
        when Hashtbl.find_opt use_count_v t = Some 1 && k + 1 < n -> (
          let fused = ref false in
          let window_defs = Hashtbl.create 8 in
          (try
             for j = k + 1 to min (n - 1) (k + 4) do
               match body.(j) with
               | VBin (FAdd, d, x, y) when (x = t || y = t) && not consumed.(j) ->
                   let c = if x = t then y else x in
                   if Hashtbl.mem window_defs c then raise Exit;
                   out := VBin3 (FMA, d, a, b, c) :: !out;
                   remark_fused ~vec:true (prov_reg prov.pv d);
                   consumed.(j) <- true;
                   fused := true;
                   raise Exit
               | instr
                 when List.exists (fun (cl, r) -> cl = V && r = t) (defs instr) ->
                   raise Exit
               | instr ->
                   List.iter
                     (fun (cl, r) -> if cl = V then Hashtbl.replace window_defs r ())
                     (defs instr)
             done
           with Exit -> ());
          if not !fused then out := body.(k) :: !out)
      | i -> out := i :: !out
    end
  done;
  Array.of_list (List.rev !out)

let fma (f : func) : func = { f with body = fma_body ~prov:f.prov f.body }

(* -- Fault injection ------------------------------------------------------------------ *)

(* A deliberately unsound "peephole": the first floating add of each
   function becomes a subtract.  Enabled only through
   [inject_bad_peephole] by the differential fuzzing harness
   (bin/spnc_fuzz --inject-bad-peephole) to prove the harness detects
   and shrinks a real miscompile; never on by default. *)
let inject_bad_peephole = ref false

let rec break_first_fadd (broken : bool ref) (body : instr array) : instr array
    =
  Array.map
    (fun i ->
      if !broken then i
      else
        match i with
        | FBin (FAdd, d, a, b) ->
            broken := true;
            FBin (FSub, d, a, b)
        | VBin (FAdd, d, a, b) ->
            broken := true;
            VBin (FSub, d, a, b)
        | Loop l -> Loop { l with body = break_first_fadd broken l.body }
        | i -> i)
    body

let bad_peephole (f : func) : func =
  { f with body = break_first_fadd (ref false) f.body }

(* -- Driver --------------------------------------------------------------------------- *)

(** [run_func level f] — the per-function pipeline of [run].  Exposed so
    the auto-tuner can re-optimize {e individual} task functions of an
    already-compiled module (profile-guided per-task levels: extra -O3
    effort only on the functions that dominate dynamic cycles). *)
let run_func (level : level) (f : func) : func =
  let opt f =
    match level with
    | O0 -> f
    | O1 -> dce (cse (constfold f))
    | O2 -> dce (cse (licm (dce (cse (constfold f)))))
    | O3 -> fma (dce (cse (licm (dce (cse (constfold (dce (cse (constfold f)))))))))
  in
  if !inject_bad_peephole && level <> O0 then bad_peephole (opt f) else opt f

(** [run level m] optimizes every function of the module. *)
let run (level : level) (m : Lir.modul) : Lir.modul =
  { m with Lir.funcs = Array.map (run_func level) m.Lir.funcs }
