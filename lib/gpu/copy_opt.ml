(** Device buffer re-use / copy elimination (paper §IV-C).

    The naive GPU lowering round-trips every intermediate result:
    download after the producing kernel, upload again before each
    consuming kernel.  This pass removes those round-trips:

    - an upload ([memcpy_h2d]) of a host buffer whose device copy is
      still valid is deleted; consumers use the resident device buffer;
    - a download ([memcpy_d2h]) whose host destination is only ever used
      as a later upload source (never read by actual host code) is
      deleted;
    - device allocations and host intermediates left without uses are
      swept.

    The kernel's real output buffer (a host-function parameter) is still
    downloaded exactly once.  The paper reports this removes a
    significant number of expensive copies; Fig. 9's time breakdown is
    measured on the optimized schedule. *)

open Spnc_mlir

let run (m : Ir.modul) : Ir.modul =
  let rewrite_host (f : Ir.op) : Ir.op =
    let blk = Option.get (Ir.entry_block f) in
    let param_ids = List.map (fun (v : Ir.value) -> v.Ir.vid) blk.Ir.bargs in
    (* 1. forward uploads: valid_dev maps host vid -> device value *)
    let valid_dev : (int, Ir.value) Hashtbl.t = Hashtbl.create 8 in
    let dev_subst : (int, Ir.value) Hashtbl.t = Hashtbl.create 8 in
    let subst (v : Ir.value) =
      Option.value ~default:v (Hashtbl.find_opt dev_subst v.Ir.vid)
    in
    let pass1 =
      List.filter_map
        (fun (op : Ir.op) ->
          match op.Ir.name with
          | "gpu.memcpy_h2d" -> (
              let h = Ir.operand_n op 0 and d = Ir.operand_n op 1 in
              match Hashtbl.find_opt valid_dev h.Ir.vid with
              | Some resident ->
                  (* device copy already valid: reuse it, drop the upload *)
                  Hashtbl.replace dev_subst d.Ir.vid resident;
                  None
              | None ->
                  Hashtbl.replace valid_dev h.Ir.vid d;
                  Some op)
          | "gpu.memcpy_d2h" ->
              (* the device buffer becomes the valid copy of that host
                 buffer (it already was); host now has it too *)
              let d = subst (Ir.operand_n op 0) and h = Ir.operand_n op 1 in
              Hashtbl.replace valid_dev h.Ir.vid d;
              Some { op with Ir.operands = [ d; Ir.operand_n op 1 ] }
          | "memref.copy" ->
              (* host-side write invalidates the device copy of dst *)
              Hashtbl.remove valid_dev (Ir.operand_n op 1).Ir.vid;
              Some { op with Ir.operands = List.map subst op.Ir.operands }
          | _ -> Some { op with Ir.operands = List.map subst op.Ir.operands })
        blk.Ir.bops
    in
    (* 2. remove downloads whose host buffer is never read by host code.
       Host reads: being a source of memref.copy, or being a function
       parameter (the caller observes it). *)
    let host_read : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter (fun id -> Hashtbl.replace host_read id ()) param_ids;
    List.iter
      (fun (op : Ir.op) ->
        match op.Ir.name with
        | "memref.copy" -> Hashtbl.replace host_read (Ir.operand_n op 0).Ir.vid ()
        | _ -> ())
      pass1;
    let pass2 =
      List.filter
        (fun (op : Ir.op) ->
          match op.Ir.name with
          | "gpu.memcpy_d2h" -> Hashtbl.mem host_read (Ir.operand_n op 1).Ir.vid
          | _ -> true)
        pass1
    in
    (* 3. sweep: device allocs, host allocs and deallocs with no uses *)
    let used : (int, unit) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (op : Ir.op) ->
        match op.Ir.name with
        | "gpu.dealloc" | "memref.dealloc" -> ()
        | _ ->
            List.iter
              (fun (v : Ir.value) -> Hashtbl.replace used v.Ir.vid ())
              op.Ir.operands)
      pass2;
    let pass3 =
      List.filter
        (fun (op : Ir.op) ->
          match op.Ir.name with
          | "gpu.alloc" | "memref.alloc" ->
              Hashtbl.mem used (Ir.result op).Ir.vid
          | "gpu.dealloc" | "memref.dealloc" ->
              Hashtbl.mem used (Ir.operand_n op 0).Ir.vid
          | _ -> true)
        pass2
    in
    { f with Ir.regions = [ { Ir.blocks = [ { blk with Ir.bops = pass3 } ] } ] }
  in
  {
    m with
    Ir.mops =
      List.map
        (fun (op : Ir.op) ->
          if op.Ir.name = "func.func" then rewrite_host op else op)
        m.Ir.mops;
  }

(** [count_transfers m] — (h2d, d2h) op counts, for tests and reports. *)
let count_transfers (m : Ir.modul) =
  ( Ir.count_ops (fun o -> o.Ir.name = "gpu.memcpy_h2d") m,
    Ir.count_ops (fun o -> o.Ir.name = "gpu.memcpy_d2h") m )

(* -- Stream profile ------------------------------------------------------------ *)

type stream_profile = {
  h2d_bytes_per_row : int;
  d2h_bytes_per_row : int;
  launches : int;
  stream_safe : bool;
}

(* Ops a row-partitioned (streamed) host schedule may contain: every one
   of these is either row-proportional (transfers, launches over
   per-row threads) or row-independent (alloc bookkeeping).  Anything
   else — in particular host-side [memref.copy]/[memref.alloc], which
   could mix data across rows — makes splitting the batch unsound, and
   the streamed executor falls back to the monolithic schedule. *)
let streamable_op = function
  | "gpu.alloc" | "gpu.dealloc" | "gpu.memcpy_h2d" | "gpu.memcpy_d2h"
  | "gpu.launch_func" | "memref.dim" | "func.return" ->
      true
  | _ -> false

(** [stream_profile m ~entry] — per-row transfer volume and stream
    safety of the host function [entry] (run it on the {e optimized}
    module: copy elimination changes both).  Feeds the stream-pipelined
    schedule in {!Sim}. *)
let stream_profile (m : Ir.modul) ~entry : stream_profile =
  let cols_of (v : Ir.value) =
    match v.Ir.vty with
    | Types.MemRef ([ _; Some c ], _) -> c
    | Types.MemRef ([ Some c; _ ], _) -> c
    | _ -> 1
  in
  let host =
    List.find_opt
      (fun (o : Ir.op) ->
        o.Ir.name = "func.func" && Ir.string_attr o "sym_name" = Some entry)
      m.Ir.mops
  in
  match Option.bind host Ir.entry_block with
  | None ->
      { h2d_bytes_per_row = 0; d2h_bytes_per_row = 0; launches = 0;
        stream_safe = false }
  | Some blk ->
      List.fold_left
        (fun p (op : Ir.op) ->
          let p = { p with stream_safe = p.stream_safe && streamable_op op.Ir.name } in
          match op.Ir.name with
          | "gpu.memcpy_h2d" ->
              { p with
                h2d_bytes_per_row =
                  p.h2d_bytes_per_row + (4 * cols_of (Ir.operand_n op 0)) }
          | "gpu.memcpy_d2h" ->
              { p with
                d2h_bytes_per_row =
                  p.d2h_bytes_per_row + (4 * cols_of (Ir.operand_n op 0)) }
          | "gpu.launch_func" -> { p with launches = p.launches + 1 }
          | _ -> p)
        { h2d_bytes_per_row = 0; d2h_bytes_per_row = 0; launches = 0;
          stream_safe = true }
        blk.Ir.bops
