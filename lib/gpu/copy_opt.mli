(** Device buffer re-use / copy elimination (paper §IV-C): removes the
    naive schedule's host round-trips of intermediate results — uploads
    of still-valid device copies are deleted, downloads whose host
    destination is never read by host code are deleted, and unused
    allocations swept.  The kernel's real output is still downloaded
    exactly once. *)

open Spnc_mlir

val run : Ir.modul -> Ir.modul

(** [count_transfers m] — (h2d, d2h) op counts, for tests and reports. *)
val count_transfers : Ir.modul -> int * int

type stream_profile = {
  h2d_bytes_per_row : int;  (** upload volume per sample *)
  d2h_bytes_per_row : int;  (** download volume per sample *)
  launches : int;  (** kernel launches per schedule *)
  stream_safe : bool;
      (** the host schedule only contains row-partitionable ops, so the
          batch may be split into stream chunks *)
}

(** [stream_profile m ~entry] — per-row transfer volume and stream
    safety of host function [entry] (run on the optimized module).
    [stream_safe = false] when [entry] is missing or its body contains
    host ops that could mix data across rows (e.g. [memref.copy]). *)
val stream_profile : Ir.modul -> entry:string -> stream_profile
