(** GPU target lowering (paper §IV-C): bufferized LoSPN → host function +
    one GPU kernel per Task.

    Each kernel computes a {e single} sample; the batch is parallelized
    across GPU threads ([sample = block_id * block_dim + thread_id], with
    an [scf.if] bounds guard).  The LoSPN [lo_spn.kernel] becomes a host
    function that allocates device buffers, copies inputs host→device,
    launches the kernels in task order, and copies the result back.

    Differences from the CPU lowering, as in the paper:
    - discrete univariate distributions lower to a {e cascade of select
      operations} rather than a table lookup;
    - no loop vectorization (parallelism comes from the thread grid);
    - this naive lowering copies every intermediate task result back to
      the host and re-uploads it for consuming tasks; {!Copy_opt} removes
      those round-trips by re-using the device-resident buffer. *)

open Spnc_mlir
module C = Spnc_cir.Ops
module L = Spnc_cpu.Lower_cpu

(* gpu dialect op names *)
let gpu_func = "gpu.func"  (* device kernel function *)
let gpu_alloc = "gpu.alloc"
let gpu_dealloc = "gpu.dealloc"
let memcpy_h2d = "gpu.memcpy_h2d"  (* operands: host src, device dst *)
let memcpy_d2h = "gpu.memcpy_d2h"  (* operands: device src, host dst *)
let launch = "gpu.launch_func"  (* attrs: kernel, blockSize *)
let thread_id = "gpu.thread_id"
let block_id = "gpu.block_id"
let block_dim = "gpu.block_dim"

type options = { block_size : int }

let default_options = { block_size = 64 }

let register () =
  Spnc_cir.Ops.register ();
  let open Dialect in
  register_simple gpu_func (fun op -> expect_regions op 1);
  register_simple gpu_alloc (fun op -> expect_results op 1);
  register_simple gpu_dealloc (fun op -> expect_operands op 1);
  register_simple memcpy_h2d (fun op -> expect_operands op 2);
  register_simple memcpy_d2h (fun op -> expect_operands op 2);
  register_simple launch (fun op ->
      let open Dialect in
      let* _ = expect_attr op "kernel" in
      let* _ = expect_int_attr op "blockSize" in
      Ok ());
  register_simple ~pure:true thread_id (fun op -> expect_results op 1);
  register_simple ~pure:true block_id (fun op -> expect_results op 1);
  register_simple ~pure:true block_dim (fun op -> expect_results op 1)

let () = register ()

(* -- Select-cascade lowering for discrete leaves (§IV-C) -------------------- *)

(* r = marginal-nan ? one
     : x in bucket_0 ? p_0 : x in bucket_1 ? p_1 : ... : zero *)
let select_cascade e ~x ~(bounds : (float * float * float) list) ~is_log
    ~marginal ~base =
  let mode = L.Scalar in
  let zero = L.const_f e mode (if is_log then Float.neg_infinity else 0.0) ~base in
  let result =
    List.fold_left
      (fun acc (lo, hi, p) ->
        let lo_c = L.const_f e mode lo ~base in
        let hi_c = L.const_f e mode hi ~base in
        let ge = L.cmp e mode "oge" x lo_c in
        let lt = L.cmp e mode "olt" x hi_c in
        let inb = L.emit e (C.binary e.L.b C.andi ge lt ~ty:Types.Bool) in
        let p_c = L.const_f e mode p ~base in
        L.select e mode inb p_c acc ~base)
      zero (List.rev bounds)
  in
  if marginal then begin
    let isnan = L.cmp e mode "uno" x x in
    let one = L.const_f e mode (if is_log then 0.0 else 1.0) ~base in
    L.select e mode isnan one result ~base
  end
  else result

let categorical_bounds (probs : float array) =
  Array.to_list
    (Array.mapi (fun i p -> (float_of_int i -. 0.5, float_of_int i +. 0.5, p)) probs)

let histogram_bounds ~(breaks : int array) ~(densities : float array) =
  Array.to_list
    (Array.mapi
       (fun k d -> (float_of_int breaks.(k), float_of_int breaks.(k + 1), d))
       densities)

(* Body lowering: like the CPU scalar path, but discrete leaves become
   select cascades. *)
let lower_body_ops e ~(env : (int, Ir.value) Hashtbl.t) ~base (ops : Ir.op list)
    : unit =
  let get (v : Ir.value) =
    match Hashtbl.find_opt env v.Ir.vid with
    | Some v' -> v'
    | None -> invalid_arg (Printf.sprintf "lower_gpu: unmapped value %%%d" v.Ir.vid)
  in
  let setr (op : Ir.op) value = Hashtbl.replace env (Ir.result op).Ir.vid value in
  let mode = L.Scalar in
  List.iter
    (fun (op : Ir.op) ->
      e.L.cur_loc <- op.Ir.loc;
      let is_log =
        match op.Ir.results with
        | r :: _ -> (match r.Ir.vty with Types.Log _ -> true | _ -> false)
        | [] -> false
      in
      let marginal = Option.value ~default:false (Ir.bool_attr op "supportMarginal") in
      if op.Ir.name = Spnc_lospn.Ops.constant_name then
        setr op (L.const_f e mode (Option.get (Ir.float_attr op "value")) ~base)
      else if op.Ir.name = Spnc_lospn.Ops.mul_name then
        let l = get (Ir.operand_n op 0) and r = get (Ir.operand_n op 1) in
        setr op (L.bin e mode (if is_log then C.addf else C.mulf) l r ~base)
      else if op.Ir.name = Spnc_lospn.Ops.add_name then
        let l = get (Ir.operand_n op 0) and r = get (Ir.operand_n op 1) in
        setr op
          (if is_log then L.log_sum_exp e mode l r ~base
           else L.bin e mode C.addf l r ~base)
      else if op.Ir.name = Spnc_lospn.Ops.gaussian_name then
        let x = get (Ir.operand_n op 0) in
        setr op
          (L.gaussian e mode ~x
             ~mean:(Option.get (Ir.float_attr op "mean"))
             ~stddev:(Option.get (Ir.float_attr op "stddev"))
             ~is_log ~marginal ~base)
      else if op.Ir.name = Spnc_lospn.Ops.categorical_name then
        let x = get (Ir.operand_n op 0) in
        let probs = Option.get (Ir.dense_attr op "probabilities") in
        setr op
          (select_cascade e ~x ~bounds:(categorical_bounds probs) ~is_log
             ~marginal ~base)
      else if op.Ir.name = Spnc_lospn.Ops.histogram_name then begin
        let x = get (Ir.operand_n op 0) in
        let densities = Option.get (Ir.dense_attr op "densities") in
        let breaks =
          match Ir.attr op "buckets" with
          | Some (Attr.Array l) ->
              Array.of_list (List.map (fun a -> Option.get (Attr.as_int a)) l)
          | _ -> [||]
        in
        setr op
          (select_cascade e ~x
             ~bounds:(histogram_bounds ~breaks ~densities)
             ~is_log ~marginal ~base)
      end
      else if op.Ir.name = Spnc_lospn.Ops.yield_name then ()
      else invalid_arg ("lower_gpu: unexpected op in body: " ^ op.Ir.name))
    ops

(* One GPU kernel per task: computes a single sample. *)
let lower_task_kernel b (task : Ir.op) ~name : Ir.op =
  let tb = Option.get (Ir.entry_block task) in
  let arg_tys = List.map (fun (v : Ir.value) -> v.Ir.vty) (List.tl tb.Ir.bargs) in
  let ct =
    match List.rev arg_tys with
    | Types.MemRef (_, t) :: _ -> t
    | _ -> Types.F32
  in
  let base = Types.strip_log ct in
  let block =
    Builder.block b ~arg_tys (fun args ->
        let e = { L.b; opts = L.scalar_options; acc = []; cur_loc = Spnc_mlir.Loc.Unknown } in
        let arg_env = Hashtbl.create 8 in
        List.iter2
          (fun (old_arg : Ir.value) (newv : Ir.value) ->
            Hashtbl.replace arg_env old_arg.Ir.vid newv)
          (List.tl tb.Ir.bargs) args;
        (* sample index from the thread grid *)
        let bid = L.emit e (Builder.op b block_id ~results:[ Types.Index ] ()) in
        let bdim = L.emit e (Builder.op b block_dim ~results:[ Types.Index ] ()) in
        let tid = L.emit e (Builder.op b thread_id ~results:[ Types.Index ] ()) in
        let base_idx = L.emit e (C.binary b C.muli bid bdim ~ty:Types.Index) in
        let sample = L.emit e (C.binary b C.addi base_idx tid ~ty:Types.Index) in
        let rows_of = Hashtbl.create 8 in
        List.iter
          (fun (arg : Ir.value) ->
            let d = L.emit e (C.dim_op b arg ~index:0) in
            Hashtbl.replace rows_of arg.Ir.vid d)
          args;
        let rows_v = Hashtbl.find rows_of (List.hd args).Ir.vid in
        let guard =
          L.emit e
            (Builder.op b C.cmpi ~operands:[ sample; rows_v ]
               ~results:[ Types.Bool ]
               ~attrs:[ ("predicate", Attr.String "slt") ]
               ())
        in
        (* guarded body: reads, arithmetic, writes for this sample *)
        let then_block =
          Builder.block b ~arg_tys:[] (fun _ ->
              let e' = { L.b; opts = L.scalar_options; acc = []; cur_loc = Spnc_mlir.Loc.Unknown } in
              let env = Hashtbl.create 64 in
              List.iter
                (fun (op : Ir.op) ->
                  if op.Ir.name = Spnc_lospn.Ops.batch_read_name then begin
                    let buf = Hashtbl.find arg_env (Ir.operand_n op 0).Ir.vid in
                    let transposed =
                      Option.value ~default:false (Ir.bool_attr op "transposed")
                    in
                    let slot = Option.get (Ir.int_attr op "staticIndex") in
                    let rows_b = Hashtbl.find rows_of buf.Ir.vid in
                    let elem = Types.strip_log (Types.element_type (Ir.result op).Ir.vty) in
                    let idx =
                      L.linear_index e' ~transposed ~iv:sample ~slot
                        ~cols:(L.buffer_cols buf) ~rows_v:rows_b
                    in
                    let v = L.emit e' (C.load_op b buf idx ~ty:elem) in
                    Hashtbl.replace env (Ir.result op).Ir.vid v
                  end
                  else if op.Ir.name = Spnc_lospn.Ops.body_name then begin
                    let blk = Option.get (Ir.entry_block op) in
                    List.iter2
                      (fun (barg : Ir.value) (operand : Ir.value) ->
                        Hashtbl.replace env barg.Ir.vid
                          (Hashtbl.find env operand.Ir.vid))
                      blk.Ir.bargs op.Ir.operands;
                    lower_body_ops e' ~env ~base blk.Ir.bops;
                    let y =
                      List.find
                        (fun (o : Ir.op) -> o.Ir.name = Spnc_lospn.Ops.yield_name)
                        blk.Ir.bops
                    in
                    List.iter2
                      (fun (res : Ir.value) (yv : Ir.value) ->
                        Hashtbl.replace env res.Ir.vid
                          (Hashtbl.find env yv.Ir.vid))
                      op.Ir.results y.Ir.operands
                  end
                  else if op.Ir.name = Spnc_lospn.Ops.batch_write_name then begin
                    match op.Ir.operands with
                    | buf_lospn :: _bi :: values ->
                        let buf = Hashtbl.find arg_env buf_lospn.Ir.vid in
                        let transposed =
                          Option.value ~default:false (Ir.bool_attr op "transposed")
                        in
                        let rows_b = Hashtbl.find rows_of buf.Ir.vid in
                        List.iteri
                          (fun slot (v : Ir.value) ->
                            let idx =
                              L.linear_index e' ~transposed ~iv:sample ~slot
                                ~cols:(L.buffer_cols buf) ~rows_v:rows_b
                            in
                            L.emit_ e'
                              (C.store_op b buf idx (Hashtbl.find env v.Ir.vid)))
                          values
                    | _ -> invalid_arg "lower_gpu: malformed batch_write"
                  end)
                tb.Ir.bops;
              List.rev (Builder.op b C.yield () :: e'.acc))
        in
        L.emit_ e (C.if_op b ~cond:guard ~then_block);
        List.rev (Builder.op b C.return_ () :: e.acc))
  in
  Builder.op b gpu_func
    ~attrs:
      [
        ("sym_name", Attr.String name);
        ( "function_type",
          Attr.Type (Types.Func (List.map (fun (v : Ir.value) -> v.Ir.vty) block.Ir.bargs, []))
        );
      ]
    ~regions:[ Builder.region1 block ]
    ()

(** [run ?options m] lowers bufferized LoSPN kernels for the GPU.  The
    result contains [gpu.func] kernels plus a host [func.func] per LoSPN
    kernel. *)
let run ?(options = default_options) (m : Ir.modul) : Ir.modul =
  register ();
  let b = Builder.seed_from m in
  let out_ops = ref [] in
  List.iter
    (fun (kernel : Ir.op) ->
      if kernel.Ir.name = Spnc_lospn.Ops.kernel_name then begin
        let sym =
          Option.value ~default:"spn_kernel" (Ir.string_attr kernel "sym_name")
        in
        let kb = Option.get (Ir.entry_block kernel) in
        let kernel_names = Hashtbl.create 8 in
        let counter = ref 0 in
        List.iter
          (fun (op : Ir.op) ->
            if op.Ir.name = Spnc_lospn.Ops.task_name then begin
              let name = Printf.sprintf "%s_gpu_task_%d" sym !counter in
              incr counter;
              out_ops := lower_task_kernel b op ~name :: !out_ops;
              Hashtbl.replace kernel_names op name
            end)
          kb.Ir.bops;
        (* host function *)
        let arg_tys = List.map (fun (v : Ir.value) -> v.Ir.vty) kb.Ir.bargs in
        let block =
          Builder.block b ~arg_tys (fun args ->
              let e = { L.b; opts = L.scalar_options; acc = []; cur_loc = Spnc_mlir.Loc.Unknown } in
              (* host-side buffer for each LoSPN value *)
              let host = Hashtbl.create 16 in
              List.iter2
                (fun (old_arg : Ir.value) newv ->
                  Hashtbl.replace host old_arg.Ir.vid newv)
                kb.Ir.bargs args;
              let rows = L.emit e (C.dim_op b (List.hd args) ~index:0) in
              (* naive data movement: every task input is uploaded fresh,
                 every output downloaded — the round-trips Copy_opt removes *)
              let device_buffers = ref [] in
              let fresh_device (host_v : Ir.value) =
                let d =
                  L.emit e
                    (Builder.op b gpu_alloc ~operands:[ rows ]
                       ~results:[ host_v.Ir.vty ] ())
                in
                device_buffers := d :: !device_buffers;
                d
              in
              let upload (host_v : Ir.value) =
                let d = fresh_device host_v in
                L.emit_ e (Builder.op b memcpy_h2d ~operands:[ host_v; d ] ());
                d
              in
              List.iter
                (fun (op : Ir.op) ->
                  if op.Ir.name = Spnc_lospn.Ops.alloc_name then begin
                    (* intermediate buffer: host side now; device mirror
                       created lazily at each use (naive) *)
                    let res = Ir.result op in
                    let a =
                      L.emit e
                        (Builder.op b C.alloc ~operands:[ rows ]
                           ~results:[ res.Ir.vty ] ())
                    in
                    Hashtbl.replace host res.Ir.vid a
                  end
                  else if op.Ir.name = Spnc_lospn.Ops.dealloc_name then begin
                    let h = Hashtbl.find host (Ir.operand_n op 0).Ir.vid in
                    L.emit_ e (Builder.op b C.dealloc ~operands:[ h ] ())
                  end
                  else if op.Ir.name = Spnc_lospn.Ops.copy_name then begin
                    let s = Hashtbl.find host (Ir.operand_n op 0).Ir.vid in
                    let d = Hashtbl.find host (Ir.operand_n op 1).Ir.vid in
                    L.emit_ e (Builder.op b C.copy ~operands:[ s; d ] ())
                  end
                  else if op.Ir.name = Spnc_lospn.Ops.task_name then begin
                    (* naive: upload every input, launch, download output *)
                    let host_bufs =
                      List.map
                        (fun (v : Ir.value) -> Hashtbl.find host v.Ir.vid)
                        op.Ir.operands
                    in
                    let n_in = List.length host_bufs - 1 in
                    let dev_bufs =
                      List.mapi
                        (fun i hv -> if i < n_in then upload hv else fresh_device hv)
                        host_bufs
                    in
                    L.emit_ e
                      (Builder.op b launch ~operands:dev_bufs
                         ~attrs:
                           [
                             ("kernel", Attr.String (Hashtbl.find kernel_names op));
                             ("blockSize", Attr.Int options.block_size);
                           ]
                         ());
                    (* download the task output back to its host buffer *)
                    let out_host = List.nth host_bufs n_in in
                    let out_dev = List.nth dev_bufs n_in in
                    L.emit_ e
                      (Builder.op b memcpy_d2h ~operands:[ out_dev; out_host ] ())
                  end
                  else if op.Ir.name = Spnc_lospn.Ops.return_name then ()
                  else invalid_arg ("lower_gpu: unexpected kernel op " ^ op.Ir.name))
                kb.Ir.bops;
              (* free device buffers *)
              List.iter
                (fun d -> L.emit_ e (Builder.op b gpu_dealloc ~operands:[ d ] ()))
                (List.rev !device_buffers);
              List.rev (Builder.op b C.return_ () :: e.acc))
        in
        out_ops := C.func_op b ~sym_name:sym ~block :: !out_ops
      end
      else out_ops := kernel :: !out_ops)
    m.Ir.mops;
  Builder.modul ~name:m.Ir.mname (List.rev !out_ops)
