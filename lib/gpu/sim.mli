(** Functional + timing simulator for the GPU target.

    Functional part: executes the host function with real buffers; each
    [gpu.launch_func] runs the kernel body for {e every} thread of every
    block, so correctness of the whole GPU path — select cascades, bounds
    guards, the copy schedule after {!Copy_opt} — is checked exactly.

    Timing part: an analytic SM/occupancy/PCIe model applied to the
    actual operation stream (DESIGN.md §1).  The ledger separates
    transfer from compute time, producing the paper's Fig. 9. *)

open Spnc_mlir
module M = Spnc_machine.Machine

type ledger = {
  mutable h2d_s : float;
  mutable d2h_s : float;
  mutable kernel_s : float;
  mutable launch_s : float;
  mutable alloc_s : float;
  mutable overlap_s : float;
      (** time hidden by stream-pipelined transfer/compute overlap;
          0 for monolithic schedules *)
}

val serial_seconds : ledger -> float
(** Sum of the component columns — the cost with no overlap. *)

val total_seconds : ledger -> float
(** [serial_seconds - overlap_s] — the modelled wall-clock. *)

(** Fraction of the serial total spent moving data (the Fig. 9
    quantity); independent of how much a given stream count hides. *)
val transfer_fraction : ledger -> float

val pp_ledger : Format.formatter -> ledger -> unit

(** [kernel_thread_cycles gpu kernel] — modelled per-thread cost of one
    [gpu.func] body. *)
val kernel_thread_cycles : M.gpu -> Ir.op -> float

(** [kernel_seconds gpu kernel ~rows ~block_size] — one launch under the
    occupancy model (register pressure limits resident blocks; small
    grids cannot use every SM). *)
val kernel_seconds : M.gpu -> Ir.op -> rows:int -> block_size:int -> float

exception Gpu_error of string

type result = {
  ledger : ledger;
  output : float array;  (** contents of the last host parameter *)
}

(** [run m ~gpu ~entry ~inputs ~rows ~out_cols ()] executes the host
    function functionally; timing is modelled, execution exact. *)
val run :
  Ir.modul ->
  gpu:M.gpu ->
  entry:string ->
  inputs:float array list ->
  rows:int ->
  out_cols:int ->
  unit ->
  result

(** [estimate m ~gpu ~entry ~rows] — timing only, one whole-batch
    schedule. *)
val estimate : Ir.modul -> gpu:M.gpu -> entry:string -> rows:int -> ledger

val scale_ledger : ledger -> float -> ledger
val add_ledger : ledger -> ledger -> ledger

(** [estimate_chunked m ~gpu ~entry ~rows ~chunk] — [rows] samples
    processed in host-side chunks of [chunk], one upload/launch/download
    schedule per chunk (the paper's batch-size-64 execution; with small
    chunks the per-transfer latency dominates — Fig. 9). *)
val estimate_chunked :
  Ir.modul -> gpu:M.gpu -> entry:string -> rows:int -> chunk:int -> ledger

(** [pipeline_overlap ~streams chunks] — modelled seconds hidden by an
    [streams]-deep double-buffered pipeline over per-chunk
    [(copy_in, compute, copy_out)] components: one DMA engine, one
    compute engine, chunk [i]'s upload gated on chunk [i - streams]'s
    download (buffer reuse).  Guarantees
    [0 <= overlap <= min (total copies) (total compute)]; [streams <= 1]
    gives 0.  Exposed for the ledger-accounting tests. *)
val pipeline_overlap : streams:int -> (float * float * float) array -> float

(** [estimate_streamed m ~gpu ~entry ~rows ~chunk ~streams] — the
    {!estimate_chunked} schedule with the pipeline overlap recorded in
    [overlap_s]; component columns (and [transfer_fraction]) match the
    monolithic chunked ledger. *)
val estimate_streamed :
  Ir.modul ->
  gpu:M.gpu ->
  entry:string ->
  rows:int ->
  chunk:int ->
  streams:int ->
  ledger

(** [run_streamed m ~gpu ~entry ~inputs ~rows ~out_cols ~streams ()] —
    functional streamed execution: the batch is split into [streams]
    chunks, each run exactly, outputs concatenated per slot —
    bit-identical to the monolithic {!run}.  Falls back to {!run} when
    [streams <= 1] or the host schedule is not stream-safe
    ({!Copy_opt.stream_profile}). *)
val run_streamed :
  Ir.modul ->
  gpu:M.gpu ->
  entry:string ->
  inputs:float array list ->
  rows:int ->
  out_cols:int ->
  streams:int ->
  unit ->
  result
