(** Functional + timing simulator for the GPU target.

    Functional part: executes the host function with real buffers; each
    [gpu.launch_func] runs the kernel body for {e every} thread of every
    block through the cir interpreter (the grid intrinsics are bound per
    thread), so correctness of the whole GPU path — select cascades,
    bounds guards, copy schedule after {!Copy_opt} — is checked exactly.

    Timing part: an analytic SM/occupancy/PCIe model of the RTX-class
    device descriptions in {!Spnc_machine.Machine}, applied to the actual
    operation stream: transfer times from real buffer sizes, kernel times
    from the per-thread instruction cost and an occupancy model in which
    high per-thread register demand limits resident blocks — which is why
    small block sizes win in the paper's sweep (§V-A.1).  The ledger
    separates transfer from compute time, producing Fig. 9. *)

open Spnc_mlir
module CI = Spnc_cir.Interp
module M = Spnc_machine.Machine
module Obs_trace = Spnc_obs.Trace
module Obs_metrics = Spnc_obs.Metrics

(* Host-op observability: spans carry the modelled seconds as args (the
   span duration itself is simulator wall time, which is meaningless as
   a GPU measurement), counters mirror the ledger's traffic. *)
let m_bytes_h2d = Obs_metrics.counter "gpu.bytes_h2d"
let m_bytes_d2h = Obs_metrics.counter "gpu.bytes_d2h"
let m_launches = Obs_metrics.counter "gpu.launches"
let m_stream_chunks = Obs_metrics.counter "gpu.stream_chunks"

type ledger = {
  mutable h2d_s : float;
  mutable d2h_s : float;
  mutable kernel_s : float;
  mutable launch_s : float;
  mutable alloc_s : float;
  mutable overlap_s : float;
      (** time hidden by stream-pipelined transfer/compute overlap;
          0 for monolithic schedules *)
}

let empty_ledger () =
  {
    h2d_s = 0.0;
    d2h_s = 0.0;
    kernel_s = 0.0;
    launch_s = 0.0;
    alloc_s = 0.0;
    overlap_s = 0.0;
  }

(* What the schedule would cost with every component serialized — the
   denominator of [transfer_fraction], which characterizes the workload
   independently of how well a given stream count hides it. *)
let serial_seconds l =
  l.h2d_s +. l.d2h_s +. l.kernel_s +. l.launch_s +. l.alloc_s

let total_seconds l = serial_seconds l -. l.overlap_s

let transfer_fraction l =
  let t = serial_seconds l in
  if t <= 0.0 then 0.0 else (l.h2d_s +. l.d2h_s) /. t

let pp_ledger ppf l =
  Fmt.pf ppf
    "h2d %.6fs d2h %.6fs kernel %.6fs launch %.6fs alloc %.6fs overlap %.6fs \
     (transfers %.1f%%)"
    l.h2d_s l.d2h_s l.kernel_s l.launch_s l.alloc_s l.overlap_s
    (100.0 *. transfer_fraction l)

(* -- Per-thread kernel cost --------------------------------------------------- *)

let rec op_cycles (g : M.gpu) (op : Ir.op) : float =
  let nested =
    List.fold_left
      (fun acc (r : Ir.region) ->
        List.fold_left
          (fun acc (b : Ir.block) ->
            List.fold_left (fun acc o -> acc +. op_cycles g o) acc b.Ir.bops)
          acc r.Ir.blocks)
      0.0 op.Ir.regions
  in
  nested
  +.
  match op.Ir.name with
  | "arith.constant" -> 0.25
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.maxf" | "arith.minf" ->
      g.M.gpu_flop_cost
  | "arith.divf" -> 4.0 *. g.M.gpu_flop_cost
  | "math.log" | "math.exp" | "math.log1p" -> g.M.gpu_special_cost
  | "arith.select" -> g.M.gpu_select_cost
  | "arith.cmpf" | "arith.cmpi" | "arith.andi" | "arith.ori" -> 1.0
  | "arith.addi" | "arith.muli" | "arith.divi" -> 0.5
  | "arith.fptosi" | "arith.sitofp" -> 1.0
  | "memref.load" -> g.M.gpu_load_cost
  | "memref.store" -> g.M.gpu_store_cost
  | "memref.dim" -> 0.5
  | "gpu.thread_id" | "gpu.block_id" | "gpu.block_dim" -> 0.5
  | "scf.if" -> 1.0  (* predicated execution *)
  | "func.return" | "scf.yield" -> 0.0
  | _ -> 1.0

let kernel_thread_cycles (g : M.gpu) (kernel : Ir.op) : float =
  List.fold_left
    (fun acc o -> acc +. op_cycles g o)
    0.0
    (Ir.single_region_ops kernel)

(* Register demand estimate: base machine state plus live SPN values.  A
   Turing SM has a 64k-register file; blocks whose threads need too many
   registers limit occupancy. *)
let regs_per_thread (kernel : Ir.op) : int =
  let body_ops =
    List.fold_left
      (fun acc (o : Ir.op) ->
        acc + 1 + List.length (Ir.single_region_ops o))
      0
      (Ir.single_region_ops kernel)
  in
  min 255 (24 + (body_ops / 40))

(** [kernel_seconds g kernel ~rows ~block_size] — one launch. *)
let kernel_seconds (g : M.gpu) (kernel : Ir.op) ~rows ~block_size : float =
  let per_thread = kernel_thread_cycles g kernel in
  let blocks = (rows + block_size - 1) / block_size in
  let total_threads = blocks * block_size in
  let regs = regs_per_thread kernel in
  let reg_limit_threads = 65536 / regs in
  let resident_blocks =
    min (min 16 (reg_limit_threads / block_size)) (g.M.max_threads_per_sm / block_size)
  in
  let spill_factor, resident_blocks =
    if resident_blocks = 0 then
      (* a single block does not fit in the register file: spill *)
      (float_of_int (regs * block_size) /. 65536.0, 1)
    else (1.0, resident_blocks)
  in
  let resident_warps = resident_blocks * block_size / g.M.warp_size in
  (* ~2 resident warps per SM already hide most latency here *)
  let efficiency = Float.min 1.0 (float_of_int resident_warps /. 2.0) /. spill_factor in
  (* 64 FP32 lanes per SM; small grids cannot use every SM.  Dual-issue
     and instruction-level parallelism hide about half the latency of the
     straight-line SPN code. *)
  let lanes = float_of_int (min blocks g.M.sm_count * 64) in
  let ilp = 2.0 in
  let cycles = per_thread *. float_of_int total_threads /. lanes /. ilp in
  let block_sched =
    float_of_int blocks *. 300.0 /. float_of_int g.M.sm_count
    (* block dispatch cost in cycles *)
  in
  M.gpu_cycles_to_seconds g ((cycles /. efficiency) +. block_sched)

let transfer_seconds (g : M.gpu) ~bytes =
  (g.M.transfer_latency_us *. 1e-6)
  +. (float_of_int bytes /. (g.M.pcie_gb_per_s *. 1e9))

(* -- Execution ------------------------------------------------------------------- *)

exception Gpu_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Gpu_error s)) fmt

(* Execute a kernel body for one thread. *)
let exec_thread (ctx : CI.ctx) (kernel : Ir.op) ~args ~block ~thread ~block_size =
  let blk = Option.get (Ir.entry_block kernel) in
  List.iter2 (fun (barg : Ir.value) v -> CI.set ctx barg v) blk.Ir.bargs args;
  List.iter
    (fun (op : Ir.op) ->
      match op.Ir.name with
      | "gpu.thread_id" -> CI.set ctx (Ir.result op) (CI.I thread)
      | "gpu.block_id" -> CI.set ctx (Ir.result op) (CI.I block)
      | "gpu.block_dim" -> CI.set ctx (Ir.result op) (CI.I block_size)
      | _ -> CI.exec_op ctx op)
    blk.Ir.bops

type result = {
  ledger : ledger;
  output : float array;  (** contents of the last host parameter *)
}

(** [run m ~gpu ~entry ~inputs ~rows ~out_cols ()] executes the host
    function functionally and returns the output buffer plus the timing
    ledger (timing is modelled, execution is exact). *)
let run (m : Ir.modul) ~(gpu : M.gpu) ~entry ~(inputs : float array list)
    ~rows ~out_cols () : result =
  let kernels = Hashtbl.create 8 in
  let hosts = Hashtbl.create 8 in
  List.iter
    (fun (op : Ir.op) ->
      match (op.Ir.name, Ir.string_attr op "sym_name") with
      | "gpu.func", Some n -> Hashtbl.replace kernels n op
      | "func.func", Some n -> Hashtbl.replace hosts n op
      | _ -> ())
    m.Ir.mops;
  let host =
    match Hashtbl.find_opt hosts entry with
    | Some h -> h
    | None -> fail "host function %S not found" entry
  in
  let blk = Option.get (Ir.entry_block host) in
  let ledger = empty_ledger () in
  let ctx = { CI.funcs = Hashtbl.create 4; values = Hashtbl.create 1024 } in
  (* bind host parameters *)
  let cols_of (v : Ir.value) =
    match v.Ir.vty with
    | Types.MemRef ([ _; Some c ], _) -> c
    | Types.MemRef ([ Some c; _ ], _) -> c
    | _ -> 1
  in
  let out_buf = ref [||] in
  let rec bind args ins =
    match (args, ins) with
    | [ out_arg ], [] ->
        let data = Array.make (rows * out_cols) 0.0 in
        out_buf := data;
        CI.set ctx out_arg (CI.Buf { CI.data; rows; cols = cols_of out_arg })
    | arg :: rest, data :: more ->
        CI.set ctx arg (CI.Buf { CI.data; rows; cols = cols_of arg });
        bind rest more
    | _ -> fail "host arity mismatch"
  in
  bind blk.Ir.bargs inputs;
  let buf v =
    match CI.lookup ctx v with CI.Buf b -> b | _ -> fail "expected buffer"
  in
  let bytes_of (b : CI.buffer) = 4 * Array.length b.CI.data in
  List.iter
    (fun (op : Ir.op) ->
      match op.Ir.name with
      | "memref.dim" | "memref.alloc" | "memref.dealloc" | "memref.copy" ->
          CI.exec_op ctx op
      | "gpu.alloc" ->
          ledger.alloc_s <- ledger.alloc_s +. 0.3e-6;
          let res = Ir.result op in
          let cols = cols_of res in
          CI.set ctx res
            (CI.Buf { CI.data = Array.make (rows * cols) 0.0; rows; cols })
      | "gpu.dealloc" -> ledger.alloc_s <- ledger.alloc_s +. 0.1e-6
      | "gpu.memcpy_h2d" ->
          let src = buf (Ir.operand_n op 0) and dst = buf (Ir.operand_n op 1) in
          let bytes = bytes_of src in
          let modelled = transfer_seconds gpu ~bytes in
          Obs_metrics.counter_incr ~by:bytes m_bytes_h2d;
          Obs_trace.with_span ~cat:"gpu" "upload"
            ~args:(fun () ->
              Obs_trace.[ ("bytes", I bytes); ("modelled_s", F modelled) ])
            (fun () ->
              Array.blit src.CI.data 0 dst.CI.data 0 (Array.length src.CI.data));
          ledger.h2d_s <- ledger.h2d_s +. modelled
      | "gpu.memcpy_d2h" ->
          let src = buf (Ir.operand_n op 0) and dst = buf (Ir.operand_n op 1) in
          let bytes = bytes_of src in
          let modelled = transfer_seconds gpu ~bytes in
          Obs_metrics.counter_incr ~by:bytes m_bytes_d2h;
          Obs_trace.with_span ~cat:"gpu" "download"
            ~args:(fun () ->
              Obs_trace.[ ("bytes", I bytes); ("modelled_s", F modelled) ])
            (fun () ->
              Array.blit src.CI.data 0 dst.CI.data 0 (Array.length src.CI.data));
          ledger.d2h_s <- ledger.d2h_s +. modelled
      | "gpu.launch_func" ->
          let kname = Option.get (Ir.string_attr op "kernel") in
          let kernel =
            match Hashtbl.find_opt kernels kname with
            | Some k -> k
            | None -> fail "kernel %S not found" kname
          in
          let block_size = Option.get (Ir.int_attr op "blockSize") in
          let blocks = (rows + block_size - 1) / block_size in
          let args = List.map (CI.lookup ctx) op.Ir.operands in
          let modelled = kernel_seconds gpu kernel ~rows ~block_size in
          Obs_metrics.counter_incr m_launches;
          Obs_trace.with_span ~cat:"gpu" "compute"
            ~args:(fun () ->
              Obs_trace.
                [
                  ("kernel", S kname);
                  ("rows", I rows);
                  ("block_size", I block_size);
                  ("modelled_s", F modelled);
                ])
            (fun () ->
              for b = 0 to blocks - 1 do
                for t = 0 to block_size - 1 do
                  exec_thread ctx kernel ~args ~block:b ~thread:t ~block_size
                done
              done);
          ledger.launch_s <- ledger.launch_s +. (gpu.M.kernel_launch_us *. 1e-6);
          ledger.kernel_s <- ledger.kernel_s +. modelled
      | "func.return" -> ()
      | other -> fail "gpu sim: unsupported host op %s" other)
    blk.Ir.bops;
  { ledger; output = !out_buf }

let scale_ledger l k =
  {
    h2d_s = l.h2d_s *. k;
    d2h_s = l.d2h_s *. k;
    kernel_s = l.kernel_s *. k;
    launch_s = l.launch_s *. k;
    alloc_s = l.alloc_s *. k;
    overlap_s = l.overlap_s *. k;
  }

let add_ledger a b =
  {
    h2d_s = a.h2d_s +. b.h2d_s;
    d2h_s = a.d2h_s +. b.d2h_s;
    kernel_s = a.kernel_s +. b.kernel_s;
    launch_s = a.launch_s +. b.launch_s;
    alloc_s = a.alloc_s +. b.alloc_s;
    overlap_s = a.overlap_s +. b.overlap_s;
  }

(** [estimate m ~gpu ~entry ~rows] — timing ledger only, no execution;
    used by the benchmark harness at paper-scale row counts. *)
let estimate (m : Ir.modul) ~(gpu : M.gpu) ~entry ~rows : ledger =
  let kernels = Hashtbl.create 8 in
  List.iter
    (fun (op : Ir.op) ->
      match (op.Ir.name, Ir.string_attr op "sym_name") with
      | "gpu.func", Some n -> Hashtbl.replace kernels n op
      | _ -> ())
    m.Ir.mops;
  let host =
    List.find
      (fun (o : Ir.op) ->
        o.Ir.name = "func.func" && Ir.string_attr o "sym_name" = Some entry)
      m.Ir.mops
  in
  let blk = Option.get (Ir.entry_block host) in
  let ledger = empty_ledger () in
  let cols_of (v : Ir.value) =
    match v.Ir.vty with
    | Types.MemRef ([ _; Some c ], _) -> c
    | Types.MemRef ([ Some c; _ ], _) -> c
    | _ -> 1
  in
  List.iter
    (fun (op : Ir.op) ->
      match op.Ir.name with
      | "gpu.alloc" -> ledger.alloc_s <- ledger.alloc_s +. 0.3e-6
      | "gpu.dealloc" -> ledger.alloc_s <- ledger.alloc_s +. 0.1e-6
      | "gpu.memcpy_h2d" ->
          let bytes = 4 * rows * cols_of (Ir.operand_n op 0) in
          ledger.h2d_s <- ledger.h2d_s +. transfer_seconds gpu ~bytes
      | "gpu.memcpy_d2h" ->
          let bytes = 4 * rows * cols_of (Ir.operand_n op 0) in
          ledger.d2h_s <- ledger.d2h_s +. transfer_seconds gpu ~bytes
      | "gpu.launch_func" ->
          let kname = Option.get (Ir.string_attr op "kernel") in
          let kernel = Hashtbl.find kernels kname in
          let block_size = Option.get (Ir.int_attr op "blockSize") in
          ledger.launch_s <- ledger.launch_s +. (gpu.M.kernel_launch_us *. 1e-6);
          ledger.kernel_s <-
            ledger.kernel_s +. kernel_seconds gpu kernel ~rows ~block_size
      | _ -> ())
    blk.Ir.bops;
  ledger

(** [estimate_chunked m ~gpu ~entry ~rows ~chunk] — ledger for processing
    [rows] samples in host-side chunks of [chunk] samples, one full
    upload/launch/download schedule per chunk.  With small chunk sizes
    (the paper's GPU batch size of 64) per-transfer latency dominates —
    exactly the Fig. 9 situation. *)
let estimate_chunked (m : Ir.modul) ~gpu ~entry ~rows ~chunk : ledger =
  let chunk = max 1 (min chunk rows) in
  let full = rows / chunk in
  let rem = rows mod chunk in
  let l_full = scale_ledger (estimate m ~gpu ~entry ~rows:chunk) (float_of_int full) in
  if rem = 0 then l_full else add_ledger l_full (estimate m ~gpu ~entry ~rows:rem)

(* -- Stream pipelining (docs/PERFORMANCE.md §6) -------------------------------- *)

(* Discrete-event model of an [streams]-deep double-buffered pipeline:
   one DMA engine (uploads and downloads share the PCIe link) and one
   compute engine.  Per chunk i the dependencies are
     upload_i  needs: DMA free, and chunk (i - streams)'s download done
               (its stream buffer is being reused);
     kernel_i  needs: compute free, upload_i done;
     download_i needs: DMA free, kernel_i done.
   The DMA engine is scheduled greedily: among the next pending upload
   and the next pending download, issue whichever can start earlier
   (tie goes to the download — draining frees a stream buffer).

   Soundness of the ledger column: the makespan is at least the sum of
   all copy times (one DMA engine) and at least the sum of all compute
   times (one compute engine), so
     overlap = serial - makespan <= min(total transfer, total compute)
   — the invariant the ledger tests assert.  With [streams = 1] the
   buffer-reuse edge serializes everything and the overlap is 0. *)
let pipeline_overlap ~streams (chunks : (float * float * float) array) : float =
  let n = Array.length chunks in
  if n = 0 || streams <= 1 then 0.0
  else begin
    let u_done = Array.make n 0.0 in
    let k_done = Array.make n 0.0 in
    let d_done = Array.make n 0.0 in
    let dma_free = ref 0.0 in
    let next_u = ref 0 and next_d = ref 0 in
    while !next_d < n do
      let up_ready u =
        if u >= n then None
        else if u < streams then Some 0.0
        else if u - streams < !next_d then Some d_done.(u - streams)
        else None (* reused buffer's download not yet issued *)
      in
      (* the next download needs its kernel scheduled, i.e. its upload
         issued first; uploads and downloads are each FIFO *)
      let dn_ready d = if d < !next_u then Some k_done.(d) else None in
      let issue_upload () =
        let u = !next_u in
        let ci, cp, _ = chunks.(u) in
        let ready = Option.get (up_ready u) in
        u_done.(u) <- Float.max !dma_free ready +. ci;
        dma_free := u_done.(u);
        k_done.(u) <-
          Float.max (if u > 0 then k_done.(u - 1) else 0.0) u_done.(u) +. cp;
        incr next_u
      in
      let issue_download ready =
        let d = !next_d in
        let _, _, co = chunks.(d) in
        d_done.(d) <- Float.max !dma_free ready +. co;
        dma_free := d_done.(d);
        incr next_d
      in
      match (up_ready !next_u, dn_ready !next_d) with
      | Some ru, Some rd ->
          if Float.max !dma_free ru < Float.max !dma_free rd then
            issue_upload ()
          else issue_download rd
      | Some _, None -> issue_upload ()
      | None, Some rd -> issue_download rd
      | None, None -> assert false (* next_d < n implies a pending op *)
    done;
    let makespan = d_done.(n - 1) in
    let serial =
      Array.fold_left (fun a (ci, cp, co) -> a +. ci +. cp +. co) 0.0 chunks
    in
    Float.max 0.0 (serial -. makespan)
  end

(* Per-chunk (copy-in, compute, copy-out) components for [rows] samples
   split into chunks of [chunk]. *)
let chunk_components m ~gpu ~entry ~rows ~chunk =
  let chunk = max 1 (min chunk rows) in
  let full = rows / chunk in
  let rem = rows mod chunk in
  let comp l = (l.h2d_s, l.kernel_s +. l.launch_s, l.d2h_s) in
  let c_full = comp (estimate m ~gpu ~entry ~rows:chunk) in
  Array.init
    (full + if rem > 0 then 1 else 0)
    (fun i ->
      if i < full then c_full else comp (estimate m ~gpu ~entry ~rows:rem))

(** [estimate_streamed m ~gpu ~entry ~rows ~chunk ~streams] — the
    chunked schedule of {!estimate_chunked} with [streams]-deep
    double-buffered overlap recorded in [overlap_s]; component columns
    (and hence [transfer_fraction]) are identical to the monolithic
    chunked ledger. *)
let estimate_streamed (m : Ir.modul) ~gpu ~entry ~rows ~chunk ~streams : ledger =
  let l = estimate_chunked m ~gpu ~entry ~rows ~chunk in
  l.overlap_s <-
    pipeline_overlap ~streams (chunk_components m ~gpu ~entry ~rows ~chunk);
  l

(** [run_streamed m ~gpu ~entry ~inputs ~rows ~out_cols ~streams ()] —
    functional streamed execution: the batch is split into [streams]
    chunks, every chunk runs exactly through {!run}, and the per-slot
    outputs are concatenated so the result is bit-identical to the
    monolithic [run].  The ledger carries the serial component sums plus
    the modelled pipeline overlap.  Falls back to the monolithic path
    when the host schedule is not stream-safe ({!Copy_opt.stream_profile})
    or the split would be trivial. *)
let run_streamed (m : Ir.modul) ~(gpu : M.gpu) ~entry
    ~(inputs : float array list) ~rows ~out_cols ~streams () : result =
  let streams = max 1 streams in
  let chunk = if streams = 1 then rows else (rows + streams - 1) / streams in
  if streams = 1 || rows <= 1 || chunk >= rows
     || not (Copy_opt.stream_profile m ~entry).Copy_opt.stream_safe
  then run m ~gpu ~entry ~inputs ~rows ~out_cols ()
  else begin
    let host =
      List.find
        (fun (o : Ir.op) ->
          o.Ir.name = "func.func" && Ir.string_attr o "sym_name" = Some entry)
        m.Ir.mops
    in
    let blk = Option.get (Ir.entry_block host) in
    let cols_of (v : Ir.value) =
      match v.Ir.vty with
      | Types.MemRef ([ _; Some c ], _) -> c
      | Types.MemRef ([ Some c; _ ], _) -> c
      | _ -> 1
    in
    let in_cols =
      match List.rev blk.Ir.bargs with
      | _out :: rev_ins -> List.rev_map cols_of rev_ins
      | [] -> fail "host function %S has no parameters" entry
    in
    if List.length in_cols <> List.length inputs then
      fail "run_streamed: %d inputs for %d host input parameters"
        (List.length inputs) (List.length in_cols);
    let out = Array.make (rows * out_cols) 0.0 in
    let ledger = empty_ledger () in
    let components = ref [] in
    let lo = ref 0 in
    while !lo < rows do
      let crows = min chunk (rows - !lo) in
      let sliced =
        List.map2
          (fun data cols -> Array.sub data (!lo * cols) (crows * cols))
          inputs in_cols
      in
      Obs_metrics.counter_incr m_stream_chunks;
      let r =
        Obs_trace.with_span ~cat:"gpu" "stream-chunk"
          ~args:(fun () ->
            Obs_trace.[ ("lo", I !lo); ("rows", I crows) ])
          (fun () -> run m ~gpu ~entry ~inputs:sliced ~rows:crows ~out_cols ())
      in
      (* chunk outputs are slot-transposed like the full output: slot j of
         the chunk is entries [j*crows, (j+1)*crows) *)
      for j = 0 to out_cols - 1 do
        Array.blit r.output (j * crows) out ((j * rows) + !lo) crows
      done;
      components :=
        (r.ledger.h2d_s, r.ledger.kernel_s +. r.ledger.launch_s, r.ledger.d2h_s)
        :: !components;
      ledger.h2d_s <- ledger.h2d_s +. r.ledger.h2d_s;
      ledger.d2h_s <- ledger.d2h_s +. r.ledger.d2h_s;
      ledger.kernel_s <- ledger.kernel_s +. r.ledger.kernel_s;
      ledger.launch_s <- ledger.launch_s +. r.ledger.launch_s;
      ledger.alloc_s <- ledger.alloc_s +. r.ledger.alloc_s;
      lo := !lo + crows
    done;
    ledger.overlap_s <-
      pipeline_overlap ~streams (Array.of_list (List.rev !components));
    if Obs_trace.enabled () then
      Obs_trace.instant ~cat:"gpu" "overlap"
        ~args:
          Obs_trace.
            [ ("streams", I streams); ("modelled_s", F ledger.overlap_s) ];
    { ledger; output = out }
  end
