(** Machine descriptions and the instruction-level cost model.

    OCaml cannot emit AVX2/AVX-512/PTX, so ISA- and device-specific
    execution times in the benchmark harness are produced by applying
    these calibrated per-instruction costs to the {e actual} instruction
    streams our backends generate (DESIGN.md §1).  The constants are
    order-of-magnitude calibrations against the paper's absolute numbers,
    not microarchitectural truth; EXPERIMENTS.md records the resulting
    paper-vs-measured ratios. *)

(** Vector instruction sets; [Scalar] means vectorization disabled. *)
type isa = Scalar | AVX2 | AVX512 | Neon

let isa_to_string = function
  | Scalar -> "scalar"
  | AVX2 -> "avx2"
  | AVX512 -> "avx512"
  | Neon -> "neon"

(** [simd_width isa ~bits] — vector lanes for an element of [bits] width.
    AVX2 is 256-bit, AVX-512 512-bit, Neon 128-bit. *)
let simd_width isa ~bits =
  match isa with
  | Scalar -> 1
  | AVX2 -> 256 / bits
  | AVX512 -> 512 / bits
  | Neon -> 128 / bits

(** Vector math libraries providing vectorized elementary functions
    (paper §IV-B: Intel SVML, GLIBC libmvec). *)
type veclib = No_veclib | SVML | Libmvec

let veclib_to_string = function
  | No_veclib -> "none"
  | SVML -> "svml"
  | Libmvec -> "libmvec"

let veclib_of_string = function
  | "none" -> Some No_veclib
  | "svml" -> Some SVML
  | "libmvec" -> Some Libmvec
  | _ -> None

type cpu = {
  cpu_name : string;
  isa : isa;
  freq_ghz : float;
  cores : int;
  veclib : veclib;
  (* per-operation latency in cycles (throughput-adjusted) *)
  flop_cost : float;  (** add/mul/fma *)
  div_cost : float;
  scalar_call_cost : float;  (** scalar libm call (log/exp): ~20-40 cyc *)
  veclib_call_cost : float;  (** one vectorized log/exp over a full vector *)
  load_cost : float;
  store_cost : float;
  gather_cost_per_lane : float;  (** gathers cost per element on x86 *)
  shuffle_cost : float;  (** one shuffle/permute instruction *)
  vec_insert_extract_cost : float;  (** scalar <-> vector lane move *)
  branch_cost : float;
  loop_overhead : float;  (** per-iteration loop bookkeeping *)
}

type gpu = {
  gpu_name : string;
  sm_count : int;
  gpu_freq_ghz : float;
  warp_size : int;
  max_threads_per_sm : int;
  pcie_gb_per_s : float;  (** host<->device bandwidth *)
  kernel_launch_us : float;  (** fixed launch overhead per kernel *)
  transfer_latency_us : float;  (** fixed per-copy latency *)
  module_load_ms : float;
      (** one-time CUDA context + CUBIN module-load overhead per run *)
  gpu_flop_cost : float;  (** cycles per fp op per thread *)
  gpu_special_cost : float;  (** log/exp via SFU/libdevice *)
  gpu_load_cost : float;
  gpu_store_cost : float;
  gpu_select_cost : float;
}

(** The Ryzen 9 3900XT system of the paper (AVX2, libmvec). *)
let ryzen_3900xt =
  {
    cpu_name = "AMD Ryzen 9 3900XT";
    isa = AVX2;
    freq_ghz = 3.8;
    cores = 12;
    veclib = Libmvec;
    flop_cost = 0.5;
    div_cost = 4.0;
    scalar_call_cost = 7.0;
    veclib_call_cost = 40.0;
    load_cost = 0.5;
    store_cost = 1.0;
    gather_cost_per_lane = 1.6;
    shuffle_cost = 1.0;
    vec_insert_extract_cost = 6.0;
    branch_cost = 1.0;
    loop_overhead = 2.0;
  }

(** The dual Xeon Platinum 9242 system of the paper (AVX-512, SVML). *)
let xeon_9242 =
  {
    cpu_name = "Intel Xeon Platinum 9242";
    isa = AVX512;
    freq_ghz = 2.3;
    cores = 48;
    veclib = SVML;
    flop_cost = 0.5;
    div_cost = 4.0;
    scalar_call_cost = 7.5;
    veclib_call_cost = 46.0;
    load_cost = 0.5;
    store_cost = 1.0;
    gather_cost_per_lane = 1.5;
    shuffle_cost = 1.0;
    vec_insert_extract_cost = 6.0;
    branch_cost = 1.0;
    loop_overhead = 2.0;
  }

(** A Neoverse-class ARM core with 128-bit Neon — the paper notes
    vectorization is supported on x86 and ARM Neon (Â§IV-B). *)
let neoverse_n1 =
  {
    cpu_name = "ARM Neoverse N1";
    isa = Neon;
    freq_ghz = 2.6;
    cores = 16;
    veclib = Libmvec;
    flop_cost = 0.5;
    div_cost = 5.0;
    scalar_call_cost = 8.0;
    veclib_call_cost = 24.0;
    load_cost = 0.6;
    store_cost = 1.0;
    gather_cost_per_lane = 2.0;  (* no hardware gather: scalarized loads *)
    shuffle_cost = 1.0;
    vec_insert_extract_cost = 4.0;
    branch_cost = 1.0;
    loop_overhead = 2.0;
  }

(** The RTX 2070 Super of the paper. *)
let rtx_2070_super =
  {
    gpu_name = "NVIDIA RTX 2070 Super";
    sm_count = 40;
    gpu_freq_ghz = 1.77;
    warp_size = 32;
    max_threads_per_sm = 1024;
    pcie_gb_per_s = 11.0;
    kernel_launch_us = 1.6;
    transfer_latency_us = 4.0;
    module_load_ms = 35.0;
    gpu_flop_cost = 0.55;
    gpu_special_cost = 2.0;
    gpu_load_cost = 1.5;
    gpu_store_cost = 4.0;
    gpu_select_cost = 1.0;
  }

(** An RDNA2-class AMD GPU: the paper notes the lowering result "uses
    generic GPU abstractions and could also be used to target GPUs from
    other vendors" (Â§IV-C); only the machine description changes. *)
let radeon_6800 =
  {
    gpu_name = "AMD Radeon RX 6800";
    sm_count = 60;  (* compute units *)
    gpu_freq_ghz = 1.82;
    warp_size = 32;  (* wave32 *)
    max_threads_per_sm = 1024;
    pcie_gb_per_s = 13.0;
    kernel_launch_us = 2.2;
    transfer_latency_us = 5.0;
    module_load_ms = 30.0;
    gpu_flop_cost = 0.55;
    gpu_special_cost = 2.5;
    gpu_load_cost = 1.6;
    gpu_store_cost = 4.0;
    gpu_select_cost = 1.0;
  }

(** Python / numpy dispatch model for the SPFlow baseline: the Python
    interpreter walks the DAG node by node; every node evaluation incurs
    interpreter + numpy dispatch overhead, then does vectorized work over
    the batch. *)
type python_model = {
  per_node_dispatch_us : float;  (** interpreter + numpy call overhead *)
  per_element_ns : float;  (** amortized numpy per-element work *)
}

let spflow_python = { per_node_dispatch_us = 11.0; per_element_ns = 33.0 }

(** TensorFlow graph-executor model: per-op kernel dispatch is cheaper
    than Python but still per-node; per-element work is optimized. *)
type tf_model = {
  per_op_dispatch_us : float;
  tf_per_element_ns : float;
  tf_gpu_per_op_dispatch_us : float;
  tf_gpu_per_element_ns : float;
}

let tensorflow = {
  per_op_dispatch_us = 7.0;
  tf_per_element_ns = 22.0;
  tf_gpu_per_op_dispatch_us = 9.0;
  tf_gpu_per_element_ns = 24.0;
}

(** [cycles_to_seconds cpu c] converts a cycle count. *)
let cycles_to_seconds (cpu : cpu) c = c /. (cpu.freq_ghz *. 1e9)

let gpu_cycles_to_seconds (g : gpu) c = c /. (g.gpu_freq_ghz *. 1e9)
