(** Machine descriptions and calibrated instruction costs.

    OCaml cannot emit AVX2/AVX-512/PTX, so ISA- and device-specific
    execution times are produced by applying these calibrated per-
    instruction costs to the actually-generated instruction streams
    (DESIGN.md §1).  Constants are order-of-magnitude calibrations
    against the paper's numbers; EXPERIMENTS.md records the resulting
    paper-vs-measured ratios. *)

type isa = Scalar | AVX2 | AVX512 | Neon

val isa_to_string : isa -> string

(** [simd_width isa ~bits] — vector lanes for an element of [bits] width
    (AVX2 256-bit, AVX-512 512-bit, Neon 128-bit). *)
val simd_width : isa -> bits:int -> int

type veclib = No_veclib | SVML | Libmvec

val veclib_to_string : veclib -> string

(** Inverse of {!veclib_to_string} ("none" / "svml" / "libmvec"); [None]
    on anything else.  The CLI's [--veclib] and the tuner's config JSON
    both parse through this. *)
val veclib_of_string : string -> veclib option

type cpu = {
  cpu_name : string;
  isa : isa;
  freq_ghz : float;
  cores : int;
  veclib : veclib;
  flop_cost : float;  (** add/mul/fma, cycles (throughput-adjusted) *)
  div_cost : float;
  scalar_call_cost : float;  (** scalar libm call (log/exp) *)
  veclib_call_cost : float;  (** one vectorized log/exp over a vector *)
  load_cost : float;
  store_cost : float;
  gather_cost_per_lane : float;
  shuffle_cost : float;
  vec_insert_extract_cost : float;  (** scalar <-> vector lane move *)
  branch_cost : float;
  loop_overhead : float;  (** per-iteration loop bookkeeping *)
}

type gpu = {
  gpu_name : string;
  sm_count : int;
  gpu_freq_ghz : float;
  warp_size : int;
  max_threads_per_sm : int;
  pcie_gb_per_s : float;  (** host<->device bandwidth *)
  kernel_launch_us : float;  (** fixed launch overhead per kernel *)
  transfer_latency_us : float;  (** fixed per-copy latency *)
  module_load_ms : float;
      (** one-time CUDA context + CUBIN module-load overhead per run *)
  gpu_flop_cost : float;  (** cycles per fp op per thread *)
  gpu_special_cost : float;  (** log/exp via SFU/libdevice *)
  gpu_load_cost : float;
  gpu_store_cost : float;
  gpu_select_cost : float;
}

(** The evaluation machines of the paper, plus two extension presets. *)

(** AMD Ryzen 9 3900XT: AVX2 + GLIBC libmvec. *)
val ryzen_3900xt : cpu

(** Intel Xeon Platinum 9242: AVX-512 + SVML. *)
val xeon_9242 : cpu

(** ARM Neoverse N1: 128-bit Neon (extension preset). *)
val neoverse_n1 : cpu

(** NVIDIA RTX 2070 Super. *)
val rtx_2070_super : gpu

(** AMD Radeon RX 6800 (extension preset). *)
val radeon_6800 : gpu

(** Python/numpy dispatch model for the SPFlow baseline. *)
type python_model = { per_node_dispatch_us : float; per_element_ns : float }

val spflow_python : python_model

(** TensorFlow graph-executor model (CPU and GPU dispatch/work). *)
type tf_model = {
  per_op_dispatch_us : float;
  tf_per_element_ns : float;
  tf_gpu_per_op_dispatch_us : float;
  tf_gpu_per_element_ns : float;
}

val tensorflow : tf_model

val cycles_to_seconds : cpu -> float -> float
val gpu_cycles_to_seconds : gpu -> float -> float
