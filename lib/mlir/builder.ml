(** IR construction helpers.

    A builder owns a monotonically increasing SSA id counter, so values
    created through one builder are unique within the module being built.
    Passes that rebuild a module create a fresh builder seeded past the
    highest id of the input module (see {!seed_from}). *)

type t = { mutable next_id : int }

let create ?(first_id = 0) () = { next_id = first_id }

(** [seed_from m] creates a builder whose ids do not collide with any value
    already present in module [m]. *)
let seed_from (m : Ir.modul) =
  let max_id = ref (-1) in
  Ir.walk
    (fun op ->
      List.iter (fun (v : Ir.value) -> if v.vid > !max_id then max_id := v.vid) op.results;
      List.iter
        (fun r ->
          List.iter
            (fun (b : Ir.block) ->
              List.iter
                (fun (v : Ir.value) -> if v.vid > !max_id then max_id := v.vid)
                b.bargs)
            r.Ir.blocks)
        op.Ir.regions)
    m;
  create ~first_id:(!max_id + 1) ()

(** [fresh b ty] mints a new SSA value of type [ty]. *)
let fresh b (ty : Types.t) : Ir.value =
  let v = { Ir.vid = b.next_id; vty = ty } in
  b.next_id <- b.next_id + 1;
  v

let fresh_list b tys = List.map (fresh b) tys

(** [op name ~operands ~results ~attrs ~regions ~loc] constructs an
    operation.  [results] are value {e types}; the values themselves are
    minted here.  [loc] (default {!Loc.Unknown}) records which SPN node
    the operation implements. *)
let op b name ?(operands = []) ?(results = []) ?(attrs = []) ?(regions = [])
    ?(loc = Loc.Unknown) () : Ir.op =
  {
    Ir.name;
    operands;
    results = fresh_list b results;
    attrs = Attr.Dict.of_list attrs;
    regions;
    loc;
  }

(** [block b ~arg_tys ops_of_args] builds a block: mints the block
    arguments, then obtains the op list from the continuation. *)
let block b ~arg_tys (f : Ir.value list -> Ir.op list) : Ir.block =
  let bargs = fresh_list b arg_tys in
  { Ir.bargs; bops = f bargs }

let region blocks : Ir.region = { Ir.blocks }
let region1 blk : Ir.region = { Ir.blocks = [ blk ] }

let modul ?(name = "module") ops : Ir.modul = { Ir.mname = name; mops = ops }
