(** Core IR structures: SSA values, operations, blocks, regions, modules.

    Like MLIR, operations are the unit of semantics: every operation has
    a dialect-qualified name, typed operands and results, an attribute
    dictionary, and zero or more nested regions of blocks.

    Unlike MLIR's mutable use-list-linked representation, this IR is a
    plain immutable tree; passes rebuild it while threading a value
    substitution (see {!Rewrite}).  Deviation recorded in DESIGN.md §4. *)

(** An SSA value: unique id plus type.  Values are minted by {!Builder},
    so ids never collide within a module. *)
type value = { vid : int; vty : Types.t }

type op = {
  name : string;  (** dialect-qualified, e.g. ["lo_spn.mul"] *)
  operands : value list;
  results : value list;
  attrs : Attr.Dict.t;
  regions : region list;
  loc : Loc.t;  (** provenance: which SPN node this op implements *)
}

and block = { bargs : value list; bops : op list }
and region = { blocks : block list }

(** Top-level container: a name plus a list of top-level operations. *)
type modul = { mname : string; mops : op list }

val value_equal : value -> value -> bool

module Value : sig
  type t = value

  val compare : t -> t -> int
end

module VMap : Map.S with type key = value
module VSet : Set.S with type elt = value

(** [result_n op n] — the [n]-th result.
    @raise Invalid_argument if out of range. *)
val result_n : op -> int -> value

(** [result op] — the single (first) result. *)
val result : op -> value

val operand_n : op -> int -> value

val attr : op -> string -> Attr.t option

(** @raise Invalid_argument when the attribute is absent. *)
val attr_exn : op -> string -> Attr.t

val int_attr : op -> string -> int option
val float_attr : op -> string -> float option
val string_attr : op -> string -> string option
val bool_attr : op -> string -> bool option
val dense_attr : op -> string -> float array option
val type_attr : op -> string -> Types.t option

(** [entry_block op] — first block of the first region, if any. *)
val entry_block : op -> block option

(** [single_region_ops op] — the entry block's operations, or [[]]. *)
val single_region_ops : op -> op list

(** [dialect_of op] — the prefix before the dot ("builtin" if none). *)
val dialect_of : op -> string

(** [walk_ops f op] applies [f] to [op] and, pre-order, to every nested
    operation. *)
val walk_ops : (op -> unit) -> op -> unit

(** [walk f m] applies [f] to every operation in the module, pre-order. *)
val walk : (op -> unit) -> modul -> unit

val count_ops : (op -> bool) -> modul -> int
val find_ops : (op -> bool) -> modul -> op list

(** [defining_map m] maps each result value to the operation producing
    it (block arguments are absent). *)
val defining_map : modul -> op VMap.t
