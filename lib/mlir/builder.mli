(** IR construction helpers.

    A builder owns a monotonically increasing SSA id counter, so values
    created through one builder are unique within the module being
    built.  Passes that rebuild a module create a fresh builder seeded
    past the highest id of the input ({!seed_from}). *)

type t

val create : ?first_id:int -> unit -> t

(** [seed_from m] — a builder whose ids do not collide with any value in
    [m]. *)
val seed_from : Ir.modul -> t

(** [fresh b ty] mints a new SSA value. *)
val fresh : t -> Types.t -> Ir.value

val fresh_list : t -> Types.t list -> Ir.value list

(** [op b name ~operands ~results ~attrs ~regions ~loc ()] constructs an
    operation; [results] are the result {e types}, the values themselves
    are minted here.  [loc] (default {!Loc.Unknown}) is the provenance
    location. *)
val op :
  t ->
  string ->
  ?operands:Ir.value list ->
  ?results:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Ir.region list ->
  ?loc:Loc.t ->
  unit ->
  Ir.op

(** [block b ~arg_tys f] mints the block arguments, then obtains the op
    list from the continuation [f]. *)
val block : t -> arg_tys:Types.t list -> (Ir.value list -> Ir.op list) -> Ir.block

val region : Ir.block list -> Ir.region
val region1 : Ir.block -> Ir.region
val modul : ?name:string -> Ir.op list -> Ir.modul
