(** Textual printer for the generic operation form.

    The syntax follows MLIR's generic form closely:

    {v
    module @kernel {
      %0, %1 = "dialect.op"(%2, %3) ({
      ^bb0(%4: f32, %5: f32):
        ...
      }) {attr = 4} : (f32, f32) -> (f32, f32)
    }
    v}

    One simplification: multiple results are printed as a comma-separated
    value list rather than MLIR's [%0:2] group syntax, so the printed form
    is trivially re-parseable by {!Parser}.  [Parser.modul_of_string]
    round-trips the output of {!modul_to_string}; this is property-tested. *)

let pp_value ppf (v : Ir.value) = Fmt.pf ppf "%%%d" v.Ir.vid

let pp_value_typed ppf (v : Ir.value) =
  Fmt.pf ppf "%%%d: %a" v.Ir.vid Types.pp v.Ir.vty

let rec pp_op ~indent ppf (op : Ir.op) =
  let pad = String.make indent ' ' in
  Fmt.pf ppf "%s" pad;
  (match op.results with
  | [] -> ()
  | rs -> Fmt.pf ppf "%a = " (Fmt.list ~sep:(Fmt.any ", ") pp_value) rs);
  Fmt.pf ppf "%S(%a)" op.name (Fmt.list ~sep:(Fmt.any ", ") pp_value) op.operands;
  if op.regions <> [] then begin
    Fmt.pf ppf " (";
    List.iteri
      (fun i r ->
        if i > 0 then Fmt.pf ppf ", ";
        pp_region ~indent ppf r)
      op.regions;
    Fmt.pf ppf ")"
  end;
  Attr.Dict.pp ppf op.attrs;
  Fmt.pf ppf " : (%a) -> (%a)"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v : Ir.value) -> Types.pp ppf v.vty))
    op.operands
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v : Ir.value) -> Types.pp ppf v.vty))
    op.results;
  if Loc.is_known op.loc then Fmt.pf ppf " loc(%a)" Loc.pp op.loc

and pp_region ~indent ppf (r : Ir.region) =
  Fmt.pf ppf "{@.";
  List.iter (pp_block ~indent:(indent + 2) ppf) r.Ir.blocks;
  Fmt.pf ppf "%s}" (String.make indent ' ')

and pp_block ~indent ppf (b : Ir.block) =
  let pad = String.make (indent - 2) ' ' in
  Fmt.pf ppf "%s^bb(%a):@." pad
    (Fmt.list ~sep:(Fmt.any ", ") pp_value_typed)
    b.Ir.bargs;
  List.iter (fun op -> Fmt.pf ppf "%a@." (pp_op ~indent) op) b.Ir.bops

let pp_modul ppf (m : Ir.modul) =
  Fmt.pf ppf "module @%s {@." m.Ir.mname;
  List.iter (fun op -> Fmt.pf ppf "%a@." (pp_op ~indent:2) op) m.Ir.mops;
  Fmt.pf ppf "}@."

let op_to_string op = Fmt.str "%a" (pp_op ~indent:0) op
let modul_to_string m = Fmt.str "%a" pp_modul m
