(** Canonicalization driver.

    Mirrors MLIR's [canonicalize] pass: repeatedly applies
    dialect-registered canonicalization patterns, constant folding, CSE
    and dead-code elimination until a fixpoint (bounded by [max_rounds]).

    SPN-relevant patterns registered by the dialects include collapsing
    single-operand [hi_spn.sum]/[hi_spn.product] nodes (the "transformation
    of DAG nodes with only a single input" the paper performs right after
    HiSPN translation). *)

let apply_patterns (b : Builder.t) (m : Ir.modul) : Ir.modul * int =
  let applied = ref 0 in
  let m' =
    Rewrite.transform m ~rewrite:(fun op ->
        match Dialect.lookup op.Ir.name with
        | Some { Dialect.canon = Some pattern; _ } -> (
            match pattern b op with
            | Some (ops, values) ->
                incr applied;
                if Spnc_obs.Remark.enabled () then
                  Spnc_obs.Remark.emit ~pass:"canonicalize"
                    ~loc:(if Loc.is_known op.Ir.loc then Loc.to_string op.Ir.loc else "")
                    (Fmt.str "canonicalized %s away (%d replacement ops)"
                       op.Ir.name (List.length ops));
                Rewrite.Replace (ops, values)
            | None -> Rewrite.Keep)
        | _ -> Rewrite.Keep)
  in
  (m', !applied)

(** [run ?max_rounds m] canonicalizes module [m]. *)
let run ?(max_rounds = 8) (m : Ir.modul) : Ir.modul =
  let b = Builder.seed_from m in
  let count m = Ir.count_ops (fun _ -> true) m in
  let rec go round m =
    if round >= max_rounds then m
    else
      let before = count m in
      let m, n_pat = apply_patterns b m in
      let m = Constfold.run b m in
      let m = Cse.run m in
      let m' = Rewrite.dce m in
      let changed = n_pat > 0 || count m' <> before in
      if changed then go (round + 1) m' else m'
  in
  go 0 m
