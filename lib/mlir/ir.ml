(** Core IR structures: SSA values, operations, blocks, regions, modules.

    Like MLIR, operations are the unit of semantics: every operation has a
    dialect-qualified name ([dialect.op]), typed operands and results, an
    attribute dictionary, and zero or more nested regions.  Regions contain
    blocks; blocks carry typed block arguments and a sequence of operations.

    Unlike MLIR's mutable, use-list-linked representation, this IR is a
    plain immutable tree.  Passes are written rebuild-style: they walk the
    tree and construct a fresh one, threading an environment that maps old
    SSA values to new ones (see {!Rewrite}).  DESIGN.md §4 records this
    deviation. *)

(** An SSA value: a unique id plus its type.  Values are created by
    {!Builder} so ids never collide within a module. *)
type value = { vid : int; vty : Types.t }

type op = {
  name : string;  (** dialect-qualified operation name, e.g. ["lo_spn.mul"] *)
  operands : value list;
  results : value list;
  attrs : Attr.Dict.t;
  regions : region list;
  loc : Loc.t;  (** provenance: which SPN node this op implements *)
}

and block = { bargs : value list; bops : op list }
and region = { blocks : block list }

(** A module is the top-level container: a name plus a list of top-level
    operations (queries, kernels, functions). *)
type modul = { mname : string; mops : op list }

let value_equal (a : value) (b : value) = a.vid = b.vid

module Value = struct
  type t = value

  let compare (a : t) (b : t) = compare a.vid b.vid
end

module VMap = Map.Make (Value)
module VSet = Set.Make (Value)

(** [result_n op n] is the [n]-th result of [op].
    @raise Invalid_argument if [op] has fewer results. *)
let result_n op n =
  match List.nth_opt op.results n with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Ir.result_n: %s has %d results, asked for %d" op.name
           (List.length op.results) n)

(** [result op] is the single result of [op]. *)
let result op = result_n op 0

let operand_n op n =
  match List.nth_opt op.operands n with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Ir.operand_n: %s has %d operands, asked for %d"
           op.name (List.length op.operands) n)

let attr op key = Attr.Dict.find op.attrs key

let attr_exn op key =
  match attr op key with
  | Some a -> a
  | None ->
      invalid_arg (Printf.sprintf "Ir.attr_exn: %s has no attribute %S" op.name key)

let int_attr op key = Option.bind (attr op key) Attr.as_int
let float_attr op key = Option.bind (attr op key) Attr.as_float
let string_attr op key = Option.bind (attr op key) Attr.as_string
let bool_attr op key = Option.bind (attr op key) Attr.as_bool
let dense_attr op key = Option.bind (attr op key) Attr.as_dense_f
let type_attr op key = Option.bind (attr op key) Attr.as_type

(** [entry_block op] is the first block of the first region of [op]. *)
let entry_block op =
  match op.regions with
  | { blocks = b :: _ } :: _ -> Some b
  | _ -> None

(** [single_region_ops op] are the operations of the entry block, or [[]]. *)
let single_region_ops op =
  match entry_block op with Some b -> b.bops | None -> []

(** [dialect_of op] is the dialect prefix of the operation name ("lo_spn"
    for "lo_spn.mul"); ops without a dot belong to the builtin dialect. *)
let dialect_of (op : op) =
  match String.index_opt op.name '.' with
  | Some i -> String.sub op.name 0 i
  | None -> "builtin"

(* -- Traversals ---------------------------------------------------------- *)

(** [walk_ops f op] applies [f] to [op] and, pre-order, to every operation
    nested in its regions. *)
let rec walk_ops f (op : op) =
  f op;
  List.iter
    (fun r -> List.iter (fun b -> List.iter (walk_ops f) b.bops) r.blocks)
    op.regions

(** [walk f m] applies [f] to every operation in the module, pre-order. *)
let walk f (m : modul) = List.iter (walk_ops f) m.mops

(** [count_ops pred m] counts operations satisfying [pred]. *)
let count_ops pred m =
  let n = ref 0 in
  walk (fun op -> if pred op then incr n) m;
  !n

(** [find_ops pred m] collects all operations satisfying [pred],
    pre-order. *)
let find_ops pred m =
  let acc = ref [] in
  walk (fun op -> if pred op then acc := op :: !acc) m;
  List.rev !acc

(** [defining_map m] maps each SSA value id to the operation producing it.
    Block arguments are absent from the map. *)
let defining_map (m : modul) : op VMap.t =
  let tbl = ref VMap.empty in
  walk (fun op -> List.iter (fun r -> tbl := VMap.add r op !tbl) op.results) m;
  !tbl
