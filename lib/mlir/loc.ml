(** Source locations: provenance from the original SPN model.

    Mirrors MLIR's location attributes in miniature.  Every operation
    carries a location (default {!Unknown}); lowerings propagate the
    location of the op they expand, so an instruction deep in the CPU
    backend can name the SPN node it implements ("spn.node 17").

    [Derived] wraps a location with the name of the transformation that
    produced the derived op, like MLIR's [NameLoc]/[CallSiteLoc] chains;
    {!origin} unwraps to the innermost location and {!node_id} to the SPN
    node id, which is what the runtime profiler aggregates on.

    Textual form (round-tripped by {!Printer}/{!Parser} as a trailing
    [loc(...)] suffix on operations):

    {v
    loc(unknown)
    loc(spn.node 17)
    loc("lower_hispn"(spn.node 17))
    v} *)

type t =
  | Unknown
  | Node of int  (** original SPN model node id *)
  | Derived of string * t  (** transformation name, underlying location *)

let unknown = Unknown
let node id = Node id

(* Derivation chains are informative but must not grow without bound
   under repeated rewriting; collapse repeated identical derivations. *)
let derived name loc =
  match loc with
  | Derived (n, _) when n = name -> loc
  | _ -> Derived (name, loc)

(** [origin loc] unwraps all [Derived] layers. *)
let rec origin = function Derived (_, l) -> origin l | l -> l

(** [node_id loc] — the SPN node id at the root of the chain, if any. *)
let node_id loc = match origin loc with Node id -> Some id | _ -> None

let is_known = function Unknown -> false | _ -> true

let rec equal a b =
  match (a, b) with
  | Unknown, Unknown -> true
  | Node i, Node j -> i = j
  | Derived (n, l), Derived (m, k) -> n = m && equal l k
  | _ -> false

let rec pp ppf = function
  | Unknown -> Fmt.string ppf "unknown"
  | Node id -> Fmt.pf ppf "spn.node %d" id
  | Derived (name, l) -> Fmt.pf ppf "%S(%a)" name pp l

let to_string l = Fmt.str "%a" pp l
