(** Constant folding driver.

    An op named [<dialect>.constant] with a ["value"] attribute defines a
    known constant.  For every other op whose dialect registered a folder
    ({!Dialect.op_info.fold}), the folder is consulted with the map of
    known-constant operands; a successful fold replaces the op by a fresh
    dialect constant.  Folded-over constants that become dead are cleaned
    up by the subsequent DCE inside {!Canonicalize}. *)

let is_constant_op (op : Ir.op) =
  (match String.rindex_opt op.Ir.name '.' with
  | Some i ->
      String.sub op.Ir.name (i + 1) (String.length op.Ir.name - i - 1)
        = "constant"
  | None -> op.Ir.name = "constant")
  && Ir.attr op "value" <> None

(** [run b m] folds constants in [m], minting new values from [b]. *)
let run (b : Builder.t) (m : Ir.modul) : Ir.modul =
  let consts : (int, Attr.t) Hashtbl.t = Hashtbl.create 256 in
  Rewrite.transform m ~rewrite:(fun op ->
      if is_constant_op op then begin
        (match (op.Ir.results, Ir.attr op "value") with
        | [ r ], Some v -> Hashtbl.replace consts r.Ir.vid v
        | _ -> ());
        Rewrite.Keep
      end
      else
        match Dialect.lookup op.Ir.name with
        | Some { Dialect.fold = Some folder; _ } when List.length op.Ir.results = 1
          -> (
            match folder op consts with
            | Some folded ->
                let r = Ir.result op in
                let dialect = Ir.dialect_of op in
                if Spnc_obs.Remark.enabled () then
                  Spnc_obs.Remark.emit ~pass:"constfold"
                    ~loc:(if Loc.is_known op.Ir.loc then Loc.to_string op.Ir.loc else "")
                    (Fmt.str "folded %s to constant %a" op.Ir.name Attr.pp folded);
                let cst =
                  Builder.op b
                    (dialect ^ ".constant")
                    ~results:[ r.Ir.vty ]
                    ~attrs:[ ("value", folded) ]
                    ~loc:op.Ir.loc ()
                in
                Hashtbl.replace consts (Ir.result cst).Ir.vid folded;
                Rewrite.Replace ([ cst ], [ Ir.result cst ])
            | None -> Rewrite.Keep)
        | _ -> Rewrite.Keep)
