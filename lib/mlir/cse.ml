(** Common subexpression elimination.

    Pure operations with identical name, operands, attributes and result
    types are deduplicated within each block scope.  Nested regions see the
    expressions of their enclosing scopes (our regions are not isolated
    from above), but expressions inside a region do not leak out, since a
    region's ops may execute under different control conditions. *)

type key = string * int list * string * string
(* op name, operand ids, rendered attrs, rendered result types *)

let key_of (op : Ir.op) : key =
  ( op.Ir.name,
    List.map (fun (v : Ir.value) -> v.Ir.vid) op.Ir.operands,
    Fmt.str "%a" Attr.Dict.pp op.Ir.attrs,
    String.concat ","
      (List.map (fun (v : Ir.value) -> Types.to_string v.Ir.vty) op.Ir.results)
  )

let run (m : Ir.modul) : Ir.modul =
  let rec rebuild_ops (s : Rewrite.subst ref) (seen : (key, Ir.value list) Hashtbl.t)
      (ops : Ir.op list) : Ir.op list =
    List.concat_map
      (fun (op : Ir.op) ->
        let operands = List.map (Rewrite.subst_value !s) op.Ir.operands in
        let regions =
          List.map
            (fun (r : Ir.region) ->
              {
                Ir.blocks =
                  List.map
                    (fun (b : Ir.block) ->
                      (* child scope: copy of the parent's expression table *)
                      let child = Hashtbl.copy seen in
                      { b with Ir.bops = rebuild_ops s child b.Ir.bops })
                    r.Ir.blocks;
              })
            op.Ir.regions
        in
        let op = { op with Ir.operands; regions } in
        if (not (Dialect.is_pure op.Ir.name)) || op.Ir.regions <> [] then [ op ]
        else
          let k = key_of op in
          match Hashtbl.find_opt seen k with
          | Some prior_results ->
              List.iter2
                (fun old_r new_r -> s := Ir.VMap.add old_r new_r !s)
                op.Ir.results prior_results;
              if Spnc_obs.Remark.enabled () then
                Spnc_obs.Remark.emit ~pass:"cse"
                  ~loc:(if Loc.is_known op.Ir.loc then Loc.to_string op.Ir.loc else "")
                  (Fmt.str "deduplicated %s with an earlier identical op"
                     op.Ir.name);
              []
          | None ->
              Hashtbl.replace seen k op.Ir.results;
              [ op ])
      ops
  in
  let s = ref Ir.VMap.empty in
  let top = Hashtbl.create 256 in
  { m with Ir.mops = rebuild_ops s top m.Ir.mops }
