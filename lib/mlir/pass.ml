(** Pass manager with per-pass wall-clock timing and crash isolation.

    The timing ledger is load-bearing for the reproduction: the paper's
    Figs. 10–13 plot compilation time against partition size and -O level,
    and §V-B.1 breaks compilation time down per stage (instruction
    selection 27%, register allocation 25%, ...).  Every pipeline in this
    code base runs through this pass manager so those numbers come from
    real measured pass times.

    Crash isolation (resilience layer, docs/RESILIENCE.md): each pass
    runs under an exception barrier with a pre-pass snapshot of the
    generic-form IR.  On failure — a pass returning [Error], verifier
    diagnostics under [verify_each], or an escaped exception — the
    checked entry point {!run_pipeline_checked} returns a typed
    {!failure} naming the offending pass, carrying a structured
    {!Spnc_resilience.Diag.t}, and (unless dumping is disabled) writes a
    self-contained reproducer bundle that replays the failure through
    [spnc_opt]. *)

module Diag = Spnc_resilience.Diag
module Reproducer = Spnc_resilience.Reproducer

type timing = {
  pass_name : string;
  seconds : float;
  ops_before : int;  (** op count when the pass started *)
  ops_after : int;  (** op count when the pass finished *)
  changed : bool;  (** whether the pass modified the printed IR *)
}

type result = {
  modul : Ir.modul;
  timings : timing list;  (** in execution order *)
}

(* -- Instrumentation (MLIR's --print-ir-after-* in miniature) ---------------- *)

type print_ir =
  | Print_never
  | Print_after_all  (** dump the full IR after every pass *)
  | Print_after_change  (** dump a textual diff, only when the IR changed *)

type instrument = {
  print_ir : print_ir;
  out : Format.formatter;  (** where IR dumps and diffs go *)
}

let no_instrument = { print_ir = Print_never; out = Fmt.stderr }
let instrument ?(out = Fmt.stderr) print_ir = { print_ir; out }

(* -- Pass-ordering legality -------------------------------------------------- *)

type legality = {
  consumes : string option;
      (** IR stage the pass requires on entry; [None] accepts any stage *)
  produces : string option;
      (** IR stage the pass leaves behind; [None] preserves the input stage *)
}

let any_stage = { consumes = None; produces = None }
let preserves stage = { consumes = Some stage; produces = None }
let lowers ~from_ ~to_ = { consumes = Some from_; produces = Some to_ }

type pass = {
  name : string;
  run : Ir.modul -> (Ir.modul, string) Result.t;
  legality : legality;
}

(** [make ?legality name f] wraps a total transformation as a pass. *)
let make ?(legality = any_stage) name f =
  { name; run = (fun m -> Ok (f m)); legality }

(** [make_fallible ?legality name f] wraps a transformation that can fail. *)
let make_fallible ?(legality = any_stage) name f = { name; run = f; legality }

(** [validate_ordering ~start passes] threads the IR stage through the
    pipeline: each pass must find the stage its [legality.consumes]
    declares (or accept any), and advances the stage per
    [legality.produces].  The first violation is reported with both the
    expected and the actual stage so CI canaries fail loudly. *)
let validate_ordering ~(start : string) (passes : pass list) :
    (unit, string) Stdlib.result =
  let step stage (p : pass) =
    match stage with
    | Error _ as e -> e
    | Ok current -> (
        match p.legality.consumes with
        | Some want when not (String.equal want current) ->
            Error
              (Fmt.str
                 "illegal pass ordering: pass '%s' consumes %s IR but would \
                  run on %s IR"
                 p.name want current)
        | _ ->
            Ok (match p.legality.produces with Some s -> s | None -> current))
  in
  match List.fold_left step (Ok start) passes with
  | Ok _ -> Ok ()
  | Error _ as e -> e

(** [verify_pass] runs the verifier and fails the pipeline on diagnostics. *)
let verify_pass =
  {
    name = "verify";
    run =
      (fun m ->
        match Verifier.verify m with
        | [] -> Ok m
        | errs -> Error (Verifier.errors_to_string errs));
    legality = any_stage;
  }

let canonicalize_pass = make "canonicalize" Canonicalize.run
let cse_pass = make "cse" Cse.run
let dce_pass = make "dce" Rewrite.dce

exception Pipeline_error of string * string  (** pass name, message *)

(** Where the exception barrier dumps reproducer bundles. *)
type dump_policy =
  | No_dump  (** return the failure only (unit tests, library callers) *)
  | Dump_default  (** {!Spnc_resilience.Reproducer.default_dir} *)
  | Dump_to of string  (** explicit parent directory *)

type failure = {
  failed_pass : string;
  diag : Diag.t;
  ir_before : string;  (** generic-form IR snapshot before the failing pass *)
  replay_pipeline : string;  (** pipeline string that replays the failure *)
  bundle : Reproducer.bundle option;  (** written reproducer, if dumping *)
  bundle_error : string option;  (** why the dump itself failed, if it did *)
  partial_timings : timing list;  (** passes completed before the failure *)
}

let pp_failure ppf (f : failure) =
  Fmt.pf ppf "pass %s failed: %a" f.failed_pass Diag.pp f.diag;
  (match f.bundle with
  | Some b -> Fmt.pf ppf "@.reproducer written to %s" b.Reproducer.dir
  | None -> ());
  match f.bundle_error with
  | Some e -> Fmt.pf ppf "@.(reproducer dump failed: %s)" e
  | None -> ()

(* Names of the failing pass and everything after it: replaying this
   pipeline on the pre-pass snapshot reproduces the failure at its head. *)
let replay_pipeline_of (passes : pass list) (failed : pass) : string =
  let rec from = function
    | [] -> [ failed.name ]
    | p :: rest -> if p == failed then p.name :: List.map (fun p -> p.name) rest
                   else from rest
  in
  String.concat "," (from passes)

let dump ~(policy : dump_policy) ~(options : string) (f : failure) : failure =
  match policy with
  | No_dump -> f
  | Dump_default | Dump_to _ -> (
      let dir = match policy with Dump_to d -> Some d | _ -> None in
      match
        Reproducer.write ?dir ~ir:f.ir_before ~pipeline:f.replay_pipeline
          ~options ~diag:(Diag.to_string f.diag) ()
      with
      | Ok b -> { f with bundle = Some b }
      | Error e -> { f with bundle_error = Some e })

(** [run_pipeline_checked ?verify_each ?dump_policy ?options ?instr passes m]
    executes [passes] in order, each under an exception barrier, recording
    wall-clock time, op-count deltas and did-the-IR-change per pass.  With
    [verify_each] (default [false]) the verifier runs after every pass,
    attributing IR breakage to the pass that introduced it.  [instr]
    controls IR dumping: {!Print_after_all} dumps the full IR after every
    pass, {!Print_after_change} emits a textual diff only for passes that
    modified the IR.  On failure the result is a typed {!failure} (a
    reproducer bundle is written according to [dump_policy], default
    {!No_dump}); this function never raises on pass misbehavior. *)
let run_pipeline_checked ?(verify_each = false) ?(dump_policy = No_dump)
    ?(options = "") ?(instr = no_instrument) (passes : pass list)
    (m : Ir.modul) : (result, failure) Stdlib.result =
  let timings = ref [] in
  let count_all m = Ir.count_ops (fun _ -> true) m in
  let fail (p : pass) ~ir_before diag =
    Error
      (dump ~policy:dump_policy ~options
         {
           failed_pass = p.name;
           diag = Diag.with_pass p.name diag;
           ir_before;
           replay_pipeline = replay_pipeline_of passes p;
           bundle = None;
           bundle_error = None;
           partial_timings = List.rev !timings;
         })
  in
  (* The accumulator threads the printed IR along with the module: the
     snapshot before pass N+1 is the same text as the snapshot after pass
     N, so exact change detection costs one print per pass — which the
     reproducer machinery was already paying. *)
  let run_one acc (p : pass) =
    match acc with
    | Error _ as e -> e
    | Ok (m, ir_before) ->
        (* the snapshot is taken before the pass so the bundle replays the
           failure, not its aftermath *)
        let ops_before = count_all m in
        (* one clock pair serves both the timing ledger and the tracer:
           the span also covers failing passes, so a crash still shows
           up in the trace with its true duration *)
        let outcome, seconds =
          Spnc_obs.Trace.timed ~cat:"pass" p.name (fun () ->
              try
                match p.run m with
                | Ok _ as ok -> ok
                | Error msg -> Error (Diag.error ~pass:p.name msg)
              with
              | (Stack_overflow | Out_of_memory) as e -> raise e
              | e ->
                  let bt = Printexc.get_raw_backtrace () in
                  Error (Diag.of_exn ~pass:p.name e bt))
        in
        (match outcome with
        | Ok m' ->
            let ir_after = Printer.modul_to_string m' in
            let changed = not (String.equal ir_before ir_after) in
            timings :=
              {
                pass_name = p.name;
                seconds;
                ops_before;
                ops_after = count_all m';
                changed;
              }
              :: !timings;
            (match instr.print_ir with
            | Print_never -> ()
            | Print_after_all ->
                Fmt.pf instr.out "// -----// IR Dump After %s%s //----- //@.%s@?"
                  p.name
                  (if changed then "" else " (no change)")
                  ir_after
            | Print_after_change ->
                if changed then
                  Fmt.pf instr.out "// -----// IR Diff After %s //----- //@.%s@?"
                    p.name
                    (Spnc_obs.Textdiff.diff ~before:ir_before ~after:ir_after));
            if not verify_each then Ok (m', ir_after)
            else begin
              (* the verifier itself runs under the barrier too: a
                 dialect-registered check that throws must not take down
                 the pipeline without a reproducer *)
              let verdict =
                try Ok (Verifier.verify m') with
                | (Stack_overflow | Out_of_memory) as e -> raise e
                | e ->
                    let bt = Printexc.get_raw_backtrace () in
                    Error (Diag.of_exn ~pass:p.name e bt)
              in
              match verdict with
              | Ok [] -> Ok (m', ir_after)
              | Ok errs ->
                  fail p ~ir_before
                    (Diag.error ~pass:p.name
                       ~op_path:
                         (List.map (fun (e : Verifier.error) -> e.op_name) errs
                         |> List.sort_uniq compare)
                       ("verifier failed after pass:\n"
                      ^ Verifier.errors_to_string errs))
              | Error d -> fail p ~ir_before d
            end
        | Error d ->
            Spnc_obs.Metrics.(counter_incr (counter "mlir.pass.failures"));
            fail p ~ir_before d)
  in
  match List.fold_left run_one (Ok (m, Printer.modul_to_string m)) passes with
  | Ok (final, _) -> Ok { modul = final; timings = List.rev !timings }
  | Error f -> Error f

(** [run_pipeline ?verify_each passes m] — the legacy raising interface,
    now a wrapper over {!run_pipeline_checked} (no reproducer dumping).
    @raise Pipeline_error if a pass fails. *)
let run_pipeline ?(verify_each = false) (passes : pass list) (m : Ir.modul) :
    result =
  match run_pipeline_checked ~verify_each ~dump_policy:No_dump passes m with
  | Ok r -> r
  | Error f -> raise (Pipeline_error (f.failed_pass, f.diag.Diag.message))

let total_seconds (r : result) =
  List.fold_left (fun acc t -> acc +. t.seconds) 0.0 r.timings

let pp_timings ppf (r : result) =
  let total = total_seconds r in
  List.iter
    (fun t ->
      Fmt.pf ppf "%-28s %8.4fs (%5.1f%%)  %6d -> %-6d ops%s@." t.pass_name
        t.seconds
        (if total > 0.0 then 100.0 *. t.seconds /. total else 0.0)
        t.ops_before t.ops_after
        (if t.changed then "" else "  (no change)"))
    r.timings;
  Fmt.pf ppf "%-28s %8.4fs@." "TOTAL" total
