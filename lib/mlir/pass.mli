(** Pass manager with per-pass wall-clock timing and crash isolation.

    The timing ledger is load-bearing for the reproduction: the paper's
    Figs. 10–13 plot compilation time against partition size and -O
    level, and §V-B.1 breaks compile time down per stage.  Every pipeline
    in this code base runs through this pass manager (or the equivalent
    timers in [Spnc.Compiler]), so those numbers are real measured pass
    times.

    The checked entry point {!run_pipeline_checked} runs each pass under
    an exception barrier with a pre-pass IR snapshot; failures come back
    as a typed {!failure} with a structured diagnostic and an optional
    on-disk reproducer bundle (docs/RESILIENCE.md). *)

module Diag = Spnc_resilience.Diag
module Reproducer = Spnc_resilience.Reproducer

type timing = {
  pass_name : string;
  seconds : float;
  ops_before : int;  (** op count when the pass started *)
  ops_after : int;  (** op count when the pass finished *)
  changed : bool;  (** whether the pass modified the printed IR *)
}

type result = {
  modul : Ir.modul;
  timings : timing list;  (** in execution order *)
}

(** IR dumping between passes (MLIR's [--print-ir-after-*]). *)
type print_ir =
  | Print_never
  | Print_after_all  (** dump the full IR after every pass *)
  | Print_after_change  (** dump a textual diff, only when the IR changed *)

type instrument = {
  print_ir : print_ir;
  out : Format.formatter;  (** where IR dumps and diffs go *)
}

val no_instrument : instrument

(** [instrument ?out print_ir] — dump policy writing to [out] (default
    stderr). *)
val instrument : ?out:Format.formatter -> print_ir -> instrument

(** Pass-ordering legality: the IR stage a pass consumes and the stage it
    leaves behind.  Stages are lowercase dialect-level names threaded by
    {!validate_ordering} ("hispn", "lospn", "lospn-buf", "cir", "gpu");
    [consumes = None] accepts any stage, [produces = None] preserves the
    input stage (the shape of every cleanup pass). *)
type legality = {
  consumes : string option;  (** required entry stage; [None] = any *)
  produces : string option;  (** resulting stage; [None] = unchanged *)
}

(** Accepts any stage and preserves it (canonicalize, cse, dce, ...). *)
val any_stage : legality

(** [preserves s] — requires stage [s], leaves the IR at stage [s]. *)
val preserves : string -> legality

(** [lowers ~from_ ~to_] — a dialect-conversion pass. *)
val lowers : from_:string -> to_:string -> legality

type pass = {
  name : string;
  run : Ir.modul -> (Ir.modul, string) Result.t;
  legality : legality;
}

(** [make ?legality name f] wraps a total transformation as a pass
    (default legality {!any_stage}, so existing callers are unchanged). *)
val make : ?legality:legality -> string -> (Ir.modul -> Ir.modul) -> pass

(** [make_fallible ?legality name f] wraps a transformation that can fail. *)
val make_fallible :
  ?legality:legality ->
  string ->
  (Ir.modul -> (Ir.modul, string) Result.t) ->
  pass

(** [validate_ordering ~start passes] checks the pipeline's stage chain
    starting from IR stage [start], returning a loud error naming the
    first pass whose [consumes] stage does not match the stage the
    preceding passes left behind. *)
val validate_ordering :
  start:string -> pass list -> (unit, string) Stdlib.result

(** Runs the verifier; fails the pipeline on diagnostics. *)
val verify_pass : pass

val canonicalize_pass : pass
val cse_pass : pass
val dce_pass : pass

exception Pipeline_error of string * string  (** pass name, message *)

(** Where the exception barrier dumps reproducer bundles. *)
type dump_policy =
  | No_dump  (** return the failure only (unit tests, library callers) *)
  | Dump_default  (** {!Spnc_resilience.Reproducer.default_dir} *)
  | Dump_to of string  (** explicit parent directory *)

(** Everything known about a pipeline failure: the offending pass, the
    structured diagnostic, the generic-form IR immediately before the
    pass, the pipeline suffix that replays the failure, and the written
    reproducer bundle (or the reason the dump itself failed). *)
type failure = {
  failed_pass : string;
  diag : Diag.t;
  ir_before : string;
  replay_pipeline : string;
  bundle : Reproducer.bundle option;
  bundle_error : string option;
  partial_timings : timing list;  (** passes completed before the failure *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [run_pipeline_checked ?verify_each ?dump_policy ?options ?instr passes m]
    executes [passes] in order, each under an exception barrier with
    per-pass timing, op-count deltas and change tracking.  With
    [verify_each] the verifier runs after every pass, attributing IR
    breakage to the pass that introduced it.  [instr] controls IR
    dumping between passes ({!Print_after_all} / {!Print_after_change}).
    A pass error, verifier diagnostic, or escaped exception yields
    [Error f] (never raises); a reproducer bundle is written per
    [dump_policy] (default {!No_dump}), with [options] recorded
    alongside it. *)
val run_pipeline_checked :
  ?verify_each:bool ->
  ?dump_policy:dump_policy ->
  ?options:string ->
  ?instr:instrument ->
  pass list ->
  Ir.modul ->
  (result, failure) Stdlib.result

(** [run_pipeline ?verify_each passes m] — legacy raising interface over
    {!run_pipeline_checked} (no dumping).
    @raise Pipeline_error if a pass fails. *)
val run_pipeline : ?verify_each:bool -> pass list -> Ir.modul -> result

val total_seconds : result -> float
val pp_timings : Format.formatter -> result -> unit
