(** Recursive-descent parser for the generic IR text format.

    Parses exactly the language emitted by {!Printer}; the round-trip
    [parse (print m) = m] (up to SSA value identity) is property-tested in
    the test suite.  Forward references are tolerated: an operand id not
    yet defined is minted with the type stated in the trailing signature. *)

exception Error of string

type st = {
  toks : Lexer.token array;
  mutable pos : int;
  env : (int, Ir.value) Hashtbl.t;  (** SSA id -> value *)
}

let make src =
  { toks = Array.of_list (Lexer.tokenize src); pos = 0; env = Hashtbl.create 64 }

let peek st = st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else Lexer.EOF

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let error st msg =
  raise (Error (Fmt.str "parse error at token %d (%a): %s" st.pos
                  Lexer.pp_token (peek st) msg))

let expect st tok =
  let t = next st in
  if t <> tok then
    raise
      (Error (Fmt.str "expected %a but found %a" Lexer.pp_token tok
                Lexer.pp_token t))

let expect_ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> raise (Error (Fmt.str "expected identifier, found %a" Lexer.pp_token t))

(* -- Types --------------------------------------------------------------- *)

let rec parse_type st : Types.t =
  match next st with
  | Lexer.LPAREN ->
      (* function type: (tys) -> (tys) *)
      let args = parse_type_list_until st Lexer.RPAREN in
      expect st Lexer.ARROW;
      expect st Lexer.LPAREN;
      let res = parse_type_list_until st Lexer.RPAREN in
      Types.Func (args, res)
  | Lexer.IDENT "f32" -> Types.F32
  | Lexer.IDENT "f64" -> Types.F64
  | Lexer.IDENT "index" -> Types.Index
  | Lexer.IDENT "none" -> Types.None_
  | Lexer.IDENT "i1" -> Types.Bool
  | Lexer.IDENT "!hi_spn.probability" -> Types.Prob
  | Lexer.IDENT "!lo_spn.log" ->
      expect st Lexer.LANGLE;
      let t = parse_type st in
      expect st Lexer.RANGLE;
      Types.Log t
  | Lexer.IDENT "tensor" ->
      let dims, elt = parse_shaped st in
      Types.Tensor (dims, elt)
  | Lexer.IDENT "memref" ->
      let dims, elt = parse_shaped st in
      Types.MemRef (dims, elt)
  | Lexer.IDENT "vector" ->
      expect st Lexer.LANGLE;
      let w =
        match next st with
        | Lexer.INT w -> w
        | t -> raise (Error (Fmt.str "expected vector width, found %a" Lexer.pp_token t))
      in
      expect st Lexer.COMMA;
      let elt = parse_type st in
      expect st Lexer.RANGLE;
      Types.Vector (w, elt)
  | Lexer.IDENT s when String.length s > 1 && s.[0] = 'i' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some w -> Types.Int w
      | None -> error st (Printf.sprintf "unknown type %S" s))
  | t -> raise (Error (Fmt.str "expected type, found %a" Lexer.pp_token t))

and parse_shaped st =
  expect st Lexer.LANGLE;
  let dims = ref [] in
  let rec dims_loop () =
    match peek st with
    | Lexer.INT n ->
        advance st;
        expect st Lexer.COMMA;
        dims := Some n :: !dims;
        dims_loop ()
    | Lexer.QUESTION ->
        advance st;
        expect st Lexer.COMMA;
        dims := None :: !dims;
        dims_loop ()
    | _ -> ()
  in
  dims_loop ();
  let elt = parse_type st in
  expect st Lexer.RANGLE;
  (List.rev !dims, elt)

and parse_type_list_until st closing =
  if peek st = closing then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let t = parse_type st in
      match next st with
      | Lexer.COMMA -> go (t :: acc)
      | tok when tok = closing -> List.rev (t :: acc)
      | tok ->
          raise (Error (Fmt.str "expected ',' or closing, found %a" Lexer.pp_token tok))
    in
    go []

(* -- Attributes ---------------------------------------------------------- *)

let rec parse_attr st : Attr.t =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Attr.Int i
  | Lexer.FLOAT f ->
      advance st;
      Attr.Float f
  | Lexer.STRING s ->
      advance st;
      Attr.String s
  | Lexer.IDENT "true" ->
      advance st;
      Attr.Bool true
  | Lexer.IDENT "false" ->
      advance st;
      Attr.Bool false
  | Lexer.IDENT "unit" ->
      advance st;
      Attr.Unit
  | Lexer.IDENT "inf" ->
      advance st;
      Attr.Float Float.infinity
  | Lexer.IDENT "ninf" ->
      advance st;
      Attr.Float Float.neg_infinity
  | Lexer.IDENT "nanf" ->
      advance st;
      Attr.Float Float.nan
  | Lexer.IDENT "dense" ->
      advance st;
      expect st Lexer.LANGLE;
      expect st Lexer.LBRACKET;
      let xs = ref [] in
      let rec go () =
        match next st with
        | Lexer.FLOAT f ->
            xs := f :: !xs;
            cont ()
        | Lexer.INT i ->
            xs := float_of_int i :: !xs;
            cont ()
        | Lexer.IDENT "inf" ->
            xs := Float.infinity :: !xs;
            cont ()
        | Lexer.IDENT "ninf" ->
            xs := Float.neg_infinity :: !xs;
            cont ()
        | Lexer.IDENT "nanf" ->
            xs := Float.nan :: !xs;
            cont ()
        | Lexer.RBRACKET -> ()
        | t -> raise (Error (Fmt.str "expected float in dense, found %a" Lexer.pp_token t))
      and cont () =
        match next st with
        | Lexer.COMMA -> go ()
        | Lexer.RBRACKET -> ()
        | t -> raise (Error (Fmt.str "expected ',' or ']', found %a" Lexer.pp_token t))
      in
      (if peek st = Lexer.RBRACKET then advance st else go ());
      expect st Lexer.RANGLE;
      Attr.DenseF (Array.of_list (List.rev !xs))
  | Lexer.LBRACKET ->
      advance st;
      if peek st = Lexer.RBRACKET then begin
        advance st;
        Attr.Array []
      end
      else
        let rec go acc =
          let a = parse_attr st in
          match next st with
          | Lexer.COMMA -> go (a :: acc)
          | Lexer.RBRACKET -> Attr.Array (List.rev (a :: acc))
          | t -> raise (Error (Fmt.str "expected ',' or ']', found %a" Lexer.pp_token t))
        in
        go []
  | Lexer.IDENT _ | Lexer.LPAREN -> Attr.Type (parse_type st)
  | t -> raise (Error (Fmt.str "expected attribute, found %a" Lexer.pp_token t))

let parse_attr_dict st : Attr.Dict.t =
  if peek st <> Lexer.LBRACE then Attr.Dict.empty
  else begin
    advance st;
    if peek st = Lexer.RBRACE then begin
      advance st;
      Attr.Dict.empty
    end
    else
      let rec go acc =
        let key = expect_ident st in
        expect st Lexer.EQUAL;
        let v = parse_attr st in
        match next st with
        | Lexer.COMMA -> go ((key, v) :: acc)
        | Lexer.RBRACE -> Attr.Dict.of_list (List.rev ((key, v) :: acc))
        | t -> raise (Error (Fmt.str "expected ',' or '}', found %a" Lexer.pp_token t))
      in
      go []
  end

(* -- Values -------------------------------------------------------------- *)

(** Look up [id], or mint it with type [ty] (forward reference). *)
let value_of_id st id (ty : Types.t) : Ir.value =
  match Hashtbl.find_opt st.env id with
  | Some v ->
      if not (Types.equal v.Ir.vty ty) then
        error st
          (Fmt.str "value %%%d used with type %a but defined with %a" id
             Types.pp ty Types.pp v.Ir.vty);
      v
  | None ->
      let v = { Ir.vid = id; vty = ty } in
      Hashtbl.replace st.env id v;
      v

let define_value st id (ty : Types.t) : Ir.value =
  match Hashtbl.find_opt st.env id with
  | Some v when Types.equal v.Ir.vty ty -> v
  | Some _ -> error st (Printf.sprintf "value %%%d redefined with different type" id)
  | None ->
      let v = { Ir.vid = id; vty = ty } in
      Hashtbl.replace st.env id v;
      v

(* -- Locations ----------------------------------------------------------- *)

(* loc := "unknown" | "spn.node" INT | STRING "(" loc ")" *)
let rec parse_loc st : Loc.t =
  match next st with
  | Lexer.IDENT "unknown" -> Loc.Unknown
  | Lexer.IDENT "spn.node" -> (
      match next st with
      | Lexer.INT id -> Loc.Node id
      | t -> raise (Error (Fmt.str "expected node id, found %a" Lexer.pp_token t)))
  | Lexer.STRING name ->
      expect st Lexer.LPAREN;
      let inner = parse_loc st in
      expect st Lexer.RPAREN;
      Loc.Derived (name, inner)
  | t -> raise (Error (Fmt.str "expected location, found %a" Lexer.pp_token t))

(* Optional trailing [loc(...)] after an operation's type signature. *)
let parse_opt_loc st : Loc.t =
  match (peek st, peek2 st) with
  | Lexer.IDENT "loc", Lexer.LPAREN ->
      advance st;
      advance st;
      let l = parse_loc st in
      expect st Lexer.RPAREN;
      l
  | _ -> Loc.Unknown

(* -- Operations ---------------------------------------------------------- *)

let rec parse_op st : Ir.op =
  (* optional result list: %0, %1 = *)
  let result_ids = ref [] in
  (match peek st with
  | Lexer.PERCENT_INT _ ->
      let rec go () =
        match next st with
        | Lexer.PERCENT_INT id -> (
            result_ids := id :: !result_ids;
            match next st with
            | Lexer.COMMA -> go ()
            | Lexer.EQUAL -> ()
            | t -> raise (Error (Fmt.str "expected ',' or '=', found %a" Lexer.pp_token t)))
        | t -> raise (Error (Fmt.str "expected value id, found %a" Lexer.pp_token t))
      in
      go ()
  | _ -> ());
  let result_ids = List.rev !result_ids in
  let name =
    match next st with
    | Lexer.STRING s -> s
    | t -> raise (Error (Fmt.str "expected op name string, found %a" Lexer.pp_token t))
  in
  expect st Lexer.LPAREN;
  let operand_ids = ref [] in
  (if peek st = Lexer.RPAREN then advance st
   else
     let rec go () =
       match next st with
       | Lexer.PERCENT_INT id -> (
           operand_ids := id :: !operand_ids;
           match next st with
           | Lexer.COMMA -> go ()
           | Lexer.RPAREN -> ()
           | t -> raise (Error (Fmt.str "expected ',' or ')', found %a" Lexer.pp_token t)))
       | t -> raise (Error (Fmt.str "expected operand id, found %a" Lexer.pp_token t))
     in
     go ());
  let operand_ids = List.rev !operand_ids in
  (* optional region list *)
  let regions =
    if peek st = Lexer.LPAREN && peek2 st = Lexer.LBRACE then begin
      advance st;
      let rec go acc =
        let r = parse_region st in
        match next st with
        | Lexer.COMMA -> go (r :: acc)
        | Lexer.RPAREN -> List.rev (r :: acc)
        | t -> raise (Error (Fmt.str "expected ',' or ')', found %a" Lexer.pp_token t))
      in
      go []
    end
    else []
  in
  let attrs = parse_attr_dict st in
  expect st Lexer.COLON;
  expect st Lexer.LPAREN;
  let operand_tys = parse_type_list_until st Lexer.RPAREN in
  expect st Lexer.ARROW;
  expect st Lexer.LPAREN;
  let result_tys = parse_type_list_until st Lexer.RPAREN in
  if List.length operand_tys <> List.length operand_ids then
    error st (Printf.sprintf "op %S: %d operands but %d operand types" name
                (List.length operand_ids) (List.length operand_tys));
  if List.length result_tys <> List.length result_ids then
    error st (Printf.sprintf "op %S: %d results but %d result types" name
                (List.length result_ids) (List.length result_tys));
  let operands = List.map2 (value_of_id st) operand_ids operand_tys in
  let results = List.map2 (define_value st) result_ids result_tys in
  let loc = parse_opt_loc st in
  { Ir.name; operands; results; attrs; regions; loc }

and parse_region st : Ir.region =
  expect st Lexer.LBRACE;
  let blocks = ref [] in
  let rec go () =
    match peek st with
    | Lexer.CARET ->
        blocks := parse_block st :: !blocks;
        go ()
    | Lexer.RBRACE -> advance st
    | t -> raise (Error (Fmt.str "expected block or '}', found %a" Lexer.pp_token t))
  in
  go ();
  { Ir.blocks = List.rev !blocks }

and parse_block st : Ir.block =
  expect st Lexer.CARET;
  let _label = expect_ident st in
  expect st Lexer.LPAREN;
  let bargs = ref [] in
  (if peek st = Lexer.RPAREN then advance st
   else
     let rec go () =
       match next st with
       | Lexer.PERCENT_INT id -> (
           expect st Lexer.COLON;
           let ty = parse_type st in
           bargs := define_value st id ty :: !bargs;
           match next st with
           | Lexer.COMMA -> go ()
           | Lexer.RPAREN -> ()
           | t -> raise (Error (Fmt.str "expected ',' or ')', found %a" Lexer.pp_token t)))
       | t -> raise (Error (Fmt.str "expected block arg, found %a" Lexer.pp_token t))
     in
     go ());
  expect st Lexer.COLON;
  let ops = ref [] in
  let rec go () =
    match peek st with
    | Lexer.CARET | Lexer.RBRACE -> ()
    | _ ->
        ops := parse_op st :: !ops;
        go ()
  in
  go ();
  { Ir.bargs = List.rev !bargs; bops = List.rev !ops }

let parse_modul st : Ir.modul =
  expect st (Lexer.IDENT "module");
  expect st Lexer.AT;
  let name = expect_ident st in
  expect st Lexer.LBRACE;
  let ops = ref [] in
  let rec go () =
    match peek st with
    | Lexer.RBRACE -> advance st
    | _ ->
        ops := parse_op st :: !ops;
        go ()
  in
  go ();
  expect st Lexer.EOF;
  { Ir.mname = name; mops = List.rev !ops }

(** [modul_of_string src] parses a whole module.
    @raise Error on malformed input. *)
let modul_of_string src = parse_modul (make src)

(** [op_of_string src] parses a single operation (testing convenience). *)
let op_of_string src =
  let st = make src in
  let op = parse_op st in
  expect st Lexer.EOF;
  op
