(** Source locations: provenance from the original SPN model.

    Every operation carries a location (default {!Unknown}); lowerings
    propagate the location of the op they expand, so an instruction deep
    in the CPU backend can name the SPN node it implements.  Printed and
    re-parsed as a trailing [loc(...)] suffix on operations. *)

type t =
  | Unknown
  | Node of int  (** original SPN model node id *)
  | Derived of string * t  (** transformation name, underlying location *)

val unknown : t
val node : int -> t

(** [derived name loc] wraps [loc]; identical adjacent derivations are
    collapsed so chains stay bounded under repeated rewriting. *)
val derived : string -> t -> t

(** [origin loc] unwraps all [Derived] layers. *)
val origin : t -> t

(** [node_id loc] — the SPN node id at the root of the chain, if any. *)
val node_id : t -> int option

val is_known : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
