(** Multi-tenant model registry with a bounded LRU of hot engines.

    Models are registered by name (in-memory or a [.spn]/text path) and
    compiled lazily on first request through {!Spnc.Compiler} — repeat
    loads are served by the kernel cache's memory tier or the persistent
    {!Spnc.Kcache} disk tier.  At most [cap] engines (compiled artifact
    + hot {!Spnc_runtime.Exec.t} handle) stay resident; the least
    recently used is evicted first. *)

type source = Src_model of Spnc_spn.Model.t | Src_path of string

type engine = {
  eng_name : string;
  eng_compiled : Spnc.Compiler.compiled;
  eng_exec : Spnc_runtime.Exec.t;  (** hot handle — reused across batches *)
  eng_features : int;
  mutable eng_tick : int;  (** LRU clock stamp of the last touch *)
}

type t

val create : ?cap:int -> options:Spnc.Options.t -> unit -> t
(** [cap] defaults to [options.serve_engines_cap]; clamped to >= 1. *)

val register : t -> name:string -> source -> unit
(** Re-registering a name replaces the source and drops any resident
    engine for it. *)

val register_model : t -> name:string -> Spnc_spn.Model.t -> unit
val register_path : t -> name:string -> string -> unit
val mem : t -> string -> bool

val names : t -> string list
(** Registered model names, sorted. *)

val loaded : t -> string list
(** Names with a resident engine, sorted (tests/metrics). *)

val engine : t -> string -> (engine, string) result
(** The hot engine for a name — loading, compiling and LRU-evicting as
    needed.  [Error] on an unregistered name or failed load. *)

val flush_engines : t -> unit
(** Drop every resident engine; the next request reloads through the
    compiler cache tiers (tests). *)
