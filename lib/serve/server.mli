(** The SPN model server: bounded admission in front of a dynamic
    per-model batcher ({!Batcher}), a bounded LRU of hot engines
    ({!Registry}), and EDF-ordered dispatcher domains that run coalesced
    batches through {!Spnc_runtime.Exec.execute_segments} — each request
    is one segment, so results scatter back into each caller's buffer
    zero-copy.  Responses are bit-identical to sequential per-request
    {!Spnc.Compiler.execute}.

    Knobs come from {!Spnc.Options}: [serve_max_batch] /
    [serve_max_delay_ms] (flush policy), [serve_queue_cap] /
    [serve_global_queue_cap] (admission), [serve_engines_cap] (LRU),
    [serve_dispatchers], [serve_starvation_ms] (EDF starvation guard);
    see docs/PERFORMANCE.md §"Serving". *)

type t

type ticket
(** An in-flight submission; settle it with {!await}. *)

val create :
  ?clock:(unit -> float) ->
  ?dispatchers:int ->
  options:Spnc.Options.t ->
  unit ->
  t
(** Start a server: [dispatchers] domains (default
    [options.serve_dispatchers]) begin draining queues immediately.
    [~dispatchers:0] plus an injected [~clock] gives a deterministic
    server driven by {!step} — how the tests pin flush/EDF behavior. *)

val register_model : t -> name:string -> Spnc_spn.Model.t -> unit
val register_path : t -> name:string -> string -> unit

val models : t -> string list
(** Registered model names, sorted. *)

val registry : t -> Registry.t

val submit_async :
  t -> model:string -> ?deadline:float -> float array array -> ticket
(** Validate, admit and enqueue one request ([deadline] is absolute
    epoch seconds).  Never blocks: over-cap traffic is shed immediately
    with a structured [overloaded] rejection, invalid requests settle
    immediately with their reason.  The returned ticket settles exactly
    once. *)

val await : ticket -> Types.response
(** Block until the ticket settles (dispatch, rejection or shutdown). *)

val submit :
  t -> model:string -> ?deadline:float -> float array array -> Types.response
(** [await (submit_async ...)]. *)

val step : t -> now:float -> bool
(** Run one dispatcher iteration synchronously: sweep deadline-expired
    requests, dispatch at most one batch (EDF pick).  True when either
    happened.  Test hook — production servers run dispatcher domains. *)

val pending : t -> int
(** Requests currently queued across all models. *)

val queue_depth : t -> string -> int

val shutdown : t -> unit
(** Stop and join the dispatchers, then settle every still-queued
    request with a [Closed] rejection.  Idempotent. *)
