(** Shared vocabulary of the serving layer: structured rejections, the
    response type, and the in-flight request record with its completion
    cell.

    A request is submitted by one thread (a connection handler, a bench
    client) and fulfilled by another (a dispatcher domain); the
    completion cell is a classic mutex + condition pair.  [fulfill] is
    idempotent — the first response wins — so shutdown paths may sweep
    queues without racing a concurrent dispatch. *)

type reject_reason =
  | Overloaded_model  (** per-model queue at [serve_queue_cap] — shed *)
  | Overloaded_global
      (** process-wide queue at [serve_global_queue_cap] — shed *)
  | Unknown_model  (** no model registered under that name *)
  | Expired  (** deadline passed before the request was dispatched *)
  | Bad_request  (** ragged rows, or feature count != model's *)
  | Engine_failure  (** compile / engine load / kernel execution failed *)
  | Closed  (** server shutting down *)

let reject_reason_to_string = function
  | Overloaded_model -> "overloaded_model"
  | Overloaded_global -> "overloaded_global"
  | Unknown_model -> "unknown_model"
  | Expired -> "deadline_expired"
  | Bad_request -> "bad_request"
  | Engine_failure -> "engine_failure"
  | Closed -> "closed"

let reject_reason_of_string = function
  | "overloaded_model" -> Some Overloaded_model
  | "overloaded_global" -> Some Overloaded_global
  | "unknown_model" -> Some Unknown_model
  | "deadline_expired" -> Some Expired
  | "bad_request" -> Some Bad_request
  | "engine_failure" -> Some Engine_failure
  | "closed" -> Some Closed
  | _ -> None

type serve_error = { reason : reject_reason; detail : string }

(** Load-shed rejections — the admission-control "back off and retry"
    class, as opposed to caller errors or server faults. *)
let is_overloaded e =
  match e.reason with
  | Overloaded_model | Overloaded_global -> true
  | _ -> false

type response = (float array, serve_error) result

type request = {
  req_model : string;
  req_flat : float array;  (** row-major input, [req_rows * req_features] *)
  req_rows : int;
  req_features : int;
  req_deadline : float option;  (** absolute epoch seconds *)
  req_enqueued : float;
  req_out : float array;
      (** caller-owned result buffer the batch kernel writes into
          directly (one {!Spnc_runtime.Exec.segment} per request) *)
  cell_lock : Mutex.t;
  cell_cond : Condition.t;
  mutable cell_resp : response option;
}

let make_request ~model ~flat ~rows ~features ~deadline ~now =
  {
    req_model = model;
    req_flat = flat;
    req_rows = rows;
    req_features = features;
    req_deadline = deadline;
    req_enqueued = now;
    req_out = Array.make (max 0 rows) 0.0;
    cell_lock = Mutex.create ();
    cell_cond = Condition.create ();
    cell_resp = None;
  }

(* First response wins: a request swept by shutdown and fulfilled by a
   racing dispatch must settle exactly once. *)
let fulfill (r : request) (resp : response) : unit =
  Mutex.lock r.cell_lock;
  (match r.cell_resp with
  | None ->
      r.cell_resp <- Some resp;
      Condition.broadcast r.cell_cond
  | Some _ -> ());
  Mutex.unlock r.cell_lock

let await (r : request) : response =
  Mutex.lock r.cell_lock;
  let rec wait () =
    match r.cell_resp with
    | Some resp -> resp
    | None ->
        Condition.wait r.cell_cond r.cell_lock;
        wait ()
  in
  let resp = wait () in
  Mutex.unlock r.cell_lock;
  resp

let peek (r : request) : response option =
  Mutex.lock r.cell_lock;
  let resp = r.cell_resp in
  Mutex.unlock r.cell_lock;
  resp

(** EDF priority of a queued request: its deadline, clipped by the
    starvation guard — a deadline-less request behaves as if due
    [starvation] seconds after it was enqueued, so tight-SLO tenants
    cannot starve best-effort traffic forever. *)
let priority ~starvation (r : request) : float =
  let guard = r.req_enqueued +. starvation in
  match r.req_deadline with None -> guard | Some d -> Float.min d guard
