(** Multi-tenant model registry with a bounded LRU of hot engines.

    Models are registered by name as either an in-memory
    {!Spnc_spn.Model.t} or a path (binary [.spn] or text DSL), and are
    loaded/compiled lazily on first request through {!Spnc.Compiler} —
    so a fleet of thousands of per-tenant models costs nothing until
    traffic arrives, and repeat compiles are served by the in-memory
    kernel cache or the persistent {!Spnc.Kcache} disk tier when
    [options.kernel_cache_dir] is set (the 23x cold-start lever).

    A loaded {e engine} is the compiled artifact plus a hot
    {!Spnc_runtime.Exec.t} handle ({!Spnc.Compiler.load_exec}: JIT
    closures forced once, process-wide pool wired up).  At most [cap]
    engines stay resident; loading one more evicts the least-recently
    used.  An evicted model's next request reloads through the compiler
    cache tiers — typically a disk hit, not a recompile. *)

module Metrics = Spnc_obs.Metrics

let m_loads = Metrics.counter "serve.engines.loads"
let m_evictions = Metrics.counter "serve.engines.evictions"
let m_loaded = Metrics.gauge "serve.engines.loaded"

type source = Src_model of Spnc_spn.Model.t | Src_path of string

type engine = {
  eng_name : string;
  eng_compiled : Spnc.Compiler.compiled;
  eng_exec : Spnc_runtime.Exec.t;
  eng_features : int;
  mutable eng_tick : int;  (** LRU clock stamp of the last touch *)
}

type t = {
  lock : Mutex.t;
  options : Spnc.Options.t;
  cap : int;
  sources : (string, source) Hashtbl.t;
  engines : (string, engine) Hashtbl.t;
  mutable clock : int;
}

let create ?cap ~options () =
  {
    lock = Mutex.create ();
    options;
    cap = max 1 (Option.value cap ~default:options.Spnc.Options.serve_engines_cap);
    sources = Hashtbl.create 64;
    engines = Hashtbl.create 64;
    clock = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t ~name source =
  locked t (fun () ->
      Hashtbl.replace t.sources name source;
      (* re-registering a name drops any resident engine for it *)
      if Hashtbl.mem t.engines name then begin
        Hashtbl.remove t.engines name;
        Metrics.gauge_set m_loaded (float_of_int (Hashtbl.length t.engines))
      end)

let register_model t ~name model = register t ~name (Src_model model)
let register_path t ~name path = register t ~name (Src_path path)
let mem t name = locked t (fun () -> Hashtbl.mem t.sources name)

let names t =
  locked t (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.sources []
      |> List.sort String.compare)

let loaded t =
  locked t (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.engines []
      |> List.sort String.compare)

let load_model = function
  | Src_model m -> m
  | Src_path path ->
      if Filename.check_suffix path ".spn" then
        match Spnc_spn.Serialize.read_file path with
        | Ok m -> m
        | Error e -> failwith (Printf.sprintf "%s: %s" path e)
      else
        let ic = open_in path in
        let content =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Spnc_spn.Text.of_string content

let evict_over_cap t =
  while Hashtbl.length t.engines > t.cap do
    let victim =
      Hashtbl.fold
        (fun _ e acc ->
          match acc with
          | Some v when v.eng_tick <= e.eng_tick -> acc
          | _ -> Some e)
        t.engines None
    in
    match victim with
    | None -> ()
    | Some v ->
        Hashtbl.remove t.engines v.eng_name;
        (* shared-pool handles make this a no-op; it is here so privately
           pooled engines would not leak domains *)
        Spnc_runtime.Exec.shutdown v.eng_exec;
        Metrics.counter_incr m_evictions
  done

(** [engine t name] — the hot engine for [name], loading (compile +
    {!Spnc.Compiler.load_exec}) and LRU-evicting as needed.  [Error] on
    an unregistered name or a failed load; loads are serialized under
    the registry lock. *)
let engine t name : (engine, string) result =
  locked t (fun () ->
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.engines name with
      | Some e ->
          e.eng_tick <- t.clock;
          Ok e
      | None -> (
          match Hashtbl.find_opt t.sources name with
          | None -> Error (Printf.sprintf "unknown model %S" name)
          | Some src -> (
              match
                let model = load_model src in
                let compiled = Spnc.Compiler.compile ~options:t.options model in
                let exec = Spnc.Compiler.load_exec compiled in
                {
                  eng_name = name;
                  eng_compiled = compiled;
                  eng_exec = exec;
                  eng_features = model.Spnc_spn.Model.num_features;
                  eng_tick = t.clock;
                }
              with
              | e ->
                  Hashtbl.replace t.engines name e;
                  Metrics.counter_incr m_loads;
                  evict_over_cap t;
                  Metrics.gauge_set m_loaded
                    (float_of_int (Hashtbl.length t.engines));
                  Ok e
              | exception exn -> Error (Printexc.to_string exn))))

(** Drop every resident engine (tests: forces the next request through
    the compiler cache tiers). *)
let flush_engines t =
  locked t (fun () ->
      Hashtbl.iter (fun _ e -> Spnc_runtime.Exec.shutdown e.eng_exec) t.engines;
      Hashtbl.reset t.engines;
      Metrics.gauge_set m_loaded 0.0)
