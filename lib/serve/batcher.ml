(** Dynamic per-model batching with bounded admission and EDF dispatch.

    One FIFO queue per model.  {!enqueue} is the admission-control
    point: it rejects when the per-model queue holds [queue_cap]
    requests or the process holds [global_cap] across all queues — the
    caller turns those into structured [overloaded] responses
    (load-shedding) instead of letting latency collapse under an
    unbounded backlog.

    A queue is {e ready} when it holds [max_batch] rows (flush on size)
    or its oldest request has waited [max_delay] (flush on timer) —
    whichever comes first.  {!pop_ready} picks among ready queues by
    earliest effective deadline ({!Types.priority}: the tightest request
    deadline in the queue, clipped by the starvation guard so
    deadline-less traffic eventually wins) and pops whole head-of-line
    requests up to [max_batch] rows.  Requests whose deadline has
    already passed are swept out on the same call and never reach a
    dispatch — the "never dispatched" guarantee the serve tests pin.

    All state is guarded by one mutex; every operation is O(queued
    requests) worst case, which the admission caps keep small.  Pure
    policy lives here — no domains, no clocks — so the flush/EDF
    behavior is deterministic under test (the server injects [now]). *)

module T = Types

type mq = {
  mq_name : string;
  mq_q : T.request Queue.t;
  mutable mq_rows : int;  (** queued rows in this queue *)
}

type t = {
  lock : Mutex.t;
  queues : (string, mq) Hashtbl.t;
  mutable total_reqs : int;
  max_batch : int;  (** flush threshold and batch bound, in rows *)
  max_delay : float;  (** flush timer, seconds *)
  starvation : float;  (** starvation guard, seconds *)
  queue_cap : int;  (** per-model bound, in requests *)
  global_cap : int;  (** process-wide bound, in requests *)
}

type batch = {
  b_model : string;
  b_reqs : T.request list;  (** FIFO order *)
  b_rows : int;
}

type pick = {
  p_expired : T.request list;
      (** swept this call: deadline passed while queued *)
  p_batch : batch option;
  p_next : float option;
      (** absolute time the earliest timer flush comes due, for the
          dispatcher's sleep; [None] when every queue is empty *)
}

let create ~max_batch ~max_delay_ms ~starvation_ms ~queue_cap ~global_cap =
  {
    lock = Mutex.create ();
    queues = Hashtbl.create 64;
    total_reqs = 0;
    max_batch = max 1 max_batch;
    max_delay = Float.max 0.0 max_delay_ms /. 1000.0;
    starvation = Float.max 0.0 starvation_ms /. 1000.0;
    queue_cap = max 1 queue_cap;
    global_cap = max 1 global_cap;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let enqueue t (r : T.request) : (unit, T.reject_reason) result =
  locked t (fun () ->
      if t.total_reqs >= t.global_cap then Error T.Overloaded_global
      else begin
        let mq =
          match Hashtbl.find_opt t.queues r.T.req_model with
          | Some mq -> mq
          | None ->
              let mq =
                { mq_name = r.T.req_model; mq_q = Queue.create (); mq_rows = 0 }
              in
              Hashtbl.replace t.queues r.T.req_model mq;
              mq
        in
        if Queue.length mq.mq_q >= t.queue_cap then Error T.Overloaded_model
        else begin
          Queue.add r mq.mq_q;
          mq.mq_rows <- mq.mq_rows + r.T.req_rows;
          t.total_reqs <- t.total_reqs + 1;
          Ok ()
        end
      end)

let depth t model =
  locked t (fun () ->
      match Hashtbl.find_opt t.queues model with
      | None -> 0
      | Some mq -> Queue.length mq.mq_q)

let total_queued t = locked t (fun () -> t.total_reqs)

(* Remove requests whose deadline has passed; FIFO order preserved. *)
let sweep_expired t (mq : mq) ~now acc =
  let expired = ref acc in
  let keep = Queue.create () in
  Queue.iter
    (fun r ->
      match r.T.req_deadline with
      | Some d when d < now ->
          expired := r :: !expired;
          t.total_reqs <- t.total_reqs - 1;
          mq.mq_rows <- mq.mq_rows - r.T.req_rows
      | _ -> Queue.add r keep)
    mq.mq_q;
  Queue.clear mq.mq_q;
  Queue.transfer keep mq.mq_q;
  !expired

let ready (t : t) (mq : mq) ~now =
  (not (Queue.is_empty mq.mq_q))
  && (mq.mq_rows >= t.max_batch
     || now -. (Queue.peek mq.mq_q).T.req_enqueued >= t.max_delay)

(* Tightest effective deadline among the queue's requests — the EDF key. *)
let queue_priority (t : t) (mq : mq) : float =
  Queue.fold
    (fun acc r -> Float.min acc (T.priority ~starvation:t.starvation r))
    Float.infinity mq.mq_q

let pop_batch (t : t) (mq : mq) : batch =
  let reqs = ref [] and rows = ref 0 in
  let continue = ref true in
  while !continue && not (Queue.is_empty mq.mq_q) do
    let head = Queue.peek mq.mq_q in
    (* whole requests only; the first one is taken even when it alone
       exceeds [max_batch] (it could never dispatch otherwise) *)
    if !rows > 0 && !rows + head.T.req_rows > t.max_batch then
      continue := false
    else begin
      ignore (Queue.pop mq.mq_q);
      reqs := head :: !reqs;
      rows := !rows + head.T.req_rows;
      mq.mq_rows <- mq.mq_rows - head.T.req_rows;
      t.total_reqs <- t.total_reqs - 1
    end
  done;
  { b_model = mq.mq_name; b_reqs = List.rev !reqs; b_rows = !rows }

let pop_ready t ~now : pick =
  locked t (fun () ->
      let expired =
        Hashtbl.fold (fun _ mq acc -> sweep_expired t mq ~now acc) t.queues []
      in
      (* EDF across models: among ready queues, earliest effective
         deadline wins *)
      let best =
        Hashtbl.fold
          (fun _ mq acc ->
            if not (ready t mq ~now) then acc
            else
              let p = queue_priority t mq in
              match acc with
              | Some (_, bp) when bp <= p -> acc
              | _ -> Some (mq, p))
          t.queues None
      in
      let batch = Option.map (fun (mq, _) -> pop_batch t mq) best in
      let next =
        Hashtbl.fold
          (fun _ mq acc ->
            if Queue.is_empty mq.mq_q then acc
            else
              let due =
                if mq.mq_rows >= t.max_batch then now
                else (Queue.peek mq.mq_q).T.req_enqueued +. t.max_delay
              in
              match acc with
              | Some a when a <= due -> acc
              | _ -> Some due)
          t.queues None
      in
      { p_expired = expired; p_batch = batch; p_next = next })

(** Pop everything (shutdown): the caller fulfills each request with a
    [Closed] rejection. *)
let drain t : T.request list =
  locked t (fun () ->
      let all =
        Hashtbl.fold
          (fun _ mq acc ->
            let l = List.rev (Queue.fold (fun a r -> r :: a) [] mq.mq_q) in
            Queue.clear mq.mq_q;
            mq.mq_rows <- 0;
            acc @ l)
          t.queues []
      in
      t.total_reqs <- 0;
      all)
