(** Line-delimited JSON wire protocol for [spnc_serve].

    One request or response per line, newline-terminated, over any byte
    stream (the binary uses TCP).  Floats are encoded with
    {!Spnc_obs.Json}'s shortest-exact printer and parse back to the same
    bits, so bit-identity survives the wire — the CI smoke test compares
    served results against local execution bitwise.

    Request:  [{"id":1,"model":"m3","rows":[[...],...],"deadline_ms":50}]
    Response: [{"id":1,"ok":true,"values":[...]}]
          or  [{"id":1,"ok":false,"error":"overloaded_model","detail":"..."}]

    [deadline_ms] is a {e relative} budget; the server turns it into an
    absolute deadline on receipt.  [id] is an opaque caller token echoed
    back — responses may arrive out of submission order. *)

module J = Spnc_obs.Json
module T = Types

type wire_request = {
  wr_id : int;
  wr_model : string;
  wr_rows : float array array;
  wr_deadline_ms : float option;
}

let encode_request (r : wire_request) : string =
  let rows =
    J.List
      (Array.to_list r.wr_rows
      |> List.map (fun row ->
             J.List (Array.to_list row |> List.map (fun x -> J.Num x))))
  in
  let fields =
    [
      ("id", J.Num (float_of_int r.wr_id));
      ("model", J.Str r.wr_model);
      ("rows", rows);
    ]
    @
    match r.wr_deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", J.Num ms) ]
  in
  J.to_string (J.Obj fields)

let decode_request (line : string) : (wire_request, string) result =
  match J.parse line with
  | Error e -> Error e
  | Ok j -> (
      let id = Option.bind (J.member "id" j) J.num in
      let model = Option.bind (J.member "model" j) J.str in
      let rows = Option.bind (J.member "rows" j) J.list in
      let deadline_ms = Option.bind (J.member "deadline_ms" j) J.num in
      match (id, model, rows) with
      | Some id, Some model, Some rows -> (
          let parse_row r =
            match J.list r with
            | None -> None
            | Some cells ->
                let vals = List.map J.num cells in
                if List.exists Option.is_none vals then None
                else Some (Array.of_list (List.map Option.get vals))
          in
          let parsed = List.map parse_row rows in
          if List.exists Option.is_none parsed then
            Error "rows must be arrays of numbers"
          else
            match
              Array.of_list (List.map Option.get parsed)
            with
            | rows ->
                Ok
                  {
                    wr_id = int_of_float id;
                    wr_model = model;
                    wr_rows = rows;
                    wr_deadline_ms = deadline_ms;
                  })
      | _ -> Error "request needs id, model and rows fields")

let encode_response ~(id : int) (resp : T.response) : string =
  let fields =
    match resp with
    | Ok values ->
        [
          ("id", J.Num (float_of_int id));
          ("ok", J.Bool true);
          ( "values",
            J.List (Array.to_list values |> List.map (fun x -> J.Num x)) );
        ]
    | Error e ->
        [
          ("id", J.Num (float_of_int id));
          ("ok", J.Bool false);
          ("error", J.Str (T.reject_reason_to_string e.T.reason));
          ("detail", J.Str e.T.detail);
        ]
  in
  J.to_string (J.Obj fields)

let decode_response (line : string) : (int * T.response, string) result =
  match J.parse line with
  | Error e -> Error e
  | Ok j -> (
      let id = Option.bind (J.member "id" j) J.num in
      let ok = Option.bind (J.member "ok" j) J.bool in
      match (id, ok) with
      | Some id, Some true -> (
          match Option.bind (J.member "values" j) J.list with
          | None -> Error "ok response needs values"
          | Some vs ->
              let vals = List.map J.num vs in
              if List.exists Option.is_none vals then
                Error "values must be numbers"
              else
                Ok
                  ( int_of_float id,
                    Ok (Array.of_list (List.map Option.get vals)) ))
      | Some id, Some false ->
          let reason =
            Option.bind (J.member "error" j) J.str
            |> Fun.flip Option.bind T.reject_reason_of_string
            |> Option.value ~default:T.Engine_failure
          in
          let detail =
            Option.bind (J.member "detail" j) J.str |> Option.value ~default:""
          in
          Ok (int_of_float id, Error { T.reason; detail })
      | _ -> Error "response needs id and ok fields")
