(** The SPN model server: admission control in front of a dynamic
    per-model batcher, drained by dispatcher domains in EDF order.

    Request path: {!submit_async} validates the rows, checks the
    registry, applies admission control ({!Batcher.enqueue}: bounded
    per-model and global queues — over-cap requests are shed with a
    structured [overloaded] rejection) and wakes a dispatcher.  A
    dispatcher pops the ready queue with the earliest effective deadline
    ({!Batcher.pop_ready}), coalesces its head-of-line requests into one
    batch, and runs it through the model's hot engine with
    {!Spnc_runtime.Exec.execute_segments} — each request is one segment,
    so the kernel writes every caller's results straight into that
    caller's buffer (zero-copy scatter).  Per-row results are
    bit-identical to sequential per-request execution; the serve tests
    and bench assert this.

    Deadlines reuse the runtime's machinery: a request whose absolute
    deadline passes while queued is swept and answered [Expired] without
    ever dispatching; an in-flight batch runs under the latest deadline
    of its requests and a {!Spnc_runtime.Exec.Deadline_exceeded} maps
    back to [Expired] responses (exit-75 semantics at the CLI boundary).

    Threading: submitters may be any mix of systhreads and domains;
    dispatchers are domains ([options.serve_dispatchers]), woken through
    a self-pipe and parked in [Unix.select] until the next timer flush
    comes due.  Tests create the server with [~dispatchers:0] and an
    injected [~clock], then drive {!step} by hand — every flush/EDF
    decision is deterministic. *)

module T = Types
module Metrics = Spnc_obs.Metrics
module Exec = Spnc_runtime.Exec

(* -- Metrics ------------------------------------------------------------------- *)

let m_requests = Metrics.counter "serve.requests"
let m_ok = Metrics.counter "serve.responses_ok"
let m_shed = Metrics.counter "serve.shed"
let m_expired = Metrics.counter "serve.expired"
let m_failed = Metrics.counter "serve.failed"
let m_batches = Metrics.counter "serve.batches"
let m_dispatched_rows = Metrics.counter "serve.dispatched_rows"
let m_queued_rows = Metrics.gauge "serve.queued_rows"

(* batch-size distribution in µ-units: one row observes as 1e-6, so the
   1 µs..8.4 s geometric buckets cover 1..8.4M rows; read percentiles
   back as rows via [p * 1e6] (docs/OBSERVABILITY.md) *)
let m_batch_rows = Metrics.histogram "serve.batch_rows"

(* shared vocabulary with plain CLI runs (docs/OBSERVABILITY.md): time a
   request waits before executing, and rows admitted but not finished —
   the same two instruments Exec reports into.  Queued rows are moved
   out of the gauge right before dispatch; Exec adds them back for the
   execution phase, so the gauge never double-counts. *)
let m_queue_wait = Metrics.histogram "runtime.exec.queue_wait_seconds"
let m_rows_in_flight = Metrics.gauge "runtime.exec.rows_in_flight"

let mm_requests model =
  Metrics.counter_l "serve.model.requests" [ ("model", model) ]

let mm_depth model = Metrics.gauge_l "serve.model.queue_depth" [ ("model", model) ]

let mm_time_in_queue model =
  Metrics.histogram_l "serve.model.time_in_queue_seconds" [ ("model", model) ]

let mm_batch_rows model =
  Metrics.histogram_l "serve.model.batch_rows" [ ("model", model) ]

(* -- Server -------------------------------------------------------------------- *)

type t = {
  registry : Registry.t;
  batcher : Batcher.t;
  options : Spnc.Options.t;
  clock : unit -> float;
  stop : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable domains : unit Domain.t list;
}

type ticket = T.request

let rows_f r = float_of_int r.T.req_rows
let fulfill_error req reason detail = T.fulfill req (Error { T.reason; detail })

(* A batch's wall-clock budget is the {e latest} deadline among its
   requests (the tightest ones were EDF-ordered to the front, and a
   batch completes as a unit); a batch containing any deadline-less
   request runs unbounded, like a plain CLI call. *)
let batch_deadline (reqs : T.request list) : float option =
  let rec go acc = function
    | [] -> acc
    | { T.req_deadline = None; _ } :: _ -> None
    | { T.req_deadline = Some d; _ } :: tl ->
        go (Some (match acc with None -> d | Some a -> Float.max a d)) tl
  in
  go None reqs

(* -- Dispatch ------------------------------------------------------------------ *)

let dispatch_batch t (b : Batcher.batch) ~now =
  match Registry.engine t.registry b.Batcher.b_model with
  | Error msg ->
      List.iter
        (fun r ->
          Metrics.counter_incr m_failed;
          fulfill_error r T.Engine_failure msg)
        b.Batcher.b_reqs
  | Ok eng -> (
      (* feature-count mismatches surface per request, not per batch *)
      let good, bad =
        List.partition
          (fun r -> r.T.req_features = eng.Registry.eng_features)
          b.Batcher.b_reqs
      in
      List.iter
        (fun r ->
          Metrics.counter_incr m_failed;
          fulfill_error r T.Bad_request
            (Printf.sprintf "model %s expects %d features, request has %d"
               b.Batcher.b_model eng.Registry.eng_features r.T.req_features))
        bad;
      match good with
      | [] -> ()
      | good -> (
          let rows = List.fold_left (fun a r -> a + r.T.req_rows) 0 good in
          Metrics.counter_incr m_batches;
          Metrics.counter_incr ~by:rows m_dispatched_rows;
          let size_obs = float_of_int rows *. 1e-6 in
          Metrics.histogram_observe m_batch_rows size_obs;
          Metrics.histogram_observe (mm_batch_rows b.Batcher.b_model) size_obs;
          List.iter
            (fun r ->
              let waited = now -. r.T.req_enqueued in
              Metrics.histogram_observe m_queue_wait waited;
              Metrics.histogram_observe
                (mm_time_in_queue b.Batcher.b_model)
                waited)
            good;
          let segs =
            Array.of_list
              (List.map
                 (fun r ->
                   {
                     Exec.seg_flat = r.T.req_flat;
                     seg_rows = r.T.req_rows;
                     seg_out = r.T.req_out;
                     seg_out_pos = 0;
                   })
                 good)
          in
          match
            Exec.execute_segments
              ?deadline:(batch_deadline good)
              ~retries:(max 0 t.options.Spnc.Options.exec_retries)
              eng.Registry.eng_exec ~num_features:eng.Registry.eng_features
              segs
          with
          | () ->
              (* same post-processing as [Compiler.execute]: log-space
                 conversion + output guard, applied per request so one
                 guard failure cannot poison its batchmates *)
              List.iter
                (fun r ->
                  match
                    Spnc.Compiler.finalize_output eng.Registry.eng_compiled
                      r.T.req_out
                  with
                  | final ->
                      Metrics.counter_incr m_ok;
                      T.fulfill r (Ok final)
                  | exception e ->
                      Metrics.counter_incr m_failed;
                      fulfill_error r T.Engine_failure (Printexc.to_string e))
                good
          | exception Exec.Deadline_exceeded d ->
              List.iter
                (fun r ->
                  Metrics.counter_incr m_expired;
                  fulfill_error r T.Expired
                    (Printf.sprintf "batch exceeded deadline by %.3fs"
                       (d.Exec.now -. d.Exec.deadline)))
                good
          | exception e ->
              List.iter
                (fun r ->
                  Metrics.counter_incr m_failed;
                  fulfill_error r T.Engine_failure (Printexc.to_string e))
                good))

(* One dispatcher iteration: sweep expired, dispatch at most one batch.
   Returns (made progress, next timer-flush instant). *)
let dispatch_once t ~now : bool * float option =
  let pick = Batcher.pop_ready t.batcher ~now in
  List.iter
    (fun r ->
      Metrics.counter_incr m_expired;
      Metrics.gauge_add m_queued_rows (-.rows_f r);
      Metrics.gauge_add m_rows_in_flight (-.rows_f r);
      Metrics.gauge_set (mm_depth r.T.req_model)
        (float_of_int (Batcher.depth t.batcher r.T.req_model));
      fulfill_error r T.Expired "deadline passed while queued")
    pick.Batcher.p_expired;
  (match pick.Batcher.p_batch with
  | None -> ()
  | Some b ->
      let brows = float_of_int b.Batcher.b_rows in
      Metrics.gauge_add m_queued_rows (-.brows);
      (* Exec re-adds these rows for the execution phase *)
      Metrics.gauge_add m_rows_in_flight (-.brows);
      Metrics.gauge_set
        (mm_depth b.Batcher.b_model)
        (float_of_int (Batcher.depth t.batcher b.Batcher.b_model));
      dispatch_batch t b ~now);
  ( pick.Batcher.p_expired <> [] || pick.Batcher.p_batch <> None,
    pick.Batcher.p_next )

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 'w') 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
  | Unix.Unix_error (Unix.EPIPE, _, _)
  | Unix.Unix_error (Unix.EBADF, _, _)
  ->
    ()

let dispatcher_loop t =
  let buf = Bytes.create 64 in
  while not (Atomic.get t.stop) do
    let now = t.clock () in
    let progress, next = dispatch_once t ~now in
    if (not progress) && not (Atomic.get t.stop) then begin
      (* park until woken or the next timer flush; the 0.25 s cap bounds
         shutdown latency even if a wake byte is lost *)
      let timeout =
        match next with
        | Some due -> Float.max 0.0 (Float.min 0.25 (due -. now))
        | None -> 0.25
      in
      (try ignore (Unix.select [ t.wake_r ] [] [] timeout)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      try ignore (Unix.read t.wake_r buf 0 64) with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      | Unix.Unix_error (Unix.EBADF, _, _)
      ->
        ()
    end
  done

let create ?clock ?dispatchers ~(options : Spnc.Options.t) () =
  let batcher =
    Batcher.create ~max_batch:options.Spnc.Options.serve_max_batch
      ~max_delay_ms:options.Spnc.Options.serve_max_delay_ms
      ~starvation_ms:options.Spnc.Options.serve_starvation_ms
      ~queue_cap:options.Spnc.Options.serve_queue_cap
      ~global_cap:options.Spnc.Options.serve_global_queue_cap
  in
  let registry = Registry.create ~options () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      registry;
      batcher;
      options;
      clock = Option.value clock ~default:Unix.gettimeofday;
      stop = Atomic.make false;
      wake_r;
      wake_w;
      domains = [];
    }
  in
  let n =
    max 0
      (Option.value dispatchers ~default:options.Spnc.Options.serve_dispatchers)
  in
  t.domains <- List.init n (fun _ -> Domain.spawn (fun () -> dispatcher_loop t));
  t

(* -- Submission ---------------------------------------------------------------- *)

let register_model t ~name model =
  Registry.register_model t.registry ~name model

let register_path t ~name path = Registry.register_path t.registry ~name path
let models t = Registry.names t.registry
let registry t = t.registry

let reject ~model ~now reason detail : ticket =
  let r =
    T.make_request ~model ~flat:[||] ~rows:0 ~features:0 ~deadline:None ~now
  in
  (match reason with
  | T.Overloaded_model | T.Overloaded_global -> Metrics.counter_incr m_shed
  | T.Expired -> Metrics.counter_incr m_expired
  | _ -> Metrics.counter_incr m_failed);
  T.fulfill r (Error { T.reason; detail });
  r

let submit_async t ~model ?deadline (rows_2d : float array array) : ticket =
  Metrics.counter_incr m_requests;
  Metrics.counter_incr (mm_requests model);
  let now = t.clock () in
  if Atomic.get t.stop then reject ~model ~now T.Closed "server shutting down"
  else if not (Registry.mem t.registry model) then
    reject ~model ~now T.Unknown_model (Printf.sprintf "no model %S" model)
  else begin
    let rows = Array.length rows_2d in
    if rows = 0 then begin
      let r =
        T.make_request ~model ~flat:[||] ~rows:0 ~features:0 ~deadline ~now
      in
      Metrics.counter_incr m_ok;
      T.fulfill r (Ok [||]);
      r
    end
    else begin
      let features = Array.length rows_2d.(0) in
      let ragged =
        features = 0
        || Array.exists (fun row -> Array.length row <> features) rows_2d
      in
      if ragged then reject ~model ~now T.Bad_request "ragged or zero-width rows"
      else
        match deadline with
        | Some d when d <= now ->
            reject ~model ~now T.Expired "deadline already passed at submit"
        | _ ->
            let flat = Array.concat (Array.to_list rows_2d) in
            let r = T.make_request ~model ~flat ~rows ~features ~deadline ~now in
            (match Batcher.enqueue t.batcher r with
            | Error reason ->
                Metrics.counter_incr m_shed;
                fulfill_error r reason
                  (Printf.sprintf "queue full (%s)"
                     (T.reject_reason_to_string reason))
            | Ok () ->
                Metrics.gauge_add m_queued_rows (rows_f r);
                Metrics.gauge_add m_rows_in_flight (rows_f r);
                Metrics.gauge_set (mm_depth model)
                  (float_of_int (Batcher.depth t.batcher model));
                wake t);
            r
    end
  end

let await (ticket : ticket) : T.response = T.await ticket

let submit t ~model ?deadline rows_2d : T.response =
  await (submit_async t ~model ?deadline rows_2d)

(* -- Test hook & shutdown ------------------------------------------------------ *)

let step t ~now = fst (dispatch_once t ~now)
let pending t = Batcher.total_queued t.batcher
let queue_depth t model = Batcher.depth t.batcher model

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (* one byte per dispatcher so every select returns promptly *)
    List.iter (fun _ -> wake t) t.domains;
    List.iter Domain.join t.domains;
    t.domains <- [];
    let orphans = Batcher.drain t.batcher in
    List.iter
      (fun r ->
        Metrics.gauge_add m_queued_rows (-.rows_f r);
        Metrics.gauge_add m_rows_in_flight (-.rows_f r);
        fulfill_error r T.Closed "server shut down")
      orphans;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
