(** Dynamic per-model batching with bounded admission and EDF dispatch.

    One FIFO queue per model; {!enqueue} is the admission-control point
    (bounded per-model and process-wide), {!pop_ready} flushes a queue
    when it holds [max_batch] rows or its oldest request has waited
    [max_delay_ms] — whichever comes first — picking among ready queues
    by earliest effective deadline with a starvation guard
    ({!Types.priority}).  Deadline-expired requests are swept out by
    {!pop_ready} and never dispatched.

    Pure policy: no domains, no clock reads — callers inject [now], so
    flush and ordering behavior is deterministic under test. *)

type t

type batch = {
  b_model : string;
  b_reqs : Types.request list;  (** FIFO order *)
  b_rows : int;
}

type pick = {
  p_expired : Types.request list;
      (** deadline passed while queued; fulfill with [Expired] *)
  p_batch : batch option;
  p_next : float option;
      (** absolute time of the earliest pending timer flush (or [now]
          when a queue is already size-ready); [None] if all empty *)
}

val create :
  max_batch:int ->
  max_delay_ms:float ->
  starvation_ms:float ->
  queue_cap:int ->
  global_cap:int ->
  t
(** Caps and [max_batch] are clamped to at least 1; delays to >= 0. *)

val enqueue : t -> Types.request -> (unit, Types.reject_reason) result
(** Admission: [Error Overloaded_global] when [global_cap] requests are
    queued process-wide, [Error Overloaded_model] when the model's queue
    holds [queue_cap].  Never blocks. *)

val pop_ready : t -> now:float -> pick
(** Sweep expired requests, then pop one batch from the ready queue with
    the earliest effective deadline (EDF).  Batches take whole
    head-of-line requests up to [max_batch] rows; the first request is
    taken even if it alone exceeds the bound. *)

val drain : t -> Types.request list
(** Pop everything (shutdown); caller fulfills each with [Closed]. *)

val depth : t -> string -> int
(** Queued requests for one model (metrics / tests). *)

val total_queued : t -> int
