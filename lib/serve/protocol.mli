(** Line-delimited JSON wire protocol for [spnc_serve]: one request or
    response per line.  Floats use {!Spnc_obs.Json}'s shortest-exact
    printer, so values round-trip bit-identically over the wire.
    [deadline_ms] is a relative budget (made absolute server-side); [id]
    is an opaque caller token echoed back — responses may arrive out of
    submission order. *)

type wire_request = {
  wr_id : int;
  wr_model : string;
  wr_rows : float array array;
  wr_deadline_ms : float option;
}

val encode_request : wire_request -> string
(** Single line, no trailing newline. *)

val decode_request : string -> (wire_request, string) result
val encode_response : id:int -> Types.response -> string
val decode_response : string -> (int * Types.response, string) result
