(** Self-contained reproducer bundles for compiler failures.

    When a pass crashes or a differential run mismatches, the resilience
    layer writes everything needed to replay the failure into a fresh
    directory: the generic-form IR (or model text) immediately before the
    failing stage, the pipeline string that triggers it, the options in
    effect, the rendered diagnostic, and a README with the replay command
    line.  Bundles are append-only artifacts: nothing in the compiler
    reads them back, [spnc_opt]/[spnc_fuzz] replay them from the files. *)

type bundle = {
  dir : string;  (** bundle directory *)
  files : string list;  (** file names inside [dir] *)
}

(** Environment variable overriding the default dump location. *)
let dump_dir_env = "SPNC_DUMP_DIR"

let default_dir () =
  match Sys.getenv_opt dump_dir_env with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Sys.getcwd ()) "spnc-reproducers"

(* Process-local counter so bundles from one run never collide. *)
let counter = Atomic.make 0

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path content =
  (* chaos: bundle writes share the same graceful-degradation contract as
     the rest of the layer — an injected I/O fault here must surface as
     [Error], never crash the failure path that is dumping the bundle *)
  if Fault.fire "repro.write_fail" then
    raise (Sys_error (path ^ ": injected reproducer I/O fault"));
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let readme ~pipeline =
  Printf.sprintf
    "SPNC reproducer bundle\n\
     ======================\n\n\
     Files:\n\
     - ir.mlir       generic-form IR immediately before the failing pass\n\
     - pipeline.txt  pass pipeline that reproduces the failure\n\
     - options.txt   compiler options in effect\n\
     - diag.txt      the diagnostic that was reported\n\n\
     Replay:\n\n\
    \    spnc_opt --pipeline '%s' ir.mlir\n\n\
     The command should reproduce the reported failure; a clean exit\n\
     means the bug no longer reproduces at this commit.\n"
    pipeline

(** [write ?dir ?extra ~ir ~pipeline ~options ~diag ()] writes a bundle
    into a fresh uniquely-named subdirectory of [dir] (default
    {!default_dir}).  [extra] adds arbitrary named files (the fuzzer
    stores the model text and input data this way).  Never raises: any
    I/O problem is returned as [Error] so a dump failure cannot mask the
    compiler failure being reported. *)
let write ?dir ?(extra = []) ~ir ~pipeline ~options ~diag () :
    (bundle, string) result =
  let parent = match dir with Some d -> d | None -> default_dir () in
  let name =
    Printf.sprintf "repro-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add counter 1)
  in
  let bdir = Filename.concat parent name in
  try
    mkdir_p bdir;
    let files =
      [
        ("ir.mlir", ir);
        ("pipeline.txt", pipeline ^ "\n");
        ("options.txt", options ^ "\n");
        ("diag.txt", diag ^ "\n");
        ("README.txt", readme ~pipeline);
      ]
      @ extra
    in
    List.iter (fun (f, c) -> write_file (Filename.concat bdir f) c) files;
    Ok { dir = bdir; files = List.map fst files }
  with
  | Sys_error e -> Error (Printf.sprintf "cannot write reproducer: %s" e)
  | Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "cannot write reproducer: %s(%s): %s" fn arg
           (Unix.error_message e))

let path (b : bundle) file = Filename.concat b.dir file

let read_file (b : bundle) file =
  let p = path b file in
  let ic = open_in p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
