(** Self-contained reproducer bundles for compiler failures: IR before
    the failing pass, the pipeline string that replays it, the options in
    effect, and the rendered diagnostic, in one fresh directory (see
    docs/RESILIENCE.md for the layout). *)

type bundle = {
  dir : string;  (** bundle directory *)
  files : string list;  (** file names inside [dir] *)
}

(** Environment variable overriding the default dump location
    ([SPNC_DUMP_DIR]). *)
val dump_dir_env : string

(** [default_dir ()] is [$SPNC_DUMP_DIR], or [./spnc-reproducers]. *)
val default_dir : unit -> string

(** [write ?dir ?extra ~ir ~pipeline ~options ~diag ()] writes a bundle
    into a fresh uniquely-named subdirectory of [dir].  [extra] adds
    arbitrary named files.  Never raises: I/O problems come back as
    [Error] so a dump failure cannot mask the failure being reported. *)
val write :
  ?dir:string ->
  ?extra:(string * string) list ->
  ir:string ->
  pipeline:string ->
  options:string ->
  diag:string ->
  unit ->
  (bundle, string) result

(** [path b file] — absolute path of a bundle member. *)
val path : bundle -> string -> string

(** [read_file b file] — contents of a bundle member.
    @raise Sys_error if the file cannot be read. *)
val read_file : bundle -> string -> string
