(** Structured compiler diagnostics (resilience layer).

    Normalizes every failure that crosses a component boundary — pass
    errors, verifier reports, escaped exceptions — into one record with
    severity, pass of origin, enclosing-op path, message, and an optional
    [Printexc] backtrace.  Replaces the bare [failwith]/[Pipeline_error]
    strings previously thrown across the pipeline. *)

type severity = Error | Warning | Note

val severity_to_string : severity -> string

type t = {
  severity : severity;
  pass : string option;  (** pass of origin, when known *)
  op_path : string list;  (** enclosing op names, outermost first *)
  message : string;
  backtrace : string option;  (** raw backtrace of an escaped exception *)
}

(** Structured counterpart of [Failure]: raised by {!fail} inside pass
    bodies and caught by the pass manager's exception barrier. *)
exception Diag_error of t

val make :
  ?severity:severity ->
  ?pass:string ->
  ?op_path:string list ->
  ?backtrace:string ->
  string ->
  t

val error :
  ?pass:string -> ?op_path:string list -> ?backtrace:string -> string -> t

val warning : ?pass:string -> ?op_path:string list -> string -> t
val note : ?pass:string -> ?op_path:string list -> string -> t

(** [fail ?pass ?op_path fmt ...] raises {!Diag_error} with a formatted
    error message — the structured replacement for [failwith]. *)
val fail :
  ?pass:string ->
  ?op_path:string list ->
  ('a, unit, string, 'b) format4 ->
  'a

(** [with_pass name d] attributes [d] to pass [name] unless it already
    carries a pass of origin. *)
val with_pass : string -> t -> t

(** [of_exn ?pass e bt] normalizes an escaped exception into a
    diagnostic; a {!Diag_error} payload passes through unchanged (except
    for pass attribution). *)
val of_exn : ?pass:string -> exn -> Printexc.raw_backtrace -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
