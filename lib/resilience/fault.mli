(** Deterministic, seed-driven fault injection (the chaos layer;
    docs/RESILIENCE.md).

    Production code declares {e injection points} — named places where
    adversity can be introduced: kernel-cache I/O (short read, torn
    write, bit flip, ENOSPC, lock contention), pool workers (chunk
    failure, slow-chunk stall, round-entry stall), JIT compilation, and
    the GPU backend.
    When the registry is {e disarmed} (the default) every point costs a
    single atomic load and injects nothing; when {e armed} with a seed
    and a rate, each point fires according to a decision that is a pure
    function of [(seed, point name, occurrence index)] — replaying the
    same schedule against the same workload reproduces the same faults,
    which is what lets [spnc_fuzz --chaos] shrink and CI replay chaos
    failures.

    Note on concurrency: occurrence indices are taken from a per-point
    atomic counter, so under multiple domains {e which} worker draws a
    given occurrence is scheduling-dependent, but the fired/not-fired
    decision {e sequence} per point is deterministic. *)

exception Transient of string
(** An injected (or injected-equivalent) transient fault: the operation
    may succeed if retried.  The runtime's capped-exponential-backoff
    retry loop ({!Spnc_runtime.Exec}) retries exactly these. *)

val is_transient : exn -> bool
(** [true] exactly for {!Transient}. *)

type schedule = {
  seed : int;  (** decision-stream seed *)
  rate : float;  (** per-occurrence firing probability, clamped to [0,1] *)
  points : string list option;
      (** [None] arms every point; [Some ps] restricts firing to the
          named points (prefix match: ["kcache."] arms the family) *)
}

val arm : ?points:string list -> seed:int -> rate:float -> unit -> unit
(** Install a schedule.  Re-arming resets nothing: occurrence counters
    keep advancing, so two [arm]s with the same seed mid-process do not
    replay the same decisions — use {!reset_for_tests} for that. *)

val disarm : unit -> unit
(** Back to zero-cost pass-through. *)

val armed : unit -> schedule option

val arm_from_env : unit -> unit
(** Arm from the [SPNC_CHAOS] environment variable
    ("seed=S,rate=R[,points=a;b;c]"), used by the CI chaos canaries to
    inject faults into unmodified binaries.  Malformed values are
    ignored (never crash the host process over a bad env var). *)

val fire : string -> bool
(** [fire point] — should this occurrence of [point] inject?  Always
    [false] when disarmed.  Registers the point on first use and counts
    both occurrences and firings (mirrored as
    [fault.<point>.fired] in the Obs metrics registry). *)

val maybe_transient : string -> unit
(** Raise {!Transient} at [point] if {!fire} says so. *)

val maybe_stall : string -> seconds:float -> unit
(** Sleep [seconds] at [point] if {!fire} says so (slow-chunk stalls,
    lock contention). *)

val occurrence_count : string -> int
(** How many times [point] was consulted (armed or not, since the last
    {!reset_for_tests}). *)

val fired_count : string -> int
(** How many times [point] actually injected. *)

val points : unit -> string list
(** Every point consulted so far, sorted. *)

val decide : seed:int -> point:string -> occurrence:int -> float
(** The raw decision stream: a deterministic uniform draw in [0,1) for
    the given coordinates.  [fire] fires iff [decide < rate].  Exposed
    so tests can assert schedule determinism without arming. *)

val reset_for_tests : unit -> unit
(** Disarm and zero every occurrence/fired counter so a test can replay
    a schedule from occurrence 0. *)
