(** Structured compiler diagnostics (resilience layer).

    Every failure that crosses a component boundary — a pass returning
    [Error], a verifier report, an exception escaping a lowering — is
    normalized into a {!t}: severity, the pass it originated in, the path
    of operations enclosing the fault, the human-readable message, and
    (for escaped exceptions) a [Printexc] backtrace.  This replaces the
    bare [failwith]/[Pipeline_error] strings the pipeline used to throw:
    callers can render, log, or bundle a diagnostic without string
    parsing, and a crash inside a pass is indistinguishable in shape from
    a clean pass error. *)

type severity = Error | Warning | Note

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type t = {
  severity : severity;
  pass : string option;  (** pass of origin, when known *)
  op_path : string list;  (** enclosing op names, outermost first *)
  message : string;
  backtrace : string option;  (** raw backtrace of an escaped exception *)
}

exception Diag_error of t

let make ?(severity = Error) ?pass ?(op_path = []) ?backtrace message =
  { severity; pass; op_path; message; backtrace }

let error ?pass ?op_path ?backtrace message =
  make ~severity:Error ?pass ?op_path ?backtrace message

let warning ?pass ?op_path message = make ~severity:Warning ?pass ?op_path message
let note ?pass ?op_path message = make ~severity:Note ?pass ?op_path message

(** [fail ?pass ?op_path fmt ...] raises {!Diag_error} with a formatted
    error — the structured replacement for [failwith] in pass bodies. *)
let fail ?pass ?op_path fmt =
  Printf.ksprintf (fun msg -> raise (Diag_error (error ?pass ?op_path msg))) fmt

(** [with_pass name d] attributes [d] to [name] unless it already names a
    pass of origin. *)
let with_pass name d =
  match d.pass with Some _ -> d | None -> { d with pass = Some name }

(** [of_exn ?pass e bt] normalizes an escaped exception: a {!Diag_error}
    payload passes through (gaining the pass attribution); anything else
    becomes an error diagnostic carrying the exception text and the raw
    backtrace captured at the handler. *)
let of_exn ?pass (e : exn) (bt : Printexc.raw_backtrace) : t =
  match e with
  | Diag_error d -> ( match pass with Some p -> with_pass p d | None -> d)
  | e ->
      let backtrace =
        let s = Printexc.raw_backtrace_to_string bt in
        if String.trim s = "" then None else Some s
      in
      error ?pass ?backtrace
        (Printf.sprintf "unexpected exception: %s" (Printexc.to_string e))

let pp ppf (d : t) =
  Fmt.pf ppf "%s" (severity_to_string d.severity);
  (match d.pass with Some p -> Fmt.pf ppf " [pass %s]" p | None -> ());
  (match d.op_path with
  | [] -> ()
  | path -> Fmt.pf ppf " [at %s]" (String.concat " > " path));
  Fmt.pf ppf ": %s" d.message;
  match d.backtrace with
  | Some bt -> Fmt.pf ppf "@.backtrace:@.%s" bt
  | None -> ()

let to_string (d : t) = Fmt.str "%a" pp d
