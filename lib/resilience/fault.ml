(** Deterministic, seed-driven fault injection — see fault.mli. *)

exception Transient of string

let () =
  Printexc.register_printer (function
    | Transient msg -> Some (Printf.sprintf "Fault.Transient(%s)" msg)
    | _ -> None)

let is_transient = function Transient _ -> true | _ -> false

type schedule = { seed : int; rate : float; points : string list option }

(* The armed schedule.  An [option Atomic.t] keeps the disarmed fast
   path at one atomic load; arming swaps in an immutable record. *)
let current : schedule option Atomic.t = Atomic.make None

let arm ?points ~seed ~rate () =
  let rate = Float.max 0.0 (Float.min 1.0 rate) in
  Atomic.set current (Some { seed; rate; points })

let disarm () = Atomic.set current None
let armed () = Atomic.get current

(* -- Point registry ------------------------------------------------------------ *)

type point_state = {
  occurrences : int Atomic.t;
  fired : int Atomic.t;
  obs_fired : Spnc_obs.Metrics.counter;
}

let registry : (string, point_state) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let point_state name =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s
      | None ->
          let s =
            {
              occurrences = Atomic.make 0;
              fired = Atomic.make 0;
              obs_fired = Spnc_obs.Metrics.counter ("fault." ^ name ^ ".fired");
            }
          in
          Hashtbl.add registry name s;
          s)

let occurrence_count name = Atomic.get (point_state name).occurrences
let fired_count name = Atomic.get (point_state name).fired

let points () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) registry []))

let reset_for_tests () =
  disarm ();
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      Hashtbl.iter
        (fun _ s ->
          Atomic.set s.occurrences 0;
          Atomic.set s.fired 0)
        registry)

(* -- Decision stream ----------------------------------------------------------- *)

(* A decision is a pure function of (seed, point, occurrence): hash the
   coordinates through MD5 and map the first 8 bytes to [0,1).  MD5 is
   stable across platforms and OCaml versions, so a chaos schedule
   replayed anywhere makes the same calls fire. *)
let decide ~seed ~point ~occurrence =
  let d = Digest.string (Printf.sprintf "%d\x00%s\x00%d" seed point occurrence) in
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code d.[i]))
  done;
  (* top 53 bits -> uniform double in [0,1) *)
  Int64.to_float (Int64.shift_right_logical !bits 11) /. 9007199254740992.0

let point_armed (sch : schedule) name =
  match sch.points with
  | None -> true
  | Some ps -> List.exists (fun p -> String.starts_with ~prefix:p name) ps

let fire name =
  match Atomic.get current with
  | None -> false
  | Some sch ->
      let st = point_state name in
      let occurrence = Atomic.fetch_and_add st.occurrences 1 in
      if
        point_armed sch name
        && decide ~seed:sch.seed ~point:name ~occurrence < sch.rate
      then begin
        Atomic.incr st.fired;
        Spnc_obs.Metrics.counter_incr st.obs_fired;
        true
      end
      else false

let maybe_transient name =
  if fire name then raise (Transient (Printf.sprintf "injected fault at %s" name))

let maybe_stall name ~seconds = if fire name then Unix.sleepf seconds

(* -- Environment arming -------------------------------------------------------- *)

(* "seed=7,rate=0.2,points=kcache.;pool.chunk_fail" — used by the CI
   chaos canaries to arm unmodified binaries.  Anything malformed is
   silently ignored: a bad env var must never take down the host. *)
let arm_from_env () =
  match Sys.getenv_opt "SPNC_CHAOS" with
  | None | Some "" -> ()
  | Some spec -> (
      let kvs =
        List.filter_map
          (fun part ->
            match String.index_opt part '=' with
            | Some i ->
                Some
                  ( String.sub part 0 i,
                    String.sub part (i + 1) (String.length part - i - 1) )
            | None -> None)
          (String.split_on_char ',' spec)
      in
      let seed = Option.bind (List.assoc_opt "seed" kvs) int_of_string_opt in
      let rate = Option.bind (List.assoc_opt "rate" kvs) float_of_string_opt in
      let points =
        Option.map
          (fun s -> List.filter (fun p -> p <> "") (String.split_on_char ';' s))
          (List.assoc_opt "points" kvs)
      in
      match (seed, rate) with
      | Some seed, Some rate -> arm ?points ~seed ~rate ()
      | _ -> ())
