(** Numeric guards on kernel outputs.

    Compiled kernels report log-likelihoods; a NaN, a [+inf], or a
    log-underflow ([-inf], i.e. probability rounded to exactly zero) in
    the output buffer means either malformed evidence or a miscompile.
    The guard scans every result batch and applies a configurable
    policy:

    - {!Fail}: raise with a diagnostic naming the first bad index;
    - {!Warn}: report a one-line summary to stderr, pass values through;
    - {!Clamp}: replace bad values with the nearest representable
      log-likelihood and continue. *)

type policy = Fail | Warn | Clamp

let policy_to_string = function
  | Fail -> "fail"
  | Warn -> "warn"
  | Clamp -> "clamp"

let policy_of_string = function
  | "fail" -> Some Fail
  | "warn" -> Some Warn
  | "clamp" -> Some Clamp
  | _ -> None

exception Guard_failure of Diag.t

(* Clamp targets: log of the smallest/largest positive finite doubles. *)
let log_floor = -744.44
let log_ceil = 709.78

type verdict = Ok_value | Invalid  (** NaN / +inf *) | Underflow  (** -inf *)

let classify (x : float) : verdict =
  if Float.is_nan x then Invalid
  else if x = Float.infinity then Invalid
  else if x = Float.neg_infinity then Underflow
  else Ok_value

(** [scan out] — counts of invalid (NaN/[+inf]) and underflowed ([-inf])
    entries, plus the first offending index. *)
let scan (out : float array) : int * int * int option =
  let invalid = ref 0 and underflow = ref 0 and first = ref None in
  Array.iteri
    (fun i x ->
      match classify x with
      | Ok_value -> ()
      | Invalid ->
          incr invalid;
          if !first = None then first := Some i
      | Underflow ->
          incr underflow;
          if !first = None then first := Some i)
    out;
  (!invalid, !underflow, !first)

let describe ~what ~invalid ~underflow ~first (out : float array) =
  let idx = match first with Some i -> i | None -> 0 in
  Printf.sprintf
    "%s: %d invalid (NaN/+inf) and %d underflowed (-inf) of %d outputs; \
     first bad value %h at index %d"
    what invalid underflow (Array.length out) out.(idx) idx

(** [apply ~policy ?what out] checks one result batch.  Under {!Clamp} a
    fresh clamped array is returned (the input is never mutated); under
    {!Warn}/{!Fail} with clean outputs, [out] is returned as-is.
    @raise Guard_failure under {!Fail} when any output is bad. *)
let apply ~(policy : policy) ?(what = "kernel output") (out : float array) :
    float array =
  let invalid, underflow, first = scan out in
  if invalid = 0 && underflow = 0 then out
  else
    match policy with
    | Fail ->
        raise
          (Guard_failure
             (Diag.error ~pass:"output-guard"
                (describe ~what ~invalid ~underflow ~first out)))
    | Warn ->
        Fmt.epr "spnc: warning: %s@."
          (describe ~what ~invalid ~underflow ~first out);
        out
    | Clamp ->
        Array.map
          (fun x ->
            match classify x with
            | Ok_value -> x
            | Underflow -> log_floor
            | Invalid -> if x = Float.infinity then log_ceil else log_floor)
          out
