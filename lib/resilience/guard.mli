(** Numeric guards on kernel outputs: NaN / [+inf] / log-underflow
    ([-inf]) detection with a configurable policy. *)

type policy =
  | Fail  (** raise {!Guard_failure} with a diagnostic *)
  | Warn  (** one-line summary on stderr; values pass through *)
  | Clamp  (** replace bad values with the nearest finite log-likelihood *)

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

exception Guard_failure of Diag.t

(** Clamp targets: log of the smallest/largest positive finite doubles. *)
val log_floor : float

val log_ceil : float

(** [scan out] — (invalid count, underflow count, first bad index). *)
val scan : float array -> int * int * int option

(** [apply ~policy ?what out] checks one result batch of log-likelihoods.
    Under {!Clamp} a fresh clamped array is returned (never mutates the
    input); clean outputs are returned as-is.
    @raise Guard_failure under {!Fail} when any output is bad. *)
val apply : policy:policy -> ?what:string -> float array -> float array
