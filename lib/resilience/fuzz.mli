(** Differential fuzzing harness (MLIR-Smith style): seeded random SPN
    generation with Gaussian/categorical/histogram leaves, oracle
    cross-checking against the reference evaluator, and structural
    shrinking of failing cases.

    Oracles are plain functions — the harness does not depend on the
    compiler it tests; [bin/spnc_fuzz] and the test suite wire them up. *)

module Model = Spnc_spn.Model

(** Per-variable evidence typing, fixed before generation so every leaf
    over a variable agrees on its domain. *)
type var_kind =
  | Continuous
  | Discrete_cat of int  (** categorical arity *)
  | Discrete_hist of int  (** histogram bucket count *)

type config = {
  min_features : int;
  max_features : int;
  max_depth : int;
  target_ops : int;  (** soft node budget *)
  rows : int;  (** evidence rows per case *)
  marginal_fraction : float;  (** NaN evidence fraction *)
}

val default_config : config

type case = {
  id : int;
  seed : int;
  config : config;
  var_kinds : var_kind array;
  model : Model.t;
  data : float array array;
}

(** [gen_case ?config ~seed ~id ()] — deterministic case derived entirely
    from [(seed, id)]. *)
val gen_case : ?config:config -> seed:int -> id:int -> unit -> case

type oracle = {
  oracle_name : string;
  eval : Model.t -> float array array -> float array;
      (** log-likelihood per row; exceptions are captured as crashes *)
}

type failure_kind =
  | Mismatch of { oracle : string; row : int; expected : float; got : float }
  | Crash of { oracle : string; diag : Diag.t }

type failure = { case : case; kind : failure_kind }

val pp_failure_kind : Format.formatter -> failure_kind -> unit

(** The correctness reference: [Spnc_spn.Infer.log_likelihood_batch]. *)
val reference : Model.t -> float array array -> float array

val default_tol : float

(** [check ?tol ~oracles model data] — first failure across the oracles
    in order; [None] if all agree with the reference within [tol]
    (relative to the reference magnitude). *)
val check :
  ?tol:float ->
  oracles:oracle list ->
  Model.t ->
  float array array ->
  failure_kind option

val check_case : ?tol:float -> oracles:oracle list -> case -> failure option

(** [shrink ?max_steps ~still_fails model data] greedily reduces the
    model (inner nodes replaced by children, validity-preserving) and the
    evidence rows while [still_fails] holds; [max_steps] bounds predicate
    evaluations. *)
val shrink :
  ?max_steps:int ->
  still_fails:(Model.t -> float array array -> bool) ->
  Model.t ->
  float array array ->
  Model.t * float array array
