(** Differential fuzzing harness (MLIR-Smith style, PAPERS.md).

    Generates random well-formed SPNs — seeded, size/depth-parameterized,
    with Gaussian, categorical and histogram leaves — plus matching
    evidence data, and cross-checks a list of {e oracles} (compiled
    kernels, interpreters, simulators) against the reference evaluator
    [Spnc_spn.Infer].  A disagreement or a crash is a {!failure}; the
    {!shrink} routine then reduces the model structurally (and the data
    by rows) while the failure persists, so the reproducer bundle carries
    a minimal case.

    The module deliberately does not depend on the compiler: oracles are
    plain functions, wired up by [bin/spnc_fuzz] (and the test suite), so
    the harness itself can never be broken by the code it is testing. *)

module Model = Spnc_spn.Model
module Infer = Spnc_spn.Infer
module Validate = Spnc_spn.Validate
module Rng = Spnc_data.Rng

(* -- Generation ------------------------------------------------------------- *)

type var_kind = Continuous | Discrete_cat of int | Discrete_hist of int

type config = {
  min_features : int;
  max_features : int;
  max_depth : int;
  target_ops : int;  (** soft node budget; generation stops growing past it *)
  rows : int;  (** evidence rows per case *)
  marginal_fraction : float;
      (** fraction of NaN (marginalized) evidence entries; only
          meaningful for kernels compiled with marginal support *)
}

let default_config =
  {
    min_features = 3;
    max_features = 8;
    max_depth = 6;
    target_ops = 60;
    rows = 24;
    marginal_fraction = 0.0;
  }

type case = {
  id : int;
  seed : int;
  config : config;
  var_kinds : var_kind array;
  model : Model.t;
  data : float array array;
}

let gen_leaf rng (kind : var_kind) ~var : Model.node =
  match kind with
  | Continuous ->
      Model.gaussian ~var ~mean:(Rng.range rng (-2.0) 2.0)
        ~stddev:(Rng.range rng 0.4 2.0)
  | Discrete_cat arity ->
      let probs = Rng.dirichlet rng ~alpha:1.0 arity in
      (* floor the probabilities so in-range evidence never hits a
         literal zero (log-underflow is the guard's job, not the
         generator's) *)
      let floored = Array.map (fun p -> Float.max p 0.02) probs in
      let total = Array.fold_left ( +. ) 0.0 floored in
      Model.categorical ~var ~probs:(Array.map (fun p -> p /. total) floored)
  | Discrete_hist buckets ->
      Model.histogram ~var
        ~breaks:(Array.init (buckets + 1) Fun.id)
        ~densities:
          (let d = Rng.dirichlet rng ~alpha:1.0 buckets in
           let floored = Array.map (fun p -> Float.max p 0.02) d in
           (* unit-width buckets: mass = sum of densities, so renormalize
              after flooring or the model fails validation *)
           let total = Array.fold_left ( +. ) 0.0 floored in
           Array.map (fun p -> p /. total) floored)

(* Split [scope] into [k] nonempty groups for a product node. *)
let split_scope rng (scope : int array) ~k : int array list =
  let shuffled = Rng.shuffle rng scope in
  let n = Array.length shuffled in
  (* k-1 distinct cut points in [1, n) *)
  let cuts = Array.make (k - 1) 0 in
  let rec pick i =
    if i = k - 1 then ()
    else
      let c = 1 + Rng.int rng (n - 1) in
      if Array.exists (( = ) c) cuts then pick i
      else begin
        cuts.(i) <- c;
        pick (i + 1)
      end
  in
  pick 0;
  Array.sort compare cuts;
  let bounds = Array.to_list cuts @ [ n ] in
  let rec chop lo = function
    | [] -> []
    | hi :: rest -> Array.sub shuffled lo (hi - lo) :: chop hi rest
  in
  chop 0 bounds

let rec gen_node rng (kinds : var_kind array) ~scope ~depth ~(budget : int ref)
    : Model.node =
  decr budget;
  let leaf_block () =
    match Array.to_list scope with
    | [ v ] -> gen_leaf rng kinds.(v) ~var:v
    | vars ->
        Model.product (List.map (fun v -> gen_leaf rng kinds.(v) ~var:v) vars)
  in
  if Array.length scope = 1 || depth <= 0 || !budget <= Array.length scope then
    leaf_block ()
  else if Rng.float rng < 0.5 then begin
    (* sum: mixture over the same scope (smoothness by construction) *)
    let k = 2 + Rng.int rng 3 in
    let weights = Rng.dirichlet rng ~alpha:2.0 k in
    Model.sum
      (List.init k (fun i ->
           (weights.(i), gen_node rng kinds ~scope ~depth:(depth - 1) ~budget)))
  end
  else begin
    (* product: split the scope (decomposability by construction) *)
    let k = 2 + Rng.int rng (min 2 (Array.length scope - 1)) in
    let groups = split_scope rng scope ~k in
    Model.product
      (List.map
         (fun g -> gen_node rng kinds ~scope:g ~depth:(depth - 1) ~budget)
         groups)
  end

let gen_data rng (c : config) (kinds : var_kind array) : float array array =
  Array.init c.rows (fun _ ->
      Array.init (Array.length kinds) (fun v ->
          if c.marginal_fraction > 0.0 && Rng.float rng < c.marginal_fraction
          then Float.nan
          else
            match kinds.(v) with
            | Continuous -> Rng.range rng (-3.0) 3.0
            | Discrete_cat arity -> float_of_int (Rng.int rng arity)
            | Discrete_hist buckets -> float_of_int (Rng.int rng buckets)))

(** [gen_case ?config ~seed ~id] — deterministic case [(seed, id)]: the
    variable typing, model structure and evidence all derive from the
    pair, so any reported case replays from two integers. *)
let gen_case ?(config = default_config) ~seed ~id () : case =
  let rng = Rng.create ~seed:((seed * 1_000_003) + id) in
  let num_features =
    config.min_features + Rng.int rng (config.max_features - config.min_features + 1)
  in
  let var_kinds =
    Array.init num_features (fun _ ->
        let r = Rng.float rng in
        if r < 0.5 then Continuous
        else if r < 0.75 then Discrete_cat (2 + Rng.int rng 4)
        else Discrete_hist (2 + Rng.int rng 3))
  in
  let budget = ref config.target_ops in
  let root =
    (* force a mixture at the root when the scope allows: sum-rooted SPNs
       exercise the accumulation path of every backend *)
    gen_node rng var_kinds
      ~scope:(Array.init num_features Fun.id)
      ~depth:config.max_depth ~budget
  in
  let model =
    Model.make ~name:(Printf.sprintf "fuzz_%d_%d" seed id) ~num_features root
  in
  let data = gen_data rng config var_kinds in
  { id; seed; config; var_kinds; model; data }

(* -- Differential checking --------------------------------------------------- *)

type oracle = {
  oracle_name : string;
  eval : Model.t -> float array array -> float array;
      (** log-likelihood per row; exceptions are captured as crashes *)
}

type failure_kind =
  | Mismatch of { oracle : string; row : int; expected : float; got : float }
  | Crash of { oracle : string; diag : Diag.t }

type failure = { case : case; kind : failure_kind }

let pp_failure_kind ppf = function
  | Mismatch { oracle; row; expected; got } ->
      Fmt.pf ppf "oracle %s disagrees at row %d: reference %.12g, got %.12g"
        oracle row expected got
  | Crash { oracle; diag } ->
      Fmt.pf ppf "oracle %s crashed: %a" oracle Diag.pp diag

(** The correctness reference: the memoized log-space DAG evaluator. *)
let reference (m : Model.t) (data : float array array) : float array =
  Infer.log_likelihood_batch m data

let default_tol = 1e-6

(* |a - b| within tol, scaled by the reference magnitude; two
   log-underflows on both sides agree by convention. *)
let within_tol ~tol expected got =
  if expected = got then true
  else if Float.is_nan expected || Float.is_nan got then false
  else Float.abs (got -. expected) <= tol *. Float.max 1.0 (Float.abs expected)

(** [check ?tol ~oracles model data] — first failure across all oracles,
    in order, or [None] if every oracle matches the reference. *)
let check ?(tol = default_tol) ~(oracles : oracle list) (model : Model.t)
    (data : float array array) : failure_kind option =
  let expected = reference model data in
  let check_one (o : oracle) : failure_kind option =
    match o.eval model data with
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Some (Crash { oracle = o.oracle_name; diag = Diag.of_exn e bt })
    | got ->
        if Array.length got <> Array.length expected then
          Some
            (Crash
               {
                 oracle = o.oracle_name;
                 diag =
                   Diag.error
                     (Printf.sprintf "oracle returned %d results for %d rows"
                        (Array.length got) (Array.length expected));
               })
        else
          let bad = ref None in
          Array.iteri
            (fun i e ->
              if !bad = None && not (within_tol ~tol e got.(i)) then
                bad :=
                  Some
                    (Mismatch
                       { oracle = o.oracle_name; row = i; expected = e;
                         got = got.(i) }))
            expected;
          !bad
  in
  List.find_map check_one oracles

let check_case ?tol ~oracles (c : case) : failure option =
  Option.map (fun kind -> { case = c; kind }) (check ?tol ~oracles c.model c.data)

(* -- Shrinking ---------------------------------------------------------------- *)

(* Rebuild the DAG with the node [target] replaced by [repl]; sharing is
   preserved through the memo table. *)
let replace (m : Model.t) ~(target : int) ~(repl : Model.node) : Model.t =
  let memo = Hashtbl.create 64 in
  let rec go (n : Model.node) : Model.node =
    if n.Model.id = target then repl
    else
      match Hashtbl.find_opt memo n.Model.id with
      | Some n' -> n'
      | None ->
          let n' =
            match n.Model.desc with
            | Model.Sum ws -> Model.sum (List.map (fun (w, c) -> (w, go c)) ws)
            | Model.Product cs -> Model.product (List.map go cs)
            | _ -> n
          in
          Hashtbl.add memo n.Model.id n';
          n'
  in
  Model.make ~name:m.Model.name ~num_features:m.Model.num_features
    (go m.Model.root)

(* Structural reduction candidates: every inner node replaced by each of
   its children, valid (smooth/decomposable) results only, ordered by
   node count so the biggest reductions are tried first. *)
let candidates (m : Model.t) : Model.t list =
  let variants = ref [] in
  Model.iter_unique
    (fun n ->
      match n.Model.desc with
      | Model.Sum _ | Model.Product _ ->
          List.iter
            (fun child ->
              match replace m ~target:n.Model.id ~repl:child with
              | m' -> if Validate.check m' = [] then variants := m' :: !variants
              | exception Invalid_argument _ -> ())
            (Model.children n)
      | _ -> ())
    m;
  List.sort
    (fun a b -> compare (Model.node_count a) (Model.node_count b))
    !variants

(* Row reductions: halves, then single rows. *)
let data_candidates (data : float array array) : float array array list =
  let n = Array.length data in
  if n <= 1 then []
  else
    [ Array.sub data 0 ((n + 1) / 2); Array.sub data ((n + 1) / 2) (n / 2) ]
    @ List.init (min n 4) (fun i -> [| data.(i) |])

(** [shrink ?max_steps ~still_fails model data] — greedy structural
    reduction: repeatedly adopt the smallest variant (or row subset) on
    which [still_fails] holds, until no candidate fails or the predicate
    budget runs out.  Returns the reduced (model, data). *)
let shrink ?(max_steps = 64) ~still_fails (model : Model.t)
    (data : float array array) : Model.t * float array array =
  let steps = ref 0 in
  let try_pred m d =
    if !steps >= max_steps then false
    else begin
      incr steps;
      match still_fails m d with b -> b | exception _ -> false
    end
  in
  let rec reduce_model m d =
    match List.find_opt (fun m' -> try_pred m' d) (candidates m) with
    | Some m' when Model.node_count m' < Model.node_count m -> reduce_model m' d
    | _ -> reduce_data m d
  and reduce_data m d =
    match List.find_opt (fun d' -> try_pred m d') (data_candidates d) with
    | Some d' -> reduce_data m d'
    | None -> (m, d)
  in
  reduce_model model data
