(** Process-wide metrics registry.

    Three instrument kinds:

    - {b counters}: monotonic int [Atomic.t]s (fetch_and_add);
    - {b gauges}: last-write-wins floats, plus a CAS-loop [add];
    - {b histograms}: fixed geometric buckets over latency seconds,
      each bucket an int [Atomic.t], with percentile readout.

    Registration (name -> instrument) goes through a mutex; the hot
    paths — incr/observe — are single atomic RMW operations, safe and
    non-blocking under any number of domains.  Instruments are
    interned: registering the same name twice returns the same
    instrument, so modules can look up lazily without coordination.

    Histogram buckets are powers of two from 1 µs to ~8.6 s (24
    buckets) plus an overflow bucket.  Percentiles report the upper
    bound of the bucket containing the q-th sample — an upper estimate
    with bounded (2x) relative error, which is what a regression gate
    wants: it never under-reports a latency. *)

(* -- Counters ------------------------------------------------------------------ *)

type counter = { c_name : string; cell : int Atomic.t }

let counter_incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cell by)
let counter_value c = Atomic.get c.cell
let counter_name c = c.c_name

(* -- Gauges -------------------------------------------------------------------- *)

type gauge = { g_name : string; g_cell : float Atomic.t }

let gauge_set g x = Atomic.set g.g_cell x
let gauge_value g = Atomic.get g.g_cell
let gauge_name g = g.g_name

(* CAS must compare the same boxed float we read, not a re-boxed equal
   value — [Atomic.compare_and_set] on floats is physical equality. *)
let gauge_add g dx =
  let rec go () =
    let cur = Atomic.get g.g_cell in
    if not (Atomic.compare_and_set g.g_cell cur (cur +. dx)) then go ()
  in
  go ()

(* -- Histograms ---------------------------------------------------------------- *)

let n_buckets = 25 (* 24 geometric + overflow *)
let base_seconds = 1e-6

(* Upper bound of bucket i: base * 2^i (last bucket is unbounded). *)
let bucket_upper i =
  if i >= n_buckets - 1 then Float.infinity
  else base_seconds *. Float.of_int (1 lsl i)

let bucket_of_seconds (s : float) : int =
  if s <= base_seconds then 0
  else begin
    let i = ref 0 in
    let ub = ref base_seconds in
    while !i < n_buckets - 1 && s > !ub do
      incr i;
      ub := !ub *. 2.0
    done;
    !i
  end

type histogram = {
  h_name : string;
  buckets : int Atomic.t array; (* sample counts per bucket *)
  sum_us : int Atomic.t;        (* total observed time, microseconds *)
}

let histogram_observe h (seconds : float) =
  let seconds = if seconds < 0.0 then 0.0 else seconds in
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of_seconds seconds) 1);
  ignore
    (Atomic.fetch_and_add h.sum_us (int_of_float (Float.round (seconds *. 1e6))))

let histogram_count h =
  Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets

let histogram_sum h = float_of_int (Atomic.get h.sum_us) *. 1e-6
let histogram_name h = h.h_name

(* Upper bound of the bucket holding the ceil(q*n)-th sample (1-based).
   Over-reports by at most one bucket width; never under-reports. *)
let histogram_percentile h (q : float) : float =
  let counts = Array.map Atomic.get h.buckets in
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
    let rank = min rank n in
    let acc = ref 0 in
    let result = ref (bucket_upper (n_buckets - 2)) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if !acc >= rank then begin
             (* overflow bucket has no upper bound; report the last
                finite boundary so the gate sees a number, not inf *)
             result :=
               (if i >= n_buckets - 1 then bucket_upper (n_buckets - 2) *. 2.0
                else bucket_upper i);
             raise Exit
           end)
         counts
     with Exit -> ());
    !result
  end

let histogram_buckets h : (float * int) list =
  List.init n_buckets (fun i -> (bucket_upper i, Atomic.get h.buckets.(i)))

(* -- Registry ------------------------------------------------------------------ *)

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let intern (name : string) (make : unit -> instrument) ~(kind : string) :
    instrument =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> i
      | None ->
          let i = make () in
          ignore kind;
          Hashtbl.replace registry name i;
          i)

let counter name : counter =
  match
    intern name ~kind:"counter" (fun () ->
        Counter { c_name = name; cell = Atomic.make 0 })
  with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s is not a counter" name)

let gauge name : gauge =
  match
    intern name ~kind:"gauge" (fun () ->
        Gauge { g_name = name; g_cell = Atomic.make 0.0 })
  with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s is not a gauge" name)

let histogram name : histogram =
  match
    intern name ~kind:"histogram" (fun () ->
        Histogram
          {
            h_name = name;
            buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            sum_us = Atomic.make 0;
          })
  with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Obs.Metrics: %s is not a histogram" name)

(* -- Labels -------------------------------------------------------------------- *)

(* Canonical labeled-instrument name: base{k1="v1",k2="v2"} with keys
   sorted, so the same label set always interns the same instrument no
   matter the order callers list the pairs in.  Quotes/backslashes in
   values are escaped; keys are expected to be bare identifiers. *)
let labeled (base : string) (labels : (string * string) list) : string =
  match labels with
  | [] -> base
  | _ ->
      let escape v =
        let b = Buffer.create (String.length v) in
        String.iter
          (fun c ->
            if c = '"' || c = '\\' then Buffer.add_char b '\\';
            Buffer.add_char b c)
          v;
        Buffer.contents b
      in
      let sorted =
        List.sort (fun (a, _) (b, _) -> String.compare a b) labels
      in
      let parts =
        List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) sorted
      in
      Printf.sprintf "%s{%s}" base (String.concat "," parts)

let counter_l base labels = counter (labeled base labels)
let gauge_l base labels = gauge (labeled base labels)
let histogram_l base labels = histogram (labeled base labels)

let all () : (string * instrument) list =
  with_registry (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let find (name : string) : instrument option =
  with_registry (fun () -> Hashtbl.find_opt registry name)

(* Zero every instrument in place (registrations survive — modules hold
   instrument handles).  Used by tests and by cache resets. *)
let reset_all () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> Atomic.set c.cell 0
          | Gauge g -> Atomic.set g.g_cell 0.0
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.buckets;
              Atomic.set h.sum_us 0)
        registry)

(* The registry is process-wide, so counters bumped by one test are
   visible to the next.  Tests that assert on absolute instrument values
   call this in their setup; the name spells out the intent at call
   sites (it is exactly [reset_all], which cache resets also use). *)
let reset_for_tests () = reset_all ()

let reset (name : string) =
  match find name with
  | None -> ()
  | Some (Counter c) -> Atomic.set c.cell 0
  | Some (Gauge g) -> Atomic.set g.g_cell 0.0
  | Some (Histogram h) ->
      Array.iter (fun b -> Atomic.set b 0) h.buckets;
      Atomic.set h.sum_us 0
