(** Line-oriented textual diff for IR snapshots ([--print-ir-after-change]).

    O(n) common-prefix/suffix trimming, not a minimal edit script. *)

val equal : string -> string -> bool

(** [diff ~before ~after] — trimmed line diff, or [""] when identical. *)
val diff : before:string -> after:string -> string
