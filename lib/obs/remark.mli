(** Optimization remarks — the LLVM [-Rpass] analogue.

    Disabled path is one atomic load; emitters should guard on
    {!enabled} before building messages.  Locations arrive pre-rendered
    ("spn.node 17") because this library sits below the IR. *)

type kind =
  | Applied  (** a rewrite fired *)
  | Missed  (** a rewrite was considered and declined *)
  | Analysis  (** informational (counts, decisions) *)

type remark = {
  pass : string;
  kind : kind;
  message : string;
  loc : string;  (** pre-rendered location; "" when unknown *)
}

val kind_to_string : kind -> string
val enabled : unit -> bool
val set_enabled : bool -> unit
val clear : unit -> unit

(** [emit ~pass ?kind ?loc message] records a remark when enabled. *)
val emit : pass:string -> ?kind:kind -> ?loc:string -> string -> unit

(** Oldest-first snapshot of recorded remarks. *)
val all : unit -> remark list

(** Remarks discarded after the buffer filled. *)
val dropped : unit -> int

val to_json : unit -> Json.t
val write_file : string -> unit
val pp_remark : Format.formatter -> remark -> unit
val pp : Format.formatter -> unit -> unit
