(** Low-overhead span tracer.

    Disabled (the default), every entry point is a single atomic load.
    Enabled, begin/end pairs are recorded as complete events into a
    fixed-size ring buffer (oldest dropped on overflow) and exported in
    Chrome [trace_event] JSON — loadable in chrome://tracing and
    Perfetto — or as an indented tree for terminals.

    The tracer is process-wide: one ring shared by all domains, each
    event tagged with its emitting domain id. *)

type arg_value = S of string | I of int | F of float | B of bool

type event = {
  name : string;
  cat : string;
  ts : float;  (** wall-clock start, seconds since epoch *)
  dur : float; (** seconds; 0.0 for instants *)
  tid : int;   (** emitting domain id *)
  phase : [ `Complete | `Instant ];
  args : (string * arg_value) list;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val set_capacity : int -> unit
(** Resize the ring (clears it).  Minimum 16; default 65536. *)

val clear : unit -> unit

val with_span :
  ?args:(unit -> (string * arg_value) list) ->
  cat:string ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span ~cat name f] runs [f] and records a complete event
    spanning it.  [args] is a thunk, only forced if the span is
    recorded; exceptions still close the span and propagate. *)

val timed :
  ?args:(unit -> (string * arg_value) list) ->
  cat:string ->
  string ->
  (unit -> 'a) ->
  'a * float
(** Like {!with_span} but always measures, returning [(result, elapsed
    seconds)] — for layers keeping their own timing ledger.  The span
    is only recorded when tracing is enabled. *)

val instant :
  ?args:(string * arg_value) list -> cat:string -> string -> unit
(** Zero-duration marker event. *)

val events : unit -> event list
(** Oldest-first snapshot of the live ring contents. *)

val dropped : unit -> int
(** Events evicted by ring wraparound since the last {!clear}. *)

val to_json : unit -> Json.t
(** Chrome trace-event document: [{"traceEvents": [...], ...}]. *)

val write_file : string -> unit
(** {!to_json} serialized to [path]. *)

val to_tree : unit -> string
(** Events as an indented per-domain tree with ms durations. *)
