(** Process-wide metrics registry: named monotonic counters, gauges,
    and fixed-bucket latency histograms with percentile readout.

    Registration is interned and mutex-protected; the hot paths
    ([counter_incr], [histogram_observe]) are single atomic RMW
    operations — safe and non-blocking under any number of domains.

    Naming convention: dot-separated, layer-first —
    ["compiler.cache.hits"], ["runtime.exec.call_seconds"],
    ["runtime.pool.steals"]. *)

type counter
type gauge
type histogram

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

val counter : string -> counter
(** Register (or look up) the counter with this name.
    @raise Invalid_argument if the name is taken by another kind. *)

val counter_incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : string -> gauge
val gauge_set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val histogram : string -> histogram
(** Latency histogram: geometric power-of-two buckets from 1 µs to
    ~8.4 s plus an overflow bucket. *)

val histogram_observe : histogram -> float -> unit
(** Record one sample, in seconds.  Negative samples clamp to 0. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
(** Total observed seconds (µs resolution). *)

val histogram_percentile : histogram -> float -> float
(** [histogram_percentile h 0.99] — upper bound of the bucket holding
    the q-th sample, in seconds.  Over-estimates by at most 2x, never
    under-reports.  0.0 when empty. *)

val histogram_buckets : histogram -> (float * int) list
(** [(upper_bound_seconds, count)] per bucket, ascending; the last
    upper bound is [infinity]. *)

val histogram_name : histogram -> string

val labeled : string -> (string * string) list -> string
(** [labeled "serve.queue_depth" [("model", "m3")]] —
    ["serve.queue_depth{model=\"m3\"}"].  Keys are sorted so the same
    label set always produces the same name regardless of pair order;
    quotes and backslashes in values are escaped.  An empty label list
    returns the base name unchanged. *)

val counter_l : string -> (string * string) list -> counter
(** [counter_l base labels] = [counter (labeled base labels)] — a
    per-label-set instrument family (e.g. per-model serve counters).
    Same interning/kind rules as {!counter}. *)

val gauge_l : string -> (string * string) list -> gauge
val histogram_l : string -> (string * string) list -> histogram

val all : unit -> (string * instrument) list
(** Every registered instrument, sorted by name. *)

val find : string -> instrument option

val reset : string -> unit
(** Zero one instrument in place (no-op if unregistered). *)

val reset_all : unit -> unit
(** Zero every instrument; registrations (and handles held by modules)
    stay valid. *)

val reset_for_tests : unit -> unit
(** Test-isolation alias for {!reset_all}: the registry is process-wide,
    so tests asserting on absolute instrument values must zero it in
    their setup or counts bleed across test cases. *)
