(** Point-in-time capture of the metrics registry in a stable,
    diffable JSON shape.

    The format is versioned and sorted by metric name so two snapshots
    of the same workload diff line-by-line.  [bin/bench_check] and the
    CI perf gate parse this with {!of_json}; benches write it next to
    their BENCH_*.json. *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;        (* seconds *)
      p50 : float;
      p95 : float;
      p99 : float;
      buckets : (float * int) list; (* (upper bound seconds, count) *)
    }

type t = { version : int; metrics : (string * metric) list }

let current_version = 1

let take () : t =
  let metrics =
    Metrics.all ()
    |> List.map (fun (name, i) ->
           match i with
           | Metrics.Counter c -> (name, Counter (Metrics.counter_value c))
           | Metrics.Gauge g -> (name, Gauge (Metrics.gauge_value g))
           | Metrics.Histogram h ->
               ( name,
                 Histogram
                   {
                     count = Metrics.histogram_count h;
                     sum = Metrics.histogram_sum h;
                     p50 = Metrics.histogram_percentile h 0.50;
                     p95 = Metrics.histogram_percentile h 0.95;
                     p99 = Metrics.histogram_percentile h 0.99;
                     (* drop empty buckets: keeps snapshots short and
                        diffs focused on populated ranges *)
                     buckets =
                       List.filter
                         (fun (_, c) -> c > 0)
                         (Metrics.histogram_buckets h);
                   } ))
  in
  { version = current_version; metrics }

let metric_to_json = function
  | Counter n ->
      Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int n)) ]
  | Gauge x -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Num x) ]
  | Histogram { count; sum; p50; p95; p99; buckets } ->
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ("count", Json.Num (float_of_int count));
          ("sum_seconds", Json.Num sum);
          ("p50_seconds", Json.Num p50);
          ("p95_seconds", Json.Num p95);
          ("p99_seconds", Json.Num p99);
          ( "buckets",
            Json.List
              (List.map
                 (fun (ub, c) ->
                   Json.Obj
                     [
                       ("le_seconds", Json.Num ub);
                       ("count", Json.Num (float_of_int c));
                     ])
                 buckets) );
        ]

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("snapshot_version", Json.Num (float_of_int t.version));
      ( "metrics",
        Json.Obj (List.map (fun (name, m) -> (name, metric_to_json m)) t.metrics)
      );
    ]

let to_string t = Json.to_string_pretty (to_json t)

let metric_of_json (j : Json.t) : (metric, string) result =
  let open Json in
  match Option.bind (member "type" j) str with
  | Some "counter" -> (
      match Option.bind (member "value" j) num with
      | Some v -> Ok (Counter (int_of_float v))
      | None -> Error "counter missing numeric value")
  | Some "gauge" -> (
      match Option.bind (member "value" j) num with
      | Some v -> Ok (Gauge v)
      | None -> Error "gauge missing numeric value")
  | Some "histogram" ->
      let get k =
        match Option.bind (member k j) num with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "histogram missing %s" k)
      in
      Result.bind (get "count") (fun count ->
          Result.bind (get "sum_seconds") (fun sum ->
              Result.bind (get "p50_seconds") (fun p50 ->
                  Result.bind (get "p95_seconds") (fun p95 ->
                      Result.bind (get "p99_seconds") (fun p99 ->
                          let buckets =
                            match Option.bind (member "buckets" j) list with
                            | None -> []
                            | Some items ->
                                List.filter_map
                                  (fun b ->
                                    match
                                      ( Option.bind (member "le_seconds" b) num,
                                        Option.bind (member "count" b) num )
                                    with
                                    | Some ub, Some c -> Some (ub, int_of_float c)
                                    | _ -> None)
                                  items
                          in
                          Ok
                            (Histogram
                               {
                                 count = int_of_float count;
                                 sum;
                                 p50;
                                 p95;
                                 p99;
                                 buckets;
                               }))))))
  | Some other -> Error (Printf.sprintf "unknown metric type %S" other)
  | None -> Error "metric missing type"

let of_json (j : Json.t) : (t, string) result =
  let open Json in
  match Option.bind (member "snapshot_version" j) num with
  | None -> Error "not a snapshot: missing snapshot_version"
  | Some v ->
      let version = int_of_float v in
      let fields =
        match member "metrics" j with Some (Obj fields) -> fields | _ -> []
      in
      let rec go acc = function
        | [] -> Ok { version; metrics = List.rev acc }
        | (name, mj) :: rest -> (
            match metric_of_json mj with
            | Ok m -> go ((name, m) :: acc) rest
            | Error e -> Error (Printf.sprintf "metric %s: %s" name e))
      in
      go [] fields

let of_string (s : string) : (t, string) result =
  Result.bind (Json.parse s) of_json

let write_file path (t : t) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let pp ppf (t : t) =
  Fmt.pf ppf "metrics snapshot (v%d, %d metrics)@." t.version
    (List.length t.metrics);
  List.iter
    (fun (name, m) ->
      match m with
      | Counter n -> Fmt.pf ppf "  %-44s %d@." name n
      | Gauge x -> Fmt.pf ppf "  %-44s %g@." name x
      | Histogram { count; sum; p50; p95; p99; _ } ->
          Fmt.pf ppf
            "  %-44s n=%d sum=%.3fs p50=%.3gms p95=%.3gms p99=%.3gms@." name
            count sum (p50 *. 1e3) (p95 *. 1e3) (p99 *. 1e3))
    t.metrics
