(** Line-oriented textual diff for IR snapshots.

    Built for [--print-ir-after-change]: pass outputs are large and
    mostly identical, so the diff trims the common prefix and suffix and
    prints only the middle as removed/added lines.  This is O(n) and
    good enough for human inspection of what a pass changed; it makes no
    attempt at a minimal edit script (a full LCS would be quadratic on
    multi-thousand-line task bodies). *)

let split_lines (s : string) : string array =
  Array.of_list (String.split_on_char '\n' s)

(** [equal a b] — true when the two texts are identical. *)
let equal (a : string) (b : string) = String.equal a b

(** [diff ~before ~after] renders a trimmed-context line diff, or [""]
    when the texts are identical.  Format:

    {v
    @@ lines 4-6 -> 4-5 @@
    - old line
    - old line
    + new line
    v} *)
let diff ~(before : string) ~(after : string) : string =
  if String.equal before after then ""
  else begin
    let a = split_lines before and b = split_lines after in
    let na = Array.length a and nb = Array.length b in
    let prefix = ref 0 in
    while !prefix < na && !prefix < nb && String.equal a.(!prefix) b.(!prefix) do
      incr prefix
    done;
    let suffix = ref 0 in
    while
      !suffix < na - !prefix
      && !suffix < nb - !prefix
      && String.equal a.(na - 1 - !suffix) b.(nb - 1 - !suffix)
    do
      incr suffix
    done;
    let p = !prefix and s = !suffix in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "@@ lines %d-%d -> %d-%d @@\n" (p + 1) (na - s) (p + 1)
         (nb - s));
    for i = p to na - s - 1 do
      Buffer.add_string buf ("- " ^ a.(i) ^ "\n")
    done;
    for i = p to nb - s - 1 do
      Buffer.add_string buf ("+ " ^ b.(i) ^ "\n")
    done;
    Buffer.contents buf
  end
