(** Ring-buffered span tracer.

    Design constraints, in order:

    1. Disabled cost must be unmeasurable.  Every public entry point
       first reads one [Atomic.t bool]; when tracing is off the only
       work is that load plus the closure call the caller was going to
       make anyway.  Callers that would build an argument list should
       guard on {!enabled} themselves so the list is never allocated.
    2. Enabled cost must be small and bounded.  Events go into a
       fixed-size ring (default 65536 complete events, oldest dropped),
       timestamped with [Unix.gettimeofday].  The ring is protected by
       a mutex: at span granularity (passes, compile phases, execution
       chunks) contention is negligible, and a mutex keeps the
       multi-domain story simple and obviously correct.
    3. Export matches the Chrome [trace_event] format — complete
       events ("ph":"X") plus instants ("ph":"i") — so traces load
       directly in chrome://tracing and Perfetto.  {!to_tree} renders
       the same data as an indented tree for terminals. *)

type arg_value = S of string | I of int | F of float | B of bool

type event = {
  name : string;
  cat : string;
  ts : float;  (** wall-clock start, seconds since epoch *)
  dur : float; (** seconds; 0.0 for instants *)
  tid : int;   (** Domain id of the emitting domain *)
  phase : [ `Complete | `Instant ];
  args : (string * arg_value) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let default_capacity = 65536

type ring = {
  mutable buf : event option array;
  mutable head : int;     (* next write slot *)
  mutable count : int;    (* live events, <= capacity *)
  mutable dropped : int;  (* events evicted by wraparound *)
  lock : Mutex.t;
}

let ring =
  {
    buf = Array.make default_capacity None;
    head = 0;
    count = 0;
    dropped = 0;
    lock = Mutex.create ();
  }

let with_lock f =
  Mutex.lock ring.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring.lock) f

let set_capacity n =
  let n = max 16 n in
  with_lock (fun () ->
      ring.buf <- Array.make n None;
      ring.head <- 0;
      ring.count <- 0;
      ring.dropped <- 0)

let clear () =
  with_lock (fun () ->
      Array.fill ring.buf 0 (Array.length ring.buf) None;
      ring.head <- 0;
      ring.count <- 0;
      ring.dropped <- 0)

let record (ev : event) =
  with_lock (fun () ->
      let cap = Array.length ring.buf in
      if ring.count = cap then ring.dropped <- ring.dropped + 1
      else ring.count <- ring.count + 1;
      ring.buf.(ring.head) <- Some ev;
      ring.head <- (ring.head + 1) mod cap)

(* Oldest-first snapshot of the live events. *)
let events () : event list =
  with_lock (fun () ->
      let cap = Array.length ring.buf in
      let start = (ring.head - ring.count + cap) mod cap in
      List.init ring.count (fun i ->
          match ring.buf.((start + i) mod cap) with
          | Some ev -> ev
          | None -> assert false))

let dropped () = with_lock (fun () -> ring.dropped)

(* -- Emission ------------------------------------------------------------------ *)

let instant ?(args = []) ~cat name =
  if Atomic.get enabled_flag then
    record
      {
        name;
        cat;
        ts = Unix.gettimeofday ();
        dur = 0.0;
        tid = (Domain.self () :> int);
        phase = `Instant;
        args;
      }

(* [args] is a thunk so the argument list is only built when the span
   is actually recorded. *)
let with_span ?args ~cat name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      record
        {
          name;
          cat;
          ts = t0;
          dur = t1 -. t0;
          tid = (Domain.self () :> int);
          phase = `Complete;
          args = (match args with Some g -> g () | None -> []);
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* Like [with_span] but also hands the elapsed seconds back to the
   caller, so layers that keep their own timing ledgers (Pass records,
   the compiler's stage list) reuse the tracer's clock reads instead of
   timing twice. *)
let timed ?args ~cat name f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let dt = Unix.gettimeofday () -. t0 in
  if Atomic.get enabled_flag then
    record
      {
        name;
        cat;
        ts = t0;
        dur = dt;
        tid = (Domain.self () :> int);
        phase = `Complete;
        args = (match args with Some g -> g () | None -> []);
      };
  (v, dt)

(* -- Export -------------------------------------------------------------------- *)

let arg_to_json = function
  | S s -> Json.Str s
  | I i -> Json.Num (float_of_int i)
  | F x -> Json.Num x
  | B b -> Json.Bool b

let event_to_json (ev : event) : Json.t =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("ph", Json.Str (match ev.phase with `Complete -> "X" | `Instant -> "i"));
      ("ts", Json.Num (ev.ts *. 1e6));
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int ev.tid));
    ]
  in
  let base =
    match ev.phase with
    | `Complete -> base @ [ ("dur", Json.Num (ev.dur *. 1e6)) ]
    | `Instant -> base @ [ ("s", Json.Str "t") ]
  in
  let base =
    match ev.args with
    | [] -> base
    | args ->
        base @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)) ]
  in
  Json.Obj base

let to_json () : Json.t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_file path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string (to_json ())))

(* Human-readable tree: events nested by [start, start+dur] containment
   within each domain, printed oldest-first with durations in ms. *)
let to_tree () : string =
  let evs = events () in
  let buf = Buffer.create 1024 in
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let l = try Hashtbl.find by_tid ev.tid with Not_found -> [] in
      Hashtbl.replace by_tid ev.tid (ev :: l))
    evs;
  let tids =
    Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [] |> List.sort compare
  in
  let pp_args args =
    if args = [] then ""
    else
      " {"
      ^ String.concat ", "
          (List.map
             (fun (k, v) ->
               k ^ "="
               ^
               match v with
               | S s -> s
               | I i -> string_of_int i
               | F x -> Printf.sprintf "%g" x
               | B b -> string_of_bool b)
             args)
      ^ "}"
  in
  List.iter
    (fun tid ->
      Buffer.add_string buf (Printf.sprintf "domain %d:\n" tid);
      let evs =
        Hashtbl.find by_tid tid |> List.rev
        |> List.stable_sort (fun a b -> compare a.ts b.ts)
      in
      (* stack of (end-time) for indent depth *)
      let stack = ref [] in
      List.iter
        (fun ev ->
          stack := List.filter (fun tend -> ev.ts < tend -. 1e-9) !stack;
          let depth = List.length !stack in
          let indent = String.make ((depth + 1) * 2) ' ' in
          (match ev.phase with
          | `Complete ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s [%s] %.3f ms%s\n" indent ev.name ev.cat
                   (ev.dur *. 1e3) (pp_args ev.args));
              stack := (ev.ts +. ev.dur) :: !stack
          | `Instant ->
              Buffer.add_string buf
                (Printf.sprintf "%s* %s [%s]%s\n" indent ev.name ev.cat
                   (pp_args ev.args))))
        evs)
    tids;
  Buffer.contents buf
