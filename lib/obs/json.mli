(** Minimal JSON for the observability layer: Chrome trace export,
    metrics snapshots, and the CI perf gate.  Stable output — object
    field order is preserved, floats print shortest-exact — so
    snapshots diff cleanly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line form. *)

val to_string_pretty : t -> string
(** One field per line at the top two nesting levels, compact below;
    ends with a newline.  Matches the BENCH_*.json house style. *)

val parse : string -> (t, string) result
(** Strict parse of a complete document (trailing garbage is an error). *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val find : t -> string -> t option
(** Dotted-path lookup: [find j "sustained.pool.p99_ms"]. *)

val num : t -> float option
val str : t -> string option
val bool : t -> bool option
val list : t -> t list option
