(** Stable, diffable JSON capture of the metrics registry.

    Snapshots are versioned, sorted by metric name, and round-trip
    through {!to_json}/{!of_json}; the CI perf gate compares a fresh
    snapshot against a committed baseline. *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;  (** seconds *)
      p50 : float;
      p95 : float;
      p99 : float;
      buckets : (float * int) list;
          (** (upper bound seconds, count); empty buckets elided *)
    }

type t = { version : int; metrics : (string * metric) list }

val current_version : int

val take : unit -> t
(** Capture every registered instrument, sorted by name. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val to_string : t -> string
(** Pretty JSON, newline-terminated. *)

val of_string : string -> (t, string) result
val write_file : string -> t -> unit
val pp : Format.formatter -> t -> unit
