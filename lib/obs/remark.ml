(** Optimization remarks — the LLVM [-Rpass] analogue.

    Compiler rewrites (canonicalization patterns, constant folding, CSE
    dedups, LIR peepholes like FMA fusion) report {e what fired and
    where} as structured remarks.  Like {!Trace}, the disabled path is a
    single atomic load, so emitters guard with {!enabled} and pay
    nothing by default; when enabled, remarks accumulate in a bounded
    in-memory buffer exportable as JSON next to TRACE/METRICS files.

    Locations are carried as pre-rendered strings ("spn.node 17"): this
    library sits below the IR, so it cannot depend on [Mlir.Loc]. *)

type kind =
  | Applied  (** a rewrite fired *)
  | Missed  (** a rewrite was considered and declined *)
  | Analysis  (** informational (counts, decisions) *)

type remark = {
  pass : string;  (** pass or rewrite family, e.g. "constfold" *)
  kind : kind;
  message : string;
  loc : string;  (** pre-rendered location; "" when unknown *)
}

let kind_to_string = function
  | Applied -> "applied"
  | Missed -> "missed"
  | Analysis -> "analysis"

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let default_capacity = 65536

type buffer = {
  mutable items : remark list;  (** newest first *)
  mutable count : int;
  mutable dropped : int;
  lock : Mutex.t;
}

let buffer = { items = []; count = 0; dropped = 0; lock = Mutex.create () }

let with_lock f =
  Mutex.lock buffer.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock buffer.lock) f

let clear () =
  with_lock (fun () ->
      buffer.items <- [];
      buffer.count <- 0;
      buffer.dropped <- 0)

(** [emit ~pass ?kind ?loc message] records a remark when enabled.  The
    hot path should guard on {!enabled} before building [message]. *)
let emit ~pass ?(kind = Applied) ?(loc = "") message =
  if Atomic.get enabled_flag then
    with_lock (fun () ->
        if buffer.count >= default_capacity then
          buffer.dropped <- buffer.dropped + 1
        else begin
          buffer.items <- { pass; kind; message; loc } :: buffer.items;
          buffer.count <- buffer.count + 1
        end)

(** Oldest-first snapshot. *)
let all () : remark list = with_lock (fun () -> List.rev buffer.items)

let dropped () = with_lock (fun () -> buffer.dropped)

(* -- Export -------------------------------------------------------------- *)

let remark_to_json (r : remark) : Json.t =
  Json.Obj
    ([
       ("pass", Json.Str r.pass);
       ("kind", Json.Str (kind_to_string r.kind));
       ("message", Json.Str r.message);
     ]
    @ if r.loc = "" then [] else [ ("loc", Json.Str r.loc) ])

let to_json () : Json.t =
  Json.Obj
    [
      ("remarks", Json.List (List.map remark_to_json (all ())));
      ("dropped", Json.Num (float_of_int (dropped ())));
    ]

let write_file path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string_pretty (to_json ())))

let pp_remark ppf (r : remark) =
  Fmt.pf ppf "remark [%s] %s: %s%s" (kind_to_string r.kind) r.pass r.message
    (if r.loc = "" then "" else " at loc(" ^ r.loc ^ ")")

let pp ppf () = List.iter (fun r -> Fmt.pf ppf "%a@." pp_remark r) (all ())
