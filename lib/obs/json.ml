(** Minimal JSON emitter/parser for the observability layer.

    Three consumers, one format: the Chrome trace exporter ({!Trace}),
    the metrics snapshot ({!Snapshot.to_json} / [of_json] round-trip),
    and the CI perf gate ([bin/bench_check]), which must read both the
    snapshots and the hand-written BENCH_*.json files.  The emitter is
    deliberately stable — object fields keep their given order, floats
    print shortest-exact — so snapshot diffs are meaningful line diffs.

    This is not a general-purpose JSON library: no streaming, no
    \u escapes beyond the control range, numbers are OCaml floats.
    That subset covers everything the repo emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -- Emit ---------------------------------------------------------------------- *)

let escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest representation that round-trips exactly: try %.17g only when
   the shorter forms lose bits.  Integral values print without a point
   ("42", not "42."), which keeps counters readable. *)
let num_to_string (x : float) : string =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
      if Float.is_nan x then Buffer.add_string buf "null"
      else if x = Float.infinity then Buffer.add_string buf "1e999"
      else if x = Float.neg_infinity then Buffer.add_string buf "-1e999"
      else Buffer.add_string buf (num_to_string x)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 1024 in
  emit buf v;
  Buffer.contents buf

(* Pretty form: one field per line at the top two levels, compact below —
   matches the hand-written BENCH_*.json style so diffs stay reviewable. *)
let rec emit_pretty buf ~indent ~depth v =
  match v with
  | Obj fields when depth < 2 && fields <> [] ->
      let pad = String.make ((indent + 1) * 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, fv) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit_pretty buf ~indent:(indent + 1) ~depth:(depth + 1) fv)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * 2) ' ');
      Buffer.add_char buf '}'
  | List items when depth < 2 && List.length items > 4 ->
      let pad = String.make ((indent + 1) * 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          emit_pretty buf ~indent:(indent + 1) ~depth:(depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * 2) ' ');
      Buffer.add_char buf ']'
  | v -> emit buf v

let to_string_pretty (v : t) : string =
  let buf = Buffer.create 4096 in
  emit_pretty buf ~indent:0 ~depth:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* -- Parse --------------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let error c fmt =
  Printf.ksprintf
    (fun msg -> raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos msg)))
    fmt

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> error c "expected %C, found %C" ch x
  | None -> error c "expected %C, found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c "invalid literal"

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1; go ()
        | Some 'u' ->
            if c.pos + 5 > String.length c.src then error c "truncated \\u";
            let hex = String.sub c.src (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error c "bad \\u escape %S" hex
            in
            (* BMP only, encoded as UTF-8; enough for our own output *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            c.pos <- c.pos + 5;
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek c with Some ch when is_num_char ch -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> error c "invalid number %S" s

let rec parse_value c : t =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (key, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields_loop ()
          | Some '}' -> c.pos <- c.pos + 1
          | _ -> error c "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items_loop ()
          | Some ']' -> c.pos <- c.pos + 1
          | _ -> error c "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
  | Some '"' ->
      c.pos <- c.pos + 1;
      Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c "unexpected character %C" ch

let parse (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_file (path : string) : (t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> parse s

(* -- Accessors ------------------------------------------------------------------ *)

let member (key : string) = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* Dotted path lookup: [find j "sustained.pool.p99_ms"]. *)
let find (v : t) (path : string) : t option =
  List.fold_left
    (fun acc key -> Option.bind acc (member key))
    (Some v)
    (String.split_on_char '.' path)

let num = function Num x -> Some x | _ -> None
let str = function Str s -> Some s | _ -> None
let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None
