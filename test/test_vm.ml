(** Direct tests of the Lir layer: VM instruction semantics, optimizer
    equivalence properties on randomly generated SPNs, regalloc
    rematerialization, and the ablation-relevant partitioner variants. *)

open Spnc_spn
module Rng = Spnc_data.Rng
module Lir = Spnc_cpu.Lir
module Vm = Spnc_cpu.Vm
module Opt = Spnc_cpu.Optimizer

let check = Alcotest.check
let tbool = Alcotest.bool
let tfloat = Alcotest.float 1e-12

(* -- Raw VM semantics -------------------------------------------------------- *)

(* Hand-assemble a function: out[0] = fma(2,3,4) = 10; out[1] = select *)
let test_vm_hand_assembled () =
  let body =
    [|
      Lir.ConstF (0, 2.0);
      Lir.ConstF (1, 3.0);
      Lir.ConstF (2, 4.0);
      Lir.FBin3 (Lir.FMA, 3, 0, 1, 2);
      Lir.ConstI (0, 0);
      Lir.Store (0, 0, 3);
      (* select: cmp 2 < 3 -> pick 4.0 *)
      Lir.FCmp (Lir.Olt, 1, 0, 1);
      Lir.SelF (4, 1, 2, 0);
      Lir.ConstI (1, 1);
      Lir.Store (0, 1, 4);
      Lir.Ret;
    |]
  in
  let f =
    {
      Lir.fname = "t";
      params = [ 0 ];
      body;
      nf = 5;
      ni = 2;
      nv = 1;
      nb = 1;
      vec_width = 1;
      prov = Lir.no_prov;
    }
  in
  let m = { Lir.funcs = [| f |]; entry = 0 } in
  let out = Vm.buffer ~rows:2 ~cols:1 in
  Vm.run m ~buffers:[ out ];
  check tfloat "fma" 10.0 out.Vm.data.(0);
  check tfloat "select picks t" 4.0 out.Vm.data.(1)

let test_vm_loop_and_dim () =
  (* out[i] = 2*i for all rows, via Loop + Dim *)
  let body =
    [|
      Lir.Dim (0, 0);
      (* ub = rows *)
      Lir.ConstI (1, 0);
      (* lb *)
      Lir.Loop
        {
          Lir.iv = 2;
          lb = 1;
          ub = 0;
          step = 1;
          vector_width = 1;
          body =
            [|
              Lir.ItoF (0, 2);
              Lir.ConstF (1, 2.0);
              Lir.FBin (Lir.FMul, 2, 0, 1);
              Lir.Store (0, 2, 2);
            |];
        };
      Lir.Ret;
    |]
  in
  let f =
    { Lir.fname = "t"; params = [ 0 ]; body; nf = 3; ni = 3; nv = 1; nb = 1; vec_width = 1; prov = Lir.no_prov }
  in
  let out = Vm.buffer ~rows:5 ~cols:1 in
  Vm.run { Lir.funcs = [| f |]; entry = 0 } ~buffers:[ out ];
  Array.iteri (fun i v -> check tfloat (Printf.sprintf "row %d" i) (2.0 *. float_of_int i) v) out.Vm.data

let test_vm_vector_semantics () =
  let w = 4 in
  let body =
    [|
      Lir.ConstI (0, 0);
      Lir.VLoad (0, 0, 0);
      Lir.VConst (1, 10.0);
      Lir.VBin (Lir.FAdd, 2, 0, 1);
      Lir.VCmp (Lir.Ogt, 3, 2, 1);
      (* mask: v+10 > 10 i.e. v > 0 *)
      Lir.VSel (4, 3, 2, 1);
      Lir.VStore (0, 0, 4);
      Lir.Ret;
    |]
  in
  let f =
    { Lir.fname = "t"; params = [ 0 ]; body; nf = 1; ni = 1; nv = 5; nb = 1; vec_width = w; prov = Lir.no_prov }
  in
  let buf = Vm.of_flat [| 1.0; -2.0; 3.0; 0.0 |] ~rows:4 ~cols:1 in
  Vm.run { Lir.funcs = [| f |]; entry = 0 } ~buffers:[ buf ];
  check tfloat "lane0 selected" 11.0 buf.Vm.data.(0);
  check tfloat "lane1 fallback" 10.0 buf.Vm.data.(1);
  check tfloat "lane2 selected" 13.0 buf.Vm.data.(2);
  check tfloat "lane3 fallback (0 not > 0)" 10.0 buf.Vm.data.(3)

let test_vm_traps () =
  let f =
    {
      Lir.fname = "t";
      params = [ 0 ];
      body = [| Lir.ConstI (0, 99); Lir.Load (0, 0, 0); Lir.Ret |];
      nf = 1;
      ni = 1;
      nv = 1;
      nb = 1;
      vec_width = 1;
      prov = Lir.no_prov;
    }
  in
  let out = Vm.buffer ~rows:1 ~cols:1 in
  match Vm.run { Lir.funcs = [| f |]; entry = 0 } ~buffers:[ out ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "out-of-bounds load did not trap"

(* -- Per-node profiler --------------------------------------------------------- *)

module Profile = Spnc_cpu.Profile
module Jit = Spnc_cpu.Jit

let tint = Alcotest.int

(* The straight-line func from [test_vm_hand_assembled]: 11 instructions,
   executed exactly once per run. *)
let straightline_func ~prov =
  let body =
    [|
      Lir.ConstF (0, 2.0);
      Lir.ConstF (1, 3.0);
      Lir.ConstF (2, 4.0);
      Lir.FBin3 (Lir.FMA, 3, 0, 1, 2);
      Lir.ConstI (0, 0);
      Lir.Store (0, 0, 3);
      Lir.FCmp (Lir.Olt, 1, 0, 1);
      Lir.SelF (4, 1, 2, 0);
      Lir.ConstI (1, 1);
      Lir.Store (0, 1, 4);
      Lir.Ret;
    |]
  in
  { Lir.fname = "t"; params = [ 0 ]; body; nf = 5; ni = 2; nv = 1; nb = 1;
    vec_width = 1; prov }

let test_profile_straightline_exact_total () =
  let m = { Lir.funcs = [| straightline_func ~prov:Lir.no_prov |]; entry = 0 } in
  let p = Profile.create () in
  let out = Vm.buffer ~rows:2 ~cols:1 in
  Vm.run_profiled m p ~buffers:[ out ];
  (* profiling must not change the computed result *)
  check tfloat "fma result unchanged" 10.0 out.Vm.data.(0);
  check tint "every instruction counted exactly once" 11 (Profile.total p);
  (* the total is the sum of the cells, by construction *)
  let cell_sum =
    List.fold_left (fun a (c : Profile.cell) -> a + Atomic.get c.Profile.count)
      0 (Profile.cells p)
  in
  check tint "cells sum to the total" (Profile.total p) cell_sum;
  (* opcode breakdown: three ConstF, two ConstI, two Store *)
  let count op =
    List.fold_left
      (fun a (c : Profile.cell) ->
        if c.Profile.opcode = op then a + Atomic.get c.Profile.count else a)
      0 (Profile.cells p)
  in
  check tint "constf x3" 3 (count "constf");
  check tint "consti x2" 2 (count "consti");
  check tint "store x2" 2 (count "store");
  check tint "fma x1" 1 (count "fma");
  (* a second run doubles every count — cells accumulate across runs *)
  Vm.run_profiled m p ~buffers:[ out ];
  check tint "second run doubles the total" 22 (Profile.total p)

let test_profile_loop_trip_count () =
  (* the loop func from [test_vm_loop_and_dim]: 4 top-level instructions
     (Dim, ConstI, Loop, Ret) plus 4 body instructions per row *)
  let body =
    [|
      Lir.Dim (0, 0);
      Lir.ConstI (1, 0);
      Lir.Loop
        {
          Lir.iv = 2; lb = 1; ub = 0; step = 1; vector_width = 1;
          body =
            [|
              Lir.ItoF (0, 2);
              Lir.ConstF (1, 2.0);
              Lir.FBin (Lir.FMul, 2, 0, 1);
              Lir.Store (0, 2, 2);
            |];
        };
      Lir.Ret;
    |]
  in
  let f =
    { Lir.fname = "t"; params = [ 0 ]; body; nf = 3; ni = 3; nv = 1; nb = 1;
      vec_width = 1; prov = Lir.no_prov }
  in
  let rows = 5 in
  let p = Profile.create () in
  let out = Vm.buffer ~rows ~cols:1 in
  Vm.run_profiled { Lir.funcs = [| f |]; entry = 0 } p ~buffers:[ out ];
  check tint "4 straight-line + rows*4 body instructions"
    (4 + (rows * 4))
    (Profile.total p)

let test_profile_attribution_via_provenance () =
  (* tag the FMA destination (f3) as SPN node 7 and the select destination
     (f4) as node 9; everything else stays unattributed (-1) *)
  let pf = Array.make 5 Spnc_mlir.Loc.Unknown in
  pf.(3) <- Spnc_mlir.Loc.node 7;
  pf.(4) <- Spnc_mlir.Loc.node 9;
  let prov = { Lir.pf; pi = [||]; pv = [||]; pb = [||] } in
  let m = { Lir.funcs = [| straightline_func ~prov |]; entry = 0 } in
  let p = Profile.create () in
  let out = Vm.buffer ~rows:2 ~cols:1 in
  Vm.run_profiled m p ~buffers:[ out ];
  let stats = Profile.by_node p in
  let hits n =
    match List.find_opt (fun s -> s.Profile.ns_node = n) stats with
    | Some s -> s.Profile.ns_hits
    | None -> 0
  in
  (* node 7: the FMA itself plus the Store whose source is f3 (a store has
     no destination, so attribution falls back to the located source) *)
  check tint "node 7 owns fma + its store" 2 (hits 7);
  check tint "node 9 owns the select + its store" 2 (hits 9);
  (* attribution is a partition: per-node hits sum to the exact total *)
  let sum = List.fold_left (fun a s -> a + s.Profile.ns_hits) 0 stats in
  check tint "per-node hits sum to the total" (Profile.total p) sum;
  check tint "the rest lands on the unattributed bucket" (11 - 4) (hits (-1))

let test_profile_jit_matches_vm_shape () =
  (* the JIT hoists single-definition constants into the per-state init
     (run once, unprofiled), so its dynamic count excludes them; beyond
     that, counts must be deterministic and accumulate linearly *)
  let prov = Lir.no_prov in
  let m = { Lir.funcs = [| straightline_func ~prov |]; entry = 0 } in
  let p = Profile.create () in
  let k = Jit.compile ~profile:p m in
  let st = Jit.make_state k in
  let out = Vm.buffer ~rows:2 ~cols:1 in
  Jit.run k st ~buffers:[ out ];
  check tfloat "jit result unchanged under profiling" 10.0 out.Vm.data.(0);
  let t1 = Profile.total p in
  check tbool "profiled jit counts executions" true (t1 > 0);
  check tbool "promoted constants are excluded" true (t1 <= 11);
  Jit.run k st ~buffers:[ out ];
  check tint "second run adds exactly one run's worth" (2 * t1)
    (Profile.total p)

(* -- Optimizer equivalence properties ------------------------------------------ *)

let compile_lir ?(vec = false) level t =
  let hi = Spnc_hispn.From_model.translate t in
  let lo =
    Spnc_lospn.Lower_hispn.run
      ~options:
        {
          Spnc_lospn.Lower_hispn.default_options with
          space = Spnc_lospn.Lower_hispn.Force_log;
        }
      hi
  in
  let lo = Spnc_lospn.Buffer_opt.run (Spnc_lospn.Bufferize.run lo) in
  let cir =
    Spnc_cpu.Lower_cpu.run
      ~options:
        (if vec then
           { Spnc_cpu.Lower_cpu.scalar_options with vectorize = true;
             width = 8; use_veclib = true; use_shuffle = true }
         else Spnc_cpu.Lower_cpu.scalar_options)
      lo
  in
  Opt.run level (Spnc_cpu.Isel.run cir ~entry:"spn_kernel")

let run_lir lir ~rows ~num_features =
  let n = Array.length rows in
  let input = Vm.of_flat (Array.concat (Array.to_list rows)) ~rows:n ~cols:num_features in
  let out = Vm.buffer ~rows:n ~cols:1 in
  Vm.run lir ~buffers:[ input; out ];
  Array.sub out.Vm.data 0 n

let test_optimizer_equivalence_prop =
  QCheck.Test.make ~count:12 ~name:"O0 and O3 produce identical results"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let t =
        Random_spn.generate rng
          { Random_spn.default_config with num_features = 6; max_depth = 5 }
      in
      let data_rng = Rng.create ~seed:(seed + 1) in
      let rows =
        Array.init 9 (fun _ ->
            Array.init 6 (fun _ -> Rng.range data_rng (-3.0) 3.0))
      in
      let o0 = run_lir (compile_lir Opt.O0 t) ~rows ~num_features:6 in
      let o3 = run_lir (compile_lir Opt.O3 t) ~rows ~num_features:6 in
      Array.for_all2 (fun a b -> a = b || Float.abs (a -. b) < 1e-12) o0 o3)

let test_scalar_vector_equivalence_prop =
  QCheck.Test.make ~count:12 ~name:"scalar and vectorized kernels agree"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let t =
        Random_spn.generate rng
          { Random_spn.default_config with num_features = 5; max_depth = 5 }
      in
      let data_rng = Rng.create ~seed:(seed + 2) in
      let rows =
        Array.init 19 (fun _ ->
            Array.init 5 (fun _ -> Rng.range data_rng (-3.0) 3.0))
      in
      let s = run_lir (compile_lir ~vec:false Opt.O1 t) ~rows ~num_features:5 in
      let v = run_lir (compile_lir ~vec:true Opt.O1 t) ~rows ~num_features:5 in
      Array.for_all2 (fun a b -> a = b || Float.abs (a -. b) < 1e-9) s v)

(* -- Regalloc rematerialization ----------------------------------------------------- *)

let test_remat_reduces_intervals () =
  (* a function whose loop body is dominated by constants: with
     rematerialization they form no intervals *)
  let t =
    Model.make ~num_features:1
      (Model.sum
         (List.init 10 (fun i ->
              (0.1, Model.gaussian ~var:0 ~mean:(float_of_int i) ~stddev:1.0))))
  in
  let lir = compile_lir Opt.O0 t in
  let stats = Spnc_cpu.Regalloc.allocate_module lir in
  (* O0 keeps all constants in the loop; without remat the interval count
     would exceed the instruction count substantially *)
  let intervals = Array.fold_left (fun a s -> a + s.Spnc_cpu.Regalloc.intervals) 0 stats in
  let consts =
    Array.fold_left
      (fun a (f : Lir.func) ->
        a
        + Lir.count_instrs
            ~filter:(fun i ->
              match i with Lir.ConstF _ | Lir.ConstI _ | Lir.VConst _ -> true | _ -> false)
            f.Lir.body)
      0 lir.Lir.funcs
  in
  check tbool
    (Printf.sprintf "intervals %d exclude the %d constants" intervals consts)
    true
    (intervals < Lir.module_size lir - consts + 8)

(* -- Partitioner ablation invariants ------------------------------------------------- *)

let tree_dag leaves =
  let nodes = ref 0 and edges = ref [] in
  let fresh () = let n = !nodes in incr nodes; n in
  let layer = ref (List.init leaves (fun _ -> fresh ())) in
  while List.length !layer > 1 do
    let rec pair = function
      | a :: b :: rest ->
          let p = fresh () in
          edges := (a, p) :: (b, p) :: !edges;
          p :: pair rest
      | rest -> rest
    in
    layer := pair !layer
  done;
  Spnc_partition.Dag.create ~num_nodes:!nodes ~edges:!edges

let test_topo_random_is_topological () =
  let module D = Spnc_partition.Dag in
  let d = tree_dag 64 in
  List.iter
    (fun seed ->
      let order = D.topo_random ~seed d in
      let pos = Array.make d.D.num_nodes 0 in
      Array.iteri (fun p n -> pos.(n) <- p) order;
      for n = 0 to d.D.num_nodes - 1 do
        List.iter
          (fun s ->
            if pos.(s) < pos.(n) then
              Alcotest.failf "seed %d: edge %d->%d violates order" seed n s)
          d.D.succ.(n)
      done)
    [ 1; 2; 3; 42 ]

let test_dfs_beats_random_ordering () =
  (* the paper's stated reason for replacing the random ordering *)
  let module P = Spnc_partition.Partitioner in
  let d = tree_dag 512 in
  let cost ordering =
    P.cost d
      (P.run
         ~config:{ P.default_config with P.max_partition_size = 64; ordering }
         d)
  in
  let dfs = cost P.Dfs_order in
  let rand =
    (cost (P.Random_order 1) + cost (P.Random_order 2) + cost (P.Random_order 3)) / 3
  in
  check tbool
    (Printf.sprintf "dfs cost %d < random avg cost %d" dfs rand)
    true (dfs < rand)

let test_refinement_never_hurts_random_start () =
  let module P = Spnc_partition.Partitioner in
  let d = tree_dag 256 in
  List.iter
    (fun seed ->
      let base =
        { P.default_config with P.max_partition_size = 40;
          ordering = P.Random_order seed }
      in
      let p0 = P.initial base d in
      let p1 = P.refine base d p0 in
      check tbool "refinement non-increasing" true (P.cost d p1 <= P.cost d p0))
    [ 5; 6; 7 ]

let suite =
  [
    Alcotest.test_case "vm hand-assembled" `Quick test_vm_hand_assembled;
    Alcotest.test_case "vm loop + dim" `Quick test_vm_loop_and_dim;
    Alcotest.test_case "vm vector semantics" `Quick test_vm_vector_semantics;
    Alcotest.test_case "vm traps" `Quick test_vm_traps;
    Alcotest.test_case "profile straight-line exact total" `Quick
      test_profile_straightline_exact_total;
    Alcotest.test_case "profile loop trip count" `Quick
      test_profile_loop_trip_count;
    Alcotest.test_case "profile attribution via provenance" `Quick
      test_profile_attribution_via_provenance;
    Alcotest.test_case "profile jit accumulates deterministically" `Quick
      test_profile_jit_matches_vm_shape;
    QCheck_alcotest.to_alcotest test_optimizer_equivalence_prop;
    QCheck_alcotest.to_alcotest test_scalar_vector_equivalence_prop;
    Alcotest.test_case "remat excludes constants" `Quick test_remat_reduces_intervals;
    Alcotest.test_case "topo_random topological" `Quick test_topo_random_is_topological;
    Alcotest.test_case "dfs beats random ordering" `Quick test_dfs_beats_random_ordering;
    Alcotest.test_case "refinement never hurts" `Quick test_refinement_never_hurts_random_start;
  ]
