(** Runtime + engine tests: chunking edge cases of {!Spnc_runtime.Exec}
    (rows not divisible by the batch size, batch size 1, more threads
    than chunks), bit-identical output across batch sizes, thread counts
    and execution engines, the pooled-scratch path for multi-slot
    kernels, buffer-view semantics, the JIT's constant promotion under
    frame reuse, and the kernel compilation cache counters. *)

module Lir = Spnc_cpu.Lir
module Vm = Spnc_cpu.Vm
module Jit = Spnc_cpu.Jit
module Exec = Spnc_runtime.Exec
module Compiler = Spnc.Compiler
module Options = Spnc.Options
module Model = Spnc_spn.Model

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* exact comparison: the whole point of the engine cross-checks *)
let check_bits what (expect : float array) (got : float array) =
  check tint (what ^ ": length") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float got.(i) then
        Alcotest.failf "%s: row %d: expected %h, got %h" what i x got.(i))
    expect

(* -- A hand-assembled two-feature kernel: out[i] = x0 + 2*x1 ----------------- *)

let kernel_2feat : Lir.modul =
  let body =
    [|
      Lir.Dim (0, 0);
      Lir.ConstI (1, 0);
      Lir.Loop
        {
          Lir.iv = 2;
          lb = 1;
          ub = 0;
          step = 1;
          vector_width = 1;
          body =
            [|
              Lir.ConstI (3, 2);
              Lir.IBin (Lir.IMul, 4, 2, 3);
              Lir.Load (0, 0, 4);
              (* x0 = in[2i] *)
              Lir.ConstI (5, 1);
              Lir.IBin (Lir.IAdd, 6, 4, 5);
              Lir.Load (1, 0, 6);
              (* x1 = in[2i+1] *)
              Lir.ConstF (2, 2.0);
              Lir.FBin (Lir.FMul, 3, 1, 2);
              Lir.FBin (Lir.FAdd, 4, 0, 3);
              Lir.Store (1, 2, 4);
            |];
        };
      Lir.Ret;
    |]
  in
  let f =
    {
      Lir.fname = "k2";
      params = [ 0; 1 ];
      body;
      nf = 5;
      ni = 7;
      nv = 1;
      nb = 2;
      vec_width = 1;
    }
  in
  { Lir.funcs = [| f |]; entry = 0 }

let rows_2feat n =
  Array.init n (fun i ->
      [| float_of_int i *. 0.5; float_of_int (n - i) *. 0.25 |])

let expected_2feat data = Array.map (fun r -> r.(0) +. (2.0 *. r.(1))) data

(* -- Chunking edge cases ----------------------------------------------------- *)

(* Every (batch_size, threads, engine) combination must produce the same
   bits: chunk boundaries and worker scheduling are not allowed to be
   observable. *)
let test_chunking_grid () =
  let n = 10 in
  let data = rows_2feat n in
  let expect = expected_2feat data in
  List.iter
    (fun engine ->
      List.iter
        (fun (batch_size, threads) ->
          let t = Exec.load ~batch_size ~threads ~engine ~out_cols:1 kernel_2feat in
          let got = Exec.execute_rows t data in
          check_bits
            (Printf.sprintf "engine=%s batch=%d threads=%d"
               (Jit.engine_to_string engine) batch_size threads)
            expect got)
        [
          (3, 1);  (* rows not divisible by batch: chunks 3+3+3+1 *)
          (3, 2);
          (3, 4);
          (1, 4);  (* batch_size = 1: one chunk per row *)
          (4, 16); (* more threads than chunks *)
          (64, 4); (* one chunk, threads moot *)
        ])
    [ Jit.Vm; Jit.Jit ]

let test_rows_below_threads () =
  (* fewer rows than worker domains: the pool must clamp, not hang *)
  let data = rows_2feat 3 in
  let expect = expected_2feat data in
  List.iter
    (fun engine ->
      let t = Exec.load ~batch_size:1 ~threads:8 ~engine ~out_cols:1 kernel_2feat in
      check_bits "rows < threads" expect (Exec.execute_rows t data))
    [ Jit.Vm; Jit.Jit ]

let test_empty_input () =
  let t = Exec.load ~batch_size:4 ~threads:4 ~out_cols:1 kernel_2feat in
  check tint "0 rows -> 0 results" 0
    (Array.length (Exec.execute t ~flat:[||] ~rows:0 ~num_features:2))

(* -- Multi-slot kernels: the pooled-scratch path ------------------------------ *)

(* out_cols = 2.  The kernel ACCUMULATES into slot 0 (out[i] += 2*x[i])
   and dirties slot 1 — so if a worker's pooled scratch is not re-zeroed
   between chunks, a reused buffer leaks the previous chunk's values
   into the accumulation and the output changes with the batch size. *)
let kernel_accum : Lir.modul =
  let body =
    [|
      Lir.Dim (0, 0);
      Lir.ConstI (1, 0);
      Lir.Loop
        {
          Lir.iv = 2;
          lb = 1;
          ub = 0;
          step = 1;
          vector_width = 1;
          body =
            [|
              Lir.Load (0, 0, 2);
              (* x = in[i] *)
              Lir.ConstF (1, 2.0);
              Lir.FBin (Lir.FMul, 2, 0, 1);
              Lir.Load (3, 1, 2);
              (* prior slot-0 value: must be 0.0 in a fresh buffer *)
              Lir.FBin (Lir.FAdd, 4, 3, 2);
              Lir.Store (1, 2, 4);
              (* dirty slot 1 (entries [rows, 2*rows)) *)
              Lir.Dim (3, 1);
              Lir.IBin (Lir.IAdd, 4, 3, 2);
              Lir.ConstF (5, 999.0);
              Lir.Store (1, 4, 5);
            |];
        };
      Lir.Ret;
    |]
  in
  let f =
    {
      Lir.fname = "accum";
      params = [ 0; 1 ];
      body;
      nf = 6;
      ni = 5;
      nv = 1;
      nb = 2;
      vec_width = 1;
    }
  in
  { Lir.funcs = [| f |]; entry = 0 }

let test_multislot_scratch_reuse () =
  let n = 13 in
  let data = Array.init n (fun i -> [| float_of_int (i + 1) |]) in
  let expect = Array.map (fun r -> 2.0 *. r.(0)) data in
  List.iter
    (fun engine ->
      List.iter
        (fun (batch_size, threads) ->
          let t = Exec.load ~batch_size ~threads ~engine ~out_cols:2 kernel_accum in
          let got = Exec.execute_rows t data in
          check_bits
            (Printf.sprintf "scratch engine=%s batch=%d threads=%d"
               (Jit.engine_to_string engine) batch_size threads)
            expect got)
        (* batch 4: one worker processes several chunks and must re-zero
           its pooled scratch each time; batch 100: single chunk *)
        [ (4, 1); (4, 3); (100, 1) ])
    [ Jit.Vm; Jit.Jit ]

(* -- Buffer views ------------------------------------------------------------- *)

let load_at ix =
  (* a kernel that stores in[ix] to out[0] *)
  let body =
    [| Lir.ConstI (0, ix); Lir.Load (0, 0, 0); Lir.ConstI (1, 0);
       Lir.Store (1, 1, 0); Lir.Ret |]
  in
  let f =
    { Lir.fname = "ld"; params = [ 0; 1 ]; body; nf = 1; ni = 2; nv = 1;
      nb = 2; vec_width = 1 }
  in
  { Lir.funcs = [| f |]; entry = 0 }

let test_view_window_semantics () =
  let backing = Array.init 10 float_of_int in
  let input = Vm.view backing ~off:2 ~rows:4 ~cols:1 in
  let out = Vm.buffer ~rows:1 ~cols:1 in
  (* index 3 of the view is backing.(2 + 3) *)
  Vm.run (load_at 3) ~buffers:[ input; out ];
  check (Alcotest.float 0.0) "view indexes relative to off" 5.0 out.Vm.data.(0);
  Jit.run_once (load_at 3) ~buffers:[ input; out ];
  check (Alcotest.float 0.0) "jit agrees" 5.0 out.Vm.data.(0)

let test_view_bounds_trap () =
  (* index 4 is one past the view's len even though the backing array
     extends further — both engines must trap, not read the backing *)
  let backing = Array.init 10 float_of_int in
  let input = Vm.view backing ~off:2 ~rows:4 ~cols:1 in
  let out = Vm.buffer ~rows:1 ~cols:1 in
  (match Vm.run (load_at 4) ~buffers:[ input; out ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "vm: load past view len did not trap");
  match Jit.run_once (load_at 4) ~buffers:[ input; out ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "jit: load past view len did not trap"

(* -- JIT semantics ------------------------------------------------------------ *)

(* Constant promotion moves single-def consts out of the body into
   frame initialization; re-running on the SAME state (the runtime's
   frame-reuse pattern) must stay correct. *)
let test_jit_state_reuse () =
  let k = Jit.compile kernel_2feat in
  let st = Jit.make_state k in
  let run data =
    let n = Array.length data in
    let flat = Array.concat (Array.to_list data) in
    let input = Vm.of_flat flat ~rows:n ~cols:2 in
    let out = Vm.buffer ~rows:n ~cols:1 in
    Jit.run k st ~buffers:[ input; out ];
    Array.sub out.Vm.data 0 n
  in
  let d1 = rows_2feat 5 and d2 = Array.map (Array.map (fun x -> x -. 7.0)) (rows_2feat 8) in
  check_bits "first run" (expected_2feat d1) (run d1);
  check_bits "second run, reused frames" (expected_2feat d2) (run d2);
  check_bits "third run, first data again" (expected_2feat d1) (run d1)

let test_binary_fma_traps_both_engines () =
  (* a binary FMA is a malformed instruction (the addend was dropped);
     silently evaluating it as a*b is the historical bug both engines
     must refuse to reproduce *)
  let body =
    [| Lir.ConstF (0, 2.0); Lir.ConstF (1, 3.0);
       Lir.FBin (Lir.FMA, 2, 0, 1); Lir.ConstI (0, 0);
       Lir.Store (0, 0, 2); Lir.Ret |]
  in
  let f =
    { Lir.fname = "bad"; params = [ 0 ]; body; nf = 3; ni = 1; nv = 1;
      nb = 1; vec_width = 1 }
  in
  let m = { Lir.funcs = [| f |]; entry = 0 } in
  let out () = Vm.buffer ~rows:1 ~cols:1 in
  (match Vm.run m ~buffers:[ out () ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "vm evaluated a binary FMA");
  match Jit.run_once m ~buffers:[ out () ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "jit evaluated a binary FMA"

(* -- Chunk isolation under threads -------------------------------------------- *)

(* in[i] is used as a load index; the poisoned row makes exactly one
   chunk trap.  Exactly one Chunk_error must surface, all domains must
   be joined, and its bounds must contain the poisoned row. *)
let kernel_indexed_load : Lir.modul =
  let body =
    [|
      Lir.Dim (0, 0);
      Lir.ConstI (1, 0);
      Lir.Loop
        {
          Lir.iv = 2;
          lb = 1;
          ub = 0;
          step = 1;
          vector_width = 1;
          body =
            [|
              Lir.Load (0, 0, 2);
              Lir.FtoI (3, 0);
              Lir.Load (1, 0, 3);
              (* traps when in[i] is out of range *)
              Lir.Store (1, 2, 1);
            |];
        };
      Lir.Ret;
    |]
  in
  let f =
    { Lir.fname = "ix"; params = [ 0; 1 ]; body; nf = 2; ni = 4; nv = 1;
      nb = 2; vec_width = 1 }
  in
  { Lir.funcs = [| f |]; entry = 0 }

let test_chunk_error_bounds () =
  let n = 20 in
  let poisoned = 13 in
  let data =
    Array.init n (fun i -> [| (if i = poisoned then 9999.0 else 0.0) |])
  in
  List.iter
    (fun engine ->
      List.iter
        (fun threads ->
          let t =
            Exec.load ~batch_size:4 ~threads ~engine ~out_cols:1
              kernel_indexed_load
          in
          match Exec.execute_rows t data with
          | _ -> Alcotest.fail "poisoned chunk did not fail"
          | exception Exec.Chunk_error e ->
              check tbool
                (Printf.sprintf "engine=%s threads=%d: bounds [%d,%d) hold %d"
                   (Jit.engine_to_string engine) threads e.Exec.chunk_lo
                   e.Exec.chunk_hi poisoned)
                true
                (e.Exec.chunk_lo <= poisoned && poisoned < e.Exec.chunk_hi))
        [ 1; 4 ])
    [ Jit.Vm; Jit.Jit ]

(* -- Kernel compilation cache -------------------------------------------------- *)

let small_model =
  lazy
    (Model.make ~num_features:2
       (Model.product
          [
            Model.gaussian ~var:0 ~mean:0.0 ~stddev:1.0;
            Model.sum
              [
                (0.4, Model.gaussian ~var:1 ~mean:(-1.0) ~stddev:0.5);
                (0.6, Model.gaussian ~var:1 ~mean:2.0 ~stddev:1.5);
              ];
          ]))

let test_cache_hit_skips_pipeline () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  let c1 = Compiler.compile m in
  let k1 = Compiler.cache_counters () in
  check tint "first compile misses" 1 k1.Compiler.misses;
  check tint "first compile runs the pipeline" 1 k1.Compiler.full_compiles;
  let c2 = Compiler.compile m in
  let k2 = Compiler.cache_counters () in
  check tint "second compile hits" 1 k2.Compiler.hits;
  check tint "hit skips the pass pipeline" 1 k2.Compiler.full_compiles;
  (* the artifact is shared, not merely equal *)
  check tbool "artifact physically shared" true (c1.Compiler.artifact == c2.Compiler.artifact);
  (* and the cached kernel still executes *)
  let out = Compiler.execute c2 [| [| 0.1; 0.2 |]; [| -1.0; 3.0 |] |] in
  check tint "cached artifact executes" 2 (Array.length out)

let test_cache_key_sensitivity () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  ignore (Compiler.compile m);
  (* a compile-relevant option change is a different kernel *)
  let o3 = { Options.default with opt_level = Spnc_cpu.Optimizer.O3 } in
  ignore (Compiler.compile ~options:o3 m);
  let k = Compiler.cache_counters () in
  check tint "different opt level misses" 2 k.Compiler.misses;
  (* runtime-only knobs (engine, threads) share the artifact *)
  let vm_opts = { Options.default with engine = Jit.Vm; threads = 3 } in
  let c = Compiler.compile ~options:vm_opts m in
  let k = Compiler.cache_counters () in
  check tint "engine/threads change hits" 1 k.Compiler.hits;
  check tbool "hit carries the caller's options" true
    (c.Compiler.options.Options.engine = Jit.Vm)

let test_cache_disabled_counts_full_compiles () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  let off = { Options.default with use_kernel_cache = false } in
  ignore (Compiler.compile ~options:off m);
  ignore (Compiler.compile ~options:off m);
  let k = Compiler.cache_counters () in
  check tint "no lookups happened" 0 (k.Compiler.hits + k.Compiler.misses);
  check tint "every compile ran the pipeline" 2 k.Compiler.full_compiles

(* -- Engine parity through the full driver ------------------------------------ *)

let test_driver_engine_parity () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  let data =
    Array.init 23 (fun i -> [| float_of_int i *. 0.3 -. 3.0; 1.5 -. float_of_int i *. 0.2 |])
  in
  let run engine threads =
    let options = { Options.default with engine; threads } in
    Compiler.execute (Compiler.compile ~options m) data
  in
  let base = run Jit.Vm 1 in
  List.iter
    (fun (engine, threads) ->
      check_bits
        (Printf.sprintf "driver %s/%d vs vm/1" (Jit.engine_to_string engine) threads)
        base (run engine threads))
    [ (Jit.Vm, 3); (Jit.Jit, 1); (Jit.Jit, 3) ]

let suite =
  [
    Alcotest.test_case "chunking grid bit-identical" `Quick test_chunking_grid;
    Alcotest.test_case "rows below threads" `Quick test_rows_below_threads;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "multi-slot scratch re-zeroed" `Quick test_multislot_scratch_reuse;
    Alcotest.test_case "view window semantics" `Quick test_view_window_semantics;
    Alcotest.test_case "view bounds trap" `Quick test_view_bounds_trap;
    Alcotest.test_case "jit state reuse" `Quick test_jit_state_reuse;
    Alcotest.test_case "binary fma traps (both engines)" `Quick test_binary_fma_traps_both_engines;
    Alcotest.test_case "chunk error bounds" `Quick test_chunk_error_bounds;
    Alcotest.test_case "cache hit skips pipeline" `Quick test_cache_hit_skips_pipeline;
    Alcotest.test_case "cache key sensitivity" `Quick test_cache_key_sensitivity;
    Alcotest.test_case "cache disabled counts compiles" `Quick test_cache_disabled_counts_full_compiles;
    Alcotest.test_case "driver engine parity" `Quick test_driver_engine_parity;
  ]
