(** Runtime + engine tests: chunking edge cases of {!Spnc_runtime.Exec}
    (rows not divisible by the batch size, batch size 1, more threads
    than chunks), bit-identical output across batch sizes, thread counts
    and execution engines, the pooled-scratch path for multi-slot
    kernels, buffer-view semantics, the JIT's constant promotion under
    frame reuse, the kernel compilation cache counters, and the
    streaming layer (docs/PERFORMANCE.md §5-§6): persistent-pool domain
    reuse, work stealing under skewed chunk costs, the adaptive chunk
    plan, scheduler bit-identity, thread auto-detection, thread-safe
    compilation/execution, and the GPU stream pipeline's output equality
    and overlap-ledger accounting. *)

module Lir = Spnc_cpu.Lir
module Vm = Spnc_cpu.Vm
module Jit = Spnc_cpu.Jit
module Exec = Spnc_runtime.Exec
module Pool = Spnc_runtime.Pool
module Sim = Spnc_gpu.Sim
module Compiler = Spnc.Compiler
module Options = Spnc.Options
module Model = Spnc_spn.Model

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* exact comparison: the whole point of the engine cross-checks *)
let check_bits what (expect : float array) (got : float array) =
  check tint (what ^ ": length") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float got.(i) then
        Alcotest.failf "%s: row %d: expected %h, got %h" what i x got.(i))
    expect

(* -- A hand-assembled two-feature kernel: out[i] = x0 + 2*x1 ----------------- *)

let kernel_2feat : Lir.modul =
  let body =
    [|
      Lir.Dim (0, 0);
      Lir.ConstI (1, 0);
      Lir.Loop
        {
          Lir.iv = 2;
          lb = 1;
          ub = 0;
          step = 1;
          vector_width = 1;
          body =
            [|
              Lir.ConstI (3, 2);
              Lir.IBin (Lir.IMul, 4, 2, 3);
              Lir.Load (0, 0, 4);
              (* x0 = in[2i] *)
              Lir.ConstI (5, 1);
              Lir.IBin (Lir.IAdd, 6, 4, 5);
              Lir.Load (1, 0, 6);
              (* x1 = in[2i+1] *)
              Lir.ConstF (2, 2.0);
              Lir.FBin (Lir.FMul, 3, 1, 2);
              Lir.FBin (Lir.FAdd, 4, 0, 3);
              Lir.Store (1, 2, 4);
            |];
        };
      Lir.Ret;
    |]
  in
  let f =
    {
      Lir.fname = "k2";
      params = [ 0; 1 ];
      body;
      nf = 5;
      ni = 7;
      nv = 1;
      nb = 2;
      vec_width = 1;
      prov = Lir.no_prov;
    }
  in
  { Lir.funcs = [| f |]; entry = 0 }

let rows_2feat n =
  Array.init n (fun i ->
      [| float_of_int i *. 0.5; float_of_int (n - i) *. 0.25 |])

let expected_2feat data = Array.map (fun r -> r.(0) +. (2.0 *. r.(1))) data

(* -- Chunking edge cases ----------------------------------------------------- *)

(* Every (batch_size, threads, engine) combination must produce the same
   bits: chunk boundaries and worker scheduling are not allowed to be
   observable. *)
let test_chunking_grid () =
  let n = 10 in
  let data = rows_2feat n in
  let expect = expected_2feat data in
  List.iter
    (fun engine ->
      List.iter
        (fun (batch_size, threads) ->
          let t = Exec.load ~batch_size ~threads ~engine ~out_cols:1 kernel_2feat in
          let got = Exec.execute_rows t data in
          check_bits
            (Printf.sprintf "engine=%s batch=%d threads=%d"
               (Jit.engine_to_string engine) batch_size threads)
            expect got)
        [
          (3, 1);  (* rows not divisible by batch: chunks 3+3+3+1 *)
          (3, 2);
          (3, 4);
          (1, 4);  (* batch_size = 1: one chunk per row *)
          (4, 16); (* more threads than chunks *)
          (64, 4); (* one chunk, threads moot *)
        ])
    [ Jit.Vm; Jit.Jit ]

let test_rows_below_threads () =
  (* fewer rows than worker domains: the pool must clamp, not hang *)
  let data = rows_2feat 3 in
  let expect = expected_2feat data in
  List.iter
    (fun engine ->
      let t = Exec.load ~batch_size:1 ~threads:8 ~engine ~out_cols:1 kernel_2feat in
      check_bits "rows < threads" expect (Exec.execute_rows t data))
    [ Jit.Vm; Jit.Jit ]

let test_empty_input () =
  let t = Exec.load ~batch_size:4 ~threads:4 ~out_cols:1 kernel_2feat in
  check tint "0 rows -> 0 results" 0
    (Array.length (Exec.execute t ~flat:[||] ~rows:0 ~num_features:2))

(* -- Multi-slot kernels: the pooled-scratch path ------------------------------ *)

(* out_cols = 2.  The kernel ACCUMULATES into slot 0 (out[i] += 2*x[i])
   and dirties slot 1 — so if a worker's pooled scratch is not re-zeroed
   between chunks, a reused buffer leaks the previous chunk's values
   into the accumulation and the output changes with the batch size. *)
let kernel_accum : Lir.modul =
  let body =
    [|
      Lir.Dim (0, 0);
      Lir.ConstI (1, 0);
      Lir.Loop
        {
          Lir.iv = 2;
          lb = 1;
          ub = 0;
          step = 1;
          vector_width = 1;
          body =
            [|
              Lir.Load (0, 0, 2);
              (* x = in[i] *)
              Lir.ConstF (1, 2.0);
              Lir.FBin (Lir.FMul, 2, 0, 1);
              Lir.Load (3, 1, 2);
              (* prior slot-0 value: must be 0.0 in a fresh buffer *)
              Lir.FBin (Lir.FAdd, 4, 3, 2);
              Lir.Store (1, 2, 4);
              (* dirty slot 1 (entries [rows, 2*rows)) *)
              Lir.Dim (3, 1);
              Lir.IBin (Lir.IAdd, 4, 3, 2);
              Lir.ConstF (5, 999.0);
              Lir.Store (1, 4, 5);
            |];
        };
      Lir.Ret;
    |]
  in
  let f =
    {
      Lir.fname = "accum";
      params = [ 0; 1 ];
      body;
      nf = 6;
      ni = 5;
      nv = 1;
      nb = 2;
      vec_width = 1;
      prov = Lir.no_prov;
    }
  in
  { Lir.funcs = [| f |]; entry = 0 }

let test_multislot_scratch_reuse () =
  let n = 13 in
  let data = Array.init n (fun i -> [| float_of_int (i + 1) |]) in
  let expect = Array.map (fun r -> 2.0 *. r.(0)) data in
  List.iter
    (fun engine ->
      List.iter
        (fun (batch_size, threads) ->
          let t = Exec.load ~batch_size ~threads ~engine ~out_cols:2 kernel_accum in
          let got = Exec.execute_rows t data in
          check_bits
            (Printf.sprintf "scratch engine=%s batch=%d threads=%d"
               (Jit.engine_to_string engine) batch_size threads)
            expect got)
        (* batch 4: one worker processes several chunks and must re-zero
           its pooled scratch each time; batch 100: single chunk *)
        [ (4, 1); (4, 3); (100, 1) ])
    [ Jit.Vm; Jit.Jit ]

(* -- Buffer views ------------------------------------------------------------- *)

let load_at ix =
  (* a kernel that stores in[ix] to out[0] *)
  let body =
    [| Lir.ConstI (0, ix); Lir.Load (0, 0, 0); Lir.ConstI (1, 0);
       Lir.Store (1, 1, 0); Lir.Ret |]
  in
  let f =
    { Lir.fname = "ld"; params = [ 0; 1 ]; body; nf = 1; ni = 2; nv = 1;
      nb = 2; vec_width = 1; prov = Lir.no_prov }
  in
  { Lir.funcs = [| f |]; entry = 0 }

let test_view_window_semantics () =
  let backing = Array.init 10 float_of_int in
  let input = Vm.view backing ~off:2 ~rows:4 ~cols:1 in
  let out = Vm.buffer ~rows:1 ~cols:1 in
  (* index 3 of the view is backing.(2 + 3) *)
  Vm.run (load_at 3) ~buffers:[ input; out ];
  check (Alcotest.float 0.0) "view indexes relative to off" 5.0 out.Vm.data.(0);
  Jit.run_once (load_at 3) ~buffers:[ input; out ];
  check (Alcotest.float 0.0) "jit agrees" 5.0 out.Vm.data.(0)

let test_view_bounds_trap () =
  (* index 4 is one past the view's len even though the backing array
     extends further — both engines must trap, not read the backing *)
  let backing = Array.init 10 float_of_int in
  let input = Vm.view backing ~off:2 ~rows:4 ~cols:1 in
  let out = Vm.buffer ~rows:1 ~cols:1 in
  (match Vm.run (load_at 4) ~buffers:[ input; out ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "vm: load past view len did not trap");
  match Jit.run_once (load_at 4) ~buffers:[ input; out ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "jit: load past view len did not trap"

(* -- JIT semantics ------------------------------------------------------------ *)

(* Constant promotion moves single-def consts out of the body into
   frame initialization; re-running on the SAME state (the runtime's
   frame-reuse pattern) must stay correct. *)
let test_jit_state_reuse () =
  let k = Jit.compile kernel_2feat in
  let st = Jit.make_state k in
  let run data =
    let n = Array.length data in
    let flat = Array.concat (Array.to_list data) in
    let input = Vm.of_flat flat ~rows:n ~cols:2 in
    let out = Vm.buffer ~rows:n ~cols:1 in
    Jit.run k st ~buffers:[ input; out ];
    Array.sub out.Vm.data 0 n
  in
  let d1 = rows_2feat 5 and d2 = Array.map (Array.map (fun x -> x -. 7.0)) (rows_2feat 8) in
  check_bits "first run" (expected_2feat d1) (run d1);
  check_bits "second run, reused frames" (expected_2feat d2) (run d2);
  check_bits "third run, first data again" (expected_2feat d1) (run d1)

let test_binary_fma_traps_both_engines () =
  (* a binary FMA is a malformed instruction (the addend was dropped);
     silently evaluating it as a*b is the historical bug both engines
     must refuse to reproduce *)
  let body =
    [| Lir.ConstF (0, 2.0); Lir.ConstF (1, 3.0);
       Lir.FBin (Lir.FMA, 2, 0, 1); Lir.ConstI (0, 0);
       Lir.Store (0, 0, 2); Lir.Ret |]
  in
  let f =
    { Lir.fname = "bad"; params = [ 0 ]; body; nf = 3; ni = 1; nv = 1;
      nb = 1; vec_width = 1; prov = Lir.no_prov }
  in
  let m = { Lir.funcs = [| f |]; entry = 0 } in
  let out () = Vm.buffer ~rows:1 ~cols:1 in
  (match Vm.run m ~buffers:[ out () ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "vm evaluated a binary FMA");
  match Jit.run_once m ~buffers:[ out () ] with
  | exception Vm.Trap _ -> ()
  | () -> Alcotest.fail "jit evaluated a binary FMA"

(* -- Chunk isolation under threads -------------------------------------------- *)

(* in[i] is used as a load index; the poisoned row makes exactly one
   chunk trap.  Exactly one Chunk_error must surface, all domains must
   be joined, and its bounds must contain the poisoned row. *)
let kernel_indexed_load : Lir.modul =
  let body =
    [|
      Lir.Dim (0, 0);
      Lir.ConstI (1, 0);
      Lir.Loop
        {
          Lir.iv = 2;
          lb = 1;
          ub = 0;
          step = 1;
          vector_width = 1;
          body =
            [|
              Lir.Load (0, 0, 2);
              Lir.FtoI (3, 0);
              Lir.Load (1, 0, 3);
              (* traps when in[i] is out of range *)
              Lir.Store (1, 2, 1);
            |];
        };
      Lir.Ret;
    |]
  in
  let f =
    { Lir.fname = "ix"; params = [ 0; 1 ]; body; nf = 2; ni = 4; nv = 1;
      nb = 2; vec_width = 1; prov = Lir.no_prov }
  in
  { Lir.funcs = [| f |]; entry = 0 }

let test_chunk_error_bounds () =
  let n = 20 in
  let poisoned = 13 in
  let data =
    Array.init n (fun i -> [| (if i = poisoned then 9999.0 else 0.0) |])
  in
  List.iter
    (fun engine ->
      List.iter
        (fun threads ->
          let t =
            Exec.load ~batch_size:4 ~threads ~engine ~out_cols:1
              kernel_indexed_load
          in
          match Exec.execute_rows t data with
          | _ -> Alcotest.fail "poisoned chunk did not fail"
          | exception Exec.Chunk_error e ->
              check tbool
                (Printf.sprintf "engine=%s threads=%d: bounds [%d,%d) hold %d"
                   (Jit.engine_to_string engine) threads e.Exec.chunk_lo
                   e.Exec.chunk_hi poisoned)
                true
                (e.Exec.chunk_lo <= poisoned && poisoned < e.Exec.chunk_hi))
        [ 1; 4 ])
    [ Jit.Vm; Jit.Jit ]

(* -- Kernel compilation cache -------------------------------------------------- *)

let small_model =
  lazy
    (Model.make ~num_features:2
       (Model.product
          [
            Model.gaussian ~var:0 ~mean:0.0 ~stddev:1.0;
            Model.sum
              [
                (0.4, Model.gaussian ~var:1 ~mean:(-1.0) ~stddev:0.5);
                (0.6, Model.gaussian ~var:1 ~mean:2.0 ~stddev:1.5);
              ];
          ]))

let test_cache_hit_skips_pipeline () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  let c1 = Compiler.compile m in
  let k1 = Compiler.cache_counters () in
  check tint "first compile misses" 1 k1.Compiler.misses;
  check tint "first compile runs the pipeline" 1 k1.Compiler.full_compiles;
  let c2 = Compiler.compile m in
  let k2 = Compiler.cache_counters () in
  check tint "second compile hits" 1 k2.Compiler.hits;
  check tint "hit skips the pass pipeline" 1 k2.Compiler.full_compiles;
  (* the artifact is shared, not merely equal *)
  check tbool "artifact physically shared" true (c1.Compiler.artifact == c2.Compiler.artifact);
  (* and the cached kernel still executes *)
  let out = Compiler.execute c2 [| [| 0.1; 0.2 |]; [| -1.0; 3.0 |] |] in
  check tint "cached artifact executes" 2 (Array.length out)

let test_cache_key_sensitivity () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  ignore (Compiler.compile m);
  (* a compile-relevant option change is a different kernel *)
  let o3 = { Options.default with opt_level = Spnc_cpu.Optimizer.O3 } in
  ignore (Compiler.compile ~options:o3 m);
  let k = Compiler.cache_counters () in
  check tint "different opt level misses" 2 k.Compiler.misses;
  (* runtime-only knobs (engine, threads) share the artifact *)
  let vm_opts = { Options.default with engine = Jit.Vm; threads = 3 } in
  let c = Compiler.compile ~options:vm_opts m in
  let k = Compiler.cache_counters () in
  check tint "engine/threads change hits" 1 k.Compiler.hits;
  check tbool "hit carries the caller's options" true
    (c.Compiler.options.Options.engine = Jit.Vm)

let test_cache_disabled_counts_full_compiles () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  let off = { Options.default with use_kernel_cache = false } in
  ignore (Compiler.compile ~options:off m);
  ignore (Compiler.compile ~options:off m);
  let k = Compiler.cache_counters () in
  check tint "no lookups happened" 0 (k.Compiler.hits + k.Compiler.misses);
  check tint "every compile ran the pipeline" 2 k.Compiler.full_compiles

(* -- Engine parity through the full driver ------------------------------------ *)

let test_driver_engine_parity () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  let data =
    Array.init 23 (fun i -> [| float_of_int i *. 0.3 -. 3.0; 1.5 -. float_of_int i *. 0.2 |])
  in
  let run engine threads =
    let options = { Options.default with engine; threads } in
    Compiler.execute (Compiler.compile ~options m) data
  in
  let base = run Jit.Vm 1 in
  List.iter
    (fun (engine, threads) ->
      check_bits
        (Printf.sprintf "driver %s/%d vs vm/1" (Jit.engine_to_string engine) threads)
        base (run engine threads))
    [ (Jit.Vm, 3); (Jit.Jit, 1); (Jit.Jit, 3) ]

(* -- Streaming execution: persistent pool + work stealing --------------------- *)

(* Loading a kernel spawns the pool's domains once; repeated executes
   must reuse them.  [Pool.total_domains_spawned] is the process-wide
   spawn counter, so any per-call spawning shows up as a delta. *)
let test_pool_persists_across_calls () =
  let data = rows_2feat 64 in
  let expect = expected_2feat data in
  let t = Exec.load ~batch_size:4 ~threads:3 ~out_cols:1 kernel_2feat in
  let spawned = Pool.total_domains_spawned () in
  for _ = 1 to 5 do
    check_bits "pooled execute" expect (Exec.execute_rows t data)
  done;
  check tint "no new domains across repeated executes" spawned
    (Pool.total_domains_spawned ());
  Exec.shutdown t

(* Worker 0 owns tasks 0..3 (16 tasks over 4 workers) and, popping its
   own deque from the bottom, takes task 3 first.  Task 3 then blocks
   until 0..2 complete — which only a thief can make happen, so the
   round terminates iff stealing works, and at least 3 steals are
   guaranteed in every interleaving.  A deadline keeps a broken
   scheduler from hanging the suite (the assertions then fail). *)
let test_stealing_rebalances_skewed_costs () =
  let p = Pool.create ~size:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let n = 16 in
      let runs = Array.init n (fun _ -> Atomic.make 0) in
      let before = Pool.steal_count p in
      let deadline = Unix.gettimeofday () +. 10.0 in
      Pool.run p ~sched:Pool.Stealing ~num_tasks:n (fun ~worker:_ i ->
          if i = 3 then
            while
              (Atomic.get runs.(0) = 0
              || Atomic.get runs.(1) = 0
              || Atomic.get runs.(2) = 0)
              && Unix.gettimeofday () < deadline
            do
              Domain.cpu_relax ()
            done;
          Atomic.incr runs.(i));
      Array.iteri
        (fun i r ->
          check tint (Printf.sprintf "task %d ran exactly once" i) 1
            (Atomic.get r))
        runs;
      check tbool "skewed round forced steals" true
        (Pool.steal_count p - before >= 3);
      (* static rounds on the same pool never steal *)
      let before_static = Pool.steal_count p in
      let runs2 = Array.init n (fun _ -> Atomic.make 0) in
      Pool.run p ~sched:Pool.Static ~num_tasks:n (fun ~worker:_ i ->
          Atomic.incr runs2.(i));
      Array.iteri
        (fun i r ->
          check tint (Printf.sprintf "static task %d ran exactly once" i) 1
            (Atomic.get r))
        runs2;
      check tint "static round stole nothing" before_static (Pool.steal_count p))

(* The Obs counters mirror the pool's own bookkeeping: process-wide
   spawn and steal totals must move in lockstep with
   [Pool.total_domains_spawned] / [Pool.steal_count] (the Obs counters
   are process-wide, so deltas — not absolutes — are compared). *)
let test_pool_obs_metrics_parity () =
  let obs name =
    Spnc_obs.Metrics.(counter_value (counter name))
  in
  let spawns0 = obs "runtime.pool.spawns" in
  let steals0 = obs "runtime.pool.steals" in
  let spawned0 = Pool.total_domains_spawned () in
  let p = Pool.create ~size:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      check tint "spawn metric mirrors total_domains_spawned"
        (Pool.total_domains_spawned () - spawned0)
        (obs "runtime.pool.spawns" - spawns0);
      let stolen0 = Pool.steal_count p in
      (* same skewed round as above: task 3 blocks until a thief runs
         tasks 0..2, so at least 3 steals are forced *)
      let n = 12 in
      let runs = Array.init n (fun _ -> Atomic.make 0) in
      let deadline = Unix.gettimeofday () +. 10.0 in
      Pool.run p ~sched:Pool.Stealing ~num_tasks:n (fun ~worker:_ i ->
          if i = 3 then
            while
              (Atomic.get runs.(0) = 0
              || Atomic.get runs.(1) = 0
              || Atomic.get runs.(2) = 0)
              && Unix.gettimeofday () < deadline
            do
              Domain.cpu_relax ()
            done;
          Atomic.incr runs.(i));
      let pool_steals = Pool.steal_count p - stolen0 in
      check tbool "round forced steals" true (pool_steals >= 3);
      check tint "steal metric mirrors the pool's own count" pool_steals
        (obs "runtime.pool.steals" - steals0))

let test_adaptive_chunk_plan () =
  check tint "single-threaded: the batch size" 64
    (Exec.chunk_plan ~rows:100_000 ~threads:1 ~batch_size:64 ~min_chunk:8);
  check tint "parallel: ~4 chunks per worker" 63
    (Exec.chunk_plan ~rows:1000 ~threads:4 ~batch_size:64 ~min_chunk:8);
  check tint "floored at the SIMD width" 16
    (Exec.chunk_plan ~rows:1000 ~threads:32 ~batch_size:64 ~min_chunk:16);
  check tint "capped at the batch size" 64
    (Exec.chunk_plan ~rows:100_000 ~threads:2 ~batch_size:64 ~min_chunk:8);
  check tint "tiny inputs still respect the floor" 8
    (Exec.chunk_plan ~rows:3 ~threads:4 ~batch_size:64 ~min_chunk:8);
  check tint "degenerate floor clamps to 1" 1
    (Exec.chunk_plan ~rows:10 ~threads:4 ~batch_size:1 ~min_chunk:0)

(* Static and Stealing must be observationally identical: per-sample
   results do not depend on which worker ran which chunk. *)
let test_sched_grid_bit_identical () =
  let data = rows_2feat 37 in
  let expect = expected_2feat data in
  List.iter
    (fun sched ->
      List.iter
        (fun threads ->
          let t =
            Exec.load ~batch_size:3 ~threads ~sched ~min_chunk:2 ~out_cols:1
              kernel_2feat
          in
          check_bits
            (Printf.sprintf "sched=%s threads=%d" (Pool.sched_to_string sched)
               threads)
            expect (Exec.execute_rows t data);
          Exec.shutdown t)
        [ 1; 2; 4 ])
    [ Pool.Static; Pool.Stealing ]

let test_threads_auto_normalization () =
  let auto = Options.normalize_threads 0 in
  check tbool "auto is at least 1" true (auto >= 1);
  check tbool "auto is clamped to 64" true (auto <= 64);
  check tint "negative also means auto" auto (Options.normalize_threads (-3));
  check tint "auto matches the runtime's resolution" (Exec.auto_threads ()) auto;
  check tint "positive values pass through" 8 (Options.normalize_threads 8);
  check tint "hard cap at 256" 256 (Options.normalize_threads 1000);
  check tint "effective_threads resolves the record" auto
    (Options.effective_threads { Options.default with threads = -1 })

(* Four domains compile the same model and execute the shared JIT
   artifact concurrently.  This races the kernel-cache lookup and —
   the PR-3 fix — the [Lazy.force] of the cached closure kernel, which
   unsynchronized raises [CamlinternalLazy.Undefined] cross-domain. *)
let test_concurrent_compile_and_execute () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  let data =
    Array.init 17 (fun i -> [| (0.4 *. float_of_int i) -. 2.0; 1.0 -. (0.3 *. float_of_int i) |])
  in
  let options = { Options.default with engine = Jit.Jit; threads = 2 } in
  let workers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let c = Compiler.compile ~options m in
            Array.init 3 (fun _ -> Compiler.execute c data)))
  in
  let results = Array.map Domain.join workers in
  let expect = Compiler.execute (Compiler.compile ~options m) data in
  Array.iter
    (Array.iter (fun got -> check_bits "concurrent execute" expect got))
    results;
  let k = Compiler.cache_counters () in
  check tint "every compile was a cache lookup" 5 (k.Compiler.hits + k.Compiler.misses);
  check tbool "the artifact was compiled at least once" true
    (k.Compiler.misses >= 1 && k.Compiler.full_compiles >= 1)

(* -- GPU stream pipeline ------------------------------------------------------- *)

let gpu_options streams =
  {
    Options.default with
    Options.target = Options.Gpu;
    batch_size = 16;
    block_size = 8;
    gpu_fallback = false;
    streams;
  }

(* The stream count is a schedule knob, not a semantics knob: splitting
   the batch across in-flight chunks must leave every bit unchanged. *)
let test_gpu_streams_output_equality () =
  let m = Lazy.force small_model in
  let data =
    Array.init 23 (fun i ->
        [| (0.3 *. float_of_int i) -. 3.0; 1.5 -. (0.2 *. float_of_int i) |])
  in
  let base = Compiler.execute (Compiler.compile ~options:(gpu_options 1) m) data in
  List.iter
    (fun streams ->
      check_bits
        (Printf.sprintf "gpu streams=%d vs monolithic" streams)
        base
        (Compiler.execute (Compiler.compile ~options:(gpu_options streams) m) data))
    [ 2; 4 ]

(* The DES bound: one DMA engine + one compute engine means the
   pipelined makespan is at least max(total copies, total compute), so
   the hidden time can never exceed min of the two. *)
let test_pipeline_overlap_bounds () =
  let chunks =
    Array.init 8 (fun i -> (0.003, 0.001 +. (0.0001 *. float_of_int i), 0.002))
  in
  let copies =
    Array.fold_left (fun a (u, _, d) -> a +. u +. d) 0.0 chunks
  in
  let compute = Array.fold_left (fun a (_, k, _) -> a +. k) 0.0 chunks in
  check tbool "streams=1 hides nothing" true
    (Sim.pipeline_overlap ~streams:1 chunks = 0.0);
  check tbool "a single chunk hides nothing" true
    (Sim.pipeline_overlap ~streams:2 [| (1.0, 1.0, 1.0) |] = 0.0);
  check tbool "no chunks, no overlap" true
    (Sim.pipeline_overlap ~streams:4 [||] = 0.0);
  List.iter
    (fun streams ->
      let ov = Sim.pipeline_overlap ~streams chunks in
      check tbool
        (Printf.sprintf "streams=%d: multi-chunk pipeline hides time" streams)
        true (ov > 0.0);
      check tbool
        (Printf.sprintf "streams=%d: overlap <= min(copies, compute)" streams)
        true
        (ov <= Float.min copies compute +. 1e-12))
    [ 2; 4 ]

(* estimate_streamed must keep the monolithic component columns (and so
   the Fig. 9 transfer fraction) and record the hidden time separately,
   with total = serial - overlap. *)
let test_streamed_ledger_accounting () =
  let m = Lazy.force small_model in
  let options = gpu_options 1 in
  let c = Compiler.compile ~options m in
  match c.Compiler.artifact with
  | Compiler.Cpu_kernel _ -> Alcotest.fail "expected a GPU artifact"
  | Compiler.Gpu_kernel g ->
      let gm = g.Compiler.gpu_module in
      let gpu = options.Options.gpu in
      let mono =
        Sim.estimate_chunked gm ~gpu ~entry:"spn_kernel" ~rows:4096 ~chunk:16
      in
      let s4 =
        Sim.estimate_streamed gm ~gpu ~entry:"spn_kernel" ~rows:4096 ~chunk:16
          ~streams:4
      in
      let feq a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a) in
      check tbool "monolithic ledger has no overlap" true
        (mono.Sim.overlap_s = 0.0);
      check tbool "component columns match the monolithic schedule" true
        (feq mono.Sim.h2d_s s4.Sim.h2d_s
        && feq mono.Sim.d2h_s s4.Sim.d2h_s
        && feq mono.Sim.kernel_s s4.Sim.kernel_s
        && feq mono.Sim.launch_s s4.Sim.launch_s
        && feq mono.Sim.alloc_s s4.Sim.alloc_s);
      check tbool "overlap within [0, min(transfers, compute)]" true
        (s4.Sim.overlap_s >= 0.0
        && s4.Sim.overlap_s
           <= Float.min
                (s4.Sim.h2d_s +. s4.Sim.d2h_s)
                (s4.Sim.kernel_s +. s4.Sim.launch_s)
              +. 1e-12);
      check tbool "total = serial - overlap" true
        (feq (Sim.total_seconds s4) (Sim.serial_seconds s4 -. s4.Sim.overlap_s));
      check tbool "transfer fraction unchanged by streaming" true
        (feq (Sim.transfer_fraction mono) (Sim.transfer_fraction s4));
      check tbool "pipelining beats the monolithic schedule" true
        (Sim.total_seconds s4 < Sim.total_seconds mono)

(* -- Deadlines, cancellation and retry (docs/RESILIENCE.md §2) ----------------- *)

module Fault = Spnc_resilience.Fault

let test_backoff_schedule () =
  let feq a b = Float.abs (a -. b) < 1e-12 in
  check tbool "attempt 1 = 1ms" true (feq (Exec.backoff_seconds 1) 0.001);
  check tbool "attempt 2 = 2ms" true (feq (Exec.backoff_seconds 2) 0.002);
  check tbool "attempt 3 = 4ms" true (feq (Exec.backoff_seconds 3) 0.004);
  check tbool "cap at 50ms" true (feq (Exec.backoff_seconds 10) 0.05);
  check tbool "monotone non-decreasing" true
    (Exec.backoff_seconds 1 <= Exec.backoff_seconds 2
    && Exec.backoff_seconds 9 <= Exec.backoff_seconds 10)

let test_deadline_already_past () =
  let data = rows_2feat 16 in
  let flat = Array.concat (Array.to_list data) in
  let t = Exec.load ~batch_size:4 ~out_cols:1 kernel_2feat in
  let deadline = Unix.gettimeofday () -. 1.0 in
  (match Exec.execute t ~deadline ~flat ~rows:16 ~num_features:2 with
  | exception Exec.Deadline_exceeded d ->
      check tbool "deadline echoed" true (d.Exec.deadline = deadline);
      check tbool "now is past the deadline" true (d.Exec.now >= d.Exec.deadline)
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  Exec.shutdown t

let test_generous_deadline_is_transparent () =
  let data = rows_2feat 32 in
  let flat = Array.concat (Array.to_list data) in
  let t = Exec.load ~batch_size:4 ~threads:2 ~out_cols:1 kernel_2feat in
  let clean = Exec.execute t ~flat ~rows:32 ~num_features:2 in
  let deadline = Unix.gettimeofday () +. 60.0 in
  let timed = Exec.execute t ~deadline ~flat ~rows:32 ~num_features:2 in
  check_bits "deadline does not perturb outputs" clean timed;
  Exec.shutdown t

(* An injected per-chunk stall makes in-flight work observe the deadline:
   the call must come back with the structured error instead of running
   every remaining chunk to completion. *)
let test_deadline_cancels_inflight_chunks () =
  Fault.reset_for_tests ();
  Fault.arm ~points:[ "pool.chunk_stall" ] ~seed:1 ~rate:1.0 ();
  Fun.protect ~finally:Fault.reset_for_tests (fun () ->
      let rows = 512 in
      let data = rows_2feat rows in
      let flat = Array.concat (Array.to_list data) in
      let t = Exec.load ~batch_size:1 ~threads:2 ~out_cols:1 kernel_2feat in
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. 0.02 in
      (match Exec.execute t ~deadline ~flat ~rows ~num_features:2 with
      | exception Exec.Deadline_exceeded _ ->
          (* 512 chunks x 2ms stall = >1s if cancellation were ignored *)
          check tbool "cancelled promptly, not run to completion" true
            (Unix.gettimeofday () -. t0 < 0.5)
      | _ -> Alcotest.fail "expected Deadline_exceeded under stall");
      Exec.shutdown t)

(* Deterministically find a seed whose decision stream fails the single
   chunk of attempt 0 and passes it on the retry. *)
let retry_seed ~rate =
  let rec go s =
    if s > 10_000 then Alcotest.fail "no suitable retry seed found"
    else if
      Fault.decide ~seed:s ~point:"pool.chunk_fail" ~occurrence:0 < rate
      && Fault.decide ~seed:s ~point:"pool.chunk_fail" ~occurrence:1 >= rate
    then s
    else go (s + 1)
  in
  go 0

let test_transient_failure_retried () =
  let rate = 0.5 in
  let seed = retry_seed ~rate in
  let data = rows_2feat 4 in
  let flat = Array.concat (Array.to_list data) in
  let t = Exec.load ~batch_size:4 ~out_cols:1 kernel_2feat in
  let clean = Exec.execute t ~flat ~rows:4 ~num_features:2 in
  Fault.reset_for_tests ();
  Fault.arm ~points:[ "pool.chunk_fail" ] ~seed ~rate ();
  Fun.protect ~finally:Fault.reset_for_tests (fun () ->
      (* one chunk: attempt 0 draws occurrence 0 (fails), the retry draws
         occurrence 1 (passes) *)
      let out = Exec.execute t ~retries:2 ~flat ~rows:4 ~num_features:2 in
      check_bits "retried run bit-identical" clean out;
      check tint "exactly one injected failure" 1
        (Fault.fired_count "pool.chunk_fail"));
  Exec.shutdown t

let test_no_retries_surfaces_transient_chunk_error () =
  let data = rows_2feat 4 in
  let flat = Array.concat (Array.to_list data) in
  let t = Exec.load ~batch_size:4 ~out_cols:1 kernel_2feat in
  Fault.reset_for_tests ();
  Fault.arm ~points:[ "pool.chunk_fail" ] ~seed:3 ~rate:1.0 ();
  Fun.protect ~finally:Fault.reset_for_tests (fun () ->
      match Exec.execute t ~retries:0 ~flat ~rows:4 ~num_features:2 with
      | exception Exec.Chunk_error e ->
          check tbool "failure marked transient" true e.Exec.transient
      | _ -> Alcotest.fail "expected Chunk_error with retries=0");
  Exec.shutdown t

(* A permanent (non-transient) failure must not burn the retry budget. *)
let test_permanent_failure_not_retried () =
  let t = Exec.load ~batch_size:2 ~out_cols:1 kernel_2feat in
  (* 1-feature rows on a 2-feature kernel: deterministic out-of-bounds *)
  match Exec.execute t ~retries:5 ~flat:(Array.make 8 0.5) ~rows:8 ~num_features:1 with
  | exception Exec.Chunk_error e ->
      check tbool "permanent failure not marked transient" false e.Exec.transient;
      Exec.shutdown t
  | _ -> Alcotest.fail "expected Chunk_error"

(* Straggler-round isolation (the race behind sporadic cold-machine
   bit-identity failures in spnc_fuzz): two kernels with DIFFERENT
   thread counts share one pool; [pool.round_stall] deschedules random
   workers between the round signal and their first task claim, so a
   stalled worker from a 4-worker round routinely wakes up inside the
   next 2-worker round.  Pre-fix it would steal that round's tasks
   under its stale (out-of-range) worker id, the swallowed raise
   counted them complete, and rows came back unwritten.  Post-fix the
   round-stamped deques refuse the stale claims, so every interleaving
   must stay bit-identical. *)
let test_straggler_round_isolation () =
  let rows = 64 in
  let data = rows_2feat rows in
  let flat = Array.concat (Array.to_list data) in
  let expect = expected_2feat data in
  let pool = Pool.create ~size:4 in
  let wide = Exec.load ~batch_size:1 ~threads:4 ~pool ~out_cols:1 kernel_2feat in
  let narrow =
    Exec.load ~batch_size:1 ~threads:2 ~pool ~out_cols:1 kernel_2feat
  in
  Fault.reset_for_tests ();
  Fault.arm ~points:[ "pool.round_stall" ] ~seed:11 ~rate:0.4 ();
  Fun.protect
    ~finally:(fun () ->
      Fault.reset_for_tests ();
      Pool.shutdown pool)
    (fun () ->
      for i = 1 to 40 do
        let t = if i land 1 = 0 then wide else narrow in
        let got = Exec.execute t ~flat ~rows ~num_features:2 in
        check_bits
          (Printf.sprintf "straggler round %d (threads=%d)" i (Exec.threads t))
          expect got
      done;
      check tbool "stall point exercised" true
        (Fault.fired_count "pool.round_stall" > 0))

let test_driver_deadline_option () =
  Compiler.reset_kernel_cache ();
  let m = Lazy.force small_model in
  let rows = Array.init 8 (fun i -> [| float_of_int i; 0.5 |]) in
  (* a microscopic budget must fail structurally through the driver *)
  let tight = { Options.default with Options.deadline_ms = Some 1e-6 } in
  (match Compiler.execute (Compiler.compile ~options:tight m) rows with
  | exception Exec.Deadline_exceeded _ -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded through the driver");
  (* a generous budget is output-transparent *)
  let clean = Compiler.execute (Compiler.compile m) rows in
  let lax = { Options.default with Options.deadline_ms = Some 60_000.0 } in
  let timed = Compiler.execute (Compiler.compile ~options:lax m) rows in
  check_bits "driver deadline transparent" clean timed

let suite =
  [
    Alcotest.test_case "chunking grid bit-identical" `Quick test_chunking_grid;
    Alcotest.test_case "rows below threads" `Quick test_rows_below_threads;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "multi-slot scratch re-zeroed" `Quick test_multislot_scratch_reuse;
    Alcotest.test_case "view window semantics" `Quick test_view_window_semantics;
    Alcotest.test_case "view bounds trap" `Quick test_view_bounds_trap;
    Alcotest.test_case "jit state reuse" `Quick test_jit_state_reuse;
    Alcotest.test_case "binary fma traps (both engines)" `Quick test_binary_fma_traps_both_engines;
    Alcotest.test_case "chunk error bounds" `Quick test_chunk_error_bounds;
    Alcotest.test_case "cache hit skips pipeline" `Quick test_cache_hit_skips_pipeline;
    Alcotest.test_case "cache key sensitivity" `Quick test_cache_key_sensitivity;
    Alcotest.test_case "cache disabled counts compiles" `Quick test_cache_disabled_counts_full_compiles;
    Alcotest.test_case "driver engine parity" `Quick test_driver_engine_parity;
    Alcotest.test_case "pool persists across calls" `Quick test_pool_persists_across_calls;
    Alcotest.test_case "stealing rebalances skewed costs" `Quick
      test_stealing_rebalances_skewed_costs;
    Alcotest.test_case "pool obs metrics parity" `Quick
      test_pool_obs_metrics_parity;
    Alcotest.test_case "adaptive chunk plan" `Quick test_adaptive_chunk_plan;
    Alcotest.test_case "sched grid bit-identical" `Quick test_sched_grid_bit_identical;
    Alcotest.test_case "threads auto normalization" `Quick test_threads_auto_normalization;
    Alcotest.test_case "concurrent compile and execute" `Quick
      test_concurrent_compile_and_execute;
    Alcotest.test_case "gpu streams output equality" `Quick
      test_gpu_streams_output_equality;
    Alcotest.test_case "pipeline overlap bounds" `Quick test_pipeline_overlap_bounds;
    Alcotest.test_case "streamed ledger accounting" `Quick
      test_streamed_ledger_accounting;
    Alcotest.test_case "backoff schedule capped exponential" `Quick
      test_backoff_schedule;
    Alcotest.test_case "deadline already past" `Quick test_deadline_already_past;
    Alcotest.test_case "generous deadline transparent" `Quick
      test_generous_deadline_is_transparent;
    Alcotest.test_case "deadline cancels in-flight chunks" `Quick
      test_deadline_cancels_inflight_chunks;
    Alcotest.test_case "transient failure retried" `Quick
      test_transient_failure_retried;
    Alcotest.test_case "retries=0 surfaces transient chunk error" `Quick
      test_no_retries_surfaces_transient_chunk_error;
    Alcotest.test_case "permanent failure not retried" `Quick
      test_permanent_failure_not_retried;
    Alcotest.test_case "straggler round isolation" `Quick
      test_straggler_round_isolation;
    Alcotest.test_case "driver deadline option" `Quick test_driver_deadline_option;
  ]
