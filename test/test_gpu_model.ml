(** Tests of the GPU timing model internals: occupancy behaviour of
    {!Spnc_gpu.Sim.kernel_seconds}, ledger arithmetic, and PTX assembly
    details. *)

open Spnc_mlir
module Sim = Spnc_gpu.Sim
module M = Spnc_machine.Machine

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let gpu = M.rtx_2070_super

(* A synthetic kernel op with [n] float adds in its body. *)
let synthetic_kernel n =
  Spnc_gpu.Lower_gpu.register ();
  let b = Builder.create () in
  let block =
    Builder.block b ~arg_tys:[ Types.MemRef ([ None; Some 1 ], Types.F32) ]
      (fun _ ->
        let c = Spnc_cir.Ops.const_f b 1.0 ~ty:Types.F32 in
        let ops = ref [ c ] in
        let prev = ref (Ir.result c) in
        for _ = 1 to n do
          let a = Spnc_cir.Ops.binary b Spnc_cir.Ops.addf !prev !prev ~ty:Types.F32 in
          ops := a :: !ops;
          prev := Ir.result a
        done;
        List.rev (Builder.op b Spnc_cir.Ops.return_ () :: !ops))
  in
  Builder.op b "gpu.func"
    ~attrs:[ ("sym_name", Attr.String "k") ]
    ~regions:[ Builder.region1 block ]
    ()

let test_kernel_cycles_scale_with_body () =
  let small = Sim.kernel_thread_cycles gpu (synthetic_kernel 10) in
  let big = Sim.kernel_thread_cycles gpu (synthetic_kernel 1000) in
  check tbool "100x body ~ 100x cycles" true
    (big > 50.0 *. small && big < 200.0 *. small)

let test_kernel_seconds_monotone_in_rows () =
  let k = synthetic_kernel 200 in
  let t1 = Sim.kernel_seconds gpu k ~rows:10_000 ~block_size:64 in
  let t2 = Sim.kernel_seconds gpu k ~rows:80_000 ~block_size:64 in
  check tbool "more rows, more time" true (t2 > t1)

let test_kernel_seconds_small_grid_penalty () =
  (* one block cannot use all SMs: per-sample time is much worse than a
     grid-saturating launch *)
  let k = synthetic_kernel 200 in
  let per_sample rows =
    Sim.kernel_seconds gpu k ~rows ~block_size:64 /. float_of_int rows
  in
  check tbool "64 rows/sample slower than 64k rows/sample" true
    (per_sample 64 > 2.0 *. per_sample 65_536)

let test_occupancy_penalty_for_huge_blocks () =
  let k = synthetic_kernel 8000 in
  (* very large blocks with high register pressure spill / lose occupancy *)
  let t64 = Sim.kernel_seconds gpu k ~rows:100_000 ~block_size:64 in
  let t1024 = Sim.kernel_seconds gpu k ~rows:100_000 ~block_size:1024 in
  check tbool
    (Printf.sprintf "1024-thread blocks slower (%.2e vs %.2e)" t1024 t64)
    true (t1024 > t64)

let test_ledger_arithmetic () =
  let l1 =
    {
      Sim.h2d_s = 1.0;
      d2h_s = 2.0;
      kernel_s = 3.0;
      launch_s = 4.0;
      alloc_s = 5.0;
      overlap_s = 0.0;
    }
  in
  let l2 = Sim.scale_ledger l1 2.0 in
  check (Alcotest.float 1e-12) "scaled total" 30.0 (Sim.total_seconds l2);
  let l3 = Sim.add_ledger l1 l2 in
  check (Alcotest.float 1e-12) "added total" 45.0 (Sim.total_seconds l3);
  check (Alcotest.float 1e-12) "transfer fraction" (9.0 /. 45.0)
    (Sim.transfer_fraction l3);
  (* overlap reduces the wall-clock total but not the components, so the
     transfer fraction is unchanged *)
  l3.Sim.overlap_s <- 5.0;
  check (Alcotest.float 1e-12) "overlap subtracts" 40.0 (Sim.total_seconds l3);
  check (Alcotest.float 1e-12) "serial unchanged" 45.0 (Sim.serial_seconds l3);
  check (Alcotest.float 1e-12) "fraction unchanged" (9.0 /. 45.0)
    (Sim.transfer_fraction l3)

(* -- PTX internals ------------------------------------------------------------- *)

let test_ptx_assemble_two_kernels_independently () =
  (* two identical kernels assemble to exactly twice the bytes of one *)
  let ptx_one =
    ".version 7.2\n.visible .entry a()\n{\n  add.f32 %f1, %f2, %f3;\n  ret;\n}\n"
  in
  let ptx_two =
    ptx_one ^ ".visible .entry b()\n{\n  add.f32 %f1, %f2, %f3;\n  ret;\n}\n"
  in
  let one = Spnc_gpu.Ptx.assemble ptx_one in
  let two = Spnc_gpu.Ptx.assemble ptx_two in
  check tint "double instructions" (2 * one.Spnc_gpu.Ptx.instructions)
    two.Spnc_gpu.Ptx.instructions;
  check tint "double bytes"
    (2 * Bytes.length one.Spnc_gpu.Ptx.bytes)
    (Bytes.length two.Spnc_gpu.Ptx.bytes)

let test_ptx_registers_reported () =
  let ptx =
    ".visible .entry a()\n{\n\
    \  mov.f32 %f1, 0f00000000;\n\
    \  mov.f32 %f2, 0f00000000;\n\
    \  add.f32 %f3, %f1, %f2;\n\
    \  st.global.f32 [%r1+%r2], %f3;\n\
    \  ret;\n}\n"
  in
  let c = Spnc_gpu.Ptx.assemble ptx in
  check tbool "register pressure > 0" true (c.Spnc_gpu.Ptx.regs_allocated >= 2)

let test_ptx_determinism () =
  let m =
    let rng = Spnc_data.Rng.create ~seed:123 in
    let t =
      Spnc_spn.Random_spn.generate rng
        { Spnc_spn.Random_spn.default_config with num_features = 4; max_depth = 4 }
    in
    let hi = Spnc_hispn.From_model.translate t in
    let lo = Spnc_lospn.Lower_hispn.run hi in
    let lo = Spnc_lospn.Buffer_opt.run (Spnc_lospn.Bufferize.run lo) in
    Spnc_gpu.Copy_opt.run (Spnc_gpu.Lower_gpu.run lo)
  in
  let p1 = Spnc_gpu.Ptx.emit m and p2 = Spnc_gpu.Ptx.emit m in
  check tbool "emission deterministic" true (String.equal p1 p2);
  let c1 = Spnc_gpu.Ptx.assemble p1 and c2 = Spnc_gpu.Ptx.assemble p2 in
  check tbool "assembly deterministic" true
    (Bytes.equal c1.Spnc_gpu.Ptx.bytes c2.Spnc_gpu.Ptx.bytes)

let suite =
  [
    Alcotest.test_case "kernel cycles scale" `Quick test_kernel_cycles_scale_with_body;
    Alcotest.test_case "kernel seconds monotone" `Quick test_kernel_seconds_monotone_in_rows;
    Alcotest.test_case "small grid penalty" `Quick test_kernel_seconds_small_grid_penalty;
    Alcotest.test_case "huge block penalty" `Quick test_occupancy_penalty_for_huge_blocks;
    Alcotest.test_case "ledger arithmetic" `Quick test_ledger_arithmetic;
    Alcotest.test_case "ptx per-kernel assembly" `Quick test_ptx_assemble_two_kernels_independently;
    Alcotest.test_case "ptx registers" `Quick test_ptx_registers_reported;
    Alcotest.test_case "ptx determinism" `Quick test_ptx_determinism;
  ]
