(** Tests for the resilience layer (docs/RESILIENCE.md): structured
    diagnostics, the crash-isolated pass manager and its reproducer
    bundles, output guards, GPU→CPU fallback, runtime chunk-failure
    isolation, and the differential fuzzing harness. *)

open Spnc_resilience
module Compiler = Spnc.Compiler
module Options = Spnc.Options
module Pass = Spnc_mlir.Pass
module Ir = Spnc_mlir.Ir
module Exec = Spnc_runtime.Exec
module Model = Spnc_spn.Model

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* A tiny valid model over two features. *)
let small_model () =
  let g0 = Model.gaussian ~var:0 ~mean:0.0 ~stddev:1.0 in
  let g1 = Model.gaussian ~var:1 ~mean:1.0 ~stddev:0.5 in
  let c1 = Model.categorical ~var:1 ~probs:[| 0.25; 0.75 |] in
  let p0 = Model.product [ g0; g1 ] in
  let p1 = Model.product [ g0; c1 ] in
  Model.make ~num_features:2 (Model.sum [ (0.4, p0); (0.6, p1) ])

let small_rows =
  [| [| 0.1; 0.9 |]; [| -0.5; 1.0 |]; [| 1.5; 0.0 |]; [| 0.0; 1.0 |] |]

(* A module in generic form, obtained by running the real front half of
   the pipeline on the small model. *)
let small_module () =
  let c = Compiler.compile (small_model ()) in
  c.Compiler.lospn

(* -- Diag --------------------------------------------------------------------- *)

let test_diag_fail () =
  match Diag.fail ~pass:"my-pass" ~op_path:[ "module"; "func" ] "bad %s" "op"
  with
  | exception Diag.Diag_error d ->
      check tstr "message" "bad op" d.Diag.message;
      check (Alcotest.option tstr) "pass" (Some "my-pass") d.Diag.pass;
      check (Alcotest.list tstr) "op path" [ "module"; "func" ] d.Diag.op_path
  | _ -> Alcotest.fail "Diag.fail must raise"

let test_diag_of_exn () =
  let bt =
    try failwith "boom"
    with _ -> Printexc.get_raw_backtrace ()
  in
  let d = Diag.of_exn ~pass:"p" (Failure "boom") bt in
  check tbool "mentions boom" true
    (Astring_contains.contains d.Diag.message "boom");
  check (Alcotest.option tstr) "pass attributed" (Some "p") d.Diag.pass;
  (* a Diag_error payload passes through unchanged except for the pass *)
  let inner = Diag.error "inner" in
  let d' = Diag.of_exn ~pass:"outer" (Diag.Diag_error inner) bt in
  check tstr "payload preserved" "inner" d'.Diag.message;
  check (Alcotest.option tstr) "pass filled in" (Some "outer") d'.Diag.pass

(* -- Checked pass manager ------------------------------------------------------ *)

(* A "pass" that silently breaks SSA by duplicating every top-level op:
   the duplicate defines the same value ids a second time. *)
let breaking_pass =
  Pass.make "break-ssa" (fun m -> { m with Ir.mops = m.Ir.mops @ m.Ir.mops })

let throwing_pass = Pass.make "throw" (fun _ -> failwith "kaboom from pass")

let test_checked_verifier_blames_pass () =
  let m = small_module () in
  match
    Pass.run_pipeline_checked ~verify_each:true ~dump_policy:Pass.No_dump
      [ Pass.canonicalize_pass; breaking_pass ]
      m
  with
  | Ok _ -> Alcotest.fail "expected a pipeline failure"
  | Error f ->
      check tstr "failing pass" "break-ssa" f.Pass.failed_pass;
      check tstr "diag pass" "break-ssa"
        (Option.value ~default:"?" f.Pass.diag.Diag.pass);
      (* the pre-pass snapshot must re-parse: it is the replay input *)
      (match Spnc_mlir.Parser.modul_of_string f.Pass.ir_before with
      | _ -> ()
      | exception _ -> Alcotest.fail "ir_before does not re-parse");
      check tbool "replay pipeline starts at the failing pass" true
        (String.length f.Pass.replay_pipeline >= 9
        && String.sub f.Pass.replay_pipeline 0 9 = "break-ssa");
      (* canonicalize completed, and break-ssa itself ran to completion —
         only the verifier after it failed — so both are on the ledger *)
      check (Alcotest.list tstr) "passes timed before the failure"
        [ "canonicalize"; "break-ssa" ]
        (List.map (fun t -> t.Pass.pass_name) f.Pass.partial_timings)

let test_checked_captures_exception () =
  Printexc.record_backtrace true;
  let m = small_module () in
  match
    Pass.run_pipeline_checked ~dump_policy:Pass.No_dump [ throwing_pass ] m
  with
  | Ok _ -> Alcotest.fail "expected a pipeline failure"
  | Error f ->
      check tstr "failing pass" "throw" f.Pass.failed_pass;
      check tbool "message mentions the exception" true
        (Astring_contains.contains f.Pass.diag.Diag.message "kaboom");
      check tbool "backtrace captured" true
        (f.Pass.diag.Diag.backtrace <> None)

let test_checked_writes_bundle () =
  let dir = Filename.temp_file "spnc-test" "" in
  Sys.remove dir;
  let m = small_module () in
  (match
     Pass.run_pipeline_checked ~verify_each:true
       ~dump_policy:(Pass.Dump_to dir) ~options:"pipeline: break-ssa"
       [ breaking_pass ] m
   with
  | Ok _ -> Alcotest.fail "expected a pipeline failure"
  | Error f -> (
      match f.Pass.bundle with
      | None ->
          Alcotest.failf "no bundle written: %s"
            (Option.value ~default:"?" f.Pass.bundle_error)
      | Some b ->
          List.iter
            (fun file ->
              check tbool (file ^ " exists") true
                (Sys.file_exists (Reproducer.path b file)))
            [ "ir.mlir"; "pipeline.txt"; "options.txt"; "diag.txt"; "README.txt" ];
          (* the dumped IR is the pre-pass snapshot *)
          let ir = Reproducer.read_file b "ir.mlir" in
          check tstr "dumped IR = ir_before" f.Pass.ir_before ir));
  (* cleanup *)
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let test_legacy_pipeline_error () =
  let m = small_module () in
  match Pass.run_pipeline [ throwing_pass ] m with
  | exception Pass.Pipeline_error (pass, msg) ->
      check tstr "pass name" "throw" pass;
      check tbool "message" true (Astring_contains.contains msg "kaboom")
  | _ -> Alcotest.fail "expected Pipeline_error"

let test_debug_fail_stage_isolated () =
  let options =
    { Options.default with Options.debug_fail_stage = Some "bufferization" }
  in
  match Compiler.compile ~options (small_model ()) with
  | exception Diag.Diag_error d ->
      check (Alcotest.option tstr) "stage attributed" (Some "bufferization")
        d.Diag.pass
  | _ -> Alcotest.fail "expected an injected stage failure"

(* -- Output guards ------------------------------------------------------------- *)

(* NaN evidence without marginal support propagates NaN through the
   kernel, triggering the guard. *)
let nan_rows = [| [| 0.1; 0.9 |]; [| Float.nan; 1.0 |] |]

let compile_with_guard policy =
  let options =
    { Options.default with Options.output_guard = policy; threads = 1 }
  in
  Compiler.compile ~options (small_model ())

let test_guard_fail () =
  let c = compile_with_guard Guard.Fail in
  match Compiler.execute c nan_rows with
  | exception Guard.Guard_failure d ->
      check tbool "diag mentions invalid outputs" true
        (Astring_contains.contains d.Diag.message "invalid")
  | _ -> Alcotest.fail "expected Guard_failure"

let test_guard_warn_passes_through () =
  let c = compile_with_guard Guard.Warn in
  let out = Compiler.execute c nan_rows in
  check tbool "row 0 finite" true (Float.is_finite out.(0));
  check tbool "row 1 is NaN (passed through)" true (Float.is_nan out.(1))

let test_guard_clamp () =
  let c = compile_with_guard Guard.Clamp in
  let out = Compiler.execute c nan_rows in
  check tbool "row 0 finite" true (Float.is_finite out.(0));
  check (Alcotest.float 0.0) "row 1 clamped to the log floor" Guard.log_floor
    out.(1)

let test_guard_scan_and_clamp_unit () =
  let invalid, underflow, first = Guard.scan [| 0.0; Float.nan; Float.neg_infinity |] in
  check tint "invalid" 1 invalid;
  check tint "underflow" 1 underflow;
  check (Alcotest.option tint) "first bad index" (Some 1) first;
  let clamped =
    Guard.apply ~policy:Guard.Clamp [| Float.nan; Float.neg_infinity; Float.infinity; -1.0 |]
  in
  check (Alcotest.float 0.0) "NaN -> floor" Guard.log_floor clamped.(0);
  check (Alcotest.float 0.0) "-inf -> floor" Guard.log_floor clamped.(1);
  check (Alcotest.float 0.0) "+inf -> ceil" Guard.log_ceil clamped.(2);
  check (Alcotest.float 0.0) "clean value untouched" (-1.0) clamped.(3)

(* -- GPU → CPU fallback --------------------------------------------------------- *)

let test_gpu_fallback () =
  let options =
    {
      Options.default with
      Options.target = Options.Gpu;
      debug_fail_stage = Some "gpu-lowering";
      gpu_fallback = true;
      threads = 1;
    }
  in
  let c = Compiler.compile ~options (small_model ()) in
  (match c.Compiler.artifact with
  | Compiler.Cpu_kernel _ -> ()
  | Compiler.Gpu_kernel _ -> Alcotest.fail "expected a CPU fallback artifact");
  check tbool "fallback recorded as a diagnostic" true
    (c.Compiler.diags <> []);
  (* the fallback kernel still computes the right answer *)
  let expected = Spnc_spn.Infer.log_likelihood_batch (small_model ()) small_rows in
  let got = Compiler.execute c small_rows in
  Array.iteri
    (fun i e ->
      if Float.abs (got.(i) -. e) > 1e-9 then
        Alcotest.failf "row %d: expected %.12g got %.12g" i e got.(i))
    expected

let test_gpu_fallback_disabled () =
  let options =
    {
      Options.default with
      Options.target = Options.Gpu;
      debug_fail_stage = Some "gpu-lowering";
      gpu_fallback = false;
    }
  in
  match Compiler.compile ~options (small_model ()) with
  | exception Diag.Diag_error _ -> ()
  | _ -> Alcotest.fail "expected the GPU failure to propagate"

(* -- Runtime fault tolerance ---------------------------------------------------- *)

let compiled_cpu ?(threads = 1) () =
  let options = { Options.default with Options.threads; batch_size = 2 } in
  let c = Compiler.compile ~options (small_model ()) in
  match c.Compiler.artifact with
  | Compiler.Cpu_kernel a -> (c, a.Compiler.lir)
  | Compiler.Gpu_kernel _ -> assert false

let test_exec_validation () =
  let c, lir = compiled_cpu () in
  let t = Exec.load ~out_cols:c.Compiler.out_cols lir in
  (* rows = 0 is valid and yields an empty result *)
  check tint "rows=0 -> empty" 0
    (Array.length (Exec.execute t ~flat:[||] ~rows:0 ~num_features:2));
  (match Exec.execute t ~flat:[| 1.0 |] ~rows:(-1) ~num_features:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rows must be rejected");
  (match Exec.execute t ~flat:[| 1.0 |] ~rows:1 ~num_features:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "num_features=0 must be rejected");
  (match Exec.execute t ~flat:[| 1.0; 2.0; 3.0 |] ~rows:1 ~num_features:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flat size mismatch must be rejected");
  match Exec.execute_rows t [| [| 1.0; 2.0 |]; [| 3.0 |] |] with
  | exception Invalid_argument msg ->
      check tbool "ragged message names the row" true
        (Astring_contains.contains msg "row 1")
  | _ -> Alcotest.fail "ragged rows must be rejected"

let test_exec_load_validation () =
  let _, lir = compiled_cpu () in
  (match Exec.load ~batch_size:0 ~out_cols:1 lir with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "batch_size=0 must be rejected");
  (* threads <= 0 means auto-detect (docs/PERFORMANCE.md §5), not an error *)
  let t = Exec.load ~threads:0 ~out_cols:1 lir in
  check tbool "threads=0 resolves to >= 1 workers" true (Exec.threads t >= 1);
  check tbool "auto matches the advertised resolution" true
    (Exec.threads t = Exec.auto_threads ());
  Exec.shutdown t

(* Feeding a 2-feature kernel 1-feature rows makes the kernel index out
   of bounds inside a chunk: exactly one Chunk_error must surface, with
   every worker domain joined first. *)
let test_chunk_error () =
  let c, lir = compiled_cpu () in
  let t = Exec.load ~batch_size:2 ~threads:4 ~out_cols:c.Compiler.out_cols lir in
  let rows = 16 in
  let flat = Array.make rows 0.5 in
  match Exec.execute t ~flat ~rows ~num_features:1 with
  | exception Exec.Chunk_error e ->
      check tbool "failing chunk within range" true
        (e.Exec.chunk_lo >= 0 && e.Exec.chunk_hi <= rows
        && e.Exec.chunk_lo < e.Exec.chunk_hi);
      check tbool "message not empty" true (String.length e.Exec.message > 0)
  | _ -> Alcotest.fail "expected Chunk_error"

let test_multithread_deterministic () =
  let t = small_model () in
  let rng = Spnc_data.Rng.create ~seed:4242 in
  let rows =
    Array.init 64 (fun _ ->
        Array.init 2 (fun _ -> Spnc_data.Rng.range rng (-2.0) 2.0))
  in
  let run threads =
    let options =
      { Options.default with Options.threads; batch_size = 4 }
    in
    Compiler.execute (Compiler.compile ~options t) rows
  in
  let one = run 1 and four = run 4 in
  Array.iteri
    (fun i a ->
      if a <> four.(i) then
        Alcotest.failf "row %d: 1-thread %.17g <> 4-thread %.17g" i a four.(i))
    one

(* -- Differential fuzzing ------------------------------------------------------- *)

let cpu_oracle level =
  {
    Fuzz.oracle_name = "cpu-" ^ Spnc_cpu.Optimizer.level_to_string level;
    eval =
      (fun m data ->
        let options =
          { Options.default with Options.opt_level = level; threads = 1 }
        in
        Compiler.execute (Compiler.compile ~options m) data);
  }

let all_cpu_oracles =
  List.map cpu_oracle
    [ Spnc_cpu.Optimizer.O0; Spnc_cpu.Optimizer.O1; Spnc_cpu.Optimizer.O2;
      Spnc_cpu.Optimizer.O3 ]

let test_fuzz_clean () =
  for id = 0 to 9 do
    let case = Fuzz.gen_case ~seed:11 ~id () in
    match Fuzz.check_case ~oracles:all_cpu_oracles case with
    | None -> ()
    | Some f -> Alcotest.failf "case %d: %a" id Fuzz.pp_failure_kind f.Fuzz.kind
  done

let test_fuzz_deterministic () =
  let a = Fuzz.gen_case ~seed:5 ~id:3 () and b = Fuzz.gen_case ~seed:5 ~id:3 () in
  check tint "same node count"
    (Model.node_count a.Fuzz.model)
    (Model.node_count b.Fuzz.model);
  check tbool "same data" true (a.Fuzz.data = b.Fuzz.data)

(* The harness must detect a real miscompile and shrink it: enable the
   deliberately unsound peephole and fuzz until it is caught. *)
let test_fuzz_catches_injected_miscompile () =
  Spnc_cpu.Optimizer.inject_bad_peephole := true;
  Fun.protect
    ~finally:(fun () -> Spnc_cpu.Optimizer.inject_bad_peephole := false)
    (fun () ->
      let oracles = [ cpu_oracle Spnc_cpu.Optimizer.O2 ] in
      let caught = ref None in
      let id = ref 0 in
      while !caught = None && !id < 20 do
        let case = Fuzz.gen_case ~seed:13 ~id:!id () in
        (match Fuzz.check_case ~oracles case with
        | Some f -> caught := Some (case, f)
        | None -> ());
        incr id
      done;
      match !caught with
      | None -> Alcotest.fail "injected miscompile never detected"
      | Some (case, _) ->
          let shrunk, shrunk_data =
            Fuzz.shrink
              ~still_fails:(fun m d -> Fuzz.check ~oracles m d <> None)
              case.Fuzz.model case.Fuzz.data
          in
          check tbool "model shrank or stayed" true
            (Model.node_count shrunk <= Model.node_count case.Fuzz.model);
          check tbool "rows shrank or stayed" true
            (Array.length shrunk_data <= Array.length case.Fuzz.data);
          check tbool "shrunk case still fails" true
            (Fuzz.check ~oracles shrunk shrunk_data <> None))

let test_fuzz_generates_valid_models () =
  for id = 0 to 19 do
    let case = Fuzz.gen_case ~seed:99 ~id () in
    match Spnc_spn.Validate.check case.Fuzz.model with
    | [] -> ()
    | issues ->
        Alcotest.failf "case %d invalid: %s" id
          (Spnc_spn.Validate.issues_to_string issues)
  done

(* -- Reproducer ----------------------------------------------------------------- *)

let test_reproducer_write () =
  let dir = Filename.temp_file "spnc-test" "" in
  Sys.remove dir;
  (match
     Reproducer.write ~dir
       ~extra:[ ("note.txt", "hello") ]
       ~ir:"module @m {\n}\n" ~pipeline:"verify" ~options:"none"
       ~diag:"error: nothing actually" ()
   with
  | Error e -> Alcotest.failf "write failed: %s" e
  | Ok b ->
      check tstr "ir round-trips" "module @m {\n}\n" (Reproducer.read_file b "ir.mlir");
      check tstr "extra file" "hello" (Reproducer.read_file b "note.txt");
      check tbool "README mentions spnc_opt replay" true
        (Astring_contains.contains (Reproducer.read_file b "README.txt") "spnc_opt"));
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

(* -- Deterministic fault injection (docs/RESILIENCE.md §3) --------------------- *)

let test_fault_decide_deterministic () =
  (* the decision stream is a pure function of its coordinates *)
  for occ = 0 to 9 do
    let a = Fault.decide ~seed:7 ~point:"p.x" ~occurrence:occ in
    let b = Fault.decide ~seed:7 ~point:"p.x" ~occurrence:occ in
    check tbool "same coordinates, same draw" true (a = b);
    check tbool "draw in [0,1)" true (a >= 0.0 && a < 1.0)
  done;
  (* distinct coordinates decorrelate *)
  check tbool "seed changes the stream" true
    (Fault.decide ~seed:1 ~point:"p.x" ~occurrence:0
    <> Fault.decide ~seed:2 ~point:"p.x" ~occurrence:0);
  check tbool "point name changes the stream" true
    (Fault.decide ~seed:1 ~point:"p.x" ~occurrence:0
    <> Fault.decide ~seed:1 ~point:"p.y" ~occurrence:0)

let test_fault_replay_identical () =
  let record () =
    Fault.reset_for_tests ();
    Fault.arm ~seed:99 ~rate:0.5 ();
    let fired = List.init 64 (fun _ -> Fault.fire "replay.point") in
    Fault.reset_for_tests ();
    fired
  in
  let a = record () and b = record () in
  check tbool "armed firing sequence replays exactly" true (a = b);
  check tbool "roughly rate-proportional" true
    (let n = List.length (List.filter Fun.id a) in
     n > 10 && n < 54)

let test_fault_point_families () =
  Fault.reset_for_tests ();
  Fault.arm ~points:[ "kcache." ] ~seed:5 ~rate:1.0 ();
  Fun.protect ~finally:Fault.reset_for_tests (fun () ->
      check tbool "family member fires" true (Fault.fire "kcache.read_bitflip");
      check tbool "other families stay quiet" false (Fault.fire "pool.chunk_fail");
      check tint "suppressed point never counted as fired" 0
        (Fault.fired_count "pool.chunk_fail"))

let test_fault_arm_from_env () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "SPNC_CHAOS" "";
      Fault.reset_for_tests ())
    (fun () ->
      Unix.putenv "SPNC_CHAOS" "seed=5,rate=0.25,points=kcache.;jit.build_fail";
      Fault.arm_from_env ();
      (match Fault.armed () with
      | Some s ->
          check tint "seed parsed" 5 s.Fault.seed;
          check tbool "rate parsed" true (s.Fault.rate = 0.25);
          check
            (Alcotest.option (Alcotest.list tstr))
            "points parsed"
            (Some [ "kcache."; "jit.build_fail" ])
            s.Fault.points
      | None -> Alcotest.fail "well-formed SPNC_CHAOS must arm");
      (* malformed values must never crash the host process *)
      Fault.disarm ();
      Unix.putenv "SPNC_CHAOS" "rate=banana";
      Fault.arm_from_env ();
      check tbool "malformed env leaves the registry disarmed" true
        (Fault.armed () = None))

let test_reproducer_write_under_injected_fault () =
  let dir = Filename.temp_file "spnc-test" "" in
  Sys.remove dir;
  Fault.reset_for_tests ();
  Fault.arm ~points:[ "repro.write_fail" ] ~seed:8 ~rate:1.0 ();
  Fun.protect
    ~finally:(fun () ->
      Fault.reset_for_tests ();
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      (match
         Reproducer.write ~dir ~ir:"module @m {\n}\n" ~pipeline:"verify"
           ~options:"none" ~diag:"d" ()
       with
      | Error _ -> () (* a structured error, not an exception *)
      | Ok _ -> Alcotest.fail "injected write fault must fail the bundle");
      Fault.disarm ();
      (* and the same write succeeds once the fault clears *)
      match
        Reproducer.write ~dir ~ir:"module @m {\n}\n" ~pipeline:"verify"
          ~options:"none" ~diag:"d" ()
      with
      | Ok b ->
          check tstr "bundle usable after recovery" "module @m {\n}\n"
            (Reproducer.read_file b "ir.mlir")
      | Error e -> Alcotest.failf "clean retry failed: %s" e)

(* The jit cell must stay retryable after an injected build failure —
   the Lazy.t it replaced would poison permanently. *)
let test_force_jit_retryable () =
  Compiler.reset_kernel_cache ();
  let options = { Options.default with Options.engine = Spnc_cpu.Jit.Jit } in
  let c = Compiler.compile ~options (small_model ()) in
  Fault.reset_for_tests ();
  Fault.arm ~points:[ "jit.build_fail" ] ~seed:2 ~rate:1.0 ();
  Fun.protect ~finally:Fault.reset_for_tests (fun () ->
      (match Compiler.execute c small_rows with
      | exception Fault.Transient _ -> ()
      | _ -> Alcotest.fail "expected the injected JIT build failure");
      Fault.disarm ();
      (* same compiled value, same cell: the retry must succeed *)
      let out = Compiler.execute c small_rows in
      let expected =
        Spnc_spn.Infer.log_likelihood_batch (small_model ()) small_rows
      in
      Array.iteri
        (fun i e ->
          if Float.abs (out.(i) -. e) > 1e-9 then
            Alcotest.failf "row %d: expected %.12g got %.12g" i e out.(i))
        expected)

let suite =
  [
    Alcotest.test_case "diag: fail raises structured error" `Quick test_diag_fail;
    Alcotest.test_case "diag: of_exn normalizes" `Quick test_diag_of_exn;
    Alcotest.test_case "pass: verifier blames the breaking pass" `Quick
      test_checked_verifier_blames_pass;
    Alcotest.test_case "pass: exception barrier captures throws" `Quick
      test_checked_captures_exception;
    Alcotest.test_case "pass: failure writes a reproducer bundle" `Quick
      test_checked_writes_bundle;
    Alcotest.test_case "pass: legacy Pipeline_error preserved" `Quick
      test_legacy_pipeline_error;
    Alcotest.test_case "compiler: debug_fail_stage isolated" `Quick
      test_debug_fail_stage_isolated;
    Alcotest.test_case "guard: Fail policy raises" `Quick test_guard_fail;
    Alcotest.test_case "guard: Warn passes values through" `Quick
      test_guard_warn_passes_through;
    Alcotest.test_case "guard: Clamp replaces bad values" `Quick test_guard_clamp;
    Alcotest.test_case "guard: scan/clamp unit behaviour" `Quick
      test_guard_scan_and_clamp_unit;
    Alcotest.test_case "gpu: fallback to CPU with diagnostic" `Quick
      test_gpu_fallback;
    Alcotest.test_case "gpu: fallback disabled propagates" `Quick
      test_gpu_fallback_disabled;
    Alcotest.test_case "exec: input validation" `Quick test_exec_validation;
    Alcotest.test_case "exec: load validation" `Quick test_exec_load_validation;
    Alcotest.test_case "exec: chunk failure surfaces once" `Quick
      test_chunk_error;
    Alcotest.test_case "exec: multi-thread bit-identical" `Quick
      test_multithread_deterministic;
    Alcotest.test_case "fuzz: clean run over all -O levels" `Slow test_fuzz_clean;
    Alcotest.test_case "fuzz: generation is deterministic" `Quick
      test_fuzz_deterministic;
    Alcotest.test_case "fuzz: catches and shrinks injected miscompile" `Slow
      test_fuzz_catches_injected_miscompile;
    Alcotest.test_case "fuzz: generated models are valid" `Quick
      test_fuzz_generates_valid_models;
    Alcotest.test_case "reproducer: bundle layout" `Quick test_reproducer_write;
    Alcotest.test_case "fault: decision stream deterministic" `Quick
      test_fault_decide_deterministic;
    Alcotest.test_case "fault: armed schedule replays exactly" `Quick
      test_fault_replay_identical;
    Alcotest.test_case "fault: point families prefix-match" `Quick
      test_fault_point_families;
    Alcotest.test_case "fault: SPNC_CHAOS env arming" `Quick
      test_fault_arm_from_env;
    Alcotest.test_case "reproducer: structured error under injected I/O fault"
      `Quick test_reproducer_write_under_injected_fault;
    Alcotest.test_case "jit cell: retryable after injected build failure"
      `Quick test_force_jit_retryable;
  ]
