(** Differential tests of the target-independent pipeline: SPN model →
    HiSPN → LoSPN → (partitioning) → bufferization → buffer optimization,
    checked at each stage by the verifier and, at the end, by executing
    the bufferized kernel with {!Spnc_lospn.Interp} against the reference
    evaluator {!Spnc_spn.Infer}. *)

open Spnc_mlir
open Spnc_spn
module Rng = Spnc_data.Rng

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let example_spn () =
  let g00 = Model.gaussian ~var:0 ~mean:0.0 ~stddev:1.0 in
  let g01 = Model.gaussian ~var:1 ~mean:1.0 ~stddev:0.5 in
  let g10 = Model.gaussian ~var:0 ~mean:2.0 ~stddev:1.5 in
  let g11 = Model.gaussian ~var:1 ~mean:(-1.0) ~stddev:1.0 in
  Model.make ~name:"example" ~num_features:2
    (Model.sum
       [
         (0.3, Model.product [ g00; g01 ]);
         (0.7, Model.product [ g10; g11 ]);
       ])

let mixed_spn () =
  let c = Model.categorical ~var:0 ~probs:[| 0.1; 0.6; 0.3 |] in
  let h = Model.histogram ~var:1 ~breaks:[| 0; 1; 3 |] ~densities:[| 0.6; 0.2 |] in
  let g = Model.gaussian ~var:2 ~mean:0.5 ~stddev:2.0 in
  Model.make ~name:"mixed" ~num_features:3
    (Model.sum
       [
         (0.4, Model.product [ c; h; g ]);
         ( 0.6,
           Model.product
             [
               Model.categorical ~var:0 ~probs:[| 0.3; 0.3; 0.4 |];
               Model.histogram ~var:1 ~breaks:[| 0; 2; 3 |] ~densities:[| 0.4; 0.2 |];
               Model.gaussian ~var:2 ~mean:(-1.0) ~stddev:0.5;
             ] );
       ])

(* -- HiSPN translation ------------------------------------------------------ *)

let test_hispn_translation_valid () =
  let m = Spnc_hispn.From_model.translate (example_spn ()) in
  match Verifier.verify m with
  | [] -> ()
  | errs -> Alcotest.failf "invalid HiSPN: %s" (Verifier.errors_to_string errs)

let test_hispn_preserves_sharing () =
  let shared = Model.gaussian ~var:0 ~mean:0.0 ~stddev:1.0 in
  let t =
    Model.make ~num_features:2
      (Model.sum
         [
           (0.5, Model.product [ shared; Model.gaussian ~var:1 ~mean:0.0 ~stddev:1.0 ]);
           (0.5, Model.product [ shared; Model.gaussian ~var:1 ~mean:2.0 ~stddev:1.0 ]);
         ])
  in
  let m = Spnc_hispn.From_model.translate t in
  check tint "one gaussian per unique leaf" 3
    (Ir.count_ops (fun o -> o.Ir.name = "hi_spn.gaussian") m)

let test_hispn_structure () =
  let m = Spnc_hispn.From_model.translate (example_spn ()) in
  check tint "one query" 1 (Ir.count_ops (fun o -> o.Ir.name = "hi_spn.joint_query") m);
  check tint "one graph" 1 (Ir.count_ops (fun o -> o.Ir.name = "hi_spn.graph") m);
  check tint "one root" 1 (Ir.count_ops (fun o -> o.Ir.name = "hi_spn.root") m);
  check tint "one sum" 1 (Ir.count_ops (fun o -> o.Ir.name = "hi_spn.sum") m);
  check tint "two products" 2 (Ir.count_ops (fun o -> o.Ir.name = "hi_spn.product") m)

let test_hispn_canonicalize_single_input () =
  (* a sum with a single child (weight 1) collapses during canonicalization *)
  let inner = Model.gaussian ~var:0 ~mean:0.0 ~stddev:1.0 in
  let t = Model.make ~num_features:1 (Model.sum [ (1.0, inner) ]) in
  let m = Spnc_hispn.From_model.translate t in
  check tint "sum present before" 1 (Ir.count_ops (fun o -> o.Ir.name = "hi_spn.sum") m);
  let m' = Canonicalize.run m in
  check tint "sum collapsed" 0 (Ir.count_ops (fun o -> o.Ir.name = "hi_spn.sum") m');
  match Verifier.verify m' with
  | [] -> ()
  | errs -> Alcotest.failf "invalid after canonicalize: %s" (Verifier.errors_to_string errs)

(* -- HiSPN -> LoSPN ----------------------------------------------------------- *)

let lower ?(space = Spnc_lospn.Lower_hispn.Auto) ?(support_marginal = false) t =
  let query =
    { Spnc_hispn.From_model.default_query with support_marginal }
  in
  let hi = Spnc_hispn.From_model.translate ~query t in
  Spnc_lospn.Lower_hispn.run
    ~options:{ Spnc_lospn.Lower_hispn.default_options with space }
    hi

let test_lospn_valid () =
  let m = lower (example_spn ()) in
  match Verifier.verify m with
  | [] -> ()
  | errs -> Alcotest.failf "invalid LoSPN: %s" (Verifier.errors_to_string errs)

let test_lospn_binary_decomposition () =
  let m = lower (example_spn ()) in
  (* every lo_spn.mul/add has exactly two operands by construction; the
     verifier enforces it, so just check they exist *)
  check tbool "has mul" true (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.mul") m > 0);
  check tbool "has add" true (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.add") m > 0);
  check tint "one kernel" 1 (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.kernel") m);
  check tint "one task" 1 (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.task") m)

let test_datatype_selection_deep_graph_uses_log () =
  (* a deep chain of products of small probabilities must select log space *)
  let leaves =
    List.init 60 (fun i -> Model.categorical ~var:i ~probs:[| 0.001; 0.999 |])
  in
  let t = Model.make ~num_features:60 (Model.product leaves) in
  let hi = Spnc_hispn.From_model.translate t in
  let query =
    match hi.Ir.mops with [ q ] -> q | _ -> Alcotest.fail "expected one query"
  in
  let graph =
    List.find (fun (o : Ir.op) -> o.Ir.name = "hi_spn.graph") (Ir.single_region_ops query)
  in
  let ops = (Option.get (Ir.entry_block graph)).Ir.bops in
  let choice =
    Spnc_lospn.Lower_hispn.choose_datatype
      ~options:Spnc_lospn.Lower_hispn.default_options ops
  in
  check tbool "log space selected" true choice.Spnc_lospn.Lower_hispn.use_log_space

let test_datatype_selection_shallow_stays_linear () =
  let t = example_spn () in
  let hi = Spnc_hispn.From_model.translate t in
  let query = List.hd hi.Ir.mops in
  let graph =
    List.find (fun (o : Ir.op) -> o.Ir.name = "hi_spn.graph") (Ir.single_region_ops query)
  in
  let ops = (Option.get (Ir.entry_block graph)).Ir.bops in
  let choice =
    Spnc_lospn.Lower_hispn.choose_datatype
      ~options:Spnc_lospn.Lower_hispn.default_options ops
  in
  check tbool "linear retained" false choice.Spnc_lospn.Lower_hispn.use_log_space

(* -- Full pipeline to bufferized LoSPN, executed by the interpreter ---------- *)

let pipeline ?space ?support_marginal ?partition_size t =
  let m = lower ?space ?support_marginal t in
  let m = Canonicalize.run m in
  let m =
    match partition_size with
    | Some s ->
        Spnc_lospn.Partition_pass.run
          ~options:
            { Spnc_lospn.Partition_pass.default_options with max_partition_size = s }
          m
    | None -> m
  in
  let m = Spnc_lospn.Bufferize.run m in
  let m = Spnc_lospn.Buffer_opt.run m in
  (match Verifier.verify m with
  | [] -> ()
  | errs -> Alcotest.failf "invalid final module: %s" (Verifier.errors_to_string errs));
  m

let flat_inputs (rows : float array array) =
  Array.concat (Array.to_list rows)

let differential_test ?space ?support_marginal ?partition_size ~tol t rows =
  let m = pipeline ?space ?support_marginal ?partition_size t in
  let flat = flat_inputs rows in
  let out =
    Spnc_lospn.Interp.run_kernel m ~inputs:[ flat ] ~rows:(Array.length rows)
  in
  let is_log =
    Ir.find_ops (fun o -> o.Ir.name = "lo_spn.kernel") m
    |> List.hd
    |> fun k ->
    match Ir.type_attr k "function_type" with
    | Some (Types.Func (args, _)) -> (
        match List.rev args with
        | Types.MemRef (_, Types.Log _) :: _ -> true
        | _ -> false)
    | _ -> false
  in
  (* out buffer may have several slots per sample (partitioned kernels
     reserve slot 0 for the result); rows are the dynamic dim and the
     output is transposed, so slot 0 occupies the first [rows] entries *)
  Array.iteri
    (fun i row ->
      let expected = Infer.log_likelihood t row in
      let got = out.(i) in
      let got_log = if is_log then got else log got in
      if Float.abs (got_log -. expected) > tol then
        Alcotest.failf "row %d: expected %.12f got %.12f" i expected got_log)
    rows

let random_rows rng n f =
  Array.init n (fun _ -> Array.init f (fun _ -> Rng.range rng (-3.0) 3.0))

let test_e2e_linear () =
  let rng = Rng.create ~seed:21 in
  differential_test ~space:Spnc_lospn.Lower_hispn.Force_linear ~tol:1e-9
    (example_spn ()) (random_rows rng 64 2)

let test_e2e_log () =
  let rng = Rng.create ~seed:22 in
  differential_test ~space:Spnc_lospn.Lower_hispn.Force_log ~tol:1e-9
    (example_spn ()) (random_rows rng 64 2)

let test_e2e_mixed_leaves () =
  let rng = Rng.create ~seed:23 in
  let rows =
    Array.init 40 (fun _ ->
        [|
          float_of_int (Rng.int rng 4);
          float_of_int (Rng.int rng 4);
          Rng.range rng (-3.0) 3.0;
        |])
  in
  differential_test ~space:Spnc_lospn.Lower_hispn.Force_log ~tol:1e-9
    (mixed_spn ()) rows

let test_e2e_marginal () =
  let rng = Rng.create ~seed:24 in
  let rows =
    Array.map
      (fun (row : float array) ->
        Array.map (fun v -> if Rng.float rng < 0.3 then Float.nan else v) row)
      (random_rows rng 64 2)
  in
  differential_test ~space:Spnc_lospn.Lower_hispn.Force_log
    ~support_marginal:true ~tol:1e-9 (example_spn ()) rows

let test_e2e_random_spns () =
  let rng = Rng.create ~seed:25 in
  for i = 0 to 2 do
    let cfg = { Random_spn.default_config with num_features = 8; max_depth = 5 } in
    let t = Random_spn.generate rng cfg in
    let rows = random_rows (Rng.create ~seed:(100 + i)) 20 8 in
    differential_test ~space:Spnc_lospn.Lower_hispn.Force_log ~tol:1e-8 t rows
  done

(* -- Partitioning pass --------------------------------------------------------- *)

let big_spn rng =
  Random_spn.generate_sized rng
    { Random_spn.default_config with num_features = 12; max_depth = 7 }
    ~min_ops:400

let test_partition_pass_splits () =
  let rng = Rng.create ~seed:26 in
  let t = big_spn rng in
  let m = lower ~space:Spnc_lospn.Lower_hispn.Force_log t in
  let m' =
    Spnc_lospn.Partition_pass.run
      ~options:{ Spnc_lospn.Partition_pass.default_options with max_partition_size = 100 }
      m
  in
  (match Verifier.verify m' with
  | [] -> ()
  | errs -> Alcotest.failf "invalid after partitioning: %s" (Verifier.errors_to_string errs));
  check tbool "multiple tasks" true
    (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.task") m' > 1)

let test_partition_pass_preserves_semantics () =
  let rng = Rng.create ~seed:27 in
  let t = big_spn rng in
  let rows = random_rows (Rng.create ~seed:28) 16 12 in
  differential_test ~space:Spnc_lospn.Lower_hispn.Force_log ~partition_size:80
    ~tol:1e-8 t rows

let test_partition_pass_small_graph_untouched () =
  let t = example_spn () in
  let m = lower t in
  let m' = Spnc_lospn.Partition_pass.run m in
  check tint "single task kept" 1 (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.task") m')

(* -- Bufferization ---------------------------------------------------------------- *)

let test_bufferize_converts_types () =
  let m = lower (example_spn ()) in
  let m' = Spnc_lospn.Bufferize.run m in
  check tint "no tensors left" 0
    (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.batch_extract") m');
  check tbool "batch_read present" true
    (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.batch_read") m' > 0);
  check tbool "batch_write present" true
    (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.batch_write") m' > 0);
  (* naive bufferization inserts a copy *)
  check tint "copy inserted" 1 (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.copy") m')

let test_buffer_opt_removes_copy () =
  let m = lower (example_spn ()) in
  let m = Spnc_lospn.Bufferize.run m in
  let m' = Spnc_lospn.Buffer_opt.run m in
  check tint "copy eliminated" 0 (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.copy") m');
  check tint "final alloc eliminated" 0
    (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.alloc") m')

let test_buffer_opt_deallocs_match_allocs () =
  let rng = Rng.create ~seed:29 in
  let t = big_spn rng in
  let m = lower ~space:Spnc_lospn.Lower_hispn.Force_log t in
  let m =
    Spnc_lospn.Partition_pass.run
      ~options:{ Spnc_lospn.Partition_pass.default_options with max_partition_size = 100 }
      m
  in
  let m = Spnc_lospn.Bufferize.run m in
  let m' = Spnc_lospn.Buffer_opt.run m in
  let allocs = Ir.count_ops (fun o -> o.Ir.name = "lo_spn.alloc") m' in
  let deallocs = Ir.count_ops (fun o -> o.Ir.name = "lo_spn.dealloc") m' in
  check tint "alloc/dealloc balance" allocs deallocs

(* -- Provenance locations ----------------------------------------------------- *)

(* the set of SPN node ids appearing as op locations anywhere in a module *)
let loc_nodes m =
  let ids = ref [] in
  Ir.walk
    (fun (o : Ir.op) ->
      match Loc.node_id o.Ir.loc with
      | Some n -> ids := n :: !ids
      | None -> ())
    m;
  List.sort_uniq compare !ids

let test_loc_survives_lowering () =
  let t = example_spn () in
  let hi = Spnc_hispn.From_model.translate t in
  let hi_nodes = loc_nodes hi in
  (* every SPN op minted by the translation is located: the example model
     has 1 sum + 2 products + 4 gaussians = 7 distinct nodes *)
  check tint "7 located HiSPN nodes" 7 (List.length hi_nodes);
  let count_located m =
    Ir.count_ops
      (fun o ->
        String.length o.Ir.name >= 7
        && String.sub o.Ir.name 0 7 = "hi_spn."
        && (match o.Ir.name with
           | "hi_spn.joint_query" | "hi_spn.graph" | "hi_spn.root" -> false
           | _ -> true)
        && Loc.is_known o.Ir.loc)
      m
  in
  check tint "every sum/product/leaf op carries a loc" 7 (count_located hi);
  (* lowering to LoSPN keeps provenance: each surviving node id was a
     HiSPN node id, and the arithmetic body is still fully attributed *)
  let lo = lower t in
  let lo_nodes = loc_nodes lo in
  check tbool "LoSPN locs are a subset of HiSPN locs" true
    (List.for_all (fun n -> List.mem n hi_nodes) lo_nodes);
  check tbool "leaf provenance survives" true
    (Ir.count_ops
       (fun o -> o.Ir.name = "lo_spn.gaussian" && Loc.is_known o.Ir.loc)
       lo
    = Ir.count_ops (fun o -> o.Ir.name = "lo_spn.gaussian") lo);
  check tbool "sum/mul provenance survives" true
    (Ir.count_ops
       (fun o ->
         (o.Ir.name = "lo_spn.add" || o.Ir.name = "lo_spn.mul")
         && Loc.is_known o.Ir.loc)
       lo
    > 0);
  (* ...and survives bufferization + the full pipeline to the kernel *)
  let full = pipeline t in
  check tbool "locs survive the full lowering pipeline" true
    (loc_nodes full <> [])

let test_print_parse_lowered_module () =
  (* the full textual format handles real lowered modules *)
  let m = pipeline (example_spn ()) in
  let s = Printer.modul_to_string m in
  match Parser.modul_of_string s with
  | m' -> check Alcotest.string "roundtrip" s (Printer.modul_to_string m')
  | exception Parser.Error e -> Alcotest.failf "parse error: %s" e

let suite =
  [
    Alcotest.test_case "hispn translation valid" `Quick test_hispn_translation_valid;
    Alcotest.test_case "hispn preserves sharing" `Quick test_hispn_preserves_sharing;
    Alcotest.test_case "hispn structure" `Quick test_hispn_structure;
    Alcotest.test_case "hispn canonicalize single input" `Quick test_hispn_canonicalize_single_input;
    Alcotest.test_case "lospn valid" `Quick test_lospn_valid;
    Alcotest.test_case "lospn binary decomposition" `Quick test_lospn_binary_decomposition;
    Alcotest.test_case "datatype: deep graph -> log" `Quick test_datatype_selection_deep_graph_uses_log;
    Alcotest.test_case "datatype: shallow -> linear" `Quick test_datatype_selection_shallow_stays_linear;
    Alcotest.test_case "e2e linear" `Quick test_e2e_linear;
    Alcotest.test_case "e2e log" `Quick test_e2e_log;
    Alcotest.test_case "e2e mixed leaves" `Quick test_e2e_mixed_leaves;
    Alcotest.test_case "e2e marginal" `Quick test_e2e_marginal;
    Alcotest.test_case "e2e random spns" `Slow test_e2e_random_spns;
    Alcotest.test_case "partition pass splits" `Quick test_partition_pass_splits;
    Alcotest.test_case "partition preserves semantics" `Quick test_partition_pass_preserves_semantics;
    Alcotest.test_case "partition leaves small graphs" `Quick test_partition_pass_small_graph_untouched;
    Alcotest.test_case "bufferize converts" `Quick test_bufferize_converts_types;
    Alcotest.test_case "buffer_opt removes copy" `Quick test_buffer_opt_removes_copy;
    Alcotest.test_case "alloc/dealloc balance" `Quick test_buffer_opt_deallocs_match_allocs;
    Alcotest.test_case "loc survives lowering" `Quick test_loc_survives_lowering;
    Alcotest.test_case "print/parse lowered module" `Quick test_print_parse_lowered_module;
  ]
