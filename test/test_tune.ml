(** Tests for the Fig. 6 design-space explorer and auto-tuner
    (docs/PERFORMANCE.md §7): fingerprint sensitivity of every tuned
    knob, lattice enumeration/dedup, tuner determinism, bit-identity of
    measured candidates, profile-feedback pruning, per-task refinement,
    tuned-config JSON round-trips and the digest-keyed cache. *)

module Tune = Spnc_tune.Tune
module Options = Spnc.Options
module Compiler = Spnc.Compiler
module Optimizer = Spnc_cpu.Optimizer
module M = Spnc_machine.Machine
module Json = Spnc_obs.Json
module Rng = Spnc_data.Rng

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let with_tmp_dir f =
  let dir = Filename.temp_file "spnc-tune" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

(* small speaker-ID-config model: Gaussian-heavy, like the paper's *)
let model =
  lazy
    (let rng = Rng.create ~seed:4611 in
     Spnc_spn.Random_spn.generate_sized rng ~name:"tune-speaker"
       Spnc_spn.Random_spn.speaker_id_config ~min_ops:300)

let data rows =
  let m = Lazy.force model in
  let rng = Rng.create ~seed:4612 in
  Array.init rows (fun _ ->
      Array.init m.Spnc_spn.Model.num_features (fun _ ->
          Rng.range rng (-3.0) 3.0))

(* vectorized AVX2 base so every knob of the lattice is live *)
let base =
  {
    Options.default with
    machine = M.ryzen_3900xt;
    vectorize = true;
    use_veclib = true;
    use_shuffle = true;
  }

let stats () = Spnc_spn.Stats.compute (Lazy.force model)

(* -- Satellite: fingerprint sensitivity of every tuner-varied knob ---------- *)

let test_fingerprint_sensitivity () =
  (* every knob the tuner varies must be visible to the kernel-cache
     fingerprint — a blind knob would alias distinct artifacts *)
  let flips =
    [
      ("opt_level", { base with Options.opt_level = Optimizer.O3 });
      ("vectorize", { base with Options.vectorize = false });
      ("use_veclib", { base with Options.use_veclib = false });
      ("use_shuffle", { base with Options.use_shuffle = false });
      ("use_gather_tables", { base with Options.use_gather_tables = true });
      ("max_partition_size", { base with Options.max_partition_size = Some 64 });
      ( "machine.veclib",
        {
          base with
          Options.machine = { M.ryzen_3900xt with M.veclib = M.No_veclib };
        } );
      ("batch_size", { base with Options.batch_size = 512 });
    ]
  in
  let fp0 = Options.fingerprint base in
  List.iter
    (fun (name, o) ->
      check tbool
        (Printf.sprintf "flipping %s changes the fingerprint" name)
        true
        (Options.fingerprint o <> fp0))
    flips;
  (* pairwise distinct too: no two flips alias each other *)
  let fps = List.map (fun (_, o) -> Options.fingerprint o) flips in
  check tint "all flipped fingerprints pairwise distinct"
    (List.length fps)
    (List.length (List.sort_uniq compare fps));
  (* runtime-only knobs must NOT move the fingerprint (cache sharing) *)
  check tstr "threads is runtime-only" fp0
    (Options.fingerprint { base with Options.threads = 8 });
  check tstr "engine is runtime-only" fp0
    (Options.fingerprint { base with Options.engine = Spnc_cpu.Jit.Vm })

(* -- Lattice enumeration ---------------------------------------------------- *)

let test_enumerate () =
  let stats = stats () in
  let points = Tune.enumerate ~stats base in
  let fps = List.map Options.fingerprint points in
  check tint "lattice deduplicated by fingerprint" (List.length fps)
    (List.length (List.sort_uniq compare fps));
  check tbool "base configuration is in its own lattice" true
    (List.mem (Options.fingerprint base) fps);
  (* scalar points are canonicalized: exactly one scalar point per
     (level, partition) pair regardless of the veclib/shuffle knobs *)
  let scalars = List.filter (fun o -> not o.Options.vectorize) points in
  List.iter
    (fun (o : Options.t) ->
      check tbool "scalar point canonical" true
        (o.Options.use_veclib && o.Options.use_shuffle
        && not o.Options.use_gather_tables))
    scalars;
  (* dropping a knob shrinks the lattice *)
  let pruned = Tune.enumerate ~dropped:[ Tune.Opt_level ] ~stats base in
  check tbool "dropping opt_level shrinks the lattice" true
    (List.length pruned < List.length points);
  List.iter
    (fun (o : Options.t) ->
      check tbool "dropped knob pinned to base value" true
        (o.Options.opt_level = base.Options.opt_level))
    pruned;
  (* a scalar-only machine has no vector points at all *)
  let scalar_machine =
    { base with Options.machine = { M.ryzen_3900xt with M.isa = M.Scalar } }
  in
  let scalar_points = Tune.enumerate ~stats scalar_machine in
  List.iter
    (fun (o : Options.t) ->
      check tbool "no vector point on a scalar ISA" false o.Options.vectorize)
    scalar_points

(* -- Tuned-config JSON ------------------------------------------------------ *)

let test_config_roundtrip () =
  let configs =
    [
      base;
      { base with Options.vectorize = false };
      {
        base with
        Options.opt_level = Optimizer.O3;
        max_partition_size = Some 128;
        use_gather_tables = true;
      };
      {
        base with
        Options.machine = { M.xeon_9242 with M.veclib = M.No_veclib };
        use_veclib = false;
      };
    ]
  in
  List.iter
    (fun (o : Options.t) ->
      match Tune.config_of_json (Tune.config_to_json o) with
      | Ok o' ->
          check tstr "config JSON round-trips the compile fingerprint"
            (Options.fingerprint o) (Options.fingerprint o')
      | Error e -> Alcotest.fail ("round-trip failed: " ^ e))
    configs;
  (* malformed inputs are rejected with errors, not exceptions *)
  let reject j =
    match Tune.config_of_json j with Ok _ -> false | Error _ -> true
  in
  check tbool "rejects non-object" true (reject (Json.Str "nope"));
  check tbool "rejects bad version" true
    (reject
       (match Tune.config_to_json base with
       | Json.Obj fields ->
           Json.Obj
             (List.map
                (fun (k, v) ->
                  if k = "spnc_tuned_config" then (k, Json.Num 99.) else (k, v))
                fields)
       | _ -> assert false));
  check tbool "rejects unknown machine" true
    (reject
       (match Tune.config_to_json base with
       | Json.Obj fields ->
           Json.Obj
             (List.map
                (fun (k, v) ->
                  if k = "machine" then (k, Json.Str "quantum-9000") else (k, v))
                fields)
       | _ -> assert false))

let test_string_parsers () =
  List.iter
    (fun v ->
      check tbool "veclib_of_string inverts veclib_to_string" true
        (M.veclib_of_string (M.veclib_to_string v) = Some v))
    [ M.No_veclib; M.SVML; M.Libmvec ];
  check tbool "veclib_of_string rejects junk" true
    (M.veclib_of_string "avx-512" = None);
  List.iter
    (fun l ->
      check tbool "level_of_string inverts level_to_string" true
        (Optimizer.level_of_string (Optimizer.level_to_string l) = Some l))
    [ Optimizer.O0; Optimizer.O1; Optimizer.O2; Optimizer.O3 ];
  check tbool "level_of_string accepts bare form" true
    (Optimizer.level_of_string "O2" = Some Optimizer.O2);
  check tbool "level_of_string rejects junk" true
    (Optimizer.level_of_string "-O9" = None)

(* -- The explorer ----------------------------------------------------------- *)

let run_tune ?(use_profile = true) ?(measure = 4) ?cache_dir () =
  Compiler.reset_kernel_cache ();
  Tune.tune
    ~budget:{ Tune.measure; reps = 2 }
    ~use_profile ~profile_rows:32 ?cache_dir ~options:base ~data:(data 96)
    (Lazy.force model)

(* one search shared by every test that only reads the result *)
let shared_tune = lazy (run_tune ())

let test_tune_determinism () =
  let r1 = run_tune () and r2 = run_tune () in
  check tstr "same best label" r1.Tune.best.Tune.label r2.Tune.best.Tune.label;
  check tstr "same best fingerprint"
    (Options.fingerprint r1.Tune.best.Tune.options)
    (Options.fingerprint r2.Tune.best.Tune.options);
  check tint "same searched count" r1.Tune.searched r2.Tune.searched;
  List.iter2
    (fun (a : Tune.candidate) (b : Tune.candidate) ->
      check tstr "same candidate order" a.Tune.label b.Tune.label;
      check tbool "same deterministic estimate" true
        (a.Tune.est_seconds = b.Tune.est_seconds))
    r1.Tune.candidates r2.Tune.candidates

let test_tune_bit_identity_and_best () =
  let r = Lazy.force shared_tune in
  let measured =
    List.filter (fun c -> c.Tune.wall_seconds <> None) r.Tune.candidates
  in
  check tbool "budget produced measurements" true (measured <> []);
  check tbool "budget bounds the measured set" true
    (List.length measured <= r.Tune.budget.Tune.measure);
  List.iter
    (fun (c : Tune.candidate) ->
      check tbool
        (Printf.sprintf "measured candidate %s is bit-identical" c.Tune.label)
        true
        (c.Tune.identical = Some true))
    measured;
  (* the tuned pick is never slower (modelled) than the caller's config:
     the reference is itself a lattice point, so the winner at worst ties *)
  check tbool "best no slower than the reference" true
    (r.Tune.best.Tune.est_seconds <= r.Tune.reference.Tune.est_seconds);
  check tbool "searched within the full space" true
    (r.Tune.searched <= r.Tune.space_size)

let test_profile_pruning () =
  let r = Lazy.force shared_tune in
  match r.Tune.feedback with
  | None -> Alcotest.fail "profiled tune must carry feedback"
  | Some f ->
      (* speaker-ID models are Gaussian-heavy: libm calls dominate, so the
         veclib knob must survive; there are no discrete leaves, so the
         gather-tables dimension must be pruned *)
      check tbool "libm calls dominate the profile" true (f.Tune.fb_call_share > 0.2);
      check tbool "veclib knob survives" false
        (List.mem Tune.Veclib f.Tune.fb_dropped);
      check tbool "gather-tables knob pruned" true
        (List.mem Tune.Gather_tables f.Tune.fb_dropped);
      check tbool "pruning shrank the search" true
        (r.Tune.searched < r.Tune.space_size);
      (* the unprofiled search keeps the full lattice *)
      let r0 = run_tune ~use_profile:false () in
      check tbool "no profile, no feedback" true (r0.Tune.feedback = None);
      check tint "no profile, full lattice searched" r0.Tune.space_size
        r0.Tune.searched

let test_tuned_config_cache () =
  with_tmp_dir (fun dir ->
      let r1 = run_tune ~cache_dir:dir () in
      check tbool "first tune is a real search" false r1.Tune.from_cache;
      let r2 = run_tune ~cache_dir:dir () in
      check tbool "second tune served from the cache" true r2.Tune.from_cache;
      check tint "cache hit runs no search" 0 r2.Tune.searched;
      check tstr "cached best matches the searched best"
        (Options.fingerprint r1.Tune.best.Tune.options)
        (Options.fingerprint r2.Tune.best.Tune.options);
      match Tune.load_cached ~cache_dir:dir (Lazy.force model) with
      | None -> Alcotest.fail "load_cached must hit after a cached tune"
      | Some (o, label) ->
          check tstr "load_cached config fingerprint"
            (Options.fingerprint r1.Tune.best.Tune.options)
            (Options.fingerprint o);
          check tstr "load_cached label" r1.Tune.best.Tune.label label)

let test_result_json () =
  let r = Lazy.force shared_tune in
  let j = Tune.result_to_json r in
  check tbool "schema tag" true
    (Option.bind (Json.member "schema" j) Json.str = Some "spnc-dse-v1");
  (* the embedded best_config round-trips through Options *)
  (match Json.member "best_config" j with
  | None -> Alcotest.fail "result JSON must embed the winning config"
  | Some cj -> (
      match Tune.config_of_json cj with
      | Ok o ->
          check tstr "embedded config round-trips"
            (Options.fingerprint r.Tune.best.Tune.options)
            (Options.fingerprint o)
      | Error e -> Alcotest.fail e));
  (* and the whole report survives a print/parse cycle *)
  match Json.parse (Json.to_string_pretty j) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("result JSON reparse failed: " ^ e)

let test_invalid_args () =
  Alcotest.check_raises "GPU target rejected"
    (Invalid_argument
       "Tune.tune: the design-space explorer targets the CPU backend")
    (fun () ->
      ignore
        (Tune.tune
           ~options:{ base with Options.target = Options.Gpu }
           ~data:(data 8) (Lazy.force model)));
  Alcotest.check_raises "empty data rejected"
    (Invalid_argument "Tune.tune: empty sample set") (fun () ->
      ignore (Tune.tune ~options:base ~data:[||] (Lazy.force model)))

(* -- Spearman --------------------------------------------------------------- *)

(* The rank-correlation math itself is checked exactly on synthetic
   candidates; the live value is only bounds-checked, because host
   wall-clock and the MODELLED target time legitimately diverge across
   ISA classes (DESIGN.md §1) — which is exactly why the bench_check
   spearman gate is WARN-only. *)
let test_spearman () =
  let mk est wall =
    {
      Tune.label = Printf.sprintf "c%f" est;
      options = base;
      est_seconds = est;
      wall_seconds = Some wall;
      identical = Some true;
    }
  in
  let result_of candidates =
    {
      Tune.model_digest = "0";
      space_size = List.length candidates;
      searched = List.length candidates;
      budget = Tune.default_budget;
      feedback = None;
      candidates;
      reference = mk 1.0 1.0;
      best = mk 1.0 1.0;
      per_task = None;
      from_cache = false;
    }
  in
  let rho_exn r =
    match Tune.spearman r with Some v -> v | None -> Alcotest.fail "no rho"
  in
  let concordant = [ mk 1. 10.; mk 2. 20.; mk 3. 30.; mk 4. 40. ] in
  check (Alcotest.float 1e-9) "concordant ranking gives rho = 1" 1.0
    (rho_exn (result_of concordant));
  let reversed = [ mk 1. 40.; mk 2. 30.; mk 3. 20.; mk 4. 10. ] in
  check (Alcotest.float 1e-9) "reversed ranking gives rho = -1" (-1.0)
    (rho_exn (result_of reversed));
  check tbool "fewer than 3 measurements gives None" true
    (Tune.spearman (result_of [ mk 1. 1.; mk 2. 2. ]) = None);
  (* live run: well-formed whenever defined *)
  let r = Lazy.force shared_tune in
  match Tune.spearman r with
  | Some rho -> check tbool "live rho within [-1, 1]" true (Float.abs rho <= 1.0)
  | None -> ()

(* -- Per-task refinement ---------------------------------------------------- *)

let test_per_task_refinement () =
  (* partition the model into several tasks at -O1, profile it, and let
     the refinement raise the hot tasks to -O3 *)
  let options =
    {
      base with
      Options.max_partition_size = Some 600;
      opt_level = Optimizer.O1;
    }
  in
  Compiler.reset_kernel_cache ();
  let c = Compiler.compile ~options (Lazy.force model) in
  check tbool "model partitioned into several tasks" true
    (c.Compiler.num_tasks > 1);
  let rows = data 64 in
  let _, profile = Compiler.execute_profiled c rows in
  match Tune.refine_per_task ~base_level:Optimizer.O1 ~profile c rows with
  | None -> Alcotest.fail "partitioned artifact must yield per-task stats"
  | Some pt ->
      check tbool "one stat per task" true
        (List.length pt.Tune.pt_stats >= c.Compiler.num_tasks);
      let total_share =
        List.fold_left (fun acc t -> acc +. t.Tune.ts_share) 0. pt.Tune.pt_stats
      in
      check (Alcotest.float 1e-6) "shares sum to 1" 1.0 total_share;
      (* some task must be hot (>= 10%) with only a handful of tasks *)
      check tbool "hot tasks were raised to -O3" true pt.Tune.pt_refined;
      List.iter
        (fun (t : Tune.task_stat) ->
          if t.Tune.ts_share >= 0.10 then
            check tbool
              (Printf.sprintf "hot task %s at -O3" t.Tune.ts_fn)
              true
              (t.Tune.ts_level = Optimizer.O3))
        pt.Tune.pt_stats;
      check tbool "refined artifact is bit-identical" true
        (pt.Tune.pt_identical = Some true);
      check tbool "refined artifact was timed" true
        (pt.Tune.pt_wall_seconds <> None)

let suite =
  [
    Alcotest.test_case "fingerprint knob sensitivity" `Quick
      test_fingerprint_sensitivity;
    Alcotest.test_case "lattice enumeration and dedup" `Quick test_enumerate;
    Alcotest.test_case "tuned-config JSON round-trip" `Quick
      test_config_roundtrip;
    Alcotest.test_case "veclib/level string parsers" `Quick test_string_parsers;
    Alcotest.test_case "tuner determinism" `Quick test_tune_determinism;
    Alcotest.test_case "measured candidates bit-identical" `Quick
      test_tune_bit_identity_and_best;
    Alcotest.test_case "profile-feedback pruning" `Quick test_profile_pruning;
    Alcotest.test_case "tuned-config cache" `Quick test_tuned_config_cache;
    Alcotest.test_case "DSE report JSON" `Quick test_result_json;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    Alcotest.test_case "spearman rank correlation" `Quick test_spearman;
    Alcotest.test_case "per-task profile refinement" `Quick
      test_per_task_refinement;
  ]
