(** Tests for the grammar-based IR fuzzer ([Spnc_smith]): generator
    determinism, verification and printer/parser round-trip of every
    generated program, pass-ordering legality, the differential harness
    on clean and deliberately-broken compilers, the IR-level shrinker,
    and the pass-ordering promotion hook ([Options.lospn_opt_order]). *)

open Spnc_mlir
module Smith = Spnc_smith.Smith
module Harness = Spnc_smith.Harness
module Shrink = Spnc_smith.Shrink
module Passorder = Spnc_smith.Passorder
module Rng = Spnc_data.Rng

let check = Alcotest.check
let tbool = Alcotest.bool
let tstr = Alcotest.string

let print_m (m : Ir.modul) = Printer.modul_to_string m

(* -- generator ----------------------------------------------------------------- *)

let test_deterministic () =
  let a = Smith.generate ~seed:5 ~id:3 () in
  let b = Smith.generate ~seed:5 ~id:3 () in
  check tstr "same (seed, id) prints identically" (print_m a.Smith.modul)
    (print_m b.Smith.modul);
  (* bitwise, not structural: marginal evidence contains NaN and nan <> nan *)
  check tbool "same (seed, id) draws identical data" true
    (Array.for_all2
       (fun r1 r2 ->
         Array.for_all2
           (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
           r1 r2)
       a.Smith.data b.Smith.data);
  let c = Smith.generate ~seed:5 ~id:4 () in
  check tbool "different id differs" true
    (print_m a.Smith.modul <> print_m c.Smith.modul)

let test_generated_verify_and_roundtrip () =
  for id = 0 to 59 do
    let p = Smith.generate ~seed:11 ~id () in
    (match Verifier.verify p.Smith.modul with
    | [] -> ()
    | es ->
        Alcotest.failf "case %d does not verify: %s" id
          (Verifier.errors_to_string es));
    let printed = print_m p.Smith.modul in
    match Parser.modul_of_string printed with
    | exception e ->
        Alcotest.failf "case %d does not re-parse: %s" id (Printexc.to_string e)
    | m' ->
        if print_m m' <> printed then
          Alcotest.failf "case %d round-trip is not byte-identical" id
  done

let test_generated_data_in_support () =
  (* categorical / histogram evidence must stay inside the leaf support,
     and NaNs may only appear when the query supports marginals *)
  for id = 0 to 29 do
    let p = Smith.generate ~seed:13 ~id () in
    Array.iter
      (fun row ->
        Array.iteri
          (fun j v ->
            if Float.is_nan v then
              check tbool "NaN only under support_marginal" true
                p.Smith.support_marginal
            else
              match p.Smith.kinds.(j) with
              | Smith.Continuous -> ()
              | Smith.Categorical n ->
                  check tbool "categorical in range" true (v >= 0.0 && v < float_of_int n)
              | Smith.Histogram n ->
                  check tbool "histogram in range" true (v >= 0.0 && v <= float_of_int n))
          row)
      p.Smith.data
  done

(* -- legality ------------------------------------------------------------------ *)

let test_legality_default_pipelines () =
  (match Spnc.Pipelines.validate_pipeline Harness.baseline_pipeline with
  | Ok () -> ()
  | Error e -> Alcotest.failf "baseline pipeline illegal: %s" e);
  match
    Spnc.Pipelines.validate_pipeline
      "lower-to-lospn,constfold,lospn-partition=4,cse,dce,lospn-bufferize,lospn-buffer-opt"
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "partitioned pipeline illegal: %s" e

let test_legality_rejects_illegal () =
  let illegal =
    [
      (* partitioning after bufferization: consumes lospn, sees lospn-buf *)
      "lower-to-lospn,lospn-bufferize,lospn-partition=4";
      (* buffer-opt before bufferization *)
      "lower-to-lospn,lospn-buffer-opt,lospn-bufferize";
      (* lowering to lospn twice *)
      "lower-to-lospn,lower-to-lospn";
      (* opt pass before lowering: consumes lospn, sees hispn *)
      "cse,lower-to-lospn,lospn-bufferize";
    ]
  in
  List.iter
    (fun spec ->
      match Spnc.Pipelines.validate_pipeline spec with
      | Ok () -> Alcotest.failf "pipeline %S should be illegal" spec
      | Error _ -> ())
    illegal

let test_random_pipelines_legal () =
  let rng = Rng.create ~seed:42 in
  for _ = 1 to 50 do
    let pl = Passorder.random_pipeline rng in
    let spec = Passorder.pipeline_to_string pl in
    match Spnc.Pipelines.validate_pipeline spec with
    | Ok () -> ()
    | Error e -> Alcotest.failf "random pipeline %S illegal: %s" spec e
  done

let test_bad_opt_order_rejected () =
  (match Spnc.Pipelines.lospn_opt_passes [ "bogus" ] with
  | Ok _ -> Alcotest.fail "unknown opt pass accepted"
  | Error _ -> ());
  match Spnc.Pipelines.lospn_opt_passes [] with
  | Ok _ -> Alcotest.fail "empty opt order accepted"
  | Error _ -> ()

(* -- differential harness ------------------------------------------------------ *)

let test_clean_differential () =
  for id = 0 to 29 do
    let p = Smith.generate ~seed:5 ~id () in
    match Harness.check_program p with
    | None -> ()
    | Some f ->
        Alcotest.failf "case %d failed [%s] %s: %s" id f.Harness.check
          f.Harness.pipeline f.Harness.detail
  done

let find_planted_failure ~seed ~max_id =
  let rec go id =
    if id > max_id then None
    else
      let p = Smith.generate ~seed ~id () in
      match Harness.check_program p with
      | Some f -> Some (p, f)
      | None -> go (id + 1)
  in
  go 0

let test_detects_planted_miscompile () =
  Fun.protect
    ~finally:(fun () -> Spnc_cpu.Optimizer.inject_bad_peephole := false)
    (fun () ->
      Spnc_cpu.Optimizer.inject_bad_peephole := true;
      match find_planted_failure ~seed:7 ~max_id:40 with
      | None ->
          Alcotest.fail
            "harness missed the injected unsound peephole over 41 programs"
      | Some (_, f) ->
          check tbool "failure names a check" true
            (List.mem f.Harness.check
               [ "bit-identity"; "reference"; "ordering-divergence" ]))

let test_shrinker_on_planted_miscompile () =
  Fun.protect
    ~finally:(fun () -> Spnc_cpu.Optimizer.inject_bad_peephole := false)
    (fun () ->
      Spnc_cpu.Optimizer.inject_bad_peephole := true;
      match find_planted_failure ~seed:7 ~max_id:40 with
      | None -> Alcotest.fail "no failing program to shrink"
      | Some (p, _) ->
          let still_fails m d =
            Harness.check_program
              { p with Smith.modul = m; data = d; rows = Array.length d }
            <> None
          in
          let shrunk, shrunk_data =
            Shrink.shrink ~still_fails p.Smith.modul p.Smith.data
          in
          check tbool "shrunk module is strictly smaller" true
            (Shrink.count_ops shrunk < Shrink.count_ops p.Smith.modul);
          check tbool "shrunk module still verifies" true
            (Verifier.is_valid shrunk);
          check tbool "shrunk case still fails" true
            (still_fails shrunk shrunk_data))

(* -- promotion hook ------------------------------------------------------------ *)

let test_opt_order_promotion_bit_identical () =
  let rng = Rng.create ~seed:80 in
  let model =
    Spnc_spn.Random_spn.generate_sized rng
      { Spnc_spn.Random_spn.speaker_id_config with num_features = 8 }
      ~min_ops:120
  in
  let base = { (Spnc.Options.best_cpu ()) with use_kernel_cache = false } in
  let permuted =
    { base with lospn_opt_order = Some [ "dce"; "cse"; "constfold" ] }
  in
  check tbool "fingerprint keys the ordering" true
    (Spnc.Options.fingerprint base <> Spnc.Options.fingerprint permuted);
  let run options =
    let c = Spnc.Compiler.compile ~options model in
    Spnc.Compiler.execute c
      (Array.init 16 (fun i ->
           Array.init 8 (fun j -> Rng.range (Rng.create ~seed:(i + (17 * j))) (-3.0) 3.0)))
  in
  let a = run base and b = run permuted in
  check tbool "permuted opt order is bit-identical" true
    (Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b)

let test_bad_opt_order_raises () =
  let model =
    Spnc_spn.Random_spn.generate_sized (Rng.create ~seed:81)
      { Spnc_spn.Random_spn.speaker_id_config with num_features = 4 }
      ~min_ops:30
  in
  let options =
    {
      (Spnc.Options.best_cpu ()) with
      use_kernel_cache = false;
      lospn_opt_order = Some [ "nonsense" ];
    }
  in
  match Spnc.Compiler.compile ~options model with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown lospn_opt_order pass accepted by compile"

(* -- leaderboard --------------------------------------------------------------- *)

let test_leaderboard_roundtrip () =
  let scores =
    [
      {
        Passorder.order = [ "constfold"; "cse"; "dce" ];
        programs = 16;
        final_ops = 1393;
        compile_s = 0.046;
        est_cycles = 22736.4;
        bit_identical = true;
      };
      {
        Passorder.order = [ "canonicalize" ];
        programs = 16;
        final_ops = 1393;
        compile_s = 0.023;
        est_cycles = 22736.4;
        bit_identical = false;
      };
    ]
  in
  let j = Passorder.leaderboard_to_json ~seed:5 scores in
  match Passorder.leaderboard_of_json j with
  | Error e -> Alcotest.failf "leaderboard does not round-trip: %s" e
  | Ok scores' ->
      check tbool "entries survive" true
        (List.length scores' = 2
        && List.exists
             (fun s ->
               s.Passorder.order = [ "canonicalize" ]
               && not s.Passorder.bit_identical)
             scores');
      check tbool "best skips non-bit-identical entries" true
        (match Passorder.best scores' with
        | Some s -> s.Passorder.bit_identical
        | None -> false)

let test_comparisons () =
  check tbool "NaN matches NaN" true
    (Harness.tol_eq ~tol:1e-9 [| Float.nan |] [| Float.nan |]);
  check tbool "-inf matches -inf" true
    (Harness.tol_eq ~tol:1e-9 [| Float.neg_infinity |] [| Float.neg_infinity |]);
  check tbool "inf does not match -inf" false
    (Harness.tol_eq ~tol:1e-9 [| Float.infinity |] [| Float.neg_infinity |]);
  check tbool "relative tolerance" true
    (Harness.tol_eq ~tol:1e-6 [| 1000.0 |] [| 1000.0005 |]);
  check tbool "exact_eq distinguishes -0." false (Harness.exact_eq [| 0.0 |] [| -0.0 |])

let suite =
  [
    Alcotest.test_case "generator is seed-deterministic" `Quick test_deterministic;
    Alcotest.test_case "60 programs verify and round-trip" `Quick
      test_generated_verify_and_roundtrip;
    Alcotest.test_case "generated evidence stays in leaf support" `Quick
      test_generated_data_in_support;
    Alcotest.test_case "legality accepts the stock pipelines" `Quick
      test_legality_default_pipelines;
    Alcotest.test_case "legality rejects known-illegal orderings" `Quick
      test_legality_rejects_illegal;
    Alcotest.test_case "50 random pipelines are legal" `Quick
      test_random_pipelines_legal;
    Alcotest.test_case "bad opt orders are rejected" `Quick
      test_bad_opt_order_rejected;
    Alcotest.test_case "clean differential run over 30 programs" `Slow
      test_clean_differential;
    Alcotest.test_case "harness detects the planted miscompile" `Slow
      test_detects_planted_miscompile;
    Alcotest.test_case "shrinker minimizes the planted miscompile" `Slow
      test_shrinker_on_planted_miscompile;
    Alcotest.test_case "promoted opt order is bit-identical + refingerprinted"
      `Quick test_opt_order_promotion_bit_identical;
    Alcotest.test_case "compile rejects an unknown promoted pass" `Quick
      test_bad_opt_order_raises;
    Alcotest.test_case "leaderboard JSON round-trips" `Quick
      test_leaderboard_roundtrip;
    Alcotest.test_case "tolerant/exact comparison corners" `Quick
      test_comparisons;
  ]
