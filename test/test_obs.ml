(** Observability-layer tests (docs/OBSERVABILITY.md): span nesting and
    ring semantics of {!Spnc_obs.Trace}, Chrome trace-JSON
    well-formedness, histogram percentile math on known inputs, counter
    atomicity under four domains, and the snapshot JSON round-trip the
    CI perf gate depends on. *)

module Json = Spnc_obs.Json
module Trace = Spnc_obs.Trace
module Metrics = Spnc_obs.Metrics
module Snapshot = Spnc_obs.Snapshot

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The tracer and registry are process-wide; every test starts from a
   clean slate so suite order cannot matter. *)
let fresh () =
  Trace.set_enabled false;
  Trace.clear ();
  Metrics.reset_for_tests ()

(* -- Tracing ------------------------------------------------------------------ *)

let test_disabled_records_nothing () =
  fresh ();
  let forced = ref false in
  let r =
    Trace.with_span
      ~args:(fun () ->
        forced := true;
        [ ("k", Trace.I 1) ])
      ~cat:"test" "off" (fun () -> 41 + 1)
  in
  check tint "with_span is transparent" 42 r;
  check tbool "args thunk never forced while disabled" false !forced;
  check tint "nothing recorded" 0 (List.length (Trace.events ()));
  (* timed still measures even when disabled *)
  let r, dt = Trace.timed ~cat:"test" "t" (fun () -> 7) in
  check tint "timed returns the result" 7 r;
  check tbool "timed returns a sane elapsed" true (dt >= 0.0);
  check tint "timed recorded nothing" 0 (List.length (Trace.events ()))

let test_span_nesting () =
  fresh ();
  Trace.set_enabled true;
  Trace.with_span ~cat:"test" "outer" (fun () ->
      Trace.with_span ~cat:"test" "inner" (fun () -> ());
      Trace.instant ~cat:"test" "mark");
  Trace.set_enabled false;
  match Trace.events () with
  | [ inner; mark; outer ] ->
      (* completion order: inner closes first, the instant fires, then
         the outer span closes *)
      check tstr "inner first" "inner" inner.Trace.name;
      check tstr "instant second" "mark" mark.Trace.name;
      check tstr "outer last" "outer" outer.Trace.name;
      check tbool "instant has zero duration" true (mark.Trace.dur = 0.0);
      (* the outer interval contains the inner one *)
      check tbool "outer starts before inner" true
        (outer.Trace.ts <= inner.Trace.ts);
      check tbool "inner ends before outer ends" true
        (inner.Trace.ts +. inner.Trace.dur
        <= outer.Trace.ts +. outer.Trace.dur +. 1e-9);
      check tbool "same domain" true (inner.Trace.tid = outer.Trace.tid)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_span_closes_on_exception () =
  fresh ();
  Trace.set_enabled true;
  (match
     Trace.with_span ~cat:"test" "boom" (fun () -> failwith "expected")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception was swallowed");
  Trace.set_enabled false;
  check tint "the failing span was still recorded" 1
    (List.length (Trace.events ()))

let test_ring_drops_oldest () =
  fresh ();
  Trace.set_capacity 16;
  Trace.set_enabled true;
  for i = 0 to 24 do
    Trace.instant ~cat:"test" (Printf.sprintf "e%d" i)
  done;
  Trace.set_enabled false;
  let evs = Trace.events () in
  check tint "ring holds exactly its capacity" 16 (List.length evs);
  check tint "9 oldest were dropped" 9 (Trace.dropped ());
  check tstr "survivors start at e9" "e9" (List.hd evs).Trace.name;
  check tstr "newest survives" "e24"
    (List.nth evs 15).Trace.name;
  Trace.set_capacity 65536

let test_trace_json_well_formed () =
  fresh ();
  Trace.set_enabled true;
  Trace.with_span
    ~args:(fun () -> [ ("rows", Trace.I 5); ("label", Trace.S "a\"b\n") ])
    ~cat:"test" "span" (fun () -> ());
  Trace.instant ~cat:"test" "tick" ~args:[ ("ok", Trace.B true) ];
  Trace.set_enabled false;
  (* round-trip the document through our own strict parser *)
  let doc =
    match Json.parse (Json.to_string (Trace.to_json ())) with
    | Ok j -> j
    | Error e -> Alcotest.failf "trace JSON does not re-parse: %s" e
  in
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  check tint "two events exported" 2 (List.length events);
  List.iter
    (fun ev ->
      let field name = Option.bind (Json.member name ev) in
      check tbool "has name" true (field "name" Json.str <> None);
      check tbool "has cat" true (field "cat" Json.str <> None);
      check tbool "has ts" true (field "ts" Json.num <> None);
      check tbool "pid is 1" (Some 1.0 = field "pid" Json.num) true;
      match field "ph" Json.str with
      | Some "X" ->
          check tbool "complete events carry dur" true
            (field "dur" Json.num <> None);
          (* escaped args survive the round trip *)
          check tbool "string arg intact"
            (Some "a\"b\n"
            = Option.bind (Json.find ev "args.label") Json.str)
            true
      | Some "i" ->
          check tbool "instant scope" (Some "t" = field "s" Json.str) true
      | ph -> Alcotest.failf "unexpected phase %s" (Option.value ~default:"?" ph))
    events;
  (* the tree renderer must mention both events *)
  let tree = Trace.to_tree () in
  check tbool "tree lists the span" true (contains tree "span");
  check tbool "tree lists the instant" true (contains tree "tick")

(* -- Metrics ------------------------------------------------------------------- *)

let test_counter_basics () =
  fresh ();
  let c = Metrics.counter "test.counter" in
  check tint "starts at zero" 0 (Metrics.counter_value c);
  Metrics.counter_incr c;
  Metrics.counter_incr ~by:41 c;
  check tint "incr accumulates" 42 (Metrics.counter_value c);
  check tbool "interned: same handle" true
    (Metrics.counter_value (Metrics.counter "test.counter") = 42);
  (match Metrics.gauge "test.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash was not rejected");
  Metrics.reset "test.counter";
  check tint "reset zeroes in place" 0 (Metrics.counter_value c)

let test_counter_atomicity_4_domains () =
  fresh ();
  let c = Metrics.counter "test.par.counter" in
  let g = Metrics.gauge "test.par.gauge" in
  let h = Metrics.histogram "test.par.hist" in
  let per_domain = 25_000 in
  let workers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.counter_incr c;
              Metrics.gauge_add g 1.0;
              Metrics.histogram_observe h 1e-4
            done))
  in
  Array.iter Domain.join workers;
  check tint "no lost counter increments" (4 * per_domain)
    (Metrics.counter_value c);
  check tbool "no lost gauge adds" true
    (Float.abs (Metrics.gauge_value g -. float_of_int (4 * per_domain))
    < 0.5);
  check tint "no lost histogram samples" (4 * per_domain)
    (Metrics.histogram_count h)

let test_histogram_percentiles () =
  fresh ();
  let h = Metrics.histogram "test.hist" in
  check tbool "empty histogram reads 0" true
    (Metrics.histogram_percentile h 0.99 = 0.0);
  (* 100 samples: 90 in the (512µs, 1024µs] bucket, 10 in the
     (8192µs, 16384µs] bucket.  p50/p90 land in the first, p95/p99 in
     the second; the readout is the bucket's upper bound. *)
  for _ = 1 to 90 do
    Metrics.histogram_observe h 0.000_700
  done;
  for _ = 1 to 10 do
    Metrics.histogram_observe h 0.010_000
  done;
  let p q = Metrics.histogram_percentile h q in
  let feq a b = Float.abs (a -. b) < 1e-12 in
  check tbool "p50 = 1024us bound" true (feq (p 0.50) 0.001_024);
  check tbool "p90 = 1024us bound" true (feq (p 0.90) 0.001_024);
  check tbool "p95 = 16384us bound" true (feq (p 0.95) 0.016_384);
  check tbool "p99 = 16384us bound" true (feq (p 0.99) 0.016_384);
  check tbool "percentile never under-reports" true
    (p 0.50 >= 0.000_700 && p 0.99 >= 0.010_000);
  check tint "count" 100 (Metrics.histogram_count h);
  check tbool "sum ~ 0.163s (us resolution)" true
    (Float.abs (Metrics.histogram_sum h -. 0.163) < 1e-3);
  (* negative samples clamp instead of throwing *)
  Metrics.histogram_observe h (-1.0);
  check tint "negative sample clamped, still counted" 101
    (Metrics.histogram_count h);
  check tbool "buckets cover every sample" true
    (List.fold_left (fun a (_, n) -> a + n) 0 (Metrics.histogram_buckets h)
    = 101)

(* -- Snapshot round-trip -------------------------------------------------------- *)

let test_snapshot_roundtrip () =
  fresh ();
  Metrics.counter_incr ~by:7 (Metrics.counter "test.snap.counter");
  Metrics.gauge_set (Metrics.gauge "test.snap.gauge") 2.5;
  let h = Metrics.histogram "test.snap.hist" in
  List.iter (Metrics.histogram_observe h) [ 0.001; 0.002; 0.004; 0.064 ];
  let s = Snapshot.take () in
  check tint "snapshot carries the version" Snapshot.current_version
    s.Snapshot.version;
  let names = List.map fst s.Snapshot.metrics in
  check tbool "sorted by name" true
    (names = List.sort compare names);
  let s' =
    match Snapshot.of_string (Snapshot.to_string s) with
    | Ok s' -> s'
    | Error e -> Alcotest.failf "snapshot does not round-trip: %s" e
  in
  check tint "version survives" s.Snapshot.version s'.Snapshot.version;
  check tint "metric count survives"
    (List.length s.Snapshot.metrics)
    (List.length s'.Snapshot.metrics);
  List.iter2
    (fun (n1, m1) (n2, m2) ->
      check tstr "metric name survives" n1 n2;
      match (m1, m2) with
      | Snapshot.Counter a, Snapshot.Counter b ->
          check tint (n1 ^ " counter value") a b
      | Snapshot.Gauge a, Snapshot.Gauge b ->
          check tbool (n1 ^ " gauge value") true (Float.abs (a -. b) < 1e-12)
      | ( Snapshot.Histogram { count = c1; p99 = p1; buckets = b1; _ },
          Snapshot.Histogram { count = c2; p99 = p2; buckets = b2; _ } ) ->
          check tint (n1 ^ " hist count") c1 c2;
          check tbool (n1 ^ " hist p99") true (Float.abs (p1 -. p2) < 1e-12);
          check tint (n1 ^ " hist buckets") (List.length b1) (List.length b2)
      | _ -> Alcotest.failf "%s changed kind across the round trip" n1)
    s.Snapshot.metrics s'.Snapshot.metrics;
  (* corrupt documents are rejected, not crashed on *)
  check tbool "garbage rejected" true
    (Result.is_error (Snapshot.of_string "{ nope"));
  check tbool "wrong shape rejected" true
    (Result.is_error (Snapshot.of_string "{\"snapshot_version\": \"x\"}"))

let suite =
  [
    Alcotest.test_case "disabled tracer records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span closes on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
    Alcotest.test_case "trace JSON well-formed" `Quick
      test_trace_json_well_formed;
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter atomicity under 4 domains" `Quick
      test_counter_atomicity_4_domains;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
  ]
