(** Negative tests for the dialect verifiers: malformed HiSPN / LoSPN
    operations must be rejected with diagnostics, matching the op
    constraints of the paper's Tables I and II. *)

open Spnc_mlir

let check = Alcotest.check
let tbool = Alcotest.bool

let invalid m = not (Verifier.is_valid m)

let prob = Types.Prob
let f32 = Types.F32

(* helper: one evidence value for leaf operands *)
let with_evidence f =
  Spnc_hispn.Ops.register ();
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let c =
    Builder.op b "lo_spn.constant" ~results:[ f32 ]
      ~attrs:[ ("value", Attr.Float 0.5) ] ()
  in
  let ops = f b (Ir.result c) in
  Builder.modul (c :: ops)

(* -- HiSPN ------------------------------------------------------------------ *)

let test_sum_weight_count_mismatch () =
  let m =
    with_evidence (fun b ev ->
        let g = Spnc_hispn.Ops.gaussian b ~evidence:ev ~mean:0.0 ~stddev:1.0 () in
        (* two operands but only one weight *)
        let s =
          Builder.op b "hi_spn.sum"
            ~operands:[ Ir.result g; Ir.result g ]
            ~results:[ prob ]
            ~attrs:[ ("weights", Attr.DenseF [| 1.0 |]) ]
            ()
        in
        [ g; s ])
  in
  check tbool "rejected" true (invalid m)

let test_sum_weights_not_normalized () =
  let m =
    with_evidence (fun b ev ->
        let g = Spnc_hispn.Ops.gaussian b ~evidence:ev ~mean:0.0 ~stddev:1.0 () in
        let s =
          Spnc_hispn.Ops.sum b
            ~operands:[ Ir.result g; Ir.result g ]
            ~weights:[| 0.5; 0.2 |] ()
        in
        [ g; s ])
  in
  check tbool "rejected" true (invalid m)

let test_gaussian_nonpositive_stddev () =
  let m =
    with_evidence (fun b ev ->
        [
          Builder.op b "hi_spn.gaussian" ~operands:[ ev ] ~results:[ prob ]
            ~attrs:[ ("mean", Attr.Float 0.0); ("stddev", Attr.Float (-1.0)) ]
            ();
        ])
  in
  check tbool "rejected" true (invalid m)

let test_gaussian_missing_mean () =
  let m =
    with_evidence (fun b ev ->
        [
          Builder.op b "hi_spn.gaussian" ~operands:[ ev ] ~results:[ prob ]
            ~attrs:[ ("stddev", Attr.Float 1.0) ]
            ();
        ])
  in
  check tbool "rejected" true (invalid m)

let test_categorical_unnormalized () =
  let m =
    with_evidence (fun b ev ->
        [
          Builder.op b "hi_spn.categorical" ~operands:[ ev ] ~results:[ prob ]
            ~attrs:[ ("probabilities", Attr.DenseF [| 0.5; 0.2 |]) ]
            ();
        ])
  in
  check tbool "rejected" true (invalid m)

let test_histogram_bucket_count_mismatch () =
  let m =
    with_evidence (fun b ev ->
        [
          Builder.op b "hi_spn.histogram" ~operands:[ ev ] ~results:[ prob ]
            ~attrs:
              [
                ("buckets", Attr.Array [ Attr.Int 0; Attr.Int 1 ]);
                ("bucketCount", Attr.Int 3);
                ("densities", Attr.DenseF [| 1.0 |]);
              ]
            ();
        ])
  in
  check tbool "rejected" true (invalid m)

let test_graph_without_root () =
  Spnc_hispn.Ops.register ();
  let b = Builder.create () in
  let body =
    Builder.block b ~arg_tys:[ f32 ] (fun args ->
        [ Spnc_hispn.Ops.gaussian b ~evidence:(List.hd args) ~mean:0.0 ~stddev:1.0 () ])
  in
  let g = Spnc_hispn.Ops.graph b ~num_features:1 ~body in
  check tbool "rejected" true (invalid (Builder.modul [ g ]))

let test_graph_arg_count_mismatch () =
  Spnc_hispn.Ops.register ();
  let b = Builder.create () in
  let body =
    Builder.block b ~arg_tys:[ f32 ] (fun args ->
        let g =
          Spnc_hispn.Ops.gaussian b ~evidence:(List.hd args) ~mean:0.0 ~stddev:1.0 ()
        in
        [ g; Spnc_hispn.Ops.root b ~value:(Ir.result g) ])
  in
  (* claims three features but the block has one argument *)
  let g = Spnc_hispn.Ops.graph b ~num_features:3 ~body in
  check tbool "rejected" true (invalid (Builder.modul [ g ]))

(* -- LoSPN ------------------------------------------------------------------- *)

let test_binary_op_type_mismatch () =
  let m =
    with_evidence (fun b ev ->
        let cl =
          Builder.op b "lo_spn.constant"
            ~results:[ Types.Log Types.F32 ]
            ~attrs:[ ("value", Attr.Float 0.1) ]
            ()
        in
        (* f32 * log<f32>: operand types differ *)
        [
          cl;
          Builder.op b "lo_spn.mul"
            ~operands:[ ev; Ir.result cl ]
            ~results:[ f32 ] ();
        ])
  in
  check tbool "rejected" true (invalid m)

let test_mul_on_non_computation_type () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let idx =
    Builder.op b "lo_spn.constant" ~results:[ Types.Prob ]
      ~attrs:[ ("value", Attr.Float 1.0) ]
      ()
  in
  let m =
    Builder.op b "lo_spn.mul"
      ~operands:[ Ir.result idx; Ir.result idx ]
      ~results:[ Types.Prob ] ()
  in
  check tbool "rejected" true (invalid (Builder.modul [ idx; m ]))

let test_task_missing_index_arg () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let mem = Types.MemRef ([ None; Some 1 ], f32) in
  let kernel_block =
    Builder.block b ~arg_tys:[ mem ] (fun args ->
        let input = List.hd args in
        (* block args: input only — the leading index argument is missing *)
        let bad_block = Builder.block b ~arg_tys:[ mem ] (fun _ -> []) in
        [
          Builder.op b "lo_spn.task" ~operands:[ input ]
            ~attrs:[ ("batchSize", Attr.Int 8) ]
            ~regions:[ Builder.region1 bad_block ]
            ();
          Spnc_lospn.Ops.return_ b ~values:[];
        ])
  in
  let k =
    Spnc_lospn.Ops.kernel b ~sym_name:"k" ~result_tys:[] ~body_block:kernel_block
  in
  check tbool "rejected" true (invalid (Builder.modul [ k ]))

let test_body_yield_arity_mismatch () =
  let m =
    with_evidence (fun b ev ->
        let body_block =
          Builder.block b ~arg_tys:[ f32 ] (fun args ->
              [ Spnc_lospn.Ops.yield b ~values:[ List.hd args; List.hd args ] ])
        in
        [
          Builder.op b "lo_spn.body" ~operands:[ ev ] ~results:[ f32 ]
            ~regions:[ Builder.region1 body_block ]
            ();
        ])
  in
  check tbool "rejected" true (invalid m)

let test_batch_write_to_tensor_rejected () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let tensor_ty = Types.Tensor ([ None; Some 1 ], f32) in
  let blk =
    Builder.block b ~arg_tys:[ tensor_ty; Types.Index; f32 ] (fun args ->
        match args with
        | [ t; i; v ] ->
            [
              Builder.op b "lo_spn.batch_write" ~operands:[ t; i; v ]
                ~attrs:[ ("transposed", Attr.Bool false) ]
                ();
            ]
        | _ -> assert false)
  in
  let f =
    Builder.op b "lo_spn.body"
      ~regions:[ Builder.region1 blk ]
      ()
  in
  (* batch_write's first operand must be a memref, not a tensor *)
  check tbool "rejected" true (invalid (Builder.modul [ f ]))

let test_alloc_result_must_be_memref () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let a = Builder.op b "lo_spn.alloc" ~results:[ f32 ] () in
  check tbool "rejected" true (invalid (Builder.modul [ a ]))

let suite =
  [
    Alcotest.test_case "sum weight count" `Quick test_sum_weight_count_mismatch;
    Alcotest.test_case "sum unnormalized" `Quick test_sum_weights_not_normalized;
    Alcotest.test_case "gaussian stddev<=0" `Quick test_gaussian_nonpositive_stddev;
    Alcotest.test_case "gaussian missing mean" `Quick test_gaussian_missing_mean;
    Alcotest.test_case "categorical unnormalized" `Quick test_categorical_unnormalized;
    Alcotest.test_case "histogram bucket count" `Quick test_histogram_bucket_count_mismatch;
    Alcotest.test_case "graph without root" `Quick test_graph_without_root;
    Alcotest.test_case "graph arg mismatch" `Quick test_graph_arg_count_mismatch;
    Alcotest.test_case "binary type mismatch" `Quick test_binary_op_type_mismatch;
    Alcotest.test_case "mul on prob type" `Quick test_mul_on_non_computation_type;
    Alcotest.test_case "task missing index arg" `Quick test_task_missing_index_arg;
    Alcotest.test_case "body yield arity" `Quick test_body_yield_arity_mismatch;
    Alcotest.test_case "batch_write on tensor" `Quick test_batch_write_to_tensor_rejected;
    Alcotest.test_case "alloc non-memref" `Quick test_alloc_result_must_be_memref;
  ]
