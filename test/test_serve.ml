(** Serving-layer tests ({!Spnc_serve}): batcher flush policy
    (flush-on-size vs flush-on-timer, driven by an injected clock), EDF
    ordering across model queues, admission control (per-model and
    global queue caps shedding with structured rejections),
    deadline-expired requests being swept and never dispatched, scatter
    bit-identity of batched execution against sequential per-request
    {!Spnc.Compiler.execute} under randomized concurrent interleavings
    at 1/2/4 engine threads, and the registry's bounded engine LRU
    including reload through the persistent kernel cache's disk tier. *)

module Serve = Spnc_serve.Server
module Batcher = Spnc_serve.Batcher
module Registry = Spnc_serve.Registry
module T = Spnc_serve.Types
module Compiler = Spnc.Compiler
module Options = Spnc.Options
module Model = Spnc_spn.Model
module Rng = Spnc_data.Rng

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let check_bits what (expect : float array) (got : float array) =
  check tint (what ^ ": length") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float got.(i) then
        Alcotest.failf "%s: row %d: expected %h, got %h" what i x got.(i))
    expect

(* tiny-but-real SPNs; Clamp keeps underflowed outputs finite and
   deterministic without stderr noise *)
let base_options =
  {
    Options.default with
    threads = 1;
    output_guard = Spnc_resilience.Guard.Clamp;
  }

let tiny_config =
  {
    Spnc_spn.Random_spn.default_config with
    num_features = 6;
    max_depth = 5;
  }

let models =
  lazy
    (let rng = Rng.create ~seed:4242 in
     Array.init 4 (fun i ->
         Spnc_spn.Random_spn.generate_sized rng
           ~name:(Printf.sprintf "serve-m%d" i)
           tiny_config ~min_ops:60))

let model i = (Lazy.force models).(i)

let rows_for ?(seed = 11) m n =
  let rng = Rng.create ~seed in
  Array.init n (fun _ ->
      Array.init m.Model.num_features (fun _ -> Rng.range rng (-3.0) 3.0))

(* -- batcher policy (pure, injected clock) ----------------------------------- *)

let mk_req ?deadline ~model ~rows ~now () =
  let features = 2 in
  T.make_request ~model
    ~flat:(Array.make (rows * features) 0.0)
    ~rows ~features ~deadline ~now

let mk_batcher ?(max_batch = 8) ?(max_delay_ms = 10.0) ?(starvation_ms = 1000.0)
    ?(queue_cap = 16) ?(global_cap = 64) () =
  Batcher.create ~max_batch ~max_delay_ms ~starvation_ms ~queue_cap ~global_cap

let test_flush_on_size () =
  let b = mk_batcher ~max_batch:8 ~max_delay_ms:10.0 () in
  let now = 100.0 in
  for _ = 1 to 7 do
    match Batcher.enqueue b (mk_req ~model:"a" ~rows:1 ~now ()) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "enqueue under cap must admit"
  done;
  (* 7 rows, no time passed: not size-ready, not timer-ready *)
  let p = Batcher.pop_ready b ~now in
  check tbool "7 rows: no batch yet" true (p.Batcher.p_batch = None);
  check tbool "7 rows: nothing expired" true (p.Batcher.p_expired = []);
  (match Batcher.enqueue b (mk_req ~model:"a" ~rows:1 ~now ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "8th enqueue must admit");
  (* 8 rows = max_batch: flushes with zero elapsed time *)
  match (Batcher.pop_ready b ~now).Batcher.p_batch with
  | Some batch ->
      check tint "size flush takes the whole queue" 8 batch.Batcher.b_rows;
      check tint "queue drained" 0 (Batcher.depth b "a")
  | None -> Alcotest.fail "size-ready queue must flush without waiting"

let test_flush_on_timer () =
  let b = mk_batcher ~max_batch:100 ~max_delay_ms:10.0 () in
  let now = 50.0 in
  (match Batcher.enqueue b (mk_req ~model:"a" ~rows:2 ~now ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enqueue must admit");
  let early = Batcher.pop_ready b ~now:(now +. 0.005) in
  check tbool "before max_delay: held back" true (early.Batcher.p_batch = None);
  (* p_next names the pending timer flush *)
  (match early.Batcher.p_next with
  | Some t ->
      check tbool "p_next = enqueue + max_delay" true
        (Float.abs (t -. (now +. 0.010)) < 1e-9)
  | None -> Alcotest.fail "a queued request must schedule a flush");
  match (Batcher.pop_ready b ~now:(now +. 0.011)).Batcher.p_batch with
  | Some batch -> check tint "timer flush rows" 2 batch.Batcher.b_rows
  | None -> Alcotest.fail "past max_delay the queue must flush"

let test_edf_order () =
  let b = mk_batcher ~max_batch:100 ~max_delay_ms:5.0 ~starvation_ms:1e7 () in
  let now = 10.0 in
  (* both timer-ready at pop time; "late" enqueued first but has the
     later deadline — EDF must pick "soon" (starvation guard pushed out
     of the way so the deadlines alone order the pick) *)
  (match Batcher.enqueue b (mk_req ~deadline:(now +. 60.0) ~model:"late" ~rows:1 ~now ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enqueue late");
  (match Batcher.enqueue b (mk_req ~deadline:(now +. 1.0) ~model:"soon" ~rows:1 ~now ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enqueue soon");
  (match (Batcher.pop_ready b ~now:(now +. 0.006)).Batcher.p_batch with
  | Some batch ->
      check Alcotest.string "earliest deadline dispatches first" "soon"
        batch.Batcher.b_model
  | None -> Alcotest.fail "timer-ready queues must flush");
  match (Batcher.pop_ready b ~now:(now +. 0.006)).Batcher.p_batch with
  | Some batch ->
      check Alcotest.string "then the later deadline" "late"
        batch.Batcher.b_model
  | None -> Alcotest.fail "second queue must flush next"

let test_starvation_guard () =
  let b = mk_batcher ~max_batch:100 ~max_delay_ms:1.0 ~starvation_ms:50.0 () in
  let now = 10.0 in
  (* deadline-less request enqueued long ago: its effective deadline is
     enqueued+starvation, which beats a fresh tight-deadline tenant *)
  (match Batcher.enqueue b (mk_req ~model:"old" ~rows:1 ~now ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enqueue old");
  let later = now +. 0.2 in
  (match
     Batcher.enqueue b
       (mk_req ~deadline:(later +. 0.5) ~model:"fresh" ~rows:1 ~now:later ())
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "enqueue fresh");
  match (Batcher.pop_ready b ~now:(later +. 0.002)).Batcher.p_batch with
  | Some batch ->
      check Alcotest.string "starved best-effort traffic dispatches first"
        "old" batch.Batcher.b_model
  | None -> Alcotest.fail "both queues are timer-ready"

let test_queue_caps () =
  let b = mk_batcher ~queue_cap:3 ~global_cap:5 () in
  let now = 1.0 in
  for _ = 1 to 3 do
    match Batcher.enqueue b (mk_req ~model:"a" ~rows:1 ~now ()) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "under per-model cap must admit"
  done;
  (match Batcher.enqueue b (mk_req ~model:"a" ~rows:1 ~now ()) with
  | Error T.Overloaded_model -> ()
  | _ -> Alcotest.fail "4th request on a cap-3 queue must shed");
  (* other models still admitted up to the global cap *)
  (match Batcher.enqueue b (mk_req ~model:"b" ~rows:1 ~now ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "other model under caps must admit");
  (match Batcher.enqueue b (mk_req ~model:"c" ~rows:1 ~now ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "5th request reaches the global cap");
  match Batcher.enqueue b (mk_req ~model:"d" ~rows:1 ~now ()) with
  | Error T.Overloaded_global -> ()
  | _ -> Alcotest.fail "6th request past the global cap must shed"

(* -- server (dispatchers:0 + injected clock = deterministic step) ------------- *)

let stepped_server ?(options = base_options) ~clock () =
  Serve.create ~clock:(fun () -> !clock) ~dispatchers:0 ~options ()

let test_server_shed_and_depth () =
  let clock = ref 1000.0 in
  let options = { base_options with serve_queue_cap = 2 } in
  let server = stepped_server ~options ~clock () in
  Serve.register_model server ~name:"m0" (model 0);
  let data = rows_for (model 0) 1 in
  let t1 = Serve.submit_async server ~model:"m0" data in
  let t2 = Serve.submit_async server ~model:"m0" data in
  let t3 = Serve.submit_async server ~model:"m0" data in
  check tint "queue depth at cap" 2 (Serve.queue_depth server "m0");
  (* the third settles immediately with a structured shed *)
  (match Serve.await t3 with
  | Error e ->
      check tbool "overloaded rejection" true (T.is_overloaded e);
      check Alcotest.string "reason" "overloaded_model"
        (T.reject_reason_to_string e.T.reason)
  | Ok _ -> Alcotest.fail "over-cap submit must shed");
  (* unknown model settles immediately too *)
  (match Serve.await (Serve.submit_async server ~model:"nope" data) with
  | Error { T.reason = T.Unknown_model; _ } -> ()
  | _ -> Alcotest.fail "unknown model must reject");
  (* drain: flush-on-timer via stepped clock *)
  clock := !clock +. 1.0;
  check tbool "step dispatches" true (Serve.step server ~now:!clock);
  (match (Serve.await t1, Serve.await t2) with
  | Ok _, Ok _ -> ()
  | _ -> Alcotest.fail "queued requests must dispatch on step");
  Serve.shutdown server

let test_server_expired_never_dispatched () =
  let clock = ref 2000.0 in
  let server = stepped_server ~clock () in
  Serve.register_model server ~name:"m0" (model 0);
  Spnc_obs.Metrics.reset "serve.dispatched_rows";
  let data = rows_for (model 0) 2 in
  let ticket =
    Serve.submit_async server ~model:"m0" ~deadline:(!clock +. 0.5) data
  in
  (* deadline passes while queued; the sweep must fulfill Expired
     without running the kernel *)
  clock := !clock +. 1.0;
  check tbool "step sweeps the expired request" true
    (Serve.step server ~now:!clock);
  (match Serve.await ticket with
  | Error { T.reason = T.Expired; _ } -> ()
  | _ -> Alcotest.fail "expired request must settle as deadline_expired");
  check tint "expired requests never reach the engine" 0
    (Spnc_obs.Metrics.counter_value
       (Spnc_obs.Metrics.counter "serve.dispatched_rows"));
  (* a pre-expired submit settles at admission *)
  (match
     Serve.await
       (Serve.submit_async server ~model:"m0" ~deadline:(!clock -. 1.0) data)
   with
  | Error { T.reason = T.Expired; _ } -> ()
  | _ -> Alcotest.fail "already-expired submit must reject");
  Serve.shutdown server

let test_server_bad_request () =
  let clock = ref 3000.0 in
  let server = stepped_server ~clock () in
  Serve.register_model server ~name:"m0" (model 0);
  let ragged = [| Array.make (model 0).Model.num_features 0.0; [| 1.0 |] |] in
  (match Serve.await (Serve.submit_async server ~model:"m0" ragged) with
  | Error { T.reason = T.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "ragged rows must reject");
  (* feature-count mismatch is admitted (rows are rectangular) and
     surfaces per request at dispatch, against the engine's count *)
  let wrong = [| Array.make ((model 0).Model.num_features + 1) 0.0 |] in
  let ticket = Serve.submit_async server ~model:"m0" wrong in
  clock := !clock +. 1.0;
  ignore (Serve.step server ~now:!clock);
  (match Serve.await ticket with
  | Error { T.reason = T.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "feature mismatch must reject at dispatch");
  (* zero rows: trivially complete *)
  (match Serve.await (Serve.submit_async server ~model:"m0" [||]) with
  | Ok [||] -> ()
  | _ -> Alcotest.fail "empty request must return an empty result");
  Serve.shutdown server

let test_server_shutdown_drains () =
  let clock = ref 4000.0 in
  let server = stepped_server ~clock () in
  Serve.register_model server ~name:"m0" (model 0);
  let data = rows_for (model 0) 1 in
  let t1 = Serve.submit_async server ~model:"m0" data in
  Serve.shutdown server;
  (match Serve.await t1 with
  | Error { T.reason = T.Closed; _ } -> ()
  | _ -> Alcotest.fail "shutdown must settle queued requests as closed");
  match Serve.await (Serve.submit_async server ~model:"m0" data) with
  | Error { T.reason = T.Closed; _ } -> ()
  | _ -> Alcotest.fail "submits after shutdown must reject as closed"

(* -- scatter bit-identity under concurrency ----------------------------------- *)

(* Real dispatcher domains, several client threads firing randomized
   slices of precomputed pools at randomized models: every response must
   be bit-identical to the sequential whole-pool reference, whatever
   batches the flush policy happened to coalesce. *)
let scatter_identity ~threads () =
  let options = { base_options with threads } in
  let server = Serve.create ~options () in
  let pools =
    Array.init 4 (fun i ->
        let m = model i in
        Serve.register_model server ~name:m.Model.name m;
        let pool = rows_for ~seed:(500 + i) m 64 in
        let reference =
          Compiler.execute (Compiler.compile ~options:base_options m) pool
        in
        (m.Model.name, pool, reference))
  in
  let failures = Atomic.make 0 in
  let client c =
    let rng = Rng.create ~seed:(900 + c) in
    for _ = 1 to 25 do
      let name, pool, reference = pools.(Rng.int rng 4) in
      let rows = 1 + Rng.int rng 4 in
      let off = Rng.int rng (Array.length pool - rows + 1) in
      match Serve.submit server ~model:name (Array.sub pool off rows) with
      | Ok values ->
          let expect = Array.sub reference off rows in
          let same =
            Array.length values = rows
            && (let ok = ref true in
                Array.iteri
                  (fun i v ->
                    if Int64.bits_of_float v <> Int64.bits_of_float expect.(i)
                    then ok := false)
                  values;
                !ok)
          in
          if not same then Atomic.incr failures
      | Error _ -> Atomic.incr failures
    done
  in
  let clients = List.init 6 (fun c -> Thread.create client c) in
  List.iter Thread.join clients;
  Serve.shutdown server;
  check tint
    (Printf.sprintf "threads=%d: all responses bit-identical" threads)
    0 (Atomic.get failures)

(* -- registry: LRU + kcache reload -------------------------------------------- *)

let test_registry_lru () =
  let options = { base_options with serve_engines_cap = 2 } in
  let reg = Registry.create ~options () in
  for i = 0 to 2 do
    Registry.register_model reg ~name:(Printf.sprintf "m%d" i) (model i)
  done;
  let touch name =
    match Registry.engine reg name with
    | Ok e -> check Alcotest.string "engine name" name e.Registry.eng_name
    | Error e -> Alcotest.failf "engine %s: %s" name e
  in
  touch "m0";
  touch "m1";
  check (Alcotest.list Alcotest.string) "two resident" [ "m0"; "m1" ]
    (Registry.loaded reg);
  (* m0 is LRU; loading m2 must evict it *)
  touch "m1";
  touch "m2";
  check (Alcotest.list Alcotest.string) "LRU evicted m0" [ "m1"; "m2" ]
    (Registry.loaded reg);
  (* touching the survivor, then loading m0 again, evicts m2 *)
  touch "m1";
  touch "m0";
  check (Alcotest.list Alcotest.string) "LRU evicted m2" [ "m0"; "m1" ]
    (Registry.loaded reg);
  match Registry.engine reg "unregistered" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unregistered name must error"

let test_registry_kcache_reload () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spnc-serve-kc-%d" (Unix.getpid ()))
  in
  let options =
    {
      base_options with
      use_kernel_cache = true;
      kernel_cache_dir = Some dir;
    }
  in
  let reg = Registry.create ~options () in
  Registry.register_model reg ~name:"m0" (model 0);
  (* earlier tests may have this artifact hot in the in-memory tier; a
     memory hit would skip the disk publish, so start from a cold cache *)
  Compiler.reset_kernel_cache ();
  (match Registry.engine reg "m0" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first load: %s" e);
  (* drop the hot engine AND the in-memory compile cache; the reload
     must come back through the persistent disk tier *)
  Registry.flush_engines reg;
  check (Alcotest.list Alcotest.string) "flushed" [] (Registry.loaded reg);
  Compiler.reset_kernel_cache ();
  let before = (Compiler.cache_counters ()).Compiler.disk_hits in
  (match Registry.engine reg "m0" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reload: %s" e);
  let after = (Compiler.cache_counters ()).Compiler.disk_hits in
  check tbool "reload served from the kcache disk tier" true (after > before)

let suite =
  [
    ("batcher: flush on size", `Quick, test_flush_on_size);
    ("batcher: flush on timer", `Quick, test_flush_on_timer);
    ("batcher: EDF ordering", `Quick, test_edf_order);
    ("batcher: starvation guard", `Quick, test_starvation_guard);
    ("batcher: queue caps shed", `Quick, test_queue_caps);
    ("server: shed + depth + unknown model", `Quick, test_server_shed_and_depth);
    ( "server: expired never dispatched",
      `Quick,
      test_server_expired_never_dispatched );
    ("server: bad requests reject", `Quick, test_server_bad_request);
    ("server: shutdown drains as closed", `Quick, test_server_shutdown_drains);
    ("scatter identity, threads=1", `Quick, scatter_identity ~threads:1);
    ("scatter identity, threads=2", `Quick, scatter_identity ~threads:2);
    ("scatter identity, threads=4", `Quick, scatter_identity ~threads:4);
    ("registry: engine LRU eviction", `Quick, test_registry_lru);
    ("registry: kcache disk reload", `Quick, test_registry_kcache_reload);
  ]
