(** Precise unit tests of the individual Lir optimizer passes on
    hand-assembled functions (the differential tests elsewhere check
    whole-pipeline equivalence; these pin down each pass's behaviour). *)

module Lir = Spnc_cpu.Lir
module Opt = Spnc_cpu.Optimizer

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let func body ~nf ~ni =
  {
    Lir.fname = "t";
    params = [ 0 ];
    body = Array.of_list body;
    nf;
    ni;
    nv = 0;
    nb = 1;
    vec_width = 1;
    prov = Lir.no_prov;
  }

let size f = Lir.func_size f

let count pred (f : Lir.func) = Lir.count_instrs ~filter:pred f.Lir.body

(* -- constant folding ------------------------------------------------------- *)

let test_constfold_folds () =
  let f =
    func ~nf:4 ~ni:1
      [
        Lir.ConstF (0, 2.0);
        Lir.ConstF (1, 3.0);
        Lir.FBin (Lir.FMul, 2, 0, 1);
        (* -> ConstF (2, 6.0) *)
        Lir.FBin (Lir.FAdd, 3, 2, 0);
        (* -> ConstF (3, 8.0) *)
        Lir.ConstI (0, 0);
        Lir.Store (0, 0, 3);
        Lir.Ret;
      ]
  in
  let f' = Opt.constfold f in
  let consts =
    count (fun i -> match i with Lir.ConstF _ -> true | _ -> false) f'
  in
  check tint "both binops folded" 4 consts;
  let has v =
    count (fun i -> match i with Lir.ConstF (_, x) -> x = v | _ -> false) f' > 0
  in
  check tbool "6.0 present" true (has 6.0);
  check tbool "8.0 present" true (has 8.0)

let test_constfold_stops_at_unknown () =
  let f =
    func ~nf:3 ~ni:1
      [
        Lir.ConstF (0, 2.0);
        Lir.Load (1, 0, 0);
        (* unknown *)
        Lir.FBin (Lir.FMul, 2, 0, 1);
        Lir.Ret;
      ]
  in
  let f' = Opt.constfold f in
  check tint "mul not folded" 1
    (count (fun i -> match i with Lir.FBin _ -> true | _ -> false) f')

(* -- CSE ---------------------------------------------------------------------- *)

let test_cse_dedups_and_rewrites_uses () =
  let f =
    func ~nf:5 ~ni:2
      [
        Lir.ConstF (0, 2.0);
        Lir.ConstF (1, 2.0);
        (* dup of r0 *)
        Lir.FBin (Lir.FAdd, 2, 0, 0);
        Lir.FBin (Lir.FAdd, 3, 1, 1);
        (* dup of r2 once r1 -> r0 *)
        Lir.FBin (Lir.FMul, 4, 2, 3);
        Lir.ConstI (0, 0);
        Lir.Store (0, 0, 4);
        Lir.Ret;
      ]
  in
  let f' = Opt.dce (Opt.cse f) in
  check tint "constants deduped" 1
    (count (fun i -> match i with Lir.ConstF _ -> true | _ -> false) f');
  check tint "adds deduped" 1
    (count (fun i -> match i with Lir.FBin (Lir.FAdd, _, _, _) -> true | _ -> false) f')

let test_cse_does_not_merge_loads () =
  let f =
    func ~nf:3 ~ni:1
      [
        Lir.ConstI (0, 0);
        Lir.Load (0, 0, 0);
        Lir.Store (0, 0, 0);
        (* intervening store *)
        Lir.Load (1, 0, 0);
        Lir.FBin (Lir.FAdd, 2, 0, 1);
        Lir.Store (0, 0, 2);
        Lir.Ret;
      ]
  in
  let f' = Opt.cse f in
  check tint "loads preserved" 2
    (count (fun i -> match i with Lir.Load _ -> true | _ -> false) f')

(* -- DCE ---------------------------------------------------------------------- *)

let test_dce_keeps_effects () =
  let f =
    func ~nf:3 ~ni:1
      [
        Lir.ConstF (0, 1.0);
        (* used *)
        Lir.ConstF (1, 2.0);
        (* dead *)
        Lir.FBin (Lir.FAdd, 2, 1, 1);
        (* dead chain *)
        Lir.ConstI (0, 0);
        Lir.Store (0, 0, 0);
        Lir.Ret;
      ]
  in
  let f' = Opt.dce f in
  check tint "dead chain removed" 4 (size f');
  check tint "store kept" 1
    (count (fun i -> match i with Lir.Store _ -> true | _ -> false) f')

(* -- LICM ---------------------------------------------------------------------- *)

let test_licm_hoists_invariants_only () =
  let loop_body =
    [|
      Lir.ConstF (0, 5.0);
      (* invariant: hoist *)
      Lir.ItoF (1, 2);
      (* depends on iv: stays *)
      Lir.FBin (Lir.FMul, 2, 0, 1);
      (* depends on 1: stays *)
      Lir.Store (0, 2, 2);
      (* effect: stays *)
    |]
  in
  let f =
    func ~nf:3 ~ni:3
      [
        Lir.ConstI (0, 0);
        Lir.Dim (1, 0);
        Lir.Loop { Lir.iv = 2; lb = 0; ub = 1; step = 1; body = loop_body; vector_width = 1 };
        Lir.Ret;
      ]
  in
  let f' = Opt.licm f in
  let in_loop pred =
    let n = ref 0 in
    Array.iter
      (fun i ->
        match i with
        | Lir.Loop l -> Array.iter (fun i -> if pred i then incr n) l.Lir.body
        | _ -> ())
      f'.Lir.body;
    !n
  in
  check tint "constant hoisted out" 0
    (in_loop (fun i -> match i with Lir.ConstF _ -> true | _ -> false));
  check tint "iv-dependent stays" 1
    (in_loop (fun i -> match i with Lir.ItoF _ -> true | _ -> false));
  check tint "store stays" 1
    (in_loop (fun i -> match i with Lir.Store _ -> true | _ -> false))

(* -- FMA fusion ----------------------------------------------------------------- *)

let test_fma_fuses_single_use_mul () =
  let f =
    func ~nf:6 ~ni:1
      [
        Lir.ConstF (0, 2.0);
        Lir.ConstF (1, 3.0);
        Lir.ConstF (2, 4.0);
        Lir.FBin (Lir.FMul, 3, 0, 1);
        Lir.FBin (Lir.FAdd, 4, 3, 2);
        Lir.ConstI (0, 0);
        Lir.Store (0, 0, 4);
        Lir.Ret;
      ]
  in
  let f' = Opt.fma f in
  check tint "fma created" 1
    (count (fun i -> match i with Lir.FBin3 _ -> true | _ -> false) f');
  check tint "mul+add gone" 0
    (count
       (fun i ->
         match i with Lir.FBin ((Lir.FMul | Lir.FAdd), _, _, _) -> true | _ -> false)
       f')

let test_fma_respects_multiple_uses () =
  (* the mul result is used twice: fusing would duplicate work *)
  let f =
    func ~nf:6 ~ni:1
      [
        Lir.ConstF (0, 2.0);
        Lir.ConstF (1, 3.0);
        Lir.FBin (Lir.FMul, 2, 0, 1);
        Lir.FBin (Lir.FAdd, 3, 2, 0);
        Lir.FBin (Lir.FAdd, 4, 2, 1);
        (* second use of r2 *)
        Lir.ConstI (0, 0);
        Lir.Store (0, 0, 3);
        Lir.Store (0, 0, 4);
        Lir.Ret;
      ]
  in
  let f' = Opt.fma f in
  check tint "no fma" 0
    (count (fun i -> match i with Lir.FBin3 _ -> true | _ -> false) f')

(* semantic check: every pass preserves results on a concrete function *)
let test_passes_preserve_semantics () =
  let body =
    [
      Lir.ConstF (0, 2.0);
      Lir.ConstF (1, 3.0);
      Lir.FBin (Lir.FMul, 2, 0, 1);
      Lir.FBin (Lir.FAdd, 3, 2, 0);
      Lir.FBin (Lir.FSub, 4, 3, 1);
      Lir.ConstI (0, 0);
      Lir.Store (0, 0, 4);
      Lir.Ret;
    ]
  in
  let run f =
    let out = Spnc_cpu.Vm.buffer ~rows:1 ~cols:1 in
    Spnc_cpu.Vm.run { Lir.funcs = [| f |]; entry = 0 } ~buffers:[ out ];
    out.Spnc_cpu.Vm.data.(0)
  in
  let f = func ~nf:5 ~ni:1 body in
  let expected = run f in
  List.iter
    (fun (name, pass) ->
      let got = run (pass f) in
      check (Alcotest.float 0.0) name expected got)
    [
      ("constfold", Opt.constfold);
      ("cse", Opt.cse);
      ("dce", Opt.dce);
      ("licm", Opt.licm);
      ("fma", Opt.fma);
    ]

let suite =
  [
    Alcotest.test_case "constfold folds" `Quick test_constfold_folds;
    Alcotest.test_case "constfold stops" `Quick test_constfold_stops_at_unknown;
    Alcotest.test_case "cse dedups" `Quick test_cse_dedups_and_rewrites_uses;
    Alcotest.test_case "cse keeps loads" `Quick test_cse_does_not_merge_loads;
    Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_effects;
    Alcotest.test_case "licm selective" `Quick test_licm_hoists_invariants_only;
    Alcotest.test_case "fma fuses" `Quick test_fma_fuses_single_use_mul;
    Alcotest.test_case "fma multiple uses" `Quick test_fma_respects_multiple_uses;
    Alcotest.test_case "passes preserve semantics" `Quick test_passes_preserve_semantics;
  ]
