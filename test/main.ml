(** Test entry point aggregating all suites. *)

let () =
  Alcotest.run "spnc"
    [
      ("mlir", Test_mlir.suite);
      ("spn", Test_spn.suite);
      ("partition", Test_partition.suite);
      ("lowering", Test_lowering.suite);
      ("cpu", Test_cpu.suite);
      ("backend", Test_backend.suite);
      ("gpu", Test_gpu.suite);
      ("core", Test_core.suite);
      ("cir", Test_cir.suite);
      ("vm", Test_vm.suite);
      ("props", Test_props.suite);
      ("pipelines", Test_pipelines.suite);
      ("learning", Test_learning.suite);
      ("data", Test_data.suite);
      ("dialects", Test_dialects.suite);
      ("edge", Test_edge.suite);
      ("optimizer", Test_optimizer.suite);
      ("gpu-model", Test_gpu_model.suite);
      ("resilience", Test_resilience.suite);
      ("kcache", Test_kcache.suite);
      ("runtime", Test_runtime.suite);
      ("obs", Test_obs.suite);
      ("tune", Test_tune.suite);
      ("serve", Test_serve.suite);
      ("smith", Test_smith.suite);
    ]
