(** Tests for the mini-MLIR infrastructure: types, attributes, IR
    construction, printing/parsing round-trips, verification, CSE,
    constant folding and canonicalization. *)

open Spnc_mlir

let check = Alcotest.check
let tbool = Alcotest.bool
let tstr = Alcotest.string
let tint = Alcotest.int

(* -- Types ------------------------------------------------------------- *)

let test_type_printing () =
  check tstr "f32" "f32" (Types.to_string Types.F32);
  check tstr "log" "!lo_spn.log<f32>" (Types.to_string (Types.Log Types.F32));
  check tstr "prob" "!hi_spn.probability" (Types.to_string Types.Prob);
  check tstr "tensor" "tensor<?,26,f32>"
    (Types.to_string (Types.Tensor ([ None; Some 26 ], Types.F32)));
  check tstr "memref" "memref<?,1,!lo_spn.log<f32>>"
    (Types.to_string (Types.MemRef ([ None; Some 1 ], Types.Log Types.F32)));
  check tstr "vector" "vector<8,f32>" (Types.to_string (Types.Vector (8, Types.F32)));
  check tstr "index" "index" (Types.to_string Types.Index)

let test_type_equality () =
  check tbool "equal tensors" true
    (Types.equal
       (Types.Tensor ([ None; Some 3 ], Types.F32))
       (Types.Tensor ([ None; Some 3 ], Types.F32)));
  check tbool "unequal dims" false
    (Types.equal
       (Types.Tensor ([ None; Some 3 ], Types.F32))
       (Types.Tensor ([ None; Some 4 ], Types.F32)));
  check tbool "log vs plain" false (Types.equal (Types.Log Types.F32) Types.F32);
  check tbool "func type" true
    (Types.equal (Types.Func ([ Types.F32 ], [])) (Types.Func ([ Types.F32 ], [])))

let test_type_predicates () =
  check tbool "is_float f64" true (Types.is_float Types.F64);
  check tbool "is_float log" false (Types.is_float (Types.Log Types.F32));
  check tbool "computation log" true (Types.is_computation (Types.Log Types.F32));
  check tbool "computation prob" false (Types.is_computation Types.Prob);
  check tint "bit width f32" 32 (Types.bit_width Types.F32);
  check tint "bit width log f64" 64 (Types.bit_width (Types.Log Types.F64));
  check tbool "element type" true
    (Types.equal (Types.element_type (Types.Tensor ([ None ], Types.F64))) Types.F64)

(* -- Attributes --------------------------------------------------------- *)

let test_attr_dict () =
  let d = Attr.Dict.of_list [ ("b", Attr.Int 2); ("a", Attr.Int 1) ] in
  (* sorted by key *)
  check tbool "find a" true (Attr.Dict.find d "a" = Some (Attr.Int 1));
  check tbool "ordering" true (fst (List.hd d) = "a");
  let d = Attr.Dict.set d "a" (Attr.Int 9) in
  check tbool "set replaces" true (Attr.Dict.find d "a" = Some (Attr.Int 9));
  check tbool "remove" true (Attr.Dict.find (Attr.Dict.remove d "a") "a" = None)

let test_attr_equal () =
  check tbool "dense equal" true
    (Attr.equal (Attr.DenseF [| 1.0; 2.0 |]) (Attr.DenseF [| 1.0; 2.0 |]));
  check tbool "dense unequal" false
    (Attr.equal (Attr.DenseF [| 1.0 |]) (Attr.DenseF [| 1.0; 2.0 |]));
  check tbool "nan equal" true (Attr.equal (Attr.Float Float.nan) (Attr.Float Float.nan));
  check tbool "array of mixed" true
    (Attr.equal
       (Attr.Array [ Attr.Int 1; Attr.String "x" ])
       (Attr.Array [ Attr.Int 1; Attr.String "x" ]))

(* -- IR construction ----------------------------------------------------- *)

let simple_module () =
  let b = Builder.create () in
  let c1 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 2.0) ] () in
  let c2 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 3.0) ] () in
  let m =
    Builder.op b "lo_spn.mul"
      ~operands:[ Ir.result c1; Ir.result c2 ]
      ~results:[ Types.F32 ] ()
  in
  (Builder.modul ~name:"t" [ c1; c2; m ], m)

let test_builder_ids_unique () =
  let m, _ = simple_module () in
  let ids = ref [] in
  Ir.walk (fun op -> List.iter (fun (v : Ir.value) -> ids := v.Ir.vid :: !ids) op.Ir.results) m;
  let sorted = List.sort_uniq compare !ids in
  check tint "no duplicate ids" (List.length !ids) (List.length sorted)

let test_walk_and_count () =
  let m, _ = simple_module () in
  check tint "three ops" 3 (Ir.count_ops (fun _ -> true) m);
  check tint "two constants" 2
    (Ir.count_ops (fun o -> o.Ir.name = "lo_spn.constant") m)

let test_defining_map () =
  let m, mul_op = simple_module () in
  let dm = Ir.defining_map m in
  let def = Ir.VMap.find (Ir.result mul_op) dm in
  check tstr "mul defines its result" "lo_spn.mul" def.Ir.name

(* -- Printer / parser round-trip ----------------------------------------- *)

let test_print_parse_roundtrip_simple () =
  let m, _ = simple_module () in
  let s = Printer.modul_to_string m in
  let m' = Parser.modul_of_string s in
  let s' = Printer.modul_to_string m' in
  check tstr "roundtrip fixpoint" s s'

let test_parse_nested_regions () =
  Spnc_lospn.Ops.register ();
  let src =
    {|module @k {
  "lo_spn.body"() ({
  ^bb(%1: f32):
    %2 = "lo_spn.mul"(%1, %1) : (f32, f32) -> (f32)
    "lo_spn.yield"(%2) : (f32) -> ()
  }) : () -> ()
}|}
  in
  (* note: operands of yield print inside parens *)
  match Parser.modul_of_string src with
  | m -> check tint "one top op" 1 (List.length m.Ir.mops)
  | exception Parser.Error e -> Alcotest.failf "parse error: %s" e

let test_parse_errors () =
  let bad = "module @x { %0 = \"foo\"( : () -> (f32) }" in
  (match Parser.modul_of_string bad with
  | exception (Parser.Error _ | Lexer.Error _) -> ()
  | _ -> Alcotest.fail "expected parse error");
  match Parser.modul_of_string "not a module" with
  | exception (Parser.Error _ | Lexer.Error _) -> ()
  | _ -> Alcotest.fail "expected parse error"

(* Property: random attribute dictionaries survive print->parse *)
let attr_gen : Attr.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Attr.Int i) small_signed_int;
                map (fun f -> Attr.Float f) (float_bound_inclusive 1000.0);
                map (fun s -> Attr.String s) (string_size ~gen:(char_range 'a' 'z') (return 5));
                map (fun b -> Attr.Bool b) bool;
                map (fun a -> Attr.DenseF (Array.of_list a)) (small_list (float_bound_inclusive 10.0));
              ]
          else
            frequency
              [
                (3, self 0);
                (1, map (fun l -> Attr.Array l) (list_size (return 3) (self (n / 2))));
              ])
        n)

let test_attr_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"attr print/parse roundtrip"
    (QCheck.make attr_gen ~print:Attr.to_string)
    (fun attr ->
      let b = Builder.create () in
      let op =
        Builder.op b "test.op" ~results:[ Types.F32 ] ~attrs:[ ("a", attr) ] ()
      in
      let m = Builder.modul [ op ] in
      let s = Printer.modul_to_string m in
      match Parser.modul_of_string s with
      | m' -> (
          match m'.Ir.mops with
          | [ op' ] -> (
              match Ir.attr op' "a" with
              | Some attr' -> Attr.equal attr attr'
              | None -> false)
          | _ -> false)
      | exception _ -> false)

(* -- Verifier ------------------------------------------------------------- *)

let test_verifier_accepts_valid () =
  let m, _ = simple_module () in
  check tbool "valid module" true (Verifier.is_valid m)

let test_verifier_rejects_use_before_def () =
  let b = Builder.create () in
  let phantom = Builder.fresh b Types.F32 in
  let op =
    Builder.op b "lo_spn.mul" ~operands:[ phantom; phantom ]
      ~results:[ Types.F32 ] ()
  in
  let m = Builder.modul [ op ] in
  check tbool "invalid" false (Verifier.is_valid m)

let test_verifier_rejects_double_def () =
  let b = Builder.create () in
  let c = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 1.0) ] () in
  (* duplicate the same op structure (same result value) twice *)
  let m = Builder.modul [ c; c ] in
  check tbool "double definition rejected" false (Verifier.is_valid m)

let test_dialect_verifier_runs () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let c = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ] () in
  (* missing the required "value" attribute *)
  let m = Builder.modul [ c ] in
  check tbool "missing attr rejected" false (Verifier.is_valid m)

(* -- CSE / constant folding / DCE ------------------------------------------ *)

let test_cse_dedups () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let c1 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 2.0) ] () in
  let c2 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 2.0) ] () in
  let m1 = Builder.op b "lo_spn.mul" ~operands:[ Ir.result c1; Ir.result c1 ] ~results:[ Types.F32 ] () in
  let m2 = Builder.op b "lo_spn.mul" ~operands:[ Ir.result c2; Ir.result c2 ] ~results:[ Types.F32 ] () in
  let s = Builder.op b "lo_spn.add" ~operands:[ Ir.result m1; Ir.result m2 ] ~results:[ Types.F32 ] () in
  let m = Builder.modul [ c1; c2; m1; m2; s ] in
  let m' = Cse.run m in
  (* c2 dedups into c1, then m2 dedups into m1 *)
  check tint "ops after cse" 3 (Ir.count_ops (fun _ -> true) m');
  check tbool "still valid" true (Verifier.is_valid m')

let test_constfold_folds_chain () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let c1 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 2.0) ] () in
  let c2 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 3.0) ] () in
  let m1 = Builder.op b "lo_spn.mul" ~operands:[ Ir.result c1; Ir.result c2 ] ~results:[ Types.F32 ] () in
  let m = Builder.modul [ c1; c2; m1 ] in
  let m' = Constfold.run (Builder.seed_from m) m in
  let folded =
    Ir.find_ops (fun o -> o.Ir.name = "lo_spn.constant") m'
    |> List.filter_map (fun o -> Ir.float_attr o "value")
  in
  check tbool "6.0 appears" true (List.mem 6.0 folded)

let test_constfold_log_space () =
  Spnc_lospn.Ops.register ();
  let lt = Types.Log Types.F32 in
  let b = Builder.create () in
  let c1 = Builder.op b "lo_spn.constant" ~results:[ lt ]
      ~attrs:[ ("value", Attr.Float (log 0.5)) ] () in
  let c2 = Builder.op b "lo_spn.constant" ~results:[ lt ]
      ~attrs:[ ("value", Attr.Float (log 0.25)) ] () in
  (* log-space mul is addition of logs: log(0.5*0.25) = log 0.125 *)
  let m1 = Builder.op b "lo_spn.mul" ~operands:[ Ir.result c1; Ir.result c2 ] ~results:[ lt ] () in
  let m = Builder.modul [ c1; c2; m1 ] in
  let m' = Constfold.run (Builder.seed_from m) m in
  let folded =
    Ir.find_ops (fun o -> o.Ir.name = "lo_spn.constant") m'
    |> List.filter_map (fun o -> Ir.float_attr o "value")
  in
  check tbool "log(0.125) appears" true
    (List.exists (fun v -> Float.abs (v -. log 0.125) < 1e-6) folded)

let test_dce_removes_dead () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let c1 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 2.0) ] () in
  let dead = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 9.0) ] () in
  let m1 = Builder.op b "lo_spn.mul" ~operands:[ Ir.result c1; Ir.result c1 ] ~results:[ Types.F32 ] () in
  let keep = Builder.op b "lo_spn.yield" ~operands:[ Ir.result m1 ] () in
  let m = Builder.modul [ c1; dead; m1; keep ] in
  let m' = Rewrite.dce m in
  check tint "dead constant removed" 3 (Ir.count_ops (fun _ -> true) m')

(* -- Locations ------------------------------------------------------------- *)

let test_loc_roundtrip () =
  let b = Builder.create () in
  let c1 =
    Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 2.0) ]
      ~loc:(Loc.node 17) ()
  in
  let c2 =
    Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 3.0) ] ()
  in
  let m =
    Builder.op b "lo_spn.mul"
      ~operands:[ Ir.result c1; Ir.result c2 ]
      ~results:[ Types.F32 ]
      ~loc:(Loc.derived "vectorize" (Loc.node 3))
      ()
  in
  let s = Printer.modul_to_string (Builder.modul ~name:"t" [ c1; c2; m ]) in
  (* unknown locations print nothing; known ones print a loc(...) suffix *)
  check tbool "node loc printed" true
    (Astring_contains.contains s "loc(spn.node 17)");
  check tbool "derived loc printed" true
    (Astring_contains.contains s {|loc("vectorize"(spn.node 3))|});
  let m' = Parser.modul_of_string s in
  let locs =
    List.map (fun (o : Ir.op) -> (o.Ir.name, o.Ir.loc)) m'.Ir.mops
  in
  check tint "three ops back" 3 (List.length locs);
  let loc_of name = List.assoc name locs in
  check tbool "constant keeps its node" true
    (Loc.equal (Loc.node 17) (loc_of "lo_spn.constant"));
  check tbool "mul keeps its derivation chain" true
    (Loc.equal (Loc.derived "vectorize" (Loc.node 3)) (loc_of "lo_spn.mul"));
  check tbool "derived origin unwraps" true
    (Loc.node_id (loc_of "lo_spn.mul") = Some 3);
  (* second constant carried no loc and must come back Unknown *)
  let unknowns =
    List.filter (fun (n, l) -> n = "lo_spn.constant" && not (Loc.is_known l))
      locs
  in
  check tint "unlocated op stays unlocated" 1 (List.length unknowns)

(* -- Pass instrumentation ---------------------------------------------------- *)

(* --print-ir-after-change must stay silent across a pass that does not
   touch the IR, and must produce a diff when one does. *)
let test_print_after_change_silent_when_unchanged () =
  let m, _ = simple_module () in
  let run_with instr passes =
    let buf = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer buf in
    let instr = Pass.instrument ~out:fmt instr in
    (match Pass.run_pipeline_checked ~instr passes m with
    | Ok _ -> ()
    | Error f -> Alcotest.failf "pipeline failed in %s" f.Pass.failed_pass);
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let identity = Pass.make "identity" Fun.id in
  check tstr "no-op pass dumps nothing under after-change" ""
    (run_with Pass.Print_after_change [ identity ]);
  (* the same module has no CSE opportunity either — still silent *)
  check tstr "cse without duplicates dumps nothing" ""
    (run_with Pass.Print_after_change [ Pass.cse_pass ]);
  (* after-all always dumps, and labels the unchanged pass as such *)
  let dump = run_with Pass.Print_after_all [ identity ] in
  check tbool "after-all dumps even without change" true
    (Astring_contains.contains dump "IR Dump After identity (no change)")

let test_print_after_change_emits_diff () =
  Spnc_lospn.Ops.register ();
  let b = Builder.create () in
  let c1 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 2.0) ] () in
  let c2 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
      ~attrs:[ ("value", Attr.Float 2.0) ] () in
  let s = Builder.op b "lo_spn.add" ~operands:[ Ir.result c1; Ir.result c2 ]
      ~results:[ Types.F32 ] () in
  let m = Builder.modul [ c1; c2; s ] in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let instr = Pass.instrument ~out:fmt Pass.Print_after_change in
  (match Pass.run_pipeline_checked ~instr [ Pass.cse_pass ] m with
  | Ok r ->
      check tint "cse deduped" 2 (Ir.count_ops (fun _ -> true) r.Pass.modul)
  | Error f -> Alcotest.failf "pipeline failed in %s" f.Pass.failed_pass);
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  check tbool "diff header present" true
    (Astring_contains.contains out "IR Diff After cse");
  (* the dedup shows up as a removed line *)
  check tbool "diff shows a removal" true (Astring_contains.contains out "-")

(* -- Optimization remarks ----------------------------------------------------- *)

let test_constfold_emits_remark () =
  Spnc_lospn.Ops.register ();
  Spnc_obs.Remark.set_enabled true;
  Spnc_obs.Remark.clear ();
  Fun.protect
    ~finally:(fun () ->
      Spnc_obs.Remark.set_enabled false;
      Spnc_obs.Remark.clear ())
    (fun () ->
      let b = Builder.create () in
      let c1 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
          ~attrs:[ ("value", Attr.Float 2.0) ] ~loc:(Loc.node 4) () in
      let c2 = Builder.op b "lo_spn.constant" ~results:[ Types.F32 ]
          ~attrs:[ ("value", Attr.Float 3.0) ] () in
      let m1 = Builder.op b "lo_spn.mul"
          ~operands:[ Ir.result c1; Ir.result c2 ]
          ~results:[ Types.F32 ] ~loc:(Loc.node 4) () in
      let m = Builder.modul [ c1; c2; m1 ] in
      ignore (Constfold.run (Builder.seed_from m) m);
      let remarks = Spnc_obs.Remark.all () in
      let folds =
        List.filter
          (fun (r : Spnc_obs.Remark.remark) ->
            r.Spnc_obs.Remark.pass = "constfold"
            && r.Spnc_obs.Remark.kind = Spnc_obs.Remark.Applied)
          remarks
      in
      check tbool "constfold reported its rewrite" true (folds <> []);
      check tbool "remark carries the SPN node" true
        (List.exists
           (fun (r : Spnc_obs.Remark.remark) ->
             Astring_contains.contains r.Spnc_obs.Remark.loc "spn.node 4")
           folds))

(* -- Pass manager ----------------------------------------------------------- *)

let test_pass_manager_timing () =
  let m, _ = simple_module () in
  let p1 = Pass.make "identity" Fun.id in
  let r = Pass.run_pipeline [ p1; Pass.cse_pass; Pass.dce_pass ] m in
  check tint "three timings" 3 (List.length r.Pass.timings);
  check tbool "total nonnegative" true (Pass.total_seconds r >= 0.0)

let test_pass_manager_error () =
  let m, _ = simple_module () in
  let failing = Pass.make_fallible "boom" (fun _ -> Error "nope") in
  match Pass.run_pipeline [ failing ] m with
  | exception Pass.Pipeline_error ("boom", "nope") -> ()
  | exception _ -> Alcotest.fail "wrong error"
  | _ -> Alcotest.fail "expected failure"

let suite =
  [
    Alcotest.test_case "type printing" `Quick test_type_printing;
    Alcotest.test_case "type equality" `Quick test_type_equality;
    Alcotest.test_case "type predicates" `Quick test_type_predicates;
    Alcotest.test_case "attr dict" `Quick test_attr_dict;
    Alcotest.test_case "attr equality" `Quick test_attr_equal;
    Alcotest.test_case "builder unique ids" `Quick test_builder_ids_unique;
    Alcotest.test_case "walk and count" `Quick test_walk_and_count;
    Alcotest.test_case "defining map" `Quick test_defining_map;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip_simple;
    Alcotest.test_case "parse nested regions" `Quick test_parse_nested_regions;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest test_attr_roundtrip_prop;
    Alcotest.test_case "verifier accepts valid" `Quick test_verifier_accepts_valid;
    Alcotest.test_case "verifier rejects use-before-def" `Quick test_verifier_rejects_use_before_def;
    Alcotest.test_case "verifier rejects double def" `Quick test_verifier_rejects_double_def;
    Alcotest.test_case "dialect verifier runs" `Quick test_dialect_verifier_runs;
    Alcotest.test_case "cse dedups" `Quick test_cse_dedups;
    Alcotest.test_case "constfold chain" `Quick test_constfold_folds_chain;
    Alcotest.test_case "constfold log space" `Quick test_constfold_log_space;
    Alcotest.test_case "dce removes dead" `Quick test_dce_removes_dead;
    Alcotest.test_case "loc print/parse roundtrip" `Quick test_loc_roundtrip;
    Alcotest.test_case "print-after-change silent when unchanged" `Quick
      test_print_after_change_silent_when_unchanged;
    Alcotest.test_case "print-after-change emits diff" `Quick
      test_print_after_change_emits_diff;
    Alcotest.test_case "constfold emits remark" `Quick
      test_constfold_emits_remark;
    Alcotest.test_case "pass manager timing" `Quick test_pass_manager_timing;
    Alcotest.test_case "pass manager error" `Quick test_pass_manager_error;
  ]
