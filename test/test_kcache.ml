(** Tests for the crash-safe persistent kernel cache (docs/RESILIENCE.md
    §1): checksum-verified round-trips, corruption quarantine, LRU
    eviction under a size budget, injected I/O faults, and the
    compiler's memory → disk → compile lookup order. *)

module Kcache = Spnc.Kcache
module Compiler = Spnc.Compiler
module Options = Spnc.Options
module Fault = Spnc_resilience.Fault
module Model = Spnc_spn.Model

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let with_tmp_dir f =
  let dir = Filename.temp_file "spnc-kcache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let opened dir = Result.get_ok (Kcache.open_ ~dir ~max_mb:4)

let fmt = "test-fmt-v1"

(* -- Store / find round-trips --------------------------------------------------- *)

let test_roundtrip () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      let payload = String.init 4096 (fun i -> Char.chr (i mod 256)) in
      Kcache.store t ~fmt ~key:"model-a" payload;
      (match Kcache.find t ~fmt ~key:"model-a" with
      | Some p -> check tbool "payload bit-exact" true (p = payload)
      | None -> Alcotest.fail "stored entry must be found");
      check (Alcotest.list Alcotest.string) "entry listed" [ "model-a" ]
        (Kcache.entry_keys t);
      check tbool "size accounts the entry" true (Kcache.size_bytes t > 4096))

let test_miss_absent () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      Kcache.reset_counters_for_tests ();
      check tbool "absent key is a miss" true
        (Kcache.find t ~fmt ~key:"nope" = None);
      check tint "miss counted" 1 (Kcache.counters ()).Kcache.misses)

let test_unsafe_keys_round_trip () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      (* keys with path separators and spaces must be sanitized, must not
         escape the cache directory, and must not collide *)
      let k1 = "../evil/key with spaces" and k2 = "../evil/other key" in
      Kcache.store t ~fmt ~key:k1 "one";
      Kcache.store t ~fmt ~key:k2 "two";
      check tbool "weird key 1 round-trips" true
        (Kcache.find t ~fmt ~key:k1 = Some "one");
      check tbool "weird key 2 round-trips" true
        (Kcache.find t ~fmt ~key:k2 = Some "two");
      check tbool "nothing escaped the cache dir" false
        (Sys.file_exists (Filename.concat (Filename.dirname dir) "evil")))

let test_format_mismatch_is_silent_miss () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      Kcache.store t ~fmt:"old-fmt" ~key:"k" "payload";
      Kcache.reset_counters_for_tests ();
      check tbool "stale format is a miss" true
        (Kcache.find t ~fmt:"new-fmt" ~key:"k" = None);
      let c = Kcache.counters () in
      check tint "not counted as corruption" 0 c.Kcache.corrupt;
      check tint "stale entry removed, not quarantined" 0
        (Kcache.quarantined_count t);
      check (Alcotest.list Alcotest.string) "entry gone" []
        (Kcache.entry_keys t))

(* -- Corruption ----------------------------------------------------------------- *)

let entry_file dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".kc")
  |> function
  | [ f ] -> Filename.concat dir f
  | l -> Alcotest.failf "expected exactly one entry, got %d" (List.length l)

let test_bitflip_quarantined () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      Kcache.store t ~fmt ~key:"k" (String.make 1024 'x');
      (* flip one payload byte on disk behind the cache's back *)
      let path = entry_file dir in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (-1) Unix.SEEK_END);
      ignore (Unix.write_substring fd "y" 0 1);
      Unix.close fd;
      Kcache.reset_counters_for_tests ();
      check tbool "corrupt entry is a miss, not wrong bytes" true
        (Kcache.find t ~fmt ~key:"k" = None);
      check tint "corruption counted" 1 (Kcache.counters ()).Kcache.corrupt;
      check tint "entry quarantined for post-mortem" 1
        (Kcache.quarantined_count t);
      check tbool "second lookup is a plain miss" true
        (Kcache.find t ~fmt ~key:"k" = None))

let test_truncation_quarantined () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      Kcache.store t ~fmt ~key:"k" (String.make 2048 'p');
      let path = entry_file dir in
      Unix.truncate path ((Unix.stat path).Unix.st_size / 2);
      check tbool "truncated entry is a miss" true
        (Kcache.find t ~fmt ~key:"k" = None);
      check tbool "truncated entry quarantined" true
        (Kcache.quarantined_count t >= 1))

(* -- Eviction ------------------------------------------------------------------- *)

let age path seconds =
  let past = Unix.gettimeofday () -. seconds in
  Unix.utimes path past past

let test_lru_eviction_respects_budget () =
  with_tmp_dir (fun dir ->
      let t = Result.get_ok (Kcache.open_ ~dir ~max_mb:1) in
      Kcache.reset_counters_for_tests ();
      let payload = String.make 400_000 'z' in
      Kcache.store t ~fmt ~key:"oldest" payload;
      age (entry_file dir) 300.0;
      Kcache.store t ~fmt ~key:"middle" payload;
      (* publishing the third entry blows the 1 MB budget: the oldest
         mtime must go *)
      Kcache.store t ~fmt ~key:"newest" payload;
      check tbool "budget holds after publish" true
        (Kcache.size_bytes t <= 1 lsl 20);
      check tbool "eviction counted" true
        ((Kcache.counters ()).Kcache.evictions >= 1);
      check tbool "newest entry survives" true
        (List.mem "newest" (Kcache.entry_keys t));
      check tbool "oldest entry evicted" false
        (List.mem "oldest" (Kcache.entry_keys t)))

let test_hit_refreshes_recency () =
  with_tmp_dir (fun dir ->
      let t = Result.get_ok (Kcache.open_ ~dir ~max_mb:1) in
      let payload = String.make 400_000 'z' in
      Kcache.store t ~fmt ~key:"a" payload;
      Kcache.store t ~fmt ~key:"b" payload;
      (* make [a] the LRU candidate, then hit it: the hit must touch it
         back to the front so [b] is evicted instead *)
      List.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Filename.check_suffix f ".kc" then
            age p (if f = "a.kc" then 600.0 else 300.0))
        (Array.to_list (Sys.readdir dir));
      check tbool "hit on the cold entry" true
        (Kcache.find t ~fmt ~key:"a" <> None);
      Kcache.store t ~fmt ~key:"c" payload;
      check tbool "recently hit entry survives eviction" true
        (List.mem "a" (Kcache.entry_keys t));
      check tbool "cold untouched entry evicted" false
        (List.mem "b" (Kcache.entry_keys t)))

(* -- Injected I/O faults --------------------------------------------------------- *)

let with_faults points f =
  Fault.reset_for_tests ();
  Fault.arm ~points ~seed:42 ~rate:1.0 ();
  Fun.protect ~finally:Fault.reset_for_tests f

let test_enospc_absorbed () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      Kcache.reset_counters_for_tests ();
      with_faults [ "kcache.write_enospc" ] (fun () ->
          Kcache.store t ~fmt ~key:"k" "payload");
      check tbool "failed store is simply absent" true
        (Kcache.find t ~fmt ~key:"k" = None);
      check tbool "store failure counted" true
        ((Kcache.counters ()).Kcache.store_failures >= 1);
      (* the cache keeps working afterwards *)
      Kcache.store t ~fmt ~key:"k" "payload";
      check tbool "store succeeds once the fault clears" true
        (Kcache.find t ~fmt ~key:"k" = Some "payload"))

let test_torn_write_caught_by_checksum () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      with_faults [ "kcache.write_torn" ] (fun () ->
          Kcache.store t ~fmt ~key:"k" (String.make 4096 'q'));
      Kcache.reset_counters_for_tests ();
      check tbool "torn entry never returns wrong bytes" true
        (Kcache.find t ~fmt ~key:"k" = None);
      check tbool "torn entry detected as corrupt" true
        ((Kcache.counters ()).Kcache.corrupt >= 1))

let test_read_faults_surface_as_misses () =
  with_tmp_dir (fun dir ->
      let t = opened dir in
      Kcache.store t ~fmt ~key:"k" (String.make 4096 'r');
      with_faults [ "kcache.read_bitflip" ] (fun () ->
          check tbool "injected bit flip is a miss" true
            (Kcache.find t ~fmt ~key:"k" = None));
      Kcache.store t ~fmt ~key:"k2" (String.make 4096 's');
      with_faults [ "kcache.read_short" ] (fun () ->
          check tbool "injected short read is a miss" true
            (Kcache.find t ~fmt ~key:"k2" = None)))

let test_open_errors () =
  with_tmp_dir (fun dir ->
      (* nested directories are created on demand *)
      (match Kcache.open_ ~dir:(Filename.concat dir "a/b/c") ~max_mb:1 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "nested open failed: %s" e);
      (* a regular file in the way is an error, not an exception *)
      let f = Filename.concat dir "plain-file" in
      let oc = open_out f in
      output_string oc "x";
      close_out oc;
      match Kcache.open_ ~dir:f ~max_mb:1 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "open over a regular file must fail")

(* -- Compiler integration: memory -> disk -> compile ---------------------------- *)

let small_model () =
  let g0 = Model.gaussian ~var:0 ~mean:0.0 ~stddev:1.0 in
  let g1 = Model.gaussian ~var:1 ~mean:1.0 ~stddev:0.5 in
  let c1 = Model.categorical ~var:1 ~probs:[| 0.25; 0.75 |] in
  let p0 = Model.product [ g0; g1 ] in
  let p1 = Model.product [ g0; c1 ] in
  Model.make ~num_features:2 (Model.sum [ (0.4, p0); (0.6, p1) ])

let small_rows = [| [| 0.1; 0.9 |]; [| -0.5; 1.0 |]; [| 1.5; 0.0 |] |]

let disk_options dir =
  {
    Options.default with
    Options.kernel_cache_dir = Some dir;
    kernel_cache_mb = 4;
    threads = 1;
  }

let test_disk_hit_skips_pipeline () =
  with_tmp_dir (fun dir ->
      let options = disk_options dir in
      let model = small_model () in
      Compiler.reset_kernel_cache ();
      let first = Compiler.execute (Compiler.compile ~options model) small_rows in
      let k = Compiler.cache_counters () in
      check tint "first compile runs the pipeline" 1 k.Compiler.full_compiles;
      (* a fresh process-equivalent: memory tier dropped, disk survives *)
      Compiler.reset_kernel_cache ();
      let second = Compiler.execute (Compiler.compile ~options model) small_rows in
      let k = Compiler.cache_counters () in
      check tint "served from disk" 1 k.Compiler.disk_hits;
      check tint "no pipeline run" 0 k.Compiler.full_compiles;
      check tbool "outputs bit-identical" true (first = second))

let test_corrupt_disk_entry_recompiles () =
  with_tmp_dir (fun dir ->
      let options = disk_options dir in
      let model = small_model () in
      Compiler.reset_kernel_cache ();
      let first = Compiler.execute (Compiler.compile ~options model) small_rows in
      (* scribble over every stored entry *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".kc" then begin
            let oc = open_out_gen [ Open_wronly ] 0 (Filename.concat dir f) in
            seek_out oc 0;
            output_string oc "GARBAGE";
            close_out oc
          end)
        (Sys.readdir dir);
      Compiler.reset_kernel_cache ();
      let second = Compiler.execute (Compiler.compile ~options model) small_rows in
      let k = Compiler.cache_counters () in
      check tint "corruption forces a clean recompile" 1 k.Compiler.full_compiles;
      check tint "no disk hit" 0 k.Compiler.disk_hits;
      check tbool "recompiled outputs bit-identical" true (first = second))

let test_runtime_knobs_share_disk_entry () =
  with_tmp_dir (fun dir ->
      let options = disk_options dir in
      let model = small_model () in
      Compiler.reset_kernel_cache ();
      ignore (Compiler.compile ~options model);
      Compiler.reset_kernel_cache ();
      (* threads and engine are runtime-only: same disk entry *)
      let options' =
        { options with Options.threads = 4; engine = Spnc_cpu.Jit.Vm }
      in
      let out = Compiler.execute (Compiler.compile ~options:options' model) small_rows in
      let k = Compiler.cache_counters () in
      check tint "runtime-only change still hits disk" 1 k.Compiler.disk_hits;
      check tint "rows out" (Array.length small_rows) (Array.length out))

let suite =
  [
    Alcotest.test_case "store/find round-trip" `Quick test_roundtrip;
    Alcotest.test_case "absent key is a counted miss" `Quick test_miss_absent;
    Alcotest.test_case "unsafe keys sanitized without collision" `Quick
      test_unsafe_keys_round_trip;
    Alcotest.test_case "stale format is a silent miss" `Quick
      test_format_mismatch_is_silent_miss;
    Alcotest.test_case "bit flip quarantined, never wrong bytes" `Quick
      test_bitflip_quarantined;
    Alcotest.test_case "truncation quarantined" `Quick test_truncation_quarantined;
    Alcotest.test_case "LRU eviction respects the budget" `Quick
      test_lru_eviction_respects_budget;
    Alcotest.test_case "hits refresh recency" `Quick test_hit_refreshes_recency;
    Alcotest.test_case "injected ENOSPC absorbed" `Quick test_enospc_absorbed;
    Alcotest.test_case "injected torn write caught by checksum" `Quick
      test_torn_write_caught_by_checksum;
    Alcotest.test_case "injected read faults are misses" `Quick
      test_read_faults_surface_as_misses;
    Alcotest.test_case "open_: creates dirs, rejects files" `Quick
      test_open_errors;
    Alcotest.test_case "compiler: disk hit skips the pipeline" `Quick
      test_disk_hit_skips_pipeline;
    Alcotest.test_case "compiler: corrupt entry recompiles transparently"
      `Quick test_corrupt_disk_entry_recompiles;
    Alcotest.test_case "compiler: runtime-only knobs share the entry" `Quick
      test_runtime_knobs_share_disk_entry;
  ]
